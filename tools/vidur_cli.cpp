// `vidur` — the command-line front door of the declarative experiment API.
//
// Runs serializable ExperimentSpec files end to end, so every model, SKU,
// trace and scenario in the registries is reachable without writing or
// recompiling a bespoke harness:
//
//   vidur run spec.json [--out result.json] [--trace trace.json] [--quiet]
//   vidur validate spec.json
//   vidur analyze result-or-trace.json [--json] [--check] [--out file]
//   vidur compare a.json b.json [--tol <rel>]
//   vidur trace-check trace.json
//   vidur list scenarios|models|skus|traces|schedulers|modes
//   vidur init [simulate|reference|capacity_search|elastic_plan]
//
// `run` writes the result document (same shape as the BENCH_*.json
// artifacts) to --out, or EXPERIMENT_<name>.json in the current directory.
#include <cctype>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/compare.h"
#include "api/run.h"
#include "common/check.h"
#include "obs/analysis.h"
#include "obs/trace.h"
#include "hardware/sku.h"
#include "model/model_spec.h"
#include "scenario/registry.h"

namespace {

using namespace vidur;

int usage(std::ostream& os, int exit_code) {
  os << "vidur — declarative experiment runner\n"
        "\n"
        "usage:\n"
        "  vidur run <spec.json> [--out <file>] [--trace <file>] [--quiet]\n"
        "  vidur validate <spec.json>\n"
        "  vidur analyze <result-or-trace.json> [--json] [--check]\n"
        "               [--out <file>]\n"
        "  vidur compare <a.json> <b.json> [--tol <rel>]\n"
        "  vidur trace-check <trace.json>\n"
        "  vidur list scenarios|models|skus|traces|schedulers|modes\n"
        "  vidur init [simulate|reference|capacity_search|elastic_plan]\n"
        "\n"
        "run         execute the spec (expanding sweep axes) and write the\n"
        "            result JSON to --out or EXPERIMENT_<name>.json;\n"
        "            --trace records a Chrome/Perfetto trace of the run\n"
        "            (simulate/reference, single point) to the given file\n"
        "validate    parse + validate the spec, reporting actionable errors\n"
        "analyze     latency waterfalls, SLO blame, replica audits and\n"
        "            queueing decomposition from an exported trace (its\n"
        "            \"vidur\" sidecar) or a result with an \"analysis\"\n"
        "            section; --json prints the structured report, --out\n"
        "            writes it to a file, --check exits 2 when the phase\n"
        "            conservation invariant is violated\n"
        "compare     diff the numeric leaves of two result JSONs; exits 1\n"
        "            when any relative delta exceeds --tol (default 2%);\n"
        "            a missing subtree reports every absent leaf\n"
        "trace-check parse a trace file, validate its spans nest and its\n"
        "            raw-record sidecar matches this build's schema\n"
        "list        print the registered names usable in spec files\n"
        "init        print a template spec for the given mode to stdout\n";
  return exit_code;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  VIDUR_CHECK_MSG(in.good(), "cannot open file '" << path << "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// EXPERIMENT_<name>.json with filesystem-hostile characters replaced.
std::string default_output_path(const std::string& name) {
  std::string safe = name;
  for (char& c : safe) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' && c != '_')
      c = '_';
  }
  return "EXPERIMENT_" + safe + ".json";
}

int cmd_run(const std::vector<std::string>& args) {
  std::string spec_path, out_path, trace_path;
  bool quiet = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--out") {
      VIDUR_CHECK_MSG(i + 1 < args.size(), "--out needs a file argument");
      out_path = args[++i];
    } else if (args[i] == "--trace") {
      VIDUR_CHECK_MSG(i + 1 < args.size(), "--trace needs a file argument");
      trace_path = args[++i];
    } else if (args[i] == "--quiet") {
      quiet = true;
    } else if (spec_path.empty()) {
      spec_path = args[i];
    } else {
      throw Error("unexpected argument '" + args[i] + "'");
    }
  }
  VIDUR_CHECK_MSG(!spec_path.empty(), "run needs a spec file argument");

  ExperimentSpec spec = ExperimentSpec::from_json_string(read_file(spec_path));
  if (!trace_path.empty()) {
    VIDUR_CHECK_MSG(spec.mode == ExperimentMode::kSimulate ||
                        spec.mode == ExperimentMode::kReference,
                    "--trace requires a simulate or reference spec");
    VIDUR_CHECK_MSG(spec.sweep.empty(),
                    "--trace requires a single-point spec (no sweep axes)");
    spec.obs.trace = true;
  }
  spec.validate();
  if (out_path.empty()) out_path = default_output_path(spec.name);

  if (!quiet)
    std::cout << "running '" << spec.name << "' ("
              << experiment_mode_name(spec.mode) << ", " << spec.model
              << ", " << spec.sweep.num_points() << " point"
              << (spec.sweep.num_points() == 1 ? "" : "s") << ")\n";

  int failures = 0;
  if (spec.sweep.empty()) {
    const ExperimentResult result = run_experiment(spec);
    if (!quiet) std::cout << "\n" << result.to_string();
    write_experiment_json(result, out_path);
    if (!trace_path.empty()) {
      VIDUR_CHECK_MSG(result.has_trace(),
                      "run produced no trace despite --trace");
      std::ofstream trace_out(trace_path);
      VIDUR_CHECK_MSG(trace_out.good(), "cannot write " << trace_path);
      trace_out << result.trace.dump();
      trace_out.close();
      VIDUR_CHECK_MSG(trace_out.good(), "failed writing " << trace_path);
      std::cout << "[trace json] " << trace_path << "\n";
    }
  } else {
    const std::vector<ExperimentResult> results = run_sweep(spec);
    for (const ExperimentResult& r : results) {
      if (!quiet) std::cout << "\n" << r.to_string();
      failures += r.failed() ? 1 : 0;
    }
    if (failures > 0)
      std::cout << "\n" << failures << "/" << results.size()
                << " sweep points failed (see the result JSON)\n";
    write_sweep_json(spec, results, out_path);
  }
  std::cout << "[experiment json] " << out_path << "\n";
  return failures > 0 ? 1 : 0;
}

int cmd_validate(const std::vector<std::string>& args) {
  VIDUR_CHECK_MSG(args.size() == 1, "validate needs exactly one spec file");
  const ExperimentSpec spec =
      ExperimentSpec::from_json_string(read_file(args[0]));
  spec.validate();
  std::cout << "OK: '" << spec.name << "' ("
            << experiment_mode_name(spec.mode) << ", " << spec.model
            << " on " << spec.deployment.sku_name << ", "
            << spec.sweep.num_points() << " point"
            << (spec.sweep.num_points() == 1 ? "" : "s") << ")\n";
  return 0;
}

/// The "analysis" section of a document: the document itself when it is a
/// bare report, the embedded section of a single-point result file, or
/// nullptr.
const JsonValue* find_analysis_section(const JsonValue& doc) {
  if (!doc.is_object()) return nullptr;
  if (doc.find("waterfalls") != nullptr && doc.find("schema") != nullptr)
    return &doc;
  if (const JsonValue* a = doc.find("analysis")) return a;
  if (const JsonValue* results = doc.find("results");
      results != nullptr && results->is_object())
    return results->find("analysis");
  return nullptr;
}

int cmd_analyze(const std::vector<std::string>& args) {
  std::string path, out_path;
  bool as_json = false;
  bool check = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--json") {
      as_json = true;
    } else if (args[i] == "--check") {
      check = true;
    } else if (args[i] == "--out") {
      VIDUR_CHECK_MSG(i + 1 < args.size(), "--out needs a file argument");
      out_path = args[++i];
    } else if (path.empty()) {
      path = args[i];
    } else {
      throw Error("unexpected argument '" + args[i] + "'");
    }
  }
  VIDUR_CHECK_MSG(!path.empty(),
                  "analyze needs a result or trace file argument");

  const JsonValue doc = JsonValue::parse(read_file(path));
  AnalysisReport report;
  if (const JsonValue* sidecar =
          doc.is_object() ? doc.find("vidur") : nullptr) {
    // Exported trace document: re-run the engine on the raw records, with
    // the run's embedded context (SLO targets, pool names) when present.
    AnalysisOptions options;
    if (const JsonValue* ctx = doc.find("context"))
      options = analysis_options_from_json(*ctx);
    report = analyze_trace(trace_records_from_json(*sidecar), options);
  } else if (const JsonValue* analysis = find_analysis_section(doc)) {
    report = analysis_report_from_json(*analysis);
  } else {
    throw Error(
        "'" + path +
        "' carries neither a \"vidur\" trace sidecar nor an \"analysis\" "
        "section; produce one with `vidur run --trace <file>` or a spec "
        "with \"obs\": {\"analyze\": true}");
  }

  if (as_json)
    std::cout << analysis_json(report).dump();
  else
    std::cout << analysis_to_string(report);
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    VIDUR_CHECK_MSG(out.good(), "cannot write " << out_path);
    out << analysis_json(report).dump();
    out.close();
    VIDUR_CHECK_MSG(out.good(), "failed writing " << out_path);
    std::cout << "[analysis json] " << out_path << "\n";
  }
  if (check && !report.conservation_ok) {
    std::cerr << "error: phase conservation violated: max |sum(phases) - "
                 "e2e| = "
              << report.max_conservation_error << " exceeds "
              << kConservationTolerance << "\n";
    return 2;
  }
  return 0;
}

int cmd_compare(const std::vector<std::string>& args) {
  std::string path_a, path_b;
  double tolerance = 0.02;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--tol") {
      VIDUR_CHECK_MSG(i + 1 < args.size(),
                      "--tol needs a relative-delta argument (e.g. 0.02)");
      tolerance = std::stod(args[++i]);
      VIDUR_CHECK_MSG(tolerance >= 0, "--tol must be non-negative");
    } else if (path_a.empty()) {
      path_a = args[i];
    } else if (path_b.empty()) {
      path_b = args[i];
    } else {
      throw Error("unexpected argument '" + args[i] + "'");
    }
  }
  VIDUR_CHECK_MSG(!path_a.empty() && !path_b.empty(),
                  "compare needs two result-file arguments");
  const CompareReport report = compare_json_files(path_a, path_b, tolerance);
  std::cout << path_a << " vs " << path_b << ": " << report.to_string();
  // Result documents may embed trace-analytics sections; call out drift
  // there separately, since it usually means behavior (not just noise).
  std::size_t analysis_diffs = 0;
  for (const CompareEntry& e : report.entries)
    if (e.path.find("analysis") != std::string::npos) ++analysis_diffs;
  if (analysis_diffs > 0)
    std::cout << analysis_diffs << " difference"
              << (analysis_diffs == 1 ? "" : "s")
              << " inside \"analysis\" sections\n";
  return report.within_tolerance() ? 0 : 1;
}

int cmd_trace_check(const std::vector<std::string>& args) {
  VIDUR_CHECK_MSG(args.size() == 1,
                  "trace-check needs exactly one trace file");
  const TraceValidation v =
      validate_chrome_trace(JsonValue::parse(read_file(args[0])));
  std::cout << "OK: " << args[0] << " — " << v.num_events << " events ("
            << v.num_complete_spans << " spans, " << v.num_instants
            << " instants, " << v.num_counter_samples
            << " counter samples), spans nest";
  if (v.num_raw_records > 0)
    std::cout << "; sidecar schema " << kTraceSchemaVersion << " ("
              << v.num_raw_records << " raw records)";
  else
    std::cout << "; no raw-record sidecar (analyze unavailable)";
  std::cout << "\n";
  return 0;
}

int cmd_list(const std::vector<std::string>& args) {
  VIDUR_CHECK_MSG(args.size() == 1,
                  "list needs one of: scenarios, models, skus, traces, "
                  "schedulers, modes");
  const std::string& what = args[0];
  std::vector<std::string> names;
  if (what == "scenarios") {
    for (const std::string& n : ScenarioRegistry::instance().names()) {
      std::cout << n << "  —  " << scenario_by_name(n).to_string() << "\n";
    }
    return 0;
  } else if (what == "models") {
    names = builtin_model_names();
  } else if (what == "skus") {
    names = builtin_sku_names();
  } else if (what == "traces") {
    names = builtin_trace_names();
  } else if (what == "schedulers") {
    names = scheduler_names();
  } else if (what == "modes") {
    names = experiment_mode_names();
  } else {
    throw Error("unknown list target '" + what +
                "'; expected scenarios, models, skus, traces, schedulers or "
                "modes");
  }
  for (const std::string& n : names) std::cout << n << "\n";
  return 0;
}

int cmd_init(const std::vector<std::string>& args) {
  ExperimentSpec spec;
  spec.name = "my-experiment";
  if (!args.empty()) spec.mode = experiment_mode_from_name(args[0]);
  switch (spec.mode) {
    case ExperimentMode::kSimulate:
    case ExperimentMode::kReference:
      break;
    case ExperimentMode::kCapacitySearch:
      // A trimmed space so the template runs in minutes, not hours.
      spec.search.skus = {"a100"};
      spec.search.pp_degrees = {1};
      spec.search.batch_sizes = {64, 128};
      break;
    case ExperimentMode::kElasticPlan: {
      spec.workload = WorkloadSpec{};
      spec.workload.scenario = "flash-crowd-mixed";
      spec.workload.num_requests = 0;
      AutoscalerConfig autoscale;
      autoscale.kind = AutoscalerKind::kReactive;
      spec.deployment.autoscale = autoscale;
      spec.deployment.global_scheduler = GlobalSchedulerKind::kLeastOutstanding;
      break;
    }
  }
  std::cout << spec.to_json_string();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(std::cerr, 2);
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "run") return cmd_run(args);
    if (command == "validate") return cmd_validate(args);
    if (command == "analyze") return cmd_analyze(args);
    if (command == "compare") return cmd_compare(args);
    if (command == "trace-check") return cmd_trace_check(args);
    if (command == "list") return cmd_list(args);
    if (command == "init") return cmd_init(args);
    if (command == "--help" || command == "-h" || command == "help")
      return usage(std::cout, 0);
    std::cerr << "unknown command '" << command << "'\n\n";
    return usage(std::cerr, 2);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
