// Fault-injection bench: recovery overhead and MTTR at fixed churn
// (src/fault/ + the recovery engine in src/sim/).
//
// Replays the identical spot-churn trace twice on a sticky elastic fleet:
// once clean, once with a fixed chaos profile (crashes + two spot windows
// + shed floor). The delta is what resilience costs: makespan overhead,
// re-prefilled tokens, retries, and the SLO attainment gap, plus the
// repair-side MTTR the autoscaler achieves when closing capacity holes.
// Gates: zero lost requests, at least one repair with MTTR > 0, and chaos
// never finishing faster than clean. Emits BENCH_faults.json.
#include <iostream>

#include "api/run.h"
#include "bench_util.h"
#include "common/check.h"
#include "common/table.h"
#include "scenario/registry.h"

namespace {

using namespace vidur;
using namespace vidur::bench;

constexpr std::uint64_t kSeed = 42;

/// Shared deployment: cache-aware routing over an elastic a100 fleet with
/// a floor of two, so fault-driven capacity loss (not load shrinkage) is
/// the only thing the chaos run adds.
ExperimentSpec base_spec(int num_requests) {
  AutoscalerConfig autoscale;
  autoscale.kind = AutoscalerKind::kReactive;
  autoscale.min_replicas = 2;
  autoscale.decision_interval = 2.0;
  autoscale.provision_delay = 2.0;
  autoscale.warmup_delay = 1.0;
  autoscale.scale_down_cooldown = 60.0;
  autoscale.target_load_per_replica = 3.0;
  autoscale.scale_up_load = 5.0;
  autoscale.scale_down_load = 0.5;

  ExperimentSpec spec;
  spec.with_name("faults")
      .with_model("llama2-7b")
      .with_sku("a100")
      .with_parallelism(1, 1, 4)
      .with_scheduler(SchedulerKind::kSarathi, /*max_batch_size=*/32,
                      /*chunk_size=*/512)
      .with_routing(GlobalSchedulerKind::kCacheAware)
      .with_prefix_cache()
      .with_autoscale(autoscale)
      .with_scenario("spot-churn", num_requests)
      .with_seed(kSeed);
  return spec;
}

/// The fixed churn: one abrupt two-replica reclaim, one noticed single
/// reclaim, and a background crash process, all well inside the horizon
/// even at VIDUR_BENCH_SCALE=0.25 (~130 s of trace).
FaultConfig churn_profile() {
  FaultConfig faults;
  faults.seed = 7;
  FaultProfile p;
  p.crash_mtbf_s = 240.0;
  p.spot_windows = {SpotWindow{30.0, 45.0, 2, 0.0},
                    SpotWindow{90.0, 30.0, 1, 5.0}};
  faults.profiles = {p};
  faults.recovery.max_attempts = 5;
  faults.recovery.backoff_base_s = 0.25;
  faults.shed.min_active_replicas = 1;
  return faults;
}

Json resilience_json(const ResilienceMetrics& r) {
  Json j = Json::object();
  j.set("num_crashes", r.num_crashes);
  j.set("num_spot_reclaims", r.num_spot_reclaims);
  j.set("num_retries", r.num_retries);
  j.set("num_handoffs", r.num_handoffs);
  j.set("num_shed", r.num_shed);
  j.set("num_lost", r.num_lost);
  j.set("tokens_reprefilled", r.tokens_reprefilled);
  j.set("decode_tokens_discarded", r.decode_tokens_discarded);
  j.set("num_repairs", r.num_repairs);
  j.set("mttr_s", r.mttr_s);
  j.set("slo_attainment_clean", r.slo_attainment_clean);
  j.set("slo_attainment_impacted", r.slo_attainment_impacted);
  return j;
}

Json run_json(const SimulationMetrics& m) {
  Json j = Json::object();
  j.set("num_completed", m.num_completed);
  j.set("makespan_s", m.makespan);
  j.set("throughput_qps", m.throughput_qps);
  j.set("slo_attainment", m.aggregate_slo_attainment());
  return j;
}

}  // namespace

int main() {
  VidurSession session(model_by_name("llama2-7b"));
  session.onboard("a100");

  const int num_requests = scaled(800, 200);

  ExperimentSpec clean_spec = base_spec(num_requests);
  std::cout << "=== fault recovery overhead: "
            << clean_spec.workload.scenario << " on "
            << clean_spec.deployment.to_string() << " ===\n\n";
  const SimulationMetrics clean =
      run_experiment(session, clean_spec).metrics;

  ExperimentSpec chaos_spec = base_spec(num_requests);
  chaos_spec.with_name("faults-chaos").with_faults(churn_profile());
  const SimulationMetrics chaos =
      run_experiment(session, chaos_spec).metrics;
  const ResilienceMetrics& r = chaos.resilience;

  const double overhead_pct =
      (chaos.makespan - clean.makespan) / clean.makespan * 100.0;
  const double slo_delta = clean.aggregate_slo_attainment() -
                           chaos.aggregate_slo_attainment();
  std::cout << "clean:  " << clean.num_completed << " completed, makespan "
            << fmt_double(clean.makespan, 2) << " s, SLO "
            << fmt_percent(clean.aggregate_slo_attainment()) << "\n"
            << "chaos:  " << chaos.num_completed << " completed, makespan "
            << fmt_double(chaos.makespan, 2) << " s, SLO "
            << fmt_percent(chaos.aggregate_slo_attainment()) << "\n"
            << "faults: " << r.num_crashes << " crashes, "
            << r.num_spot_reclaims << " spot reclaims, " << r.num_retries
            << " retries, " << r.num_shed << " shed, " << r.num_lost
            << " lost, " << r.tokens_reprefilled
            << " tokens re-prefilled\n"
            << "repair: " << r.num_repairs << " replacements, MTTR "
            << fmt_double(r.mttr_s, 2) << " s\n"
            << "cost:   " << fmt_double(overhead_pct, 1)
            << "% makespan overhead, " << fmt_double(slo_delta * 100.0, 2)
            << " points SLO attainment given up\n\n";

  // ---- acceptance: recover everything, and repair the capacity hole ----
  VIDUR_CHECK_MSG(r.num_spot_reclaims > 0,
                  "chaos run injected no spot reclaims (windows at 30 s / "
                  "90 s, makespan " << fmt_double(chaos.makespan, 2)
                                    << " s) — churn did not land");
  VIDUR_CHECK_MSG(r.num_lost == 0,
                  "recovery lost " << r.num_lost << " requests (budget "
                                   << "max_attempts=5); expected zero");
  VIDUR_CHECK_MSG(
      static_cast<std::int64_t>(chaos.num_completed) + r.num_shed ==
          static_cast<std::int64_t>(num_requests),
      "conservation broke: " << chaos.num_completed << " completed + "
                             << r.num_shed << " shed != " << num_requests);
  VIDUR_CHECK_MSG(r.num_repairs > 0 && r.mttr_s > 0.0,
                  "autoscaler closed no capacity holes (repairs "
                      << r.num_repairs << ", MTTR "
                      << fmt_double(r.mttr_s, 2) << " s)");
  VIDUR_CHECK_MSG(overhead_pct >= -0.01,
                  "chaos run finished faster than clean ("
                      << fmt_double(chaos.makespan, 2) << " s vs "
                      << fmt_double(clean.makespan, 2)
                      << " s) — injector is not costing anything");

  Json doc = Json::object();
  doc.set("scenario", clean_spec.workload.scenario);
  doc.set("num_requests", num_requests);
  doc.set("clean", run_json(clean));
  doc.set("chaos", run_json(chaos));
  doc.set("resilience", resilience_json(r));
  doc.set("makespan_overhead_pct", overhead_pct);
  doc.set("slo_delta_points", slo_delta * 100.0);
  write_bench_json("faults", doc);
  return 0;
}
