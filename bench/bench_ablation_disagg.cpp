// Ablation (paper §2.2): disaggregated prefill/decode serving (Splitwise /
// DistServe) against a unified deployment with the same GPU budget.
// Disaggregation removes prefill-decode interference: decode replicas never
// pause token generation to admit a prompt, so the TBT tail collapses; the
// price is KV-transfer latency on TTFT-to-second-token and a fixed split of
// compute between the roles.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace vidur;
  using namespace vidur::bench;

  const int num_requests = scaled(300, 80);

  std::cout << "=== Disaggregation ablation: LLaMA2-7B on 4x A100, Chat-1M "
               "===\n(unified = 4 vLLM replicas; disagg = 2 prefill + 2 "
               "decode replicas)\n\n";

  VidurSession session(model_by_name("llama2-7b"));

  ConsoleTable table({"qps", "deployment", "throughput qps", "TTFT p90 (s)",
                      "TBT p99 (s)", "TBT p50 (s)", "restarts"});

  for (double qps : {2.0, 4.0, 6.0}) {
    const Trace trace = generate_trace(
        trace_by_name("chat1m"), ArrivalSpec{ArrivalKind::kPoisson, qps, 0},
        num_requests, /*seed=*/51);

    DeploymentConfig unified;
    unified.sku_name = "a100";
    unified.parallel = ParallelConfig{1, 1, 4};
    unified.scheduler.kind = SchedulerKind::kVllm;
    unified.scheduler.max_batch_size = 64;

    DeploymentConfig disagg = unified;
    disagg.disagg.num_prefill_replicas = 2;

    for (const auto& [label, config] :
         {std::pair<const char*, const DeploymentConfig&>{"unified vLLM x4",
                                                          unified},
          {"disagg 2P + 2D", disagg}}) {
      const SimulationMetrics m = session.simulate(config, trace);
      table.add_row({fmt_double(qps, 1), label,
                     fmt_double(m.throughput_qps, 3),
                     fmt_double(m.ttft.p90, 3), fmt_double(m.tbt.p99, 4),
                     fmt_double(m.tbt.p50, 4), std::to_string(m.num_restarts)});
    }
  }

  std::cout << table.str() << "\n";
  std::cout << "expected shape: disaggregation cuts the TBT p99 tail at "
               "every load level\n(decodes never pause for prompts); the "
               "unified deployment holds an edge in\nraw throughput "
               "headroom because any replica can do any work (papers: "
               "Splitwise,\nDistServe; discussed in §2.2).\n";
  return 0;
}
