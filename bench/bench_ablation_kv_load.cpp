// Ablation (paper §7.3's GQA-vs-MHA observation, made controlled): the
// paper notes Qwen-72B (MHA, 64 KV heads) carries 8x the KV load of
// LLaMA2-70B (GQA, 8 KV heads) and is ~2x as expensive to serve. Model
// size, layer count and head dim all differ between those two; this bench
// isolates the attention choice by serving LLaMA2-70B against a synthetic
// MHA variant that differs *only* in num_kv_heads.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "scheduler/memory.h"

int main() {
  using namespace vidur;
  using namespace vidur::bench;

  const int num_requests = scaled(300, 80);
  const double qps = 0.6;

  ModelSpec gqa = model_by_name("llama2-70b");
  ModelSpec mha = gqa;
  mha.name = "llama2-70b-mha";
  mha.num_kv_heads = mha.num_q_heads;  // 8 -> 64 KV heads, everything else equal

  std::cout << "=== KV-load ablation: GQA (8 KV heads) vs MHA (64 KV heads) "
               "on LLaMA2-70B (TP4, A100), BWB-4K @ "
            << qps << " qps ===\n\n";
  std::cout << "KV bytes/token: GQA " << gqa.kv_bytes_per_token() << "  MHA "
            << mha.kv_bytes_per_token() << " ("
            << mha.kv_bytes_per_token() / gqa.kv_bytes_per_token()
            << "x, the paper's 8x)\n\n";

  // BWB-4K: the decode-heavy workload where KV capacity binds hardest.
  const Trace trace =
      generate_trace(trace_by_name("bwb4k"),
                     ArrivalSpec{ArrivalKind::kPoisson, qps, 0}, num_requests,
                     /*seed=*/41);

  ConsoleTable table({"attention", "KV blocks", "throughput qps",
                      "TTFT p90 (s)", "TBT p99 (s)", "KV util", "restarts",
                      "norm e2e p50"});

  for (const ModelSpec& model : {gqa, mha}) {
    DeploymentConfig config;
    config.sku_name = "a100";
    config.parallel = ParallelConfig{4, 1, 1};
    config.scheduler.kind = SchedulerKind::kVllm;
    config.scheduler.max_batch_size = 128;

    VidurSession session(model);
    const SimulationMetrics m = session.simulate(config, trace);
    NodeSpec node;
    node.sku = sku_by_name("a100");
    const MemoryPlan plan = plan_memory(model, node, config.parallel);
    table.add_row({model.uses_gqa() ? "GQA (8 kv heads)" : "MHA (64 kv heads)",
                   std::to_string(plan.num_kv_blocks),
                   fmt_double(m.throughput_qps, 3), fmt_double(m.ttft.p90, 3),
                   fmt_double(m.tbt.p99, 4), fmt_percent(m.mean_kv_utilization),
                   std::to_string(m.num_restarts),
                   fmt_double(m.normalized_e2e_latency.p50, 4)});
  }

  std::cout << table.str() << "\n";
  std::cout << "expected shape: the MHA variant has ~1/8 the KV blocks, "
               "saturates its KV pool,\npreempts/restarts under load and "
               "loses throughput — the mechanism behind the\npaper's "
               "\"Qwen-72B is ~2x more costly to serve\" observation "
               "(§7.3).\n";
  return 0;
}
