// Ablation (paper §6's scheduler-specific knob): Sarathi-Serve chunk size.
// The search space tries 512 / 1K / 2K tokens per iteration; this bench
// shows the tradeoff those options navigate. Smaller chunks interleave
// decodes more often (lower TBT tail) but stretch each prompt across more
// iterations (higher TTFT and lower peak throughput).
#include <iostream>

#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace vidur;
  using namespace vidur::bench;

  const int num_requests = scaled(400, 100);
  const double qps = 1.2;

  std::cout << "=== Chunk-size ablation: Sarathi-Serve, LLaMA2-70B (TP4, "
               "A100), Chat-1M @ "
            << qps << " qps, " << num_requests << " requests ===\n\n";

  VidurSession session(model_by_name("llama2-70b"));
  const Trace trace =
      generate_trace(trace_by_name("chat1m"),
                     ArrivalSpec{ArrivalKind::kPoisson, qps, 0}, num_requests,
                     /*seed=*/23);

  ConsoleTable table({"chunk size", "throughput qps", "TTFT p50 (s)",
                      "TTFT p90 (s)", "TBT p99 (s)", "norm e2e p50",
                      "mean batch"});

  for (TokenCount chunk : {256L, 512L, 1024L, 2048L, 4096L}) {
    DeploymentConfig config;
    config.sku_name = "a100";
    config.parallel = ParallelConfig{4, 1, 1};
    config.scheduler.kind = SchedulerKind::kSarathi;
    config.scheduler.max_batch_size = 128;
    config.scheduler.chunk_size = chunk;

    const SimulationMetrics m = session.simulate(config, trace);
    table.add_row({std::to_string(chunk), fmt_double(m.throughput_qps, 3),
                   fmt_double(m.ttft.p50, 3), fmt_double(m.ttft.p90, 3),
                   fmt_double(m.tbt.p99, 4),
                   fmt_double(m.normalized_e2e_latency.p50, 4),
                   fmt_double(m.mean_batch_size, 1)});
  }

  std::cout << table.str() << "\n";
  std::cout << "expected shape: TBT p99 grows with chunk size (prefill "
               "chunks displace decodes\nfor longer); TTFT shrinks with "
               "chunk size (prompts finish in fewer iterations).\nThe "
               "paper's search picks the chunk per workload from exactly "
               "this tradeoff (§6).\n";
  return 0;
}
