// Ablation (paper §4.4's design argument): compares the runtime-estimator
// model families — random forest (Vidur's choice), ridge polynomial
// regression, and 1-nearest-neighbor lookup — on held-out profiled points,
// and sweeps the profiling-grid density to show RF's data frugality.
//
// Expected shape: RF dominates polynomial regression (which cannot express
// tile/wave-quantization staircases) and degrades more gracefully than 1-NN
// as the profiling grid gets sparser.
#include <cmath>
#include <iostream>
#include <map>

#include "bench_util.h"
#include "common/table.h"
#include "estimator/runtime_estimator.h"
#include "operators/ground_truth.h"
#include "profiler/profiler.h"

namespace {

using namespace vidur;

/// Held-out evaluation points: off-grid sizes, log-uniform over each
/// operator's input range — matching the query distribution of an actual
/// simulation, which is dominated by small decode iterations where the
/// tile-size cliffs of the kernel cost model live.
ProfileDb make_holdout(const ModelSpec& model, const NodeSpec& node, int tp,
                       int points_per_op, std::uint64_t seed) {
  ProfileDb db(model.name, node.sku.name);
  Rng rng(seed);
  const OpShapes shapes(model, tp);
  auto log_uniform = [&rng](long lo, long hi) {
    const double v = rng.uniform(std::log(static_cast<double>(lo)),
                                 std::log(static_cast<double>(hi)));
    return static_cast<long>(std::lround(std::exp(v)));
  };
  for (OpType op : all_op_types()) {
    if (op_class(op) == OpClass::kCommunication) continue;
    for (int i = 0; i < points_per_op; ++i) {
      OpInput in;
      if (op_class(op) == OpClass::kTokenLevel) {
        in.tokens = log_uniform(1, 8192);
      } else if (op == OpType::kAttnPrefill) {
        in.q_tokens = log_uniform(32, 4096);
        in.kv_tokens = in.q_tokens + rng.uniform_int(0, 4096 - 32);
      } else {
        in.batch_size = static_cast<int>(log_uniform(1, 512));
        in.kv_tokens = in.batch_size * log_uniform(16, 8192);
      }
      const double truth = ground_truth_op_time(node, shapes, op, in);
      db.add({op, tp}, {in.features(op), truth});
    }
  }
  return db;
}

double overall_mape(const RuntimeEstimator& est, const ProfileDb& holdout) {
  double acc = 0.0;
  int n = 0;
  for (const ProfileKey& key : holdout.keys()) {
    acc += est.evaluate_mape(key, holdout.points(key));
    ++n;
  }
  return acc / n;
}

}  // namespace

int main() {
  using namespace vidur::bench;

  const ModelSpec model = model_by_name("llama2-70b");
  NodeSpec node;
  node.sku = sku_by_name("a100");
  const int tp = 4;
  const ProfileDb holdout = make_holdout(model, node, tp, 200, 77);

  std::cout << "=== Estimator ablation: held-out MAPE by model family and "
               "profiling-grid density ===\n(llama2-70b, a100, tp4; 200 "
               "held-out points per operator)\n\n";

  ConsoleTable table({"grid density", "profiled points", "random forest",
                      "ridge poly (deg 2)", "1-nearest-neighbor", "mlp"});

  for (double density : {0.25, 0.5, 1.0}) {
    ProfilerOptions popts;
    popts.grid_density = density;
    const ProfileDb profile = profile_model(model, node, {tp}, popts);

    std::vector<std::string> row = {fmt_double(density, 2),
                                    std::to_string(profile.total_points())};
    for (EstimatorKind kind :
         {EstimatorKind::kRandomForest, EstimatorKind::kRidgePoly,
          EstimatorKind::kNearestNeighbor, EstimatorKind::kMlp}) {
      RuntimeEstimator::Options eopts;
      eopts.kind = kind;
      const RuntimeEstimator est(profile, eopts);
      row.push_back(fmt_percent(overall_mape(est, holdout)));
    }
    table.add_row(row);
  }

  std::cout << table.str() << "\n";
  std::cout << "expected shape: RF lowest error; polynomial regression "
               "cannot express kernel\nnon-linearities; the MLP (the choice "
               "of prior training simulators, e.g. Habitat)\nneeds denser "
               "grids to close the gap; paper argues RF balances data "
               "frugality\nand fidelity (§4.4).\n";
  return 0;
}
