// Reproduces paper Figure 1b: the cost of misconfiguration. For LLaMA2-70B,
// find the optimal config on each reference trace, then serve each trace
// with every other trace's optimal config. Cell (reference, transfer) is the
// cost ratio QPS/$(optimal on transfer) / QPS/$(reference's optimal applied
// to transfer) — diagonal 1.0, off-diagonal up to ~2x in the paper.
#include <iostream>
#include <map>

#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace vidur;
  using namespace vidur::bench;

  SearchSpace space;
  space.batch_sizes = {64, 128, 256};
  space.sarathi_chunk_sizes = {512, 2048};

  VidurSearchOptions options;
  options.capacity.num_requests = scaled(250, 100);
  options.capacity.binary_search_iters = 4;

  std::cout << "=== Figure 1b: cost of misconfiguration (LLaMA2-70B) ===\n\n";

  VidurSession session(model_by_name("llama2-70b"));

  // Optimal config per trace.
  std::map<std::string, DeploymentConfig> optimal;
  std::map<std::string, double> optimal_value;  // QPS/$ of the trace's best
  for (const TraceSetup& t : paper_trace_setups()) {
    std::cerr << "searching optimal for " << t.trace_name << "...\n";
    const SearchResult result =
        run_search(session, space, trace_by_name(t.trace_name), options);
    const auto best = result.best() ? result.best()
                                    : result.best_unconstrained();
    if (!best) {
      std::cout << "no feasible config for " << t.display << "\n";
      return 1;
    }
    optimal[t.trace_name] = best->config;
    optimal_value[t.trace_name] = best->qps_per_dollar;
    std::cout << t.display << " optimal: " << best->config.to_string()
              << "  (" << fmt_double(best->qps_per_dollar, 3) << " QPS/$)\n";
  }

  // Cross matrix: run each trace's workload under the other traces' configs.
  std::cout << "\ncost ratio matrix (rows: config taken from; columns: "
               "trace served):\n\n";
  ConsoleTable table({"config from \\ served", "Chat-1M", "Arxiv-4K",
                      "BWB-4K"});
  double max_ratio = 1.0;
  for (const TraceSetup& source : paper_trace_setups()) {
    std::vector<std::string> row = {source.display};
    for (const TraceSetup& target : paper_trace_setups()) {
      double ratio = 1.0;
      if (source.trace_name != target.trace_name) {
        const CapacityResult cap =
            find_capacity(session, optimal[source.trace_name],
                          trace_by_name(target.trace_name), options.capacity);
        const double transferred_value =
            cap.feasible ? cap.capacity_qps /
                               optimal[source.trace_name].cost_per_hour()
                         : 0.0;
        ratio = transferred_value > 0
                    ? optimal_value[target.trace_name] / transferred_value
                    : std::numeric_limits<double>::infinity();
      }
      max_ratio = std::max(max_ratio, ratio);
      row.push_back(fmt_double(ratio, 2));
    }
    table.add_row(row);
  }

  std::cout << table.str() << "\n";
  std::cout << "max overhead factor: " << fmt_double(max_ratio, 2)
            << "x  (paper: up to 2x)\n";
  return 0;
}
