// Reproduces paper Figure 8 (appendix): prediction error of P95 normalized
// end-to-end latency as the arrival rate sweeps 0.75x..0.95x of capacity.
// The paper's trend: errors stay small at moderate load and grow (mostly
// more negative) toward the capacity tipping point, worst for the smallest
// model.
#include <cstdint>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace vidur;
  using namespace vidur::bench;

  const int num_requests = scaled(256);
  const std::vector<double> rates = {0.75, 0.80, 0.85, 0.90, 0.95};

  std::cout << "=== Figure 8: P95 normalized-latency error vs arrival rate "
               "(fraction of capacity) ===\n("
            << num_requests << " requests, vLLM scheduler)\n\n";

  ConsoleTable table({"model", "trace", "0.75", "0.80", "0.85", "0.90",
                      "0.95"});

  for (const ModelSetup& m : paper_model_setups()) {
    if (!model_enabled(m.model_name)) continue;
    VidurSession session(model_by_name(m.model_name));
    const DeploymentConfig config = fidelity_deployment(m);
    for (const TraceSetup& t : paper_trace_setups()) {
      if (!trace_enabled(t.trace_name)) continue;
      // One capacity search per pair, reused across rates.
      const double capacity = find_capacity_qps(session, config,
                                                t.trace_name, num_requests);
      std::vector<std::string> row = {m.display, t.display};
      std::uint64_t seed = 4000;
      for (double rate : rates) {
        const double qps = capacity * rate;
        const Trace trace = generate_trace(
            trace_by_name(t.trace_name),
            ArrivalSpec{ArrivalKind::kPoisson, qps, 0}, num_requests, seed++);
        const SimulationMetrics pred = session.simulate(config, trace);
        const SimulationMetrics real =
            session.simulate_reference(config, trace, seed ^ 0xf00dULL);
        const double err = (pred.normalized_e2e_latency.p95 -
                            real.normalized_e2e_latency.p95) /
                           real.normalized_e2e_latency.p95 * 100.0;
        row.push_back(fmt_double(err, 2) + "%");
      }
      table.add_row(row);
    }
  }

  std::cout << table.str() << "\n";
  std::cout << "paper: errors within ~±5% at 0.75-0.85, growing to ~-12.65% "
               "at 0.95 (LLaMA2-7B worst)\n";
  return 0;
}
