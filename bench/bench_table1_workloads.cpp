// Reproduces paper Table 1: request-length statistics of the three 4K-capped
// workloads (prefill/decode token mean, median, p90, and P:D ratio), printed
// next to the published numbers.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace vidur;
  using namespace vidur::bench;

  const int num_requests = scaled(20000, 2000);
  std::cout << "=== Table 1: workload statistics (" << num_requests
            << " sampled requests per trace) ===\n\n";

  ConsoleTable table({"trace", "source", "prefill mean", "prefill median",
                      "prefill p90", "decode mean", "decode median",
                      "decode p90", "P:D median"});

  Json rows = Json::array();
  for (const TraceSetup& t : paper_trace_setups()) {
    const Trace trace =
        generate_trace(trace_by_name(t.trace_name),
                       ArrivalSpec{ArrivalKind::kStatic, 0, 0}, num_requests,
                       /*seed=*/42);
    const TraceStats ours = compute_trace_stats(trace);
    const TraceStats paper = published_trace_stats(t.trace_name);

    Json row = Json::object();
    row.set("trace", t.trace_name);
    row.set("prefill_mean", ours.prefill_mean);
    row.set("prefill_mean_published", paper.prefill_mean);
    row.set("prefill_median", ours.prefill_median);
    row.set("prefill_median_published", paper.prefill_median);
    row.set("decode_median", ours.decode_median);
    row.set("decode_median_published", paper.decode_median);
    row.set("pd_ratio_median", ours.pd_ratio_median);
    row.set("pd_ratio_median_published", paper.pd_ratio_median);
    rows.push(row);

    table.add_row({t.display, "paper", fmt_double(paper.prefill_mean, 0),
                   fmt_double(paper.prefill_median, 0),
                   fmt_double(paper.prefill_p90, 0),
                   fmt_double(paper.decode_mean, 0),
                   fmt_double(paper.decode_median, 0),
                   fmt_double(paper.decode_p90, 0),
                   fmt_double(paper.pd_ratio_median, 2)});
    table.add_row({t.display, "ours", fmt_double(ours.prefill_mean, 0),
                   fmt_double(ours.prefill_median, 0),
                   fmt_double(ours.prefill_p90, 0),
                   fmt_double(ours.decode_mean, 0),
                   fmt_double(ours.decode_median, 0),
                   fmt_double(ours.decode_p90, 0),
                   fmt_double(ours.pd_ratio_median, 2)});
  }

  std::cout << table.str() << "\n";
  std::cout << "Trace generators are lognormal fits to the published "
               "full-dataset statistics,\nfiltered to max 4096 total tokens "
               "(the paper's construction); see DESIGN.md.\n";

  Json doc = Json::object();
  doc.set("workloads", rows);
  write_bench_json("table1_workloads", doc);
  return 0;
}
