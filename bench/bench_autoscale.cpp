// Elastic cluster bench: cost-aware capacity planning on the built-in
// flash-crowd scenario (src/cluster/ + src/search/elastic_plan).
//
// Static peak provisioning must keep the fleet sized for a 2-minute flash
// crowd through the whole run; the reactive autoscaler rides the traffic
// instead. The bench sweeps static fleet sizes for the SLO target, replays
// the identical trace under the reactive and predictive policies, and
// checks the headline claim: >= 20% lower GPU-hour cost than static peak
// at SLO attainment within one point. Emits BENCH_autoscale.json.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "api/run.h"
#include "bench_util.h"
#include "common/check.h"
#include "common/table.h"
#include "scenario/registry.h"
#include "search/elastic_plan.h"

namespace {

using namespace vidur;
using namespace vidur::bench;

constexpr std::uint64_t kSeed = 42;

/// The shared deployment shape, built once through the declarative API;
/// mode, scenario and autoscaling policy vary per run below.
ExperimentSpec base_spec(int num_requests) {
  ExperimentSpec spec;
  spec.with_name("autoscale")
      .with_model("llama2-7b")
      .with_sku("a100")
      .with_parallelism(1, 1, 1)
      .with_scheduler(SchedulerKind::kSarathi, /*max_batch_size=*/128,
                      /*chunk_size=*/512)
      .with_routing(GlobalSchedulerKind::kLeastOutstanding)
      .with_scenario("flash-crowd-mixed", num_requests)
      .with_seed(kSeed);
  return spec;
}

AutoscalerConfig reactive_policy() {
  AutoscalerConfig config;
  config.kind = AutoscalerKind::kReactive;
  config.min_replicas = 2;  // warm floor: baseline traffic stays smooth
  config.decision_interval = 2.0;
  config.provision_delay = 5.0;
  config.warmup_delay = 2.5;
  config.scale_up_cooldown = 0.0;
  config.scale_down_cooldown = 30.0;
  config.target_load_per_replica = 10.0;
  config.scale_up_load = 16.0;
  config.scale_down_load = 3.0;
  return config;
}

Json point_json(const ElasticPlanPoint& p) {
  Json j = Json::object();
  j.set("fleet_slots", p.fleet_size);
  j.set("mean_active_replicas", p.mean_active_replicas);
  j.set("gpu_hours", p.gpu_hours);
  j.set("cost_usd", p.cost_usd);
  j.set("slo_attainment", p.slo_attainment);
  j.set("makespan_s", p.makespan);
  j.set("num_scale_ups", p.num_scale_ups);
  j.set("num_scale_downs", p.num_scale_downs);
  if (!p.pools.empty()) {
    Json pools = Json::array();
    for (const PoolScalingReport& pool : p.pools) {
      Json row = Json::object();
      row.set("pool", pool.name);
      row.set("sku", pool.sku);
      row.set("role", pool.role);
      row.set("slots", pool.slots);
      row.set("peak_active", pool.peak_active);
      row.set("mean_active_replicas", pool.mean_active_replicas);
      row.set("num_scale_ups", pool.num_scale_up_events);
      row.set("num_scale_downs", pool.num_scale_down_events);
      row.set("gpu_hours", pool.gpu_hours);
      row.set("cost_usd", pool.cost_usd);
      pools.push(std::move(row));
    }
    j.set("pools", std::move(pools));
  }
  return j;
}

}  // namespace

int main() {
  VidurSession session(model_by_name("llama2-7b"));
  session.onboard("a100");

  // The built-in flash crowd, extended past the spike so the comparison
  // covers what static peak provisioning actually pays for: the long
  // baseline stretches on either side of the 2-minute crowd.
  const int num_requests = scaled(3600, 3000);

  // Declarative elastic plan: static sweep vs the reactive policy.
  ExperimentSpec plan_spec = base_spec(num_requests);
  plan_spec.with_name("autoscale-plan")
      .with_mode(ExperimentMode::kElasticPlan)
      .with_autoscale(reactive_policy());
  plan_spec.elastic.slo_target = 0.97;
  plan_spec.elastic.max_replicas = 6;
  plan_spec.elastic.burst_slots = 2;

  std::cout << "=== elastic capacity planning: "
            << plan_spec.workload.scenario << " on "
            << plan_spec.deployment.to_string() << " ===\n\n";

  const ElasticPlanResult plan =
      run_experiment(session, plan_spec).elastic;
  std::cout << "reactive autoscaler vs static peak (SLO target "
            << fmt_percent(plan_spec.elastic.slo_target) << "):\n"
            << plan.to_string() << "\n";

  // Predictive policy on the same trace and slot budget, reusing the
  // reactive plan's static baseline (the sweep is deterministic — no
  // point re-running it).
  Scenario scenario = scenario_by_name(plan_spec.workload.scenario);
  scenario.num_requests = num_requests;
  const AutoscalerConfig predictive = derive_predictive_policy(
      reactive_policy(), scenario, plan.static_peak.fleet_size);
  std::cout << "implied per-replica capacity: "
            << fmt_double(predictive.replica_capacity_qps, 2) << " qps\n\n";

  ExperimentSpec predictive_spec = base_spec(num_requests);
  predictive_spec.with_name("autoscale-predictive")
      .with_autoscale(predictive);
  predictive_spec.deployment.parallel.num_replicas =
      plan.static_peak.fleet_size + plan_spec.elastic.burst_slots;
  const ElasticPlanPoint predictive_point = ElasticPlanPoint::from_metrics(
      run_experiment(session, predictive_spec).metrics);
  const double predictive_savings_pct =
      (plan.static_peak.gpu_hours - predictive_point.gpu_hours) /
      plan.static_peak.gpu_hours * 100.0;
  std::cout << "predictive autoscaler: "
            << fmt_double(predictive_point.gpu_hours, 4) << " GPU-hours ($"
            << fmt_double(predictive_point.cost_usd, 2) << "), SLO "
            << fmt_percent(predictive_point.slo_attainment) << ", "
            << fmt_double(predictive_savings_pct, 1)
            << "% savings vs static peak\n\n";

  // ---- headline acceptance: cheaper at (near-)equal service quality ----
  const double attainment_delta =
      plan.autoscaled.slo_attainment - plan.static_peak.slo_attainment;
  std::cout << "reactive: " << fmt_double(plan.cost_savings_pct, 1)
            << "% GPU-hour savings, SLO attainment delta "
            << fmt_double(attainment_delta * 100.0, 2) << " points\n";
  // Failed runs must carry the measured numbers: the savings percentage
  // and both absolute GPU-hour figures, so a CI failure is diagnosable
  // from the log alone.
  VIDUR_CHECK_MSG(plan.cost_savings_pct >= 20.0,
                  "flash-crowd autoscaling saved only "
                      << fmt_double(plan.cost_savings_pct, 2)
                      << "% GPU-hours vs static peak (autoscaled "
                      << fmt_double(plan.autoscaled.gpu_hours, 4)
                      << " vs static " << fmt_double(plan.static_peak.gpu_hours, 4)
                      << " GPU-hours; expected >= 20%)");
  VIDUR_CHECK_MSG(attainment_delta >= -0.01,
                  "autoscaling gave up "
                      << fmt_double(-attainment_delta * 100.0, 2)
                      << " points of SLO attainment (autoscaled "
                      << fmt_percent(plan.autoscaled.slo_attainment)
                      << " vs static "
                      << fmt_percent(plan.static_peak.slo_attainment)
                      << "; at " << fmt_double(plan.cost_savings_pct, 2)
                      << "% GPU-hour savings)");

  Json doc = Json::object();
  doc.set("scenario", scenario.name);
  doc.set("num_requests", scenario.num_requests);
  doc.set("slo_target", plan_spec.elastic.slo_target);
  doc.set("static_peak", point_json(plan.static_peak));
  doc.set("reactive", point_json(plan.autoscaled));
  doc.set("predictive", point_json(predictive_point));
  doc.set("reactive_cost_savings_pct", plan.cost_savings_pct);
  doc.set("predictive_cost_savings_pct", predictive_savings_pct);
  doc.set("reactive_slo_delta_points", attainment_delta * 100.0);
  doc.set("static_feasible", plan.static_feasible);
  doc.set("num_simulations", plan.num_simulations + 1);
  write_bench_json("autoscale", doc);
  return 0;
}
