// Reproduces paper Figure 7 (appendix): dynamic-workload fidelity at 75% and
// 95% of maximum serving capacity — median and P95 normalized end-to-end
// latency, Real vs Predicted, for the four models x three traces.
//
// Paper reference: fidelity holds at 75%; at 95% errors grow (up to -12.65%
// for LLaMA2-7B) because small prediction deltas cascade near the capacity
// tipping point.
#include <cstdint>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace vidur;
  using namespace vidur::bench;

  const int num_requests = scaled(256);
  std::cout << "=== Figure 7: fidelity at 75% and 95% of capacity ("
            << num_requests << " requests, vLLM scheduler) ===\n\n";

  for (double rate : {0.75, 0.95}) {
    std::cout << "--- arrival rate = " << rate << " x capacity ---\n";
    ConsoleTable table({"model", "trace", "err p50", "err p95"});
    double worst = 0.0;
    for (const ModelSetup& m : paper_model_setups()) {
      if (!model_enabled(m.model_name)) continue;
      VidurSession session(model_by_name(m.model_name));
      const DeploymentConfig config = fidelity_deployment(m);
      std::uint64_t seed = 3000 + static_cast<std::uint64_t>(rate * 100);
      for (const TraceSetup& t : paper_trace_setups()) {
        if (!trace_enabled(t.trace_name)) continue;
        const FidelityPoint point = dynamic_fidelity(
            session, config, t.trace_name, rate, num_requests, seed++);
        table.add_row({m.display, t.display,
                       fmt_double(point.median_error_pct(), 2) + "%",
                       fmt_double(point.p95_error_pct(), 2) + "%"});
        worst = std::max({worst, std::abs(point.median_error_pct()),
                          std::abs(point.p95_error_pct())});
      }
    }
    std::cout << table.str();
    std::cout << "worst |error| = " << fmt_double(worst, 2)
              << "%   (paper: up to ~9% at 75%, up to ~12.7% at 95%)\n\n";
  }
  return 0;
}
