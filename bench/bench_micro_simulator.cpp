// Microbenchmarks of the simulator machinery itself: end-to-end simulation
// throughput (events and requests per second of wall time), estimator
// prediction latency with and without the lookup cache, and capacity-search
// cost. These are what make the paper's "42K GPU-hours in one CPU-hour"
// economics work.
#include <benchmark/benchmark.h>

#include "core/session.h"
#include "search/capacity.h"
#include "workload/trace_generator.h"

namespace {

using namespace vidur;

VidurSession& shared_session(const std::string& model) {
  static std::map<std::string, std::unique_ptr<VidurSession>> sessions;
  auto it = sessions.find(model);
  if (it == sessions.end()) {
    it = sessions
             .emplace(model,
                      std::make_unique<VidurSession>(model_by_name(model)))
             .first;
    it->second->onboard("a100");
  }
  return *it->second;
}

DeploymentConfig config_for(const std::string& model, SchedulerKind kind) {
  DeploymentConfig config;
  config.sku_name = "a100";
  config.parallel = ParallelConfig{model == "llama2-7b" ? 1 : 4, 1, 1};
  config.scheduler.kind = kind;
  config.scheduler.max_batch_size = 128;
  return config;
}

void BM_SimulateChat(benchmark::State& state, const std::string& model,
                     SchedulerKind kind) {
  VidurSession& session = shared_session(model);
  const DeploymentConfig config = config_for(model, kind);
  const int n = static_cast<int>(state.range(0));
  const Trace trace =
      generate_trace(trace_by_name("chat1m"),
                     ArrivalSpec{ArrivalKind::kPoisson, 1.0, 0}, n, 1);
  std::int64_t requests = 0;
  for (auto _ : state) {
    const SimulationMetrics m = session.simulate(config, trace);
    benchmark::DoNotOptimize(m.throughput_qps);
    requests += n;
  }
  state.counters["requests/s"] =
      benchmark::Counter(static_cast<double>(requests),
                         benchmark::Counter::kIsRate);
}

void BM_OnboardModel(benchmark::State& state) {
  for (auto _ : state) {
    VidurSession session(model_by_name("llama2-7b"));
    session.onboard("a100");
    benchmark::DoNotOptimize(session.profile("a100").total_points());
  }
}

void BM_EstimatorPredictCached(benchmark::State& state) {
  VidurSession& session = shared_session("llama2-7b");
  const RuntimeEstimator& est = session.estimator("a100");
  OpInput in;
  in.tokens = 512;
  for (auto _ : state)
    benchmark::DoNotOptimize(est.predict(OpType::kMlpGateUpProj, 1, in));
}

void BM_EstimatorPredictUncached(benchmark::State& state) {
  VidurSession& session = shared_session("llama2-7b");
  const RuntimeEstimator& est = session.estimator("a100");
  OpInput in;
  in.tokens = 512;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        est.predict_uncached(OpType::kMlpGateUpProj, 1, in));
}

void BM_CapacitySearch(benchmark::State& state) {
  VidurSession& session = shared_session("llama2-7b");
  const DeploymentConfig config =
      config_for("llama2-7b", SchedulerKind::kSarathi);
  CapacitySearchOptions options;
  options.num_requests = 150;
  options.binary_search_iters = 4;
  for (auto _ : state) {
    const CapacityResult cap =
        find_capacity(session, config, trace_by_name("chat1m"), options);
    benchmark::DoNotOptimize(cap.capacity_qps);
    state.counters["probes"] = cap.num_probes;
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_SimulateChat, llama7b_vllm, "llama2-7b",
                  vidur::SchedulerKind::kVllm)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SimulateChat, llama7b_sarathi, "llama2-7b",
                  vidur::SchedulerKind::kSarathi)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SimulateChat, llama70b_vllm, "llama2-70b",
                  vidur::SchedulerKind::kVllm)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SimulateChat, llama70b_orca, "llama2-70b",
                  vidur::SchedulerKind::kOrca)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OnboardModel)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EstimatorPredictCached);
BENCHMARK(BM_EstimatorPredictUncached);
BENCHMARK(BM_CapacitySearch)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
