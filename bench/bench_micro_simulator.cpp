// Microbenchmarks of the simulator machinery itself: end-to-end simulation
// throughput (events and requests per second of wall time), estimator
// prediction latency with and without the lookup cache, stage-timing memo
// effectiveness, and capacity-search cost. These are what make the paper's
// "42K GPU-hours in one CPU-hour" economics work.
//
// Writes BENCH_sim_core.json via bench_util so CI tracks the core's perf
// trajectory next to the fidelity benches. Self-timed (std::chrono) rather
// than Google-Benchmark-based so the harness builds and runs everywhere CI
// does.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_util.h"
#include "common/check.h"
#include "obs/analysis.h"
#include "obs/trace.h"
#include "search/capacity.h"
#include "workload/trace_generator.h"

namespace {

using namespace vidur;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

VidurSession& shared_session(const std::string& model) {
  static std::map<std::string, std::unique_ptr<VidurSession>> sessions;
  auto it = sessions.find(model);
  if (it == sessions.end()) {
    it = sessions
             .emplace(model,
                      std::make_unique<VidurSession>(model_by_name(model)))
             .first;
    it->second->onboard("a100");
  }
  return *it->second;
}

DeploymentConfig config_for(const std::string& model, SchedulerKind kind) {
  DeploymentConfig config;
  config.sku_name = "a100";
  config.parallel = ParallelConfig{model == "llama2-7b" ? 1 : 4, 1, 1};
  config.scheduler.kind = kind;
  config.scheduler.max_batch_size = 128;
  return config;
}

/// One BM_SimulateChat case: repeated end-to-end simulations of `n`
/// chat requests, reporting requests/s and events/s of wall time.
bench::Json simulate_chat_case(const std::string& model, SchedulerKind kind,
                               int n) {
  VidurSession& session = shared_session(model);
  const DeploymentConfig config = config_for(model, kind);
  const Trace trace =
      generate_trace(trace_by_name("chat1m"),
                     ArrivalSpec{ArrivalKind::kPoisson, 1.0, 0}, n, 1);

  // Warm the estimator cache and the allocator once, untimed.
  SimulationMetrics metrics = session.simulate(config, trace);

  const int reps = bench::scaled(40, 3);
  std::uint64_t events = 0;
  const double start = now_seconds();
  for (int i = 0; i < reps; ++i) {
    metrics = session.simulate(config, trace);
    events += metrics.num_sim_events;
  }
  const double elapsed = now_seconds() - start;

  bench::Json j = bench::Json::object();
  j.set("num_requests", static_cast<std::int64_t>(n));
  j.set("reps", static_cast<std::int64_t>(reps));
  j.set("sim_wall_ms", elapsed / reps * 1e3);
  j.set("requests_per_sec", static_cast<double>(n) * reps / elapsed);
  j.set("events_per_sec", static_cast<double>(events) / elapsed);
  j.set("events_per_sim", static_cast<double>(events) / reps);
  std::cout << "BM_SimulateChat/" << model << "/" << scheduler_name(kind)
            << ": "
            << static_cast<long>(static_cast<double>(n) * reps / elapsed)
            << " requests/s, "
            << static_cast<long>(static_cast<double>(events) / elapsed)
            << " events/s\n";
  return j;
}

/// Observability overhead: the same chat workload with a TraceRecorder
/// attached, so the BENCH trajectory shows what `--trace` costs (tracing
/// off is covered by simulate_chat_case — its hot path must stay within
/// noise of the committed baseline).
bench::Json traced_chat_case(const std::string& model, SchedulerKind kind,
                             int n) {
  VidurSession& session = shared_session(model);
  const DeploymentConfig config = config_for(model, kind);
  const Trace trace =
      generate_trace(trace_by_name("chat1m"),
                     ArrivalSpec{ArrivalKind::kPoisson, 1.0, 0}, n, 1);

  TraceRecorder recorder;
  SimObs obs;
  obs.trace = &recorder;
  session.simulate(config, trace, {}, obs);  // warm, untimed

  const int reps = bench::scaled(40, 3);
  std::size_t trace_records = 0;
  const double start = now_seconds();
  for (int i = 0; i < reps; ++i) {
    recorder.clear();
    session.simulate(config, trace, {}, obs);
    trace_records += recorder.records().size();
  }
  const double elapsed = now_seconds() - start;

  bench::Json j = bench::Json::object();
  j.set("num_requests", static_cast<std::int64_t>(n));
  j.set("reps", static_cast<std::int64_t>(reps));
  j.set("sim_wall_ms", elapsed / reps * 1e3);
  j.set("requests_per_sec", static_cast<double>(n) * reps / elapsed);
  j.set("trace_records_per_sim",
        static_cast<double>(trace_records) / reps);
  std::cout << "BM_SimulateChatTraced/" << model << "/"
            << scheduler_name(kind) << ": "
            << static_cast<long>(static_cast<double>(n) * reps / elapsed)
            << " requests/s, " << trace_records / reps
            << " trace records/sim\n";
  return j;
}

/// Post-run analytics cost (`vidur analyze` / obs.analyze): the engine's
/// wall time per record stream and per record. This is off the simulation
/// hot path by construction — the case exists to keep the post-processing
/// overhead honest as the analyzer grows.
bench::Json analyze_trace_case(const std::string& model, int n) {
  VidurSession& session = shared_session(model);
  const DeploymentConfig config =
      config_for(model, SchedulerKind::kSarathi);
  const Trace trace =
      generate_trace(trace_by_name("chat1m"),
                     ArrivalSpec{ArrivalKind::kPoisson, 1.0, 0}, n, 1);

  TraceRecorder recorder;
  SimObs obs;
  obs.trace = &recorder;
  session.simulate(config, trace, {}, obs);
  const std::vector<TraceRecord> records = recorder.records();

  AnalysisOptions options;
  options.ttft_target = 2.0;
  options.tbt_target = 0.2;
  AnalysisReport report = analyze_trace(records, options);  // warm, untimed

  const int reps = bench::scaled(40, 3);
  const double start = now_seconds();
  for (int i = 0; i < reps; ++i) report = analyze_trace(records, options);
  const double elapsed = now_seconds() - start;
  const double render_start = now_seconds();
  const std::string rendered = analysis_json(report).dump();
  const double render_ms = (now_seconds() - render_start) * 1e3;

  bench::Json j = bench::Json::object();
  j.set("num_records", static_cast<std::int64_t>(records.size()));
  j.set("reps", static_cast<std::int64_t>(reps));
  j.set("analyze_wall_ms", elapsed / reps * 1e3);
  j.set("records_per_sec",
        static_cast<double>(records.size()) * reps / elapsed);
  j.set("json_render_ms", render_ms);
  j.set("json_bytes", static_cast<std::int64_t>(rendered.size()));
  std::cout << "BM_AnalyzeTrace/" << model << ": "
            << elapsed / reps * 1e3 << " ms/report over " << records.size()
            << " records ("
            << static_cast<long>(static_cast<double>(records.size()) * reps /
                                 elapsed)
            << " records/s)\n";
  return j;
}

/// Fleet-scale throughput of the sharded parallel core: a 128-replica
/// round-robin fleet replaying a multi-hundred-thousand-request chat trace
/// at execution.threads 1/2/4/8, reporting events/s and the speedup curve.
/// The numbers are honest for whatever machine runs the bench — the
/// surrounding meta block records `hardware_threads`, and on a single-core
/// CI runner the curve is flat by construction (the SpinTeam yields under
/// oversubscription instead of spinning).
bench::Json fleet_scale_case() {
  VidurSession& session = shared_session("llama2-7b");
  DeploymentConfig config = config_for("llama2-7b", SchedulerKind::kVllm);
  config.parallel = ParallelConfig{1, 1, 128};
  const int n = bench::scaled(240000, 12000);
  const Trace trace =
      generate_trace(trace_by_name("chat1m"),
                     ArrivalSpec{ArrivalKind::kPoisson, 400.0, 0}, n, 3);

  // One full untimed replay first: the timed threads=1 run must not pay
  // the cold estimator misses and first-touch allocations that the later
  // thread counts would then inherit as all-hits (a fake speedup).
  {
    DeploymentConfig warm = config;
    warm.threads = 1;
    session.simulate(warm, trace);
  }

  bench::Json by_threads = bench::Json::object();
  double base_events_per_sec = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    config.threads = threads;
    const double start = now_seconds();
    const SimulationMetrics metrics = session.simulate(config, trace);
    const double elapsed = now_seconds() - start;
    const double events_per_sec =
        static_cast<double>(metrics.num_sim_events) / elapsed;
    if (threads == 1) base_events_per_sec = events_per_sec;

    bench::Json j = bench::Json::object();
    j.set("wall_s", elapsed);
    j.set("events", static_cast<std::int64_t>(metrics.num_sim_events));
    j.set("events_per_sec", events_per_sec);
    j.set("requests_per_sec", static_cast<double>(n) / elapsed);
    j.set("speedup_vs_1", base_events_per_sec > 0
                              ? events_per_sec / base_events_per_sec
                              : 1.0);
    std::cout << "BM_FleetScale/threads:" << threads << ": "
              << static_cast<long>(events_per_sec) << " events/s ("
              << events_per_sec / base_events_per_sec << "x vs 1 thread)\n";
    by_threads.set("t" + std::to_string(threads), std::move(j));
  }

  bench::Json j = bench::Json::object();
  j.set("num_replicas", static_cast<std::int64_t>(128));
  j.set("num_requests", static_cast<std::int64_t>(n));
  j.set("by_threads", std::move(by_threads));
  return j;
}

bench::Json estimator_case() {
  VidurSession& session = shared_session("llama2-7b");
  const RuntimeEstimator& est = session.estimator("a100");
  OpInput in;
  in.tokens = 512;

  // Snapshot before the latency loops: these counters reflect the
  // simulate-chat workload above, not the all-hit measurement loop below.
  const std::size_t workload_hits = est.cache_hits();
  const std::size_t workload_misses = est.cache_misses();

  const int cached_iters = bench::scaled(2000000, 100000);
  double sink = 0.0;
  double start = now_seconds();
  for (int i = 0; i < cached_iters; ++i)
    sink += est.predict(OpType::kMlpGateUpProj, 1, in);
  const double cached_ns = (now_seconds() - start) / cached_iters * 1e9;

  const int uncached_iters = bench::scaled(20000, 2000);
  start = now_seconds();
  for (int i = 0; i < uncached_iters; ++i)
    sink += est.predict_uncached(OpType::kMlpGateUpProj, 1, in);
  const double uncached_ns = (now_seconds() - start) / uncached_iters * 1e9;

  const double hit_rate =
      workload_hits + workload_misses > 0
          ? static_cast<double>(workload_hits) /
                static_cast<double>(workload_hits + workload_misses)
          : 0.0;

  bench::Json j = bench::Json::object();
  j.set("cached_ns_per_pred", cached_ns);
  j.set("uncached_ns_per_pred", uncached_ns);
  j.set("cache_hit_rate", hit_rate);
  j.set("cache_entries", static_cast<std::int64_t>(est.cache_size()));
  j.set("checksum", sink);  // keeps the loops from being optimized out
  std::cout << "BM_EstimatorPredict: cached " << cached_ns << " ns, uncached "
            << uncached_ns << " ns, hit rate " << hit_rate << "\n";
  return j;
}

bench::Json capacity_search_case() {
  VidurSession& session = shared_session("llama2-7b");
  const DeploymentConfig config =
      config_for("llama2-7b", SchedulerKind::kSarathi);
  CapacitySearchOptions options;
  options.num_requests = bench::scaled(150, 50);
  options.binary_search_iters = 4;
  const double start = now_seconds();
  const CapacityResult cap =
      find_capacity(session, config, trace_by_name("chat1m"), options);
  const double elapsed = now_seconds() - start;
  bench::Json j = bench::Json::object();
  j.set("wall_ms", elapsed * 1e3);
  j.set("capacity_qps", cap.capacity_qps);
  j.set("probes", static_cast<std::int64_t>(cap.num_probes));
  std::cout << "BM_CapacitySearch: " << elapsed * 1e3 << " ms, "
            << cap.num_probes << " probes\n";
  return j;
}

/// Opt-in perf gate: with VIDUR_BENCH_BASELINE pointing at a committed
/// BENCH_sim_core.json, every untraced chat case's requests_per_sec must
/// stay within VIDUR_BENCH_TOL (default 3%) of the baseline's. Returns the
/// number of regressions; wall-clock noise makes this a CI/dev knob, not a
/// default.
int check_against_baseline(const bench::Json& chat) {
  const char* baseline_path = std::getenv("VIDUR_BENCH_BASELINE");
  if (baseline_path == nullptr) return 0;
  const char* tol_env = std::getenv("VIDUR_BENCH_TOL");
  const double tol = tol_env != nullptr ? std::atof(tol_env) : 0.03;

  std::ifstream in(baseline_path);
  VIDUR_CHECK_MSG(in.good(), "cannot open baseline '" << baseline_path << "'");
  std::ostringstream text;
  text << in.rdbuf();
  const bench::Json baseline = bench::Json::parse(text.str());
  const bench::Json* results = baseline.find("results");
  const bench::Json* base_chat =
      results != nullptr ? results->find("BM_SimulateChat") : nullptr;
  VIDUR_CHECK_MSG(base_chat != nullptr,
                  "baseline '" << baseline_path
                               << "' has no results.BM_SimulateChat");

  int regressions = 0;
  for (const auto& [key, current] : chat.members()) {
    const bench::Json* base_case = base_chat->find(key);
    if (base_case == nullptr) continue;  // new case, nothing to compare
    const double base_rps = base_case->at("requests_per_sec").as_double();
    const double rps = current.at("requests_per_sec").as_double();
    const bool ok = rps >= base_rps * (1.0 - tol);
    std::cout << (ok ? "[baseline ok] " : "[REGRESSION] ") << key << ": "
              << static_cast<long>(rps) << " requests/s vs baseline "
              << static_cast<long>(base_rps) << " (tol " << tol * 100
              << "%)\n";
    regressions += ok ? 0 : 1;
  }
  return regressions;
}

}  // namespace

int main() {
  const int n = bench::scaled(200, 50);

  bench::Json chat = bench::Json::object();
  struct Case {
    const char* key;
    const char* model;
    SchedulerKind kind;
  };
  const Case cases[] = {
      {"llama7b_vllm", "llama2-7b", SchedulerKind::kVllm},
      {"llama7b_sarathi", "llama2-7b", SchedulerKind::kSarathi},
      {"llama70b_vllm", "llama2-70b", SchedulerKind::kVllm},
      {"llama70b_orca", "llama2-70b", SchedulerKind::kOrca},
  };
  for (const Case& c : cases) {
    if (!bench::model_enabled(c.model)) continue;
    chat.set(c.key, simulate_chat_case(c.model, c.kind, n));
  }

  bench::Json results = bench::Json::object();
  results.set("BM_SimulateChat", chat);
  if (bench::model_enabled("llama2-7b")) {
    results.set("BM_SimulateChatTraced",
                traced_chat_case("llama2-7b", SchedulerKind::kVllm, n));
    results.set("BM_AnalyzeTrace", analyze_trace_case("llama2-7b", n));
    results.set("BM_FleetScale", fleet_scale_case());
    results.set("BM_EstimatorPredict", estimator_case());
    results.set("BM_CapacitySearch", capacity_search_case());
  }

  bench::write_bench_json("sim_core", results);
  return check_against_baseline(chat) > 0 ? 1 : 0;
}
