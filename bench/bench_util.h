// Shared helpers for the benchmark harnesses: scaling via the
// VIDUR_BENCH_SCALE env var, the paper's model/trace matrix, and fidelity
// comparison runs (Real = reference executor, Predicted = Vidur).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "core/session.h"
#include "search/search.h"
#include "workload/trace_generator.h"

namespace vidur::bench {

/// The machine-readable BENCH_*.json outputs (perf/fidelity trajectory
/// tracking across PRs) build on the shared ordered JSON document type.
using Json = ::vidur::JsonValue;

/// Write `doc` to BENCH_<bench_name>.json in VIDUR_BENCH_JSON_DIR (default:
/// current directory) and report the path on stdout. The document is
/// wrapped with the bench name so downstream tooling can concatenate files.
void write_bench_json(const std::string& bench_name, const Json& doc);

/// Global effort multiplier from VIDUR_BENCH_SCALE (default 1.0). Values
/// below 1 shrink request counts and config spaces for quick runs.
double bench_scale();

/// n scaled by bench_scale(), floored at `min_n`.
int scaled(int n, int min_n = 16);

/// Optional filters for quick runs: when VIDUR_BENCH_MODEL /
/// VIDUR_BENCH_TRACE are set, anything else is skipped.
bool model_enabled(const std::string& model_name);
bool trace_enabled(const std::string& trace_name);

/// One fidelity evaluation setup from paper §7.1/§7.2.
struct ModelSetup {
  std::string model_name;
  int tensor_parallel;
  std::string display;  ///< e.g. "LLaMA2-7B (TP1)"
};

/// The paper's four models with their evaluation TP degrees.
const std::vector<ModelSetup>& paper_model_setups();

/// The paper's three workloads, display names matching the figures.
struct TraceSetup {
  std::string trace_name;
  std::string display;
};
const std::vector<TraceSetup>& paper_trace_setups();

/// Result of one fidelity comparison: the paper's "Real" and "Predicted"
/// bars plus the % error annotation.
struct FidelityPoint {
  double real_median = 0.0;
  double pred_median = 0.0;
  double real_p95 = 0.0;
  double pred_p95 = 0.0;

  double median_error_pct() const {
    return (pred_median - real_median) / real_median * 100.0;
  }
  double p95_error_pct() const {
    return (pred_p95 - real_p95) / real_p95 * 100.0;
  }
};

/// Fidelity of normalized *execution* latency on a static workload
/// (paper Fig. 3): all requests at t=0, vLLM scheduler.
FidelityPoint static_fidelity(VidurSession& session,
                              const DeploymentConfig& config,
                              const std::string& trace_name,
                              int num_requests, std::uint64_t seed);

/// Fidelity of normalized *end-to-end* latency on a dynamic workload at
/// `rate_fraction` of the configuration's capacity (paper Fig. 4/7).
FidelityPoint dynamic_fidelity(VidurSession& session,
                               const DeploymentConfig& config,
                               const std::string& trace_name,
                               double rate_fraction, int num_requests,
                               std::uint64_t seed);

/// The vLLM-scheduler deployment used by the fidelity experiments.
DeploymentConfig fidelity_deployment(const ModelSetup& setup);

/// Capacity (QPS) of `config` on `trace_name` via Vidur's capacity search.
double find_capacity_qps(VidurSession& session, const DeploymentConfig& config,
                         const std::string& trace_name, int num_requests);

}  // namespace vidur::bench
