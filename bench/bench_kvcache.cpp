// Prefix-cache end-to-end bench: plays the session-structured scenarios
// (multi-turn chat over a shared system prompt, mixed shared-prefix
// tenants) cold and cached on the fidelity deployment, reports hit rate,
// prefill-tokens-saved and cached-vs-cold throughput, and gates on the
// subsystem's acceptance bar: with cache-aware routing, >= 30% of the
// session-chat workload's prefill tokens must come from the cache. Emits
// BENCH_kvcache.json.
#include <iostream>
#include <string>

#include "bench_util.h"
#include "common/check.h"
#include "common/table.h"
#include "scenario/registry.h"

namespace {

using namespace vidur;
using namespace vidur::bench;

constexpr std::uint64_t kSeed = 42;

DeploymentConfig deployment(bool cache_on, GlobalSchedulerKind global) {
  DeploymentConfig config;
  config.sku_name = "a100";
  config.parallel = ParallelConfig{1, 1, 2};
  config.scheduler.kind = SchedulerKind::kSarathi;
  config.scheduler.max_batch_size = 128;
  config.scheduler.chunk_size = 512;
  config.global_scheduler = global;
  config.prefix_cache.enabled = cache_on;
  return config;
}

struct Variant {
  std::string name;
  bool cache_on;
  GlobalSchedulerKind global;
};

const std::vector<Variant>& variants() {
  static const std::vector<Variant> v = {
      {"cold", false, GlobalSchedulerKind::kRoundRobin},
      {"cached-rr", true, GlobalSchedulerKind::kRoundRobin},
      {"cached-aware", true, GlobalSchedulerKind::kCacheAware},
  };
  return v;
}

}  // namespace

int main() {
  VidurSession session(model_by_name("llama2-7b"));
  session.onboard("a100");

  std::cout << "=== prefix cache: session scenarios, cold vs cached, on "
            << deployment(true, GlobalSchedulerKind::kCacheAware).to_string()
            << " ===\n\n";

  Json scenarios_json = Json::array();
  ConsoleTable table({"scenario", "variant", "hit rate", "prefill saved",
                      "saved frac", "makespan", "tok/s"});
  double gate_saved_fraction = -1.0;

  for (const char* name : {"session-chat", "shared-prefix-mix"}) {
    Scenario scenario = scenario_by_name(name);
    scenario.num_requests = scaled(scenario.num_requests, 200);
    const Trace trace = generate_scenario_trace(scenario, kSeed);
    TokenCount total_prefill = 0;
    for (const Request& r : trace) total_prefill += r.prefill_tokens;

    Json row = Json::object();
    row.set("scenario", std::string(name));
    row.set("num_requests", trace.size());
    row.set("total_prefill_tokens", total_prefill);
    double cold_tok_per_s = 0.0;
    for (const Variant& v : variants()) {
      const SimulationMetrics m = session.simulate(
          deployment(v.cache_on, v.global), trace, scenario.tenant_infos());
      VIDUR_CHECK_MSG(m.num_completed == trace.size(),
                      "scenario '" << name << "' variant '" << v.name
                                   << "' lost requests");
      const double saved_fraction =
          static_cast<double>(m.prefix_cache.tokens_saved) /
          static_cast<double>(total_prefill);
      if (v.cache_on) {
        VIDUR_CHECK_MSG(m.prefix_cache.hits + m.prefix_cache.misses ==
                            m.prefix_cache.lookups,
                        "scenario '" << name << "' variant '" << v.name
                                     << "': hit/miss accounting leaked");
      }
      if (!v.cache_on) cold_tok_per_s = m.output_tokens_per_sec;

      table.add_row({name, v.name,
                     v.cache_on ? fmt_percent(m.prefix_cache.hit_rate())
                                : std::string("-"),
                     std::to_string(m.prefix_cache.tokens_saved),
                     v.cache_on ? fmt_percent(saved_fraction)
                                : std::string("-"),
                     fmt_double(m.makespan, 1) + "s",
                     fmt_double(m.output_tokens_per_sec, 0)});

      Json vj = Json::object();
      vj.set("cache_enabled", v.cache_on);
      vj.set("global_scheduler", global_scheduler_name(v.global));
      vj.set("makespan_s", m.makespan);
      vj.set("throughput_qps", m.throughput_qps);
      vj.set("output_tokens_per_sec", m.output_tokens_per_sec);
      if (v.cache_on) {
        vj.set("lookups", m.prefix_cache.lookups);
        vj.set("hits", m.prefix_cache.hits);
        vj.set("hit_rate", m.prefix_cache.hit_rate());
        vj.set("prefill_tokens_saved", m.prefix_cache.tokens_saved);
        vj.set("prefill_tokens_saved_fraction", saved_fraction);
        vj.set("kv_bytes_saved", m.prefix_cache.bytes_saved);
        vj.set("speedup_tokens_per_sec",
               cold_tok_per_s > 0 ? m.output_tokens_per_sec / cold_tok_per_s
                                  : 0.0);
        Json tenants = Json::array();
        for (const auto& t : m.prefix_cache.by_tenant) {
          Json tj = Json::object();
          tj.set("tenant", t.name);
          tj.set("lookups", t.lookups);
          tj.set("hits", t.hits);
          tj.set("hit_rate", t.hit_rate());
          tj.set("prefill_tokens_saved", t.tokens_saved);
          tenants.push(tj);
        }
        vj.set("by_tenant", tenants);
      }
      row.set(v.name, vj);

      if (std::string(name) == "session-chat" && v.name == "cached-aware")
        gate_saved_fraction = saved_fraction;
    }
    scenarios_json.push(row);
  }
  std::cout << table.str() << "\n";

  // ---- acceptance gate -------------------------------------------------
  std::cout << "session-chat prefill tokens served from cache "
               "(cache-aware routing): "
            << fmt_percent(gate_saved_fraction) << " (gate: >= 30%)\n";
  VIDUR_CHECK_MSG(gate_saved_fraction >= 0.30,
                  "prefix cache saved only "
                      << gate_saved_fraction * 100.0
                      << "% of session-chat prefill tokens; the subsystem's "
                         "acceptance bar is 30%");

  Json doc = Json::object();
  doc.set("scenarios", scenarios_json);
  doc.set("gate_prefill_saved_fraction", gate_saved_fraction);
  write_bench_json("kvcache", doc);
  return 0;
}
