// Reproduces paper Table 2: the cost of finding the optimal deployment
// configuration — projected cost of running every probed configuration on
// real GPUs ("Act") versus the measured wall-clock cost of simulating the
// whole search on CPU ("Sim"), per model x trace scenario.
//
// The paper's search (35,565 runs) projects to $1,139,865 of GPU time vs
// $125 of CPU time — savings factors of 3,800x to 33,000x. Absolute factors
// here depend on this machine's core count; the orders of magnitude carry.
#include <chrono>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace vidur;
  using namespace vidur::bench;

  // A representative slice of the search space per scenario (Table 2 is
  // about accounting — the savings ratio — not about re-finding the
  // optimum, so the slice is kept small).
  SearchSpace space;
  space.pp_degrees = {1, 2};
  space.batch_sizes = {64, 256};
  space.sarathi_chunk_sizes = {512};
  space.schedulers = {SchedulerKind::kVllm, SchedulerKind::kSarathi};

  VidurSearchOptions options;
  options.capacity.num_requests = scaled(250, 100);
  options.capacity.binary_search_iters = 4;
  options.prune = false;  // cost accounting should cover the full slice

  // The paper prices its 96-core search machine at $9.93/hr; scale to this
  // machine by core count.
  const double cpu_cost_per_hour =
      9.93 * std::max(1u, std::thread::hardware_concurrency()) / 96.0;

  std::cout << "=== Table 2: cost of finding the optimal configuration ===\n"
            << "(CPU priced at $" << fmt_double(cpu_cost_per_hour, 3)
            << "/hr for this machine)\n\n";

  ConsoleTable table({"scenario", "sim runs", "GPU time (hr)", "act $",
                      "sim wall (s)", "sim $", "savings"});

  double total_act = 0.0, total_sim = 0.0;
  for (const ModelSetup& m : paper_model_setups()) {
    if (!model_enabled(m.model_name)) continue;
    VidurSession session(model_by_name(m.model_name));
    for (const TraceSetup& t : paper_trace_setups()) {
      if (!trace_enabled(t.trace_name)) continue;
      const auto start = std::chrono::steady_clock::now();
      const double gpu_seconds_before = session.simulated_gpu_seconds();
      const auto runs_before = session.num_simulations();

      (void)run_search(session, space, trace_by_name(t.trace_name), options);

      const double wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      const double gpu_hours =
          (session.simulated_gpu_seconds() - gpu_seconds_before) / 3600.0;
      const auto runs = session.num_simulations() - runs_before;

      // Price GPU hours at the per-config SKU cost; configurations mix SKUs,
      // so use the mean of the space's SKU prices as the paper does with its
      // blended A100/H100 pool.
      double price_sum = 0.0;
      for (const auto& sku : space.skus)
        price_sum += sku_by_name(sku).cost_per_hour;
      const double gpu_price = price_sum / space.skus.size();

      const double act_dollars = gpu_hours * gpu_price;
      const double sim_dollars = wall_seconds / 3600.0 * cpu_cost_per_hour;
      total_act += act_dollars;
      total_sim += sim_dollars;

      table.add_row(
          {m.display + " x " + t.display, std::to_string(runs),
           fmt_double(gpu_hours, 1), fmt_double(act_dollars, 0),
           fmt_double(wall_seconds, 1), fmt_double(sim_dollars, 4),
           fmt_double(act_dollars / std::max(sim_dollars, 1e-9), 0) + "x"});
    }
  }

  std::cout << table.str() << "\n";
  std::cout << "total: act $" << fmt_double(total_act, 0) << " vs sim $"
            << fmt_double(total_sim, 2) << " -> "
            << fmt_double(total_act / std::max(total_sim, 1e-9), 0)
            << "x savings (paper: 3,837x - 33,354x per scenario)\n";
  return 0;
}
