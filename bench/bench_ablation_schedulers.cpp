// Ablation (paper §2.2 / §5): the latency-throughput tradeoff across the
// five batching policies on one deployment. Decode-prioritizing
// (FasterTransformer) gives low TBT but poor throughput; prefill-
// prioritizing (Orca+, vLLM, LightLLM) the reverse, with vLLM's eager
// prefills producing TBT stalls; Sarathi-Serve's chunked hybrid batches
// hold TBT low at near-vLLM throughput.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace vidur;
  using namespace vidur::bench;

  const int num_requests = scaled(400, 100);
  const double qps = 1.2;

  std::cout << "=== Scheduler ablation: LLaMA2-70B (TP4, A100), Chat-1M @ "
            << qps << " qps, " << num_requests << " requests ===\n\n";

  VidurSession session(model_by_name("llama2-70b"));
  const Trace trace =
      generate_trace(trace_by_name("chat1m"),
                     ArrivalSpec{ArrivalKind::kPoisson, qps, 0}, num_requests,
                     /*seed=*/21);

  ConsoleTable table({"scheduler", "throughput qps", "TTFT p90 (s)",
                      "TBT p99 (s)", "norm e2e p50", "batch", "restarts"});

  for (SchedulerKind kind :
       {SchedulerKind::kFasterTransformer, SchedulerKind::kOrca,
        SchedulerKind::kVllm, SchedulerKind::kSarathi,
        SchedulerKind::kLightLlm}) {
    DeploymentConfig config;
    config.sku_name = "a100";
    config.parallel = ParallelConfig{4, 1, 1};
    config.scheduler.kind = kind;
    config.scheduler.max_batch_size = 128;
    config.scheduler.chunk_size = 512;

    const SimulationMetrics m = session.simulate(config, trace);
    table.add_row({scheduler_name(kind), fmt_double(m.throughput_qps, 3),
                   fmt_double(m.ttft.p90, 3), fmt_double(m.tbt.p99, 4),
                   fmt_double(m.normalized_e2e_latency.p50, 4),
                   fmt_double(m.mean_batch_size, 1),
                   std::to_string(m.num_restarts)});
  }

  std::cout << table.str() << "\n";
  std::cout << "expected shape: Sarathi holds the lowest TBT tail among the "
               "continuous-batching\npolicies while matching vLLM-class "
               "throughput; FasterTransformer pays throughput\nfor its "
               "decode-only batches (paper §2.2).\n";
  return 0;
}
