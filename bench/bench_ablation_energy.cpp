// Ablation (paper §5.2 future work, implemented here): cluster energy
// accounting. Compares energy per generated token across the paper's four
// models and both SKUs at a moderate load, using the linear
// utilization-to-power model documented in metrics.h.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace vidur;
  using namespace vidur::bench;

  const int num_requests = scaled(200, 60);

  std::cout << "=== Energy ablation: J/token and mean draw by model and SKU "
               "(Chat-1M, Sarathi) ===\n\n";

  ConsoleTable table({"model", "sku", "tp", "qps served", "J/token",
                      "mean draw (W)", "energy (kJ)", "MFU"});

  for (const ModelSetup& setup : paper_model_setups()) {
    if (!model_enabled(setup.model_name)) continue;
    VidurSession session(model_by_name(setup.model_name));
    for (const std::string& sku : {std::string("a100"), std::string("h100")}) {
      DeploymentConfig config;
      config.sku_name = sku;
      config.parallel = ParallelConfig{setup.tensor_parallel, 1, 1};
      config.scheduler.kind = SchedulerKind::kSarathi;
      config.scheduler.max_batch_size = 128;
      config.scheduler.chunk_size = 512;

      // Fixed per-model load: enough to keep the replica busy without
      // overload on either SKU.
      const double qps = setup.tensor_parallel == 1 ? 2.0 : 0.8;
      const Trace trace = generate_trace(
          trace_by_name("chat1m"), ArrivalSpec{ArrivalKind::kPoisson, qps, 0},
          num_requests, /*seed=*/61);

      const SimulationMetrics m = session.simulate(config, trace);
      table.add_row({setup.display, sku,
                     std::to_string(setup.tensor_parallel),
                     fmt_double(m.throughput_qps, 2),
                     fmt_double(m.energy_per_output_token, 2),
                     fmt_double(m.mean_cluster_power_watts, 0),
                     fmt_double(m.total_energy_joules / 1e3, 1),
                     fmt_percent(m.mfu)});
    }
  }

  std::cout << table.str() << "\n";
  std::cout << "expected shape: J/token grows with model size; the H100 "
               "draws more watts but\nfinishes sooner, so its J/token stays "
               "comparable to or below the A100's at\nequal load; idle draw "
               "dominates when the replica is underutilized.\n";
  return 0;
}
