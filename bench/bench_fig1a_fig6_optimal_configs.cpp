// Reproduces paper Figure 1a and Figure 6 from a single Vidur-Search sweep:
//   * Fig 1a — the optimal deployment configuration (SKU, TP/PP, scheduler,
//     batch size) and its QPS per dollar for each of the 12 model x trace
//     pairs;
//   * Fig 6 — QPS per dollar of the best SLO-compliant configuration
//     (TTFT P90 < 2 s, TBT P99 < 200 ms) grouped by model and trace.
//
// Shape checks from the paper: QPS/$ ordering Chat-1M > Arxiv-4K > BWB-4K
// for every model; 7B >> 20B > 70B; Qwen-72B roughly 2x the cost of
// LLaMA2-70B (MHA vs GQA KV load); optimal config varies per trace.
//
// Also writes bench_out/search_summary.csv for downstream analysis.
#include <filesystem>
#include <iostream>

#include "bench_util.h"
#include "common/csv.h"
#include "common/table.h"

int main() {
  using namespace vidur;
  using namespace vidur::bench;

  SearchSpace space;
  space.batch_sizes = {64, 128, 256};
  space.sarathi_chunk_sizes = {512, 2048};

  VidurSearchOptions options;
  options.capacity.num_requests = scaled(250, 100);
  options.capacity.binary_search_iters = 4;
  options.num_threads = 0;

  std::cout << "=== Figure 1a / Figure 6: optimal deployment configuration "
               "per model x trace ===\n(search space: "
            << space.enumerate(model_by_name("llama2-7b")).size()
            << " configs per pair; SLOs TTFT-P90 < 2s, TBT-P99 < 200ms)\n\n";

  ConsoleTable fig1a({"model", "trace", "best config (Fig 1a)", "QPS/$",
                      "SLO-best QPS/$ (Fig 6)"});
  CsvWriter csv({"model", "trace", "config", "qps_per_dollar",
                 "slo_qps_per_dollar", "capacity_qps", "configs_evaluated"});

  for (const ModelSetup& m : paper_model_setups()) {
    if (!model_enabled(m.model_name)) continue;
    VidurSession session(model_by_name(m.model_name));
    for (const TraceSetup& t : paper_trace_setups()) {
      if (!trace_enabled(t.trace_name)) continue;
      std::cerr << "searching " << m.model_name << " x " << t.trace_name
                << "...\n";
      const SearchResult result = run_search(
          session, space, trace_by_name(t.trace_name), options);

      const auto best_slo = result.best();
      const auto best_any = result.best_unconstrained();
      const auto& fig1a_best = best_slo ? best_slo : best_any;

      std::string config_str = "(none feasible)";
      double qps_dollar = 0.0, slo_qps_dollar = 0.0, capacity = 0.0;
      if (fig1a_best) {
        config_str = fig1a_best->config.to_string();
        qps_dollar = fig1a_best->qps_per_dollar;
        capacity = fig1a_best->capacity_qps;
      }
      if (best_slo) slo_qps_dollar = best_slo->qps_per_dollar;

      fig1a.add_row({m.display, t.display, config_str,
                     fmt_double(qps_dollar, 3),
                     best_slo ? fmt_double(slo_qps_dollar, 3) : "none"});
      csv.add_row({m.model_name, t.trace_name, config_str,
                   fmt_double(qps_dollar, 4), fmt_double(slo_qps_dollar, 4),
                   fmt_double(capacity, 4),
                   std::to_string(result.evaluations.size())});
    }
  }

  std::cout << fig1a.str() << "\n";
  std::cout << "paper reference (Fig 1a QPS/$): 7B 1.831/0.533/0.179, "
               "20B 0.538/0.162/0.060,\n  70B 0.201/0.046/0.026, "
               "72B 0.091/0.027/0.012 (Chat-1M/Arxiv/BWB)\n";

  std::filesystem::create_directories("bench_out");
  csv.write_file("bench_out/search_summary.csv");
  std::cout << "\nwrote bench_out/search_summary.csv\n";
  return 0;
}
