// Ablation (paper §2.2): tensor vs pipeline parallelism on a fixed GPU
// budget, plus the asynchronous-pipeline-communication extension (paper
// §4.5 future work). TP splits every operator (lower latency, frequent
// collectives); PP splits layers (cheap send/recv, pipeline bubbles).
#include <iostream>

#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace vidur;
  using namespace vidur::bench;

  const int num_requests = scaled(300, 80);
  const double qps = 1.0;

  std::cout << "=== Parallelism ablation: LLaMA2-70B on 4x A100, Sarathi, "
               "Chat-1M @ "
            << qps << " qps, " << num_requests << " requests ===\n\n";

  VidurSession session(model_by_name("llama2-70b"));
  const Trace trace =
      generate_trace(trace_by_name("chat1m"),
                     ArrivalSpec{ArrivalKind::kPoisson, qps, 0}, num_requests,
                     /*seed=*/31);

  struct Layout {
    int tp, pp;
    bool async_comm;
    const char* label;
  };
  const Layout layouts[] = {
      {4, 1, false, "TP4"},
      {2, 2, false, "TP2 x PP2 (sync)"},
      {2, 2, true, "TP2 x PP2 (async comm)"},
      {1, 4, false, "PP4 (sync)"},
      {1, 4, true, "PP4 (async comm)"},
  };

  ConsoleTable table({"layout", "throughput qps", "TTFT p90 (s)",
                      "TBT p99 (s)", "norm e2e p50", "MFU", "busy"});

  for (const Layout& layout : layouts) {
    DeploymentConfig config;
    config.sku_name = "a100";
    config.parallel = ParallelConfig{layout.tp, layout.pp, 1};
    config.scheduler.kind = SchedulerKind::kSarathi;
    config.scheduler.max_batch_size = 128;
    config.scheduler.chunk_size = 512;
    config.async_pipeline_comm = layout.async_comm;

    const SimulationMetrics m = session.simulate(config, trace);
    table.add_row({layout.label, fmt_double(m.throughput_qps, 3),
                   fmt_double(m.ttft.p90, 3), fmt_double(m.tbt.p99, 4),
                   fmt_double(m.normalized_e2e_latency.p50, 4),
                   fmt_percent(m.mfu), fmt_percent(m.busy_fraction)});
  }

  std::cout << table.str() << "\n";
  std::cout << "expected shape: TP4 gives the lowest per-iteration latency "
               "(all GPUs on every\noperator); PP variants trade latency for "
               "cheaper communication; async comm\nrecovers part of the "
               "send/recv time from the pipeline's critical path (never\n"
               "slower than sync).\n";
  return 0;
}
