// Reproduces paper Figure 5: Pareto-frontier analysis for two scenarios —
// LLaMA2-70B on LMSys-Chat-1M and Qwen-72B on Arxiv-4K. For every config in
// the space we report capacity QPS/$ with the TTFT-P90 and TBT-P99 at the
// capacity operating point, print both Pareto frontiers (QPS/$ vs TTFT and
// vs TBT), flag SLO compliance, and name the best config.
//
// Paper reference best configs:
//   LLaMA2-70B–Chat-1M: PP2 TP2, Sarathi chunk 512, BS 256, H100 (0.20 QPS/$)
//   Qwen-72B–Arxiv-4K:  PP1 TP4, Sarathi chunk 512, BS 128, H100 (0.03 QPS/$)
#include <iostream>

#include "bench_util.h"
#include "common/table.h"

namespace {

using namespace vidur;
using namespace vidur::bench;

void analyze(const std::string& model_name, const std::string& trace_name,
             const std::string& title, const std::string& paper_best) {
  // Without pruning every config pays a full capacity search, so the space
  // is kept tighter than Fig 1a's.
  SearchSpace space;
  space.pp_degrees = {1, 2};
  space.batch_sizes = {64, 256};
  space.sarathi_chunk_sizes = {512};

  VidurSearchOptions options;
  options.capacity.num_requests = scaled(250, 100);
  options.capacity.binary_search_iters = 4;
  options.prune = false;  // the frontier needs every config evaluated

  std::cout << "--- " << title << " ---\n";
  VidurSession session(model_by_name(model_name));
  const SearchResult result =
      run_search(session, space, trace_by_name(trace_name), options);

  int feasible = 0, slo_ok = 0;
  for (const auto& e : result.evaluations) {
    feasible += e.feasible ? 1 : 0;
    slo_ok += e.meets_slo ? 1 : 0;
  }
  std::cout << result.evaluations.size() << " configs, " << feasible
            << " feasible, " << slo_ok << " SLO-compliant\n\n";

  for (bool use_ttft : {true, false}) {
    const auto frontier = result.pareto_frontier(use_ttft);
    std::cout << "Pareto frontier (QPS/$ vs "
              << (use_ttft ? "TTFT-P90" : "TBT-P99") << "):\n";
    ConsoleTable table({use_ttft ? "TTFT p90 (s)" : "TBT p99 (s)", "QPS/$",
                        "SLO", "config"});
    for (const auto& e : frontier) {
      table.add_row({fmt_double(use_ttft ? e.ttft_p90 : e.tbt_p99, 3),
                     fmt_double(e.qps_per_dollar, 3),
                     e.meets_slo ? "yes" : "NO", e.config.to_string()});
    }
    std::cout << table.str() << "\n";
  }

  const auto best = result.best();
  if (best) {
    std::cout << "best SLO-compliant config: " << best->config.to_string()
              << "\n  QPS/$ = " << fmt_double(best->qps_per_dollar, 3)
              << ", TTFT p90 = " << fmt_double(best->ttft_p90, 3)
              << "s, TBT p99 = " << fmt_double(best->tbt_p99, 3) << "s\n";
  } else {
    std::cout << "no SLO-compliant config found\n";
  }
  std::cout << "paper best: " << paper_best << "\n\n";
}

}  // namespace

int main() {
  std::cout << "=== Figure 5: Pareto frontier analysis (SLO: TTFT-P90 < 2s, "
               "TBT-P99 < 200ms) ===\n\n";
  analyze("llama2-70b", "chat1m", "LLaMA2-70B x LMSys-Chat-1M",
          "PP2 TP2 Sarathi(chunk 512, BS 256) on H100, 0.20 QPS/$");
  analyze("qwen-72b", "arxiv4k", "Qwen-72B x Arxiv-4K",
          "PP1 TP4 Sarathi(chunk 512, BS 128) on H100, 0.03 QPS/$");
  return 0;
}
