// Scenario engine end-to-end bench: plays every registered built-in
// scenario on the fidelity deployment (LLaMA2-7B, TP1, A100), verifies
// deterministic replay (same seed => identical per-tenant metrics), reports
// per-tenant TTFT-P90 / TBT-P99 / SLO attainment, and demonstrates
// priority-aware global routing improving the high-priority tenant's SLO
// attainment under flash-crowd overload. Emits BENCH_scenario_engine.json.
#include <iostream>

#include "bench_util.h"
#include "common/check.h"
#include "common/table.h"
#include "scenario/registry.h"

namespace {

using namespace vidur;
using namespace vidur::bench;

constexpr std::uint64_t kSeed = 42;

DeploymentConfig scenario_deployment(GlobalSchedulerKind global) {
  DeploymentConfig config;
  config.sku_name = "a100";
  config.parallel = ParallelConfig{1, 1, 1};
  config.scheduler.kind = SchedulerKind::kSarathi;
  config.scheduler.max_batch_size = 128;
  config.scheduler.chunk_size = 512;
  config.global_scheduler = global;
  return config;
}

void check_identical(const SimulationMetrics& a, const SimulationMetrics& b,
                     const std::string& name) {
  VIDUR_CHECK_MSG(a.num_completed == b.num_completed &&
                      a.tenant_metrics.size() == b.tenant_metrics.size(),
                  "scenario '" << name << "' replay diverged");
  for (std::size_t i = 0; i < a.tenant_metrics.size(); ++i) {
    const auto& ta = a.tenant_metrics[i];
    const auto& tb = b.tenant_metrics[i];
    VIDUR_CHECK_MSG(ta.num_completed == tb.num_completed &&
                        ta.ttft.p90 == tb.ttft.p90 &&
                        ta.tbt.p99 == tb.tbt.p99 &&
                        ta.slo_attainment == tb.slo_attainment,
                    "scenario '" << name << "' tenant '" << ta.info.name
                                 << "' metrics not deterministic");
  }
}

Json tenant_json(const SimulationMetrics::TenantMetrics& t) {
  Json j = Json::object();
  j.set("tenant", t.info.name);
  j.set("priority", t.info.priority);
  j.set("num_requests", t.num_requests);
  j.set("num_completed", t.num_completed);
  j.set("ttft_p90_s", t.ttft.p90);
  j.set("tbt_p99_s", t.tbt.p99);
  j.set("output_tokens_per_sec", t.output_tokens_per_sec);
  j.set("slo_attainment", t.slo_attainment);
  return j;
}

}  // namespace

int main() {
  VidurSession session(model_by_name("llama2-7b"));
  session.onboard("a100");

  std::cout << "=== scenario engine: built-in scenarios on "
            << scenario_deployment(GlobalSchedulerKind::kRoundRobin)
                   .to_string()
            << " ===\n\n";

  Json scenarios_json = Json::array();
  ConsoleTable table({"scenario", "tenant", "prio", "requests", "TTFT p90",
                      "TBT p99", "SLO attainment"});

  for (const std::string& name : builtin_scenario_names()) {
    Scenario scenario = scenario_by_name(name);
    scenario.num_requests = scaled(scenario.num_requests, 150);

    const Trace trace = generate_scenario_trace(scenario, kSeed);
    const Trace replay = generate_scenario_trace(scenario, kSeed);
    VIDUR_CHECK_MSG(trace.size() == replay.size(),
                    "scenario '" << name << "' trace not deterministic");

    const DeploymentConfig config =
        scenario_deployment(GlobalSchedulerKind::kRoundRobin);
    const SimulationMetrics metrics =
        session.simulate(config, trace, scenario.tenant_infos());
    const SimulationMetrics again =
        session.simulate(config, replay, scenario.tenant_infos());
    check_identical(metrics, again, name);

    Json row = Json::object();
    row.set("scenario", name);
    row.set("num_requests", trace.size());
    row.set("makespan_s", metrics.makespan);
    row.set("throughput_qps", metrics.throughput_qps);
    Json tenants = Json::array();
    for (const auto& t : metrics.tenant_metrics) {
      table.add_row({name, t.info.name, std::to_string(t.info.priority),
                     std::to_string(t.num_requests),
                     fmt_double(t.ttft.p90, 3) + "s",
                     fmt_double(t.tbt.p99, 4) + "s",
                     t.slo_attainment < 0 ? std::string("-")
                                          : fmt_percent(t.slo_attainment)});
      tenants.push(tenant_json(t));
    }
    row.set("tenants", tenants);
    scenarios_json.push(row);
  }
  std::cout << table.str() << "\n";

  // ---- priority routing under overload -------------------------------
  // The flash crowd drives the cluster past capacity; FIFO deferred
  // binding makes interactive requests queue behind batch ones, while
  // priority-aware routing lets them jump the central queue.
  std::cout << "=== priority-aware routing during flash-crowd overload "
               "===\n\n";
  Scenario overload = scenario_by_name("flash-crowd-mixed");
  // Below ~300 requests the flash crowd is too short to differentiate the
  // routing policies, so floor the demo above the quick-run scale.
  overload.num_requests = scaled(overload.num_requests, 300);
  const Trace trace = generate_scenario_trace(overload, kSeed);

  Json demo = Json::object();
  demo.set("scenario", overload.name);
  ConsoleTable demo_table({"routing", "tenant", "prio", "TTFT p90",
                           "sched delay p99", "SLO attainment"});
  double attainment_fifo = -1.0, attainment_priority = -1.0;
  for (const auto kind :
       {GlobalSchedulerKind::kDeferred, GlobalSchedulerKind::kPriority}) {
    const SimulationMetrics metrics = session.simulate(
        scenario_deployment(kind), trace, overload.tenant_infos());
    Json tenants = Json::array();
    for (const auto& t : metrics.tenant_metrics) {
      demo_table.add_row(
          {global_scheduler_name(kind), t.info.name,
           std::to_string(t.info.priority), fmt_double(t.ttft.p90, 3) + "s",
           fmt_double(t.scheduling_delay.p99, 3) + "s",
           fmt_percent(t.slo_attainment)});
      tenants.push(tenant_json(t));
      if (t.info.priority > 0) {
        (kind == GlobalSchedulerKind::kDeferred ? attainment_fifo
                                                : attainment_priority) =
            t.slo_attainment;
      }
    }
    demo.set(global_scheduler_name(kind), tenants);
  }
  std::cout << demo_table.str() << "\n";
  std::cout << "interactive (priority 1) SLO attainment: "
            << fmt_percent(attainment_fifo) << " (fifo deferred) -> "
            << fmt_percent(attainment_priority) << " (priority routing)\n";
  VIDUR_CHECK_MSG(
      attainment_priority > attainment_fifo,
      "priority routing failed to improve the high-priority tenant's SLO "
      "attainment under overload");

  Json doc = Json::object();
  doc.set("scenarios", scenarios_json);
  doc.set("priority_demo", demo);
  write_bench_json("scenario_engine", doc);
  return 0;
}
