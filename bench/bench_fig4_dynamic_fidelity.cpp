// Reproduces paper Figure 4: fidelity of Vidur's predictions on *dynamic*
// workloads — median and P95 normalized end-to-end latency, Real vs
// Predicted, with Poisson arrivals at 85% of each configuration's maximum
// serving capacity (the paper's production-representative operating point).
//
// Paper reference: < 5% error in almost all scenarios; the 7B model shows
// the largest errors (up to -8.5%) due to CPU overhead on short iterations.
#include <cstdint>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace vidur;
  using namespace vidur::bench;

  const int num_requests = scaled(256);
  std::cout << "=== Figure 4: dynamic-workload fidelity at 85% of capacity ("
            << num_requests << " requests, vLLM scheduler) ===\n\n";

  ConsoleTable table({"model", "trace", "real p50 (s/tok)", "pred p50",
                      "err p50", "real p95", "pred p95", "err p95"});
  double worst = 0.0;

  for (const ModelSetup& m : paper_model_setups()) {
    VidurSession session(model_by_name(m.model_name));
    const DeploymentConfig config = fidelity_deployment(m);
    std::uint64_t seed = 2000;
    for (const TraceSetup& t : paper_trace_setups()) {
      const FidelityPoint point = dynamic_fidelity(
          session, config, t.trace_name, 0.85, num_requests, seed++);
      table.add_row({m.display, t.display, fmt_double(point.real_median, 5),
                     fmt_double(point.pred_median, 5),
                     fmt_double(point.median_error_pct(), 2) + "%",
                     fmt_double(point.real_p95, 5),
                     fmt_double(point.pred_p95, 5),
                     fmt_double(point.p95_error_pct(), 2) + "%"});
      worst = std::max({worst, std::abs(point.median_error_pct()),
                        std::abs(point.p95_error_pct())});
    }
  }

  std::cout << table.str() << "\n";
  std::cout << "worst |error| = " << fmt_double(worst, 2)
            << "%   (paper: < 9% across the range, < 5% typical)\n";
  return 0;
}
