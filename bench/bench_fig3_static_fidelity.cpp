// Reproduces paper Figure 3: fidelity of Vidur's request execution time
// prediction on *static* (offline) workloads — median and P95 normalized
// execution latency (s/token), Real vs Predicted with % error, for the four
// models x three traces, vLLM scheduler.
//
// Paper reference: all errors within 3.33% (P95) / 3.01% (median).
#include <cstdint>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace vidur;
  using namespace vidur::bench;

  const int num_requests = scaled(256);
  std::cout << "=== Figure 3: static-workload fidelity (" << num_requests
            << " requests, vLLM scheduler) ===\n\n";

  ConsoleTable table({"model", "trace", "real p50 (s/tok)", "pred p50",
                      "err p50", "real p95", "pred p95", "err p95"});
  double worst_median = 0.0, worst_p95 = 0.0;

  for (const ModelSetup& m : paper_model_setups()) {
    VidurSession session(model_by_name(m.model_name));
    const DeploymentConfig config = fidelity_deployment(m);
    std::uint64_t seed = 1000;
    for (const TraceSetup& t : paper_trace_setups()) {
      const FidelityPoint point = static_fidelity(
          session, config, t.trace_name, num_requests, seed++);
      table.add_row({m.display, t.display, fmt_double(point.real_median, 5),
                     fmt_double(point.pred_median, 5),
                     fmt_double(point.median_error_pct(), 2) + "%",
                     fmt_double(point.real_p95, 5),
                     fmt_double(point.pred_p95, 5),
                     fmt_double(point.p95_error_pct(), 2) + "%"});
      worst_median =
          std::max(worst_median, std::abs(point.median_error_pct()));
      worst_p95 = std::max(worst_p95, std::abs(point.p95_error_pct()));
    }
  }

  std::cout << table.str() << "\n";
  std::cout << "worst |median error| = " << fmt_double(worst_median, 2)
            << "%   (paper: <= 3.01%)\n";
  std::cout << "worst |p95 error|    = " << fmt_double(worst_p95, 2)
            << "%   (paper: <= 3.33%)\n";
  return 0;
}
