#include "bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include <thread>

#include "common/check.h"
#include "common/thread_pool.h"
#include "search/capacity.h"

// Build provenance injected by CMake onto this target; fall back so the
// file still compiles standalone (e.g. in a scratch harness).
#ifndef VIDUR_GIT_SHA
#define VIDUR_GIT_SHA "unknown"
#endif
#ifndef VIDUR_BUILD_TYPE
#define VIDUR_BUILD_TYPE "unknown"
#endif

namespace vidur::bench {

namespace {

/// Provenance block stamped into every BENCH_*.json: enough to tell two
/// artifacts apart (which commit, which build flavor, how parallel a
/// machine, how scaled an effort) when diffing trajectories across PRs.
Json bench_meta() {
  Json meta = Json::object();
  meta.set("git_sha", std::string(VIDUR_GIT_SHA));
  meta.set("build_type", std::string(VIDUR_BUILD_TYPE));
  // hardware_threads() (not raw hardware_concurrency()) so an unknowable
  // core count stamps 1, never a nonsense 0.
  meta.set("hardware_threads", static_cast<std::int64_t>(hardware_threads()));
  meta.set("bench_scale", bench_scale());
  return meta;
}

}  // namespace

void write_bench_json(const std::string& bench_name, const Json& doc) {
  Json wrapped = Json::object();
  wrapped.set("bench", bench_name);
  wrapped.set("bench_scale", bench_scale());
  wrapped.set("meta", bench_meta());
  wrapped.set("results", doc);

  const char* dir = std::getenv("VIDUR_BENCH_JSON_DIR");
  const std::string path = (dir != nullptr ? std::string(dir) + "/" : "") +
                           "BENCH_" + bench_name + ".json";
  std::ofstream out(path);
  VIDUR_CHECK_MSG(out.good(), "cannot write " << path);
  out << wrapped.dump();
  out.close();
  VIDUR_CHECK_MSG(out.good(), "failed writing " << path);
  std::cout << "\n[bench json] " << path << "\n";
}

double bench_scale() {
  static const double scale = [] {
    const char* env = std::getenv("VIDUR_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double v = std::atof(env);
    return v > 0.0 ? v : 1.0;
  }();
  return scale;
}

int scaled(int n, int min_n) {
  return std::max(min_n, static_cast<int>(n * bench_scale()));
}

namespace {

bool env_filter(const char* var, const std::string& value) {
  const char* env = std::getenv(var);
  return env == nullptr || value == env;
}

}  // namespace

bool model_enabled(const std::string& model_name) {
  return env_filter("VIDUR_BENCH_MODEL", model_name);
}

bool trace_enabled(const std::string& trace_name) {
  return env_filter("VIDUR_BENCH_TRACE", trace_name);
}

const std::vector<ModelSetup>& paper_model_setups() {
  static const std::vector<ModelSetup> setups = {
      {"llama2-7b", 1, "LLaMA2-7B (TP1)"},
      {"internlm-20b", 2, "InternLM-20B (TP2)"},
      {"llama2-70b", 4, "LLaMA2-70B (TP4)"},
      {"qwen-72b", 4, "Qwen-72B (TP4)"},
  };
  return setups;
}

const std::vector<TraceSetup>& paper_trace_setups() {
  static const std::vector<TraceSetup> setups = {
      {"chat1m", "Chat-1M"},
      {"arxiv4k", "Arxiv-4K"},
      {"bwb4k", "BWB-4K"},
  };
  return setups;
}

DeploymentConfig fidelity_deployment(const ModelSetup& setup) {
  DeploymentConfig config;
  config.sku_name = "a100";
  config.parallel = ParallelConfig{setup.tensor_parallel, 1, 1};
  config.scheduler.kind = SchedulerKind::kVllm;  // paper: default vLLM
  config.scheduler.max_batch_size = 128;
  return config;
}

namespace {

FidelityPoint compare(const SimulationMetrics& real,
                      const SimulationMetrics& pred, bool execution_metric) {
  FidelityPoint point;
  const Summary& r = execution_metric ? real.normalized_execution_latency
                                      : real.normalized_e2e_latency;
  const Summary& p = execution_metric ? pred.normalized_execution_latency
                                      : pred.normalized_e2e_latency;
  point.real_median = r.p50;
  point.pred_median = p.p50;
  point.real_p95 = r.p95;
  point.pred_p95 = p.p95;
  return point;
}

}  // namespace

FidelityPoint static_fidelity(VidurSession& session,
                              const DeploymentConfig& config,
                              const std::string& trace_name,
                              int num_requests, std::uint64_t seed) {
  const Trace trace = generate_trace(trace_by_name(trace_name),
                                     ArrivalSpec{ArrivalKind::kStatic, 0, 0},
                                     num_requests, seed);
  const SimulationMetrics pred = session.simulate(config, trace);
  const SimulationMetrics real =
      session.simulate_reference(config, trace, seed ^ 0x5ca1ab1eULL);
  return compare(real, pred, /*execution_metric=*/true);
}

double find_capacity_qps(VidurSession& session,
                         const DeploymentConfig& config,
                         const std::string& trace_name, int num_requests) {
  CapacitySearchOptions options;
  options.num_requests = num_requests;
  const CapacityResult cap =
      find_capacity(session, config, trace_by_name(trace_name), options);
  VIDUR_CHECK_MSG(cap.feasible, "no feasible capacity for "
                                    << config.to_string() << " on "
                                    << trace_name);
  return cap.capacity_qps;
}

FidelityPoint dynamic_fidelity(VidurSession& session,
                               const DeploymentConfig& config,
                               const std::string& trace_name,
                               double rate_fraction, int num_requests,
                               std::uint64_t seed) {
  const double capacity =
      find_capacity_qps(session, config, trace_name, num_requests);
  const double qps = capacity * rate_fraction;
  const Trace trace =
      generate_trace(trace_by_name(trace_name),
                     ArrivalSpec{ArrivalKind::kPoisson, qps, 0}, num_requests,
                     seed);
  const SimulationMetrics pred = session.simulate(config, trace);
  const SimulationMetrics real =
      session.simulate_reference(config, trace, seed ^ 0x5ca1ab1eULL);
  return compare(real, pred, /*execution_metric=*/false);
}

}  // namespace vidur::bench
