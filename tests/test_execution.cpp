// Tests for src/execution: batch accounting, per-stage operator
// decomposition, and the two timing backends (predictor vs reference).
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/stats.h"
#include "execution/batch_spec.h"
#include "execution/execution_backend.h"
#include "execution/stage_workload.h"
#include "profiler/profiler.h"

namespace vidur {
namespace {

BatchItem prefill_item(RequestId id, TokenCount q, TokenCount kv = 0,
                       bool completes = true) {
  return BatchItem{id, q, kv, true, completes};
}

BatchItem decode_item(RequestId id, TokenCount kv) {
  return BatchItem{id, 1, kv, false, false};
}

TEST(BatchSpec, TokenAccounting) {
  BatchSpec batch;
  batch.items = {prefill_item(0, 100), prefill_item(1, 50, 200, false),
                 decode_item(2, 300), decode_item(3, 40)};
  EXPECT_EQ(batch.size(), 4);
  EXPECT_EQ(batch.total_q_tokens(), 152);
  EXPECT_EQ(batch.num_decodes(), 2);
  EXPECT_EQ(batch.num_prefills(), 2);
  EXPECT_EQ(batch.total_decode_kv(), 301 + 41);
  // Sampled: 2 decodes + 1 completing prefill.
  EXPECT_EQ(batch.tokens_sampled(), 3);
}

TEST(BatchSpec, PrefillEquivalentLengthMatchesPaperFormula) {
  // Paper §4.3: batch of prefills p_i ~ one prefill of sqrt(sum p_i^2).
  BatchSpec batch;
  batch.items = {prefill_item(0, 300), prefill_item(1, 400)};
  EXPECT_EQ(batch.prefill_equivalent_length(), 500);  // 3-4-5 triangle
}

TEST(BatchSpec, PrefillEquivalentAccountsForChunkPrefix) {
  // A chunk of q tokens attending over kv context contributes q*kv work.
  BatchSpec batch;
  batch.items = {prefill_item(0, 100, 300, false)};  // kv_total = 400
  EXPECT_EQ(batch.prefill_equivalent_length(),
            static_cast<TokenCount>(std::ceil(std::sqrt(100.0 * 400.0))));
}

TEST(BatchSpec, DecodeOnlyBatchHasZeroEquivalent) {
  BatchSpec batch;
  batch.items = {decode_item(0, 100)};
  EXPECT_EQ(batch.prefill_equivalent_length(), 0);
}

TEST(BatchSpec, FlopsPositiveAndMonotone) {
  const ModelSpec model = model_by_name("llama2-7b");
  BatchSpec small, large;
  small.items = {prefill_item(0, 128)};
  large.items = {prefill_item(0, 1024)};
  EXPECT_GT(batch_flops(model, small), 0);
  EXPECT_GT(batch_flops(model, large), batch_flops(model, small) * 7.9);
}

// ---------------------------------------------------------- decomposition

struct DecomposedOps {
  std::map<OpType, int> counts;  // total invocation count per op
};

DecomposedOps decompose(const ModelSpec& model, const ParallelConfig& par,
                        const BatchSpec& batch, StageId stage,
                        AttentionMode mode = AttentionMode::kEquivalentPrefill) {
  const OpShapes shapes(model, par.tensor_parallel);
  DecomposedOps out;
  for (const OpInvocation& inv :
       decompose_stage(shapes, par, batch, stage, mode))
    out.counts[inv.op] += inv.count;
  return out;
}

TEST(StageWorkload, SingleStageHasAllPieces) {
  const ModelSpec model = model_by_name("llama2-7b");
  BatchSpec batch;
  batch.items = {prefill_item(0, 128), decode_item(1, 500)};
  const auto ops = decompose(model, ParallelConfig{1, 1, 1}, batch, 0);
  EXPECT_EQ(ops.counts.at(OpType::kEmbedLookup), 1);
  EXPECT_EQ(ops.counts.at(OpType::kAttnQkvProj), 32);
  EXPECT_EQ(ops.counts.at(OpType::kRmsNorm), 2 * 32 + 1);  // + final norm
  EXPECT_EQ(ops.counts.at(OpType::kAttnPrefill), 32);
  EXPECT_EQ(ops.counts.at(OpType::kAttnDecode), 32);
  EXPECT_EQ(ops.counts.at(OpType::kLmHead), 1);
  EXPECT_EQ(ops.counts.count(OpType::kAllReduce), 0u);  // tp=1
  EXPECT_EQ(ops.counts.count(OpType::kSendRecv), 0u);   // single stage
}

TEST(StageWorkload, TensorParallelAddsAllReduces) {
  const ModelSpec model = model_by_name("llama2-7b");
  BatchSpec batch;
  batch.items = {decode_item(0, 100)};
  const auto ops = decompose(model, ParallelConfig{2, 1, 1}, batch, 0);
  EXPECT_EQ(ops.counts.at(OpType::kAllReduce), 2 * 32);
}

TEST(StageWorkload, PipelineSplitsLayersAndAddsSendRecv) {
  const ModelSpec model = model_by_name("llama2-7b");  // 32 layers
  const ParallelConfig par{1, 2, 1};
  BatchSpec batch;
  batch.items = {prefill_item(0, 64)};
  const auto first = decompose(model, par, batch, 0);
  const auto last = decompose(model, par, batch, 1);
  EXPECT_EQ(first.counts.at(OpType::kAttnQkvProj), 16);
  EXPECT_EQ(last.counts.at(OpType::kAttnQkvProj), 16);
  EXPECT_EQ(first.counts.at(OpType::kSendRecv), 1);
  EXPECT_EQ(first.counts.count(OpType::kLmHead), 0u);
  EXPECT_EQ(first.counts.count(OpType::kEmbedLookup), 1u);
  EXPECT_EQ(last.counts.count(OpType::kSendRecv), 0u);
  EXPECT_EQ(last.counts.at(OpType::kLmHead), 1);
  EXPECT_EQ(last.counts.count(OpType::kEmbedLookup), 0u);
}

TEST(StageWorkload, PerRequestModeEmitsOnePrefillKernelPerItem) {
  const ModelSpec model = model_by_name("llama2-7b");
  BatchSpec batch;
  batch.items = {prefill_item(0, 128), prefill_item(1, 256),
                 prefill_item(2, 64)};
  const OpShapes shapes(model, 1);
  int equivalent_kernels = 0, per_request_kernels = 0;
  for (const auto& inv :
       decompose_stage(shapes, ParallelConfig{1, 1, 1}, batch, 0,
                       AttentionMode::kEquivalentPrefill))
    equivalent_kernels += inv.op == OpType::kAttnPrefill ? 1 : 0;
  for (const auto& inv :
       decompose_stage(shapes, ParallelConfig{1, 1, 1}, batch, 0,
                       AttentionMode::kPerRequest))
    per_request_kernels += inv.op == OpType::kAttnPrefill ? 1 : 0;
  EXPECT_EQ(equivalent_kernels, 1);
  EXPECT_EQ(per_request_kernels, 3);
}

TEST(StageWorkload, NoLmHeadWhenNothingSampled) {
  const ModelSpec model = model_by_name("llama2-7b");
  BatchSpec batch;
  batch.items = {prefill_item(0, 128, 0, /*completes=*/false)};
  const auto ops = decompose(model, ParallelConfig{1, 1, 1}, batch, 0);
  EXPECT_EQ(ops.counts.count(OpType::kLmHead), 0u);
}

TEST(StageWorkload, EmptyBatchThrows) {
  const ModelSpec model = model_by_name("llama2-7b");
  const OpShapes shapes(model, 1);
  BatchSpec empty;
  EXPECT_THROW(decompose_stage(shapes, ParallelConfig{1, 1, 1}, empty, 0,
                               AttentionMode::kEquivalentPrefill),
               Error);
}

// ---------------------------------------------------------------- backends

class BackendTest : public ::testing::Test {
 protected:
  static const RuntimeEstimator& estimator() {
    static const RuntimeEstimator instance = [] {
      NodeSpec node;
      node.sku = sku_by_name("a100");
      ProfilerOptions opts;
      opts.max_tokens = 8192;
      return RuntimeEstimator(
          profile_model(model_by_name("llama2-7b"), node, {1}, opts));
    }();
    return instance;
  }

  NodeSpec node() const {
    NodeSpec n;
    n.sku = sku_by_name("a100");
    return n;
  }
};

TEST_F(BackendTest, PredictorTracksReferenceWithinTenPercent) {
  const ModelSpec model = model_by_name("llama2-7b");
  const ParallelConfig par{1, 1, 1};
  ExecutionTimePredictor predictor(&estimator(), model, par);
  ReferenceExecutor reference(node(), model, par, /*seed=*/7);

  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    BatchSpec batch;
    const int decodes = static_cast<int>(rng.uniform_int(0, 32));
    for (int i = 0; i < decodes; ++i)
      batch.items.push_back(decode_item(i, rng.uniform_int(16, 2000)));
    if (rng.bernoulli(0.5) || decodes == 0)
      batch.items.push_back(prefill_item(99, rng.uniform_int(64, 2048)));
    const double pred = predictor.stage_time(batch, 0);
    const double real = reference.stage_time(batch, 0);
    EXPECT_NEAR(pred / real, 1.0, 0.10) << "trial " << trial;
  }
}

TEST_F(BackendTest, PredictorIsDeterministic) {
  const ModelSpec model = model_by_name("llama2-7b");
  ExecutionTimePredictor predictor(&estimator(), model,
                                   ParallelConfig{1, 1, 1});
  BatchSpec batch;
  batch.items = {prefill_item(0, 777), decode_item(1, 1234)};
  const double a = predictor.stage_time(batch, 0);
  const double b = predictor.stage_time(batch, 0);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST_F(BackendTest, ReferenceJittersAroundItsMedian) {
  const ModelSpec model = model_by_name("llama2-7b");
  ReferenceExecutor reference(node(), model, ParallelConfig{1, 1, 1}, 11);
  BatchSpec batch;
  batch.items = {decode_item(0, 500)};
  SampleSeries times;
  for (int i = 0; i < 400; ++i) times.add(reference.stage_time(batch, 0));
  EXPECT_GT(times.stddev(), 0.0);
  EXPECT_LT(times.stddev() / times.mean(), 0.05);
}

TEST_F(BackendTest, CpuOverheadScalesWithBatchSize) {
  const ModelSpec model = model_by_name("llama2-7b");
  ExecutionTimePredictor predictor(&estimator(), model,
                                   ParallelConfig{1, 1, 1});
  BatchSpec small, large;
  small.items = {decode_item(0, 10)};
  for (int i = 0; i < 100; ++i) large.items.push_back(decode_item(i, 10));
  EXPECT_GT(predictor.cpu_overhead(large), predictor.cpu_overhead(small));
}

TEST_F(BackendTest, ReferenceCpuOverheadHasHeavierMeanThanMedian) {
  // Profiling records medians; real runs jitter lognormally, so the real
  // mean exceeds the predictor value — the paper's 7B bias mechanism.
  const ModelSpec model = model_by_name("llama2-7b");
  const ParallelConfig par{1, 1, 1};
  ExecutionTimePredictor predictor(&estimator(), model, par);
  ReferenceExecutor reference(node(), model, par, 13);
  BatchSpec batch;
  batch.items = {decode_item(0, 10)};
  RunningStats real;
  for (int i = 0; i < 20000; ++i) real.add(reference.cpu_overhead(batch));
  EXPECT_GT(real.mean(), predictor.cpu_overhead(batch) * 1.02);
}

}  // namespace
}  // namespace vidur

// Appended coverage: HBM byte accounting and operator-level breakdown.
namespace vidur {
namespace {

TEST(BatchHbmBytes, DecodeKvDominatesLongContexts) {
  const ModelSpec model = model_by_name("llama2-7b");
  BatchSpec short_ctx, long_ctx;
  short_ctx.items = {decode_item(0, 100)};
  long_ctx.items = {decode_item(0, 100000)};
  EXPECT_GT(batch_hbm_bytes_per_gpu(model, 1, 1, long_ctx),
            2 * batch_hbm_bytes_per_gpu(model, 1, 1, short_ctx));
}

TEST(BatchHbmBytes, ShardsAcrossGpus) {
  const ModelSpec model = model_by_name("llama2-7b");
  BatchSpec batch;
  batch.items = {decode_item(0, 5000)};
  EXPECT_LT(batch_hbm_bytes_per_gpu(model, 4, 1, batch),
            batch_hbm_bytes_per_gpu(model, 1, 1, batch));
}

TEST(BatchHbmBytes, GqaReplicationFloorsKvShare) {
  // LLaMA2-70B has 8 KV heads: beyond tp=8 the per-GPU KV share stops
  // shrinking even though the weight shard keeps halving.
  const ModelSpec model = model_by_name("llama2-70b");
  BatchSpec batch;
  batch.items = {decode_item(0, 50000)};
  const ByteCount weights16 = model.weight_bytes() / 16;
  const ByteCount kv8 =
      batch_hbm_bytes_per_gpu(model, 8, 1, batch) - model.weight_bytes() / 8;
  const ByteCount kv16 = batch_hbm_bytes_per_gpu(model, 16, 1, batch) -
                         weights16;
  EXPECT_EQ(kv8, kv16);
}

TEST_F(BackendTest, BreakdownSumsToStageTime) {
  const ModelSpec model = model_by_name("llama2-7b");
  ExecutionTimePredictor predictor(&estimator(), model,
                                   ParallelConfig{1, 1, 1});
  BatchSpec batch;
  batch.items = {prefill_item(0, 512), decode_item(1, 3000)};
  const OpTimeBreakdown breakdown = predictor.stage_breakdown(batch, 0);
  EXPECT_NEAR(breakdown.total, predictor.stage_time(batch, 0), 1e-12);
  double sum = 0.0;
  for (const auto& [op, t] : breakdown.per_op) sum += t;
  EXPECT_NEAR(sum, breakdown.total, 1e-12);
  // sorted() is descending and covers every op in the map.
  const auto sorted = breakdown.sorted();
  EXPECT_EQ(sorted.size(), breakdown.per_op.size());
  for (std::size_t i = 1; i < sorted.size(); ++i)
    EXPECT_GE(sorted[i - 1].second, sorted[i].second);
}

TEST_F(BackendTest, GemmsAreTheHeavyOpsForPrefill) {
  // Paper §5.2's purpose for operator metrics: find heavy-duty operators.
  // For a big prefill batch the MLP GEMMs must dominate norms/rotary.
  const ModelSpec model = model_by_name("llama2-7b");
  ExecutionTimePredictor predictor(&estimator(), model,
                                   ParallelConfig{1, 1, 1});
  BatchSpec batch;
  batch.items = {prefill_item(0, 2048)};
  const OpTimeBreakdown breakdown = predictor.stage_breakdown(batch, 0);
  EXPECT_GT(breakdown.per_op.at(OpType::kMlpGateUpProj),
            breakdown.per_op.at(OpType::kRmsNorm));
  EXPECT_GT(breakdown.per_op.at(OpType::kMlpDownProj),
            breakdown.per_op.at(OpType::kRotaryEmbed));
}

// ------------------------------------------------------------ stage timing

TEST_F(BackendTest, CommIsZeroWithoutPipeline) {
  const ModelSpec model = model_by_name("llama2-7b");
  ExecutionTimePredictor predictor(&estimator(), model,
                                   ParallelConfig{1, 1, 1});
  BatchSpec batch;
  batch.items = {prefill_item(0, 512)};
  const StageTiming timing = predictor.stage_timing(batch, 0);
  EXPECT_GT(timing.compute, 0.0);
  EXPECT_DOUBLE_EQ(timing.comm, 0.0);
  EXPECT_DOUBLE_EQ(timing.total(), timing.compute);
}

TEST_F(BackendTest, NonFinalStagesPayActivationSend) {
  const ModelSpec model = model_by_name("llama2-7b");
  const ParallelConfig par{1, 2, 1};
  ExecutionTimePredictor predictor(&estimator(), model, par);
  BatchSpec batch;
  batch.items = {prefill_item(0, 512)};
  const StageTiming first = predictor.stage_timing(batch, 0);
  const StageTiming last = predictor.stage_timing(batch, 1);
  EXPECT_GT(first.comm, 0.0);            // ships activations downstream
  EXPECT_DOUBLE_EQ(last.comm, 0.0);      // final stage samples instead
  // PP comm is cheap relative to compute (the paper's rationale for PP's
  // favorable compute-communication ratio, §2.2).
  EXPECT_LT(first.comm, first.compute * 0.05);
}

TEST_F(BackendTest, ReferenceStageTimingSplitsCommToo) {
  const ModelSpec model = model_by_name("llama2-7b");
  const ParallelConfig par{1, 2, 1};
  ReferenceExecutor reference(node(), model, par, /*seed=*/3);
  BatchSpec batch;
  batch.items = {prefill_item(0, 512)};
  const StageTiming timing = reference.stage_timing(batch, 0);
  EXPECT_GT(timing.compute, 0.0);
  EXPECT_GT(timing.comm, 0.0);
  EXPECT_DOUBLE_EQ(reference.stage_timing(batch, 1).comm, 0.0);
}

TEST_F(BackendTest, ReferenceBreakdownIsNoiseFree) {
  // stage_breakdown must not consume RNG state: the next stage_time draw is
  // identical whether or not a breakdown was taken in between.
  const ModelSpec model = model_by_name("llama2-7b");
  BatchSpec batch;
  batch.items = {prefill_item(0, 256), decode_item(1, 500)};

  ReferenceExecutor with(node(), model, ParallelConfig{1, 1, 1}, 17);
  ReferenceExecutor without(node(), model, ParallelConfig{1, 1, 1}, 17);
  (void)with.stage_breakdown(batch, 0);
  EXPECT_DOUBLE_EQ(with.stage_time(batch, 0), without.stage_time(batch, 0));
}

}  // namespace
}  // namespace vidur
