// Cross-policy property harness for the elastic cluster subsystem: every
// (autoscaler policy x pool topology) combination must uphold the same
// invariants —
//   * per-pool active counts never leave [floor, slot ceiling],
//   * no request is ever served by a replica outside its active window,
//   * per-pool GPU-hours equal the integral reconstructed from the scaling
//     event log (billing is exactly the lifecycle timeline),
//   * same-seed reruns are bit-identical (events, timelines, and metrics).
// The matrix runs twice: once against a scripted ClusterManager harness
// (fast, surgical), once end-to-end through the Simulator on a flash-crowd
// trace.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_manager.h"
#include "cluster/pool.h"
#include "scenario/scenario.h"
#include "sim/simulator.h"

namespace vidur {
namespace {

// ----------------------------------------------------- policy/topology axes

enum class PolicyAxis { kReactive, kPredictive };

const char* policy_name(PolicyAxis p) {
  return p == PolicyAxis::kReactive ? "reactive" : "predictive";
}

/// The spike profile every end-to-end run plays (and predictive policies
/// forecast from).
RateProfile test_profile() {
  return RateProfile::spike(/*baseline=*/1.0, /*spike=*/5.0,
                            /*spike_start=*/20.0, /*spike_duration=*/40.0);
}

AutoscalerConfig make_policy(PolicyAxis axis,
                             ScaleSignal signal = ScaleSignal::kOutstanding) {
  AutoscalerConfig c;
  c.min_replicas = 1;
  c.decision_interval = 2.0;
  c.provision_delay = 4.0;
  c.warmup_delay = 2.0;
  c.scale_up_cooldown = 0.0;
  c.scale_down_cooldown = 15.0;
  if (axis == PolicyAxis::kReactive) {
    c.kind = AutoscalerKind::kReactive;
    c.signal = signal;
    c.target_load_per_replica = 8.0;
    c.scale_up_load = 12.0;
    c.scale_down_load = 2.0;
    c.target_kv_utilization = 0.2;
    c.scale_up_kv_utilization = 0.3;
    c.scale_down_kv_utilization = 0.05;
  } else {
    c.kind = AutoscalerKind::kPredictive;
    c.profile = test_profile();
    c.baseline_qps = 2.0;
    c.replica_capacity_qps = 1.5;
    c.headroom = 0.1;
  }
  return c;
}

struct Topology {
  std::string name;
  std::vector<PoolSpec> pools;
  bool disaggregated = false;
};

PoolSpec make_pool(const std::string& name, const std::string& sku,
                   PoolRole role, int slots, AutoscalerConfig autoscale) {
  PoolSpec pool;
  pool.name = name;
  pool.sku_name = sku;
  pool.role = role;
  pool.parallel = ParallelConfig{1, 1, slots};
  pool.autoscale = std::move(autoscale);
  return pool;
}

/// The topology axis, parameterized by the policy under test. The decode
/// pool scales on KV pressure under the reactive policy (its natural
/// signal); predictive policies forecast arrivals and keep the queue-depth
/// signal everywhere.
std::vector<Topology> topologies(PolicyAxis axis) {
  const AutoscalerConfig policy = make_policy(axis);
  const AutoscalerConfig decode_policy =
      axis == PolicyAxis::kReactive
          ? make_policy(axis, ScaleSignal::kKvPressure)
          : policy;
  std::vector<Topology> out;
  out.push_back({"single-pool",
                 {make_pool("fleet", "a100", PoolRole::kUnified, 4, policy)},
                 false});
  out.push_back({"hetero-unified",
                 {make_pool("a100-pool", "a100", PoolRole::kUnified, 3,
                            policy),
                  make_pool("h100-pool", "h100", PoolRole::kUnified, 2,
                            policy)},
                 false});
  out.push_back({"prefill-decode",
                 {make_pool("prefill", "a100", PoolRole::kPrefill, 3,
                            policy),
                  make_pool("decode", "a100", PoolRole::kDecode, 3,
                            decode_policy)},
                 true});
  PoolSpec pinned =
      make_pool("pinned", "h100", PoolRole::kUnified, 2, AutoscalerConfig{});
  out.push_back({"elastic-plus-static",
                 {make_pool("elastic", "a100", PoolRole::kUnified, 3, policy),
                  pinned},
                 false});
  return out;
}

// ------------------------------------------------------ shared invariants

/// Per-pool active counts stay within [floor, ceiling] on every sample.
void check_bounds(const ClusterScalingReport& report) {
  ASSERT_FALSE(report.pools.empty());
  for (const PoolScalingReport& pool : report.pools) {
    for (const ReplicaCountSample& sample : pool.active_timeline) {
      EXPECT_GE(sample.active, pool.min_replicas)
          << "pool " << pool.name << " dipped below its floor at t="
          << sample.time;
      EXPECT_LE(sample.active, pool.slots)
          << "pool " << pool.name << " exceeded its ceiling at t="
          << sample.time;
    }
  }
}

/// Per-pool GPU-hours must equal the paid-interval integral reconstructed
/// from the event log: a slot is paid from the transition out of
/// kDecommissioned (provisioning order, or warm activation at t=0) until
/// the transition back into it, clamped to the accounting horizon.
void check_gpu_hour_integral(const ClusterScalingReport& report,
                             Seconds end_time) {
  for (const PoolScalingReport& pool : report.pools) {
    std::map<ReplicaId, Seconds> up_since;
    double paid_seconds = 0.0;
    for (const ScalingEvent& e : report.events) {
      if (e.replica < pool.first_slot ||
          e.replica >= pool.first_slot + pool.slots)
        continue;
      if (e.from == ReplicaState::kDecommissioned) {
        ASSERT_EQ(up_since.count(e.replica), 0u);
        up_since[e.replica] = e.time;
      } else if (e.to == ReplicaState::kDecommissioned) {
        ASSERT_EQ(up_since.count(e.replica), 1u);
        paid_seconds += std::max(
            0.0, std::min(e.time, end_time) - up_since[e.replica]);
        up_since.erase(e.replica);
      }
    }
    for (const auto& [replica, since] : up_since)
      paid_seconds += std::max(0.0, end_time - since);
    EXPECT_NEAR(pool.gpu_hours,
                paid_seconds / 3600.0 * pool.gpus_per_replica, 1e-9)
        << "pool " << pool.name
        << ": billed GPU-hours diverge from the event-log integral";
  }
}

void expect_reports_identical(const ClusterScalingReport& a,
                              const ClusterScalingReport& b) {
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].time, b.events[i].time);
    EXPECT_EQ(a.events[i].replica, b.events[i].replica);
    EXPECT_EQ(a.events[i].from, b.events[i].from);
    EXPECT_EQ(a.events[i].to, b.events[i].to);
  }
  ASSERT_EQ(a.pools.size(), b.pools.size());
  for (std::size_t i = 0; i < a.pools.size(); ++i) {
    EXPECT_EQ(a.pools[i].gpu_hours, b.pools[i].gpu_hours);
    EXPECT_EQ(a.pools[i].cost_usd, b.pools[i].cost_usd);
    EXPECT_EQ(a.pools[i].mean_active_replicas,
              b.pools[i].mean_active_replicas);
    EXPECT_EQ(a.pools[i].num_scale_up_events, b.pools[i].num_scale_up_events);
    EXPECT_EQ(a.pools[i].num_scale_down_events,
              b.pools[i].num_scale_down_events);
  }
  EXPECT_EQ(a.gpu_hours, b.gpu_hours);
  EXPECT_EQ(a.mean_active_replicas, b.mean_active_replicas);
}

// ------------------------------------------- scripted ClusterManager runs

struct PoolHarness {
  EventQueue events;
  std::map<ReplicaId, int> load;
  std::map<ReplicaId, double> kv;
  int parked = 0;
  bool work = true;
  std::unique_ptr<ClusterManager> manager;

  explicit PoolHarness(const std::vector<PoolSpec>& pools) {
    ClusterManager::Hooks hooks;
    hooks.replica_load = [this](ReplicaId r) { return load[r]; };
    hooks.parked_requests = [this] { return parked; };
    hooks.work_remaining = [this] { return work; };
    hooks.on_activated = [](ReplicaId) {};
    hooks.on_draining = [this](ReplicaId r) { load[r] = 0; };
    hooks.replica_kv_utilization = [this](ReplicaId r) { return kv[r]; };
    std::vector<ClusterManager::ManagedPool> managed;
    for (const PoolSpec& pool : pools) {
      ClusterManager::ManagedPool m;
      m.name = pool.name;
      m.sku = pool.sku_name;
      m.role = pool.role;
      m.slots = pool.slots();
      m.autoscale = pool.autoscale;
      m.gpus_per_replica = pool.gpus_per_replica();
      m.cost_per_gpu_hour = pool.effective_cost_per_gpu_hour();
      managed.push_back(std::move(m));
    }
    manager = std::make_unique<ClusterManager>(std::move(managed), &events,
                                               std::move(hooks));
    manager->start();
  }

  void run_until(Seconds t) {
    while (!events.empty() && events.next_time() <= t) events.run_next();
  }

  /// A deterministic load script: quiet start, overload burst (queue depth
  /// and KV pressure together), then a long quiet tail that forces drains.
  ClusterScalingReport play_script(Seconds horizon) {
    for (int step = 0; static_cast<Seconds>(step) < horizon; ++step) {
      const auto t = static_cast<Seconds>(step);
      const bool burst = t >= 10.0 && t < 50.0;
      parked = burst ? 120 : 2;
      for (ReplicaId r = 0; r < manager->fleet_size(); ++r) {
        const bool up = manager->state(r) == ReplicaState::kActive;
        load[r] = up ? (burst ? 30 : 1) : 0;
        kv[r] = up ? (burst ? 0.9 : 0.02) : 0.0;
      }
      run_until(t + 1.0 - 1e-9);
    }
    work = false;
    run_until(horizon + 1e6);
    return manager->report(horizon);
  }
};

class ClusterPropertyManager
    : public ::testing::TestWithParam<PolicyAxis> {};

TEST_P(ClusterPropertyManager, InvariantsHoldAcrossTopologies) {
  for (const Topology& topology : topologies(GetParam())) {
    SCOPED_TRACE(std::string(policy_name(GetParam())) + " / " +
                 topology.name);
    constexpr Seconds kHorizon = 120.0;
    PoolHarness harness(topology.pools);
    const ClusterScalingReport report = harness.play_script(kHorizon);

    check_bounds(report);
    check_gpu_hour_integral(report, kHorizon);
    // The burst must actually exercise scaling somewhere (otherwise this
    // harness proves nothing).
    EXPECT_GE(report.num_scale_up_events, 1);
    EXPECT_GE(report.num_scale_down_events, 1);
    // Static pools never scale and never leave their ceiling.
    for (const PoolScalingReport& pool : report.pools) {
      if (pool.autoscaled) continue;
      EXPECT_EQ(pool.num_scale_up_events, 0);
      EXPECT_EQ(pool.num_scale_down_events, 0);
      EXPECT_EQ(pool.mean_active_replicas, pool.slots);
    }

    // Bit-identical rerun of the same script.
    PoolHarness rerun(topology.pools);
    expect_reports_identical(report, rerun.play_script(kHorizon));
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, ClusterPropertyManager,
                         ::testing::Values(PolicyAxis::kReactive,
                                           PolicyAxis::kPredictive),
                         [](const auto& info) {
                           return policy_name(info.param);
                         });

// ------------------------------------------------- end-to-end simulations

SimulationConfig pool_sim_config(const Topology& topology) {
  SimulationConfig config;
  config.model = model_by_name("llama2-7b");
  config.node.sku = sku_by_name("a100");
  config.scheduler.kind = SchedulerKind::kVllm;
  config.scheduler.max_batch_size = 16;
  config.global_scheduler = GlobalSchedulerKind::kLeastOutstanding;
  config.pools = topology.pools;
  return config;
}

BackendFactory pool_reference_factory(const SimulationConfig& config,
                                      std::uint64_t seed) {
  const ModelSpec model = config.model;
  std::vector<NodeSpec> nodes;
  std::vector<ParallelConfig> parallels;
  std::vector<std::size_t> slot_pool;
  for (std::size_t p = 0; p < config.pools.size(); ++p) {
    NodeSpec node = config.node;
    node.sku = sku_by_name(config.pools[p].sku_name);
    nodes.push_back(node);
    parallels.push_back(config.pools[p].parallel);
    for (int i = 0; i < config.pools[p].slots(); ++i) slot_pool.push_back(p);
  }
  return [model, nodes, parallels, slot_pool, seed](ReplicaId r) {
    const std::size_t p = slot_pool[static_cast<std::size_t>(r)];
    return std::make_unique<ReferenceExecutor>(
        nodes[p], model, parallels[p],
        seed + static_cast<std::uint64_t>(r));
  };
}

Trace flash_crowd_trace(int num_requests) {
  Scenario s;
  s.name = "property-spike";
  s.tenants = {TenantSpec{.name = "chat",
                          .trace = trace_by_name("chat1m"),
                          .share = 1.0,
                          .priority = 0,
                          .slo = SloSpec{2.0, 0.5}}};
  s.arrival = ArrivalSpec{ArrivalKind::kPoisson, /*qps=*/2.5, /*cv=*/0};
  s.profile = test_profile();
  s.num_requests = num_requests;
  return generate_scenario_trace(s, 17);
}

/// Replica state just before (strictly) / up to (inclusively) time t,
/// reconstructed from the event log. Slots without events never left
/// their initial state.
ReplicaState state_at(const std::vector<ScalingEvent>& events,
                      ReplicaId replica, Seconds t, bool inclusive) {
  ReplicaState state = ReplicaState::kDecommissioned;
  for (const ScalingEvent& e : events) {
    if (e.replica != replica) continue;
    if (e.time < t || (inclusive && e.time == t)) state = e.to;
  }
  return state;
}

void check_serving_windows(const Simulator& sim, const SimulationMetrics& m,
                           bool disaggregated) {
  for (const RequestState& r : sim.request_states()) {
    ASSERT_TRUE(r.record.completed());
    ASSERT_GE(r.replica, 0);
    // A request never completes on a slot outside its active/draining
    // window (the completing batch was running there, so the slot cannot
    // be cold or decommissioned just before the completion).
    const ReplicaState at_completion = state_at(
        m.scaling.events, r.replica, r.record.completed_time, false);
    EXPECT_TRUE(at_completion == ReplicaState::kActive ||
                at_completion == ReplicaState::kDraining)
        << "request " << r.request.id << " completed on replica "
        << r.replica << " in state " << replica_state_name(at_completion);
    // Unified fleets serve a request where it was routed: the slot must be
    // active (or just entering its drain) when the request first runs.
    // Disaggregated requests record their first schedule on the prefill
    // side but finish on a decode slot, so the check does not transfer.
    if (!disaggregated) {
      const ReplicaState at_first = state_at(
          m.scaling.events, r.replica, r.record.first_scheduled_time, true);
      EXPECT_TRUE(at_first == ReplicaState::kActive ||
                  at_first == ReplicaState::kDraining)
          << "request " << r.request.id << " first ran on replica "
          << r.replica << " in state " << replica_state_name(at_first);
    }
  }
}

class ClusterPropertySimulation
    : public ::testing::TestWithParam<PolicyAxis> {};

TEST_P(ClusterPropertySimulation, InvariantsHoldAcrossTopologies) {
  const Trace trace = flash_crowd_trace(200);
  for (const Topology& topology : topologies(GetParam())) {
    SCOPED_TRACE(std::string(policy_name(GetParam())) + " / " +
                 topology.name);
    const SimulationConfig config = pool_sim_config(topology);
    Simulator sim(config, trace, pool_reference_factory(config, 5));
    const SimulationMetrics m = sim.run();

    EXPECT_EQ(m.num_completed, trace.size());
    ASSERT_TRUE(m.scaling.enabled);
    check_bounds(m.scaling);
    check_gpu_hour_integral(m.scaling, m.makespan);
    check_serving_windows(sim, m, topology.disaggregated);

    // Same-seed rerun: bit-identical scaling behavior and metrics.
    Simulator rerun(config, trace, pool_reference_factory(config, 5));
    const SimulationMetrics m2 = rerun.run();
    EXPECT_EQ(m.makespan, m2.makespan);
    EXPECT_EQ(m.ttft.p99, m2.ttft.p99);
    EXPECT_EQ(m.num_sim_events, m2.num_sim_events);
    expect_reports_identical(m.scaling, m2.scaling);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, ClusterPropertySimulation,
                         ::testing::Values(PolicyAxis::kReactive,
                                           PolicyAxis::kPredictive),
                         [](const auto& info) {
                           return policy_name(info.param);
                         });

}  // namespace
}  // namespace vidur
