// Tests for src/search: config-space enumeration, capacity search, pruning
// exactness, SLO filtering and Pareto frontiers (Vidur-Search, paper §6).
#include <gtest/gtest.h>

#include "search/search.h"

namespace vidur {
namespace {

SessionOptions fast_session_options() {
  SessionOptions options;
  options.profiler.max_tokens = 8192;
  options.tp_degrees = {1, 2};
  return options;
}

VidurSession& shared_session() {
  static VidurSession session(model_by_name("llama2-7b"),
                              fast_session_options());
  return session;
}

SearchSpace tiny_space() {
  SearchSpace space;
  space.skus = {"a100"};
  space.tp_degrees = {1, 2};
  space.pp_degrees = {1};
  space.max_total_gpus = 2;
  space.schedulers = {SchedulerKind::kVllm, SchedulerKind::kSarathi};
  space.batch_sizes = {32};
  space.sarathi_chunk_sizes = {512};
  return space;
}

CapacitySearchOptions fast_capacity() {
  CapacitySearchOptions options;
  options.num_requests = 100;
  options.requests_per_slot = 4;
  options.binary_search_iters = 3;
  return options;
}

// ------------------------------------------------------------ config space

TEST(ConfigSpace, EnumeratesExpectedCount) {
  // tp {1,2} x pp {1} x sched {vllm, sarathi(1 chunk)} x bs {32} x sku {1}.
  const auto configs = tiny_space().enumerate(model_by_name("llama2-7b"));
  EXPECT_EQ(configs.size(), 4u);
}

TEST(ConfigSpace, SkipsInvalidTpDegrees) {
  SearchSpace space = tiny_space();
  space.tp_degrees = {1, 3};  // 3 does not divide 32 heads
  const auto configs = space.enumerate(model_by_name("llama2-7b"));
  for (const auto& c : configs) EXPECT_NE(c.parallel.tensor_parallel, 3);
}

TEST(ConfigSpace, SkipsOversizedParallelism) {
  SearchSpace space = tiny_space();
  space.tp_degrees = {2};
  space.pp_degrees = {2};
  space.max_total_gpus = 2;  // tp*pp = 4 > 2
  EXPECT_TRUE(space.enumerate(model_by_name("llama2-7b")).empty());
}

TEST(ConfigSpace, ReplicasFillGpuBudget) {
  SearchSpace space = tiny_space();
  space.max_total_gpus = 8;
  for (const auto& c : space.enumerate(model_by_name("llama2-7b"))) {
    EXPECT_LE(c.total_gpus(), 8);
    EXPECT_GT(c.total_gpus(), 8 - c.parallel.gpus_per_replica());
  }
}

TEST(ConfigSpace, BatchSizeDividedAcrossPipelineStages) {
  SearchSpace space = tiny_space();
  space.pp_degrees = {2};
  space.max_total_gpus = 4;
  space.batch_sizes = {64};
  for (const auto& c : space.enumerate(model_by_name("llama2-7b")))
    EXPECT_EQ(c.scheduler.max_batch_size, 32);  // 64 / pp2
}

TEST(ConfigSpace, SarathiGetsChunkVariants) {
  SearchSpace space = tiny_space();
  space.schedulers = {SchedulerKind::kSarathi};
  space.sarathi_chunk_sizes = {512, 1024, 2048};
  const auto configs = space.enumerate(model_by_name("llama2-7b"));
  EXPECT_EQ(configs.size(), 6u);  // 2 tp x 3 chunks
}

// --------------------------------------------------------------- capacity

TEST(Capacity, ProbeRequestsScaleWithConcurrency) {
  CapacitySearchOptions options;
  options.num_requests = 100;
  options.requests_per_slot = 6;
  DeploymentConfig config;
  config.scheduler.max_batch_size = 64;
  config.parallel = ParallelConfig{1, 1, 4};
  EXPECT_EQ(options.probe_requests(config), 6 * 64 * 4);
  config.scheduler.max_batch_size = 2;
  config.parallel = ParallelConfig{1, 1, 1};
  EXPECT_EQ(options.probe_requests(config), 100);
}

TEST(Capacity, FindsSaneCapacityBelowOfflineBound) {
  DeploymentConfig config;
  config.sku_name = "a100";
  config.parallel = ParallelConfig{1, 1, 1};
  config.scheduler.kind = SchedulerKind::kSarathi;
  config.scheduler.max_batch_size = 32;
  const CapacitySearchOptions options = fast_capacity();
  const double offline = offline_throughput_qps(
      shared_session(), config, trace_by_name("chat1m"), options);
  const CapacityResult cap = find_capacity(shared_session(), config,
                                           trace_by_name("chat1m"), options);
  ASSERT_TRUE(cap.feasible);
  EXPECT_GT(cap.capacity_qps, 0.1);
  EXPECT_LE(cap.capacity_qps, offline * 1.01);
  EXPECT_LT(cap.metrics_at_capacity.scheduling_delay.p99,
            options.max_p99_scheduling_delay);
  EXPECT_GT(cap.num_probes, 2);
}

TEST(Capacity, MoreReplicasRaiseCapacity) {
  DeploymentConfig one;
  one.sku_name = "a100";
  one.parallel = ParallelConfig{1, 1, 1};
  one.scheduler.kind = SchedulerKind::kSarathi;
  one.scheduler.max_batch_size = 32;
  DeploymentConfig two = one;
  two.parallel.num_replicas = 2;

  const CapacitySearchOptions options = fast_capacity();
  const CapacityResult cap1 = find_capacity(shared_session(), one,
                                            trace_by_name("chat1m"), options);
  const CapacityResult cap2 = find_capacity(shared_session(), two,
                                            trace_by_name("chat1m"), options);
  ASSERT_TRUE(cap1.feasible);
  ASSERT_TRUE(cap2.feasible);
  // Two replicas serve strictly more than one; sublinear scaling is fine
  // (binary-search granularity), superlinear is not.
  EXPECT_GT(cap2.capacity_qps, cap1.capacity_qps * 1.3);
  EXPECT_LT(cap2.capacity_qps, cap1.capacity_qps * 2.3);
}

TEST(Capacity, InfeasibleDeploymentReportsNotFeasible) {
  DeploymentConfig config;
  config.sku_name = "a100";
  config.parallel = ParallelConfig{1, 1, 1};
  // 70B cannot fit on one A100; the session profiled 7B, but planning fails
  // first inside the simulation -> feasible == false, no throw.
  VidurSession session70(model_by_name("llama2-70b"), fast_session_options());
  const CapacityResult cap = find_capacity(
      session70, config, trace_by_name("chat1m"), fast_capacity());
  EXPECT_FALSE(cap.feasible);
  EXPECT_EQ(cap.capacity_qps, 0.0);
}

TEST(Capacity, ProbeFeasibilityCriteria) {
  CapacitySearchOptions options;
  options.max_p99_scheduling_delay = 5.0;
  SimulationMetrics m;
  m.num_completed = 100;
  m.scheduling_delay.p99 = 1.0;
  EXPECT_TRUE(probe_feasible(m, 100, options));
  m.scheduling_delay.p99 = 6.0;
  EXPECT_FALSE(probe_feasible(m, 100, options));
  m.scheduling_delay.p99 = 1.0;
  m.num_completed = 99;  // incomplete run
  EXPECT_FALSE(probe_feasible(m, 100, options));
}

// ----------------------------------------------------------------- search

TEST(Search, PruningFindsTheSameOptimum) {
  VidurSearchOptions options;
  options.capacity = fast_capacity();
  options.num_threads = 2;
  options.prune = false;
  const SearchResult full = run_search(shared_session(), tiny_space(),
                                       trace_by_name("chat1m"), options);
  options.prune = true;
  const SearchResult pruned = run_search(shared_session(), tiny_space(),
                                         trace_by_name("chat1m"), options);
  ASSERT_TRUE(full.best_unconstrained().has_value());
  ASSERT_TRUE(pruned.best_unconstrained().has_value());
  EXPECT_EQ(full.best_unconstrained()->config.to_string(),
            pruned.best_unconstrained()->config.to_string());
  // Pruning must not change the optimum's value materially (same probes).
  EXPECT_NEAR(full.best_unconstrained()->qps_per_dollar,
              pruned.best_unconstrained()->qps_per_dollar, 1e-9);
}

TEST(Search, EvaluationsCoverTheWholeSpace) {
  VidurSearchOptions options;
  options.capacity = fast_capacity();
  options.prune = false;
  const SearchResult result = run_search(shared_session(), tiny_space(),
                                         trace_by_name("chat1m"), options);
  EXPECT_EQ(result.evaluations.size(), 4u);
  for (const auto& e : result.evaluations) {
    EXPECT_TRUE(e.feasible);
    EXPECT_GT(e.capacity_qps, 0.0);
    EXPECT_GT(e.cost_per_hour, 0.0);
    EXPECT_NEAR(e.qps_per_dollar, e.capacity_qps / e.cost_per_hour, 1e-12);
  }
}

TEST(Search, SloFilteringSelectsCompliantBest) {
  VidurSearchOptions options;
  options.capacity = fast_capacity();
  options.prune = false;
  options.slo.ttft_target = 1e9;  // permissive
  options.slo.tbt_target = 1e9;
  const SearchResult result = run_search(shared_session(), tiny_space(),
                                         trace_by_name("chat1m"), options);
  ASSERT_TRUE(result.best().has_value());
  EXPECT_EQ(result.best()->config.to_string(),
            result.best_unconstrained()->config.to_string());

  // Impossible SLOs: nothing qualifies.
  SearchResult copy = result;
  for (auto& e : copy.evaluations) e.meets_slo = false;
  EXPECT_FALSE(copy.best().has_value());
  EXPECT_TRUE(copy.best_unconstrained().has_value());
}

TEST(Search, ParetoFrontierIsNonDominatedAndSorted) {
  SearchResult result;
  auto add = [&result](double ttft, double tbt, double value) {
    ConfigEvaluation e;
    e.feasible = true;
    e.ttft_p90 = ttft;
    e.tbt_p99 = tbt;
    e.qps_per_dollar = value;
    result.evaluations.push_back(e);
  };
  add(1.0, 0.10, 5.0);   // frontier (fast, good value)
  add(2.0, 0.20, 10.0);  // frontier (slower, best value)
  add(1.5, 0.15, 4.0);   // dominated by (1.0, 5.0)
  add(3.0, 0.30, 10.0);  // dominated by (2.0, 10.0)

  const auto frontier = result.pareto_frontier(/*use_ttft=*/true);
  ASSERT_EQ(frontier.size(), 2u);
  EXPECT_DOUBLE_EQ(frontier[0].ttft_p90, 1.0);   // sorted by latency
  EXPECT_DOUBLE_EQ(frontier[1].ttft_p90, 2.0);
  EXPECT_DOUBLE_EQ(frontier[1].qps_per_dollar, 10.0);

  const auto tbt_frontier = result.pareto_frontier(/*use_ttft=*/false);
  ASSERT_EQ(tbt_frontier.size(), 2u);
  EXPECT_DOUBLE_EQ(tbt_frontier[0].tbt_p99, 0.10);
}

TEST(Search, InfeasibleConfigsExcludedFromFrontier) {
  SearchResult result;
  ConfigEvaluation infeasible;
  infeasible.feasible = false;
  result.evaluations.push_back(infeasible);
  EXPECT_TRUE(result.pareto_frontier(true).empty());
  EXPECT_FALSE(result.best_unconstrained().has_value());
}

}  // namespace
}  // namespace vidur
