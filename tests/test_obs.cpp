// Tests for the observability subsystem (src/obs/ and its wiring): trace
// determinism and zero-impact, Chrome trace export shape, registry and
// rolling-window primitives, exact per-pool MFU/MBU/energy attribution
// against hand-computed values, ObsSpec serialization, and the result-file
// comparator behind `vidur compare`.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "api/compare.h"
#include "api/run.h"
#include "common/check.h"
#include "metrics/metrics.h"
#include "obs/registry.h"
#include "obs/rolling.h"
#include "obs/trace.h"
#include "workload/trace_generator.h"

namespace vidur {
namespace {

// ------------------------------------------------------ shared fixtures

/// An autoscaled deployment: scale events, warming/draining transitions
/// and reroutes all show up in the trace, which is exactly the machinery
/// determinism must cover.
DeploymentConfig autoscaled_config() {
  DeploymentConfig config;
  config.sku_name = "a100";
  config.parallel = ParallelConfig{1, 1, 4};
  config.scheduler.kind = SchedulerKind::kSarathi;
  config.scheduler.max_batch_size = 32;
  config.autoscale.kind = AutoscalerKind::kReactive;
  config.autoscale.min_replicas = 1;
  config.autoscale.initial_replicas = 1;
  config.autoscale.decision_interval = 2.0;
  config.autoscale.provision_delay = 1.0;
  config.autoscale.warmup_delay = 0.5;
  config.autoscale.scale_down_cooldown = 10.0;
  return config;
}

Trace bursty_trace(int n) {
  return generate_trace(trace_by_name("chat1m"),
                        ArrivalSpec{ArrivalKind::kPoisson, 4.0, 0}, n, 17);
}

VidurSession& shared_session() {
  static VidurSession session(model_by_name("llama2-7b"));
  return session;
}

// ---------------------------------------------------- trace determinism

TEST(TraceDeterminism, SameSeedYieldsBitIdenticalRecords) {
  VidurSession& session = shared_session();
  const DeploymentConfig config = autoscaled_config();
  const Trace trace = bursty_trace(80);

  TraceRecorder first, second;
  SimObs obs;
  obs.trace = &first;
  session.simulate(config, trace, {}, obs);
  obs.trace = &second;
  session.simulate(config, trace, {}, obs);

  ASSERT_GT(first.records().size(), 0u);
  ASSERT_EQ(first.records().size(), second.records().size());
  for (std::size_t i = 0; i < first.records().size(); ++i)
    ASSERT_EQ(first.records()[i], second.records()[i]) << "record " << i;
  EXPECT_EQ(first.num_dropped(), 0u);

  // The autoscaler's activity is part of the stream, not just requests.
  bool saw_scale_decision = false, saw_transition = false;
  for (const TraceRecord& r : first.records()) {
    saw_scale_decision |= r.kind == TraceEventKind::kScaleDecision;
    saw_transition |= r.kind == TraceEventKind::kReplicaTransition;
  }
  EXPECT_TRUE(saw_scale_decision);
  EXPECT_TRUE(saw_transition);
}

TEST(TraceDeterminism, TracingDoesNotChangeResults) {
  VidurSession& session = shared_session();
  const DeploymentConfig config = autoscaled_config();
  const Trace trace = bursty_trace(80);

  const SimulationMetrics off = session.simulate(config, trace);
  TraceRecorder recorder;
  SimObs obs;
  obs.trace = &recorder;
  obs.rolling_window_s = 5.0;
  const SimulationMetrics on = session.simulate(config, trace, {}, obs);

  EXPECT_EQ(on.num_completed, off.num_completed);
  EXPECT_DOUBLE_EQ(on.makespan, off.makespan);
  EXPECT_DOUBLE_EQ(on.ttft.p90, off.ttft.p90);
  EXPECT_DOUBLE_EQ(on.tbt.p99, off.tbt.p99);
  EXPECT_DOUBLE_EQ(on.throughput_qps, off.throughput_qps);
  EXPECT_EQ(on.scaling.num_scale_up_events, off.scaling.num_scale_up_events);
  EXPECT_EQ(on.scaling.num_scale_down_events,
            off.scaling.num_scale_down_events);
  EXPECT_DOUBLE_EQ(on.scaling.gpu_hours, off.scaling.gpu_hours);
}

TEST(TraceRecorder, RingBufferDropsBeyondCapacityAndCounts) {
  TraceRecorder recorder(4);
  for (int i = 0; i < 10; ++i) {
    TraceRecord r;
    r.kind = TraceEventKind::kArrival;
    r.id = i;
    r.time = static_cast<Seconds>(i);
    recorder.emit(r);
  }
  EXPECT_EQ(recorder.records().size(), 4u);
  EXPECT_EQ(recorder.num_emitted(), 10u);
  EXPECT_EQ(recorder.num_dropped(), 6u);
  // The ring keeps the newest records in chronological order; the drop
  // counter reports the truncated head honestly.
  EXPECT_EQ(recorder.records()[0].id, 6);
  EXPECT_EQ(recorder.records()[3].id, 9);
}

// -------------------------------------------------- chrome trace export

TEST(ChromeTrace, ExportValidatesAndCountsEveryPhase) {
  VidurSession& session = shared_session();
  TraceRecorder recorder;
  SimObs obs;
  obs.trace = &recorder;
  session.simulate(autoscaled_config(), bursty_trace(60), {}, obs);

  const JsonValue doc = chrome_trace_json(recorder.records());
  const TraceValidation v = validate_chrome_trace(doc);
  EXPECT_GT(v.num_complete_spans, 0u);   // request lifetimes + batches
  EXPECT_GT(v.num_instants, 0u);         // scale decisions, migrations
  EXPECT_GT(v.num_counter_samples, 0u);  // active-replica counter track
  EXPECT_EQ(v.num_events,
            JsonValue::parse(doc.dump()).at("traceEvents").size());
}

TEST(ChromeTrace, ValidatorRejectsOverlappingSpans) {
  // Two "X" events on one (pid, tid) that partially overlap cannot nest.
  JsonValue events = JsonValue::array();
  const auto span = [](double ts, double dur) {
    JsonValue e = JsonValue::object();
    e.set("ph", std::string("X"));
    e.set("name", std::string("s"));
    e.set("pid", static_cast<std::int64_t>(1));
    e.set("tid", static_cast<std::int64_t>(1));
    e.set("ts", ts);
    e.set("dur", dur);
    return e;
  };
  events.push(span(0.0, 10.0));
  events.push(span(5.0, 10.0));
  JsonValue doc = JsonValue::object();
  doc.set("traceEvents", std::move(events));
  EXPECT_THROW(validate_chrome_trace(doc), Error);
}

// ----------------------------------------------------- metrics registry

TEST(MetricsRegistry, CountersAreStableAndSnapshotSorted) {
  MetricsRegistry registry;
  Counter* a = registry.counter("zeta");
  Counter* b = registry.counter("alpha");
  a->inc(3);
  b->inc();
  EXPECT_EQ(registry.counter("zeta"), a);  // same name, same cell

  const RegistrySnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[0].value, 1u);
  EXPECT_EQ(snap.counters[1].name, "zeta");
  EXPECT_EQ(snap.counters[1].value, 3u);
  EXPECT_EQ(snap.counter("zeta"), 3u);
  EXPECT_EQ(snap.counter("nope"), 0u);  // missing reads as zero
}

TEST(LatencyHistogram, QuantilesLandInTheRecordingBucket) {
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.record(1e-3);
  h.record(1.0);
  EXPECT_EQ(h.count(), 1001u);
  EXPECT_NEAR(h.mean(), (1000 * 1e-3 + 1.0) / 1001, 1e-12);
  EXPECT_DOUBLE_EQ(h.max_seen(), 1.0);
  // 4 buckets per octave => the reported quantile sits within one bucket
  // (a 2^(1/4) factor) of the recorded value.
  EXPECT_LE(h.quantile(0.5), 1e-3 * std::pow(2.0, 0.25) * 1.001);
  EXPECT_GE(h.quantile(0.5), 1e-3 / std::pow(2.0, 0.25) / 1.001);
  EXPECT_GE(h.quantile(0.9999), 0.5);
}

TEST(SimulatorRegistry, CountersMatchTheRunsTotals) {
  VidurSession& session = shared_session();
  const Trace trace = bursty_trace(50);
  const SimulationMetrics m =
      session.simulate(autoscaled_config(), trace, {}, SimObs{});

  ASSERT_FALSE(m.registry.empty());
  const auto counter = [&](const std::string& name) {
    return m.registry.counter(name);
  };
  EXPECT_EQ(counter("sim.requests_arrived"), 50u);
  EXPECT_EQ(counter("sim.requests_completed"), m.num_completed);
  EXPECT_EQ(counter("sim.events"), m.num_sim_events);
  EXPECT_GT(counter("sim.batches"), 0u);
  EXPECT_GT(counter("cluster.ticks"), 0u);
  EXPECT_EQ(counter("cluster.scale_ups"),
            static_cast<std::uint64_t>(m.scaling.num_scale_up_events));

  bool found_ttft = false;
  for (const auto& h : m.registry.histograms) {
    if (h.name != "request.ttft_s") continue;
    found_ttft = true;
    EXPECT_EQ(h.count, m.num_completed);
    EXPECT_NEAR(h.max, m.ttft.max, m.ttft.max * 0.2 + 1e-9);
  }
  EXPECT_TRUE(found_ttft);
}

// ------------------------------------------------------ rolling windows

TEST(RollingCollector, WindowAggregatesAndQueueIntegralAreExact) {
  RollingCollector rolling(10.0, {"cluster"});
  rolling.on_arrival(0, 1.0);
  rolling.on_queue_delta(0, 1.0, 1);   // depth 1 from t=1
  rolling.on_arrival(0, 4.0);
  rolling.on_queue_delta(0, 4.0, 1);   // depth 2 from t=4
  rolling.on_completion(0, 6.0, /*ttft=*/0.5, /*worst_tbt=*/0.05,
                        /*slo_state=*/1);
  rolling.on_queue_delta(0, 6.0, -1);  // depth 1 from t=6
  rolling.on_completion(0, 12.0, /*ttft=*/1.5, /*worst_tbt=*/-1.0,
                        /*slo_state=*/0);
  rolling.on_queue_delta(0, 12.0, -1);

  const std::vector<RollingTrack> tracks = rolling.finalize(15.0);
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_EQ(tracks[0].name, "cluster");
  ASSERT_EQ(tracks[0].windows.size(), 2u);

  const WindowSample& w0 = tracks[0].windows[0];
  EXPECT_DOUBLE_EQ(w0.start, 0.0);
  EXPECT_DOUBLE_EQ(w0.end, 10.0);
  EXPECT_EQ(w0.arrivals, 2);
  EXPECT_EQ(w0.completions, 1);
  EXPECT_DOUBLE_EQ(w0.mean_ttft(), 0.5);
  EXPECT_DOUBLE_EQ(w0.mean_tbt(), 0.05);
  EXPECT_DOUBLE_EQ(w0.slo_attainment(), 1.0);
  // Depth: 0 over [0,1), 1 over [1,4), 2 over [4,6), 1 over [6,10) => 11.
  EXPECT_DOUBLE_EQ(w0.queue_depth_time, 11.0);
  EXPECT_DOUBLE_EQ(w0.mean_queue_depth(), 1.1);

  const WindowSample& w1 = tracks[0].windows[1];
  EXPECT_DOUBLE_EQ(w1.end, 15.0);  // final window closed at end_time
  EXPECT_EQ(w1.completions, 1);
  EXPECT_EQ(w1.tbt_count, 0);  // single-token request carries no TBT
  EXPECT_DOUBLE_EQ(w1.slo_attainment(), 0.0);
  // Depth 1 over [10,12), 0 after => 2 over a 5 s window.
  EXPECT_DOUBLE_EQ(w1.queue_depth_time, 2.0);
}

TEST(RollingCollector, EventExactlyOnBoundaryOpensTheNextWindow) {
  // Windows are [start, end): an event at exactly t = window lands in the
  // second window, not the first.
  RollingCollector rolling(10.0, {"t"});
  rolling.on_arrival(0, 10.0);
  const std::vector<RollingTrack> tracks = rolling.finalize(20.0);
  ASSERT_EQ(tracks[0].windows.size(), 2u);
  EXPECT_EQ(tracks[0].windows[0].arrivals, 0);
  EXPECT_DOUBLE_EQ(tracks[0].windows[0].end, 10.0);
  EXPECT_EQ(tracks[0].windows[1].arrivals, 1);
  EXPECT_DOUBLE_EQ(tracks[0].windows[1].start, 10.0);
}

TEST(RollingCollector, QuietWindowsAreEmittedEmptyNotSkipped) {
  // A long quiet stretch still produces every intermediate window, so the
  // series has no time gaps; the empty windows read as all-zero.
  RollingCollector rolling(10.0, {"t"});
  rolling.on_arrival(0, 1.0);
  rolling.on_arrival(0, 35.0);
  const std::vector<RollingTrack> tracks = rolling.finalize(36.0);
  ASSERT_EQ(tracks[0].windows.size(), 4u);
  const WindowSample& empty = tracks[0].windows[1];
  EXPECT_DOUBLE_EQ(empty.start, 10.0);
  EXPECT_DOUBLE_EQ(empty.end, 20.0);
  EXPECT_EQ(empty.arrivals, 0);
  EXPECT_EQ(empty.completions, 0);
  EXPECT_DOUBLE_EQ(empty.queue_depth_time, 0.0);
  EXPECT_DOUBLE_EQ(empty.mean_ttft(), 0.0);
  EXPECT_DOUBLE_EQ(empty.slo_attainment(), -1.0);  // nothing eligible
  EXPECT_EQ(tracks[0].windows[3].arrivals, 1);
  EXPECT_DOUBLE_EQ(tracks[0].windows[3].end, 36.0);  // partial final window
}

TEST(RollingCollector, FinalizeOnWindowBoundaryEmitsNoEmptyTail) {
  RollingCollector rolling(10.0, {"t"});
  rolling.on_arrival(0, 3.0);
  // end_time == the open window's start: nothing to report there.
  const std::vector<RollingTrack> tracks = rolling.finalize(10.0);
  ASSERT_EQ(tracks[0].windows.size(), 1u);
  EXPECT_DOUBLE_EQ(tracks[0].windows[0].end, 10.0);
}

TEST(LatencyHistogram, QuantileInterpolationMatchesHandComputedEdges) {
  // 99 samples of 10µs and one of 1s. 10µs lands in bucket
  // floor(log2(10) * 4) = 13, whose edges are 2^3.25µs and 2^3.5µs.
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.record(1e-5);
  h.record(1.0);

  const double lo = 1e-6 * std::pow(2.0, 13.0 / 4.0);
  const double hi = 1e-6 * std::pow(2.0, 14.0 / 4.0);
  // p50: target rank 50 of 99 in-bucket samples, linearly interpolated.
  EXPECT_DOUBLE_EQ(h.quantile(0.50), lo + (hi - lo) * (50.0 / 99.0));
  // p99: rank 99 = the bucket's full width, i.e. its upper edge.
  EXPECT_DOUBLE_EQ(h.quantile(0.99), hi);
  // p100 falls into the 1s sample's bucket, clamped to the observed max.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);
}

TEST(RollingCollector, SimulationFillsClusterTrack) {
  VidurSession& session = shared_session();
  SimObs obs;
  obs.rolling_window_s = 5.0;
  const SimulationMetrics m =
      session.simulate(autoscaled_config(), bursty_trace(60), {}, obs);

  ASSERT_FALSE(m.rolling.empty());
  EXPECT_EQ(m.rolling[0].name, "cluster");
  std::int64_t arrivals = 0, completions = 0;
  Seconds prev_end = 0.0;
  for (const WindowSample& w : m.rolling[0].windows) {
    EXPECT_DOUBLE_EQ(w.start, prev_end);  // consecutive, gap-free
    prev_end = w.end;
    arrivals += w.arrivals;
    completions += w.completions;
  }
  EXPECT_EQ(arrivals, 60);
  EXPECT_EQ(completions, static_cast<std::int64_t>(m.num_completed));
  EXPECT_DOUBLE_EQ(prev_end, m.makespan);
}

// ------------------------------------- exact per-pool attribution (pin)

TEST(PoolAttribution, TwoPoolRunMatchesHandComputedValues) {
  // Scripted run: two pools with different SKU rates, one batch each, all
  // numbers chosen so MFU/MBU/energy are exact by hand.
  ClusterResources cluster;
  cluster.num_replicas = 2;
  cluster.gpus_per_replica = 1;
  cluster.peak_flops_per_gpu = 100.0;
  cluster.hbm_bytes_per_sec_per_gpu = 50.0;
  cluster.idle_watts_per_gpu = 10.0;
  cluster.peak_watts_per_gpu = 110.0;
  MetricsCollector collector(cluster);

  PoolResources fast;  // slot 0
  fast.name = "fast";
  fast.gpus_per_replica = 1;
  fast.peak_flops_per_gpu = 100.0;
  fast.hbm_bytes_per_sec_per_gpu = 50.0;
  fast.idle_watts_per_gpu = 10.0;
  fast.peak_watts_per_gpu = 110.0;
  PoolResources slow;  // slot 1: half the FLOPs, double the bandwidth
  slow.name = "slow";
  slow.gpus_per_replica = 1;
  slow.peak_flops_per_gpu = 50.0;
  slow.hbm_bytes_per_sec_per_gpu = 100.0;
  slow.idle_watts_per_gpu = 20.0;
  slow.peak_watts_per_gpu = 120.0;
  collector.set_pools({fast, slow}, {0, 1});

  BatchRecord b0;  // 4 s on the fast pool at 50% FLOP / 25% BW intensity
  b0.replica = 0;
  b0.start_time = 0.0;
  b0.end_time = 4.0;
  b0.flops = 200.0;
  b0.hbm_bytes_per_gpu = 50;
  b0.batch_size = 1;
  collector.record_batch(b0);

  BatchRecord b1;  // 2 s on the slow pool at 100% FLOP / 50% BW intensity
  b1.replica = 1;
  b1.start_time = 0.0;
  b1.end_time = 2.0;
  b1.flops = 100.0;
  b1.hbm_bytes_per_gpu = 100;
  b1.batch_size = 1;
  collector.record_batch(b1);

  // Paid time: each pool billed one replica for the full 10 s run.
  ClusterScalingReport scaling;
  scaling.fleet_size = 2;
  scaling.replica_hours = 20.0 / 3600.0;
  scaling.gpu_hours = 20.0 / 3600.0;
  for (const PoolResources& res : {fast, slow}) {
    PoolScalingReport pool;
    pool.name = res.name;
    pool.slots = 1;
    pool.gpus_per_replica = res.gpus_per_replica;
    pool.replica_hours = 10.0 / 3600.0;
    pool.gpu_hours = 10.0 / 3600.0;
    scaling.pools.push_back(pool);
  }

  const SimulationMetrics m = collector.finalize(10.0, scaling);
  ASSERT_EQ(m.scaling.pools.size(), 2u);
  const PoolScalingReport& f = m.scaling.pools[0];
  const PoolScalingReport& s = m.scaling.pools[1];

  // fast: 200 flops / (10 s * 100 flop/s) = 0.2; 50 B / (10 s * 50 B/s)
  // = 0.1; busy 4/10; energy = 4 s * (10 + 100 * max(0.5, 0.25)) W
  // + 6 idle s * 10 W = 240 + 60 = 300 J.
  EXPECT_DOUBLE_EQ(f.mfu, 0.2);
  EXPECT_DOUBLE_EQ(f.mbu, 0.1);
  EXPECT_DOUBLE_EQ(f.busy_fraction, 0.4);
  EXPECT_DOUBLE_EQ(f.energy_joules, 300.0);

  // slow: 100 / (10 * 50) = 0.2; 100 / (10 * 100) = 0.1; busy 2/10;
  // energy = 2 s * (20 + 100 * max(1.0, 0.5)) W + 8 idle s * 20 W
  // = 240 + 160 = 400 J.
  EXPECT_DOUBLE_EQ(s.mfu, 0.2);
  EXPECT_DOUBLE_EQ(s.mbu, 0.1);
  EXPECT_DOUBLE_EQ(s.busy_fraction, 0.2);
  EXPECT_DOUBLE_EQ(s.energy_joules, 400.0);

  // The pools' exact numbers differ from what slot-weighted fleet averages
  // would claim for the slow pool (its own peak is half the fleet mean).
  EXPECT_DOUBLE_EQ(m.busy_fraction, 6.0 / 20.0);
}

// ------------------------------------------------- ObsSpec round-trips

TEST(ObsSpec, RoundTripsAndDefaultsAreOmitted) {
  ExperimentSpec spec;
  spec.obs.trace = true;
  spec.obs.trace_capacity = 4096;
  spec.obs.rolling_window_s = 30.0;
  const ExperimentSpec reparsed = ExperimentSpec::from_json(spec.to_json());
  EXPECT_EQ(reparsed, spec);
  EXPECT_EQ(reparsed.obs.trace_capacity, 4096);

  // A default obs section stays out of the canonical serialization.
  EXPECT_EQ(ExperimentSpec{}.to_json().find("obs"), nullptr);
}

TEST(ObsSpec, ValidateRejectsDegenerateValues) {
  ExperimentSpec spec;
  spec.obs.trace_capacity = 0;
  EXPECT_THROW(spec.validate(), Error);
  spec = ExperimentSpec{};
  spec.obs.rolling_window_s = -1.0;
  EXPECT_THROW(spec.validate(), Error);
}

TEST(RunExperiment, TraceSpecProducesValidatedTraceDocument) {
  ExperimentSpec spec;
  spec.with_trace("chat1m", 2.0, 40).with_seed(9);
  spec.obs.trace = true;
  spec.obs.rolling_window_s = 10.0;
  const ExperimentResult result = run_experiment(spec);
  ASSERT_TRUE(result.has_trace());
  const TraceValidation v = validate_chrome_trace(result.trace);
  EXPECT_GT(v.num_complete_spans, 0u);
  // Rolling + registry sections ride along in the result JSON.
  const JsonValue j = result.to_json();
  ASSERT_NE(j.find("registry"), nullptr);
  ASSERT_NE(j.find("rolling"), nullptr);
  ASSERT_NE(j.find("estimator"), nullptr);
  EXPECT_GT(j.at("estimator").at("cache_hits").as_int(), 0);
}

// ------------------------------------------------------- vidur compare

TEST(CompareJson, EqualDocumentsProduceNoEntries) {
  const JsonValue doc = JsonValue::parse(
      R"({"a": 1, "b": [1.0, {"c": "x"}], "d": null})");
  const CompareReport report = compare_json(doc, doc, 0.0);
  EXPECT_TRUE(report.entries.empty());
  EXPECT_TRUE(report.within_tolerance());
  EXPECT_NE(report.to_string().find("match"), std::string::npos);
}

TEST(CompareJson, NumericDriftRespectsTolerance) {
  const JsonValue a = JsonValue::parse(R"({"qps": 100.0, "p99": 1.0})");
  const JsonValue b = JsonValue::parse(R"({"qps": 101.0, "p99": 1.5})");
  const CompareReport report = compare_json(a, b, 0.02);
  ASSERT_EQ(report.entries.size(), 2u);
  EXPECT_EQ(report.num_numeric(), 2u);
  EXPECT_EQ(report.num_exceeding(), 1u);  // 1% within, 33% beyond
  EXPECT_FALSE(report.within_tolerance());

  const CompareEntry& p99 = report.entries[1];
  EXPECT_EQ(p99.path, "p99");
  EXPECT_NEAR(p99.rel_delta, 0.5 / 1.5, 1e-12);
}

TEST(CompareJson, StructuralDifferencesAlwaysExceed) {
  const JsonValue a =
      JsonValue::parse(R"({"kept": 1, "gone": 2, "t": "x", "arr": [1, 2]})");
  const JsonValue b =
      JsonValue::parse(R"({"kept": 1, "added": 3, "t": 4, "arr": [1]})");
  const CompareReport report = compare_json(a, b, 1.0);
  EXPECT_FALSE(report.within_tolerance());

  std::vector<std::string> paths;
  for (const CompareEntry& e : report.entries) paths.push_back(e.path);
  EXPECT_EQ(paths, (std::vector<std::string>{"gone", "t", "arr[1]", "added"}));
  EXPECT_EQ(report.entries[0].kind, CompareEntry::Kind::kOnlyInA);
  EXPECT_EQ(report.entries[1].kind, CompareEntry::Kind::kTypeChanged);
  EXPECT_EQ(report.entries[2].kind, CompareEntry::Kind::kOnlyInA);
  EXPECT_EQ(report.entries[3].kind, CompareEntry::Kind::kOnlyInB);
}

TEST(CompareJson, IntAndDoubleRepresentationsCompareAsNumbers) {
  const JsonValue a = JsonValue::parse(R"({"n": 5})");
  const JsonValue b = JsonValue::parse(R"({"n": 5.0})");
  EXPECT_TRUE(compare_json(a, b, 0.0).entries.empty());
}

TEST(CompareJson, MissingSubtreeReportsEveryAbsentLeaf) {
  // A whole section present on one side only (e.g. a result that was run
  // with obs.analyze against one that was not) must expand to one row per
  // leaf — not collapse into a single "<object, N keys>" summary.
  const JsonValue a = JsonValue::parse(R"({
    "metrics": {"qps": 1.0},
    "analysis": {
      "schema": 2,
      "requests": {"completed": 5, "incomplete": 0},
      "waterfalls": [{"id": 0}, {"id": 1}],
      "empty": {}
    }
  })");
  const JsonValue b = JsonValue::parse(R"({"metrics": {"qps": 1.0}})");
  const CompareReport report = compare_json(a, b, 1.0);

  std::vector<std::string> paths;
  for (const CompareEntry& e : report.entries) {
    EXPECT_EQ(e.kind, CompareEntry::Kind::kOnlyInA) << e.path;
    paths.push_back(e.path);
  }
  EXPECT_EQ(paths, (std::vector<std::string>{
                       "analysis.schema", "analysis.requests.completed",
                       "analysis.requests.incomplete",
                       "analysis.waterfalls[0].id",
                       "analysis.waterfalls[1].id", "analysis.empty"}));
  // Structural rows always fail the comparison — `vidur compare` exits 1.
  EXPECT_EQ(report.num_exceeding(), report.entries.size());
  EXPECT_FALSE(report.within_tolerance());
}

// ---------------------------------------------- raw-record trace sidecar

TEST(TraceSidecar, RecordsRoundTripBitForBit) {
  VidurSession& session = shared_session();
  TraceRecorder recorder;
  SimObs obs;
  obs.trace = &recorder;
  session.simulate(autoscaled_config(), bursty_trace(40), {}, obs);
  const std::vector<TraceRecord> records = recorder.records();
  ASSERT_FALSE(records.empty());

  // Through the sidecar encoding and a text round-trip: still identical.
  const JsonValue sidecar =
      JsonValue::parse(trace_records_json(records).dump());
  const std::vector<TraceRecord> reloaded = trace_records_from_json(sidecar);
  ASSERT_EQ(reloaded.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i)
    ASSERT_EQ(reloaded[i], records[i]) << "record " << i;

  // The Chrome export embeds the sidecar, and validation counts it.
  const JsonValue doc = chrome_trace_json(records);
  EXPECT_EQ(validate_chrome_trace(doc).num_raw_records, records.size());
  const std::vector<TraceRecord> from_doc =
      trace_records_from_json(doc.at("vidur"));
  EXPECT_EQ(from_doc.size(), records.size());
}

TEST(TraceSidecar, SchemaMismatchIsRejected) {
  JsonValue sidecar = trace_records_json({TraceRecord{}});
  sidecar.set("schema",
              static_cast<std::int64_t>(kTraceSchemaVersion + 1));
  EXPECT_THROW(trace_records_from_json(sidecar), Error);

  JsonValue doc = chrome_trace_json({TraceRecord{}});
  JsonValue bad = doc.at("vidur");
  bad.set("schema", static_cast<std::int64_t>(1));
  doc.set("vidur", std::move(bad));
  EXPECT_THROW(validate_chrome_trace(doc), Error);
}

TEST(TraceSidecar, ScheduledRecordsCarryQueueEntryAndResumeMarkers) {
  // Schema v2 field contract on a real run: every first kScheduled carries
  // a plausible queue-entry timestamp, resumes carry none; completions
  // carry a final batch size; arrivals carry the tenant tag.
  VidurSession& session = shared_session();
  TraceRecorder recorder;
  SimObs obs;
  obs.trace = &recorder;
  session.simulate(autoscaled_config(), bursty_trace(40), {}, obs);

  std::size_t first_scheds = 0, completions = 0;
  for (const TraceRecord& r : recorder.records()) {
    if (r.kind == TraceEventKind::kScheduled && r.detail == 0) {
      ++first_scheds;
      ASSERT_GE(r.a, 0);  // queue-entry nanoseconds, always known here
      EXPECT_LE(static_cast<double>(r.a) * 1e-9, r.time + 1e-9);
    }
    if (r.kind == TraceEventKind::kScheduled && r.detail == 1) {
      EXPECT_EQ(r.a, -1);
    }
    if (r.kind == TraceEventKind::kCompleted) {
      ++completions;
      EXPECT_GT(r.b, 0);  // final batch size
    }
    if (r.kind == TraceEventKind::kPrefillDone && r.detail == 0) {
      EXPECT_GT(r.a, 0);  // completing batch size
    }
  }
  EXPECT_EQ(first_scheds, 40u);
  EXPECT_EQ(completions, 40u);
}

}  // namespace
}  // namespace vidur
