// Tests for src/model: registry, architecture arithmetic (parameters,
// KV-cache bytes, FLOPs) and spec validation.
#include <gtest/gtest.h>

#include "common/check.h"
#include "model/model_spec.h"

namespace vidur {
namespace {

TEST(ModelRegistry, KnowsAllFourPaperModels) {
  for (const auto& name : builtin_model_names()) {
    const ModelSpec spec = model_by_name(name);
    EXPECT_EQ(spec.name, name);
    EXPECT_NO_THROW(spec.validate());
  }
  EXPECT_EQ(builtin_model_names().size(), 4u);
}

TEST(ModelRegistry, UnknownModelThrows) {
  EXPECT_THROW(model_by_name("gpt-17"), Error);
}

TEST(ModelSpec, ParameterCountsMatchNominalSizes) {
  // Within 10% of the nominal parameter counts the models are named after.
  EXPECT_NEAR(static_cast<double>(model_by_name("llama2-7b").num_params()),
              6.7e9, 0.7e9);
  EXPECT_NEAR(static_cast<double>(model_by_name("internlm-20b").num_params()),
              20e9, 2e9);
  EXPECT_NEAR(static_cast<double>(model_by_name("llama2-70b").num_params()),
              69e9, 7e9);
  EXPECT_NEAR(static_cast<double>(model_by_name("qwen-72b").num_params()),
              72e9, 7e9);
}

TEST(ModelSpec, WeightBytesAreTwoPerParam) {
  const ModelSpec m = model_by_name("llama2-7b");
  EXPECT_EQ(m.weight_bytes(), m.num_params() * 2);
}

TEST(ModelSpec, GqaFlagsAndHeadDims) {
  const ModelSpec l70 = model_by_name("llama2-70b");
  EXPECT_TRUE(l70.uses_gqa());
  EXPECT_EQ(l70.head_dim(), 128);
  const ModelSpec q72 = model_by_name("qwen-72b");
  EXPECT_FALSE(q72.uses_gqa());
  EXPECT_EQ(q72.head_dim(), 128);
}

TEST(ModelSpec, QwenHas8xKvLoadOfLlama70b) {
  // The paper's explanation for Qwen-72B being ~2x as costly to serve:
  // MHA (64 KV heads) vs GQA (8 KV heads) at equal layer count.
  const ModelSpec l70 = model_by_name("llama2-70b");
  const ModelSpec q72 = model_by_name("qwen-72b");
  EXPECT_EQ(q72.kv_bytes_per_token(), 8 * l70.kv_bytes_per_token());
}

TEST(ModelSpec, KvBytesPerTokenFormula) {
  const ModelSpec m = model_by_name("llama2-7b");
  // 2 (K,V) * 32 layers * 32 kv heads * 128 head dim * 2 bytes.
  EXPECT_EQ(m.kv_bytes_per_token(), 2LL * 32 * 32 * 128 * 2);
}

TEST(ModelSpec, FlopsScaleWithTokens) {
  const ModelSpec m = model_by_name("llama2-7b");
  const FlopCount one = m.flops(1, 1);
  const FlopCount hundred = m.flops(100, 100);
  EXPECT_GT(one, 0);
  // More tokens and more context -> strictly more FLOPs, superlinear
  // because of the quadratic attention term.
  EXPECT_GT(hundred, 100 * one * 0.99);
}

TEST(ModelSpec, FlopsRoughlyTwoParamsPerToken) {
  // For a short context, forward FLOPs/token ~ 2 * params.
  const ModelSpec m = model_by_name("llama2-7b");
  const double per_token = m.flops(1, 1);
  EXPECT_NEAR(per_token / static_cast<double>(m.num_params()), 2.0, 0.3);
}

TEST(ModelSpec, FlopsGrowWithContext) {
  const ModelSpec m = model_by_name("llama2-70b");
  EXPECT_GT(m.flops(1, 4096), m.flops(1, 16));
}

TEST(ModelSpecValidation, RejectsNonDividingHeads) {
  ModelSpec bad = model_by_name("llama2-7b");
  bad.num_q_heads = 31;  // does not divide embed_dim
  EXPECT_THROW(bad.validate(), Error);
}

TEST(ModelSpecValidation, RejectsKvHeadsNotDividingQHeads) {
  ModelSpec bad = model_by_name("llama2-70b");
  bad.num_kv_heads = 7;
  EXPECT_THROW(bad.validate(), Error);
}

TEST(ModelSpecValidation, RejectsZeroFields) {
  ModelSpec bad = model_by_name("llama2-7b");
  bad.num_layers = 0;
  EXPECT_THROW(bad.validate(), Error);
}

TEST(ModelSpec, CustomModelSupported) {
  // The declarative spec format works for arbitrary architectures
  // (paper §4.1: model onboarding from a spec, not from code).
  const ModelSpec tiny{.name = "tiny-125m",
                       .num_layers = 12,
                       .embed_dim = 768,
                       .ffn_dim = 3072,
                       .num_q_heads = 12,
                       .num_kv_heads = 12,
                       .vocab_size = 50257,
                       .gated_mlp = false};
  EXPECT_NO_THROW(tiny.validate());
  EXPECT_NEAR(static_cast<double>(tiny.num_params()), 125e6, 40e6);
}

class AllModelsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllModelsTest, InternallyConsistent) {
  const ModelSpec m = model_by_name(GetParam());
  EXPECT_GT(m.num_params(), 0);
  EXPECT_GT(m.kv_bytes_per_token(), 0);
  EXPECT_EQ(m.embed_dim % m.num_q_heads, 0);
  EXPECT_EQ(m.num_q_heads % m.num_kv_heads, 0);
  EXPECT_GT(m.flops(16, 64), m.flops(8, 64) * 1.5);
}

INSTANTIATE_TEST_SUITE_P(Models, AllModelsTest,
                         ::testing::Values("llama2-7b", "internlm-20b",
                                           "llama2-70b", "qwen-72b"));

}  // namespace
}  // namespace vidur
