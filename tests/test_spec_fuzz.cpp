// Fuzz / round-trip coverage for the extended ExperimentSpec: randomized
// pool deployments must survive serialize -> parse -> re-serialize with
// byte-identical JSON (and value equality), and the common ways to get a
// pool spec wrong — unknown SKU, typo'd role, orphan decode pool, negative
// cost, misspelled field — must fail validate()/parse with actionable,
// did-you-mean-carrying messages.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/experiment.h"
#include "common/check.h"
#include "common/random.h"

namespace vidur {
namespace {

// ------------------------------------------------------------- generators

AutoscalerConfig random_autoscale(Rng& rng, bool decode_pool) {
  AutoscalerConfig c;
  const int kind = static_cast<int>(rng.uniform_int(0, 2));
  if (kind == 0) return c;  // kNone: a static pool
  if (kind == 1) {
    c.kind = AutoscalerKind::kReactive;
    if (decode_pool && rng.uniform() < 0.5) {
      c.signal = ScaleSignal::kKvPressure;
      c.scale_down_kv_utilization = rng.uniform(0.01, 0.2);
      c.scale_up_kv_utilization = rng.uniform(0.5, 0.95);
      c.target_kv_utilization =
          rng.uniform(c.scale_down_kv_utilization, c.scale_up_kv_utilization);
    } else {
      c.scale_down_load = rng.uniform(0.5, 4.0);
      c.scale_up_load = rng.uniform(10.0, 30.0);
      c.target_load_per_replica =
          rng.uniform(c.scale_down_load, c.scale_up_load);
    }
  } else {
    c.kind = AutoscalerKind::kPredictive;
    c.profile = RateProfile::spike(1.0, rng.uniform(2.0, 6.0),
                                   rng.uniform(10.0, 100.0),
                                   rng.uniform(20.0, 80.0));
    c.baseline_qps = rng.uniform(0.5, 5.0);
    c.replica_capacity_qps = rng.uniform(0.5, 5.0);
    c.headroom = rng.uniform(0.0, 0.5);
  }
  c.min_replicas = 1;
  c.initial_replicas = static_cast<int>(rng.uniform_int(0, 1));
  c.provision_delay = rng.uniform(0.0, 60.0);
  c.warmup_delay = rng.uniform(0.0, 30.0);
  c.decision_interval = rng.uniform(1.0, 10.0);
  c.scale_up_cooldown = rng.uniform(0.0, 10.0);
  c.scale_down_cooldown = rng.uniform(0.0, 60.0);
  c.max_scale_step = static_cast<int>(rng.uniform_int(0, 3));
  return c;
}

PoolSpec random_pool(Rng& rng, const std::string& name, PoolRole role) {
  PoolSpec pool;
  pool.name = name;
  pool.sku_name = rng.uniform() < 0.5 ? "a100" : "h100";
  pool.role = role;
  pool.parallel = ParallelConfig{
      rng.uniform() < 0.3 ? 2 : 1, 1,
      static_cast<int>(rng.uniform_int(1, 5))};
  if (rng.uniform() < 0.3) pool.cost_per_gpu_hour = rng.uniform(0.5, 10.0);
  pool.autoscale = random_autoscale(rng, role == PoolRole::kDecode);
  if (pool.autoscale.enabled() &&
      pool.autoscale.initial_replicas > pool.slots())
    pool.autoscale.initial_replicas = pool.slots();
  return pool;
}

/// A random *valid* pool deployment: all-unified or prefill+decode, with
/// consistent scaling groups (same-role elastic pools share one policy).
ExperimentSpec random_pool_spec(Rng& rng) {
  ExperimentSpec spec;
  spec.with_name("fuzz")
      .with_model("llama2-7b")
      .with_scenario("flash-crowd-mixed", 100)
      .with_seed(rng.uniform_int(1, 1000));
  const bool disagg = rng.uniform() < 0.4;
  if (disagg) {
    spec.with_pool(random_pool(rng, "prefill", PoolRole::kPrefill))
        .with_pool(random_pool(rng, "decode", PoolRole::kDecode));
  } else {
    const int n = static_cast<int>(rng.uniform_int(1, 3));
    PoolSpec first = random_pool(rng, "pool-0", PoolRole::kUnified);
    spec.with_pool(first);
    for (int i = 1; i < n; ++i) {
      PoolSpec pool = random_pool(rng, "pool-" + std::to_string(i),
                                  PoolRole::kUnified);
      // Same-role elastic pools must agree on kind/signal/cadence: clone
      // the first pool's policy knobs, keep per-pool floors/slots.
      if (pool.autoscale.enabled() && first.autoscale.enabled()) {
        AutoscalerConfig aligned = first.autoscale;
        aligned.min_replicas = pool.autoscale.min_replicas;
        aligned.initial_replicas =
            std::min(pool.autoscale.initial_replicas, pool.slots());
        pool.autoscale = aligned;
      } else if (pool.autoscale.enabled() && !first.autoscale.enabled()) {
        pool.autoscale.signal = ScaleSignal::kOutstanding;
      }
      spec.with_pool(pool);
    }
  }
  return spec;
}

// ------------------------------------------------------------ round trips

TEST(SpecFuzz, RandomPoolSpecsRoundTripLosslessly) {
  Rng rng(20260726);
  int validated = 0;
  for (int i = 0; i < 200; ++i) {
    ExperimentSpec spec = random_pool_spec(rng);
    // Some random combinations are legitimately invalid (e.g. every pool
    // static in elastic groups is fine, but floors can exceed slots after
    // cloning). Only valid specs must round-trip; invalid ones must throw
    // from validate(), never crash.
    try {
      spec.validate();
    } catch (const Error&) {
      continue;
    }
    ++validated;
    const std::string json = spec.to_json_string();
    const ExperimentSpec parsed = ExperimentSpec::from_json_string(json);
    EXPECT_EQ(parsed, spec) << "value round-trip diverged for:\n" << json;
    EXPECT_EQ(parsed.to_json_string(), json)
        << "serialization is not a fixed point for:\n" << json;
    EXPECT_NO_THROW(parsed.validate());
  }
  // The generator must mostly produce valid specs, or the fuzz is hollow.
  EXPECT_GE(validated, 120);
}

TEST(SpecFuzz, HandWrittenPoolSpecRoundTripsThroughJsonText) {
  const std::string json = R"({
    "name": "hetero",
    "mode": "simulate",
    "model": "llama2-7b",
    "deployment": {
      "pools": [
        {"name": "a", "sku": "a100", "num_replicas": 2,
         "autoscale": {"kind": "reactive"}},
        {"name": "b", "sku": "h100", "num_replicas": 1,
         "cost_per_gpu_hour": 5.25}
      ]
    },
    "workload": {"scenario": "diurnal-chat"}
  })";
  const ExperimentSpec spec = ExperimentSpec::from_json_string(json);
  ASSERT_EQ(spec.deployment.pools.size(), 2u);
  EXPECT_EQ(spec.deployment.pools[0].name, "a");
  EXPECT_EQ(spec.deployment.pools[0].autoscale.kind,
            AutoscalerKind::kReactive);
  EXPECT_EQ(spec.deployment.pools[1].sku_name, "h100");
  EXPECT_DOUBLE_EQ(spec.deployment.pools[1].cost_per_gpu_hour, 5.25);
  EXPECT_NO_THROW(spec.validate());
  EXPECT_EQ(ExperimentSpec::from_json_string(spec.to_json_string()), spec);
}

// -------------------------------------------------------- invalid inputs

/// Runs `fn` and returns the error message (empty if it did not throw).
template <typename Fn>
std::string error_of(Fn&& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.what();
  }
  return "";
}

ExperimentSpec valid_two_pool_spec() {
  ExperimentSpec spec;
  spec.with_name("base")
      .with_model("llama2-7b")
      .with_scenario("diurnal-chat");
  PoolSpec a;
  a.name = "a";
  a.sku_name = "a100";
  a.parallel = ParallelConfig{1, 1, 2};
  PoolSpec b = a;
  b.name = "b";
  b.sku_name = "h100";
  spec.with_pool(a).with_pool(b);
  return spec;
}

TEST(SpecFuzz, UnknownPoolSkuGetsDidYouMean) {
  ExperimentSpec spec = valid_two_pool_spec();
  spec.deployment.pools[0].sku_name = "a10";
  const std::string msg = error_of([&] { spec.validate(); });
  EXPECT_NE(msg.find("unknown SKU 'a10'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("did you mean 'a100'"), std::string::npos) << msg;
}

TEST(SpecFuzz, DecodePoolWithoutPrefillIsActionable) {
  ExperimentSpec spec = valid_two_pool_spec();
  spec.deployment.pools[0].role = PoolRole::kDecode;
  spec.deployment.pools[1].role = PoolRole::kDecode;
  const std::string msg = error_of([&] { spec.validate(); });
  EXPECT_NE(msg.find("decode pool needs a prefill pool"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("add a pool with role 'prefill'"), std::string::npos)
      << msg;
}

TEST(SpecFuzz, PrefillPoolWithoutDecodeIsActionable) {
  ExperimentSpec spec = valid_two_pool_spec();
  spec.deployment.pools[0].role = PoolRole::kPrefill;
  spec.deployment.pools[1].role = PoolRole::kPrefill;
  const std::string msg = error_of([&] { spec.validate(); });
  EXPECT_NE(msg.find("prefill pool needs a decode pool"), std::string::npos)
      << msg;
}

TEST(SpecFuzz, NegativePoolCostIsRejectedWithTheOffendingPool) {
  ExperimentSpec spec = valid_two_pool_spec();
  spec.deployment.pools[1].cost_per_gpu_hour = -1.5;
  const std::string msg = error_of([&] { spec.validate(); });
  EXPECT_NE(msg.find("pool 'b'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("negative cost_per_gpu_hour"), std::string::npos) << msg;
}

TEST(SpecFuzz, DuplicatePoolNamesAreRejected) {
  ExperimentSpec spec = valid_two_pool_spec();
  spec.deployment.pools[1].name = "a";
  const std::string msg = error_of([&] { spec.validate(); });
  EXPECT_NE(msg.find("duplicate pool name 'a'"), std::string::npos) << msg;
}

TEST(SpecFuzz, TypoedRoleGetsDidYouMeanAtParseTime) {
  const std::string json = R"({
    "name": "x", "model": "llama2-7b",
    "deployment": {"pools": [
      {"name": "a", "sku": "a100", "num_replicas": 1, "role": "prefil"}]},
    "workload": {"scenario": "diurnal-chat"}
  })";
  const std::string msg =
      error_of([&] { ExperimentSpec::from_json_string(json); });
  EXPECT_NE(msg.find("unknown pool role 'prefil'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("did you mean 'prefill'"), std::string::npos) << msg;
}

TEST(SpecFuzz, TypoedPoolFieldGetsDidYouMeanCitingThePool) {
  const std::string json = R"({
    "name": "x", "model": "llama2-7b",
    "deployment": {"pools": [
      {"name": "a", "sku": "a100", "num_replica": 1}]},
    "workload": {"scenario": "diurnal-chat"}
  })";
  const std::string msg =
      error_of([&] { ExperimentSpec::from_json_string(json); });
  EXPECT_NE(msg.find("deployment.pools['a']"), std::string::npos) << msg;
  EXPECT_NE(msg.find("did you mean 'num_replicas'"), std::string::npos)
      << msg;
}

TEST(SpecFuzz, MixedCapacitySourcesAreRejected) {
  ExperimentSpec spec = valid_two_pool_spec();
  spec.deployment.pools[0].capacity_qps = 3.0;
  const std::string msg = error_of([&] { spec.validate(); });
  EXPECT_NE(msg.find("capacity_qps on some pools but not others"),
            std::string::npos)
      << msg;
}

TEST(SpecFuzz, TopLevelAutoscaleConflictsWithPools) {
  ExperimentSpec spec = valid_two_pool_spec();
  spec.deployment.autoscale.kind = AutoscalerKind::kReactive;
  const std::string msg = error_of([&] { spec.validate(); });
  EXPECT_NE(msg.find("per-pool autoscale"), std::string::npos) << msg;
}

}  // namespace
}  // namespace vidur
