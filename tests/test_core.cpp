// Tests for src/core: VidurSession (model onboarding, simulation facade,
// fidelity between predictor and reference) and DeploymentConfig.
#include <gtest/gtest.h>

#include <cmath>

#include "core/session.h"
#include "workload/trace_generator.h"

namespace vidur {
namespace {

SessionOptions fast_options() {
  SessionOptions options;
  options.profiler.max_tokens = 8192;
  options.tp_degrees = {1, 2};
  return options;
}

DeploymentConfig small_deployment() {
  DeploymentConfig config;
  config.sku_name = "a100";
  config.parallel = ParallelConfig{1, 1, 1};
  config.scheduler.kind = SchedulerKind::kVllm;
  config.scheduler.max_batch_size = 32;
  return config;
}

TEST(DeploymentConfig, CostAndDescription) {
  DeploymentConfig config = small_deployment();
  config.sku_name = "h100";
  config.parallel = ParallelConfig{2, 2, 4};
  EXPECT_EQ(config.total_gpus(), 16);
  EXPECT_NEAR(config.cost_per_hour(), 16 * 6.98, 1e-9);
  const std::string s = config.to_string();
  EXPECT_NE(s.find("h100"), std::string::npos);
  EXPECT_NE(s.find("tp2"), std::string::npos);
  EXPECT_NE(s.find("pp2"), std::string::npos);
  EXPECT_NE(s.find("vllm"), std::string::npos);
}

TEST(VidurSession, OnboardingIsIdempotent) {
  VidurSession session(model_by_name("llama2-7b"), fast_options());
  session.onboard("a100");
  const std::size_t points = session.profile("a100").total_points();
  session.onboard("a100");
  EXPECT_EQ(session.profile("a100").total_points(), points);
  EXPECT_GT(points, 500u);
}

TEST(VidurSession, EstimatorCoversConfiguredTpDegrees) {
  VidurSession session(model_by_name("llama2-7b"), fast_options());
  const RuntimeEstimator& est = session.estimator("a100");
  EXPECT_TRUE(est.has_model(OpType::kMlpDownProj, 1));
  EXPECT_TRUE(est.has_model(OpType::kMlpDownProj, 2));
  EXPECT_FALSE(est.has_model(OpType::kMlpDownProj, 4));
}

TEST(VidurSession, SimulateIsDeterministic) {
  VidurSession session(model_by_name("llama2-7b"), fast_options());
  const Trace trace =
      generate_trace(trace_by_name("chat1m"),
                     ArrivalSpec{ArrivalKind::kPoisson, 1.0, 0}, 50, 3);
  const SimulationMetrics a = session.simulate(small_deployment(), trace);
  const SimulationMetrics b = session.simulate(small_deployment(), trace);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.ttft.p90, b.ttft.p90);
}

TEST(VidurSession, ReferenceIsSeededAndDistinct) {
  VidurSession session(model_by_name("llama2-7b"), fast_options());
  const Trace trace =
      generate_trace(trace_by_name("chat1m"),
                     ArrivalSpec{ArrivalKind::kPoisson, 1.0, 0}, 50, 3);
  const SimulationMetrics a =
      session.simulate_reference(small_deployment(), trace, 1);
  const SimulationMetrics a2 =
      session.simulate_reference(small_deployment(), trace, 1);
  const SimulationMetrics b =
      session.simulate_reference(small_deployment(), trace, 2);
  EXPECT_DOUBLE_EQ(a.makespan, a2.makespan);
  EXPECT_NE(a.makespan, b.makespan);
}

TEST(VidurSession, FidelityPredictorVsReference) {
  // The core promise of the system (paper Fig. 3/4): request-level
  // percentile metrics from the estimator-backed simulation track the
  // ground-truth execution within ~10%.
  VidurSession session(model_by_name("llama2-7b"), fast_options());
  const Trace trace =
      generate_trace(trace_by_name("chat1m"),
                     ArrivalSpec{ArrivalKind::kPoisson, 1.5, 0}, 150, 5);
  const SimulationMetrics pred = session.simulate(small_deployment(), trace);
  const SimulationMetrics real =
      session.simulate_reference(small_deployment(), trace, 9);
  EXPECT_EQ(pred.num_completed, real.num_completed);
  EXPECT_NEAR(pred.normalized_e2e_latency.p50 /
                  real.normalized_e2e_latency.p50,
              1.0, 0.10);
  EXPECT_NEAR(pred.normalized_e2e_latency.p95 /
                  real.normalized_e2e_latency.p95,
              1.0, 0.10);
  EXPECT_NEAR(pred.ttft.p90 / real.ttft.p90, 1.0, 0.15);
}

TEST(VidurSession, AccountsSimulatedGpuSeconds) {
  VidurSession session(model_by_name("llama2-7b"), fast_options());
  EXPECT_DOUBLE_EQ(session.simulated_gpu_seconds(), 0.0);
  const Trace trace =
      generate_trace(trace_by_name("chat1m"),
                     ArrivalSpec{ArrivalKind::kStatic, 0, 0}, 20, 3);
  const SimulationMetrics m = session.simulate(small_deployment(), trace);
  EXPECT_NEAR(session.simulated_gpu_seconds(), m.makespan, 1e-9);
  EXPECT_EQ(session.num_simulations(), 1);
  // Reference runs represent real-testbed time, not simulated GPU time.
  session.simulate_reference(small_deployment(), trace, 1);
  EXPECT_EQ(session.num_simulations(), 1);
}

TEST(VidurSession, SimulatesDisaggregatedDeployment) {
  VidurSession session(model_by_name("llama2-7b"), fast_options());
  DeploymentConfig config = small_deployment();
  config.parallel = ParallelConfig{1, 1, 2};
  config.disagg.num_prefill_replicas = 1;
  const Trace trace =
      generate_trace(trace_by_name("chat1m"),
                     ArrivalSpec{ArrivalKind::kPoisson, 1.0, 0}, 40, 3);
  const SimulationMetrics m = session.simulate(config, trace);
  EXPECT_EQ(m.num_completed, 40u);
  const std::string s = config.to_string();
  EXPECT_NE(s.find("disagg(1P+1D)"), std::string::npos);
}

TEST(VidurSession, AsyncPipelineCommNeverSlowerThroughFacade) {
  VidurSession session(model_by_name("llama2-7b"), fast_options());
  const Trace trace =
      generate_trace(trace_by_name("chat1m"),
                     ArrivalSpec{ArrivalKind::kStatic, 0, 0}, 32, 3);
  DeploymentConfig sync = small_deployment();
  sync.parallel = ParallelConfig{1, 2, 1};
  DeploymentConfig async = sync;
  async.async_pipeline_comm = true;
  const SimulationMetrics m_sync = session.simulate(sync, trace);
  const SimulationMetrics m_async = session.simulate(async, trace);
  // The predictor backend is deterministic, so dominance is exact here.
  EXPECT_LE(m_async.makespan, m_sync.makespan);
  EXPECT_NE(async.to_string().find("async-pp"), std::string::npos);
}

TEST(VidurSession, OperatorMetricsFollowSessionOptions) {
  SessionOptions options = fast_options();
  options.collect_operator_metrics = true;
  VidurSession session(model_by_name("llama2-7b"), options);
  const Trace trace =
      generate_trace(trace_by_name("chat1m"),
                     ArrivalSpec{ArrivalKind::kStatic, 0, 0}, 10, 3);
  const SimulationMetrics m = session.simulate(small_deployment(), trace);
  EXPECT_FALSE(m.operator_stats.empty());

  VidurSession off(model_by_name("llama2-7b"), fast_options());
  EXPECT_TRUE(off.simulate(small_deployment(), trace).operator_stats.empty());
}

TEST(VidurSession, UnknownSkuThrows) {
  VidurSession session(model_by_name("llama2-7b"), fast_options());
  EXPECT_THROW(session.onboard("tpu-v5"), Error);
}

TEST(VidurSession, SimulatingUnprofiledTpThrows) {
  VidurSession session(model_by_name("llama2-7b"), fast_options());
  DeploymentConfig config = small_deployment();
  config.parallel = ParallelConfig{4, 1, 1};  // tp=4 not in tp_degrees
  const Trace trace =
      generate_trace(trace_by_name("chat1m"),
                     ArrivalSpec{ArrivalKind::kStatic, 0, 0}, 5, 3);
  EXPECT_THROW(session.simulate(config, trace), Error);
}

}  // namespace
}  // namespace vidur
