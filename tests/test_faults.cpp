// Tests for the fault-injection subsystem (src/fault/ and its wiring):
// config validation, spec round-trips with did-you-mean, deterministic
// injection (same seed, same kills), same-seed bit-identical chaos replay
// with everything on, the request-conservation property under churn, the
// decommission prefix-cache teardown, and the preempt-restart cache-credit
// fix.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "api/run.h"
#include "cluster/cluster_manager.h"
#include "common/check.h"
#include "fault/fault_config.h"
#include "fault/fault_injector.h"
#include "kvcache/prefix_cache.h"
#include "obs/trace.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"
#include "scheduler/memory.h"
#include "sim/simulator.h"

namespace vidur {
namespace {

// ------------------------------------------------------------ validation

FaultProfile crash_profile(Seconds mtbf = 120.0) {
  FaultProfile p;
  p.crash_mtbf_s = mtbf;
  return p;
}

TEST(FaultConfig, ValidateCatchesBadParameters) {
  FaultConfig c;
  c.profiles = {crash_profile(-1.0)};
  EXPECT_THROW(c.validate(), Error);

  c.profiles = {crash_profile()};
  c.profiles[0].degrade_mtbf_s = 60.0;  // degrades with factor 1.0
  EXPECT_THROW(c.validate(), Error);
  c.profiles[0].degrade_factor = 1.5;   // ... still no duration
  EXPECT_THROW(c.validate(), Error);
  c.profiles[0].degrade_duration_s = 10.0;
  EXPECT_NO_THROW(c.validate());

  c.profiles[0].spot_windows = {SpotWindow{10.0, 20.0, 1, 25.0}};
  EXPECT_THROW(c.validate(), Error);  // notice > duration
  c.profiles[0].spot_windows = {SpotWindow{10.0, 20.0, 0, 0.0}};
  EXPECT_THROW(c.validate(), Error);  // zero replicas
  c.profiles[0].spot_windows = {SpotWindow{10.0, 20.0, 1, 5.0}};
  EXPECT_NO_THROW(c.validate());

  c.recovery.max_attempts = 0;
  EXPECT_THROW(c.validate(), Error);
  c.recovery.max_attempts = 3;
  c.recovery.jitter = 1.0;
  EXPECT_THROW(c.validate(), Error);
  c.recovery.jitter = 0.1;
  c.shed.min_active_replicas = -1;
  EXPECT_THROW(c.validate(), Error);
}

// ----------------------------------------------------------- spec wiring

FaultConfig chaos_config() {
  FaultConfig c;
  c.seed = 99;
  FaultProfile p;
  p.crash_mtbf_s = 300.0;
  p.spot_windows = {SpotWindow{20.0, 40.0, 2, 0.0},
                    SpotWindow{70.0, 30.0, 1, 5.0}};
  p.degrade_mtbf_s = 200.0;
  p.degrade_factor = 2.5;
  p.degrade_duration_s = 15.0;
  c.profiles = {p};
  c.recovery.max_attempts = 5;
  c.recovery.backoff_base_s = 0.25;
  c.shed.min_active_replicas = 2;
  c.shed.max_shed_priority = 1;
  return c;
}

TEST(FaultSpec, RoundTripsAndDefaultsAreOmitted) {
  ExperimentSpec spec;
  spec.with_scenario("spot-churn").with_faults(chaos_config());
  const ExperimentSpec reparsed = ExperimentSpec::from_json(spec.to_json());
  EXPECT_EQ(reparsed, spec);
  EXPECT_EQ(reparsed.deployment.faults, chaos_config());

  // A default spec keeps the section out of the canonical serialization.
  EXPECT_EQ(ExperimentSpec{}.to_json_string().find("faults"),
            std::string::npos);
}

TEST(FaultSpec, TypoedKeyGetsDidYouMean) {
  const std::string json = R"({
    "name": "x", "model": "llama2-7b",
    "deployment": {"faults": {"profiles": [{"crash_mtbf": 100.0}]}},
    "workload": {"scenario": "spot-churn"}
  })";
  try {
    ExperimentSpec::from_json_string(json);
    FAIL() << "expected a did-you-mean error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'crash_mtbf_s'"),
              std::string::npos)
        << e.what();
  }
}

TEST(FaultSpec, KillsRequireAnElasticFleet) {
  ExperimentSpec spec;
  FaultConfig faults;
  faults.profiles = {crash_profile()};
  spec.with_scenario("spot-churn").with_faults(faults);
  try {
    spec.validate();
    FAIL() << "expected validate() to reject kills on a static fleet";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("autoscal"), std::string::npos)
        << e.what();
  }

  // Degrade-only profiles are fine on a static fleet (no capacity lost).
  FaultConfig degrade_only;
  FaultProfile p;
  p.degrade_mtbf_s = 100.0;
  p.degrade_factor = 2.0;
  p.degrade_duration_s = 5.0;
  degrade_only.profiles = {p};
  spec.with_faults(degrade_only);
  EXPECT_NO_THROW(spec.validate());
}

// ------------------------------------------------------ injector engine

/// Drive a standalone injector against a fake fleet: the hooks maintain the
/// active set, so kills shrink capacity exactly as the cluster would.
struct FakeFleet {
  std::vector<ReplicaId> active;
  std::vector<ReplicaId> killed;
  std::vector<ReplicaId> drained;
  int budget = 0;  ///< work_remaining() countdown, decremented per crash ask

  FaultInjector::Hooks hooks() {
    FaultInjector::Hooks h;
    h.active_replicas = [this](const std::string&) { return active; };
    h.kill = [this](ReplicaId r, Seconds, bool) {
      killed.push_back(r);
      std::erase(active, r);
    };
    h.drain = [this](ReplicaId r) {
      drained.push_back(r);
      std::erase(active, r);
    };
    h.set_slow_factor = [](ReplicaId, double) {};
    h.work_remaining = [this] { return --budget > 0; };
    return h;
  }
};

TEST(FaultInjector, DeterministicAndNeverKillsLastActive) {
  FaultConfig config;
  config.seed = 17;
  config.profiles = {crash_profile(/*mtbf=*/5.0)};

  const auto run_once = [&config] {
    FakeFleet fleet;
    fleet.active = {0, 1, 2, 3};
    fleet.budget = 50;
    EventQueue events;
    FaultInjector injector(config, &events, fleet.hooks());
    injector.start();
    while (!events.empty()) events.run_next();
    return fleet;
  };

  const FakeFleet a = run_once();
  const FakeFleet b = run_once();
  // The crash stream keeps firing while work remains, but the last active
  // replica is never taken: capacity bottoms out at one.
  EXPECT_EQ(a.killed.size(), 3u);
  EXPECT_EQ(a.active.size(), 1u);
  // Same config, same seed: the identical victim sequence.
  EXPECT_EQ(a.killed, b.killed);
  EXPECT_EQ(a.active, b.active);
}

TEST(FaultInjector, SpotWindowDrainsOnNoticeThenKills) {
  FaultConfig config;
  config.profiles = {FaultProfile{}};
  config.profiles[0].spot_windows = {SpotWindow{10.0, 30.0, 1, 5.0}};

  FakeFleet fleet;
  fleet.active = {0, 1, 2};
  fleet.budget = 1000;
  EventQueue events;
  TraceRecorder rec;
  FaultInjector injector(config, &events, fleet.hooks());
  injector.set_trace(&rec);
  injector.start();
  while (!events.empty()) events.run_next();

  // The highest-id active replica drains at t=10 and dies at t=15.
  ASSERT_EQ(fleet.drained.size(), 1u);
  ASSERT_EQ(fleet.killed.size(), 1u);
  EXPECT_EQ(fleet.drained[0], 2);
  EXPECT_EQ(fleet.killed[0], 2);
  EXPECT_EQ(injector.log().spot_reclaims, 1);
  ASSERT_EQ(rec.records().size(), 1u);  // the notice record
  EXPECT_EQ(rec.records()[0].kind, TraceEventKind::kReplicaFault);
  EXPECT_EQ(rec.records()[0].detail, 1);
  EXPECT_DOUBLE_EQ(rec.records()[0].time, 10.0);
}

// --------------------------------------------------- end-to-end chaos sim

BackendFactory reference_factory(const SimulationConfig& config,
                                 std::uint64_t seed = 1) {
  const ModelSpec model = config.model;
  const NodeSpec node = config.node;
  const ParallelConfig parallel = config.parallel;
  return [model, node, parallel, seed](ReplicaId r) {
    return std::make_unique<ReferenceExecutor>(
        node, model, parallel, seed + static_cast<std::uint64_t>(r));
  };
}

SimulationConfig chaos_sim_config(int fleet) {
  SimulationConfig config;
  config.model = model_by_name("llama2-7b");
  config.node.sku = sku_by_name("a100");
  config.parallel = ParallelConfig{1, 1, fleet};
  config.scheduler.kind = SchedulerKind::kSarathi;
  config.scheduler.max_batch_size = 32;
  config.scheduler.chunk_size = 512;
  config.global_scheduler = GlobalSchedulerKind::kCacheAware;
  config.prefix_cache.enabled = true;
  config.autoscale.kind = AutoscalerKind::kReactive;
  // A sticky fleet: floor of two and a reluctant scale-down, so the chaos
  // tests measure fault-driven capacity loss, not load-driven shrinkage.
  config.autoscale.min_replicas = 2;
  config.autoscale.initial_replicas = fleet;
  config.autoscale.decision_interval = 2.0;
  config.autoscale.provision_delay = 2.0;
  config.autoscale.warmup_delay = 1.0;
  config.autoscale.scale_down_cooldown = 60.0;
  config.autoscale.target_load_per_replica = 6.0;
  config.autoscale.scale_up_load = 10.0;
  config.autoscale.scale_down_load = 0.25;
  return config;
}

Trace chaos_trace(const char* scenario_name, int n, std::uint64_t seed) {
  Scenario s = scenario_by_name(scenario_name);
  s.num_requests = n;
  return generate_scenario_trace(s, seed);
}

TEST(FaultSim, SameSeedChaosReplayIsBitIdentical) {
  // The paranoid determinism case, now with failures: faults (crash + spot
  // + degrade) + autoscaling + cache-aware routing + prefix cache +
  // tracing, twice, must agree record for record.
  SimulationConfig config = chaos_sim_config(4);
  config.faults = chaos_config();
  config.faults.profiles[0].crash_mtbf_s = 120.0;
  config.tenants = scenario_by_name("spot-churn").tenant_infos();
  const Trace trace = chaos_trace("spot-churn", 160, 23);

  TraceRecorder first, second;
  const auto run_once = [&](TraceRecorder* rec) {
    SimulationConfig c = config;
    c.obs.trace = rec;
    Simulator sim(c, trace, reference_factory(c));
    return sim.run();
  };
  const SimulationMetrics m1 = run_once(&first);
  const SimulationMetrics m2 = run_once(&second);

  ASSERT_GT(first.records().size(), 0u);
  ASSERT_EQ(first.records().size(), second.records().size());
  for (std::size_t i = 0; i < first.records().size(); ++i)
    ASSERT_EQ(first.records()[i], second.records()[i]) << "record " << i;
  EXPECT_EQ(m1.num_completed, m2.num_completed);
  EXPECT_EQ(m1.resilience.num_retries, m2.resilience.num_retries);
  EXPECT_EQ(m1.resilience.num_shed, m2.resilience.num_shed);
  EXPECT_EQ(m1.resilience.tokens_reprefilled,
            m2.resilience.tokens_reprefilled);

  bool saw_fault = false;
  for (const TraceRecord& r : first.records())
    saw_fault |= r.kind == TraceEventKind::kReplicaFault;
  EXPECT_TRUE(saw_fault);
  EXPECT_GT(m1.resilience.num_spot_reclaims, 0);
}

TEST(FaultSim, RequestConservationUnderChaos) {
  // The property the recovery engine must never break: every arrival ends
  // in exactly one of completed / shed / retries-exhausted — no request
  // is double-completed, none vanishes. Checked from the trace itself, on
  // both chaos scenarios, with every fault source active and a retry
  // budget small enough that some requests genuinely run out.
  for (const char* name : {"spot-churn", "straggler-tail"}) {
    SimulationConfig config = chaos_sim_config(3);
    config.faults = chaos_config();
    config.faults.profiles[0].crash_mtbf_s = 12.0;  // violent churn
    config.faults.recovery.max_attempts = 1;
    config.tenants = scenario_by_name(name).tenant_infos();
    TraceRecorder rec;
    config.obs.trace = &rec;
    const Trace trace = chaos_trace(name, 140, 31);

    Simulator sim(config, trace, reference_factory(config));
    const SimulationMetrics m = sim.run();

    std::set<RequestId> arrived;
    std::map<RequestId, int> terminal;
    for (const TraceRecord& r : rec.records()) {
      switch (r.kind) {
        case TraceEventKind::kArrival:
          EXPECT_TRUE(arrived.insert(r.id).second) << "duplicate arrival";
          break;
        case TraceEventKind::kCompleted:
          ++terminal[r.id];
          break;
        case TraceEventKind::kRequestShed:
          ++terminal[r.id];
          break;
        case TraceEventKind::kRequestRetry:
          if (r.detail == 1) ++terminal[r.id];  // attempts exhausted: lost
          break;
        default:
          break;
      }
    }
    EXPECT_EQ(arrived.size(), trace.size()) << name;
    for (const RequestId id : arrived)
      EXPECT_EQ(terminal[id], 1) << "request " << id << " in " << name;
    for (const auto& [id, n] : terminal)
      EXPECT_TRUE(arrived.count(id)) << "terminal for unknown " << id;

    ASSERT_TRUE(m.resilience.enabled);
    EXPECT_EQ(static_cast<std::int64_t>(m.num_completed) +
                  m.resilience.num_shed + m.resilience.num_lost,
              static_cast<std::int64_t>(trace.size()))
        << name;
    EXPECT_GT(m.resilience.num_crashes, 0) << name;
  }
}

TEST(FaultSim, DegradedReplicaStretchesExecutionDeterministically) {
  // Straggler mode is a pure timing effect: same trace, same seed, but a
  // degraded window must make the run strictly slower, lose nothing, and
  // leave the fault trail in the trace.
  SimulationConfig clean = chaos_sim_config(2);
  clean.autoscale.kind = AutoscalerKind::kNone;  // fixed fleet: degrade-only
  SimulationConfig slowed = clean;
  FaultProfile p;
  p.degrade_mtbf_s = 30.0;
  p.degrade_factor = 3.0;
  p.degrade_duration_s = 20.0;
  slowed.faults.seed = 5;
  slowed.faults.profiles = {p};
  const Trace trace = chaos_trace("straggler-tail", 120, 9);

  Simulator clean_sim(clean, trace, reference_factory(clean));
  const SimulationMetrics m_clean = clean_sim.run();
  TraceRecorder rec;
  slowed.obs.trace = &rec;
  Simulator slow_sim(slowed, trace, reference_factory(slowed));
  const SimulationMetrics m_slow = slow_sim.run();

  EXPECT_EQ(m_clean.num_completed, trace.size());
  EXPECT_EQ(m_slow.num_completed, trace.size());
  ASSERT_TRUE(m_slow.resilience.enabled);
  EXPECT_GT(m_slow.resilience.num_degrade_events, 0);
  EXPECT_EQ(m_slow.resilience.num_lost, 0);
  EXPECT_GT(m_slow.makespan, m_clean.makespan);
  EXPECT_GT(m_slow.tbt.p99, m_clean.tbt.p99);

  int starts = 0, ends = 0;
  for (const TraceRecord& r : rec.records()) {
    if (r.kind != TraceEventKind::kReplicaFault) continue;
    if (r.detail == 3) ++starts;
    if (r.detail == 4) ++ends;
  }
  EXPECT_EQ(starts, m_slow.resilience.num_degrade_events);
  EXPECT_EQ(ends, starts);  // every degraded episode is restored
}

// --------------------------------- decommission cache teardown (regression)

TEST(FaultSim, DecommissionTearsDownPrefixCachePool) {
  // Busy start, quiet tail: the fleet must shrink, and every replica that
  // drained + decommissioned must have returned its whole prefix-cache
  // pool — cluster-wide cached blocks on dead replicas drop to zero
  // (previously the pool leaked across scale-downs).
  Scenario s = scenario_by_name("spot-churn");
  s.profile = RateProfile::piecewise(
      {RateStep{0.0, 3.0}, RateStep{25.0, 0.1}});
  s.num_requests = 150;
  const Trace trace = generate_scenario_trace(s, 13);

  SimulationConfig config = chaos_sim_config(4);
  config.tenants = s.tenant_infos();
  Simulator sim(config, trace, reference_factory(config));
  const SimulationMetrics m = sim.run();

  EXPECT_EQ(m.num_completed, trace.size());
  ASSERT_TRUE(m.scaling.enabled);
  ASSERT_GE(m.scaling.num_scale_down_events, 1);
  ASSERT_NE(sim.cluster(), nullptr);

  int decommissioned_with_traffic = 0;
  long dead_resident_blocks = 0;
  for (ReplicaId r = 0; r < sim.num_slots(); ++r) {
    if (sim.cluster()->state(r) != ReplicaState::kDecommissioned) continue;
    const PrefixCache* cache = sim.prefix_cache(r);
    ASSERT_NE(cache, nullptr);
    if (cache->stats().inserted_blocks > 0) ++decommissioned_with_traffic;
    dead_resident_blocks += cache->resident_blocks();
  }
  // The regression only bites if a torn-down replica actually held cache
  // state; the busy phase guarantees at least one did.
  EXPECT_GE(decommissioned_with_traffic, 1);
  EXPECT_EQ(dead_resident_blocks, 0);
}

// --------------------------------- preempt-restart cache credit (regression)

/// A turn of a multi-turn conversation.
Request session_turn(RequestId id, std::int64_t session, int turn,
                     TokenCount prefill, TokenCount decode) {
  Request r;
  r.id = id;
  r.session = session;
  r.turn = turn;
  r.prefill_tokens = prefill;
  r.decode_tokens = decode;
  return r;
}

TEST(FaultRecovery, PreemptedRestartKeepsCachedPrefix) {
  // A session turn attaches 64 cached prefix tokens, gets preempted on KV
  // exhaustion, and must re-enter the queue with the resident prefix
  // re-attached: each of its prefill passes charges only the 64-token cold
  // suffix (previously the restart re-charged the full 128).
  SchedulerConfig sconfig;
  sconfig.kind = SchedulerKind::kVllm;
  sconfig.max_batch_size = 8;
  sconfig.max_tokens_per_iteration = 4096;
  MemoryPlan plan;
  plan.num_kv_blocks = 20;  // 320 tokens
  plan.block_size = 16;
  auto scheduler = make_replica_scheduler(sconfig, plan);
  PrefixCache cache(/*capacity_blocks=*/8, /*block_size=*/16);
  scheduler->set_prefix_cache(&cache);

  std::vector<std::unique_ptr<RequestState>> states;
  const auto add = [&](Request request) {
    auto state = std::make_unique<RequestState>();
    state->request = request;
    state->record.id = request.id;
    RequestState* ptr = state.get();
    states.push_back(std::move(state));
    scheduler->enqueue(ptr);
    return ptr;
  };
  Seconds now = 0.0;
  TokenCount b_prefill_tokens = 0;
  const auto run_all = [&](RequestId track) {
    int steps = 0;
    while (scheduler->has_work()) {
      VIDUR_CHECK_MSG(++steps <= 100000, "scheduler made no progress");
      const BatchSpec batch = scheduler->schedule(now);
      now += 0.01;
      if (batch.empty()) continue;
      for (const BatchItem& item : batch.items)
        if (item.request == track && item.is_prefill)
          b_prefill_tokens += item.q_tokens;
      scheduler->on_batch_end(batch, now);
    }
  };

  // Turn 0 completes and donates its 64-token prefix (4 whole blocks of
  // the 68 KV tokens) to the cache.
  RequestState* a = add(session_turn(0, /*session=*/7, /*turn=*/0,
                                     /*prefill=*/64, /*decode=*/4));
  run_all(-1);
  ASSERT_TRUE(a->finished());
  ASSERT_EQ(cache.resident_blocks(), 4);

  // A bulky rival admits first; the follow-up turn hits the cached prefix.
  RequestState* rival = add(Request{1, now, /*prefill=*/150, /*decode=*/40});
  RequestState* b = add(session_turn(2, /*session=*/7, /*turn=*/1,
                                     /*prefill=*/128, /*decode=*/40));
  run_all(/*track=*/2);

  ASSERT_TRUE(rival->finished());
  ASSERT_TRUE(b->finished());
  // Decode growth exhausted the 20-block pool: the later arrival (the
  // session turn) was the preemption victim.
  EXPECT_EQ(rival->record.num_restarts, 0);
  ASSERT_GE(b->record.num_restarts, 1);
  // The cache credit survived the restart: the initial attach AND one
  // re-attach per restart (hits), and every prefill pass charged exactly
  // the 64-token cold suffix — not the full 128-token prompt.
  EXPECT_EQ(static_cast<int>(cache.stats().hits),
            1 + b->record.num_restarts);
  EXPECT_EQ(b_prefill_tokens,
            static_cast<TokenCount>(64 * (1 + b->record.num_restarts)));
}

}  // namespace
}  // namespace vidur
