// Tests for src/estimator: the regression models (CART tree, random forest,
// ridge polynomial, 1-NN) and the caching RuntimeEstimator facade.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "common/thread_pool.h"
#include "estimator/regression.h"
#include "estimator/runtime_estimator.h"
#include "profiler/profiler.h"

namespace vidur {
namespace {

Dataset make_1d(const std::vector<std::pair<double, double>>& xy) {
  Dataset d;
  for (const auto& [x, y] : xy) d.add({x}, y);
  return d;
}

// ------------------------------------------------------------------ tree

TEST(DecisionTree, FitsTrainingDataExactly) {
  // With min_samples_leaf = 1 and distinct x, a deep tree memorizes.
  const Dataset d = make_1d({{1, 10}, {2, 20}, {3, 15}, {4, 40}, {5, 5}});
  DecisionTree tree;
  tree.fit(d);
  for (std::size_t i = 0; i < d.size(); ++i)
    EXPECT_DOUBLE_EQ(tree.predict({d.x[i]}), d.y[i]);
}

TEST(DecisionTree, PredictsStepFunction) {
  Dataset d;
  for (double x = 0; x < 100; ++x) d.add({x}, x < 50 ? 1.0 : 2.0);
  DecisionTree tree;
  tree.fit(d);
  EXPECT_DOUBLE_EQ(tree.predict({10.0}), 1.0);
  EXPECT_DOUBLE_EQ(tree.predict({90.0}), 2.0);
  // A step function needs exactly one split.
  EXPECT_EQ(tree.num_nodes(), 3u);
}

TEST(DecisionTree, RespectsMaxDepth) {
  Dataset d;
  for (double x = 0; x < 64; ++x) d.add({x}, x);
  DecisionTree shallow(DecisionTree::Options{.max_depth = 2,
                                             .min_samples_leaf = 1});
  shallow.fit(d);
  EXPECT_LE(shallow.num_nodes(), 7u);  // depth-2 binary tree
}

TEST(DecisionTree, RespectsMinSamplesLeaf) {
  Dataset d;
  for (double x = 0; x < 20; ++x) d.add({x}, x);
  DecisionTree tree(DecisionTree::Options{.max_depth = 20,
                                          .min_samples_leaf = 5});
  tree.fit(d);
  // Leaves average >= 5 samples -> prediction is a coarse staircase.
  EXPECT_NEAR(tree.predict({0.0}), 2.0, 2.01);
}

TEST(DecisionTree, HandlesConstantTarget) {
  const Dataset d = make_1d({{1, 7}, {2, 7}, {3, 7}});
  DecisionTree tree;
  tree.fit(d);
  EXPECT_DOUBLE_EQ(tree.predict({2.5}), 7.0);
  EXPECT_EQ(tree.num_nodes(), 1u);  // pure leaf, no splits
}

TEST(DecisionTree, TwoFeatureSplit) {
  Dataset d;
  for (double x = 0; x < 10; ++x)
    for (double y = 0; y < 10; ++y) d.add({x, y}, y >= 5 ? 3.0 : 1.0);
  DecisionTree tree;
  tree.fit(d);
  EXPECT_DOUBLE_EQ(tree.predict({0.0, 9.0}), 3.0);
  EXPECT_DOUBLE_EQ(tree.predict({9.0, 0.0}), 1.0);
}

TEST(DecisionTree, ErrorsOnMisuse) {
  DecisionTree tree;
  EXPECT_THROW(tree.predict({1.0}), Error);  // predict before fit
  Dataset empty;
  EXPECT_THROW(tree.fit(empty), Error);
  const Dataset d = make_1d({{1, 1}});
  tree.fit(d);
  EXPECT_THROW(tree.predict({1.0, 2.0}), Error);  // wrong width
}

// ---------------------------------------------------------------- forest

TEST(RandomForest, ApproximatesSmoothFunction) {
  Dataset d;
  for (double x = 0; x <= 200; x += 2) d.add({x}, 5.0 + 3.0 * x);
  RandomForest forest;
  forest.fit(d);
  // Interior points interpolate within a few percent (edges are coarser
  // because bootstrapped trees cannot extrapolate past their split range).
  for (double x = 25; x < 180; x += 17) {
    const double truth = 5.0 + 3.0 * x;
    EXPECT_NEAR(forest.predict({x}), truth, truth * 0.07) << x;
  }
}

TEST(RandomForest, CapturesStaircaseUnlikePolynomial) {
  // A quantization-style staircase: y jumps at multiples of 32.
  Dataset d;
  for (double x = 1; x <= 256; ++x)
    d.add({x}, std::ceil(x / 32.0));
  RandomForest forest;
  forest.fit(d);
  RidgePolyRegression poly;
  poly.fit(d);
  const double rf_mape = mean_absolute_percentage_error(forest, d);
  const double poly_mape = mean_absolute_percentage_error(poly, d);
  EXPECT_LT(rf_mape, 0.03);
  EXPECT_GT(poly_mape, rf_mape * 2);
}

TEST(RandomForest, DeterministicForSeed) {
  Dataset d;
  for (double x = 0; x < 50; ++x) d.add({x}, x * x);
  RandomForest a(RandomForest::Options{.num_trees = 8, .tree = {}, .seed = 5});
  RandomForest b(RandomForest::Options{.num_trees = 8, .tree = {}, .seed = 5});
  a.fit(d);
  b.fit(d);
  for (double x = 0.5; x < 50; x += 3.3)
    EXPECT_DOUBLE_EQ(a.predict({x}), b.predict({x}));
}

TEST(RandomForest, PredictBeforeFitThrows) {
  RandomForest forest;
  EXPECT_THROW(forest.predict({1.0}), Error);
}

// ----------------------------------------------------------------- ridge

TEST(RidgePoly, ExactOnQuadratic) {
  Dataset d;
  for (double x = -10; x <= 10; x += 0.5) d.add({x}, 2.0 + 3.0 * x + 0.5 * x * x);
  RidgePolyRegression model;
  model.fit(d);
  for (double x = -9.3; x < 10; x += 2.1) {
    const double truth = 2.0 + 3.0 * x + 0.5 * x * x;
    EXPECT_NEAR(model.predict({x}), truth, std::abs(truth) * 0.01 + 0.01);
  }
}

TEST(RidgePoly, CrossTermsCaptured) {
  Dataset d;
  for (double x = 0; x <= 8; ++x)
    for (double y = 0; y <= 8; ++y) d.add({x, y}, x * y);
  RidgePolyRegression model;
  model.fit(d);
  EXPECT_NEAR(model.predict({3.0, 5.0}), 15.0, 0.3);
}

TEST(RidgePoly, Degree3) {
  Dataset d;
  for (double x = 0; x <= 20; ++x) d.add({x}, x * x * x);
  RidgePolyRegression model(RidgePolyRegression::Options{.degree = 3,
                                                         .lambda = 1e-9});
  model.fit(d);
  EXPECT_NEAR(model.predict({10.5}), 10.5 * 10.5 * 10.5, 40.0);
}

TEST(RidgePoly, InvalidDegreeThrows) {
  RidgePolyRegression model(RidgePolyRegression::Options{.degree = 4,
                                                         .lambda = 1e-6});
  const Dataset d = make_1d({{1, 1}, {2, 2}});
  EXPECT_THROW(model.fit(d), Error);
}

// ------------------------------------------------------------------- 1nn

TEST(NearestNeighbor, ExactOnTrainingPoints) {
  const Dataset d = make_1d({{1, 10}, {5, 50}, {9, 90}});
  NearestNeighbor nn;
  nn.fit(d);
  EXPECT_DOUBLE_EQ(nn.predict({5.0}), 50.0);
  EXPECT_DOUBLE_EQ(nn.predict({5.9}), 50.0);  // nearest is 5
  EXPECT_DOUBLE_EQ(nn.predict({8.0}), 90.0);
}

TEST(NearestNeighbor, ScaleNormalizationMatters) {
  // Feature 2 has a huge range; without normalization it would dominate.
  Dataset d;
  d.add({1.0, 1000.0}, 1.0);
  d.add({2.0, 1000000.0}, 2.0);
  NearestNeighbor nn;
  nn.fit(d);
  EXPECT_DOUBLE_EQ(nn.predict({1.1, 900000.0}), 2.0);
}

// ----------------------------------------------------------- facade/MAPE

// -------------------------------------------------------------------- mlp

TEST(Mlp, FitsSmoothFunctionWithAmpleData) {
  Dataset d;
  for (double x = 1; x <= 200; ++x) d.add({x}, 5.0 + 3.0 * x);
  MlpRegression mlp;
  mlp.fit(d);
  EXPECT_LT(mean_absolute_percentage_error(mlp, d), 0.10);
}

TEST(Mlp, PredictionsAlwaysPositive) {
  // Log-space regression guarantees positive runtimes even extrapolating.
  Dataset d;
  for (double x = 1; x <= 50; ++x) d.add({x}, 1e-4 * x);
  MlpRegression mlp;
  mlp.fit(d);
  for (double x : {-10.0, 0.0, 25.0, 500.0}) EXPECT_GT(mlp.predict({x}), 0.0);
}

TEST(Mlp, DeterministicForSeed) {
  Dataset d;
  for (double x = 1; x <= 60; ++x) d.add({x}, x * x);
  MlpRegression::Options o;
  o.epochs = 50;
  o.seed = 17;
  MlpRegression a(o), b(o);
  a.fit(d);
  b.fit(d);
  for (double x = 1.5; x < 60; x += 7.7)
    EXPECT_DOUBLE_EQ(a.predict({x}), b.predict({x}));
}

TEST(Mlp, DataHungryComparedToForestOnSmallSamples) {
  // The paper's §4.4 rationale for random forests: on the small profiled
  // grids Vidur collects, an MLP generalizes worse than a forest. Train
  // both on a sparse sample of a tile-quantized runtime curve and evaluate
  // densely.
  auto quantized = [](double x) { return 1e-3 * std::ceil(x / 32.0); };
  Dataset sparse;  // 32 training points: two per quantization bin
  for (double x = 8; x <= 512; x += 16) sparse.add({x}, quantized(x));
  Dataset dense;  // held-out evaluation
  for (double x = 4; x <= 500; x += 7) dense.add({x}, quantized(x));

  RandomForest forest;
  forest.fit(sparse);
  MlpRegression mlp;
  mlp.fit(sparse);
  const double forest_mape = mean_absolute_percentage_error(forest, dense);
  const double mlp_mape = mean_absolute_percentage_error(mlp, dense);
  // The forest snaps to the plateaus it has seen; the MLP smooths through
  // them and needs far more data to recover the staircase.
  EXPECT_LT(forest_mape, mlp_mape * 0.75);
}

TEST(Mlp, LearnsTwoFeatureInteraction) {
  // Runtime-like target: product of two inputs (as GEMM time ~ m*n). The
  // log-space MLP sees log(x1*x2) = log x1 + log x2... but features are fed
  // raw, so the net must learn the interaction itself.
  Dataset d;
  for (double a = 1; a <= 12; ++a)
    for (double b = 1; b <= 12; ++b) d.add({a, b}, 1e-4 * a * b);
  MlpRegression mlp;
  mlp.fit(d);
  EXPECT_LT(mean_absolute_percentage_error(mlp, d), 0.15);
  // Interior generalization point.
  EXPECT_NEAR(mlp.predict({6.5, 6.5}), 1e-4 * 6.5 * 6.5,
              1e-4 * 6.5 * 6.5 * 0.25);
}

TEST(Mlp, ErrorsOnMisuse) {
  MlpRegression mlp;
  EXPECT_THROW(mlp.predict({1.0}), Error);
  EXPECT_THROW(mlp.fit(Dataset{}), Error);
  Dataset negative;
  negative.add({1.0}, -1.0);
  EXPECT_THROW(mlp.fit(negative), Error);
}

TEST(Factory, MakesAllKinds) {
  for (EstimatorKind kind :
       {EstimatorKind::kRandomForest, EstimatorKind::kRidgePoly,
        EstimatorKind::kNearestNeighbor, EstimatorKind::kMlp}) {
    auto model = make_regression_model(kind);
    const Dataset d = make_1d({{1, 1}, {2, 2}, {3, 3}});
    model->fit(d);
    EXPECT_GT(model->predict({2.0}), 0.0);
  }
}

TEST(Mape, ComputesMeanRelativeError) {
  const Dataset d = make_1d({{1, 100}, {2, 200}});
  NearestNeighbor nn;
  nn.fit(make_1d({{1, 110}, {2, 180}}));
  EXPECT_NEAR(mean_absolute_percentage_error(nn, d), 0.1, 1e-9);
}

class RuntimeEstimatorTest : public ::testing::Test {
 protected:
  static const ProfileDb& db() {
    static const ProfileDb instance = [] {
      NodeSpec node;
      node.sku = sku_by_name("a100");
      ProfilerOptions opts;
      opts.max_tokens = 4096;
      opts.max_prefill_kv = 4096;
      return profile_model(model_by_name("llama2-7b"), node, {1, 2}, opts);
    }();
    return instance;
  }
};

TEST_F(RuntimeEstimatorTest, PredictsCloseToProfiledPoints) {
  const RuntimeEstimator est(db());
  double mape = 0.0;
  int n = 0;
  for (const ProfilePoint& p : db().points({OpType::kAttnQkvProj, 1})) {
    OpInput in;
    in.tokens = static_cast<long>(p.features[0]);
    const double pred = est.predict_uncached(OpType::kAttnQkvProj, 1, in);
    // Individual points near quantization cliffs can deviate; bound each
    // point loosely and the aggregate tightly.
    EXPECT_NEAR(pred, p.runtime, p.runtime * 0.30);
    mape += std::abs(pred - p.runtime) / p.runtime;
    ++n;
  }
  EXPECT_LT(mape / n, 0.05);
}

TEST_F(RuntimeEstimatorTest, CacheHitsOnRepeatedQueries) {
  const RuntimeEstimator est(db());
  OpInput in;
  in.tokens = 333;
  const double first = est.predict(OpType::kMlpDownProj, 1, in);
  const auto misses = est.cache_misses();
  for (int i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(est.predict(OpType::kMlpDownProj, 1, in), first);
  EXPECT_EQ(est.cache_misses(), misses);
  EXPECT_GE(est.cache_hits(), 10u);
}

TEST_F(RuntimeEstimatorTest, DecodeKvQuantizationSharesCacheEntries) {
  const RuntimeEstimator est(db());
  OpInput a, b;
  a.kv_tokens = 10000;
  a.batch_size = 16;
  b.kv_tokens = 10010;  // rounds to the same 64-token bucket
  b.batch_size = 16;
  const double pa = est.predict(OpType::kAttnDecode, 1, a);
  const std::size_t size_after_first = est.cache_size();
  const double pb = est.predict(OpType::kAttnDecode, 1, b);
  EXPECT_DOUBLE_EQ(pa, pb);
  EXPECT_EQ(est.cache_size(), size_after_first);
}

TEST_F(RuntimeEstimatorTest, ConcurrentPredictsAreConsistent) {
  // Hammer the lock-free prediction cache from pool workers with heavily
  // overlapping keys: every cached value must equal the uncached
  // computation, and the hit/miss counters must account for every call.
  const RuntimeEstimator est(db());
  constexpr std::size_t kWorkers = 8;
  constexpr int kIters = 1500;
  ThreadPool pool(4);
  std::atomic<int> mismatches{0};
  parallel_for(pool, kWorkers, [&](std::size_t w) {
    for (int i = 0; i < kIters; ++i) {
      OpInput in;
      if (i % 3 == 0) {
        // Quantized path: KV multiples of the rounding granule, so the
        // uncached reference sees the same post-quantization input.
        in.kv_tokens = 64 * (1 + (i * 13 + static_cast<int>(w) * 7) % 128);
        in.batch_size = 8;
        const double got = est.predict(OpType::kAttnDecode, 1, in);
        const double want = est.predict_uncached(OpType::kAttnDecode, 1, in);
        if (got != want) mismatches.fetch_add(1);
      } else {
        in.tokens = 1 + (i * 13 + static_cast<int>(w) * 7) % 256;
        const double got = est.predict(OpType::kMlpGateUpProj, 1, in);
        const double want =
            est.predict_uncached(OpType::kMlpGateUpProj, 1, in);
        if (got != want) mismatches.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
  // Exact conservation, not just plausibility: predict() counts one lookup
  // per call, and misses are derived as lookups - hits, so the identity
  // holds bit-for-bit no matter how the CAS publications interleave.
  EXPECT_EQ(est.cache_lookups(), kWorkers * kIters);
  EXPECT_EQ(est.cache_hits() + est.cache_misses(), est.cache_lookups());
  EXPECT_EQ(est.cache_hits() + est.cache_misses(), kWorkers * kIters);
  // Every distinct key lands in the table; racing duplicate inserts are
  // benign but bounded by the worker count.
  EXPECT_GE(est.cache_size(), 256u);
  EXPECT_LE(est.cache_size(), (256u + 128u) * kWorkers);
}

TEST_F(RuntimeEstimatorTest, MissingModelThrows) {
  const RuntimeEstimator est(db());
  OpInput in;
  in.tokens = 10;
  EXPECT_THROW(est.predict_uncached(OpType::kMlpDownProj, 8, in), Error);
  EXPECT_FALSE(est.has_model(OpType::kMlpDownProj, 8));
  EXPECT_TRUE(est.has_model(OpType::kMlpDownProj, 2));
}

TEST_F(RuntimeEstimatorTest, PredictionsArePositive) {
  const RuntimeEstimator est(db());
  OpInput in;
  in.tokens = 1;
  for (OpType op : {OpType::kRmsNorm, OpType::kLmHead, OpType::kActMul})
    EXPECT_GT(est.predict_uncached(op, 1, in), 0.0) << op_name(op);
}

TEST_F(RuntimeEstimatorTest, HeldOutMapeSmall) {
  const RuntimeEstimator est(db());
  // Evaluate on the profile points themselves (in-sample, smoke-level).
  double mape = est.evaluate_mape({OpType::kAttnDecode, 1},
                                  db().points({OpType::kAttnDecode, 1}));
  EXPECT_LT(mape, 0.10);
}

TEST(EmptyProfile, EstimatorRejectsEmptyDb) {
  ProfileDb empty;
  EXPECT_THROW(RuntimeEstimator{empty}, Error);
}

}  // namespace
}  // namespace vidur
