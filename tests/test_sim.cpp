// Tests for src/sim: the event queue and the end-to-end simulator across
// schedulers, parallelism configs and global routing policies.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "common/random.h"
#include "core/session.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "workload/trace_generator.h"

namespace vidur {
namespace {

// ------------------------------------------------------------ event queue

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, SimultaneousEventsAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) q.schedule(1.0, [&, i] { order.push_back(i); });
  while (!q.empty()) q.run_next();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] {
    ++fired;
    q.schedule(2.0, [&] { ++fired; });
  });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.run_next();
  EXPECT_THROW(q.schedule(4.0, [] {}), Error);
}

TEST(EventQueue, RunNextOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.run_next(), Error);
}

TEST(EventQueue, NowIsMonotonicAcrossInterleavedSchedules) {
  EventQueue q;
  Rng rng(17);
  Seconds last = -1.0;
  int executed = 0;
  // Events re-schedule future events at random offsets; now() must never
  // move backwards no matter how the heap interleaves them.
  std::function<void()> chain = [&] {
    EXPECT_GE(q.now(), last);
    last = q.now();
    ++executed;
    if (executed < 200) {
      q.schedule(q.now() + rng.uniform(0.0, 2.0), chain);
      q.schedule(q.now() + rng.uniform(0.0, 2.0), chain);
    }
  };
  q.schedule(0.5, chain);
  while (!q.empty()) q.run_next();
  EXPECT_GE(executed, 200);
  EXPECT_DOUBLE_EQ(q.now(), last);
}

TEST(EventQueue, TypedEventsInterleaveFifoWithCallbacks) {
  EventQueue q;
  std::vector<std::int64_t> order;
  auto typed = [&](EventKind kind, std::int64_t marker) {
    SimEvent ev;
    ev.kind = kind;
    ev.handle = marker;
    q.schedule_event(1.0, ev);
  };
  q.schedule(1.0, [&] { order.push_back(0); });
  typed(EventKind::kStageEnd, 1);
  q.schedule(1.0, [&] { order.push_back(2); });
  typed(EventKind::kDeliverToStage, 3);
  typed(EventKind::kStageEnd, 4);
  while (!q.empty())
    q.run_next([&](const SimEvent& ev) { order.push_back(ev.handle); });
  EXPECT_EQ(order, (std::vector<std::int64_t>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, MatchesReferenceOrderAcross10kRandomSchedules) {
  // Random interleaving of pushes and pops against a brute-force reference:
  // the heap must pop in exact (time, scheduling order) sequence. Times are
  // quantized so simultaneous events are common.
  EventQueue q;
  Rng rng(2024);
  std::vector<std::pair<Seconds, std::int64_t>> reference;  // insertion order
  std::int64_t next_id = 0;
  int executed = 0;
  const auto push = [&] {
    const Seconds t =
        q.now() + std::floor(rng.uniform(0.0, 40.0)) * 0.25;
    SimEvent ev;
    ev.kind = EventKind::kStageEnd;
    ev.handle = next_id;
    q.schedule_event(t, ev);
    reference.emplace_back(t, next_id++);
  };
  const auto pop = [&] {
    // Reference: earliest time, first-scheduled among ties.
    std::size_t best = 0;
    for (std::size_t i = 1; i < reference.size(); ++i)
      if (reference[i].first < reference[best].first) best = i;
    std::int64_t popped = -1;
    q.run_next([&](const SimEvent& ev) { popped = ev.handle; });
    EXPECT_EQ(popped, reference[best].second);
    EXPECT_DOUBLE_EQ(q.now(), reference[best].first);
    reference.erase(reference.begin() + static_cast<std::ptrdiff_t>(best));
    ++executed;
  };
  for (int step = 0; step < 10000; ++step) {
    if (reference.empty() || rng.uniform(0.0, 1.0) < 0.5)
      push();
    else
      pop();
  }
  while (!reference.empty()) pop();
  EXPECT_TRUE(q.empty());
  EXPECT_GE(executed, 4000);
}

TEST(EventQueue, TickHandlerRunsOnScheduledTicks) {
  EventQueue q;
  int ticks = 0;
  q.set_tick_handler([&] {
    if (++ticks < 3) q.schedule_tick(q.now() + 1.0);
  });
  q.schedule_tick(1.0);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(ticks, 3);
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

// -------------------------------------------------------------- simulator

SimulationConfig base_config(SchedulerKind kind = SchedulerKind::kVllm,
                             int tp = 1, int pp = 1, int replicas = 1) {
  SimulationConfig config;
  config.model = model_by_name("llama2-7b");
  config.node.sku = sku_by_name("a100");
  config.parallel = ParallelConfig{tp, pp, replicas};
  config.scheduler.kind = kind;
  config.scheduler.max_batch_size = 32;
  config.scheduler.chunk_size = 512;
  return config;
}

BackendFactory reference_factory(const SimulationConfig& config,
                                 std::uint64_t seed = 1) {
  const ModelSpec model = config.model;
  const NodeSpec node = config.node;
  const ParallelConfig parallel = config.parallel;
  return [model, node, parallel, seed](ReplicaId r) {
    return std::make_unique<ReferenceExecutor>(node, model, parallel,
                                               seed + static_cast<std::uint64_t>(r));
  };
}

Trace poisson_trace(int n, double qps, std::uint64_t seed = 11) {
  return generate_trace(trace_by_name("chat1m"),
                        ArrivalSpec{ArrivalKind::kPoisson, qps, 0}, n, seed);
}

class SimulatorPolicyTest : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(SimulatorPolicyTest, CompletesAllRequestsWithSaneMetrics) {
  const SimulationConfig config = base_config(GetParam());
  const Trace trace = poisson_trace(60, 1.0);
  Simulator sim(config, trace, reference_factory(config));
  const SimulationMetrics m = sim.run();
  EXPECT_EQ(m.num_completed, 60u);
  EXPECT_GT(m.makespan, 0.0);
  EXPECT_GT(m.throughput_qps, 0.0);
  EXPECT_GT(m.mfu, 0.0);
  EXPECT_LT(m.mfu, 1.0);
  EXPECT_LE(m.busy_fraction, 1.0 + 1e-9);
  EXPECT_GT(m.ttft.p50, 0.0);
  EXPECT_GT(m.tbt.p50, 0.0);
  // Per-request invariants.
  for (const RequestState& r : sim.request_states()) {
    EXPECT_TRUE(r.finished());
    EXPECT_GE(r.record.scheduling_delay(), 0.0);
    EXPECT_GE(r.record.ttft(), 0.0);
    EXPECT_GE(r.record.e2e_latency(), r.record.ttft());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, SimulatorPolicyTest,
    ::testing::Values(SchedulerKind::kFasterTransformer, SchedulerKind::kOrca,
                      SchedulerKind::kVllm, SchedulerKind::kSarathi,
                      SchedulerKind::kLightLlm),
    [](const ::testing::TestParamInfo<SchedulerKind>& info) {
      std::string name = scheduler_name(info.param);
      for (char& c : name)
        if (c == '+' || c == '_') c = 'P';
      return name;
    });

TEST(Simulator, DeterministicForSameSeed) {
  const SimulationConfig config = base_config();
  const Trace trace = poisson_trace(40, 1.0);
  Simulator a(config, trace, reference_factory(config, 7));
  Simulator b(config, trace, reference_factory(config, 7));
  const SimulationMetrics ma = a.run();
  const SimulationMetrics mb = b.run();
  EXPECT_DOUBLE_EQ(ma.makespan, mb.makespan);
  EXPECT_DOUBLE_EQ(ma.ttft.p90, mb.ttft.p90);
  EXPECT_DOUBLE_EQ(ma.normalized_e2e_latency.p95,
                   mb.normalized_e2e_latency.p95);
}

TEST(Simulator, PredictorRunsAreIdenticalAcrossRepeats) {
  // The replay guarantee the typed queue, the estimator cache, and the
  // stage-timing memo must preserve: rerunning the same simulation produces
  // bit-identical metrics even though the second run hits caches the first
  // run populated.
  VidurSession session(model_by_name("llama2-7b"));
  DeploymentConfig config;
  config.sku_name = "a100";
  config.parallel = ParallelConfig{1, 1, 2};
  config.scheduler.kind = SchedulerKind::kSarathi;
  config.scheduler.max_batch_size = 16;
  const Trace trace = poisson_trace(50, 2.0);
  const SimulationMetrics a = session.simulate(config, trace);
  const SimulationMetrics b = session.simulate(config, trace);
  EXPECT_EQ(a.num_sim_events, b.num_sim_events);
  EXPECT_EQ(a.num_completed, b.num_completed);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.throughput_qps, b.throughput_qps);
  EXPECT_DOUBLE_EQ(a.ttft.mean, b.ttft.mean);
  EXPECT_DOUBLE_EQ(a.ttft.p99, b.ttft.p99);
  EXPECT_DOUBLE_EQ(a.tbt.mean, b.tbt.mean);
  EXPECT_DOUBLE_EQ(a.tbt.p99, b.tbt.p99);
  EXPECT_DOUBLE_EQ(a.normalized_e2e_latency.p95, b.normalized_e2e_latency.p95);
  EXPECT_DOUBLE_EQ(a.scheduling_delay.max, b.scheduling_delay.max);
  EXPECT_DOUBLE_EQ(a.mfu, b.mfu);
  EXPECT_DOUBLE_EQ(a.mbu, b.mbu);
  EXPECT_DOUBLE_EQ(a.mean_batch_size, b.mean_batch_size);
  EXPECT_DOUBLE_EQ(a.total_energy_joules, b.total_energy_joules);
}

TEST(Simulator, ReferenceRunsAreIdenticalForSameSeed) {
  VidurSession session(model_by_name("llama2-7b"));
  DeploymentConfig config;
  config.sku_name = "a100";
  config.parallel = ParallelConfig{1, 2, 1};  // exercise pipeline events
  config.scheduler.kind = SchedulerKind::kVllm;
  config.scheduler.max_batch_size = 16;
  const Trace trace = poisson_trace(40, 2.0);
  const SimulationMetrics a = session.simulate_reference(config, trace, 99);
  const SimulationMetrics b = session.simulate_reference(config, trace, 99);
  EXPECT_EQ(a.num_sim_events, b.num_sim_events);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.ttft.mean, b.ttft.mean);
  EXPECT_DOUBLE_EQ(a.tbt.p99, b.tbt.p99);
  EXPECT_DOUBLE_EQ(a.normalized_e2e_latency.p95, b.normalized_e2e_latency.p95);
}

TEST(Simulator, DifferentSeedsDiffer) {
  const SimulationConfig config = base_config();
  const Trace trace = poisson_trace(40, 1.0);
  Simulator a(config, trace, reference_factory(config, 7));
  Simulator b(config, trace, reference_factory(config, 8));
  EXPECT_NE(a.run().makespan, b.run().makespan);
}

TEST(Simulator, RunTwiceThrows) {
  const SimulationConfig config = base_config();
  Simulator sim(config, poisson_trace(5, 1.0), reference_factory(config));
  sim.run();
  EXPECT_THROW(sim.run(), Error);
}

TEST(Simulator, MaxSimTimeTruncates) {
  SimulationConfig config = base_config();
  config.max_sim_time = 1.0;
  Simulator sim(config, poisson_trace(200, 5.0), reference_factory(config));
  const SimulationMetrics m = sim.run();
  EXPECT_LT(m.num_completed, 200u);
  EXPECT_LE(m.makespan, 1.0 + 1e-9);
}

TEST(Simulator, PipelineParallelKeepsStagesBusy) {
  // PP=2 on one replica must outperform a serial pipeline: makespan under
  // an offline burst should be well below 2x the PP=1 per-stage work.
  SimulationConfig pp2 = base_config(SchedulerKind::kSarathi, 1, 2, 1);
  const Trace trace = generate_trace(
      trace_by_name("chat1m"), ArrivalSpec{ArrivalKind::kStatic, 0, 0}, 64, 5);
  Simulator sim2(pp2, trace, reference_factory(pp2));
  const SimulationMetrics m2 = sim2.run();
  EXPECT_EQ(m2.num_completed, 64u);

  SimulationConfig pp1 = base_config(SchedulerKind::kSarathi, 1, 1, 1);
  Simulator sim1(pp1, trace, reference_factory(pp1));
  const SimulationMetrics m1 = sim1.run();
  // Two half-model stages pipelined: between 0.55x and 1.1x of the
  // single-stage makespan (bubbles cost something, but not 2x).
  EXPECT_LT(m2.makespan, m1.makespan * 1.10);
  EXPECT_GT(m2.makespan, m1.makespan * 0.55);
}

TEST(Simulator, MultiReplicaScalesThroughput) {
  // Fixed-length requests so the comparison is not tail-limited: with
  // identical per-request work, 4 replicas serve the burst ~4x faster.
  Trace trace;
  for (int i = 0; i < 128; ++i) trace.push_back(Request{i, 0.0, 256, 64});
  SimulationConfig one = base_config(SchedulerKind::kVllm, 1, 1, 1);
  SimulationConfig four = base_config(SchedulerKind::kVllm, 1, 1, 4);
  Simulator sim1(one, trace, reference_factory(one));
  Simulator sim4(four, trace, reference_factory(four));
  const double makespan1 = sim1.run().makespan;
  const double makespan4 = sim4.run().makespan;
  EXPECT_LT(makespan4, makespan1 * 0.45);
  EXPECT_GT(makespan4, makespan1 * 0.15);  // no super-linear magic
}

TEST(Simulator, RoundRobinSpreadsRequests) {
  SimulationConfig config = base_config(SchedulerKind::kVllm, 1, 1, 4);
  config.global_scheduler = GlobalSchedulerKind::kRoundRobin;
  const Trace trace = poisson_trace(40, 2.0);
  Simulator sim(config, trace, reference_factory(config));
  sim.run();
  std::vector<int> counts(4, 0);
  for (const RequestState& r : sim.request_states())
    ++counts[static_cast<std::size_t>(r.replica)];
  for (int c : counts) EXPECT_EQ(c, 10);
}

TEST(Simulator, LeastOutstandingAvoidsBusyReplica) {
  SimulationConfig config = base_config(SchedulerKind::kVllm, 1, 1, 2);
  config.global_scheduler = GlobalSchedulerKind::kLeastOutstanding;
  // One giant request occupies its replica for the whole test; small
  // requests arrive slowly enough to drain between arrivals, so LOR keeps
  // routing them to the idle replica (round-robin would alternate).
  Trace trace;
  trace.push_back(Request{0, 0.0, 2000, 2000});
  for (int i = 1; i < 21; ++i)
    trace.push_back(Request{i, 0.5 * i, 64, 8});
  Simulator sim(config, trace, reference_factory(config));
  sim.run();
  const auto& states = sim.request_states();
  int with_giant = 0;
  for (std::size_t i = 1; i < states.size(); ++i)
    with_giant += states[i].replica == states[0].replica ? 1 : 0;
  EXPECT_LT(with_giant, 3);
}

TEST(Simulator, DeferredGlobalQueueCompletesEverything) {
  SimulationConfig config = base_config(SchedulerKind::kSarathi, 1, 1, 2);
  config.global_scheduler = GlobalSchedulerKind::kDeferred;
  const Trace trace = poisson_trace(50, 3.0);
  Simulator sim(config, trace, reference_factory(config));
  const SimulationMetrics m = sim.run();
  EXPECT_EQ(m.num_completed, 50u);
}

TEST(Simulator, InvalidConfigThrows) {
  SimulationConfig config = base_config();
  config.model = model_by_name("llama2-70b");  // does not fit 1x A100
  EXPECT_THROW(
      Simulator(config, poisson_trace(5, 1.0), reference_factory(config)),
      Error);
}

TEST(Simulator, AsyncPipelineCommNeverSlower) {
  // Overlapping the inter-stage send with the next micro-batch can only
  // remove time from the critical path.
  const Trace trace = generate_trace(
      trace_by_name("chat1m"), ArrivalSpec{ArrivalKind::kStatic, 0, 0}, 48, 3);
  SimulationConfig sync = base_config(SchedulerKind::kSarathi, 1, 2, 1);
  Simulator sim_sync(sync, trace, reference_factory(sync, 21));
  const SimulationMetrics m_sync = sim_sync.run();

  SimulationConfig async = base_config(SchedulerKind::kSarathi, 1, 2, 1);
  async.async_pipeline_comm = true;
  Simulator sim_async(async, trace, reference_factory(async, 21));
  const SimulationMetrics m_async = sim_async.run();

  EXPECT_EQ(m_async.num_completed, 48u);
  // Identical RNG consumption order is not guaranteed, so allow jitter-scale
  // slack rather than strict dominance.
  EXPECT_LT(m_async.makespan, m_sync.makespan * 1.02);
}

TEST(Simulator, AsyncPipelineCommIsNoopWithoutPipeline) {
  const Trace trace = poisson_trace(30, 2.0);
  SimulationConfig sync = base_config(SchedulerKind::kVllm, 1, 1, 1);
  SimulationConfig async = sync;
  async.async_pipeline_comm = true;
  Simulator a(sync, trace, reference_factory(sync, 4));
  Simulator b(async, trace, reference_factory(async, 4));
  EXPECT_DOUBLE_EQ(a.run().makespan, b.run().makespan);
}

TEST(Simulator, OperatorMetricsCollectedWhenEnabled) {
  SimulationConfig config = base_config(SchedulerKind::kSarathi);
  config.collect_operator_metrics = true;
  const Trace trace = poisson_trace(20, 1.0);
  Simulator sim(config, trace, reference_factory(config));
  const SimulationMetrics m = sim.run();
  ASSERT_FALSE(m.operator_stats.empty());
  // Every simulated iteration touches the core GEMMs and decode attention.
  EXPECT_GT(m.operator_stats.count(OpType::kMlpGateUpProj), 0u);
  EXPECT_GT(m.operator_stats.count(OpType::kAttnDecode), 0u);
  Seconds total = 0.0;
  for (const auto& [op, stats] : m.operator_stats) {
    EXPECT_GT(stats.invocations, 0);
    EXPECT_GE(stats.total_seconds, 0.0);
    total += stats.total_seconds;
  }
  EXPECT_GT(total, 0.0);
  EXPECT_FALSE(m.operator_table().empty());
}

TEST(Simulator, OperatorMetricsOffByDefault) {
  const SimulationConfig config = base_config();
  const Trace trace = poisson_trace(10, 1.0);
  Simulator sim(config, trace, reference_factory(config));
  const SimulationMetrics m = sim.run();
  EXPECT_TRUE(m.operator_stats.empty());
  EXPECT_TRUE(m.operator_table().empty());
}

TEST(Simulator, OperatorMetricsDoNotPerturbTimings) {
  // Attribution must be a pure observer: enabling it cannot change the
  // reference executor's RNG stream or any event timestamp.
  const Trace trace = poisson_trace(25, 1.5);
  SimulationConfig off = base_config(SchedulerKind::kVllm);
  SimulationConfig on = off;
  on.collect_operator_metrics = true;
  Simulator a(off, trace, reference_factory(off, 13));
  Simulator b(on, trace, reference_factory(on, 13));
  EXPECT_DOUBLE_EQ(a.run().makespan, b.run().makespan);
}

TEST(Simulator, EnergyMetricsPopulated) {
  const SimulationConfig config = base_config();
  const Trace trace = poisson_trace(30, 1.0);
  Simulator sim(config, trace, reference_factory(config));
  const SimulationMetrics m = sim.run();
  EXPECT_GT(m.total_energy_joules, 0.0);
  EXPECT_GT(m.energy_per_output_token, 0.0);
  // Mean draw must sit between idle and TDP of the (single-GPU) cluster.
  const SkuSpec sku = sku_by_name("a100");
  EXPECT_GE(m.mean_cluster_power_watts, sku.idle_watts - 1e-9);
  EXPECT_LE(m.mean_cluster_power_watts, sku.peak_watts + 1e-9);
}

TEST(Simulator, BusierClusterDrawsMorePower) {
  Trace light, heavy;
  for (int i = 0; i < 8; ++i) light.push_back(Request{i, 2.0 * i, 64, 16});
  for (int i = 0; i < 64; ++i) heavy.push_back(Request{i, 0.0, 1024, 128});
  const SimulationConfig config = base_config(SchedulerKind::kSarathi);
  Simulator sim_light(config, light, reference_factory(config, 2));
  Simulator sim_heavy(config, heavy, reference_factory(config, 2));
  EXPECT_GT(sim_heavy.run().mean_cluster_power_watts,
            sim_light.run().mean_cluster_power_watts);
}

TEST(Simulator, RandomizedConfigurationsSatisfyInvariants) {
  // Property sweep: random deployments (policy, batch knobs, parallelism,
  // memory pressure, async comm, disaggregation) must complete every
  // request and never violate the request-level or cluster-level
  // invariants. This is the failure-injection net for scheduler bugs that
  // only appear under odd knob combinations.
  Rng rng(0xF00D);
  const SchedulerKind kinds[] = {
      SchedulerKind::kFasterTransformer, SchedulerKind::kOrca,
      SchedulerKind::kVllm, SchedulerKind::kSarathi, SchedulerKind::kLightLlm};
  for (int trial = 0; trial < 20; ++trial) {
    SimulationConfig config;
    config.model = model_by_name("llama2-7b");
    config.node.sku = sku_by_name(rng.bernoulli(0.5) ? "a100" : "h100");
    config.parallel =
        ParallelConfig{static_cast<int>(rng.uniform_int(0, 1)) + 1,
                       static_cast<int>(rng.uniform_int(0, 1)) + 1,
                       static_cast<int>(rng.uniform_int(1, 2))};
    config.scheduler.kind = kinds[rng.uniform_int(0, 4)];
    config.scheduler.max_batch_size = 1 << rng.uniform_int(2, 6);  // 4..64
    config.scheduler.chunk_size = 1 << rng.uniform_int(7, 11);     // 128..2048
    config.memory_utilization = rng.uniform(0.3, 0.9);
    config.async_pipeline_comm = rng.bernoulli(0.5);
    // Disaggregation composes with 2-replica layouts only (needs both roles).
    if (config.parallel.num_replicas == 2 && rng.bernoulli(0.4))
      config.disagg.num_prefill_replicas = 1;

    const Trace trace =
        poisson_trace(30, 1.5, /*seed=*/100 + static_cast<std::uint64_t>(trial));
    Simulator sim(config, trace,
                  reference_factory(config, 7 + static_cast<std::uint64_t>(trial)));
    const SimulationMetrics m = sim.run();

    SCOPED_TRACE("trial " + std::to_string(trial) + ": " +
                 scheduler_name(config.scheduler.kind) + " tp" +
                 std::to_string(config.parallel.tensor_parallel) + " pp" +
                 std::to_string(config.parallel.pipeline_parallel) + " x" +
                 std::to_string(config.parallel.num_replicas) +
                 (config.disagg.enabled() ? " disagg" : ""));
    EXPECT_EQ(m.num_completed, 30u);
    EXPECT_GT(m.mfu, 0.0);
    EXPECT_LT(m.mfu, 1.0);
    EXPECT_LE(m.busy_fraction,
              config.parallel.pipeline_parallel + 1e-9);
    const SkuSpec& sku = config.node.sku;
    EXPECT_GE(m.mean_cluster_power_watts,
              sku.idle_watts * config.parallel.total_gpus() - 1e-9);
    EXPECT_LE(m.mean_cluster_power_watts,
              sku.peak_watts * config.parallel.total_gpus() + 1e-9);
    for (const RequestState& r : sim.request_states()) {
      EXPECT_TRUE(r.finished());
      EXPECT_GE(r.record.scheduling_delay(), 0.0);
      EXPECT_LE(r.record.ttft(), r.record.e2e_latency() + 1e-12);
      EXPECT_EQ(static_cast<TokenCount>(r.record.token_times.size()),
                r.request.decode_tokens);
      for (std::size_t i = 1; i < r.record.token_times.size(); ++i)
        EXPECT_GE(r.record.token_times[i], r.record.token_times[i - 1]);
    }
  }
}

TEST(Simulator, RestartsSurfaceInMetrics) {
  // A tight KV pool with vLLM forces preempt-restarts; metrics must count
  // them. Use a memory_utilization that leaves few blocks.
  SimulationConfig config = base_config(SchedulerKind::kVllm);
  config.memory_utilization = 0.25;  // ~4.5 GB of KV after weights+workspace
  const Trace trace = generate_trace(
      trace_by_name("bwb4k"), ArrivalSpec{ArrivalKind::kStatic, 0, 0}, 24, 9);
  Simulator sim(config, trace, reference_factory(config));
  const SimulationMetrics m = sim.run();
  EXPECT_EQ(m.num_completed, 24u);
  EXPECT_GT(m.num_restarts, 0);
}

}  // namespace
}  // namespace vidur
