// Tests for the prefix-cache subsystem (src/kvcache/ and its wiring):
// hand-computed hit/miss/evict accounting on the cache itself, pinned LRU
// eviction order, end-to-end prefill-tokens-saved conservation against a
// cold run, cache-aware routing, same-seed bit-identical replay, spec
// round-trips with did-you-mean, and session-structured scenario traces.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "api/run.h"
#include "common/check.h"
#include "kvcache/prefix_cache.h"
#include "obs/trace.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"
#include "scheduler/memory.h"

namespace vidur {
namespace {

// ------------------------------------------------- hand-computed fixture

/// A turn of a multi-turn conversation.
Request session_turn(RequestId id, std::int64_t session, int turn,
                     TokenCount prefill, TokenCount decode = 8) {
  Request r;
  r.id = id;
  r.session = session;
  r.turn = turn;
  r.prefill_tokens = prefill;
  r.decode_tokens = decode;
  return r;
}

/// A single-shot request carrying a shared system prompt.
Request shared_prefix_request(RequestId id, std::int64_t group,
                              TokenCount shared, TokenCount prefill) {
  Request r;
  r.id = id;
  r.prefix_group = group;
  r.shared_prefix_tokens = shared;
  r.prefill_tokens = prefill;
  r.decode_tokens = 8;
  return r;
}

TEST(PrefixCache, ExactHitMissAccountingAcrossTurns) {
  BlockManager bm(64, 16);
  PrefixCache cache(16, 16);

  // Turn 0: nothing resident -> miss.
  const Request r0 = session_turn(0, /*session=*/7, /*turn=*/0,
                                  /*prefill=*/64, /*decode=*/8);
  EXPECT_EQ(cache.probe(r0), 0);
  EXPECT_EQ(cache.attach(r0), 0);
  EXPECT_EQ(cache.stats().lookups, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);

  // Completion: the request's 72 KV tokens donate 4 whole blocks (64 of
  // 72 tokens); the fractional fifth block is not shareable.
  ASSERT_TRUE(bm.grow_to(0, 72));
  EXPECT_EQ(cache.retain(r0, /*kv_end=*/72, /*kv_cached=*/0, bm), 4);
  cache.unpin(0);
  bm.release(0);
  EXPECT_EQ(cache.resident_blocks(), 4);
  EXPECT_EQ(cache.resident_sessions(), 1);
  EXPECT_EQ(bm.cached_blocks(), 4);
  EXPECT_EQ(bm.used_blocks(), 4);  // retained KV still occupies the pool

  // Turn 1 replays the conversation: all 4 donated blocks match. The
  // match never covers the whole prompt (at least one token stays cold).
  const Request r1 = session_turn(1, 7, 1, /*prefill=*/88);
  EXPECT_EQ(cache.probe(r1), 64);
  EXPECT_EQ(cache.attach(r1), 64);
  EXPECT_EQ(cache.stats().lookups, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().tokens_saved, 64);
  EXPECT_EQ(cache.stats().hits + cache.stats().misses,
            cache.stats().lookups);

  // While pinned nothing is evictable; after unpin only the chain's leaf
  // is (interior blocks stay until their children go).
  EXPECT_EQ(cache.evictable_blocks(), 0);
  cache.unpin(1);
  EXPECT_EQ(cache.evictable_blocks(), 1);

  // A different session shares nothing.
  const Request other = session_turn(2, 8, 1, 88);
  EXPECT_EQ(cache.probe(other), 0);

  // The single-tenant slice carries the same exact numbers.
  ASSERT_EQ(cache.tenant_stats().size(), 1u);
  const PrefixCacheStats& t = cache.tenant_stats().at(0);
  EXPECT_EQ(t.lookups, 2u);
  EXPECT_EQ(t.hits, 1u);
  EXPECT_EQ(t.misses, 1u);
  EXPECT_EQ(t.tokens_saved, 64);
}

TEST(PrefixCache, SharedPrefixMatchesAcrossSessionsAndGroups) {
  BlockManager bm(64, 16);
  PrefixCache cache(16, 16);

  // Session 0 donates its whole context: 3 shared-prefix blocks (48
  // tokens of group 5) then 2 session-private blocks.
  Request r0 = session_turn(0, 0, 0, /*prefill=*/80);
  r0.shared_prefix_tokens = 48;
  r0.prefix_group = 5;
  ASSERT_TRUE(bm.grow_to(0, 80));
  EXPECT_EQ(cache.retain(r0, /*kv_end=*/80, /*kv_cached=*/0, bm), 5);
  bm.release(0);

  // A different session of the same group reuses exactly the shared part.
  Request r1 = session_turn(1, 1, 0, /*prefill=*/64);
  r1.shared_prefix_tokens = 48;
  r1.prefix_group = 5;
  EXPECT_EQ(cache.probe(r1), 48);

  // So does a sessionless request of the group (system-prompt-only reuse).
  EXPECT_EQ(cache.probe(shared_prefix_request(2, 5, 48, 64)), 48);
  // A different prompt group shares nothing.
  EXPECT_EQ(cache.probe(shared_prefix_request(3, 6, 48, 64)), 0);
  // Plain sessionless requests have no shareable identity at all.
  Request plain;
  plain.id = 4;
  plain.prefill_tokens = 64;
  EXPECT_EQ(cache.probe(plain), 0);
}

TEST(PrefixCache, LruEvictionOrderIsDeterministicLeafFirst) {
  BlockManager bm(64, 16);
  PrefixCache cache(/*capacity_blocks=*/4, 16);

  // Three 2-block sessions into a 4-block pool. Insertion makes each
  // chain's leaf the evictable candidate; eviction is strictly
  // oldest-leaf-first, and an evicted leaf's parent re-enters the LRU at
  // the back (it only just became a leaf).
  for (std::int64_t s = 1; s <= 3; ++s) {
    const Request r = session_turn(/*id=*/s, /*session=*/s, 0,
                                   /*prefill=*/33);
    ASSERT_TRUE(bm.grow_to(r.id, 33));
    EXPECT_EQ(cache.retain(r, /*kv_end=*/32, /*kv_cached=*/0, bm), 2);
    bm.release(r.id);
  }
  // Session 3's retain evicted session 1's leaf first, then session 2's.
  EXPECT_EQ(cache.stats().inserted_blocks, 6u);
  EXPECT_EQ(cache.stats().evicted_blocks, 2u);
  EXPECT_EQ(cache.resident_blocks(), 4);
  EXPECT_EQ(cache.resident_sessions(), 3);
  EXPECT_EQ(bm.cached_blocks(), 4);

  const auto resident_tokens = [&](std::int64_t session) {
    return cache.probe(session_turn(99, session, 1, 33));
  };
  EXPECT_EQ(resident_tokens(1), 16);  // trimmed to its first block
  EXPECT_EQ(resident_tokens(2), 16);
  EXPECT_EQ(resident_tokens(3), 32);  // the newest chain is whole

  // Reclaim drains everything, leaf before parent, and the BlockManager's
  // cached pool returns to zero.
  EXPECT_EQ(cache.reclaim(10, bm), 4);
  EXPECT_EQ(cache.stats().evicted_blocks, 6u);
  EXPECT_EQ(cache.resident_blocks(), 0);
  EXPECT_EQ(cache.resident_sessions(), 0);
  EXPECT_EQ(bm.cached_blocks(), 0);
  EXPECT_EQ(bm.used_blocks(), 0);
}

TEST(PrefixCache, PinnedBlocksSurviveReclaim) {
  BlockManager bm(64, 16);
  PrefixCache cache(16, 16);
  const Request r0 = session_turn(0, 7, 0, 64);
  ASSERT_TRUE(bm.grow_to(0, 64));
  cache.retain(r0, 64, 0, bm);
  bm.release(0);

  const Request r1 = session_turn(1, 7, 1, 80);
  EXPECT_EQ(cache.attach(r1), 64);  // pins all 4 blocks
  EXPECT_EQ(cache.reclaim(10, bm), 0);
  EXPECT_EQ(cache.resident_blocks(), 4);
  cache.unpin(1);
  EXPECT_EQ(cache.reclaim(10, bm), 4);
}

TEST(PrefixCache, RetainSkipsAlreadyResidentBlocks) {
  BlockManager bm(64, 16);
  PrefixCache cache(16, 16);
  const Request a = shared_prefix_request(0, 5, 64, 80);
  ASSERT_TRUE(bm.grow_to(0, 80));
  EXPECT_EQ(cache.retain(a, 80, 0, bm), 4);  // the 4 shared blocks
  bm.release(0);

  // A second request of the same group re-donates the same prefix: no
  // new blocks, no double-counted insertions, its own KV fully released.
  const Request b = shared_prefix_request(1, 5, 64, 80);
  ASSERT_TRUE(bm.grow_to(1, 80));
  EXPECT_EQ(cache.retain(b, 80, 0, bm), 0);
  bm.release(1);
  EXPECT_EQ(cache.stats().inserted_blocks, 4u);
  EXPECT_EQ(cache.resident_blocks(), 4);
  EXPECT_EQ(bm.used_blocks(), 4);
}

// ----------------------------------------------- end-to-end conservation

VidurSession& shared_session() {
  static VidurSession session(model_by_name("llama2-7b"));
  return session;
}

DeploymentConfig cached_config(int replicas, bool cache_on) {
  DeploymentConfig config;
  config.sku_name = "a100";
  config.parallel = ParallelConfig{1, 1, replicas};
  config.scheduler.kind = SchedulerKind::kSarathi;
  config.scheduler.max_batch_size = 64;
  config.prefix_cache.enabled = cache_on;
  return config;
}

Trace session_trace(int n, std::uint64_t seed) {
  Scenario s = scenario_by_name("session-chat");
  s.num_requests = n;
  return generate_scenario_trace(s, seed);
}

TEST(PrefixCacheSim, TokensSavedMatchesColdRunExactly) {
  VidurSession& session = shared_session();
  const Trace trace = session_trace(60, 11);
  const std::vector<TenantInfo> tenants =
      scenario_by_name("session-chat").tenant_infos();

  TraceRecorder cold_rec, cached_rec;
  SimObs obs;
  obs.trace = &cold_rec;
  const SimulationMetrics cold =
      session.simulate(cached_config(1, false), trace, tenants, obs);
  obs.trace = &cached_rec;
  const SimulationMetrics cached =
      session.simulate(cached_config(1, true), trace, tenants, obs);

  ASSERT_EQ(cold.num_completed, trace.size());
  ASSERT_EQ(cached.num_completed, trace.size());
  EXPECT_FALSE(cold.prefix_cache.enabled);
  EXPECT_EQ(cold.prefix_cache.lookups, 0);
  ASSERT_TRUE(cached.prefix_cache.enabled);

  // Exact accounting: one lookup per request, hits + misses == lookups,
  // and the trace's per-lookup records reproduce the aggregate numbers.
  EXPECT_EQ(cached.prefix_cache.lookups,
            static_cast<std::int64_t>(trace.size()));
  EXPECT_EQ(cached.prefix_cache.hits + cached.prefix_cache.misses,
            cached.prefix_cache.lookups);
  EXPECT_GT(cached.prefix_cache.hits, 0);
  EXPECT_GT(cached.prefix_cache.tokens_saved, 0);
  std::int64_t rec_lookups = 0, rec_hits = 0;
  TokenCount rec_saved = 0;
  for (const TraceRecord& r : cached_rec.records()) {
    if (r.kind != TraceEventKind::kCacheLookup) continue;
    ++rec_lookups;
    if (r.detail == 1) {
      ++rec_hits;
      rec_saved += r.a;
    } else {
      EXPECT_EQ(r.a, 0);
    }
  }
  EXPECT_EQ(rec_lookups, cached.prefix_cache.lookups);
  EXPECT_EQ(rec_hits, cached.prefix_cache.hits);
  EXPECT_EQ(rec_saved, cached.prefix_cache.tokens_saved);

  // Conservation against the cold run: with no preemptions in either run
  // (asserted), the only difference in processed tokens is the prefill
  // work served from cache — the batch streams' q_token totals must
  // differ by exactly tokens_saved.
  const auto batch_tokens = [](const TraceRecorder& rec, bool* preempted) {
    std::int64_t total = 0;
    for (const TraceRecord& r : rec.records()) {
      if (r.kind == TraceEventKind::kBatchStart) total += r.b;
      if (r.kind == TraceEventKind::kPreempted) *preempted = true;
    }
    return total;
  };
  bool cold_preempted = false, cached_preempted = false;
  const std::int64_t cold_tokens = batch_tokens(cold_rec, &cold_preempted);
  const std::int64_t cached_tokens =
      batch_tokens(cached_rec, &cached_preempted);
  ASSERT_FALSE(cold_preempted);
  ASSERT_FALSE(cached_preempted);
  EXPECT_EQ(cold_tokens - cached_tokens, cached.prefix_cache.tokens_saved);

  // Reuse is strictly a speedup here: serving the same trace with fewer
  // prefill tokens cannot lengthen the run.
  EXPECT_LE(cached.makespan, cold.makespan + 1e-9);

  // Per-tenant slices sum to the totals (single tenant: equal).
  ASSERT_EQ(cached.prefix_cache.by_tenant.size(), 1u);
  EXPECT_EQ(cached.prefix_cache.by_tenant[0].name, "chat");
  EXPECT_EQ(cached.prefix_cache.by_tenant[0].tokens_saved,
            cached.prefix_cache.tokens_saved);
}

TEST(PrefixCacheSim, CacheAwareRoutingBeatsRoundRobinOnSessions) {
  VidurSession& session = shared_session();
  const Trace trace = session_trace(80, 5);
  const std::vector<TenantInfo> tenants =
      scenario_by_name("session-chat").tenant_infos();

  DeploymentConfig rr = cached_config(2, true);
  rr.global_scheduler = GlobalSchedulerKind::kRoundRobin;
  DeploymentConfig aware = cached_config(2, true);
  aware.global_scheduler = GlobalSchedulerKind::kCacheAware;

  const SimulationMetrics m_rr = session.simulate(rr, trace, tenants);
  const SimulationMetrics m_aware = session.simulate(aware, trace, tenants);

  // Round-robin scatters a session's turns across replicas, where only
  // the tenant-wide shared system prompt is resident; affinity routing
  // sends a turn to the replica holding the whole conversation. The
  // difference shows up in how many tokens each hit serves.
  EXPECT_GT(m_aware.prefix_cache.hits, 0);
  EXPECT_GE(m_aware.prefix_cache.hit_rate(), m_rr.prefix_cache.hit_rate());
  EXPECT_GT(m_aware.prefix_cache.tokens_saved,
            m_rr.prefix_cache.tokens_saved);
}

TEST(PrefixCacheSim, SameSeedReplayIsBitIdenticalWithEverythingOn) {
  // The paranoid determinism case: cache-aware routing + autoscaling +
  // prefix cache + tracing, twice, must agree record for record.
  VidurSession& session = shared_session();
  DeploymentConfig config = cached_config(4, true);
  config.global_scheduler = GlobalSchedulerKind::kCacheAware;
  config.autoscale.kind = AutoscalerKind::kReactive;
  config.autoscale.min_replicas = 1;
  config.autoscale.initial_replicas = 1;
  config.autoscale.decision_interval = 2.0;
  config.autoscale.provision_delay = 1.0;
  config.autoscale.warmup_delay = 0.5;
  config.autoscale.scale_down_cooldown = 10.0;
  const Trace trace = session_trace(80, 23);

  TraceRecorder first, second;
  SimObs obs;
  obs.trace = &first;
  const SimulationMetrics m1 = session.simulate(config, trace, {}, obs);
  obs.trace = &second;
  const SimulationMetrics m2 = session.simulate(config, trace, {}, obs);

  ASSERT_GT(first.records().size(), 0u);
  ASSERT_EQ(first.records().size(), second.records().size());
  for (std::size_t i = 0; i < first.records().size(); ++i)
    ASSERT_EQ(first.records()[i], second.records()[i]) << "record " << i;
  EXPECT_EQ(m1.prefix_cache.hits, m2.prefix_cache.hits);
  EXPECT_EQ(m1.prefix_cache.tokens_saved, m2.prefix_cache.tokens_saved);
  EXPECT_GT(m1.prefix_cache.hits, 0);

  bool saw_lookup = false, saw_scale = false;
  for (const TraceRecord& r : first.records()) {
    saw_lookup |= r.kind == TraceEventKind::kCacheLookup;
    saw_scale |= r.kind == TraceEventKind::kScaleDecision;
  }
  EXPECT_TRUE(saw_lookup);
  EXPECT_TRUE(saw_scale);
}

// --------------------------------------------------- spec & scenario API

TEST(PrefixCacheSpec, RoundTripsAndDefaultsAreOmitted) {
  ExperimentSpec spec;
  spec.with_scenario("session-chat")
      .with_routing(GlobalSchedulerKind::kCacheAware)
      .with_prefix_cache(0.4);
  const ExperimentSpec reparsed = ExperimentSpec::from_json(spec.to_json());
  EXPECT_EQ(reparsed, spec);
  EXPECT_TRUE(reparsed.deployment.prefix_cache.enabled);
  EXPECT_DOUBLE_EQ(reparsed.deployment.prefix_cache.capacity_fraction, 0.4);
  EXPECT_NO_THROW(spec.validate());

  // A default spec keeps the section out of the canonical serialization.
  EXPECT_EQ(ExperimentSpec{}.to_json_string().find("prefix_cache"),
            std::string::npos);
}

TEST(PrefixCacheSpec, TypoedKeyGetsDidYouMean) {
  const std::string json = R"({
    "name": "x", "model": "llama2-7b",
    "deployment": {"prefix_cach": {"enabled": true}},
    "workload": {"scenario": "session-chat"}
  })";
  try {
    ExperimentSpec::from_json_string(json);
    FAIL() << "expected a did-you-mean error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'prefix_cache'"),
              std::string::npos)
        << e.what();
  }
}

TEST(PrefixCacheSpec, CacheAwareRoutingRequiresTheCache) {
  ExperimentSpec spec;
  spec.with_scenario("session-chat")
      .with_routing(GlobalSchedulerKind::kCacheAware);
  try {
    spec.validate();
    FAIL() << "expected validate() to reject cache_aware without the cache";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("prefix_cache"), std::string::npos)
        << e.what();
  }
  spec.with_prefix_cache();
  EXPECT_NO_THROW(spec.validate());
}

TEST(PrefixCacheSpec, InvalidCapacityFractionIsRejected) {
  ExperimentSpec spec;
  spec.with_scenario("session-chat").with_prefix_cache(0.0);
  EXPECT_THROW(spec.validate(), Error);
  spec.with_prefix_cache(1.5);
  EXPECT_THROW(spec.validate(), Error);
  spec.with_prefix_cache(1.0);
  EXPECT_NO_THROW(spec.validate());
}

TEST(SessionScenarios, BuiltinsAreRegistered) {
  const std::vector<std::string>& names = builtin_scenario_names();
  const auto has = [&](const char* n) {
    return std::find(names.begin(), names.end(), n) != names.end();
  };
  EXPECT_TRUE(has("session-chat"));
  EXPECT_TRUE(has("shared-prefix-mix"));
  // The one-liner `vidur list` prints advertises the session structure.
  const std::string line = scenario_by_name("session-chat").to_string();
  EXPECT_NE(line.find("sessions"), std::string::npos) << line;
  EXPECT_NE(line.find("shared-prefix 512"), std::string::npos) << line;
}

TEST(SessionScenarios, TraceIsSessionStructuredAndDeterministic) {
  Scenario s = scenario_by_name("session-chat");
  s.num_requests = 120;
  const Trace trace = generate_scenario_trace(s, 3);
  ASSERT_EQ(trace.size(), 120u);

  // Ids are dense and arrivals sorted after the session expansion.
  std::map<std::int64_t, const Request*> last_turn;
  int multi_turn = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Request& r = trace[i];
    EXPECT_EQ(r.id, static_cast<RequestId>(i));
    if (i > 0) EXPECT_GE(r.arrival_time, trace[i - 1].arrival_time);
    ASSERT_GE(r.session, 0);  // every request of this scenario is tagged
    EXPECT_EQ(r.shared_prefix_tokens, 512);
    EXPECT_GT(r.prefill_tokens, 512);  // system prompt + non-empty input
    EXPECT_LE(r.prefill_tokens, 8192);
    const auto prev = last_turn.find(r.session);
    if (prev != last_turn.end()) {
      ++multi_turn;
      // Turns of one session: later turn, later arrival, grown context.
      EXPECT_EQ(r.turn, prev->second->turn + 1);
      EXPECT_GE(r.arrival_time, prev->second->arrival_time);
      // Strictly grown context unless both turns sit at the window cap.
      if (r.prefill_tokens < 8192)
        EXPECT_GT(r.prefill_tokens, prev->second->prefill_tokens);
      EXPECT_EQ(r.prefix_group, prev->second->prefix_group);
    } else {
      EXPECT_EQ(r.turn, 0);
    }
    last_turn[r.session] = &r;
  }
  EXPECT_GT(multi_turn, 0);  // max_turns = 6 must yield follow-ups

  const Trace replay = generate_scenario_trace(s, 3);
  ASSERT_EQ(replay.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(replay[i].id, trace[i].id);
    EXPECT_EQ(replay[i].session, trace[i].session);
    EXPECT_EQ(replay[i].turn, trace[i].turn);
    EXPECT_EQ(replay[i].prefill_tokens, trace[i].prefill_tokens);
    EXPECT_DOUBLE_EQ(replay[i].arrival_time, trace[i].arrival_time);
  }
}

TEST(SessionScenarios, SessionSpecValidationCatchesDegenerateValues) {
  Scenario s = scenario_by_name("session-chat");
  s.tenants[0].session.max_turns = 0;
  EXPECT_THROW(s.validate(), Error);
  s = scenario_by_name("session-chat");
  s.tenants[0].session.mean_think_time_s = -1.0;
  EXPECT_THROW(s.validate(), Error);
  s = scenario_by_name("session-chat");
  s.tenants[0].session.max_context_tokens =
      s.tenants[0].session.shared_prefix_tokens;
  EXPECT_THROW(s.validate(), Error);
}

}  // namespace
}  // namespace vidur
