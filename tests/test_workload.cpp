// Tests for src/workload: trace generators (Table 1 statistics), arrival
// processes, and determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/stats.h"
#include "workload/trace_generator.h"

namespace vidur {
namespace {

TEST(TraceRegistry, KnowsAllThreeWorkloads) {
  EXPECT_EQ(builtin_trace_names().size(), 3u);
  for (const auto& name : builtin_trace_names())
    EXPECT_EQ(trace_by_name(name).name, name);
}

TEST(TraceRegistry, UnknownTraceThrows) {
  EXPECT_THROW(trace_by_name("sharegpt"), Error);
  EXPECT_THROW(published_trace_stats("sharegpt"), Error);
}

class TraceStatsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TraceStatsTest, MatchesPublishedTable1Within15Percent) {
  const Trace trace =
      generate_trace(trace_by_name(GetParam()),
                     ArrivalSpec{ArrivalKind::kStatic, 0, 0}, 20000, 7);
  const TraceStats ours = compute_trace_stats(trace);
  const TraceStats paper = published_trace_stats(GetParam());
  EXPECT_NEAR(ours.prefill_mean / paper.prefill_mean, 1.0, 0.15);
  EXPECT_NEAR(ours.prefill_median / paper.prefill_median, 1.0, 0.15);
  EXPECT_NEAR(ours.decode_median / paper.decode_median, 1.0, 0.15);
  EXPECT_NEAR(ours.prefill_p90 / paper.prefill_p90, 1.0, 0.15);
}

TEST_P(TraceStatsTest, RespectsTokenCapAndMinimums) {
  const TraceSpec spec = trace_by_name(GetParam());
  const Trace trace = generate_trace(
      spec, ArrivalSpec{ArrivalKind::kStatic, 0, 0}, 5000, 11);
  for (const Request& r : trace) {
    EXPECT_LE(r.total_tokens(), spec.max_total_tokens);
    EXPECT_GE(r.prefill_tokens, spec.min_prefill_tokens);
    EXPECT_GE(r.decode_tokens, spec.min_decode_tokens);
  }
}

INSTANTIATE_TEST_SUITE_P(Traces, TraceStatsTest,
                         ::testing::Values("chat1m", "arxiv4k", "bwb4k"));

TEST(TraceStats, BwbDecodeDominatesPrefill) {
  // BWB: P:D ratio 0.65 — decode-heavy (the paper's high-KV-load workload).
  const Trace trace =
      generate_trace(trace_by_name("bwb4k"),
                     ArrivalSpec{ArrivalKind::kStatic, 0, 0}, 5000, 3);
  const TraceStats s = compute_trace_stats(trace);
  EXPECT_LT(s.pd_ratio_median, 1.0);
  EXPECT_GT(s.decode_mean, s.prefill_mean);
}

TEST(TraceStats, BwbRatioTightDueToCorrelation) {
  const Trace trace =
      generate_trace(trace_by_name("bwb4k"),
                     ArrivalSpec{ArrivalKind::kStatic, 0, 0}, 5000, 3);
  const TraceStats s = compute_trace_stats(trace);
  EXPECT_LT(s.pd_ratio_stddev, 1.0);  // paper: 0.37
}

TEST(TraceStats, ArxivIsPrefillHeavy) {
  const Trace trace =
      generate_trace(trace_by_name("arxiv4k"),
                     ArrivalSpec{ArrivalKind::kStatic, 0, 0}, 5000, 3);
  EXPECT_GT(compute_trace_stats(trace).pd_ratio_median, 8.0);
}

TEST(TraceStats, EmptyTraceThrows) {
  EXPECT_THROW(compute_trace_stats({}), Error);
}

// ---------------------------------------------------------------- arrivals

TEST(Arrivals, StaticAllAtZero) {
  const Trace trace =
      generate_trace(trace_by_name("chat1m"),
                     ArrivalSpec{ArrivalKind::kStatic, 0, 0}, 100, 5);
  for (const Request& r : trace) EXPECT_EQ(r.arrival_time, 0.0);
}

TEST(Arrivals, PoissonMeanRateMatches) {
  const double qps = 4.0;
  const Trace trace =
      generate_trace(trace_by_name("chat1m"),
                     ArrivalSpec{ArrivalKind::kPoisson, qps, 0}, 20000, 5);
  const double span = trace.back().arrival_time;
  EXPECT_NEAR(20000.0 / span, qps, qps * 0.05);
  // Arrival times are sorted.
  for (std::size_t i = 1; i < trace.size(); ++i)
    EXPECT_GE(trace[i].arrival_time, trace[i - 1].arrival_time);
}

TEST(Arrivals, GammaBurstierThanPoisson) {
  auto interarrival_cv = [](const Trace& t) {
    SampleSeries gaps;
    for (std::size_t i = 1; i < t.size(); ++i)
      gaps.add(t[i].arrival_time - t[i - 1].arrival_time);
    return gaps.stddev() / gaps.mean();
  };
  const Trace poisson =
      generate_trace(trace_by_name("chat1m"),
                     ArrivalSpec{ArrivalKind::kPoisson, 2.0, 0}, 20000, 5);
  const Trace bursty = generate_trace(
      trace_by_name("chat1m"),
      ArrivalSpec{ArrivalKind::kGamma, 2.0, /*cv=*/3.0}, 20000, 5);
  EXPECT_NEAR(interarrival_cv(poisson), 1.0, 0.05);
  EXPECT_NEAR(interarrival_cv(bursty), 3.0, 0.3);
}

TEST(Arrivals, InvalidSpecsThrow) {
  EXPECT_THROW(generate_trace(trace_by_name("chat1m"),
                              ArrivalSpec{ArrivalKind::kPoisson, 0.0, 0}, 10,
                              1),
               Error);
  EXPECT_THROW(generate_trace(trace_by_name("chat1m"),
                              ArrivalSpec{ArrivalKind::kGamma, 1.0, 0.0}, 10,
                              1),
               Error);
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(generate_trace(trace_by_name("chat1m"),
                              ArrivalSpec{ArrivalKind::kPoisson, -2.0, 0}, 10,
                              1),
               Error);
  EXPECT_THROW(generate_trace(trace_by_name("chat1m"),
                              ArrivalSpec{ArrivalKind::kPoisson, nan, 0}, 10,
                              1),
               Error);
  EXPECT_THROW(generate_trace(trace_by_name("chat1m"),
                              ArrivalSpec{ArrivalKind::kGamma, inf, 2.0}, 10,
                              1),
               Error);
  EXPECT_THROW(generate_trace(trace_by_name("chat1m"),
                              ArrivalSpec{ArrivalKind::kGamma, 1.0, -1.0}, 10,
                              1),
               Error);
  EXPECT_THROW(generate_trace(trace_by_name("chat1m"),
                              ArrivalSpec{ArrivalKind::kGamma, 1.0, nan}, 10,
                              1),
               Error);
  // Static arrivals ignore qps/cv entirely.
  EXPECT_NO_THROW(generate_trace(trace_by_name("chat1m"),
                                 ArrivalSpec{ArrivalKind::kStatic, -1.0, 0},
                                 10, 1));
}

TEST(TraceSpecValidation, RejectsDegenerateSpecs) {
  // Minimum lengths that cannot fit under the cap fail fast, before any
  // sampling loop runs.
  TraceSpec spec = trace_by_name("chat1m");
  spec.min_prefill_tokens = 3000;
  spec.min_decode_tokens = 2000;
  EXPECT_THROW(spec.validate(), Error);
  EXPECT_THROW(generate_trace(spec, ArrivalSpec{ArrivalKind::kStatic, 0, 0},
                              10, 1),
               Error);

  spec = trace_by_name("chat1m");
  spec.prefill_log_sigma = -0.5;
  EXPECT_THROW(spec.validate(), Error);

  spec = trace_by_name("chat1m");
  spec.decode_log_sigma = std::nan("");
  EXPECT_THROW(spec.validate(), Error);

  spec = trace_by_name("chat1m");
  spec.prefill_log_mu = std::numeric_limits<double>::infinity();
  EXPECT_THROW(spec.validate(), Error);

  spec = trace_by_name("chat1m");
  spec.length_correlation = 1.5;
  EXPECT_THROW(spec.validate(), Error);

  spec = trace_by_name("chat1m");
  spec.min_decode_tokens = 0;
  EXPECT_THROW(spec.validate(), Error);

  EXPECT_NO_THROW(trace_by_name("chat1m").validate());
  EXPECT_NO_THROW(trace_by_name("arxiv4k").validate());
  EXPECT_NO_THROW(trace_by_name("bwb4k").validate());
}

// ------------------------------------------------------------- determinism

TEST(Determinism, SameSeedSameTrace) {
  const ArrivalSpec arrivals{ArrivalKind::kPoisson, 2.0, 0};
  const Trace a = generate_trace(trace_by_name("bwb4k"), arrivals, 500, 99);
  const Trace b = generate_trace(trace_by_name("bwb4k"), arrivals, 500, 99);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].prefill_tokens, b[i].prefill_tokens);
    EXPECT_EQ(a[i].decode_tokens, b[i].decode_tokens);
    EXPECT_DOUBLE_EQ(a[i].arrival_time, b[i].arrival_time);
  }
}

TEST(Determinism, DifferentSeedsDiffer) {
  const ArrivalSpec arrivals{ArrivalKind::kStatic, 0, 0};
  const Trace a = generate_trace(trace_by_name("chat1m"), arrivals, 200, 1);
  const Trace b = generate_trace(trace_by_name("chat1m"), arrivals, 200, 2);
  int differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    differing += a[i].prefill_tokens != b[i].prefill_tokens ? 1 : 0;
  EXPECT_GT(differing, 150);
}

TEST(Generate, RequestIdsSequential) {
  const Trace trace =
      generate_trace(trace_by_name("chat1m"),
                     ArrivalSpec{ArrivalKind::kStatic, 0, 0}, 50, 1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(trace[static_cast<size_t>(i)].id, i);
}

TEST(SampleRequest, ImpossibleCapThrows) {
  TraceSpec impossible = trace_by_name("chat1m");
  impossible.min_prefill_tokens = 3000;
  impossible.min_decode_tokens = 3000;
  impossible.max_total_tokens = 4096;  // 3000 + 3000 > 4096, always rejected
  Rng rng(1);
  EXPECT_THROW(sample_request(impossible, rng), Error);
}

}  // namespace
}  // namespace vidur
