// Tests for the trace analytics engine (src/obs/analysis.*): the
// hand-computed preemption + migration waterfall fixture, the conservation
// property over seeded end-to-end runs (fixed, autoscaled and
// disaggregated fleets), determinism of the JSON rendering, and the
// report/options JSON round-trips behind `vidur analyze`.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/replica_state.h"
#include "common/check.h"
#include "obs/analysis.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "workload/trace_generator.h"

namespace vidur {
namespace {

TraceRecord rec(TraceEventKind kind, Seconds time, std::int32_t replica,
                std::int64_t id, std::int64_t a = 0, std::int64_t b = 0,
                std::uint8_t detail = 0) {
  TraceRecord r;
  r.kind = kind;
  r.detail = detail;
  r.replica = replica;
  r.id = id;
  r.a = a;
  r.b = b;
  r.time = time;
  return r;
}

constexpr auto P = [](LatencyPhase p) { return static_cast<std::size_t>(p); };

/// One request (id 7, tenant 2) that queues, prefills, is preempted and
/// restarted, migrates to a decode replica, queues again and decodes.
/// Every segment boundary is a dyadic rational, so all phase durations are
/// exact in floating point and the pins below use EXPECT_DOUBLE_EQ.
///
///   0.0  arrival
///   0.5  routed to replica 0 (queue-entry timestamp)
///   1.0  first scheduled          -> sched 0.5, queue 0.5
///   2.0  preempted                -> prefill 1.0
///   3.0  resumed (restart)        -> stall 1.0
///   4.5  prefill done (TTFT 4.5)  -> prefill 1.5
///   5.0  KV hand-off starts       -> decode 0.5
///   5.25 lands on replica 1       -> migration 0.25
///   5.75 scheduled on replica 1   -> queue 0.5 (decode-side wait)
///   8.0  completed                -> decode 2.25
std::vector<TraceRecord> fixture_records() {
  return {
      rec(TraceEventKind::kArrival, 0.0, -1, 7, 100, 10, /*tenant 2*/ 3),
      rec(TraceEventKind::kRouted, 0.5, 0, 7),
      rec(TraceEventKind::kBatchStart, 1.0, 0, 0, 1, 100),
      rec(TraceEventKind::kScheduled, 1.0, 0, 7, /*queue-entry ns*/ 500000000),
      rec(TraceEventKind::kPreempted, 2.0, 0, 7),
      rec(TraceEventKind::kBatchEnd, 2.0, 0, 0, 1),
      rec(TraceEventKind::kBatchStart, 3.0, 0, 1, 1, 100),
      rec(TraceEventKind::kScheduled, 3.0, 0, 7, -1, 0, /*resume*/ 1),
      rec(TraceEventKind::kPrefillDone, 4.5, 0, 7, 1),
      rec(TraceEventKind::kBatchEnd, 4.5, 0, 1, 1),
      rec(TraceEventKind::kMigrateStart, 5.0, 0, 7, 100),
      rec(TraceEventKind::kMigrateEnd, 5.25, 1, 7),
      rec(TraceEventKind::kBatchStart, 5.75, 1, 2, 1, 0),
      rec(TraceEventKind::kScheduled, 5.75, 1, 7, -1, 0, /*resume*/ 1),
      rec(TraceEventKind::kCompleted, 8.0, 1, 7, /*restarts*/ 1, 1),
      rec(TraceEventKind::kBatchEnd, 8.0, 1, 2, 1),
  };
}

AnalysisOptions fixture_options() {
  AnalysisOptions options;
  options.ttft_target = 2.0;
  options.tbt_target = 0.2;
  options.tenants = {{2, "acme", -1.0, -1.0}};
  options.replica_pools = {"prefill", "decode"};
  return options;
}

// ------------------------------------- hand-computed waterfall fixture

TEST(AnalysisFixture, PreemptionAndMigrationWaterfallMatchesHandComputed) {
  const AnalysisReport r = analyze_trace(fixture_records(), fixture_options());

  ASSERT_EQ(r.num_records, 16u);
  ASSERT_EQ(r.num_completed, 1);
  EXPECT_EQ(r.num_incomplete, 0);
  EXPECT_EQ(r.num_truncated, 0);

  ASSERT_EQ(r.waterfalls.size(), 1u);
  const RequestWaterfall& wf = r.waterfalls[0];
  EXPECT_EQ(wf.id, 7);
  EXPECT_EQ(wf.tenant, 2);
  EXPECT_EQ(wf.first_replica, 0);
  EXPECT_EQ(wf.last_replica, 1);
  EXPECT_DOUBLE_EQ(wf.arrival, 0.0);
  EXPECT_DOUBLE_EQ(wf.completed, 8.0);
  EXPECT_DOUBLE_EQ(wf.e2e, 8.0);
  EXPECT_DOUBLE_EQ(wf.ttft, 4.5);
  EXPECT_EQ(wf.prefill_tokens, 100);
  EXPECT_EQ(wf.decode_tokens, 10);
  EXPECT_EQ(wf.num_restarts, 1);
  EXPECT_TRUE(wf.migrated);

  // The full decomposition: 0.5 routing, 0.5 + 0.5 queue (arrival-side +
  // decode-side), 1.0 + 1.5 prefill (the preempted attempt's progress is
  // still prefill time), 1.0 stall, 0.25 migration, 0.5 + 2.25 decode.
  EXPECT_DOUBLE_EQ(wf.phase[P(LatencyPhase::kSchedulingDelay)], 0.5);
  EXPECT_DOUBLE_EQ(wf.phase[P(LatencyPhase::kQueueWait)], 1.0);
  EXPECT_DOUBLE_EQ(wf.phase[P(LatencyPhase::kPrefillCompute)], 2.5);
  EXPECT_DOUBLE_EQ(wf.phase[P(LatencyPhase::kPreemptionStall)], 1.0);
  EXPECT_DOUBLE_EQ(wf.phase[P(LatencyPhase::kKvMigration)], 0.25);
  EXPECT_DOUBLE_EQ(wf.phase[P(LatencyPhase::kDecode)], 2.75);
  EXPECT_DOUBLE_EQ(wf.conservation_error, 0.0);
  EXPECT_TRUE(r.conservation_ok);

  // TTFT split: everything before the 4.5 s prefill completion.
  EXPECT_DOUBLE_EQ(wf.ttft_phase[P(LatencyPhase::kSchedulingDelay)], 0.5);
  EXPECT_DOUBLE_EQ(wf.ttft_phase[P(LatencyPhase::kQueueWait)], 0.5);
  EXPECT_DOUBLE_EQ(wf.ttft_phase[P(LatencyPhase::kPrefillCompute)], 2.5);
  EXPECT_DOUBLE_EQ(wf.ttft_phase[P(LatencyPhase::kPreemptionStall)], 1.0);
  EXPECT_DOUBLE_EQ(wf.ttft_phase[P(LatencyPhase::kDecode)], 0.0);
  EXPECT_DOUBLE_EQ(wf.decode_phase[P(LatencyPhase::kQueueWait)], 0.5);
  EXPECT_DOUBLE_EQ(wf.decode_phase[P(LatencyPhase::kKvMigration)], 0.25);
  EXPECT_DOUBLE_EQ(wf.decode_phase[P(LatencyPhase::kDecode)], 2.75);

  EXPECT_EQ(r.e2e.count, 1u);
  EXPECT_DOUBLE_EQ(r.e2e.mean, 8.0);
  EXPECT_DOUBLE_EQ(r.ttft.mean, 4.5);
}

TEST(AnalysisFixture, SloViolationsCarryDominantAndMarginalPhases) {
  const AnalysisReport r = analyze_trace(fixture_records(), fixture_options());

  ASSERT_EQ(r.violations.size(), 2u);
  const SloViolation& ttft = r.violations[0];
  EXPECT_EQ(ttft.metric, SloMetric::kTtft);
  EXPECT_EQ(ttft.id, 7);
  EXPECT_EQ(ttft.replica, 0);  // blamed on the first (prefill) replica
  EXPECT_DOUBLE_EQ(ttft.observed, 4.5);
  EXPECT_DOUBLE_EQ(ttft.target, 2.0);
  EXPECT_DOUBLE_EQ(ttft.excess, 2.5);
  EXPECT_EQ(ttft.dominant, LatencyPhase::kPrefillCompute);
  // Only removing prefill (2.5 s) brings 4.5 s under the 2 s target; the
  // 1 s stall alone would not.
  ASSERT_TRUE(ttft.has_marginal);
  EXPECT_EQ(ttft.marginal, LatencyPhase::kPrefillCompute);

  const SloViolation& tbt = r.violations[1];
  EXPECT_EQ(tbt.metric, SloMetric::kTbt);
  EXPECT_EQ(tbt.replica, 1);  // blamed on the last (decode) replica
  // Mean TBT = (e2e - ttft) / (decode_tokens - 1) = 3.5 / 9.
  EXPECT_DOUBLE_EQ(tbt.observed, 3.5 / 9.0);
  EXPECT_DOUBLE_EQ(tbt.excess, 3.5 / 9.0 - 0.2);
  EXPECT_EQ(tbt.dominant, LatencyPhase::kDecode);
  ASSERT_TRUE(tbt.has_marginal);
  EXPECT_EQ(tbt.marginal, LatencyPhase::kDecode);

  // Blame tables: the tenant override's display name keys the tenant
  // bucket; TTFT lands on the prefill pool, TBT on the decode pool.
  ASSERT_EQ(r.blame_by_tenant.size(), 1u);
  EXPECT_EQ(r.blame_by_tenant[0].key, "acme");
  EXPECT_EQ(r.blame_by_tenant[0].violations, 2);
  EXPECT_DOUBLE_EQ(r.blame_by_tenant[0].excess_seconds,
                   2.5 + (3.5 / 9.0 - 0.2));
  EXPECT_EQ(r.blame_by_tenant[0].top_phase, LatencyPhase::kPrefillCompute);

  ASSERT_EQ(r.blame_by_pool.size(), 2u);
  EXPECT_EQ(r.blame_by_pool[0].key, "prefill");  // 2.5 s > 0.19 s
  EXPECT_DOUBLE_EQ(r.blame_by_pool[0].excess_seconds, 2.5);
  EXPECT_EQ(r.blame_by_pool[1].key, "decode");
  ASSERT_EQ(r.blame_by_replica.size(), 2u);
  EXPECT_EQ(r.blame_by_replica[0].key, "replica-0");
  EXPECT_EQ(r.blame_by_replica[1].key, "replica-1");
}

TEST(AnalysisFixture, ReplicaAuditClassifiesIdleGaps) {
  const AnalysisReport r = analyze_trace(fixture_records(), fixture_options());

  ASSERT_EQ(r.replicas.size(), 2u);
  const ReplicaAudit& a0 = r.replicas[0];
  EXPECT_EQ(a0.replica, 0);
  EXPECT_EQ(a0.pool, "prefill");
  EXPECT_DOUBLE_EQ(a0.span, 8.0);
  EXPECT_DOUBLE_EQ(a0.busy, 2.5);  // batches [1, 2] and [3, 4.5]
  EXPECT_DOUBLE_EQ(a0.idle, 5.5);
  EXPECT_DOUBLE_EQ(a0.off, 0.0);
  EXPECT_EQ(a0.num_batches, 2);
  ASSERT_EQ(a0.num_gaps, 3);
  ASSERT_EQ(a0.top_gaps.size(), 3u);
  // Longest gap first; the tail gap has no waiter (the request left for
  // the decode pool), the two early gaps had request 7 waiting.
  EXPECT_DOUBLE_EQ(a0.top_gaps[0].start, 4.5);
  EXPECT_DOUBLE_EQ(a0.top_gaps[0].end, 8.0);
  EXPECT_EQ(a0.top_gaps[0].cause, IdleGapCause::kNoRoutableWork);
  EXPECT_DOUBLE_EQ(a0.top_gaps[1].start, 0.0);
  EXPECT_EQ(a0.top_gaps[1].cause, IdleGapCause::kAdmissionLimited);
  EXPECT_DOUBLE_EQ(a0.top_gaps[2].start, 2.0);
  EXPECT_EQ(a0.top_gaps[2].cause, IdleGapCause::kAdmissionLimited);

  const ReplicaAudit& a1 = r.replicas[1];
  EXPECT_EQ(a1.replica, 1);
  EXPECT_EQ(a1.pool, "decode");
  EXPECT_DOUBLE_EQ(a1.busy, 2.25);
  EXPECT_DOUBLE_EQ(a1.idle, 5.75);
  ASSERT_EQ(a1.top_gaps.size(), 1u);
  // The migrated request waited here from 5.25, inside this gap.
  EXPECT_EQ(a1.top_gaps[0].cause, IdleGapCause::kAdmissionLimited);

  // Queueing decomposition: one first-schedule, 1.0 s arrival-to-batch,
  // classified as plain saturation (not parked, no inversion, no idle
  // foreign pool before 1.0 s).
  ASSERT_EQ(r.queue_causes.size(), 1u);
  EXPECT_EQ(r.queue_causes[0].cause, QueueWaitCause::kReplicaSaturation);
  EXPECT_EQ(r.queue_causes[0].wait.count, 1u);
  EXPECT_DOUBLE_EQ(r.queue_causes[0].wait.mean, 1.0);
  EXPECT_DOUBLE_EQ(r.queue_causes[0].wait.max, 1.0);
}

TEST(AnalysisFixture, ReplicaLifecycleSplitsOffWarmingAndDraining) {
  const auto S = [](ReplicaState s) {
    return static_cast<std::uint8_t>(s);
  };
  const std::vector<TraceRecord> records = {
      rec(TraceEventKind::kReplicaTransition, 0.0, 0, 0, 1, 0,
          S(ReplicaState::kProvisioning)),
      rec(TraceEventKind::kReplicaTransition, 1.0, 0, 0, 1, 0,
          S(ReplicaState::kWarming)),
      rec(TraceEventKind::kReplicaTransition, 2.0, 0, 0, 1, 0,
          S(ReplicaState::kActive)),
      rec(TraceEventKind::kBatchStart, 3.0, 0, 0, 1, 0),
      rec(TraceEventKind::kBatchEnd, 5.0, 0, 0, 1),
      rec(TraceEventKind::kReplicaTransition, 6.0, 0, 0, 0, 0,
          S(ReplicaState::kDraining)),
      rec(TraceEventKind::kReplicaTransition, 7.0, 0, 0, 0, 0,
          S(ReplicaState::kDecommissioned)),
      rec(TraceEventKind::kScaleDecision, 8.0, -1, 0, 0, 0),
  };
  const AnalysisReport r = analyze_trace(records, {});

  ASSERT_EQ(r.replicas.size(), 1u);
  const ReplicaAudit& a = r.replicas[0];
  EXPECT_DOUBLE_EQ(a.span, 8.0);
  EXPECT_DOUBLE_EQ(a.busy, 2.0);
  // Provisioning [0,1) and decommissioned [7,8) are off, not idle.
  EXPECT_DOUBLE_EQ(a.off, 2.0);
  EXPECT_DOUBLE_EQ(a.idle, 4.0);
  EXPECT_DOUBLE_EQ(a.warming, 1.0);
  EXPECT_DOUBLE_EQ(a.draining, 1.0);
  ASSERT_EQ(a.num_gaps, 4);
  // All four classified gaps are 1 s; stable sort keeps timeline order.
  EXPECT_EQ(a.top_gaps[0].cause, IdleGapCause::kWarming);
  EXPECT_EQ(a.top_gaps[1].cause, IdleGapCause::kNoRoutableWork);
  EXPECT_EQ(a.top_gaps[2].cause, IdleGapCause::kNoRoutableWork);
  EXPECT_EQ(a.top_gaps[3].cause, IdleGapCause::kDraining);
}

TEST(AnalysisFixture, UnknownQueueEntryCountsWholeWaitAsQueueTime) {
  const std::vector<TraceRecord> records = {
      rec(TraceEventKind::kArrival, 0.0, -1, 1, 50, 1),
      rec(TraceEventKind::kScheduled, 2.0, 0, 1, /*unknown*/ -1),
      rec(TraceEventKind::kPrefillDone, 3.0, 0, 1, 1),
      rec(TraceEventKind::kCompleted, 4.0, 0, 1, 0, 1),
  };
  const AnalysisReport r = analyze_trace(records, {});
  ASSERT_EQ(r.waterfalls.size(), 1u);
  const RequestWaterfall& wf = r.waterfalls[0];
  EXPECT_DOUBLE_EQ(wf.phase[P(LatencyPhase::kSchedulingDelay)], 0.0);
  EXPECT_DOUBLE_EQ(wf.phase[P(LatencyPhase::kQueueWait)], 2.0);
  EXPECT_DOUBLE_EQ(wf.phase[P(LatencyPhase::kPrefillCompute)], 1.0);
  EXPECT_DOUBLE_EQ(wf.phase[P(LatencyPhase::kDecode)], 1.0);
  EXPECT_DOUBLE_EQ(wf.conservation_error, 0.0);
}

TEST(AnalysisFixture, IncompleteAndTruncatedRequestsAreCountedNotDropped) {
  const std::vector<TraceRecord> records = {
      // Arrived but never completed (still running at the end of the run).
      rec(TraceEventKind::kArrival, 0.0, -1, 1, 50, 4),
      rec(TraceEventKind::kScheduled, 1.0, 0, 1, 0),
      // Lifecycle without an arrival: the ring buffer dropped its head.
      rec(TraceEventKind::kScheduled, 2.0, 0, 2, -1),
      rec(TraceEventKind::kCompleted, 3.0, 0, 2, 0, 1),
  };
  const AnalysisReport r = analyze_trace(records, {});
  EXPECT_EQ(r.num_completed, 0);
  EXPECT_EQ(r.num_incomplete, 1);
  EXPECT_EQ(r.num_truncated, 1);
  EXPECT_TRUE(r.waterfalls.empty());
  EXPECT_TRUE(r.conservation_ok);
}

// ------------------------------- conservation property over real runs

SimulationConfig base_config(int replicas, SchedulerKind kind) {
  SimulationConfig config;
  config.model = model_by_name("llama2-7b");
  config.node.sku = sku_by_name("a100");
  config.parallel = ParallelConfig{1, 1, replicas};
  config.scheduler.kind = kind;
  config.scheduler.max_batch_size = 32;
  config.scheduler.chunk_size = 512;
  return config;
}

BackendFactory reference_factory(const SimulationConfig& config,
                                 std::uint64_t seed = 1) {
  const ModelSpec model = config.model;
  const NodeSpec node = config.node;
  const ParallelConfig parallel = config.parallel;
  return [model, node, parallel, seed](ReplicaId r) {
    return std::make_unique<ReferenceExecutor>(
        node, model, parallel, seed + static_cast<std::uint64_t>(r));
  };
}

Trace poisson_trace(int n, double qps, std::uint64_t seed) {
  return generate_trace(trace_by_name("chat1m"),
                        ArrivalSpec{ArrivalKind::kPoisson, qps, 0}, n, seed);
}

AnalysisReport analyze_run(SimulationConfig config, const Trace& trace,
                           std::uint64_t* completed = nullptr) {
  TraceRecorder recorder;
  config.obs.trace = &recorder;
  Simulator sim(config, trace, reference_factory(config));
  const SimulationMetrics m = sim.run();
  if (completed != nullptr) *completed = m.num_completed;
  EXPECT_EQ(recorder.num_dropped(), 0u);
  return analyze_trace(recorder.records(), {});
}

TEST(AnalysisProperty, ConservationHoldsAcrossSeededRuns) {
  for (const std::uint64_t seed : {3u, 11u, 42u}) {
    std::uint64_t completed = 0;
    const AnalysisReport r = analyze_run(
        base_config(2, SchedulerKind::kSarathi), poisson_trace(60, 2.0, seed),
        &completed);
    EXPECT_TRUE(r.conservation_ok) << "seed " << seed << ": max error "
                                   << r.max_conservation_error;
    EXPECT_EQ(static_cast<std::uint64_t>(r.num_completed), completed)
        << "seed " << seed;
    EXPECT_EQ(r.num_truncated, 0) << "seed " << seed;
  }
}

TEST(AnalysisProperty, ConservationHoldsUnderAutoscaling) {
  SimulationConfig config = base_config(4, SchedulerKind::kSarathi);
  config.autoscale.kind = AutoscalerKind::kReactive;
  config.autoscale.min_replicas = 1;
  config.autoscale.initial_replicas = 1;
  config.autoscale.decision_interval = 2.0;
  config.autoscale.provision_delay = 1.0;
  config.autoscale.warmup_delay = 0.5;
  config.autoscale.scale_down_cooldown = 10.0;
  for (const std::uint64_t seed : {5u, 17u}) {
    const AnalysisReport r =
        analyze_run(config, poisson_trace(80, 4.0, seed));
    EXPECT_TRUE(r.conservation_ok) << "seed " << seed << ": max error "
                                   << r.max_conservation_error;
    EXPECT_GT(r.num_completed, 0);
  }
}

TEST(AnalysisProperty, ConservationHoldsUnderDisaggWithMigrations) {
  SimulationConfig config = base_config(3, SchedulerKind::kVllm);
  config.disagg.num_prefill_replicas = 1;
  const AnalysisReport r =
      analyze_run(config, poisson_trace(50, 2.0, 23));
  EXPECT_TRUE(r.conservation_ok) << "max error "
                                 << r.max_conservation_error;
  // Multi-token requests migrate prefill -> decode pool; the KV hand-off
  // phase must actually appear, not vanish into queue wait.
  bool saw_migration = false;
  for (const RequestWaterfall& wf : r.waterfalls)
    saw_migration |= wf.migrated &&
                     wf.phase[P(LatencyPhase::kKvMigration)] > 0.0;
  EXPECT_TRUE(saw_migration);
}

// --------------------------------------- determinism and JSON round-trip

TEST(AnalysisDeterminism, SameSeedRendersBitIdenticalJson) {
  const SimulationConfig config = base_config(2, SchedulerKind::kSarathi);
  const Trace trace = poisson_trace(40, 2.0, 9);
  AnalysisOptions options;
  options.ttft_target = 0.5;
  options.tbt_target = 0.05;
  options.replica_pools = {"main", "main"};

  std::string dumps[2];
  for (std::string& dump : dumps) {
    TraceRecorder recorder;
    SimulationConfig run = config;
    run.obs.trace = &recorder;
    Simulator sim(run, trace, reference_factory(run));
    sim.run();
    dump = analysis_json(analyze_trace(recorder.records(), options)).dump();
  }
  EXPECT_EQ(dumps[0], dumps[1]);
}

TEST(AnalysisJson, FixtureReportRoundTripsExactly) {
  const AnalysisReport r = analyze_trace(fixture_records(), fixture_options());
  const JsonValue j = analysis_json(r);
  const AnalysisReport reloaded =
      analysis_report_from_json(JsonValue::parse(j.dump()));
  // analysis_json(from_json(j)) == j: the rendering is a lossless encoding
  // of everything `vidur analyze` consumes.
  EXPECT_EQ(analysis_json(reloaded).dump(), j.dump());
  EXPECT_EQ(reloaded.num_completed, r.num_completed);
  ASSERT_EQ(reloaded.waterfalls.size(), 1u);
  EXPECT_DOUBLE_EQ(
      reloaded.waterfalls[0].decode_phase[P(LatencyPhase::kDecode)], 2.75);
  ASSERT_EQ(reloaded.violations.size(), 2u);
  EXPECT_EQ(reloaded.violations[0].marginal, LatencyPhase::kPrefillCompute);
  EXPECT_EQ(reloaded.options.tenants.size(), 1u);
  EXPECT_EQ(reloaded.options.replica_pools,
            (std::vector<std::string>{"prefill", "decode"}));
}

TEST(AnalysisJson, RealRunReportRoundTripsExactly) {
  TraceRecorder recorder;
  SimulationConfig config = base_config(2, SchedulerKind::kSarathi);
  config.obs.trace = &recorder;
  Simulator sim(config, poisson_trace(40, 2.0, 31), reference_factory(config));
  sim.run();
  AnalysisOptions options;
  options.ttft_target = 0.3;
  options.tbt_target = 0.03;
  const JsonValue j =
      analysis_json(analyze_trace(recorder.records(), options));
  EXPECT_EQ(analysis_json(analysis_report_from_json(j)).dump(), j.dump());
}

TEST(AnalysisJson, OptionsRoundTripThroughContext) {
  const AnalysisOptions options = fixture_options();
  const AnalysisOptions reloaded =
      analysis_options_from_json(analysis_options_json(options));
  EXPECT_DOUBLE_EQ(reloaded.ttft_target, 2.0);
  EXPECT_DOUBLE_EQ(reloaded.tbt_target, 0.2);
  EXPECT_EQ(reloaded.top_k, options.top_k);
  ASSERT_EQ(reloaded.tenants.size(), 1u);
  EXPECT_EQ(reloaded.tenants[0].tenant, 2);
  EXPECT_EQ(reloaded.tenants[0].name, "acme");
  EXPECT_EQ(reloaded.replica_pools, options.replica_pools);
}

TEST(AnalysisJson, SchemaMismatchIsRejectedWithActionableError) {
  JsonValue j = analysis_json(analyze_trace(fixture_records(), {}));
  j.set("schema", static_cast<std::int64_t>(kTraceSchemaVersion - 1));
  EXPECT_THROW(analysis_report_from_json(j), Error);
}

TEST(AnalysisJson, HumanReportMentionsEverySection) {
  const std::string s =
      analysis_to_string(analyze_trace(fixture_records(), fixture_options()));
  for (const char* needle :
       {"conservation", "latency waterfall", "slowest requests",
        "slo violations", "blame by tenant", "blame by pool",
        "replica timeline audit", "queueing decomposition", "migrated",
        "1 restart"}) {
    EXPECT_NE(s.find(needle), std::string::npos) << "missing: " << needle;
  }
}

TEST(AnalysisJson, EmptyRecordStreamYieldsEmptyButValidReport) {
  const AnalysisReport r = analyze_trace({}, {});
  EXPECT_EQ(r.num_records, 0u);
  EXPECT_EQ(r.num_completed, 0);
  EXPECT_TRUE(r.conservation_ok);
  const JsonValue j = analysis_json(r);
  EXPECT_EQ(analysis_json(analysis_report_from_json(j)).dump(), j.dump());
  EXPECT_NE(analysis_to_string(r).find("0 completed"), std::string::npos);
}

}  // namespace
}  // namespace vidur
