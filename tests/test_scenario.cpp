// Tests for src/scenario: rate profiles (shape + empirical arrival rate),
// multi-tenant trace composition (shares, tags, determinism), the scenario
// registry, and per-tenant metric attribution.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/stats.h"
#include "metrics/metrics.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"

namespace vidur {
namespace {

// ------------------------------------------------------------ RateProfile

TEST(RateProfile, ConstantIsOneEverywhere) {
  const RateProfile p = RateProfile::constant();
  EXPECT_DOUBLE_EQ(p.factor_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.factor_at(12345.0), 1.0);
  EXPECT_DOUBLE_EQ(p.peak_factor(), 1.0);
}

TEST(RateProfile, DiurnalOscillatesBetweenLowAndHigh) {
  const RateProfile p = RateProfile::diurnal(/*period=*/100.0, 0.5, 1.5);
  EXPECT_NEAR(p.factor_at(0.0), 1.0, 1e-12);    // midpoint, rising
  EXPECT_NEAR(p.factor_at(25.0), 1.5, 1e-12);   // crest at period/4
  EXPECT_NEAR(p.factor_at(75.0), 0.5, 1e-12);   // trough at 3/4 period
  EXPECT_NEAR(p.factor_at(100.0), 1.0, 1e-9);   // periodic
  EXPECT_DOUBLE_EQ(p.peak_factor(), 1.5);
  for (double t = 0; t < 200; t += 1.7) {
    EXPECT_GE(p.factor_at(t), 0.5 - 1e-12);
    EXPECT_LE(p.factor_at(t), 1.5 + 1e-12);
  }
}

TEST(RateProfile, RampInterpolatesThenHolds) {
  const RateProfile p = RateProfile::ramp(1.0, 3.0, /*duration=*/10.0);
  EXPECT_DOUBLE_EQ(p.factor_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.factor_at(5.0), 2.0);
  EXPECT_DOUBLE_EQ(p.factor_at(10.0), 3.0);
  EXPECT_DOUBLE_EQ(p.factor_at(1000.0), 3.0);
  EXPECT_DOUBLE_EQ(p.peak_factor(), 3.0);
}

TEST(RateProfile, SpikeWindowIsHalfOpen) {
  const RateProfile p = RateProfile::spike(1.0, 5.0, /*start=*/10.0,
                                           /*duration=*/5.0);
  EXPECT_DOUBLE_EQ(p.factor_at(9.999), 1.0);
  EXPECT_DOUBLE_EQ(p.factor_at(10.0), 5.0);
  EXPECT_DOUBLE_EQ(p.factor_at(14.999), 5.0);
  EXPECT_DOUBLE_EQ(p.factor_at(15.0), 1.0);
  EXPECT_DOUBLE_EQ(p.peak_factor(), 5.0);
}

TEST(RateProfile, PiecewiseStepsHold) {
  const RateProfile p = RateProfile::piecewise(
      {RateStep{0.0, 0.5}, RateStep{10.0, 2.0}, RateStep{20.0, 1.0}});
  EXPECT_DOUBLE_EQ(p.factor_at(0.0), 0.5);
  EXPECT_DOUBLE_EQ(p.factor_at(9.9), 0.5);
  EXPECT_DOUBLE_EQ(p.factor_at(10.0), 2.0);
  EXPECT_DOUBLE_EQ(p.factor_at(25.0), 1.0);
  EXPECT_DOUBLE_EQ(p.peak_factor(), 2.0);
}

TEST(RateProfile, MeanFactorMatchesAnalyticAverages) {
  // Full diurnal period averages to the midpoint.
  EXPECT_NEAR(RateProfile::diurnal(100.0, 0.5, 1.5).mean_factor(100.0), 1.0,
              1e-3);
  // Ramp 1->3 over 10s then hold: mean over [0,20] = (2*10 + 3*10) / 20.
  EXPECT_NEAR(RateProfile::ramp(1.0, 3.0, 10.0).mean_factor(20.0), 2.5,
              1e-3);
  // Spike 4x for a quarter of the horizon: 0.75*1 + 0.25*4.
  EXPECT_NEAR(
      RateProfile::spike(1.0, 4.0, 10.0, 25.0).mean_factor(100.0), 1.75,
      0.01);
  EXPECT_DOUBLE_EQ(RateProfile::constant().mean_factor(50.0), 1.0);
}

TEST(RateProfile, ExpectedRequestsBudgetsTraceSizes) {
  Scenario s;
  s.name = "budget";
  s.tenants = {TenantSpec{.name = "t", .trace = trace_by_name("chat1m")}};
  s.arrival = ArrivalSpec{ArrivalKind::kPoisson, 10.0, 0};
  s.profile = RateProfile::spike(1.0, 4.0, 100.0, 100.0);
  s.num_requests = 1 << 20;  // effectively unbounded
  s.max_duration = 300.0;
  // Expected over [0,300]: 10 qps * (200s at 1x + 100s at 4x) = 6000.
  const double expected = s.expected_requests(300.0);
  EXPECT_NEAR(expected, 6000.0, 10.0);
  const Trace trace = generate_scenario_trace(s, 29);
  EXPECT_NEAR(static_cast<double>(trace.size()), expected,
              0.05 * expected);
}

TEST(RateProfile, InvalidParametersThrow) {
  EXPECT_THROW(RateProfile::diurnal(0.0, 0.5, 1.5), Error);    // period
  EXPECT_THROW(RateProfile::diurnal(10.0, 2.0, 1.0), Error);   // low > high
  EXPECT_THROW(RateProfile::diurnal(10.0, -1.0, 1.0), Error);  // negative
  EXPECT_THROW(RateProfile::ramp(1.0, 2.0, 0.0), Error);
  EXPECT_THROW(RateProfile::spike(1.0, 4.0, -1.0, 5.0), Error);
  EXPECT_THROW(RateProfile::spike(1.0, 4.0, 0.0, 0.0), Error);
  EXPECT_THROW(RateProfile::piecewise({}), Error);
  EXPECT_THROW(RateProfile::piecewise({RateStep{5.0, 1.0}}), Error);
  EXPECT_THROW(RateProfile::piecewise(
                   {RateStep{0.0, 1.0}, RateStep{0.0, 2.0}}),
               Error);
  EXPECT_THROW(RateProfile::piecewise({RateStep{0.0, 0.0}}), Error);
}

// --------------------------------------------------- empirical arrival rate

Scenario single_tenant_scenario(RateProfile profile, double qps,
                                int num_requests) {
  Scenario s;
  s.name = "test";
  s.tenants = {TenantSpec{.name = "t", .trace = trace_by_name("chat1m")}};
  s.arrival = ArrivalSpec{ArrivalKind::kPoisson, qps, 0};
  s.profile = std::move(profile);
  s.num_requests = num_requests;
  return s;
}

/// Arrivals per second within [lo, hi).
double window_rate(const Trace& trace, Seconds lo, Seconds hi) {
  int n = 0;
  for (const Request& r : trace)
    if (r.arrival_time >= lo && r.arrival_time < hi) ++n;
  return n / (hi - lo);
}

TEST(ScenarioArrivals, SpikeEmpiricalRateMatchesProfile) {
  // 10 qps baseline with a 4x burst in [100, 200): the thinned process must
  // reproduce both levels.
  // ~5000 arrivals are expected by t=200, so a 6000 budget guarantees the
  // trace covers both measurement windows.
  Scenario s = single_tenant_scenario(
      RateProfile::spike(1.0, 4.0, 100.0, 100.0), /*qps=*/10.0, 6000);
  const Trace trace = generate_scenario_trace(s, 11);
  const double base = window_rate(trace, 0.0, 100.0);
  const double burst = window_rate(trace, 100.0, 200.0);
  EXPECT_NEAR(base, 10.0, 1.5);
  EXPECT_NEAR(burst, 40.0, 4.0);
}

TEST(ScenarioArrivals, RampEmpiricalRateMatchesProfile) {
  Scenario s = single_tenant_scenario(RateProfile::ramp(0.5, 2.0, 100.0),
                                      /*qps=*/10.0, 3000);
  const Trace trace = generate_scenario_trace(s, 13);
  EXPECT_NEAR(window_rate(trace, 0.0, 20.0), 10.0 * 0.65, 2.0);
  EXPECT_NEAR(window_rate(trace, 80.0, 100.0), 10.0 * 1.85, 2.5);
  EXPECT_NEAR(window_rate(trace, 100.0, 150.0), 20.0, 2.5);
}

TEST(ScenarioArrivals, DiurnalPeakAndTroughWindows) {
  // period 400s in [0.25, 1.75]: crest around t=100, trough around t=300.
  Scenario s = single_tenant_scenario(
      RateProfile::diurnal(400.0, 0.25, 1.75), /*qps=*/10.0, 4000);
  const Trace trace = generate_scenario_trace(s, 17);
  const double crest = window_rate(trace, 60.0, 140.0);
  const double trough = window_rate(trace, 260.0, 340.0);
  EXPECT_GT(crest, 2.5 * trough);
  EXPECT_NEAR(crest, 16.4, 2.5);   // mean factor over the crest window
  EXPECT_NEAR(trough, 3.6, 1.5);
}

TEST(ScenarioArrivals, ArrivalsSortedAndIdsSequential) {
  Scenario s = single_tenant_scenario(
      RateProfile::diurnal(100.0, 0.5, 1.5), 5.0, 500);
  const Trace trace = generate_scenario_trace(s, 3);
  ASSERT_EQ(trace.size(), 500u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].id, static_cast<RequestId>(i));
    if (i > 0)
      EXPECT_GE(trace[i].arrival_time, trace[i - 1].arrival_time);
  }
}

TEST(ScenarioArrivals, MaxDurationTruncates) {
  Scenario s = single_tenant_scenario(RateProfile::constant(), 10.0, 100000);
  s.max_duration = 20.0;
  const Trace trace = generate_scenario_trace(s, 5);
  EXPECT_LT(trace.size(), 100000u);
  EXPECT_GT(trace.size(), 100u);  // ~200 expected
  for (const Request& r : trace) EXPECT_LE(r.arrival_time, 20.0);
}

TEST(ScenarioArrivals, StarvingProfileThrowsInsteadOfSpinning) {
  // After t=1 the schedule is permanently (near) zero with no max_duration:
  // generation must fail loudly, not loop forever.
  Scenario s = single_tenant_scenario(
      RateProfile::piecewise({RateStep{0.0, 1e-9}, RateStep{1.0, 0.0}}),
      10.0, 1000);
  EXPECT_THROW(generate_scenario_trace(s, 1), Error);
}

// ------------------------------------------------------------ tenant mixes

Scenario two_tenant_scenario() {
  Scenario s;
  s.name = "mix";
  s.tenants = {TenantSpec{.name = "chat",
                          .trace = trace_by_name("chat1m"),
                          .share = 3.0,
                          .priority = 2,
                          .slo = SloSpec{1.0, 0.2}},
               TenantSpec{.name = "paper",
                          .trace = trace_by_name("arxiv4k"),
                          .share = 1.0,
                          .priority = 0}};
  s.arrival = ArrivalSpec{ArrivalKind::kGamma, 4.0, 2.0};
  s.profile = RateProfile::spike(1.0, 3.0, 50.0, 50.0);
  s.num_requests = 4000;
  return s;
}

TEST(TenantMix, SharesAreRespected) {
  const Trace trace = generate_scenario_trace(two_tenant_scenario(), 21);
  std::size_t chat = 0;
  for (const Request& r : trace) chat += r.tenant == 0 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(chat) / trace.size(), 0.75, 0.03);
}

TEST(TenantMix, TagsCarryTenantAndPriority) {
  const Trace trace = generate_scenario_trace(two_tenant_scenario(), 21);
  for (const Request& r : trace) {
    ASSERT_TRUE(r.tenant == 0 || r.tenant == 1);
    EXPECT_EQ(r.priority, r.tenant == 0 ? 2 : 0);
  }
}

TEST(TenantMix, LengthsFollowEachTenantsTrace) {
  const Trace trace = generate_scenario_trace(two_tenant_scenario(), 23);
  SampleSeries chat_prefill, paper_prefill;
  for (const Request& r : trace)
    (r.tenant == 0 ? chat_prefill : paper_prefill)
        .add(static_cast<double>(r.prefill_tokens));
  // arxiv4k prefills (median ~2730) dwarf chat1m prefills (median ~417).
  EXPECT_GT(paper_prefill.median(), 4.0 * chat_prefill.median());
}

TEST(TenantMix, SameSeedSameTrace) {
  const Trace a = generate_scenario_trace(two_tenant_scenario(), 99);
  const Trace b = generate_scenario_trace(two_tenant_scenario(), 99);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tenant, b[i].tenant);
    EXPECT_EQ(a[i].prefill_tokens, b[i].prefill_tokens);
    EXPECT_EQ(a[i].decode_tokens, b[i].decode_tokens);
    EXPECT_DOUBLE_EQ(a[i].arrival_time, b[i].arrival_time);
  }
}

TEST(TenantMix, DifferentSeedsDiffer) {
  const Trace a = generate_scenario_trace(two_tenant_scenario(), 1);
  const Trace b = generate_scenario_trace(two_tenant_scenario(), 2);
  int differing = 0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i)
    differing += a[i].prefill_tokens != b[i].prefill_tokens ? 1 : 0;
  EXPECT_GT(differing, static_cast<int>(n / 2));
}

TEST(TenantMix, StaticArrivalsMixTenantsAtTimeZero) {
  Scenario s = two_tenant_scenario();
  s.arrival = ArrivalSpec{ArrivalKind::kStatic, 0, 0};
  s.profile = RateProfile::constant();
  s.num_requests = 500;
  const Trace trace = generate_scenario_trace(s, 5);
  ASSERT_EQ(trace.size(), 500u);
  bool saw_both = false;
  for (const Request& r : trace) {
    EXPECT_EQ(r.arrival_time, 0.0);
    saw_both = saw_both || r.tenant == 1;
  }
  EXPECT_TRUE(saw_both);
}

TEST(ScenarioValidation, RejectsDegenerateScenarios) {
  Scenario s = two_tenant_scenario();
  s.tenants.clear();
  EXPECT_THROW(s.validate(), Error);

  s = two_tenant_scenario();
  s.tenants[1].name = "chat";  // duplicate
  EXPECT_THROW(s.validate(), Error);

  s = two_tenant_scenario();
  s.tenants[0].share = 0.0;
  EXPECT_THROW(s.validate(), Error);

  s = two_tenant_scenario();
  s.num_requests = 0;
  EXPECT_THROW(s.validate(), Error);

  // A time-varying profile over static arrivals is meaningless.
  s = two_tenant_scenario();
  s.arrival = ArrivalSpec{ArrivalKind::kStatic, 0, 0};
  EXPECT_THROW(s.validate(), Error);
}

// --------------------------------------------------------------- registry

TEST(Registry, BuiltinsAreRegisteredAndValid) {
  const auto& names = builtin_scenario_names();
  EXPECT_GE(names.size(), 3u);
  for (const std::string& name : names) {
    const Scenario& s = scenario_by_name(name);
    EXPECT_EQ(s.name, name);
    EXPECT_NO_THROW(s.validate());
  }
  EXPECT_TRUE(ScenarioRegistry::instance().contains("diurnal-chat"));
  EXPECT_TRUE(ScenarioRegistry::instance().contains("flash-crowd-mixed"));
  EXPECT_TRUE(ScenarioRegistry::instance().contains("batch-over-interactive"));
}

TEST(Registry, UnknownScenarioThrows) {
  EXPECT_THROW(scenario_by_name("no-such-scenario"), Error);
}

TEST(Registry, ProgrammaticRegistrationAndDuplicateRejection) {
  Scenario s = two_tenant_scenario();
  s.name = "test-programmatic";
  if (!ScenarioRegistry::instance().contains(s.name))
    ScenarioRegistry::instance().add(s);
  EXPECT_TRUE(ScenarioRegistry::instance().contains(s.name));
  EXPECT_EQ(scenario_by_name(s.name).tenants.size(), 2u);
  EXPECT_THROW(ScenarioRegistry::instance().add(s), Error);  // duplicate
}

TEST(Registry, BuiltinTracesAreDeterministic) {
  for (const std::string& name : builtin_scenario_names()) {
    Scenario s = scenario_by_name(name);
    s.num_requests = 200;
    const Trace a = generate_scenario_trace(s, 42);
    const Trace b = generate_scenario_trace(s, 42);
    ASSERT_EQ(a.size(), b.size()) << name;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].tenant, b[i].tenant) << name;
      ASSERT_EQ(a[i].prefill_tokens, b[i].prefill_tokens) << name;
      ASSERT_DOUBLE_EQ(a[i].arrival_time, b[i].arrival_time) << name;
    }
  }
}

// ---------------------------------------------------- per-tenant metrics

RequestRecord completed_record(RequestId id, TenantId tenant, Seconds ttft,
                               Seconds tbt_gap, int decode_tokens = 3) {
  RequestRecord r;
  r.id = id;
  r.tenant = tenant;
  r.arrival_time = 0.0;
  r.first_scheduled_time = 0.0;
  r.prefill_completed_time = ttft;
  r.decode_tokens = decode_tokens;
  r.prefill_tokens = 10;
  for (int i = 0; i < decode_tokens; ++i)
    r.token_times.push_back(ttft + i * tbt_gap);
  r.completed_time = r.token_times.back();
  return r;
}

TEST(TenantMetrics, UntaggedSingleTenantRunHasNoBreakdown) {
  MetricsCollector collector(1, 1e12, 1);
  collector.record_request(completed_record(0, 0, 0.1, 0.02));
  const SimulationMetrics m = collector.finalize(1.0);
  EXPECT_TRUE(m.tenant_metrics.empty());
  EXPECT_TRUE(m.tenant_table().empty());
}

TEST(TenantMetrics, BreakdownGroupsByTenant) {
  MetricsCollector collector(1, 1e12, 1);
  collector.set_tenants(
      {TenantInfo{0, "fast", 1, SloSpec{0.5, 0.1}},
       TenantInfo{1, "slow", 0, SloSpec{}}});
  // fast: one request inside SLO, one with a late first token.
  collector.record_request(completed_record(0, 0, 0.2, 0.05));
  collector.record_request(completed_record(1, 0, 2.0, 0.05));
  // slow: no SLO configured.
  collector.record_request(completed_record(2, 1, 4.0, 0.5));
  const SimulationMetrics m = collector.finalize(10.0);

  ASSERT_EQ(m.tenant_metrics.size(), 2u);
  const auto& fast = m.tenant_metrics[0];
  const auto& slow = m.tenant_metrics[1];
  EXPECT_EQ(fast.info.name, "fast");
  EXPECT_EQ(fast.num_requests, 2u);
  EXPECT_EQ(fast.num_completed, 2u);
  EXPECT_NEAR(fast.slo_attainment, 0.5, 1e-12);
  EXPECT_NEAR(fast.throughput_qps, 0.2, 1e-12);
  EXPECT_EQ(slow.info.name, "slow");
  EXPECT_EQ(slow.num_requests, 1u);
  EXPECT_LT(slow.slo_attainment, 0.0);  // no SLO -> sentinel
  EXPECT_FALSE(m.tenant_table().empty());
}

TEST(TenantMetrics, TbtTargetViolationsCountAgainstSlo) {
  MetricsCollector collector(1, 1e12, 1);
  collector.set_tenants({TenantInfo{0, "t", 0, SloSpec{10.0, 0.1}}});
  collector.record_request(completed_record(0, 0, 0.1, 0.05));  // ok
  collector.record_request(completed_record(1, 0, 0.1, 0.2));   // tbt miss
  const SimulationMetrics m = collector.finalize(10.0);
  ASSERT_EQ(m.tenant_metrics.size(), 1u);
  EXPECT_NEAR(m.tenant_metrics[0].slo_attainment, 0.5, 1e-12);
}

TEST(TenantMetrics, IncompleteRequestsAreSloMisses) {
  MetricsCollector collector(1, 1e12, 1);
  collector.set_tenants({TenantInfo{0, "t", 0, SloSpec{10.0, 10.0}}});
  collector.record_request(completed_record(0, 0, 0.1, 0.05));
  RequestRecord unfinished;
  unfinished.id = 1;
  unfinished.tenant = 0;
  collector.record_request(unfinished);
  const SimulationMetrics m = collector.finalize(10.0);
  ASSERT_EQ(m.tenant_metrics.size(), 1u);
  EXPECT_EQ(m.tenant_metrics[0].num_requests, 2u);
  EXPECT_EQ(m.tenant_metrics[0].num_completed, 1u);
  EXPECT_NEAR(m.tenant_metrics[0].slo_attainment, 0.5, 1e-12);
}

TEST(TenantMetrics, UnregisteredTagsGetGeneratedNames) {
  MetricsCollector collector(1, 1e12, 1);
  collector.record_request(completed_record(0, 3, 0.1, 0.05));
  const SimulationMetrics m = collector.finalize(1.0);
  ASSERT_EQ(m.tenant_metrics.size(), 1u);
  EXPECT_EQ(m.tenant_metrics[0].info.name, "tenant3");
  EXPECT_LT(m.tenant_metrics[0].slo_attainment, 0.0);
}

TEST(TenantMetrics, TenantInfosMatchScenario) {
  const Scenario s = scenario_by_name("flash-crowd-mixed");
  const auto infos = s.tenant_infos();
  ASSERT_EQ(infos.size(), s.tenants.size());
  for (std::size_t i = 0; i < infos.size(); ++i) {
    EXPECT_EQ(infos[i].id, static_cast<TenantId>(i));
    EXPECT_EQ(infos[i].name, s.tenants[i].name);
    EXPECT_EQ(infos[i].priority, s.tenants[i].priority);
  }
}

}  // namespace
}  // namespace vidur
