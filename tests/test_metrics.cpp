// Tests for src/metrics: request-record derived metrics and collector
// aggregation (throughput, MFU, utilization accounting).
#include <gtest/gtest.h>

#include "common/check.h"
#include "metrics/metrics.h"

namespace vidur {
namespace {

RequestRecord sample_record() {
  RequestRecord r;
  r.id = 1;
  r.arrival_time = 10.0;
  r.first_scheduled_time = 10.5;
  r.prefill_completed_time = 11.0;
  r.completed_time = 15.0;
  r.prefill_tokens = 100;
  r.decode_tokens = 10;
  r.token_times = {11.0, 11.5, 12.0, 12.6, 13.0, 13.4, 13.8, 14.2, 14.6, 15.0};
  return r;
}

TEST(RequestRecord, DerivedMetrics) {
  const RequestRecord r = sample_record();
  EXPECT_TRUE(r.completed());
  EXPECT_DOUBLE_EQ(r.scheduling_delay(), 0.5);
  EXPECT_DOUBLE_EQ(r.ttft(), 1.0);
  EXPECT_DOUBLE_EQ(r.e2e_latency(), 5.0);
  EXPECT_DOUBLE_EQ(r.normalized_e2e_latency(), 0.5);
  EXPECT_DOUBLE_EQ(r.normalized_execution_latency(), 0.45);
}

TEST(RequestRecord, IncompleteRequest) {
  RequestRecord r = sample_record();
  r.completed_time = -1.0;
  EXPECT_FALSE(r.completed());
}

TEST(MetricsCollector, AggregatesRequestLevelMetrics) {
  MetricsCollector collector(1, 312e12, 1);
  collector.record_request(sample_record());
  RequestRecord r2 = sample_record();
  r2.id = 2;
  r2.completed_time = 20.0;  // norm e2e = 1.0
  r2.token_times = {11.0, 20.0};
  collector.record_request(r2);

  const SimulationMetrics m = collector.finalize(20.0);
  EXPECT_EQ(m.num_requests, 2u);
  EXPECT_EQ(m.num_completed, 2u);
  EXPECT_DOUBLE_EQ(m.throughput_qps, 0.1);
  // TBT samples: 9 gaps from r1 + 1 gap from r2.
  EXPECT_EQ(m.tbt.count, 10u);
  EXPECT_DOUBLE_EQ(m.tbt.max, 9.0);
}

TEST(MetricsCollector, IncompleteRequestsCountedButNotAggregated) {
  MetricsCollector collector(1, 312e12, 1);
  collector.record_request(sample_record());
  RequestRecord incomplete = sample_record();
  incomplete.id = 3;
  incomplete.completed_time = -1.0;
  collector.record_request(incomplete);
  const SimulationMetrics m = collector.finalize(20.0);
  EXPECT_EQ(m.num_requests, 2u);
  EXPECT_EQ(m.num_completed, 1u);
}

TEST(MetricsCollector, MfuAccountsForClusterPeak) {
  // One batch doing 1e12 FLOPs over 1s on a 312 TFLOPs GPU ~ 0.32% MFU.
  MetricsCollector collector(1, 312e12, 1);
  BatchRecord batch;
  batch.start_time = 0.0;
  batch.end_time = 1.0;
  batch.flops = 1e12;
  batch.batch_size = 4;
  batch.kv_utilization = 0.5;
  collector.record_batch(batch);
  const SimulationMetrics m = collector.finalize(1.0);
  EXPECT_NEAR(m.mfu, 1e12 / 312e12, 1e-9);
  EXPECT_DOUBLE_EQ(m.busy_fraction, 1.0);
  EXPECT_DOUBLE_EQ(m.mean_kv_utilization, 0.5);
  EXPECT_DOUBLE_EQ(m.mean_batch_size, 4.0);
}

TEST(MetricsCollector, MfuDividesAcrossGpus) {
  MetricsCollector collector(2, 312e12, 4);  // 8 GPUs in the cluster
  BatchRecord batch;
  batch.end_time = 1.0;
  batch.flops = 312e12;
  collector.record_batch(batch);
  const SimulationMetrics m = collector.finalize(1.0);
  EXPECT_NEAR(m.mfu, 1.0 / 8.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.busy_fraction, 0.5);  // 1 of 2 replicas busy
}

TEST(MetricsCollector, TimeWeightedAverages) {
  MetricsCollector collector(1, 1e12, 1);
  BatchRecord slow;
  slow.start_time = 0.0;
  slow.end_time = 9.0;  // 9s at batch size 10
  slow.batch_size = 10;
  slow.kv_utilization = 1.0;
  BatchRecord fast;
  fast.start_time = 9.0;
  fast.end_time = 10.0;  // 1s at batch size 0
  fast.batch_size = 0;
  fast.kv_utilization = 0.0;
  collector.record_batch(slow);
  collector.record_batch(fast);
  const SimulationMetrics m = collector.finalize(10.0);
  EXPECT_DOUBLE_EQ(m.mean_batch_size, 9.0);
  EXPECT_DOUBLE_EQ(m.mean_kv_utilization, 0.9);
}

TEST(MetricsCollector, RestartsSummed) {
  MetricsCollector collector(1, 1e12, 1);
  RequestRecord r = sample_record();
  r.num_restarts = 2;
  collector.record_request(r);
  RequestRecord r2 = sample_record();
  r2.num_restarts = 1;
  collector.record_request(r2);
  EXPECT_EQ(collector.finalize(20.0).num_restarts, 3);
}

TEST(MetricsCollector, ToStringContainsKeyFields) {
  MetricsCollector collector(1, 1e12, 1);
  collector.record_request(sample_record());
  const std::string s = collector.finalize(20.0).to_string();
  EXPECT_NE(s.find("TTFT"), std::string::npos);
  EXPECT_NE(s.find("TBT"), std::string::npos);
  EXPECT_NE(s.find("MFU"), std::string::npos);
}

TEST(MetricsCollector, InvalidConstructionThrows) {
  EXPECT_THROW(MetricsCollector(0, 1e12, 1), Error);
  EXPECT_THROW(MetricsCollector(1, 0.0, 1), Error);
  EXPECT_THROW(MetricsCollector(1, 1e12, 0), Error);
}

TEST(MetricsCollector, NegativeBatchDurationThrows) {
  MetricsCollector collector(1, 1e12, 1);
  BatchRecord bad;
  bad.start_time = 2.0;
  bad.end_time = 1.0;
  EXPECT_THROW(collector.record_batch(bad), Error);
}

}  // namespace
}  // namespace vidur

// Appended coverage: MBU (model bandwidth utilization) accounting.
namespace vidur {
namespace {

TEST(MetricsCollectorMbu, ComputedAgainstPerGpuBandwidth) {
  MetricsCollector collector(1, 1e12, 4, /*hbm=*/1e12);
  BatchRecord batch;
  batch.end_time = 2.0;
  batch.hbm_bytes_per_gpu = 1e12;  // 1e12 bytes over 2s on 1e12 B/s -> 50%
  collector.record_batch(batch);
  const SimulationMetrics m = collector.finalize(2.0);
  EXPECT_NEAR(m.mbu, 0.5, 1e-9);
}

TEST(MetricsCollectorMbu, ZeroBandwidthDisablesMbu) {
  MetricsCollector collector(1, 1e12, 1);
  BatchRecord batch;
  batch.end_time = 1.0;
  batch.hbm_bytes_per_gpu = 1e12;
  collector.record_batch(batch);
  EXPECT_DOUBLE_EQ(collector.finalize(1.0).mbu, 0.0);
}

// ------------------------------------------------------------------ energy

ClusterResources one_gpu_cluster() {
  return ClusterResources{.num_replicas = 1,
                          .gpus_per_replica = 1,
                          .peak_flops_per_gpu = 1e12,
                          .hbm_bytes_per_sec_per_gpu = 1e12,
                          .idle_watts_per_gpu = 100.0,
                          .peak_watts_per_gpu = 500.0};
}

RequestRecord one_token_request() {
  RequestRecord r = sample_record();
  r.decode_tokens = 1;
  r.token_times = {r.prefill_completed_time};
  return r;
}

TEST(MetricsEnergy, FullyUtilizedBatchDrawsPeakPower) {
  MetricsCollector collector(one_gpu_cluster());
  BatchRecord batch;
  batch.start_time = 0.0;
  batch.end_time = 2.0;
  batch.flops = 2e12;  // 1e12 FLOP/s over 2s on a 1e12-peak GPU: 100%
  collector.record_batch(batch);
  collector.record_request(one_token_request());
  const SimulationMetrics m = collector.finalize(2.0);
  EXPECT_NEAR(m.total_energy_joules, 2.0 * 500.0, 1e-6);
  EXPECT_NEAR(m.mean_cluster_power_watts, 500.0, 1e-6);
}

TEST(MetricsEnergy, IdleClusterDrawsIdlePower) {
  MetricsCollector collector(one_gpu_cluster());
  collector.record_request(one_token_request());
  const SimulationMetrics m = collector.finalize(10.0);
  EXPECT_NEAR(m.total_energy_joules, 10.0 * 100.0, 1e-6);
  EXPECT_NEAR(m.mean_cluster_power_watts, 100.0, 1e-6);
}

TEST(MetricsEnergy, HalfUtilizedBatchInterpolatesLinearly) {
  MetricsCollector collector(one_gpu_cluster());
  BatchRecord batch;
  batch.start_time = 0.0;
  batch.end_time = 1.0;
  batch.flops = 5e11;  // 50% FLOP utilization, no HBM traffic
  collector.record_batch(batch);
  collector.record_request(one_token_request());
  // 1s busy at idle + 0.5*(peak-idle) = 300 W.
  EXPECT_NEAR(collector.finalize(1.0).total_energy_joules, 300.0, 1e-6);
}

TEST(MetricsEnergy, IntensityUsesDominantRooflineAxis) {
  // A memory-bound batch: low FLOP utilization but saturated bandwidth must
  // be billed as fully utilized (decode iterations look exactly like this).
  MetricsCollector collector(one_gpu_cluster());
  BatchRecord batch;
  batch.start_time = 0.0;
  batch.end_time = 1.0;
  batch.flops = 1e10;             // 1% of peak
  batch.hbm_bytes_per_gpu = 1e12;  // 100% of bandwidth
  collector.record_batch(batch);
  collector.record_request(one_token_request());
  EXPECT_NEAR(collector.finalize(1.0).total_energy_joules, 500.0, 1e-6);
}

TEST(MetricsEnergy, AutoscaledFleetBillsIdleWattsFromScalingTimeline) {
  // 4-slot elastic fleet that averaged one active replica over a 10s run:
  // idle watts follow the paid replica-hours in the scaling report, not
  // the static slot ceiling.
  ClusterResources cluster = one_gpu_cluster();
  cluster.num_replicas = 4;
  MetricsCollector collector(cluster);
  collector.record_request(one_token_request());

  ClusterScalingReport scaling;
  scaling.enabled = true;
  scaling.fleet_size = 4;
  scaling.replica_hours = 10.0 / 3600.0;  // 10 paid replica-seconds
  scaling.gpu_hours = scaling.replica_hours;
  const SimulationMetrics elastic = collector.finalize(10.0, scaling);
  EXPECT_NEAR(elastic.total_energy_joules, 10.0 * 100.0, 1e-6);
  EXPECT_TRUE(elastic.scaling.enabled);

  // The one-argument finalize keeps the legacy static-fleet assumption:
  // every slot always on, 4x the idle energy.
  const SimulationMetrics static_fleet = collector.finalize(10.0);
  EXPECT_NEAR(static_fleet.total_energy_joules, 4 * 10.0 * 100.0, 1e-6);
  EXPECT_FALSE(static_fleet.scaling.enabled);
  EXPECT_EQ(static_fleet.scaling.fleet_size, 4);
}

TEST(MetricsEnergy, BusyEnergyStillAccruesUnderAScalingReport) {
  // A fully-utilized 2s batch plus 8 paid-but-idle GPU-seconds.
  MetricsCollector collector(one_gpu_cluster());
  BatchRecord batch;
  batch.start_time = 0.0;
  batch.end_time = 2.0;
  batch.flops = 2e12;  // 100% utilization for 2s
  collector.record_batch(batch);
  collector.record_request(one_token_request());

  ClusterScalingReport scaling;
  scaling.enabled = true;
  scaling.fleet_size = 1;
  scaling.gpu_hours = 10.0 / 3600.0;
  const SimulationMetrics m = collector.finalize(10.0, scaling);
  EXPECT_NEAR(m.total_energy_joules, 2.0 * 500.0 + 8.0 * 100.0, 1e-6);
}

TEST(MetricsEnergy, EnergyPerTokenDividesByOutputTokens) {
  MetricsCollector collector(one_gpu_cluster());
  RequestRecord r = sample_record();  // 10 decode tokens
  collector.record_request(r);
  const SimulationMetrics m = collector.finalize(1.0);
  EXPECT_NEAR(m.energy_per_output_token, m.total_energy_joules / 10.0, 1e-9);
}

TEST(MetricsEnergy, DisabledWithoutPowerModel) {
  MetricsCollector collector(1, 1e12, 1);
  BatchRecord batch;
  batch.end_time = 1.0;
  batch.flops = 1e12;
  collector.record_batch(batch);
  const SimulationMetrics m = collector.finalize(1.0);
  EXPECT_DOUBLE_EQ(m.total_energy_joules, 0.0);
  EXPECT_DOUBLE_EQ(m.mean_cluster_power_watts, 0.0);
}

TEST(MetricsEnergy, InvalidPowerModelThrows) {
  ClusterResources cluster = one_gpu_cluster();
  cluster.peak_watts_per_gpu = 50.0;  // below idle
  EXPECT_THROW(MetricsCollector{cluster}, Error);
}

// --------------------------------------------------------------- operators

TEST(MetricsOperators, AccumulatesAcrossStages) {
  MetricsCollector collector(one_gpu_cluster());
  collector.record_operators(
      {{OpType::kAttnDecode, 0.002}, {OpType::kMlpDownProj, 0.001}});
  collector.record_operators({{OpType::kAttnDecode, 0.003}});
  const SimulationMetrics m = collector.finalize(1.0);
  ASSERT_EQ(m.operator_stats.size(), 2u);
  EXPECT_EQ(m.operator_stats.at(OpType::kAttnDecode).invocations, 2);
  EXPECT_NEAR(m.operator_stats.at(OpType::kAttnDecode).total_seconds, 0.005,
              1e-12);
  EXPECT_EQ(m.operator_stats.at(OpType::kMlpDownProj).invocations, 1);
}

TEST(MetricsOperators, TableSortsHeaviestFirst) {
  MetricsCollector collector(one_gpu_cluster());
  collector.record_operators(
      {{OpType::kRmsNorm, 0.001}, {OpType::kMlpGateUpProj, 0.010}});
  const std::string table = collector.finalize(1.0).operator_table();
  const auto heavy = table.find("mlp_gate_up_proj");
  const auto light = table.find("rms_norm");
  ASSERT_NE(heavy, std::string::npos);
  ASSERT_NE(light, std::string::npos);
  EXPECT_LT(heavy, light);
}

TEST(MetricsOperators, EmptyTableWhenNotCollected) {
  MetricsCollector collector(one_gpu_cluster());
  EXPECT_TRUE(collector.finalize(1.0).operator_table().empty());
}

TEST(MetricsCollector, ZeroMakespanProducesNoRates) {
  // finalize(0) must not divide by zero: all rate/utilization metrics stay
  // at their zero defaults.
  MetricsCollector collector(one_gpu_cluster());
  collector.record_request(one_token_request());
  const SimulationMetrics m = collector.finalize(0.0);
  EXPECT_DOUBLE_EQ(m.throughput_qps, 0.0);
  EXPECT_DOUBLE_EQ(m.mfu, 0.0);
  EXPECT_DOUBLE_EQ(m.total_energy_joules, 0.0);
  EXPECT_EQ(m.num_completed, 1u);
}

}  // namespace
}  // namespace vidur
