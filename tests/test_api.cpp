// Tests for src/api: ExperimentSpec JSON round-trip identity across every
// mode, actionable validate() errors (did-you-mean, conflict messages),
// sweep expansion, and run_experiment/run_sweep dispatch parity with the
// direct VidurSession paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "api/run.h"
#include "common/check.h"
#include "scenario/registry.h"

namespace vidur {
namespace {

// ------------------------------------------------------- spec round-trip

/// parse(serialize(s)) == s, via both JsonValue and text.
void expect_round_trip(const ExperimentSpec& spec) {
  const ExperimentSpec reparsed = ExperimentSpec::from_json(spec.to_json());
  EXPECT_EQ(reparsed, spec) << spec.to_json_string();
  EXPECT_EQ(ExperimentSpec::from_json_string(spec.to_json_string()), spec);
}

TEST(ExperimentSpecJson, DefaultSpecRoundTrips) {
  expect_round_trip(ExperimentSpec{});
}

TEST(ExperimentSpecJson, SimulateSpecRoundTrips) {
  ExperimentSpec spec;
  spec.with_name("rt-simulate")
      .with_model("llama2-70b")
      .with_sku("h100")
      .with_parallelism(4, 2, 3)
      .with_scheduler(SchedulerKind::kSarathi, 256, 1024)
      .with_routing(GlobalSchedulerKind::kPriority)
      .with_trace("arxiv4k", 2.5, 333)
      .with_slo(SloSpec{1.0, 0.1})
      .with_seed(0xdeadbeefULL);
  spec.deployment.async_pipeline_comm = true;
  spec.deployment.scheduler.max_tokens_per_iteration = 8192;
  spec.deployment.scheduler.watermark_fraction = 0.05;
  spec.tp_degrees = {1, 2, 4, 8};
  spec.num_threads = 3;
  expect_round_trip(spec);
}

TEST(ExperimentSpecJson, GammaArrivalRoundTrips) {
  ExperimentSpec spec;
  spec.workload.arrival = ArrivalSpec{ArrivalKind::kGamma, 3.25, 4.0};
  expect_round_trip(spec);
}

TEST(ExperimentSpecJson, DisaggSpecRoundTrips) {
  ExperimentSpec spec;
  spec.with_name("rt-disagg").with_parallelism(1, 1, 4);
  spec.deployment.disagg.num_prefill_replicas = 2;
  spec.deployment.disagg.transfer_bandwidth_gbps = 50.0;
  spec.deployment.disagg.transfer_latency = 1e-3;
  expect_round_trip(spec);
}

TEST(ExperimentSpecJson, ReactiveAutoscaleSpecRoundTrips) {
  ExperimentSpec spec;
  spec.with_name("rt-autoscale").with_parallelism(1, 1, 6);
  spec.deployment.autoscale.kind = AutoscalerKind::kReactive;
  spec.deployment.autoscale.min_replicas = 2;
  spec.deployment.autoscale.initial_replicas = 3;
  spec.deployment.autoscale.provision_delay = 12.0;
  spec.deployment.autoscale.warmup_delay = 3.5;
  spec.deployment.autoscale.decision_interval = 2.0;
  spec.deployment.autoscale.scale_down_cooldown = 45.0;
  spec.deployment.autoscale.max_scale_step = 2;
  spec.deployment.autoscale.target_load_per_replica = 9.0;
  spec.deployment.autoscale.scale_up_load = 15.0;
  spec.deployment.autoscale.scale_down_load = 2.0;
  expect_round_trip(spec);
}

TEST(ExperimentSpecJson, PredictiveAutoscaleRoundTripsEveryProfileKind) {
  const RateProfile profiles[] = {
      RateProfile::constant(),
      RateProfile::diurnal(600.0, 0.4, 1.6),
      RateProfile::ramp(0.5, 2.0, 300.0),
      RateProfile::spike(1.0, 4.0, 60.0, 120.0),
      RateProfile::piecewise(
          {RateStep{0.0, 0.5}, RateStep{120.0, 3.0}, RateStep{360.0, 1.0}}),
  };
  for (const RateProfile& profile : profiles) {
    ExperimentSpec spec;
    spec.deployment.autoscale.kind = AutoscalerKind::kPredictive;
    spec.deployment.autoscale.profile = profile;
    spec.deployment.autoscale.baseline_qps = 2.0;
    spec.deployment.autoscale.replica_capacity_qps = 2.5;
    spec.deployment.autoscale.headroom = 0.3;
    spec.deployment.autoscale.lookahead = 40.0;
    expect_round_trip(spec);
  }
}

TEST(ExperimentSpecJson, ScenarioWorkloadRoundTrips) {
  ExperimentSpec spec;
  spec.with_scenario("flash-crowd-mixed");
  expect_round_trip(spec);
  spec.with_scenario("diurnal-chat", 1234);
  expect_round_trip(spec);
}

TEST(ExperimentSpecJson, CapacitySearchSpecRoundTrips) {
  ExperimentSpec spec;
  spec.with_mode(ExperimentMode::kCapacitySearch);
  spec.search.skus = {"a100"};
  spec.search.tp_degrees = {1, 2};
  spec.search.pp_degrees = {1};
  spec.search.max_total_gpus = 8;
  spec.search.schedulers = {SchedulerKind::kVllm, SchedulerKind::kOrca};
  spec.search.batch_sizes = {64, 128};
  spec.search.sarathi_chunk_sizes = {512, 1024};
  spec.search.max_tokens_per_iteration = 2048;
  spec.search.global_scheduler = GlobalSchedulerKind::kLeastOutstanding;
  expect_round_trip(spec);
}

TEST(ExperimentSpecJson, ElasticPlanSpecRoundTrips) {
  ExperimentSpec spec;
  spec.with_mode(ExperimentMode::kElasticPlan)
      .with_scenario("flash-crowd-mixed");
  spec.deployment.autoscale.kind = AutoscalerKind::kReactive;
  spec.elastic.slo_target = 0.97;
  spec.elastic.max_replicas = 6;
  spec.elastic.burst_slots = 1;
  expect_round_trip(spec);
}

TEST(ExperimentSpecJson, SweepSpecRoundTrips) {
  ExperimentSpec spec;
  spec.sweep.sku = {"a100", "h100"};
  spec.sweep.tensor_parallel = {1, 2};
  spec.sweep.pipeline_parallel = {1, 2};
  spec.sweep.num_replicas = {1, 4};
  spec.sweep.scheduler = {"vllm", "sarathi"};
  spec.sweep.max_batch_size = {64, 256};
  spec.sweep.chunk_size = {512, 2048};
  spec.sweep.qps = {0.5, 1.5, 3.0};
  expect_round_trip(spec);
}

TEST(ExperimentSpecJson, ReferenceModeRoundTrips) {
  ExperimentSpec spec;
  spec.with_mode(ExperimentMode::kReference).with_seed(99);
  expect_round_trip(spec);
}

TEST(ExperimentSpecJson, DefaultSectionsAreOmittedFromOutput) {
  const JsonValue j = ExperimentSpec{}.to_json();
  // A default spec stays minimal: no disagg/autoscale/search/sweep noise.
  EXPECT_EQ(j.find("search"), nullptr);
  EXPECT_EQ(j.find("elastic"), nullptr);
  EXPECT_EQ(j.find("sweep"), nullptr);
  EXPECT_EQ(j.at("deployment").find("disagg"), nullptr);
  EXPECT_EQ(j.at("deployment").find("autoscale"), nullptr);
}

TEST(ExperimentSpecJson, ModeNamesRoundTrip) {
  for (const auto mode :
       {ExperimentMode::kSimulate, ExperimentMode::kReference,
        ExperimentMode::kCapacitySearch, ExperimentMode::kElasticPlan})
    EXPECT_EQ(experiment_mode_from_name(experiment_mode_name(mode)), mode);
  EXPECT_THROW(experiment_mode_from_name("simulat"), Error);
}

// ------------------------------------------------- actionable validation

/// Expect validate() to throw with `needle` in the message.
void expect_invalid(const ExperimentSpec& spec, const std::string& needle) {
  try {
    spec.validate();
    FAIL() << "expected vidur::Error containing '" << needle << "'";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(ExperimentSpecValidate, UnknownModelSuggestsClosest) {
  ExperimentSpec spec;
  spec.model = "llama-7b";
  expect_invalid(spec, "did you mean 'llama2-7b'?");
}

TEST(ExperimentSpecValidate, UnknownSkuSuggestsClosest) {
  ExperimentSpec spec;
  spec.deployment.sku_name = "a100x";
  expect_invalid(spec, "did you mean 'a100'?");
}

TEST(ExperimentSpecValidate, UnknownTraceSuggestsClosest) {
  ExperimentSpec spec;
  spec.workload.trace = "chat1M";
  expect_invalid(spec, "did you mean 'chat1m'?");
}

TEST(ExperimentSpecValidate, UnknownScenarioSuggestsClosest) {
  ExperimentSpec spec;
  spec.with_scenario("flashcrowd-mixed");
  expect_invalid(spec, "did you mean 'flash-crowd-mixed'?");
}

TEST(ExperimentSpecValidate, UncoveredTensorParallelNamesTpDegrees) {
  ExperimentSpec spec;
  spec.with_parallelism(8, 1, 1);
  expect_invalid(spec, "not covered by the session tp_degrees");
  // Extending tp_degrees fixes it.
  spec.tp_degrees = {1, 2, 4, 8};
  spec.model = "llama2-70b";  // 7B's 32 heads split by 8 is fine too
  EXPECT_NO_THROW(spec.validate());
}

TEST(ExperimentSpecValidate, DisaggPlusAutoscaleConflict) {
  ExperimentSpec spec;
  spec.with_parallelism(1, 1, 4);
  spec.deployment.disagg.num_prefill_replicas = 2;
  spec.deployment.autoscale.kind = AutoscalerKind::kReactive;
  expect_invalid(spec, "cannot be combined");
}

TEST(ExperimentSpecValidate, CapacitySearchRejectsScenarioWorkload) {
  ExperimentSpec spec;
  spec.with_mode(ExperimentMode::kCapacitySearch)
      .with_scenario("diurnal-chat");
  expect_invalid(spec, "needs a synthetic workload");
}

TEST(ExperimentSpecValidate, ElasticPlanNeedsScenarioAndPolicy) {
  ExperimentSpec spec;
  spec.with_mode(ExperimentMode::kElasticPlan);
  expect_invalid(spec, "set workload.scenario");
  spec.with_scenario("flash-crowd-mixed");
  expect_invalid(spec, "deployment.autoscale");
  spec.deployment.autoscale.kind = AutoscalerKind::kReactive;
  EXPECT_NO_THROW(spec.validate());
}

TEST(ExperimentSpecValidate, SweepAxesAreChecked) {
  ExperimentSpec spec;
  spec.sweep.sku = {"h100x"};
  expect_invalid(spec, "did you mean 'h100'?");

  spec = ExperimentSpec{};
  spec.sweep.scheduler = {"sarathi", "vlm"};
  expect_invalid(spec, "did you mean 'vllm'?");

  spec = ExperimentSpec{};
  spec.sweep.tensor_parallel = {1, 8};
  expect_invalid(spec, "tp_degrees");

  spec = ExperimentSpec{};
  spec.with_scenario("diurnal-chat");
  spec.sweep.qps = {1.0, 2.0};
  expect_invalid(spec, "carries its own arrival rate");
}

TEST(ExperimentSpecValidate, SyntheticWorkloadNeedsRequests) {
  ExperimentSpec spec;
  spec.workload.num_requests = 0;
  expect_invalid(spec, "num_requests");
}

TEST(ExperimentSpecJson, UnknownFieldsRejectedWithSuggestion) {
  try {
    ExperimentSpec::from_json_string(R"({"modle": "simulate"})");
    FAIL() << "expected vidur::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'mode'?"),
              std::string::npos);
  }
  try {
    ExperimentSpec::from_json_string(
        R"({"deployment": {"tensor_paralel": 2}})");
    FAIL() << "expected vidur::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'tensor_parallel'?"),
              std::string::npos);
  }
}

TEST(ExperimentSpecJson, IllTypedFieldsRejected) {
  EXPECT_THROW(ExperimentSpec::from_json_string(R"({"name": 3})"), Error);
  EXPECT_THROW(
      ExperimentSpec::from_json_string(R"({"deployment": {"sku": 1}})"),
      Error);
  EXPECT_THROW(ExperimentSpec::from_json_string(R"({"seed": "x"})"), Error);
}

TEST(ExperimentSpecJson, OutOfRangeIntFieldsRejectedNotTruncated) {
  try {
    ExperimentSpec::from_json_string(
        R"({"workload": {"num_requests": 5000000000}})");
    FAIL() << "expected vidur::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("out of the 32-bit integer range"),
              std::string::npos);
  }
}

TEST(ExperimentSpecValidate, CapacitySearchRejectsCustomArrival) {
  ExperimentSpec spec;
  spec.with_mode(ExperimentMode::kCapacitySearch);
  spec.workload.arrival.qps = 3.0;  // would be silently ignored otherwise
  expect_invalid(spec, "probes its own arrival rates");
  spec.workload.arrival = WorkloadSpec{}.arrival;
  EXPECT_NO_THROW(spec.validate());
}

// ------------------------------------------------------- sweep expansion

TEST(SweepAxes, ExpansionIsCartesianAndNamed) {
  ExperimentSpec spec;
  spec.with_name("grid");
  spec.sweep.qps = {1.0, 2.0};
  spec.sweep.max_batch_size = {64, 128, 256};
  EXPECT_EQ(spec.sweep.num_points(), 6u);

  const std::vector<ExperimentSpec> points = spec.expand_sweep();
  ASSERT_EQ(points.size(), 6u);
  for (const ExperimentSpec& p : points) {
    EXPECT_TRUE(p.sweep.empty());
    EXPECT_NE(p.name.find("grid["), std::string::npos);
    EXPECT_NE(p.name.find("qps="), std::string::npos);
    EXPECT_NE(p.name.find("bs="), std::string::npos);
  }
  // Unswept axes keep the base value; swept ones take each axis value.
  EXPECT_DOUBLE_EQ(points[0].workload.arrival.qps, 1.0);
  EXPECT_DOUBLE_EQ(points.back().workload.arrival.qps, 2.0);
  EXPECT_EQ(points[0].deployment.scheduler.max_batch_size, 64);
  EXPECT_EQ(points.back().deployment.scheduler.max_batch_size, 256);
  EXPECT_EQ(points[0].deployment.sku_name, spec.deployment.sku_name);
}

TEST(SweepAxes, SingleElementAxisStillPinsItsCoordinate) {
  // Regression: a one-value axis is a real sweep of one point, not "no
  // sweep" — the value must replace the base spec's.
  ExperimentSpec spec;
  spec.sweep.qps = {9.0};
  EXPECT_FALSE(spec.sweep.empty());
  const std::vector<ExperimentSpec> points = spec.expand_sweep();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].workload.arrival.qps, 9.0);
  EXPECT_NE(points[0].name.find("qps=9"), std::string::npos);
}

TEST(ExperimentSpecValidate, ScenarioWorkloadRejectsSyntheticOverrides) {
  ExperimentSpec spec;
  spec.with_scenario("diurnal-chat");
  spec.workload.arrival.qps = 5.0;  // would be silently ignored otherwise
  expect_invalid(spec, "carries its own traces and arrival process");
  spec.workload.arrival = WorkloadSpec{}.arrival;
  EXPECT_NO_THROW(spec.validate());
}

TEST(SweepAxes, NoAxesYieldsTheBaseSpec) {
  ExperimentSpec spec;
  spec.with_name("solo");
  const std::vector<ExperimentSpec> points = spec.expand_sweep();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].name, "solo");
  EXPECT_EQ(points[0], spec);
}

// ------------------------------------------------------------- dispatch

TEST(RunExperiment, ReproducesTheDirectSessionPath) {
  ExperimentSpec spec;
  spec.with_name("parity")
      .with_scheduler(SchedulerKind::kSarathi, 128, 512)
      .with_trace("chat1m", 1.5, 60)
      .with_seed(7);
  const ExperimentResult result = run_experiment(spec);

  // Hand-wired equivalent (the old programmatic path).
  VidurSession session(model_by_name("llama2-7b"));
  DeploymentConfig config;
  config.sku_name = "a100";
  config.scheduler.kind = SchedulerKind::kSarathi;
  config.scheduler.max_batch_size = 128;
  config.scheduler.chunk_size = 512;
  const Trace trace =
      generate_trace(trace_by_name("chat1m"),
                     ArrivalSpec{ArrivalKind::kPoisson, 1.5, 2.0}, 60, 7);
  const SimulationMetrics direct = session.simulate(config, trace);

  EXPECT_EQ(result.metrics.num_completed, direct.num_completed);
  EXPECT_DOUBLE_EQ(result.metrics.makespan, direct.makespan);
  EXPECT_DOUBLE_EQ(result.metrics.ttft.p90, direct.ttft.p90);
  EXPECT_DOUBLE_EQ(result.metrics.throughput_qps, direct.throughput_qps);
}

TEST(RunExperiment, ScenarioWorkloadCarriesTenantMetrics) {
  ExperimentSpec spec;
  spec.with_scenario("flash-crowd-mixed", /*num_requests=*/120)
      .with_routing(GlobalSchedulerKind::kPriority)
      .with_seed(3);
  const ExperimentResult result = run_experiment(spec);
  ASSERT_EQ(result.metrics.tenant_metrics.size(), 2u);
  EXPECT_EQ(result.metrics.tenant_metrics[0].info.name, "interactive");
  EXPECT_GE(result.metrics.aggregate_slo_attainment(), 0.0);
}

TEST(RunExperiment, ReferenceModeUsesTheGroundTruthExecutor) {
  ExperimentSpec spec;
  spec.with_trace("chat1m", 1.0, 40).with_seed(11);
  const ExperimentResult predicted = run_experiment(spec);
  spec.with_mode(ExperimentMode::kReference);
  const ExperimentResult real = run_experiment(spec);
  EXPECT_EQ(real.metrics.num_completed, 40u);
  // Different backends: metrics agree approximately, not bit-for-bit.
  EXPECT_NE(predicted.metrics.makespan, real.metrics.makespan);
}

TEST(RunExperiment, SessionOverloadRejectsModelMismatch) {
  VidurSession session(model_by_name("llama2-7b"));
  ExperimentSpec spec;
  spec.with_model("qwen-72b").with_parallelism(4, 1, 1);
  EXPECT_THROW(run_experiment(session, spec), Error);
}

TEST(RunExperiment, SessionOverloadRejectsUncoveredTensorParallel) {
  // The spec's own tp_degrees cover TP 8, but the caller-owned session
  // only profiled the defaults — fail with the actionable message, not an
  // internal estimator check much later.
  VidurSession session(model_by_name("llama2-7b"));
  ExperimentSpec spec;
  spec.with_parallelism(8, 1, 1).with_trace("chat1m", 1.0, 20);
  spec.tp_degrees = {1, 2, 4, 8};
  try {
    run_experiment(session, spec);
    FAIL() << "expected vidur::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("profiled tp_degrees"),
              std::string::npos);
  }
}

TEST(RunExperiment, RejectsSweepSpecs) {
  ExperimentSpec spec;
  spec.sweep.qps = {1.0, 2.0};
  EXPECT_THROW(run_experiment(spec), Error);
}

TEST(RunSweep, RunsEveryPointAndIsolatesFailures) {
  ExperimentSpec spec;
  spec.with_name("sweep")
      .with_model("llama2-70b")
      .with_trace("chat1m", 1.0, 30)
      .with_seed(5);
  // TP1 cannot fit a 70B model on one A100 (should fail, isolated); TP4
  // fits (should succeed).
  spec.sweep.tensor_parallel = {1, 4};
  spec.num_threads = 2;
  const std::vector<ExperimentResult> results = run_sweep(spec);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].failed());
  EXPECT_NE(results[0].error.find("does not fit"), std::string::npos);
  EXPECT_FALSE(results[1].failed());
  EXPECT_EQ(results[1].metrics.num_completed, 30u);
  EXPECT_EQ(results[1].spec.deployment.parallel.tensor_parallel, 4);
}

TEST(ExperimentResult, JsonCarriesBenchCompatibleFields) {
  ExperimentSpec spec;
  spec.with_trace("chat1m", 1.0, 30).with_seed(2);
  const ExperimentResult result = run_experiment(spec);
  const JsonValue j = result.to_json();
  EXPECT_EQ(j.at("num_completed").as_int(), 30);
  EXPECT_GT(j.at("makespan_s").as_double(), 0.0);
  EXPECT_GT(j.at("throughput_qps").as_double(), 0.0);
  EXPECT_GT(j.at("ttft_s").at("p90").as_double(), 0.0);
  EXPECT_EQ(j.at("fleet").at("fleet_slots").as_int(), 1);
  // And the wrapper round-trips through the parser.
  EXPECT_NO_THROW(JsonValue::parse(j.dump()));
}

}  // namespace
}  // namespace vidur
