// Tests for src/hardware: SKU registry and parallel-config arithmetic.
#include <gtest/gtest.h>

#include "common/check.h"
#include "hardware/parallel_config.h"
#include "hardware/sku.h"

namespace vidur {
namespace {

TEST(SkuRegistry, KnowsA100AndH100) {
  const SkuSpec a100 = sku_by_name("a100");
  const SkuSpec h100 = sku_by_name("h100");
  EXPECT_GT(h100.peak_fp16_tflops, a100.peak_fp16_tflops);
  EXPECT_GT(h100.hbm_bandwidth_gbps, a100.hbm_bandwidth_gbps);
  EXPECT_GT(h100.cost_per_hour, a100.cost_per_hour);
  EXPECT_EQ(a100.memory_bytes, h100.memory_bytes);  // both 80 GB
  EXPECT_EQ(builtin_sku_names().size(), 2u);
}

TEST(SkuRegistry, UnknownSkuThrows) { EXPECT_THROW(sku_by_name("tpu"), Error); }

TEST(SkuSpec, DerivedUnits) {
  const SkuSpec a100 = sku_by_name("a100");
  EXPECT_DOUBLE_EQ(a100.peak_flops(), 312.0e12);
  EXPECT_DOUBLE_EQ(a100.hbm_bytes_per_sec(), 2039.0e9);
}

TEST(SkuSpec, EveryBuiltinHasConsistentPowerModel) {
  for (const std::string& name : builtin_sku_names()) {
    const SkuSpec sku = sku_by_name(name);
    EXPECT_GT(sku.idle_watts, 0.0) << name;
    EXPECT_GT(sku.peak_watts, sku.idle_watts) << name;
    // Sanity bracket for datacenter GPUs: idle well under 200 W, TDP under
    // 1 kW — catches unit slips (kW vs W) in future registry edits.
    EXPECT_LT(sku.idle_watts, 200.0) << name;
    EXPECT_LT(sku.peak_watts, 1000.0) << name;
  }
}

TEST(ParallelConfig, GpuCounts) {
  const ParallelConfig p{4, 2, 3};
  EXPECT_EQ(p.gpus_per_replica(), 8);
  EXPECT_EQ(p.total_gpus(), 24);
}

TEST(ParallelConfig, ValidationRejectsZero) {
  ParallelConfig p{0, 1, 1};
  EXPECT_THROW(p.validate(), Error);
}

TEST(ParallelConfig, LayersPerStageSumsToModelLayers) {
  const ModelSpec m = model_by_name("internlm-20b");  // 60 layers
  for (int pp : {1, 2, 3, 4}) {
    const ParallelConfig p{1, pp, 1};
    int total = 0;
    for (StageId s = 0; s < pp; ++s) total += p.layers_per_stage(m, s);
    EXPECT_EQ(total, m.num_layers) << "pp=" << pp;
  }
}

TEST(ParallelConfig, LastStageAbsorbsRemainder) {
  ModelSpec m = model_by_name("llama2-7b");  // 32 layers
  const ParallelConfig p{1, 3, 1};
  EXPECT_EQ(p.layers_per_stage(m, 0), 10);
  EXPECT_EQ(p.layers_per_stage(m, 1), 10);
  EXPECT_EQ(p.layers_per_stage(m, 2), 12);
}

TEST(ParallelConfig, StageOutOfRangeThrows) {
  const ModelSpec m = model_by_name("llama2-7b");
  const ParallelConfig p{1, 2, 1};
  EXPECT_THROW(p.layers_per_stage(m, 2), Error);
  EXPECT_THROW(p.layers_per_stage(m, -1), Error);
}

}  // namespace
}  // namespace vidur
