// Tests for src/scheduler memory planning and the paged block manager.
#include <gtest/gtest.h>

#include "common/check.h"
#include "scheduler/memory.h"

namespace vidur {
namespace {

NodeSpec a100_node() {
  NodeSpec node;
  node.sku = sku_by_name("a100");
  return node;
}

TEST(MemoryPlanner, SevenBFitsOnOneA100) {
  const MemoryPlan plan =
      plan_memory(model_by_name("llama2-7b"), a100_node(), {1, 1, 1});
  EXPECT_GT(plan.num_kv_blocks, 0);
  // ~13.5 GB of weights.
  EXPECT_NEAR(static_cast<double>(plan.weight_bytes_per_gpu), 13.5e9, 1.5e9);
  // KV pool should hold on the order of 100K tokens.
  EXPECT_GT(plan.max_kv_tokens(), 50000);
  EXPECT_LT(plan.max_kv_tokens(), 300000);
}

TEST(MemoryPlanner, SeventyBDoesNotFitOnOneA100) {
  EXPECT_THROW(plan_memory(model_by_name("llama2-70b"), a100_node(),
                           {1, 1, 1}),
               Error);
}

TEST(MemoryPlanner, SeventyBFitsAtTp4) {
  const MemoryPlan plan =
      plan_memory(model_by_name("llama2-70b"), a100_node(), {4, 1, 1});
  EXPECT_GT(plan.num_kv_blocks, 0);
  EXPECT_NEAR(static_cast<double>(plan.weight_bytes_per_gpu), 35e9, 4e9);
}

TEST(MemoryPlanner, GqaGivesLlamaFarMoreKvThanQwen) {
  // The paper's Qwen-72B observation: 8x KV load => much smaller KV pool.
  const MemoryPlan llama =
      plan_memory(model_by_name("llama2-70b"), a100_node(), {4, 1, 1});
  const MemoryPlan qwen =
      plan_memory(model_by_name("qwen-72b"), a100_node(), {4, 1, 1});
  EXPECT_GT(llama.max_kv_tokens(), 4 * qwen.max_kv_tokens());
}

TEST(MemoryPlanner, PipelineSplitsWeightsAndKv) {
  const ModelSpec model = model_by_name("llama2-70b");
  const MemoryPlan tp4 = plan_memory(model, a100_node(), {4, 1, 1});
  const MemoryPlan tp2pp2 = plan_memory(model, a100_node(), {2, 2, 1});
  EXPECT_EQ(tp4.weight_bytes_per_gpu, tp2pp2.weight_bytes_per_gpu);
  // Same GPUs per replica -> comparable pools (not exact: sharding differs).
  EXPECT_GT(tp2pp2.num_kv_blocks, 0);
}

TEST(MemoryPlanner, HigherUtilizationGivesMoreBlocks) {
  const ModelSpec model = model_by_name("llama2-7b");
  const MemoryPlan low = plan_memory(model, a100_node(), {1, 1, 1}, 0.8);
  const MemoryPlan high = plan_memory(model, a100_node(), {1, 1, 1}, 0.95);
  EXPECT_GT(high.num_kv_blocks, low.num_kv_blocks);
}

TEST(MemoryPlanner, InvalidUtilizationThrows) {
  EXPECT_THROW(plan_memory(model_by_name("llama2-7b"), a100_node(),
                           {1, 1, 1}, 0.0),
               Error);
  EXPECT_THROW(plan_memory(model_by_name("llama2-7b"), a100_node(),
                           {1, 1, 1}, 1.2),
               Error);
}

// ------------------------------------------------------------ BlockManager

TEST(BlockManager, BlocksForTokensCeilDivision) {
  BlockManager mgr(100, 16);
  EXPECT_EQ(mgr.blocks_for_tokens(0), 0);
  EXPECT_EQ(mgr.blocks_for_tokens(1), 1);
  EXPECT_EQ(mgr.blocks_for_tokens(16), 1);
  EXPECT_EQ(mgr.blocks_for_tokens(17), 2);
}

TEST(BlockManager, GrowAndRelease) {
  BlockManager mgr(10, 16);
  EXPECT_TRUE(mgr.grow_to(1, 50));  // 4 blocks
  EXPECT_EQ(mgr.used_blocks(), 4);
  EXPECT_EQ(mgr.allocated_to(1), 4);
  EXPECT_TRUE(mgr.grow_to(1, 60));  // still 4 blocks
  EXPECT_EQ(mgr.used_blocks(), 4);
  EXPECT_TRUE(mgr.grow_to(1, 65));  // 5 blocks
  EXPECT_EQ(mgr.used_blocks(), 5);
  mgr.release(1);
  EXPECT_EQ(mgr.used_blocks(), 0);
  EXPECT_EQ(mgr.allocated_to(1), 0);
}

TEST(BlockManager, GrowToNeverShrinks) {
  BlockManager mgr(10, 16);
  EXPECT_TRUE(mgr.grow_to(1, 160));  // 10 blocks
  EXPECT_TRUE(mgr.grow_to(1, 16));   // no-op, keeps 10
  EXPECT_EQ(mgr.allocated_to(1), 10);
}

TEST(BlockManager, FailedGrowLeavesStateUntouched) {
  BlockManager mgr(4, 16);
  EXPECT_TRUE(mgr.grow_to(1, 48));   // 3 blocks
  EXPECT_FALSE(mgr.grow_to(2, 48));  // needs 3, only 1 free
  EXPECT_EQ(mgr.allocated_to(2), 0);
  EXPECT_EQ(mgr.used_blocks(), 3);
  EXPECT_TRUE(mgr.grow_to(2, 16));  // 1 block fits
}

TEST(BlockManager, UtilizationFraction) {
  BlockManager mgr(10, 16);
  EXPECT_DOUBLE_EQ(mgr.utilization(), 0.0);
  mgr.grow_to(1, 80);
  EXPECT_DOUBLE_EQ(mgr.utilization(), 0.5);
}

TEST(BlockManager, ReleaseUnknownIsNoop) {
  BlockManager mgr(10, 16);
  mgr.release(42);
  EXPECT_EQ(mgr.used_blocks(), 0);
}

TEST(BlockManager, MultipleRequestsShareThePool) {
  BlockManager mgr(10, 16);
  EXPECT_TRUE(mgr.grow_to(1, 64));  // 4
  EXPECT_TRUE(mgr.grow_to(2, 64));  // 4
  EXPECT_FALSE(mgr.grow_to(3, 64)); // only 2 free
  EXPECT_TRUE(mgr.grow_to(3, 32));  // 2 fit
  EXPECT_EQ(mgr.free_blocks(), 0);
  mgr.release(2);
  EXPECT_EQ(mgr.free_blocks(), 4);
}

TEST(BlockManager, InvalidConstructionThrows) {
  EXPECT_THROW(BlockManager(-1, 16), Error);
  EXPECT_THROW(BlockManager(10, 0), Error);
}

TEST(BlockManager, ZeroBlockManagerIsValidAndIdle) {
  // A replica with no KV pool (e.g. a degenerate plan) is representable:
  // utilization is 0, not NaN, and nothing can be allocated.
  BlockManager mgr(0, 16);
  EXPECT_DOUBLE_EQ(mgr.utilization(), 0.0);
  EXPECT_EQ(mgr.total_blocks(), 0);
  EXPECT_EQ(mgr.free_blocks(), 0);
  EXPECT_FALSE(mgr.grow_to(1, 16));
  EXPECT_EQ(mgr.allocated_to(1), 0);
  mgr.release(1);  // no-op
  EXPECT_DOUBLE_EQ(mgr.utilization(), 0.0);
}

TEST(BlockManager, GrowToExactBlockBoundary) {
  // Exactly filling the last block must not allocate a spare block, and
  // one token past the boundary must take a fresh block.
  BlockManager mgr(10, 16);
  EXPECT_TRUE(mgr.grow_to(1, 32));  // exactly 2 blocks
  EXPECT_EQ(mgr.allocated_to(1), 2);
  EXPECT_TRUE(mgr.grow_to(1, 33));  // boundary + 1 -> 3 blocks
  EXPECT_EQ(mgr.allocated_to(1), 3);
  EXPECT_TRUE(mgr.grow_to(1, 48));  // back on a boundary, still 3
  EXPECT_EQ(mgr.allocated_to(1), 3);
  EXPECT_EQ(mgr.used_blocks(), 3);
}

TEST(BlockManager, CachedPoolAccounting) {
  BlockManager mgr(10, 16);
  EXPECT_TRUE(mgr.grow_to(1, 64));  // 4 blocks
  mgr.transfer_to_cache(1, 3);
  // The cached pool still counts as used (KV pressure sees retained KV).
  EXPECT_EQ(mgr.cached_blocks(), 3);
  EXPECT_EQ(mgr.used_blocks(), 4);
  EXPECT_EQ(mgr.allocated_to(1), 1);
  mgr.release(1);  // frees only the request's remaining block
  EXPECT_EQ(mgr.used_blocks(), 3);
  EXPECT_EQ(mgr.cached_blocks(), 3);
  mgr.release_cached(2);
  EXPECT_EQ(mgr.cached_blocks(), 1);
  EXPECT_EQ(mgr.used_blocks(), 1);
  mgr.release_cached(1);
  EXPECT_EQ(mgr.used_blocks(), 0);
  EXPECT_DOUBLE_EQ(mgr.utilization(), 0.0);
}

}  // namespace
}  // namespace vidur
