// Tests for src/operators: the taxonomy (paper §4.3), TP sharding shape
// arithmetic, and the ground-truth dispatch.
#include <gtest/gtest.h>

#include "operators/ground_truth.h"
#include "operators/op_shapes.h"
#include "operators/op_type.h"

namespace vidur {
namespace {

TEST(OpTaxonomy, EveryOpHasAClassAndName) {
  for (OpType op : all_op_types()) {
    EXPECT_NO_THROW(op_class(op));
    EXPECT_EQ(op_from_name(op_name(op)), op);
  }
  EXPECT_EQ(all_op_types().size(), 15u);
}

TEST(OpTaxonomy, ClassificationMatchesPaper) {
  // Paper §4.3: linear/activation ops are token-level, attention is
  // sequence-level, collectives are communication.
  EXPECT_EQ(op_class(OpType::kMlpGateUpProj), OpClass::kTokenLevel);
  EXPECT_EQ(op_class(OpType::kRmsNorm), OpClass::kTokenLevel);
  EXPECT_EQ(op_class(OpType::kAttnPrefill), OpClass::kSequenceLevel);
  EXPECT_EQ(op_class(OpType::kAttnDecode), OpClass::kSequenceLevel);
  EXPECT_EQ(op_class(OpType::kAllReduce), OpClass::kCommunication);
  EXPECT_EQ(op_class(OpType::kSendRecv), OpClass::kCommunication);
}

TEST(OpTaxonomy, GemmFlags) {
  EXPECT_TRUE(is_gemm(OpType::kAttnQkvProj));
  EXPECT_TRUE(is_gemm(OpType::kLmHead));
  EXPECT_FALSE(is_gemm(OpType::kRmsNorm));
  EXPECT_FALSE(is_gemm(OpType::kAttnPrefill));
}

TEST(OpTaxonomy, UnknownNameThrows) {
  EXPECT_THROW(op_from_name("conv2d"), Error);
}

TEST(OpInput, FeatureVectorsPerClass) {
  OpInput in;
  in.tokens = 128;
  in.q_tokens = 64;
  in.kv_tokens = 512;
  in.batch_size = 8;
  in.bytes = 1 << 20;
  EXPECT_EQ(in.features(OpType::kMlpDownProj),
            (std::vector<double>{128.0}));
  EXPECT_EQ(in.features(OpType::kAttnPrefill),
            (std::vector<double>{64.0, 512.0, 64.0 * 512.0 * 1e-6}));
  EXPECT_EQ(in.features(OpType::kAttnDecode),
            (std::vector<double>{512.0, 8.0}));
  EXPECT_EQ(in.features(OpType::kAllReduce),
            (std::vector<double>{1048576.0}));
}

// ---------------------------------------------------------------- shapes

TEST(OpShapes, QkvProjShapeLlama7bTp1) {
  const OpShapes s(model_by_name("llama2-7b"), 1);
  const GemmShape g = s.gemm_shape(OpType::kAttnQkvProj, 100);
  EXPECT_EQ(g.m, 100);
  EXPECT_EQ(g.k, 4096);
  EXPECT_EQ(g.n, 4096 + 2 * 4096);  // MHA: q dim + k + v
}

TEST(OpShapes, QkvProjShapeLlama70bGqa) {
  const OpShapes s(model_by_name("llama2-70b"), 1);
  const GemmShape g = s.gemm_shape(OpType::kAttnQkvProj, 10);
  EXPECT_EQ(g.k, 8192);
  EXPECT_EQ(g.n, 8192 + 2 * 8 * 128);  // 8 KV heads only
}

TEST(OpShapes, TensorParallelShardsColumnsAndRows) {
  const ModelSpec m = model_by_name("llama2-7b");
  const OpShapes tp1(m, 1), tp4(m, 4);
  EXPECT_EQ(tp4.gemm_shape(OpType::kMlpGateUpProj, 7).n,
            tp1.gemm_shape(OpType::kMlpGateUpProj, 7).n / 4);
  EXPECT_EQ(tp4.gemm_shape(OpType::kMlpDownProj, 7).k,
            tp1.gemm_shape(OpType::kMlpDownProj, 7).k / 4);
  EXPECT_EQ(tp4.gemm_shape(OpType::kAttnOutProj, 7).k,
            tp1.gemm_shape(OpType::kAttnOutProj, 7).k / 4);
}

TEST(OpShapes, GqaKvHeadsReplicateWhenTpExceedsThem) {
  // LLaMA2-70B has 8 KV heads; at TP4 each GPU holds 2, and the KV shard
  // stops shrinking once tp > kv heads.
  const ModelSpec m = model_by_name("llama2-70b");
  EXPECT_EQ(OpShapes(m, 4).kv_heads_per_gpu(), 2);
  EXPECT_EQ(OpShapes(m, 8).kv_heads_per_gpu(), 1);
  EXPECT_EQ(OpShapes(m, 16).kv_heads_per_gpu(), 1);
}

TEST(OpShapes, LmHeadIsVocabParallel) {
  const ModelSpec m = model_by_name("llama2-7b");
  const OpShapes tp2(m, 2);
  EXPECT_EQ(tp2.gemm_shape(OpType::kLmHead, 3).n, 16000);
}

TEST(OpShapes, ElementwiseBytesScaleWithTokens) {
  const OpShapes s(model_by_name("llama2-7b"), 1);
  for (OpType op : {OpType::kRmsNorm, OpType::kActMul, OpType::kResidualAdd,
                    OpType::kRotaryEmbed, OpType::kKvCacheSave,
                    OpType::kEmbedLookup}) {
    EXPECT_EQ(s.elementwise_bytes(op, 20), 2 * s.elementwise_bytes(op, 10))
        << op_name(op);
  }
}

TEST(OpShapes, KvCacheSaveScalesWithKvShard) {
  // GQA: at TP1, LLaMA2-70B writes only 8 heads of KV per token.
  const OpShapes l70(model_by_name("llama2-70b"), 1);
  EXPECT_EQ(l70.elementwise_bytes(OpType::kKvCacheSave, 1),
            2 * 8 * 128 * 2);
}

TEST(OpShapes, WrongOpKindThrows) {
  const OpShapes s(model_by_name("llama2-7b"), 1);
  EXPECT_THROW(s.gemm_shape(OpType::kRmsNorm, 1), Error);
  EXPECT_THROW(s.elementwise_bytes(OpType::kAttnQkvProj, 1), Error);
}

TEST(OpShapes, InvalidTpThrows) {
  EXPECT_THROW(OpShapes(model_by_name("llama2-7b"), 3), Error);  // 32 % 3
  EXPECT_THROW(OpShapes(model_by_name("llama2-7b"), 0), Error);
}

TEST(OpShapes, CommunicationBytes) {
  const OpShapes s(model_by_name("llama2-7b"), 2);
  EXPECT_EQ(s.allreduce_bytes(10), 10 * 4096 * 2);
  EXPECT_EQ(s.send_recv_bytes(10), 10 * 4096 * 2);
}

// ----------------------------------------------------------- ground truth

class GroundTruthTest : public ::testing::TestWithParam<std::string> {};

TEST_P(GroundTruthTest, AllOpsProducePositiveTimes) {
  NodeSpec node;
  node.sku = sku_by_name("a100");
  const OpShapes shapes(model_by_name(GetParam()), 2);
  for (OpType op : all_op_types()) {
    OpInput in;
    in.tokens = 64;
    in.q_tokens = 64;
    in.kv_tokens = 256;
    in.batch_size = 4;
    in.bytes = 1 << 20;
    in.world = 2;
    EXPECT_GT(ground_truth_op_time(node, shapes, op, in), 0.0)
        << op_name(op);
  }
}

INSTANTIATE_TEST_SUITE_P(Models, GroundTruthTest,
                         ::testing::Values("llama2-7b", "internlm-20b",
                                           "llama2-70b", "qwen-72b"));

TEST(GroundTruth, TokenOpsIndependentOfHistory) {
  // Paper §4.3: token-level operator runtime depends only on token count.
  NodeSpec node;
  node.sku = sku_by_name("a100");
  const OpShapes shapes(model_by_name("llama2-7b"), 1);
  OpInput a, b;
  a.tokens = b.tokens = 77;
  a.kv_tokens = 10;
  b.kv_tokens = 100000;  // ignored by token-level ops
  EXPECT_DOUBLE_EQ(
      ground_truth_op_time(node, shapes, OpType::kMlpDownProj, a),
      ground_truth_op_time(node, shapes, OpType::kMlpDownProj, b));
}

}  // namespace
}  // namespace vidur
