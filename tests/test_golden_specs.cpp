// Golden-spec regression tests: the committed heterogeneous specs replay
// end to end through run_experiment() and their headline metrics must stay
// within tolerance of the committed goldens. The goldens pin down the
// *behavior* the specs demonstrate — the mixed-SKU fleet saving GPU-hours
// at intact SLO attainment, the disaggregated pools scaling on independent
// signals — so a regression in routing, scaling, or billing shows up as a
// drifted number, not a silently different story.
//
// Tolerances are relative (kTol) for continuous metrics; structural facts
// (request counts, which pools scaled) are exact.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "api/run.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"

namespace vidur {
namespace {

constexpr double kTol = 0.02;  ///< 2% relative tolerance

ExperimentSpec load_spec(const std::string& name) {
  const std::string path = std::string(VIDUR_SPEC_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return ExperimentSpec::from_json_string(text.str());
}

void expect_near_rel(double actual, double golden, const char* what) {
  EXPECT_NEAR(actual, golden, std::abs(golden) * kTol + 1e-12) << what;
}

const PoolScalingReport& pool_named(
    const std::vector<PoolScalingReport>& pools, const std::string& name) {
  for (const PoolScalingReport& p : pools)
    if (p.name == name) return p;
  ADD_FAILURE() << "missing pool report '" << name << "'";
  static const PoolScalingReport kEmpty;
  return kEmpty;
}

TEST(GoldenSpecs, ElasticHeteroPlanMatchesGoldens) {
  const ExperimentSpec spec = load_spec("elastic-hetero.json");
  EXPECT_NO_THROW(spec.validate());
  const ExperimentResult result = run_experiment(spec);
  ASSERT_FALSE(result.failed()) << result.error;
  const ElasticPlanResult& plan = result.elastic;

  // Static peak: both pools pinned at their ceilings (3 + 2 slots).
  EXPECT_EQ(plan.static_peak.fleet_size, 5);
  EXPECT_TRUE(plan.static_feasible);
  expect_near_rel(plan.static_peak.gpu_hours, 0.151018,
                  "static peak GPU-hours");
  expect_near_rel(plan.static_peak.cost_usd, 0.754182, "static peak cost");
  EXPECT_EQ(plan.static_peak.slo_attainment, 1.0);

  // Autoscaled: the same trace at well under half the GPU-hours, with SLO
  // attainment intact, and both SKU pools demonstrably elastic.
  expect_near_rel(plan.autoscaled.gpu_hours, 0.081249,
                  "autoscaled GPU-hours");
  expect_near_rel(plan.autoscaled.cost_usd, 0.430320, "autoscaled cost");
  expect_near_rel(plan.cost_savings_pct, 46.20, "GPU-hour savings pct");
  EXPECT_GE(plan.autoscaled.slo_attainment, 0.99);
  ASSERT_EQ(plan.autoscaled.pools.size(), 2u);
  const PoolScalingReport& a100 =
      pool_named(plan.autoscaled.pools, "a100-pool");
  const PoolScalingReport& h100 =
      pool_named(plan.autoscaled.pools, "h100-pool");
  EXPECT_EQ(a100.sku, "a100");
  EXPECT_EQ(h100.sku, "h100");
  EXPECT_GE(a100.num_scale_up_events + h100.num_scale_up_events, 2);
  expect_near_rel(a100.gpu_hours, 0.041330, "a100 pool GPU-hours");
  expect_near_rel(h100.gpu_hours, 0.039920, "h100 pool GPU-hours");
  // The per-pool breakout must add up to the fleet totals.
  EXPECT_NEAR(a100.gpu_hours + h100.gpu_hours, plan.autoscaled.gpu_hours,
              1e-9);
  EXPECT_NEAR(a100.cost_usd + h100.cost_usd, plan.autoscaled.cost_usd, 1e-9);
}

TEST(GoldenSpecs, DisaggAutoscaleSimulationMatchesGoldens) {
  const ExperimentSpec spec = load_spec("disagg-autoscale.json");
  EXPECT_NO_THROW(spec.validate());
  const ExperimentResult result = run_experiment(spec);
  ASSERT_FALSE(result.failed()) << result.error;
  const SimulationMetrics& m = result.metrics;

  EXPECT_EQ(m.num_requests, 500u);
  EXPECT_EQ(m.num_completed, 500u);
  expect_near_rel(m.makespan, 110.7247, "makespan");
  expect_near_rel(m.throughput_qps, 4.5157, "throughput");
  expect_near_rel(m.ttft.p90, 1.66155, "TTFT p90");
  expect_near_rel(m.tbt.p99, 0.0357540, "TBT p99");
  expect_near_rel(m.aggregate_slo_attainment(), 0.956, "SLO attainment");

  // The fleet scaled, and both roles scaled *independently*: the prefill
  // pool on queue depth and the decode pool on KV pressure each ordered
  // capacity during the flash crowd.
  ASSERT_TRUE(m.scaling.enabled);
  expect_near_rel(m.scaling.gpu_hours, 0.102750, "fleet GPU-hours");
  ASSERT_EQ(m.scaling.pools.size(), 2u);
  const PoolScalingReport& prefill =
      pool_named(m.scaling.pools, "prefill-pool");
  const PoolScalingReport& decode =
      pool_named(m.scaling.pools, "decode-pool");
  EXPECT_EQ(prefill.role, "prefill");
  EXPECT_EQ(decode.role, "decode");
  EXPECT_GE(prefill.num_scale_up_events, 1);
  EXPECT_GE(decode.num_scale_up_events, 1);
  EXPECT_EQ(prefill.num_scale_up_events, 2);
  EXPECT_EQ(decode.num_scale_up_events, 2);
  expect_near_rel(prefill.gpu_hours, 0.047424, "prefill pool GPU-hours");
  expect_near_rel(decode.gpu_hours, 0.055327, "decode pool GPU-hours");
  EXPECT_NEAR(prefill.gpu_hours + decode.gpu_hours, m.scaling.gpu_hours,
              1e-9);
}

TEST(GoldenSpecs, SessionChatPrefixCacheSavesPrefillWork) {
  // The committed prefix-cache spec: multi-turn sessions over a shared
  // system prompt, cache-aware routing across two replicas. The golden
  // fact is the subsystem's reason to exist — a large, exactly-accounted
  // fraction of prefill work served from cache.
  const ExperimentSpec spec = load_spec("session-chat.json");
  EXPECT_NO_THROW(spec.validate());
  const ExperimentResult result = run_experiment(spec);
  ASSERT_FALSE(result.failed()) << result.error;
  const SimulationMetrics& m = result.metrics;

  EXPECT_EQ(m.num_requests, 300u);
  EXPECT_EQ(m.num_completed, 300u);
  ASSERT_TRUE(m.prefix_cache.enabled);
  EXPECT_EQ(m.prefix_cache.lookups, 300);
  EXPECT_EQ(m.prefix_cache.hits + m.prefix_cache.misses,
            m.prefix_cache.lookups);
  EXPECT_GT(m.prefix_cache.hits, 0);

  // >= 30% of the workload's total prefill tokens come from the cache
  // (the acceptance gate bench_kvcache enforces, replayed here exactly).
  const Scenario scenario = [&] {
    Scenario s = scenario_by_name("session-chat");
    s.num_requests = spec.workload.num_requests;
    return s;
  }();
  TokenCount total_prefill = 0;
  for (const Request& r : generate_scenario_trace(scenario, spec.seed))
    total_prefill += r.prefill_tokens;
  ASSERT_GT(total_prefill, 0);
  EXPECT_GE(static_cast<double>(m.prefix_cache.tokens_saved),
            0.30 * static_cast<double>(total_prefill));

  // The result JSON carries the cache section with the same numbers.
  const JsonValue j = result.to_json();
  const JsonValue* pc = j.find("prefix_cache");
  ASSERT_NE(pc, nullptr);
  EXPECT_EQ(pc->at("lookups").as_int(), m.prefix_cache.lookups);
  EXPECT_EQ(pc->at("prefill_tokens_saved").as_int(),
            m.prefix_cache.tokens_saved);
  ASSERT_NE(pc->find("by_tenant"), nullptr);
}

TEST(GoldenSpecs, SpotChurnSurvivesPreemptionWithoutLosingRequests) {
  // The committed chaos spec: multi-turn chat + background batch over an
  // elastic 3-replica pool that loses capacity to two spot-preemption
  // windows (one abrupt 2-replica reclaim, one with a drain notice). The
  // golden facts are the resilience story: every reclaim is repaired by
  // the autoscaler (MTTR > 0), failed work retries instead of vanishing,
  // the shed floor drops only low-priority traffic, and no request is
  // ever lost or double-completed.
  const ExperimentSpec spec = load_spec("spot-churn.json");
  EXPECT_NO_THROW(spec.validate());
  const ExperimentResult result = run_experiment(spec);
  ASSERT_FALSE(result.failed()) << result.error;
  const SimulationMetrics& m = result.metrics;

  EXPECT_EQ(m.num_requests, 400u);
  ASSERT_TRUE(m.resilience.enabled);
  // Request conservation: every arrival either completed or was shed by
  // the capacity floor; nothing lost, nothing duplicated.
  EXPECT_EQ(m.resilience.num_lost, 0);
  EXPECT_EQ(static_cast<std::int64_t>(m.num_completed) +
                m.resilience.num_shed,
            static_cast<std::int64_t>(m.num_requests));
  EXPECT_EQ(m.num_completed, 372u);

  // Fault + recovery structure: three replicas reclaimed across the two
  // windows, the abrupt kill forced at least one restart-with-backoff
  // (re-prefilling the tokens it lost), and the autoscaler closed both
  // first-window capacity holes.
  EXPECT_EQ(m.resilience.num_crashes, 0);
  EXPECT_EQ(m.resilience.num_spot_reclaims, 3);
  EXPECT_GE(m.resilience.num_retries, 1);
  EXPECT_GT(m.resilience.tokens_reprefilled, 0);
  EXPECT_EQ(m.resilience.num_repairs, 2);
  EXPECT_GT(m.resilience.mttr_s, 0.0);
  expect_near_rel(m.resilience.mttr_s, 53.5, "MTTR");

  // SLO attainment stays in the pinned band despite the churn, and the
  // blame split shows untouched requests were unharmed.
  expect_near_rel(m.aggregate_slo_attainment(), 0.93, "SLO attainment");
  EXPECT_GE(m.aggregate_slo_attainment(), 0.90);
  EXPECT_EQ(m.resilience.slo_attainment_clean, 1.0);

  // Headline throughput numbers hold.
  expect_near_rel(m.makespan, 219.9553, "makespan");
  EXPECT_TRUE(m.prefix_cache.enabled);
  EXPECT_GT(m.prefix_cache.hits, 0);

  // The result JSON carries the resilience section with the same numbers.
  const JsonValue j = result.to_json();
  const JsonValue* res = j.find("resilience");
  ASSERT_NE(res, nullptr);
  EXPECT_EQ(res->at("spot_reclaims").as_int(),
            m.resilience.num_spot_reclaims);
  EXPECT_EQ(res->at("lost").as_int(), 0);
  EXPECT_EQ(res->at("repairs").as_int(), m.resilience.num_repairs);
  ASSERT_NE(res->find("mttr_s"), nullptr);
}

TEST(GoldenSpecs, GoldenSpecsAreCanonicallySerialized) {
  // The committed files must be the exact fixed point of the serializer,
  // so hand edits that survive a round trip cannot drift the formatting.
  for (const char* name : {"elastic-hetero.json", "disagg-autoscale.json",
                           "session-chat.json", "spot-churn.json"}) {
    const std::string path = std::string(VIDUR_SPEC_DIR) + "/" + name;
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    std::string committed = text.str();
    // Tolerate exactly one trailing newline.
    if (!committed.empty() && committed.back() == '\n') committed.pop_back();
    const ExperimentSpec spec = ExperimentSpec::from_json_string(committed);
    EXPECT_EQ(spec.to_json_string(), committed)
        << name << " is not canonically serialized; regenerate it with "
        << "ExperimentSpec::to_json_string()";
  }
}

}  // namespace
}  // namespace vidur
