// Tests for src/common: RNG determinism and distribution moments, streaming
// stats, quantiles, CSV round-trips, table formatting, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "common/check.h"
#include "common/csv.h"
#include "common/json.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace vidur {
namespace {

// ------------------------------------------------------------------ check

TEST(Check, ThrowsWithExpressionAndMessage) {
  try {
    VIDUR_CHECK_MSG(1 == 2, "custom context " << 42);
    FAIL() << "expected vidur::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("custom context 42"),
              std::string::npos);
  }
}

TEST(Check, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(VIDUR_CHECK(2 + 2 == 4));
}

// -------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng a(7);
  Rng child = a.fork();
  const auto first = child();
  // Consuming more of the parent must not affect an already-forked child.
  Rng b(7);
  Rng child2 = b.fork();
  (void)b();
  (void)b();
  EXPECT_EQ(child2(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(5, 4), Error);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), Error);
}

TEST(Rng, LognormalMedianIsExpMu) {
  Rng rng(17);
  SampleSeries s;
  for (int i = 0; i < 100000; ++i) s.add(rng.lognormal(2.0, 0.7));
  EXPECT_NEAR(s.median(), std::exp(2.0), 0.15);
}

TEST(Rng, GammaMomentsMatch) {
  Rng rng(19);
  RunningStats stats;
  const double shape = 2.5, scale = 1.5;
  for (int i = 0; i < 200000; ++i) stats.add(rng.gamma(shape, scale));
  EXPECT_NEAR(stats.mean(), shape * scale, 0.05);
  EXPECT_NEAR(stats.variance(), shape * scale * scale, 0.2);
}

TEST(Rng, GammaSmallShape) {
  Rng rng(23);
  RunningStats stats;
  const double shape = 0.4, scale = 2.0;
  for (int i = 0; i < 200000; ++i) {
    const double g = rng.gamma(shape, scale);
    EXPECT_GT(g, 0.0);
    stats.add(g);
  }
  EXPECT_NEAR(stats.mean(), shape * scale, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 100000.0, 0.3, 0.01);
}

// ------------------------------------------------------------------ stats

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isinf(s.min()));
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(31);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal();
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SampleSeries, ExactQuantiles) {
  SampleSeries s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-12);
  EXPECT_NEAR(s.quantile(0.90), 90.1, 1e-9);
}

TEST(SampleSeries, QuantileOfSingleElement) {
  SampleSeries s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.99), 7.0);
}

TEST(SampleSeries, QuantileEmptyThrows) {
  SampleSeries s;
  EXPECT_THROW(s.quantile(0.5), Error);
}

TEST(SampleSeries, QuantileCacheInvalidatedByAdd) {
  SampleSeries s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 2.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 10.0);
}

TEST(SampleSeries, SummaryFields) {
  SampleSeries s;
  for (int i = 1; i <= 1000; ++i) s.add(static_cast<double>(i));
  const Summary sum = Summary::of(s);
  EXPECT_EQ(sum.count, 1000u);
  EXPECT_NEAR(sum.mean, 500.5, 1e-9);
  EXPECT_NEAR(sum.p50, 500.5, 1e-9);
  EXPECT_NEAR(sum.p99, 990.01, 0.1);
  EXPECT_DOUBLE_EQ(sum.min, 1.0);
  EXPECT_DOUBLE_EQ(sum.max, 1000.0);
}

// -------------------------------------------------------------------- csv

TEST(Csv, RoundTrip) {
  CsvWriter w({"a", "b", "c"});
  w.add_row({"1", "x", "2.5"});
  w.add_row({"2", "y", "3.5"});
  const CsvDocument doc = parse_csv(w.str());
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.column("b"), 1u);
  EXPECT_EQ(doc.rows[1][doc.column("c")], "3.5");
}

TEST(Csv, RejectsRaggedRows) {
  EXPECT_THROW(parse_csv("a,b\n1,2,3\n"), Error);
}

TEST(Csv, RejectsWrongWidthRow) {
  CsvWriter w({"a", "b"});
  EXPECT_THROW(w.add_row({"only-one"}), Error);
}

TEST(Csv, MissingColumnThrows) {
  const CsvDocument doc = parse_csv("a,b\n1,2\n");
  EXPECT_THROW(doc.column("zzz"), Error);
}

TEST(Csv, EmptyTrailingFieldParsed) {
  const CsvDocument doc = parse_csv("a,b\n1,\n");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][1], "");
}

// ------------------------------------------------------------------ table

TEST(ConsoleTable, AlignsColumns) {
  ConsoleTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2"});
  const std::string s = t.str();
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("| name"), std::string::npos);
}

TEST(ConsoleTable, RowWidthMismatchThrows) {
  ConsoleTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), Error);
}

TEST(Format, Percent) { EXPECT_EQ(fmt_percent(0.0123), "1.23%"); }

TEST(Format, Double) { EXPECT_EQ(fmt_double(1.23456, 2), "1.23"); }

// ------------------------------------------------------------ thread pool

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

// ------------------------------------------------------------------- json

TEST(Json, BuildsOrderedObjectsAndArrays) {
  JsonValue doc = JsonValue::object();
  doc.set("b", 1);
  doc.set("a", 2.5);
  doc.set("flag", true);
  doc.set("label", "x");
  JsonValue arr = JsonValue::array();
  arr.push(1).push(2).push(3);
  doc.set("items", std::move(arr));

  // Insertion order is preserved (not sorted).
  EXPECT_EQ(doc.members()[0].first, "b");
  EXPECT_EQ(doc.members()[1].first, "a");
  EXPECT_EQ(doc.at("b").as_int(), 1);
  EXPECT_DOUBLE_EQ(doc.at("a").as_double(), 2.5);
  EXPECT_TRUE(doc.at("flag").as_bool());
  EXPECT_EQ(doc.at("label").as_string(), "x");
  EXPECT_EQ(doc.at("items").size(), 3u);
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW(doc.at("missing"), Error);
}

TEST(Json, ParseDumpRoundTripPreservesStructure) {
  const std::string text = R"({
  "name": "x",
  "count": 42,
  "rate": 1.5,
  "on": true,
  "off": false,
  "none": null,
  "nested": {"list": [1, 2.25, "s"]}
})";
  const JsonValue parsed = JsonValue::parse(text);
  // Round trip through dump() and back is identity.
  EXPECT_EQ(JsonValue::parse(parsed.dump()), parsed);
  EXPECT_EQ(parsed.at("count").as_int(), 42);
  EXPECT_TRUE(parsed.at("none").is_null());
  EXPECT_EQ(parsed.at("nested").at("list").items()[2].as_string(), "s");
}

TEST(Json, IntegersRoundTripLosslessly) {
  // Values above 2^53 would be mangled as doubles; ints must stay ints.
  const std::int64_t big = (std::int64_t{1} << 60) + 12345;
  JsonValue doc = JsonValue::object();
  doc.set("seed", big);
  EXPECT_EQ(JsonValue::parse(doc.dump()).at("seed").as_int(), big);
}

TEST(Json, DoublesRoundTripExactly) {
  for (const double v : {0.1, 1.0 / 3.0, 1e-300, 123456.789,
                         0.30000000000000004}) {
    JsonValue doc = JsonValue::array();
    doc.push(v);
    EXPECT_EQ(JsonValue::parse(doc.dump()).items()[0].as_double(), v);
  }
}

TEST(Json, StringEscapesRoundTrip) {
  const std::string nasty = "a\"b\\c\nd\te\rf\x01g";
  JsonValue doc = JsonValue::array();
  doc.push(nasty);
  EXPECT_EQ(JsonValue::parse(doc.dump()).items()[0].as_string(), nasty);
}

TEST(Json, ParseUnicodeEscapes) {
  // BMP codepoint and a surrogate pair (U+1F600).
  const JsonValue v = JsonValue::parse(R"(["é", "😀"])");
  EXPECT_EQ(v.items()[0].as_string(), "\xc3\xa9");
  EXPECT_EQ(v.items()[1].as_string(), "\xf0\x9f\x98\x80");
}

TEST(Json, ParseErrorsCarryLineAndColumn) {
  try {
    JsonValue::parse("{\n  \"a\": 1,\n  oops\n}");
    FAIL() << "expected vidur::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
  EXPECT_THROW(JsonValue::parse("{\"a\": 1} trailing"), Error);
  EXPECT_THROW(JsonValue::parse("{\"a\": 1 \"b\": 2}"), Error);
  EXPECT_THROW(JsonValue::parse("[1, 2"), Error);
  EXPECT_THROW(JsonValue::parse("{\"a\": 1, \"a\": 2}"), Error);
  EXPECT_THROW(JsonValue::parse(""), Error);
}

TEST(Json, DeepNestingFailsInsteadOfOverflowingTheStack) {
  const std::string deep(100000, '[');
  try {
    JsonValue::parse(deep);
    FAIL() << "expected vidur::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("nesting"), std::string::npos);
  }
  // 256 levels are within the cap.
  std::string ok(200, '[');
  ok += "1";
  ok += std::string(200, ']');
  EXPECT_NO_THROW(JsonValue::parse(ok));
}

TEST(Json, TypeMismatchesThrow) {
  JsonValue num(3);
  EXPECT_THROW(num.as_string(), Error);
  EXPECT_THROW(num.set("k", 1), Error);
  EXPECT_THROW(num.push(1), Error);
  JsonValue dbl(3.5);
  EXPECT_THROW(dbl.as_int(), Error);  // as_int is exact-integers-only
  EXPECT_DOUBLE_EQ(dbl.as_double(), 3.5);
  EXPECT_DOUBLE_EQ(num.as_double(), 3.0);  // ints widen to double
}

TEST(Json, OverflowingNumberLiteralsRejected) {
  // A typo'd exponent must fail loudly, not silently become infinity.
  EXPECT_THROW(JsonValue::parse("[1e400]"), Error);
  EXPECT_THROW(JsonValue::parse("[-1e400]"), Error);
  // Underflow collapses to a finite tiny value and stays accepted.
  EXPECT_NO_THROW(JsonValue::parse("[1e-400]"));
}

TEST(Json, WholeValuedDoublesKeepTheirTypeAcrossRoundTrip) {
  JsonValue doc = JsonValue::array();
  doc.push(2.0);
  doc.push(-12.0);
  const JsonValue back = JsonValue::parse(doc.dump());
  EXPECT_FALSE(back.items()[0].is_int());  // "2.0", not "2"
  EXPECT_FALSE(back.items()[1].is_int());
  EXPECT_EQ(back, doc);
}

TEST(Json, NonFiniteDoublesDumpAsNull) {
  JsonValue doc = JsonValue::array();
  doc.push(std::nan(""));
  EXPECT_TRUE(JsonValue::parse(doc.dump()).items()[0].is_null());
}

}  // namespace
}  // namespace vidur
