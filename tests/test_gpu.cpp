// Tests for src/gpu: the ground-truth kernel cost models. These check the
// physical properties the rest of the system relies on: monotonicity,
// roofline bounds, quantization staircases, and communication scaling.
#include <gtest/gtest.h>

#include "common/check.h"
#include "gpu/kernel_models.h"

namespace vidur {
namespace {

NodeSpec node_of(const std::string& sku) {
  NodeSpec node;
  node.sku = sku_by_name(sku);
  return node;
}

class GpuModelTest : public ::testing::TestWithParam<std::string> {
 protected:
  NodeSpec node = node_of(GetParam());
  const SkuSpec& sku() const { return node.sku; }
};

TEST_P(GpuModelTest, GemmMonotoneInEachDimension) {
  const double base = gpu::gemm_time(sku(), 512, 4096, 4096);
  EXPECT_GE(gpu::gemm_time(sku(), 1024, 4096, 4096), base);
  EXPECT_GE(gpu::gemm_time(sku(), 512, 8192, 4096), base);
  EXPECT_GE(gpu::gemm_time(sku(), 512, 4096, 8192), base);
}

TEST_P(GpuModelTest, GemmNeverFasterThanRoofline) {
  // max(compute-at-peak, memory-at-peak) is a hard lower bound.
  const long m = 2048, k = 4096, n = 4096;
  const double flop_bound = 2.0 * m * k * n / sku().peak_flops();
  const double byte_bound = 2.0 * (m * k + k * n + m * n) /
                            sku().hbm_bytes_per_sec();
  EXPECT_GE(gpu::gemm_time(sku(), m, k, n),
            std::max(flop_bound, byte_bound));
}

TEST_P(GpuModelTest, GemmLaunchOverheadFloorsTinyKernels) {
  EXPECT_GE(gpu::gemm_time(sku(), 1, 64, 64), gpu::kKernelLaunchOverhead);
}

TEST_P(GpuModelTest, GemmHasTileQuantizationStaircase) {
  // Crossing a 128-row tile boundary (m: 768 -> 769) pushes the tile count
  // over a wave boundary on both SM counts (108 and 132), so it costs
  // disproportionately more than staying inside a tile (m: 767 -> 768),
  // for a compute-bound shape.
  const double at767 = gpu::gemm_time(sku(), 767, 8192, 8192);
  const double at768 = gpu::gemm_time(sku(), 768, 8192, 8192);
  const double at769 = gpu::gemm_time(sku(), 769, 8192, 8192);
  EXPECT_NEAR(at767, at768, at768 * 0.02);
  EXPECT_GT(at769, at768 * 1.05);
}

TEST_P(GpuModelTest, ElementwiseLinearInBytes) {
  const double t1 = gpu::elementwise_time(sku(), 1 << 20);
  const double t2 = gpu::elementwise_time(sku(), 2 << 20);
  const double marginal = t2 - t1;  // slope without the launch overhead
  EXPECT_NEAR(gpu::elementwise_time(sku(), 3 << 20), t2 + marginal,
              t1 * 0.01);
}

TEST_P(GpuModelTest, PrefillAttentionQuadraticInSequenceLength) {
  const double t1k = gpu::attention_prefill_time(sku(), 1024, 1024, 32, 128);
  const double t4k = gpu::attention_prefill_time(sku(), 4096, 4096, 32, 128);
  // 4x tokens -> ~16x work (allow slack for occupancy ramp + overheads).
  EXPECT_GT(t4k / t1k, 8.0);
  EXPECT_LT(t4k / t1k, 32.0);
}

TEST_P(GpuModelTest, PrefillAttentionGrowsWithKvContext) {
  const double self_only = gpu::attention_prefill_time(sku(), 512, 512, 32, 128);
  const double with_prefix =
      gpu::attention_prefill_time(sku(), 512, 4096, 32, 128);
  EXPECT_GT(with_prefix, self_only * 2.0);
}

TEST_P(GpuModelTest, DecodeAttentionLinearInTotalKv) {
  // Paper §4.3: decode attention is KV-read bound; runtime is determined by
  // the total KV volume, not the per-request split.
  const double t1 = gpu::attention_decode_time(sku(), 100000, 32, 32, 128);
  const double t2 = gpu::attention_decode_time(sku(), 200000, 32, 32, 128);
  EXPECT_NEAR(t2 / t1, 2.0, 0.1);
}

TEST_P(GpuModelTest, DecodeAttentionSmallBatchUnderutilizesBandwidth) {
  // The same KV volume takes longer when fetched by fewer sequences.
  const double small_batch =
      gpu::attention_decode_time(sku(), 100000, 1, 8, 128);
  const double big_batch =
      gpu::attention_decode_time(sku(), 100000, 64, 8, 128);
  EXPECT_GT(small_batch, big_batch * 1.2);
}

TEST_P(GpuModelTest, DecodeAttentionZeroKvIsJustOverhead) {
  EXPECT_DOUBLE_EQ(gpu::attention_decode_time(sku(), 0, 4, 8, 128),
                   gpu::kKernelLaunchOverhead);
}

TEST_P(GpuModelTest, AllReduceFreeForSingleGpu) {
  EXPECT_DOUBLE_EQ(gpu::allreduce_time(node, 1 << 20, 1), 0.0);
  EXPECT_DOUBLE_EQ(gpu::allreduce_time(node, 0, 4), 0.0);
}

TEST_P(GpuModelTest, AllReduceMonotoneInBytesAndWorld) {
  const double t2 = gpu::allreduce_time(node, 8 << 20, 2);
  const double t4 = gpu::allreduce_time(node, 8 << 20, 4);
  EXPECT_GT(t4, t2);  // pairwise-NVLink topology penalty beyond a pair
  EXPECT_GT(gpu::allreduce_time(node, 16 << 20, 2), t2);
}

TEST_P(GpuModelTest, AllReducePairStaysOnNvlink) {
  // Within an NVLink pair the ring transfer tracks the NVLink bandwidth.
  const long bytes = 64 << 20;
  const double t = gpu::allreduce_time(node, bytes, 2);
  const double ideal = 2.0 * 0.5 * bytes /
                       (node.sku.nvlink_bandwidth_gbps * 1e9);
  EXPECT_NEAR(t, ideal + 6e-6, ideal * 0.05);
}

TEST_P(GpuModelTest, AllGatherCheaperThanAllReduce) {
  EXPECT_LT(gpu::allgather_time(node, 8 << 20, 4),
            gpu::allreduce_time(node, 8 << 20, 4));
}

TEST_P(GpuModelTest, SendRecvLinearWithLatencyFloor) {
  EXPECT_DOUBLE_EQ(gpu::send_recv_time(node, 0), 0.0);
  const double t1 = gpu::send_recv_time(node, 1 << 20);
  const double t2 = gpu::send_recv_time(node, 2 << 20);
  EXPECT_GT(t1, 8e-6);  // latency floor
  EXPECT_GT(t2, t1);
}

TEST_P(GpuModelTest, InvalidInputsThrow) {
  EXPECT_THROW(gpu::gemm_time(sku(), 0, 1, 1), Error);
  EXPECT_THROW(gpu::attention_prefill_time(sku(), 128, 64, 32, 128), Error);
  EXPECT_THROW(gpu::attention_decode_time(sku(), 100, 0, 8, 128), Error);
  EXPECT_THROW(gpu::allreduce_time(node, -1, 2), Error);
}

INSTANTIATE_TEST_SUITE_P(Skus, GpuModelTest,
                         ::testing::Values("a100", "h100"));

TEST(GpuModelCross, H100FasterThanA100) {
  const NodeSpec a = node_of("a100"), h = node_of("h100");
  EXPECT_LT(gpu::gemm_time(h.sku, 4096, 8192, 8192),
            gpu::gemm_time(a.sku, 4096, 8192, 8192));
  EXPECT_LT(gpu::attention_decode_time(h.sku, 500000, 64, 8, 128),
            gpu::attention_decode_time(a.sku, 500000, 64, 8, 128));
}

TEST(GpuModelCross, SmCounts) {
  EXPECT_EQ(gpu::sm_count(sku_by_name("a100")), 108);
  EXPECT_EQ(gpu::sm_count(sku_by_name("h100")), 132);
}

}  // namespace
}  // namespace vidur
