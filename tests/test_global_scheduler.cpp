// Direct unit tests of the first-tier GlobalScheduler: round-robin and
// least-outstanding binding, deferred central-queue pulls, and the
// priority-aware routing mode.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "scheduler/global_scheduler.h"

namespace vidur {
namespace {

std::vector<RequestState> make_requests(int n) {
  std::vector<RequestState> states(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    states[static_cast<std::size_t>(i)].request.id = i;
    states[static_cast<std::size_t>(i)].request.arrival_time = i * 0.1;
  }
  return states;
}

TEST(GlobalSchedulerNames, RoundTrip) {
  for (const auto kind :
       {GlobalSchedulerKind::kRoundRobin, GlobalSchedulerKind::kLeastOutstanding,
        GlobalSchedulerKind::kDeferred, GlobalSchedulerKind::kPriority})
    EXPECT_EQ(global_scheduler_from_name(global_scheduler_name(kind)), kind);
  EXPECT_THROW(global_scheduler_from_name("fifo"), Error);
}

TEST(GlobalScheduler, RoundRobinCycles) {
  GlobalScheduler scheduler(GlobalSchedulerKind::kRoundRobin, 3);
  auto requests = make_requests(7);
  const std::vector<int> outstanding = {0, 0, 0};
  std::vector<ReplicaId> routed;
  for (auto& r : requests) routed.push_back(scheduler.route(&r, outstanding));
  EXPECT_EQ(routed, (std::vector<ReplicaId>{0, 1, 2, 0, 1, 2, 0}));
  EXPECT_FALSE(scheduler.has_parked_requests());
}

TEST(GlobalScheduler, LeastOutstandingPicksMinimum) {
  GlobalScheduler scheduler(GlobalSchedulerKind::kLeastOutstanding, 3);
  auto requests = make_requests(3);
  EXPECT_EQ(scheduler.route(&requests[0], {5, 2, 9}), 1);
  EXPECT_EQ(scheduler.route(&requests[1], {0, 0, 0}), 0);  // ties go left
  EXPECT_EQ(scheduler.route(&requests[2], {3, 3, 1}), 2);
}

TEST(GlobalScheduler, LeastOutstandingTieBreakIsLowestId) {
  GlobalScheduler scheduler(GlobalSchedulerKind::kLeastOutstanding, 4);
  auto requests = make_requests(3);
  // All-way tie: the lowest replica id must win, deterministically.
  EXPECT_EQ(scheduler.route(&requests[0], {2, 2, 2, 2}), 0);
  // Tie among a subset: the lowest id of the tied minimum wins.
  EXPECT_EQ(scheduler.route(&requests[1], {5, 1, 1, 3}), 1);
  EXPECT_EQ(scheduler.route(&requests[2], {4, 9, 4, 4}), 0);
}

TEST(GlobalScheduler, LeastOutstandingSkipsNonActiveReplicas) {
  GlobalScheduler scheduler(GlobalSchedulerKind::kLeastOutstanding, 4);
  auto requests = make_requests(4);
  // Replica 1 has the minimum but is not active (e.g. draining).
  EXPECT_EQ(scheduler.route(&requests[0], {5, 0, 3, 4},
                            {true, false, true, true}),
            2);
  // Ties among active replicas still break toward the lowest active id.
  EXPECT_EQ(scheduler.route(&requests[1], {2, 2, 2, 2},
                            {false, true, true, true}),
            1);
  // A single active replica always wins.
  EXPECT_EQ(scheduler.route(&requests[2], {9, 0, 0, 0},
                            {true, false, false, false}),
            0);
  // No active replica at all is a caller bug.
  EXPECT_THROW(scheduler.route(&requests[3], {0, 0, 0, 0},
                               {false, false, false, false}),
               Error);
}

TEST(GlobalScheduler, RoundRobinSkipsNonActiveReplicas) {
  GlobalScheduler scheduler(GlobalSchedulerKind::kRoundRobin, 3);
  auto requests = make_requests(6);
  const std::vector<int> outstanding = {0, 0, 0};
  const std::vector<bool> active = {true, false, true};
  std::vector<ReplicaId> routed;
  for (auto& r : requests)
    routed.push_back(scheduler.route(&r, outstanding, active));
  EXPECT_EQ(routed, (std::vector<ReplicaId>{0, 2, 0, 2, 0, 2}));
}

TEST(GlobalScheduler, BindingPoliciesNeverPark) {
  for (const auto kind : {GlobalSchedulerKind::kRoundRobin,
                          GlobalSchedulerKind::kLeastOutstanding}) {
    GlobalScheduler scheduler(kind, 2);
    auto requests = make_requests(4);
    for (auto& r : requests) scheduler.route(&r, {0, 0});
    EXPECT_FALSE(scheduler.has_parked_requests());
    EXPECT_TRUE(scheduler.pull(0, 10).empty());
  }
}

TEST(GlobalScheduler, DeferredParksAndPullsFifo) {
  GlobalScheduler scheduler(GlobalSchedulerKind::kDeferred, 2);
  auto requests = make_requests(4);
  for (auto& r : requests)
    EXPECT_EQ(scheduler.route(&r, {0, 0}), -1);  // always parked
  EXPECT_TRUE(scheduler.has_parked_requests());

  const auto first = scheduler.pull(0, 1);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0]->request.id, 0);

  const auto rest = scheduler.pull(1, 10);  // bounded by queue length
  ASSERT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[0]->request.id, 1);
  EXPECT_EQ(rest[1]->request.id, 2);
  EXPECT_EQ(rest[2]->request.id, 3);
  EXPECT_FALSE(scheduler.has_parked_requests());
}

TEST(GlobalScheduler, PriorityPullsHighestPriorityFirst) {
  GlobalScheduler scheduler(GlobalSchedulerKind::kPriority, 1);
  auto requests = make_requests(5);
  requests[0].request.priority = 0;
  requests[1].request.priority = 2;
  requests[2].request.priority = 1;
  requests[3].request.priority = 2;
  requests[4].request.priority = 0;
  for (auto& r : requests) EXPECT_EQ(scheduler.route(&r, {0}), -1);

  std::vector<RequestId> order;
  while (scheduler.has_parked_requests())
    order.push_back(scheduler.pull(0, 1)[0]->request.id);
  // Priority 2 first (FIFO within the level), then 1, then 0.
  EXPECT_EQ(order, (std::vector<RequestId>{1, 3, 2, 0, 4}));
}

TEST(GlobalScheduler, PriorityWithUniformPrioritiesIsFifo) {
  GlobalScheduler scheduler(GlobalSchedulerKind::kPriority, 1);
  auto requests = make_requests(4);
  for (auto& r : requests) scheduler.route(&r, {0});
  const auto pulled = scheduler.pull(0, 4);
  ASSERT_EQ(pulled.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(pulled[static_cast<std::size_t>(i)]->request.id, i);
}

}  // namespace
}  // namespace vidur
