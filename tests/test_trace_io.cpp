// Tests for src/workload/trace_io: CSV round trips and replay validation.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "workload/trace_generator.h"
#include "workload/trace_io.h"

namespace vidur {
namespace {

TEST(TraceIo, TextRoundTripPreservesEveryField) {
  const Trace original = generate_trace(
      trace_by_name("chat1m"), ArrivalSpec{ArrivalKind::kPoisson, 2.0, 0}, 50,
      42);
  const Trace loaded = trace_from_csv(trace_to_csv(original));
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].id, original[i].id);
    EXPECT_DOUBLE_EQ(loaded[i].arrival_time, original[i].arrival_time);
    EXPECT_EQ(loaded[i].prefill_tokens, original[i].prefill_tokens);
    EXPECT_EQ(loaded[i].decode_tokens, original[i].decode_tokens);
  }
}

TEST(TraceIo, TenantAndPriorityTagsRoundTrip) {
  Trace original;
  for (int i = 0; i < 6; ++i) {
    Request r;
    r.id = i;
    r.arrival_time = i * 0.5;
    r.prefill_tokens = 10 + i;
    r.decode_tokens = 5;
    r.tenant = i % 3;
    r.priority = i % 2 == 0 ? 2 : -1;  // negative priorities are legal
    original.push_back(r);
  }
  const Trace loaded = trace_from_csv(trace_to_csv(original));
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].tenant, original[i].tenant);
    EXPECT_EQ(loaded[i].priority, original[i].priority);
  }
}

TEST(TraceIo, FourColumnTracesStillLoadWithDefaultTags) {
  // Traces written before the tenant/priority columns existed.
  const Trace trace = trace_from_csv(
      "request_id,arrival_time,prefill_tokens,decode_tokens\n"
      "0,0.0,10,5\n"
      "1,1.0,20,6\n");
  ASSERT_EQ(trace.size(), 2u);
  for (const Request& r : trace) {
    EXPECT_EQ(r.tenant, 0);
    EXPECT_EQ(r.priority, 0);
  }
}

TEST(TraceIo, NegativeTenantThrows) {
  EXPECT_THROW(
      trace_from_csv(
          "request_id,arrival_time,prefill_tokens,decode_tokens,tenant,"
          "priority\n"
          "0,0.0,10,5,-1,0\n"),
      Error);
}

TEST(TraceIo, FileRoundTrip) {
  const Trace original = generate_trace(
      trace_by_name("bwb4k"), ArrivalSpec{ArrivalKind::kStatic, 0, 0}, 20, 7);
  const std::string path = ::testing::TempDir() + "/vidur_trace_io_test.csv";
  save_trace_csv(path, original);
  const Trace loaded = load_trace_csv(path);
  std::remove(path.c_str());
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i)
    EXPECT_EQ(loaded[i].prefill_tokens, original[i].prefill_tokens);
}

TEST(TraceIo, SortsByArrivalTime) {
  const std::string csv =
      "request_id,arrival_time,prefill_tokens,decode_tokens\n"
      "0,5.0,10,5\n"
      "1,1.0,20,5\n"
      "2,3.0,30,5\n";
  const Trace trace = trace_from_csv(csv);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].id, 1);
  EXPECT_EQ(trace[1].id, 2);
  EXPECT_EQ(trace[2].id, 0);
}

TEST(TraceIo, SortIsStableForTiedArrivals) {
  const std::string csv =
      "request_id,arrival_time,prefill_tokens,decode_tokens\n"
      "7,0.0,10,5\n"
      "3,0.0,20,5\n"
      "9,0.0,30,5\n";
  const Trace trace = trace_from_csv(csv);
  EXPECT_EQ(trace[0].id, 7);
  EXPECT_EQ(trace[1].id, 3);
  EXPECT_EQ(trace[2].id, 9);
}

TEST(TraceIo, ColumnOrderIsFree) {
  const std::string csv =
      "decode_tokens,request_id,arrival_time,prefill_tokens\n"
      "5,0,0.0,17\n";
  const Trace trace = trace_from_csv(csv);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].prefill_tokens, 17);
  EXPECT_EQ(trace[0].decode_tokens, 5);
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  const Trace loaded = trace_from_csv(trace_to_csv(Trace{}));
  EXPECT_TRUE(loaded.empty());
}

TEST(TraceIo, MissingColumnThrows) {
  EXPECT_THROW(trace_from_csv("request_id,arrival_time,prefill_tokens\n"
                              "0,0.0,10\n"),
               Error);
}

TEST(TraceIo, DuplicateIdThrows) {
  EXPECT_THROW(
      trace_from_csv("request_id,arrival_time,prefill_tokens,decode_tokens\n"
                     "0,0.0,10,5\n"
                     "0,1.0,10,5\n"),
      Error);
}

TEST(TraceIo, NegativeArrivalThrows) {
  EXPECT_THROW(
      trace_from_csv("request_id,arrival_time,prefill_tokens,decode_tokens\n"
                     "0,-1.0,10,5\n"),
      Error);
}

TEST(TraceIo, NonPositiveTokensThrow) {
  EXPECT_THROW(
      trace_from_csv("request_id,arrival_time,prefill_tokens,decode_tokens\n"
                     "0,0.0,0,5\n"),
      Error);
  EXPECT_THROW(
      trace_from_csv("request_id,arrival_time,prefill_tokens,decode_tokens\n"
                     "0,0.0,10,-2\n"),
      Error);
}

TEST(TraceIo, MalformedNumberThrows) {
  EXPECT_THROW(
      trace_from_csv("request_id,arrival_time,prefill_tokens,decode_tokens\n"
                     "zero,0.0,10,5\n"),
      Error);
  EXPECT_THROW(
      trace_from_csv("request_id,arrival_time,prefill_tokens,decode_tokens\n"
                     "0,abc,10,5\n"),
      Error);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_trace_csv("/nonexistent/vidur_trace.csv"), Error);
}

TEST(TraceIo, ToleratesSurroundingWhitespace) {
  const Trace trace = trace_from_csv(
      "request_id, arrival_time, prefill_tokens, decode_tokens\n"
      " 3 , 1.5 , 42 , 7 \n");
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].id, 3);
  EXPECT_DOUBLE_EQ(trace[0].arrival_time, 1.5);
  EXPECT_EQ(trace[0].prefill_tokens, 42);
  EXPECT_EQ(trace[0].decode_tokens, 7);
}

TEST(TraceIo, LargeTokenCountsSurviveRoundTrip) {
  Trace original;
  original.push_back(Request{0, 0.0, 1'000'000'000LL, 2'000'000'000LL});
  const Trace loaded = trace_from_csv(trace_to_csv(original));
  EXPECT_EQ(loaded[0].prefill_tokens, 1'000'000'000LL);
  EXPECT_EQ(loaded[0].decode_tokens, 2'000'000'000LL);
}

}  // namespace
}  // namespace vidur
