// Tests for src/cluster: autoscaler policies (hysteresis, predictive
// lookahead), ClusterManager lifecycle transitions (cold start, draining),
// and end-to-end elastic simulations on time-varying scenarios.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "cluster/autoscaler.h"
#include "cluster/cluster_manager.h"
#include "common/check.h"
#include "scenario/scenario.h"
#include "sim/simulator.h"

namespace vidur {
namespace {

// ------------------------------------------------------------- policies

AutoscalerConfig reactive_config() {
  AutoscalerConfig config;
  config.kind = AutoscalerKind::kReactive;
  config.min_replicas = 1;
  config.target_load_per_replica = 10.0;
  config.scale_up_load = 20.0;
  config.scale_down_load = 4.0;
  return config;
}

ClusterSample sample(int active, int outstanding, int max_replicas = 8) {
  ClusterSample s;
  s.active = active;
  s.outstanding = outstanding;
  s.min_replicas = 1;
  s.max_replicas = max_replicas;
  return s;
}

TEST(Autoscaler, NamesRoundTrip) {
  for (const auto kind : {AutoscalerKind::kNone, AutoscalerKind::kReactive,
                          AutoscalerKind::kPredictive})
    EXPECT_EQ(autoscaler_from_name(autoscaler_name(kind)), kind);
  EXPECT_THROW(autoscaler_from_name("magic"), Error);
}

TEST(Autoscaler, ConfigValidationCatchesBadThresholds) {
  AutoscalerConfig config = reactive_config();
  config.scale_down_load = 25.0;  // band inverted
  EXPECT_THROW(config.validate(), Error);
  config = reactive_config();
  config.target_load_per_replica = 30.0;  // sizing outside the band
  EXPECT_THROW(config.validate(), Error);
  config = reactive_config();
  config.decision_interval = 0.0;
  EXPECT_THROW(config.validate(), Error);
  config = AutoscalerConfig{};  // disabled configs need no tuning
  config.decision_interval = 0.0;
  EXPECT_NO_THROW(config.validate());
}

TEST(Autoscaler, ReactiveScalesUpUnderLoadAndDownWhenIdle) {
  auto policy = make_autoscaler_policy(reactive_config());
  // 90 outstanding on 2 replicas: load 45 > 20, size for 90/10 = 9 -> 8.
  EXPECT_EQ(policy->desired_replicas(sample(2, 90)), 8);
  // 2 outstanding on 4 replicas: load 0.5 < 4, size for ceil(2/10) = 1.
  EXPECT_EQ(policy->desired_replicas(sample(4, 2)), 1);
  // Zero outstanding still clamps at min_replicas.
  EXPECT_EQ(policy->desired_replicas(sample(4, 0)), 1);
}

TEST(Autoscaler, ReactiveCountsPendingCapacityAgainstLoad) {
  auto policy = make_autoscaler_policy(reactive_config());
  ClusterSample s = sample(1, 90);
  s.pending = 7;  // capacity for the backlog is already provisioning
  // 90 / 8 effective = 11.25, inside the band: hold at effective.
  EXPECT_EQ(policy->desired_replicas(s), 8);
}

TEST(Autoscaler, HysteresisBandPreventsFlappingUnderNoisyLoad) {
  // Load oscillates between 16 and 24 outstanding on 2 replicas
  // (8..12 per replica). The wide band [4, 20] swallows the noise; a
  // degenerate band [9.5, 10] re-decides on nearly every sample.
  AutoscalerConfig wide = reactive_config();
  AutoscalerConfig narrow = reactive_config();
  narrow.scale_down_load = 9.5;
  narrow.scale_up_load = 10.0;
  narrow.target_load_per_replica = 10.0;

  const auto count_changes = [](AutoscalerPolicy& policy) {
    int active = 2;
    int changes = 0;
    for (int i = 0; i < 20; ++i) {
      const int outstanding = i % 2 == 0 ? 24 : 16;
      const int desired = std::clamp(
          policy.desired_replicas(sample(active, outstanding)), 1, 8);
      if (desired != active) ++changes;
      active = desired;  // assume instant application (worst case)
    }
    return changes;
  };

  auto wide_policy = make_autoscaler_policy(wide);
  auto narrow_policy = make_autoscaler_policy(narrow);
  EXPECT_EQ(count_changes(*wide_policy), 0);
  EXPECT_GE(count_changes(*narrow_policy), 10);
}

TEST(Autoscaler, PredictiveSizesForTheLookaheadWindow) {
  AutoscalerConfig config;
  config.kind = AutoscalerKind::kPredictive;
  config.provision_delay = 20.0;
  config.warmup_delay = 10.0;  // lookahead horizon = 30s
  config.profile = RateProfile::spike(/*baseline=*/1.0, /*spike=*/4.0,
                                      /*spike_start=*/100.0,
                                      /*spike_duration=*/60.0);
  config.baseline_qps = 2.0;
  config.replica_capacity_qps = 2.0;
  config.headroom = 0.0;
  auto policy = make_autoscaler_policy(config);

  // Far before the spike: sized for baseline (2 qps / 2 qps-per-replica).
  ClusterSample s = sample(1, 0);
  s.now = 10.0;
  EXPECT_EQ(policy->desired_replicas(s), 1);
  // The spike enters the 30s lookahead window at t = 70: provision now so
  // the capacity is active when the crowd lands.
  s.now = 75.0;
  EXPECT_EQ(policy->desired_replicas(s), 4);
  // After the spike passes out of the window, back to baseline sizing.
  s.now = 200.0;
  EXPECT_EQ(policy->desired_replicas(s), 1);
}

// ------------------------------------------------------- ClusterManager

struct ManagerHarness {
  EventQueue events;
  std::map<ReplicaId, int> load;  // per-replica outstanding work
  int parked = 0;
  bool work = true;
  std::vector<ReplicaId> activated;
  std::vector<ReplicaId> drained;
  std::unique_ptr<ClusterManager> manager;

  explicit ManagerHarness(AutoscalerConfig config, int fleet) {
    ClusterManager::Hooks hooks;
    hooks.replica_load = [this](ReplicaId r) { return load[r]; };
    hooks.parked_requests = [this] { return parked; };
    hooks.work_remaining = [this] { return work; };
    hooks.on_activated = [this](ReplicaId r) { activated.push_back(r); };
    hooks.on_draining = [this](ReplicaId r) { drained.push_back(r); };
    manager = std::make_unique<ClusterManager>(config, fleet, &events,
                                               std::move(hooks));
    manager->start();
  }

  void run_until(Seconds t) {
    while (!events.empty() && events.next_time() <= t) events.run_next();
  }
};

AutoscalerConfig manager_config() {
  AutoscalerConfig config = reactive_config();
  config.decision_interval = 5.0;
  config.provision_delay = 20.0;
  config.warmup_delay = 10.0;
  config.scale_down_cooldown = 0.0;
  return config;
}

TEST(ClusterManager, InitialReplicasAreActiveImmediately) {
  AutoscalerConfig config = manager_config();
  config.min_replicas = 2;
  ManagerHarness h(config, 4);
  EXPECT_EQ(h.manager->num_active(), 2);
  EXPECT_EQ(h.manager->routable_mask(),
            (std::vector<bool>{true, true, false, false}));
  EXPECT_EQ(h.manager->state(2), ReplicaState::kDecommissioned);
}

TEST(ClusterManager, ColdStartDelaysNewCapacity) {
  ManagerHarness h(manager_config(), 4);
  h.parked = 200;  // overload from the start

  // First decision at t=5: slots begin provisioning, but nothing is
  // routable until provision (20s) + warmup (10s) have elapsed.
  h.run_until(6.0);
  EXPECT_EQ(h.manager->num_active(), 1);
  EXPECT_GE(h.manager->num_pending(), 1);
  h.run_until(25.0 + 5.0);  // warming, still not active
  EXPECT_EQ(h.manager->num_active(), 1);
  h.run_until(36.0);  // 5 + 20 + 10 = 35: capacity finally lands
  EXPECT_GT(h.manager->num_active(), 1);
  EXPECT_FALSE(h.activated.empty());

  const auto report = h.manager->report(36.0, 1, 1.0);
  // Every activation after t=0 paid the full cold start.
  for (const auto& e : report.events) {
    if (e.time > 0 && e.to == ReplicaState::kActive) {
      EXPECT_GE(e.time, 5.0 + 20.0 + 10.0);
    }
  }
}

TEST(ClusterManager, DrainingWaitsForInFlightWorkBeforeDecommission) {
  AutoscalerConfig config = manager_config();
  config.initial_replicas = 3;
  ManagerHarness h(config, 4);
  EXPECT_EQ(h.manager->num_active(), 3);
  h.load[2] = 7;  // replica 2 still owns work; 0 and 1 are idle

  // No outstanding anywhere else: the policy wants 1 replica. The manager
  // drains the highest ids first: replica 2 (busy) must wait, replica 1
  // (idle) decommissions immediately.
  h.run_until(6.0);
  EXPECT_EQ(h.manager->state(2), ReplicaState::kDraining);
  EXPECT_EQ(h.manager->state(1), ReplicaState::kDecommissioned);
  EXPECT_EQ(h.manager->state(0), ReplicaState::kActive);

  // The drained replica finishes its work only later.
  h.run_until(12.0);
  EXPECT_EQ(h.manager->state(2), ReplicaState::kDraining);
  h.load[2] = 0;
  h.manager->notify_idle(2);
  EXPECT_EQ(h.manager->state(2), ReplicaState::kDecommissioned);

  // notify_idle on a non-draining replica is a no-op.
  h.manager->notify_idle(0);
  EXPECT_EQ(h.manager->state(0), ReplicaState::kActive);
}

TEST(ClusterManager, DoesNotDrainWhileOrderedCapacityIsStillColdStarting) {
  AutoscalerConfig config = manager_config();
  config.initial_replicas = 2;
  ManagerHarness h(config, 4);

  // Overload at the first tick orders more capacity...
  h.parked = 200;
  h.run_until(6.0);
  EXPECT_EQ(h.manager->num_pending(), 2);
  // ...then the load evaporates before the cold start completes. Draining
  // active replicas now would overshoot below the desired fleet while the
  // ordered slots are still warming, so the manager must hold.
  h.parked = 0;
  h.run_until(34.0);  // provisioning lands at 5 + 20 + 10 = 35
  EXPECT_EQ(h.manager->num_active(), 2);
  EXPECT_EQ(h.manager->num_draining(), 0);
  // Once the cold starts land, the surplus drains normally.
  h.run_until(50.0);
  EXPECT_EQ(h.manager->num_pending(), 0);
  EXPECT_EQ(h.manager->num_active(), 1);
}

TEST(ClusterManager, DrainingFiresTheRerouteHook) {
  AutoscalerConfig config = manager_config();
  config.initial_replicas = 3;
  ManagerHarness h(config, 4);
  // Zero load: the first tick drains down to min_replicas (1), highest
  // ids first, firing on_draining for each before any decommission.
  h.run_until(6.0);
  ASSERT_EQ(h.drained.size(), 2u);
  EXPECT_EQ(h.drained[0], 2);
  EXPECT_EQ(h.drained[1], 1);
}

TEST(ClusterManager, NeverDrainsBelowMinReplicas) {
  AutoscalerConfig config = manager_config();
  config.min_replicas = 2;
  config.initial_replicas = 3;
  ManagerHarness h(config, 4);
  h.run_until(30.0);  // zero load the whole time
  EXPECT_EQ(h.manager->num_active(), 2);
}

TEST(ClusterManager, StopsReschedulingWhenWorkIsDone) {
  ManagerHarness h(manager_config(), 2);
  h.work = false;  // all requests completed
  h.run_until(1e9);
  EXPECT_TRUE(h.events.empty());  // the decision loop wound down
}

TEST(ClusterManager, ReportAccountsPaidReplicaTime) {
  AutoscalerConfig config = manager_config();
  config.initial_replicas = 2;
  ManagerHarness h(config, 4);
  h.run_until(4.0);       // before the first decision tick
  h.work = false;         // let the queue drain
  h.run_until(1e9);

  // Drains happen at the t=5 tick (replica 1 idle -> immediate release);
  // replica 0 stays up to the horizon.
  const auto report = h.manager->report(100.0, /*gpus_per_replica=*/2,
                                        /*cost_per_gpu_hour=*/3.0);
  EXPECT_TRUE(report.enabled);
  EXPECT_EQ(report.peak_active, 2);
  const double expected_replica_seconds = 100.0 + 5.0;
  EXPECT_NEAR(report.replica_hours, expected_replica_seconds / 3600.0, 1e-9);
  EXPECT_NEAR(report.gpu_hours, report.replica_hours * 2, 1e-12);
  EXPECT_NEAR(report.cost_usd, report.gpu_hours * 3.0, 1e-12);
  EXPECT_GT(report.mean_active_replicas, 1.0);
  EXPECT_LT(report.mean_active_replicas, 2.0);
}

TEST(ClusterManager, StaticFleetReportIsFlat) {
  const auto report = static_fleet_report(3, 7200.0, 2, 2.0);
  EXPECT_FALSE(report.enabled);
  EXPECT_EQ(report.peak_active, 3);
  EXPECT_DOUBLE_EQ(report.mean_active_replicas, 3.0);
  EXPECT_DOUBLE_EQ(report.replica_hours, 6.0);
  EXPECT_DOUBLE_EQ(report.gpu_hours, 12.0);
  EXPECT_DOUBLE_EQ(report.cost_usd, 24.0);
}

// ------------------------------------------------- end-to-end simulator

Scenario spike_scenario(int num_requests, double spike_factor = 6.0) {
  Scenario s;
  s.name = "test-spike";
  s.tenants = {TenantSpec{.name = "chat",
                          .trace = trace_by_name("chat1m"),
                          .share = 1.0,
                          .priority = 0,
                          .slo = SloSpec{2.0, 0.5}}};
  s.arrival = ArrivalSpec{ArrivalKind::kPoisson, /*qps=*/2.0, /*cv=*/0};
  s.profile = RateProfile::spike(/*baseline=*/1.0, spike_factor,
                                 /*spike_start=*/30.0,
                                 /*spike_duration=*/60.0);
  s.num_requests = num_requests;
  return s;
}

SimulationConfig elastic_config(int fleet, AutoscalerConfig autoscale) {
  SimulationConfig config;
  config.model = model_by_name("llama2-7b");
  config.node.sku = sku_by_name("a100");
  config.parallel = ParallelConfig{1, 1, fleet};
  config.scheduler.kind = SchedulerKind::kVllm;
  config.scheduler.max_batch_size = 32;
  config.scheduler.chunk_size = 512;
  config.global_scheduler = GlobalSchedulerKind::kLeastOutstanding;
  config.autoscale = autoscale;
  return config;
}

BackendFactory reference_factory(const SimulationConfig& config,
                                 std::uint64_t seed = 1) {
  const ModelSpec model = config.model;
  const NodeSpec node = config.node;
  const ParallelConfig parallel = config.parallel;
  return [model, node, parallel, seed](ReplicaId r) {
    return std::make_unique<ReferenceExecutor>(
        node, model, parallel, seed + static_cast<std::uint64_t>(r));
  };
}

AutoscalerConfig fast_reactive() {
  AutoscalerConfig config = reactive_config();
  config.decision_interval = 2.0;
  config.provision_delay = 5.0;
  config.warmup_delay = 2.0;
  config.scale_down_cooldown = 20.0;
  config.target_load_per_replica = 8.0;
  config.scale_up_load = 12.0;
  config.scale_down_load = 2.0;
  return config;
}

TEST(ElasticSimulation, CompletesEveryRequestWhileScaling) {
  const Trace trace = generate_scenario_trace(spike_scenario(220), 7);
  const SimulationConfig config = elastic_config(4, fast_reactive());
  Simulator sim(config, trace, reference_factory(config));
  const SimulationMetrics m = sim.run();

  EXPECT_EQ(m.num_completed, trace.size());
  EXPECT_TRUE(m.scaling.enabled);
  EXPECT_GE(m.scaling.num_scale_up_events, 1);
  EXPECT_LE(m.scaling.peak_active, 4);
  EXPECT_GT(m.scaling.mean_active_replicas, 0.0);
  EXPECT_LT(m.scaling.mean_active_replicas, 4.0);
  // Elastic GPU-hours must undercut the equivalent always-on fleet.
  const double static_gpu_hours = 4.0 * m.makespan / 3600.0;
  EXPECT_LT(m.scaling.gpu_hours, static_gpu_hours);
  // The timeline is chronological and the event log well-formed.
  for (std::size_t i = 1; i < m.scaling.active_timeline.size(); ++i)
    EXPECT_GE(m.scaling.active_timeline[i].time,
              m.scaling.active_timeline[i - 1].time);
  for (std::size_t i = 1; i < m.scaling.events.size(); ++i)
    EXPECT_GE(m.scaling.events[i].time, m.scaling.events[i - 1].time);
}

TEST(ElasticSimulation, ColdStartMakesCapacityArriveLate) {
  const Scenario scenario = spike_scenario(220);
  const Trace trace = generate_scenario_trace(scenario, 7);

  AutoscalerConfig fast = fast_reactive();
  fast.provision_delay = 0.5;
  fast.warmup_delay = 0.0;
  AutoscalerConfig slow = fast_reactive();
  slow.provision_delay = 30.0;
  slow.warmup_delay = 10.0;

  SimulationConfig fast_config = elastic_config(4, fast);
  SimulationConfig slow_config = elastic_config(4, slow);
  fast_config.tenants = scenario.tenant_infos();
  slow_config.tenants = scenario.tenant_infos();
  Simulator fast_sim(fast_config, trace, reference_factory(fast_config));
  Simulator slow_sim(slow_config, trace, reference_factory(slow_config));
  const SimulationMetrics fast_m = fast_sim.run();
  const SimulationMetrics slow_m = slow_sim.run();

  // Every post-t0 activation pays the full configured cold start between
  // the provisioning order and the capacity becoming routable.
  std::map<ReplicaId, Seconds> ordered;
  int activations = 0;
  for (const auto& e : slow_m.scaling.events) {
    if (e.to == ReplicaState::kProvisioning) ordered[e.replica] = e.time;
    if (e.time > 0 && e.to == ReplicaState::kActive) {
      ASSERT_TRUE(ordered.count(e.replica));
      EXPECT_NEAR(e.time - ordered[e.replica], 30.0 + 10.0, 1e-9);
      ++activations;
    }
  }
  EXPECT_GE(activations, 1);

  // The first capacity the fast config adds lands well before the slow
  // config's (same trace, same decision cadence, 40s shorter cold start).
  const auto first_activation = [](const SimulationMetrics& m) {
    for (const auto& e : m.scaling.events)
      if (e.time > 0 && e.to == ReplicaState::kActive) return e.time;
    return kInfiniteTime;
  };
  EXPECT_LT(first_activation(fast_m) + 30.0, first_activation(slow_m));

  // The 40s capacity gap during a 6x flash crowd shows up as queueing.
  EXPECT_GT(slow_m.scheduling_delay.p99, fast_m.scheduling_delay.p99);
  EXPECT_LT(slow_m.aggregate_slo_attainment(),
            fast_m.aggregate_slo_attainment());
}

TEST(ElasticSimulation, ScaleDownDrainsBeforeDecommission) {
  // Busy start, quiet tail: the fleet must shrink, and every drained
  // replica finishes the work already routed to it first.
  Scenario s = spike_scenario(260);
  s.profile = RateProfile::piecewise(
      {RateStep{0.0, 3.0}, RateStep{60.0, 0.25}});
  const Trace trace = generate_scenario_trace(s, 11);

  AutoscalerConfig autoscale = fast_reactive();
  autoscale.initial_replicas = 4;
  const SimulationConfig config = elastic_config(4, autoscale);
  Simulator sim(config, trace, reference_factory(config));
  const SimulationMetrics m = sim.run();

  EXPECT_EQ(m.num_completed, trace.size());  // nothing lost in a drain
  EXPECT_GE(m.scaling.num_scale_down_events, 1);

  // Drain -> decommission per replica, in order, never below min.
  std::map<ReplicaId, Seconds> drain_started;
  for (const auto& e : m.scaling.events) {
    if (e.to == ReplicaState::kDraining) {
      drain_started[e.replica] = e.time;
    } else if (e.from == ReplicaState::kDraining) {
      EXPECT_EQ(e.to, ReplicaState::kDecommissioned);
      ASSERT_TRUE(drain_started.count(e.replica));
      EXPECT_GE(e.time, drain_started[e.replica]);
      drain_started.erase(e.replica);
    }
  }
  int active = 0;
  for (const auto& sample : m.scaling.active_timeline)
    active = sample.active;
  EXPECT_GE(active, 1);
}

TEST(ElasticSimulation, DrainReroutesQueuedButUnstartedRequests) {
  // Two active replicas at batch size 1, ten requests at t=0 split 5/5 by
  // least-outstanding routing: each replica runs one request and queues
  // four. The first decision tick (t=1) sees load below the scale-down
  // threshold and drains replica 1, whose four queued-but-unstarted
  // requests must leave through the global scheduler — only the single
  // running request may still complete on the drained replica.
  const Trace trace =
      generate_trace(trace_by_name("chat1m"),
                     ArrivalSpec{ArrivalKind::kStatic, 0, 0}, 10, 21);

  AutoscalerConfig autoscale;
  autoscale.kind = AutoscalerKind::kReactive;
  autoscale.min_replicas = 1;
  autoscale.initial_replicas = 2;
  autoscale.decision_interval = 1.0;
  autoscale.scale_down_cooldown = 0.0;
  autoscale.target_load_per_replica = 10.0;
  autoscale.scale_up_load = 20.0;
  autoscale.scale_down_load = 6.0;

  SimulationConfig config = elastic_config(2, autoscale);
  config.scheduler.max_batch_size = 1;
  Simulator sim(config, trace, reference_factory(config));
  const SimulationMetrics m = sim.run();

  EXPECT_EQ(m.num_completed, trace.size());
  ASSERT_GE(m.scaling.num_scale_down_events, 1);
  Seconds drain_time = -1.0;
  for (const auto& e : m.scaling.events)
    if (e.to == ReplicaState::kDraining && e.replica == 1) {
      drain_time = e.time;
      break;
    }
  ASSERT_GE(drain_time, 0.0);

  // Completions on the drained replica after the drain started: exactly
  // the one request that was already running (its queue re-routed away).
  int completed_on_drained = 0;
  for (const RequestState& r : sim.request_states())
    if (r.replica == 1 && r.record.completed_time > drain_time)
      ++completed_on_drained;
  EXPECT_EQ(completed_on_drained, 1);
}

TEST(ElasticSimulation, AutoscaleRejectsDisaggregation) {
  SimulationConfig config = elastic_config(4, fast_reactive());
  config.disagg.num_prefill_replicas = 2;
  config.disagg.transfer_bandwidth_gbps = 50.0;
  const Trace trace = generate_scenario_trace(spike_scenario(20), 3);
  EXPECT_THROW(Simulator(config, trace, reference_factory(config)), Error);
}

}  // namespace
}  // namespace vidur
