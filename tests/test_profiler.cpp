// Tests for src/profiler: grid construction, profiling coverage, noise
// behaviour, and the CSV round-trip that stands in for Vidur's published
// profiling data.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "operators/ground_truth.h"
#include "profiler/profiler.h"

namespace vidur {
namespace {

NodeSpec a100_node() {
  NodeSpec node;
  node.sku = sku_by_name("a100");
  return node;
}

ProfilerOptions fast_options() {
  ProfilerOptions opts;
  opts.max_tokens = 4096;
  opts.max_prefill_kv = 4096;
  opts.grid_density = 0.5;
  return opts;
}

TEST(TokenGrid, SortedUniqueAndCoversRange) {
  const auto grid = token_grid(16384);
  ASSERT_FALSE(grid.empty());
  EXPECT_EQ(grid.front(), 1);
  EXPECT_EQ(grid.back(), 16384);
  EXPECT_TRUE(std::is_sorted(grid.begin(), grid.end()));
  EXPECT_EQ(std::adjacent_find(grid.begin(), grid.end()), grid.end());
}

TEST(TokenGrid, DenserGridHasMorePoints) {
  EXPECT_GT(token_grid(8192, 2.0).size(), token_grid(8192, 1.0).size());
  EXPECT_GT(token_grid(8192, 1.0).size(), token_grid(8192, 0.25).size());
}

TEST(TokenGrid, SmallTokenRegionIsDense) {
  // Decode iterations live at small token counts; every value up to 16 must
  // be on the default grid (tile-size cliffs are here).
  const auto grid = token_grid(4096);
  for (long t = 1; t <= 16; ++t)
    EXPECT_TRUE(std::find(grid.begin(), grid.end(), t) != grid.end()) << t;
}

TEST(TokenGrid, InvalidArgsThrow) {
  EXPECT_THROW(token_grid(0), Error);
  EXPECT_THROW(token_grid(100, 0.0), Error);
}

TEST(Profiler, CoversEveryOperatorForEveryTpDegree) {
  const ModelSpec model = model_by_name("llama2-7b");
  const ProfileDb db = profile_model(model, a100_node(), {1, 2}, fast_options());
  for (int tp : {1, 2}) {
    for (OpType op : all_op_types()) {
      if (op_class(op) == OpClass::kCommunication) continue;
      EXPECT_TRUE(db.contains({op, tp}))
          << op_name(op) << " tp=" << tp << " missing";
    }
  }
  // Collectives: all-reduce per world size >= 2, send-recv model-agnostic.
  EXPECT_TRUE(db.contains({OpType::kAllReduce, 2}));
  EXPECT_FALSE(db.contains({OpType::kAllReduce, 1}));
  EXPECT_TRUE(db.contains({OpType::kSendRecv, 1}));
}

TEST(Profiler, MeasurementsTrackGroundTruth) {
  const ModelSpec model = model_by_name("llama2-7b");
  NodeSpec node = a100_node();
  const ProfileDb db = profile_model(model, node, {1}, fast_options());
  const OpShapes shapes(model, 1);
  for (const ProfilePoint& p : db.points({OpType::kMlpGateUpProj, 1})) {
    OpInput in;
    in.tokens = static_cast<long>(p.features[0]);
    const double truth =
        ground_truth_op_time(node, shapes, OpType::kMlpGateUpProj, in);
    EXPECT_NEAR(p.runtime, truth, truth * 0.10);  // noise is small
  }
}

TEST(Profiler, NoiseMakesRunsDiffer) {
  const ModelSpec model = model_by_name("llama2-7b");
  ProfilerOptions opts = fast_options();
  opts.seed = 1;
  const ProfileDb a = profile_model(model, a100_node(), {1}, opts);
  opts.seed = 2;
  const ProfileDb b = profile_model(model, a100_node(), {1}, opts);
  const auto& pa = a.points({OpType::kMlpGateUpProj, 1});
  const auto& pb = b.points({OpType::kMlpGateUpProj, 1});
  ASSERT_EQ(pa.size(), pb.size());
  int differing = 0;
  for (std::size_t i = 0; i < pa.size(); ++i)
    differing += pa[i].runtime != pb[i].runtime ? 1 : 0;
  EXPECT_GT(differing, static_cast<int>(pa.size()) / 2);
}

TEST(Profiler, SameSeedReproduces) {
  const ModelSpec model = model_by_name("llama2-7b");
  const ProfileDb a = profile_model(model, a100_node(), {1}, fast_options());
  const ProfileDb b = profile_model(model, a100_node(), {1}, fast_options());
  const auto& pa = a.points({OpType::kAttnDecode, 1});
  const auto& pb = b.points({OpType::kAttnDecode, 1});
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i)
    EXPECT_DOUBLE_EQ(pa[i].runtime, pb[i].runtime);
}

TEST(Profiler, PrefillGridRespectsKvGeqQ) {
  const ModelSpec model = model_by_name("llama2-7b");
  const ProfileDb db = profile_model(model, a100_node(), {1}, fast_options());
  for (const ProfilePoint& p : db.points({OpType::kAttnPrefill, 1})) {
    ASSERT_EQ(p.features.size(), 3u);
    EXPECT_GE(p.features[1], p.features[0]);  // kv >= q
    EXPECT_NEAR(p.features[2], p.features[0] * p.features[1] * 1e-6, 1e-9);
  }
}

// ------------------------------------------------------------- ProfileDb

TEST(ProfileDb, CsvRoundTripPreservesEverything) {
  const ModelSpec model = model_by_name("llama2-7b");
  const ProfileDb db = profile_model(model, a100_node(), {1}, fast_options());
  const ProfileDb restored = ProfileDb::from_csv(db.to_csv());
  EXPECT_EQ(restored.model_name(), db.model_name());
  EXPECT_EQ(restored.sku_name(), db.sku_name());
  EXPECT_EQ(restored.total_points(), db.total_points());
  ASSERT_EQ(restored.keys().size(), db.keys().size());
  for (const ProfileKey& key : db.keys()) {
    const auto& original = db.points(key);
    const auto& round = restored.points(key);
    ASSERT_EQ(original.size(), round.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
      EXPECT_EQ(original[i].features, round[i].features);
      EXPECT_DOUBLE_EQ(original[i].runtime, round[i].runtime);
    }
  }
}

TEST(ProfileDb, FileRoundTrip) {
  ProfileDb db("m", "s");
  db.add({OpType::kRmsNorm, 1}, {{64.0}, 1.5e-5});
  const std::string path = ::testing::TempDir() + "/profile_test.csv";
  db.write_file(path);
  const ProfileDb restored = ProfileDb::read_file(path);
  EXPECT_EQ(restored.total_points(), 1u);
  EXPECT_DOUBLE_EQ(restored.points({OpType::kRmsNorm, 1})[0].runtime, 1.5e-5);
}

TEST(ProfileDb, MissingKeyThrows) {
  ProfileDb db;
  EXPECT_THROW(db.points({OpType::kRmsNorm, 1}), Error);
}

TEST(ProfileDb, RejectsBadPoints) {
  ProfileDb db;
  EXPECT_THROW(db.add({OpType::kRmsNorm, 1}, {{}, 1.0}), Error);
  EXPECT_THROW(db.add({OpType::kRmsNorm, 1}, {{1.0}, -1.0}), Error);
}

}  // namespace
}  // namespace vidur
