// Tests for disaggregated prefill/decode serving (Splitwise / DistServe,
// paper §2.2): role assignment, KV-transfer hand-off, decode-side admission,
// and the latency signature that motivates the technique.
#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "workload/trace_generator.h"

namespace vidur {
namespace {

SimulationConfig disagg_config(int prefill_replicas, int decode_replicas,
                               SchedulerKind unified_kind = SchedulerKind::kVllm) {
  SimulationConfig config;
  config.model = model_by_name("llama2-7b");
  config.node.sku = sku_by_name("a100");
  config.parallel = ParallelConfig{1, 1, prefill_replicas + decode_replicas};
  config.scheduler.kind = unified_kind;  // ignored when disagg is on
  config.scheduler.max_batch_size = 32;
  config.scheduler.chunk_size = 512;
  config.disagg.num_prefill_replicas = prefill_replicas;
  return config;
}

BackendFactory reference_factory(const SimulationConfig& config,
                                 std::uint64_t seed = 1) {
  const ModelSpec model = config.model;
  const NodeSpec node = config.node;
  const ParallelConfig parallel = config.parallel;
  return [model, node, parallel, seed](ReplicaId r) {
    return std::make_unique<ReferenceExecutor>(
        node, model, parallel, seed + static_cast<std::uint64_t>(r));
  };
}

Trace poisson_trace(int n, double qps, std::uint64_t seed = 11) {
  return generate_trace(trace_by_name("chat1m"),
                        ArrivalSpec{ArrivalKind::kPoisson, qps, 0}, n, seed);
}

TEST(Disagg, CompletesAllRequests) {
  const SimulationConfig config = disagg_config(1, 1);
  const Trace trace = poisson_trace(60, 1.0);
  Simulator sim(config, trace, reference_factory(config));
  const SimulationMetrics m = sim.run();
  EXPECT_EQ(m.num_completed, 60u);
  EXPECT_GT(m.ttft.p50, 0.0);
  EXPECT_GT(m.tbt.p50, 0.0);
  for (const RequestState& r : sim.request_states()) {
    EXPECT_TRUE(r.finished());
    EXPECT_GE(r.record.e2e_latency(), r.record.ttft());
  }
}

TEST(Disagg, MultiTokenRequestsFinishOnDecodeReplicas) {
  const SimulationConfig config = disagg_config(1, 2);
  Trace trace;
  for (int i = 0; i < 24; ++i) trace.push_back(Request{i, 0.1 * i, 256, 32});
  Simulator sim(config, trace, reference_factory(config));
  sim.run();
  for (const RequestState& r : sim.request_states()) {
    EXPECT_TRUE(r.finished());
    // Final owner is the decode replica it migrated to.
    EXPECT_GE(r.replica, 1);
    EXPECT_LE(r.replica, 2);
  }
}

TEST(Disagg, SingleTokenRequestsFinishOnPrefillReplica) {
  // decode_tokens == 1 means the first (prefill-produced) token completes
  // the request: no KV transfer, no decode replica involved.
  const SimulationConfig config = disagg_config(1, 1);
  Trace trace;
  for (int i = 0; i < 8; ++i) trace.push_back(Request{i, 0.0, 128, 1});
  Simulator sim(config, trace, reference_factory(config));
  const SimulationMetrics m = sim.run();
  EXPECT_EQ(m.num_completed, 8u);
  for (const RequestState& r : sim.request_states()) EXPECT_EQ(r.replica, 0);
}

TEST(Disagg, DecodeRepliasNeverPreempt) {
  // Conservative admission on the decode role must never throw away a
  // transferred KV cache, even under memory pressure.
  SimulationConfig config = disagg_config(1, 1);
  config.memory_utilization = 0.3;
  const Trace trace = generate_trace(
      trace_by_name("bwb4k"), ArrivalSpec{ArrivalKind::kStatic, 0, 0}, 24, 9);
  Simulator sim(config, trace, reference_factory(config));
  const SimulationMetrics m = sim.run();
  EXPECT_EQ(m.num_completed, 24u);
  EXPECT_EQ(m.num_restarts, 0);
}

TEST(Disagg, TransferLatencyDelaysDecodeNotTtft) {
  // The KV transfer happens after the first token, so a large transfer
  // latency inflates e2e latency but leaves TTFT essentially unchanged.
  Trace trace;
  for (int i = 0; i < 16; ++i) trace.push_back(Request{i, 0.5 * i, 256, 16});

  SimulationConfig fast = disagg_config(1, 1);
  fast.disagg.transfer_latency = 0.0;
  Simulator sim_fast(fast, trace, reference_factory(fast, 3));
  const SimulationMetrics m_fast = sim_fast.run();

  SimulationConfig slow = disagg_config(1, 1);
  slow.disagg.transfer_latency = 0.5;
  Simulator sim_slow(slow, trace, reference_factory(slow, 3));
  const SimulationMetrics m_slow = sim_slow.run();

  EXPECT_NEAR(m_slow.ttft.p50, m_fast.ttft.p50, 1e-6);
  EXPECT_GT(m_slow.normalized_e2e_latency.p50,
            m_fast.normalized_e2e_latency.p50);
}

TEST(Disagg, SlowerTransferLinkRaisesLatency) {
  Trace trace;
  for (int i = 0; i < 16; ++i) trace.push_back(Request{i, 0.5 * i, 2048, 16});

  SimulationConfig fast = disagg_config(1, 1);
  fast.disagg.transfer_bandwidth_gbps = 100.0;
  Simulator sim_fast(fast, trace, reference_factory(fast, 3));
  const double fast_e2e = sim_fast.run().normalized_e2e_latency.p50;

  SimulationConfig slow = disagg_config(1, 1);
  slow.disagg.transfer_bandwidth_gbps = 1.0;
  Simulator sim_slow(slow, trace, reference_factory(slow, 3));
  const double slow_e2e = sim_slow.run().normalized_e2e_latency.p50;

  EXPECT_GT(slow_e2e, fast_e2e);
}

TEST(Disagg, ShieldsDecodesFromPrefillInterference) {
  // The motivating effect (paper §2.2): a unified prefill-prioritizing
  // scheduler pauses ongoing decodes to run arriving prompts, producing TBT
  // spikes; disaggregation gives decodes their own replica, so tail TBT
  // drops even though total GPU count is equal.
  Trace trace;
  for (int i = 0; i < 48; ++i) trace.push_back(Request{i, 0.25 * i, 1024, 96});

  SimulationConfig unified = disagg_config(1, 1);
  unified.disagg.num_prefill_replicas = 0;  // plain 2-replica vLLM
  Simulator sim_unified(unified, trace, reference_factory(unified, 5));
  const SimulationMetrics m_unified = sim_unified.run();

  const SimulationConfig split = disagg_config(1, 1);
  Simulator sim_split(split, trace, reference_factory(split, 5));
  const SimulationMetrics m_split = sim_split.run();

  EXPECT_EQ(m_split.num_completed, 48u);
  EXPECT_LT(m_split.tbt.p99, m_unified.tbt.p99);
}

TEST(Disagg, RequiresOneDecodeReplica) {
  SimulationConfig config = disagg_config(1, 1);
  config.disagg.num_prefill_replicas = 2;  // == num_replicas: no decode role
  EXPECT_THROW(
      Simulator(config, poisson_trace(4, 1.0), reference_factory(config)),
      Error);
}

TEST(Disagg, BadTransferParametersThrow) {
  SimulationConfig config = disagg_config(1, 1);
  config.disagg.transfer_bandwidth_gbps = 0.0;
  EXPECT_THROW(
      Simulator(config, poisson_trace(4, 1.0), reference_factory(config)),
      Error);
  SimulationConfig config2 = disagg_config(1, 1);
  config2.disagg.transfer_latency = -1.0;
  EXPECT_THROW(
      Simulator(config2, poisson_trace(4, 1.0), reference_factory(config2)),
      Error);
}

TEST(Disagg, DeterministicForSameSeed) {
  const SimulationConfig config = disagg_config(2, 2);
  const Trace trace = poisson_trace(40, 2.0);
  Simulator a(config, trace, reference_factory(config, 7));
  Simulator b(config, trace, reference_factory(config, 7));
  EXPECT_DOUBLE_EQ(a.run().makespan, b.run().makespan);
}

TEST(Disagg, ComposesWithDeferredGlobalScheduler) {
  // Deferred routing parks arrivals centrally; only prefill replicas may
  // pull them, decode replicas still receive work via hand-off only.
  SimulationConfig config = disagg_config(2, 2);
  config.global_scheduler = GlobalSchedulerKind::kDeferred;
  const Trace trace = poisson_trace(50, 3.0);
  Simulator sim(config, trace, reference_factory(config));
  const SimulationMetrics m = sim.run();
  EXPECT_EQ(m.num_completed, 50u);
  for (const RequestState& r : sim.request_states())
    if (r.request.decode_tokens > 1) EXPECT_GE(r.replica, 2);
}

TEST(Disagg, ComposesWithAsyncPipelineParallelism) {
  SimulationConfig config = disagg_config(1, 1);
  config.parallel.tensor_parallel = 1;
  config.parallel.pipeline_parallel = 2;
  config.async_pipeline_comm = true;
  const Trace trace = poisson_trace(30, 1.0);
  Simulator sim(config, trace, reference_factory(config));
  EXPECT_EQ(sim.run().num_completed, 30u);
}

// Property sweep: every trace x role split completes everything with sane
// per-request invariants (prefill time precedes completion, no restarts on
// decode replicas, monotone token times).
struct DisaggCase {
  const char* trace;
  int prefill;
  int decode;
};

class DisaggPropertyTest : public ::testing::TestWithParam<DisaggCase> {};

TEST_P(DisaggPropertyTest, CompletesWithRequestInvariants) {
  const DisaggCase& param = GetParam();
  const SimulationConfig config = disagg_config(param.prefill, param.decode);
  const Trace trace =
      generate_trace(trace_by_name(param.trace),
                     ArrivalSpec{ArrivalKind::kPoisson, 1.0, 0}, 40, 17);
  Simulator sim(config, trace, reference_factory(config));
  const SimulationMetrics m = sim.run();
  EXPECT_EQ(m.num_completed, 40u);
  EXPECT_EQ(m.num_restarts, 0);  // both roles are preemption-free
  for (const RequestState& r : sim.request_states()) {
    EXPECT_TRUE(r.finished());
    EXPECT_GE(r.record.prefill_completed_time,
              r.record.first_scheduled_time);
    EXPECT_GE(r.record.completed_time, r.record.prefill_completed_time);
    for (std::size_t i = 1; i < r.record.token_times.size(); ++i)
      EXPECT_GE(r.record.token_times[i], r.record.token_times[i - 1]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    TracesAndSplits, DisaggPropertyTest,
    ::testing::Values(DisaggCase{"chat1m", 1, 1}, DisaggCase{"chat1m", 1, 3},
                      DisaggCase{"chat1m", 3, 1}, DisaggCase{"arxiv4k", 2, 2},
                      DisaggCase{"bwb4k", 1, 3}),
    [](const ::testing::TestParamInfo<DisaggCase>& info) {
      return std::string(info.param.trace) + "_" +
             std::to_string(info.param.prefill) + "P" +
             std::to_string(info.param.decode) + "D";
    });

}  // namespace
}  // namespace vidur
