// Tests for the five batching policies (src/scheduler/policies.*): admission
// rules, token budgets, preemption, and the policy-specific behaviours the
// paper's taxonomy describes (§2.2, §4.5). Policies are driven directly
// through the ReplicaScheduler interface with a miniature execution loop.
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <vector>

#include "common/check.h"
#include "scheduler/disagg_policies.h"
#include "scheduler/policies.h"

namespace vidur {
namespace {

MemoryPlan small_plan(long blocks = 1000) {
  MemoryPlan plan;
  plan.num_kv_blocks = blocks;
  plan.block_size = 16;
  return plan;
}

SchedulerConfig config_of(SchedulerKind kind, int batch_size = 8,
                          TokenCount chunk = 64) {
  SchedulerConfig config;
  config.kind = kind;
  config.max_batch_size = batch_size;
  config.chunk_size = chunk;
  config.max_tokens_per_iteration = 4096;
  return config;
}

/// Owns request states and drives a scheduler through schedule/on_batch_end
/// cycles with a fake clock.
class Harness {
 public:
  explicit Harness(std::unique_ptr<ReplicaScheduler> scheduler)
      : scheduler_(std::move(scheduler)) {}

  RequestState* add(TokenCount prefill, TokenCount decode) {
    auto state = std::make_unique<RequestState>();
    state->request = Request{next_id_++, now_, prefill, decode};
    state->record.id = state->request.id;
    state->record.arrival_time = now_;
    RequestState* ptr = state.get();
    states_.push_back(std::move(state));
    scheduler_->enqueue(ptr);
    return ptr;
  }

  /// One schedule + complete cycle. Returns the batch that ran.
  BatchSpec step() {
    BatchSpec batch = scheduler_->schedule(now_);
    now_ += 0.01;
    if (!batch.empty()) scheduler_->on_batch_end(batch, now_);
    return batch;
  }

  /// Run until everything finishes (or the step limit trips).
  int run_to_completion(int max_steps = 100000) {
    int steps = 0;
    while (scheduler_->has_work()) {
      VIDUR_CHECK_MSG(++steps <= max_steps, "scheduler made no progress");
      step();
    }
    return steps;
  }

  ReplicaScheduler& scheduler() { return *scheduler_; }
  Seconds now() const { return now_; }

 private:
  std::unique_ptr<ReplicaScheduler> scheduler_;
  std::vector<std::unique_ptr<RequestState>> states_;
  RequestId next_id_ = 0;
  Seconds now_ = 0.0;
};

Harness make_harness(SchedulerKind kind, int batch_size = 8,
                     TokenCount chunk = 64, long blocks = 1000) {
  return Harness(
      make_replica_scheduler(config_of(kind, batch_size, chunk),
                             small_plan(blocks)));
}

// ------------------------------------------------------ shared invariants

class AllPoliciesTest : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(AllPoliciesTest, CompletesAllRequests) {
  Harness h = make_harness(GetParam());
  std::vector<RequestState*> requests;
  for (int i = 0; i < 20; ++i)
    requests.push_back(h.add(50 + i * 7, 10 + i % 5));
  h.run_to_completion();
  for (RequestState* r : requests) {
    EXPECT_TRUE(r->finished());
    EXPECT_GE(r->record.completed_time, 0.0);
    EXPECT_EQ(static_cast<TokenCount>(r->record.token_times.size()),
              r->request.decode_tokens);
  }
}

TEST_P(AllPoliciesTest, NeverExceedsBatchSize) {
  Harness h = make_harness(GetParam(), /*batch_size=*/4);
  for (int i = 0; i < 30; ++i) h.add(40, 8);
  while (h.scheduler().has_work()) {
    const BatchSpec batch = h.step();
    EXPECT_LE(batch.size(), 4);
  }
}

TEST_P(AllPoliciesTest, MemoryNeverOversubscribed) {
  Harness h = make_harness(GetParam(), 8, 64, /*blocks=*/64);
  for (int i = 0; i < 16; ++i) h.add(100, 30);
  while (h.scheduler().has_work()) {
    h.step();
    EXPECT_LE(h.scheduler().blocks().used_blocks(),
              h.scheduler().blocks().total_blocks());
  }
}

TEST_P(AllPoliciesTest, TokenTimesStrictlyOrdered) {
  Harness h = make_harness(GetParam());
  RequestState* r = h.add(64, 12);
  h.run_to_completion();
  for (std::size_t i = 1; i < r->record.token_times.size(); ++i)
    EXPECT_GT(r->record.token_times[i], r->record.token_times[i - 1]);
}

TEST_P(AllPoliciesTest, OversizedRequestRejectedAtEnqueue) {
  Harness h = make_harness(GetParam(), 8, 64, /*blocks=*/4);
  EXPECT_THROW(h.add(1000, 1000), Error);  // 2000 tokens > 64-token pool
}

TEST_P(AllPoliciesTest, KvContextTracksProgress) {
  Harness h = make_harness(GetParam());
  RequestState* r = h.add(100, 5);
  h.run_to_completion();
  EXPECT_EQ(r->prefill_done, 100);
  EXPECT_EQ(r->decode_done, 5);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, AllPoliciesTest,
    ::testing::Values(SchedulerKind::kFasterTransformer, SchedulerKind::kOrca,
                      SchedulerKind::kVllm, SchedulerKind::kSarathi,
                      SchedulerKind::kLightLlm),
    [](const ::testing::TestParamInfo<SchedulerKind>& info) {
      std::string name = scheduler_name(info.param);
      for (char& c : name)
        if (c == '+' || c == '_') c = 'P';
      return name;
    });

// -------------------------------------------------------- FasterTransformer

TEST(FasterTransformer, NoAdmissionUntilGroupFinishes) {
  Harness h = make_harness(SchedulerKind::kFasterTransformer, 2);
  h.add(10, 5);
  h.add(10, 3);
  h.add(10, 2);  // third waits for the first group
  const BatchSpec first = h.step();
  EXPECT_EQ(first.size(), 2);
  EXPECT_TRUE(first.items[0].is_prefill);
  // Until both of the first group finish, the third request stays waiting.
  while (h.scheduler().num_running() > 0) {
    EXPECT_EQ(h.scheduler().num_waiting(), 1);
    h.step();
  }
  const BatchSpec second = h.step();
  ASSERT_EQ(second.size(), 1);
  EXPECT_EQ(second.items[0].request, 2);
}

TEST(FasterTransformer, DecodesRunInLockstep) {
  Harness h = make_harness(SchedulerKind::kFasterTransformer, 4);
  h.add(10, 5);
  h.add(10, 5);
  h.step();  // prefill both
  const BatchSpec decodes = h.step();
  EXPECT_EQ(decodes.size(), 2);
  EXPECT_EQ(decodes.num_decodes(), 2);
}

TEST(FasterTransformer, ReservesFullSequenceUpFront) {
  Harness h = make_harness(SchedulerKind::kFasterTransformer, 1);
  RequestState* r = h.add(100, 60);  // 160 tokens -> 10 blocks
  h.step();
  EXPECT_EQ(h.scheduler().blocks().allocated_to(r->request.id), 10);
}

// ------------------------------------------------------------------ Orca+

TEST(Orca, WholePromptInOneChunk) {
  Harness h = make_harness(SchedulerKind::kOrca);
  h.add(500, 4);
  const BatchSpec batch = h.step();
  ASSERT_EQ(batch.size(), 1);
  EXPECT_EQ(batch.items[0].q_tokens, 500);
  EXPECT_TRUE(batch.items[0].completes_prefill);
}

TEST(Orca, DecodesJoinNewPrefills) {
  Harness h = make_harness(SchedulerKind::kOrca);
  h.add(50, 10);
  h.step();  // prefill r0
  h.add(60, 10);
  const BatchSpec mixed = h.step();  // r1 prefill + r0 decode
  EXPECT_EQ(mixed.size(), 2);
  EXPECT_EQ(mixed.num_prefills(), 1);
  EXPECT_EQ(mixed.num_decodes(), 1);
}

TEST(Orca, RespectsIterationTokenCap) {
  Harness h = make_harness(SchedulerKind::kOrca, 8);
  h.add(3000, 2);
  h.add(3000, 2);  // together they exceed the 4096-token cap
  const BatchSpec batch = h.step();
  EXPECT_EQ(batch.size(), 1);
}

// ------------------------------------------------------------------- vLLM

TEST(Vllm, PrefillsPauseDecodes) {
  Harness h = make_harness(SchedulerKind::kVllm);
  h.add(50, 10);
  h.step();  // prefill r0
  h.add(60, 10);
  // Eager prefill: r1's prompt runs alone; r0's decode waits.
  const BatchSpec batch = h.step();
  ASSERT_EQ(batch.size(), 1);
  EXPECT_TRUE(batch.items[0].is_prefill);
  EXPECT_EQ(batch.items[0].request, 1);
  const BatchSpec decodes = h.step();
  EXPECT_EQ(decodes.num_decodes(), 2);
}

TEST(Vllm, PreemptsOnKvExhaustionAndRestarts) {
  // Pool of 20 blocks = 320 tokens. Two requests of 150+40 tokens can start
  // (10 blocks each at admission) but cannot both grow to completion.
  Harness h = make_harness(SchedulerKind::kVllm, 8, 64, /*blocks=*/20);
  RequestState* r0 = h.add(150, 40);
  RequestState* r1 = h.add(150, 40);
  h.run_to_completion();
  EXPECT_TRUE(r0->finished());
  EXPECT_TRUE(r1->finished());
  // The later-arrived request is the preemption victim.
  EXPECT_EQ(r0->record.num_restarts, 0);
  EXPECT_GE(r1->record.num_restarts, 1);
}

TEST(Vllm, WatermarkBlocksAdmissionNearFullPool) {
  SchedulerConfig config = config_of(SchedulerKind::kVllm, 8);
  config.watermark_fraction = 0.5;  // keep half the pool free
  Harness h(make_replica_scheduler(config, small_plan(20)));
  h.add(170, 4);  // needs 11 blocks > 50% of 20
  const BatchSpec batch = h.step();
  EXPECT_TRUE(batch.empty());  // admission blocked by watermark
}

// ---------------------------------------------------------------- Sarathi

TEST(Sarathi, ChunksLongPrompts) {
  Harness h = make_harness(SchedulerKind::kSarathi, 8, /*chunk=*/64);
  h.add(200, 4);
  const BatchSpec c1 = h.step();
  ASSERT_EQ(c1.size(), 1);
  EXPECT_EQ(c1.items[0].q_tokens, 64);
  EXPECT_FALSE(c1.items[0].completes_prefill);
  const BatchSpec c2 = h.step();
  EXPECT_EQ(c2.items[0].q_tokens, 64);
  EXPECT_EQ(c2.items[0].kv_context, 64);
  h.step();  // third chunk: 64
  const BatchSpec c4 = h.step();
  EXPECT_EQ(c4.items[0].q_tokens, 8);  // 200 - 3*64
  EXPECT_TRUE(c4.items[0].completes_prefill);
}

TEST(Sarathi, BudgetSharedBetweenDecodesAndChunks) {
  Harness h = make_harness(SchedulerKind::kSarathi, 8, /*chunk=*/64);
  h.add(32, 20);
  h.step();  // r0 prefill (32 <= 64)
  h.add(500, 4);
  const BatchSpec mixed = h.step();
  // r0 decode (1 token) + r1 chunk (63 tokens) == 64 budget.
  ASSERT_EQ(mixed.size(), 2);
  EXPECT_EQ(mixed.total_q_tokens(), 64);
  EXPECT_EQ(mixed.num_decodes(), 1);
}

TEST(Sarathi, DecodesNeverPaused) {
  Harness h = make_harness(SchedulerKind::kSarathi, 8, 64);
  RequestState* r0 = h.add(32, 30);
  h.step();
  h.add(4000, 4);  // long prompt arrives
  // Every following iteration still advances r0's decode.
  for (int i = 0; i < 10; ++i) {
    const TokenCount before = r0->decode_done;
    const BatchSpec batch = h.step();
    if (r0->finished()) break;
    EXPECT_EQ(r0->decode_done, before + 1) << batch.size();
  }
}

TEST(Sarathi, NeverExceedsChunkBudget) {
  Harness h = make_harness(SchedulerKind::kSarathi, 8, /*chunk=*/128);
  for (int i = 0; i < 10; ++i) h.add(300, 20);
  while (h.scheduler().has_work()) {
    const BatchSpec batch = h.step();
    EXPECT_LE(batch.total_q_tokens(), 128);
  }
}

// --------------------------------------------------------------- LightLLM

TEST(LightLlm, ConservativeAdmissionNeverPreempts) {
  // Pool too small for both requests at max length: only one admitted.
  Harness h = make_harness(SchedulerKind::kLightLlm, 8, 64, /*blocks=*/20);
  RequestState* r0 = h.add(150, 40);  // 190 tokens -> 12 blocks peak
  RequestState* r1 = h.add(150, 40);
  const BatchSpec first = h.step();
  EXPECT_EQ(first.size(), 1);
  EXPECT_EQ(h.scheduler().num_waiting(), 1);
  h.run_to_completion();
  EXPECT_EQ(r0->record.num_restarts, 0);
  EXPECT_EQ(r1->record.num_restarts, 0);
}

TEST(LightLlm, AdmitsWhenPeakFits) {
  Harness h = make_harness(SchedulerKind::kLightLlm, 8, 64, /*blocks=*/30);
  h.add(150, 40);  // 12 blocks peak
  h.add(150, 40);  // 12 blocks peak; 24 <= 30 -> both admitted
  const BatchSpec first = h.step();
  EXPECT_EQ(first.size(), 2);
}

// ----------------------------------------------------------------- misc

TEST(Factory, MakesEveryPolicy) {
  for (SchedulerKind kind :
       {SchedulerKind::kFasterTransformer, SchedulerKind::kOrca,
        SchedulerKind::kVllm, SchedulerKind::kSarathi,
        SchedulerKind::kLightLlm}) {
    auto scheduler = make_replica_scheduler(config_of(kind), small_plan());
    EXPECT_NE(scheduler, nullptr);
  }
}

TEST(SchedulerNames, RoundTrip) {
  for (SchedulerKind kind :
       {SchedulerKind::kFasterTransformer, SchedulerKind::kOrca,
        SchedulerKind::kVllm, SchedulerKind::kSarathi,
        SchedulerKind::kLightLlm})
    EXPECT_EQ(scheduler_from_name(scheduler_name(kind)), kind);
  EXPECT_THROW(scheduler_from_name("fifo"), Error);
}

TEST(SchedulerConfigValidation, RejectsBadKnobs) {
  SchedulerConfig config;
  config.max_batch_size = 0;
  EXPECT_THROW(config.validate(), Error);
  config = SchedulerConfig{};
  config.watermark_fraction = 1.5;
  EXPECT_THROW(config.validate(), Error);
}

TEST(RequestRecordTimes, FirstScheduleAndTtftStamped) {
  Harness h = make_harness(SchedulerKind::kSarathi, 8, 64);
  RequestState* r = h.add(200, 5);
  h.run_to_completion();
  EXPECT_GE(r->record.first_scheduled_time, 0.0);
  EXPECT_GT(r->record.prefill_completed_time,
            r->record.first_scheduled_time);
  EXPECT_GT(r->record.completed_time, r->record.prefill_completed_time);
}

// ------------------------------------------------------- extract (disagg)

TEST(Extract, ReleasesMemoryAndForgetsRequest) {
  Harness h(std::make_unique<SarathiScheduler>(
      config_of(SchedulerKind::kSarathi, 8, 4096), small_plan()));
  RequestState* r = h.add(128, 10);
  h.step();  // prefill completes (chunk covers the whole prompt)
  ASSERT_TRUE(r->prefill_complete());
  ASSERT_TRUE(r->admitted);
  const long used_before = h.scheduler().blocks().used_blocks();
  ASSERT_GT(used_before, 0);

  h.scheduler().extract(r);
  EXPECT_FALSE(r->admitted);
  EXPECT_EQ(h.scheduler().blocks().used_blocks(), 0);
  EXPECT_EQ(h.scheduler().find(r->request.id), nullptr);
  EXPECT_EQ(h.scheduler().outstanding(), 0);
}

TEST(Extract, RejectsUnadmittedOrInFlightRequests) {
  Harness h(std::make_unique<SarathiScheduler>(
      config_of(SchedulerKind::kSarathi, 8, 4096), small_plan()));
  RequestState* waiting = h.add(128, 10);
  EXPECT_THROW(h.scheduler().extract(waiting), Error);  // never admitted

  BatchSpec batch = h.scheduler().schedule(0.0);  // now in flight
  ASSERT_FALSE(batch.empty());
  EXPECT_THROW(h.scheduler().extract(waiting), Error);
}

// --------------------------------------------------- disaggregated roles

TEST(DisaggPrefill, ChunksPromptsAndNeverDecodes) {
  Harness h(std::make_unique<DisaggPrefillScheduler>(
      config_of(SchedulerKind::kSarathi, 8, 64), small_plan()));
  RequestState* r = h.add(200, 10);
  // 200-token prompt under a 64-token budget: 4 chunks, all prefill items.
  int prefill_items = 0;
  while (!r->prefill_complete()) {
    const BatchSpec batch = h.step();
    ASSERT_FALSE(batch.empty());
    for (const BatchItem& item : batch.items) {
      EXPECT_TRUE(item.is_prefill);
      ++prefill_items;
    }
  }
  EXPECT_EQ(prefill_items, 4);
  // Prefill done: the role scheduler must not produce decode work.
  EXPECT_TRUE(h.scheduler().schedule(h.now()).empty());
}

TEST(DisaggPrefill, BatchesChunksAcrossRequests) {
  Harness h(std::make_unique<DisaggPrefillScheduler>(
      config_of(SchedulerKind::kSarathi, 8, 128), small_plan()));
  h.add(64, 5);
  h.add(64, 5);
  const BatchSpec batch = h.scheduler().schedule(0.0);
  EXPECT_EQ(batch.size(), 2);  // both prompts fit one 128-token budget
  EXPECT_EQ(batch.total_q_tokens(), 128);
}

/// Enqueue a request that looks like a completed prefill hand-off.
RequestState* add_migrated(Harness& h, TokenCount prefill, TokenCount decode) {
  RequestState* r = h.add(prefill, decode);
  r->prefill_done = prefill;
  r->kv_context = prefill;
  r->decode_done = 1;  // prefill emitted the first token upstream
  r->record.prefill_completed_time = 0.0;
  return r;
}

TEST(DisaggDecode, DecodesMigratedRequestsToCompletion) {
  Harness h(std::make_unique<DisaggDecodeScheduler>(
      config_of(SchedulerKind::kVllm, 8), small_plan()));
  RequestState* r = add_migrated(h, 100, 10);
  const int steps = h.run_to_completion();
  EXPECT_TRUE(r->finished());
  EXPECT_EQ(steps, 9);  // tokens 2..10, one per iteration
  EXPECT_EQ(r->record.num_restarts, 0);
}

TEST(DisaggDecode, RejectsRequestsWithIncompletePrefill) {
  Harness h(std::make_unique<DisaggDecodeScheduler>(
      config_of(SchedulerKind::kVllm, 8), small_plan()));
  h.add(100, 10);  // raw request: prefill not done
  EXPECT_THROW(h.scheduler().schedule(0.0), Error);
}

TEST(DisaggDecode, ConservativeAdmissionDefersWhenPeakWouldNotFit) {
  // Pool of 20 blocks (320 tokens). Two migrated requests, each needing
  // 10 blocks at max length: both admitted. A third must wait even though
  // its *current* footprint would fit.
  Harness h(std::make_unique<DisaggDecodeScheduler>(
      config_of(SchedulerKind::kVllm, 8), small_plan(20)));
  add_migrated(h, 120, 40);  // 160 tokens max = 10 blocks
  add_migrated(h, 120, 40);
  RequestState* third = add_migrated(h, 120, 40);

  const BatchSpec batch = h.scheduler().schedule(0.0);
  EXPECT_EQ(batch.size(), 2);
  EXPECT_FALSE(third->admitted);
  EXPECT_EQ(h.scheduler().num_waiting(), 1);
}

TEST(DisaggDecode, AdmitsDeferredRequestOnceMemoryFrees) {
  Harness h(std::make_unique<DisaggDecodeScheduler>(
      config_of(SchedulerKind::kVllm, 8), small_plan(20)));
  RequestState* a = add_migrated(h, 120, 2);
  RequestState* b = add_migrated(h, 120, 2);
  RequestState* c = add_migrated(h, 120, 40);
  h.run_to_completion();
  EXPECT_TRUE(a->finished());
  EXPECT_TRUE(b->finished());
  EXPECT_TRUE(c->finished());
  EXPECT_EQ(c->record.num_restarts, 0);
}

}  // namespace
}  // namespace vidur
