// Cross-thread determinism suite for the sharded simulation core: the
// `execution.threads` knob must never change results. Same-seed runs at
// threads=1/2/8 are compared *byte for byte* — result JSON (headline
// metrics + full registry snapshot) and the exported trace document — for
//
//   - the committed golden chaos/cache specs (spot-churn, session-chat),
//     whose cache-aware routing keeps them on the central path, and
//   - a round-robin fleet that actually engages the sharded engine,
//
// plus the spec-layer contract (threads round-trips losslessly, invalid
// values rejected), the run_sweep() ordering pin (results keyed by sweep
// index, byte-stable across worker counts), and the hardware_threads()
// clamp pin.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/run.h"
#include "common/check.h"
#include "common/thread_pool.h"

namespace vidur {
namespace {

ExperimentSpec load_spec(const std::string& name) {
  const std::string path = std::string(VIDUR_SPEC_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return ExperimentSpec::from_json_string(text.str());
}

/// One run's complete observable output, serialized for byte comparison.
struct RunDump {
  std::string result;  ///< ExperimentResult::to_json() (metrics + registry)
  std::string trace;   ///< Chrome trace document (merged trace records)
};

/// Run `spec` at the given thread count in a fresh session (cold estimator
/// cache, so the cache-traffic counters are comparable across runs).
RunDump run_fresh(ExperimentSpec spec, int threads) {
  spec.deployment.threads = threads;
  spec.obs.trace = true;
  const ExperimentResult result = run_experiment(spec);
  EXPECT_FALSE(result.failed()) << result.error;
  return {result.to_json().dump(), result.trace.dump()};
}

/// Same, against a caller-owned (typically pre-warmed) session.
RunDump run_shared(VidurSession& session, ExperimentSpec spec, int threads) {
  spec.deployment.threads = threads;
  spec.obs.trace = true;
  const ExperimentResult result = run_experiment(session, spec);
  EXPECT_FALSE(result.failed()) << result.error;
  return {result.to_json().dump(), result.trace.dump()};
}

TEST(ParallelSim, GoldenSpecsBitIdenticalAcrossThreadCounts) {
  // The committed chaos and prefix-cache specs: autoscaling, fault
  // injection, cache-aware routing and tracing all enabled. Their routing
  // needs fleet-global state every decision, so the engine must keep them
  // on the central path — and the knob must be a provable no-op.
  for (const char* name : {"spot-churn.json", "session-chat.json"}) {
    const ExperimentSpec spec = load_spec(name);
    const RunDump base = run_fresh(spec, 1);
    for (const int threads : {2, 8}) {
      const RunDump run = run_fresh(spec, threads);
      EXPECT_EQ(run.result, base.result)
          << name << ": result JSON diverged at threads=" << threads;
      EXPECT_EQ(run.trace, base.trace)
          << name << ": trace diverged at threads=" << threads;
    }
  }
}

TEST(ParallelSim, ShardedFleetBitIdenticalAcrossThreadCounts) {
  // A deployment the sharded engine actually parallelizes: static
  // round-robin fleet, no pools/autoscale/faults, tracing on. The session
  // is shared and pre-warmed so the estimator-cache traffic attributed to
  // each measured run is identical (all hits) regardless of which shard
  // thread performs the lookups.
  ExperimentSpec spec;
  spec.name = "parallel-fleet";
  spec.with_parallelism(1, 1, 8)
      .with_scheduler(SchedulerKind::kVllm, 64)
      .with_trace("chat1m", 8.0, 800)
      .with_seed(7);

  VidurSession session(model_by_name(spec.model));
  run_shared(session, spec, 1);  // warm the estimator cache, discarded

  const RunDump base = run_shared(session, spec, 1);
  for (const int threads : {2, 8}) {
    const RunDump run = run_shared(session, spec, threads);
    EXPECT_EQ(run.result, base.result)
        << "result JSON diverged at threads=" << threads;
    EXPECT_EQ(run.trace, base.trace)
        << "trace diverged at threads=" << threads;
  }
}

TEST(ParallelSim, ThreadsKnobRoundTripsLosslessly) {
  // Non-default values survive to_json/from_json; the default is omitted
  // entirely so committed specs stay canonically serialized.
  ExperimentSpec spec;
  spec.deployment.threads = 4;
  const std::string text = spec.to_json_string();
  EXPECT_NE(text.find("\"execution\""), std::string::npos);
  EXPECT_EQ(ExperimentSpec::from_json_string(text).deployment.threads, 4);

  spec.deployment.threads = 1;
  EXPECT_EQ(spec.to_json_string().find("\"execution\""), std::string::npos);
}

TEST(ParallelSim, ThreadsKnobValidation) {
  ExperimentSpec spec;
  spec.deployment.threads = 0;
  EXPECT_THROW(spec.validate(), Error);

  spec.deployment.threads = 2;
  EXPECT_NO_THROW(spec.validate());

  // Disaggregated deployments synchronize on KV transfers every iteration;
  // the sharded core refuses them rather than silently serializing.
  spec.deployment.disagg.num_prefill_replicas = 1;
  spec.deployment.parallel.num_replicas = 2;
  EXPECT_THROW(spec.validate(), Error);
}

TEST(ParallelSim, SweepResultsKeyedBySweepIndex) {
  // run_sweep must key results by sweep index, not worker completion
  // order: the same sweep run with 1 worker and 4 workers must produce
  // byte-identical JSON at every index. Reference mode keeps the runs
  // estimator-free, so there is no shared-cache traffic to attribute and
  // the comparison can be exact.
  ExperimentSpec spec;
  spec.name = "sweep-order";
  spec.mode = ExperimentMode::kReference;
  spec.with_trace("chat1m", 2.0, 60).with_seed(11);
  spec.sweep.qps = {0.5, 1.0, 2.0, 4.0};
  spec.sweep.num_replicas = {1, 2};

  const std::vector<ExperimentSpec> points = spec.expand_sweep();
  ASSERT_EQ(points.size(), 8u);

  spec.num_threads = 1;
  const std::vector<ExperimentResult> serial = run_sweep(spec);
  spec.num_threads = 4;
  const std::vector<ExperimentResult> pooled = run_sweep(spec);
  ASSERT_EQ(serial.size(), points.size());
  ASSERT_EQ(pooled.size(), points.size());

  for (std::size_t i = 0; i < points.size(); ++i) {
    // Each slot holds the point the expansion order put there...
    EXPECT_EQ(serial[i].spec.name, points[i].name);
    EXPECT_EQ(pooled[i].spec.name, points[i].name);
    EXPECT_EQ(pooled[i].spec.workload.arrival.qps,
              points[i].workload.arrival.qps);
    // ...and its payload is byte-stable across worker counts.
    EXPECT_EQ(pooled[i].to_json().dump(), serial[i].to_json().dump())
        << "sweep point " << i << " (" << points[i].name
        << ") diverged across worker counts";
  }
}

TEST(ParallelSim, HardwareThreadsIsClampedToAtLeastOne) {
  // Every call site (run_sweep, search, bench meta) sizes pools off this;
  // std::thread::hardware_concurrency() may return 0 and must never
  // propagate.
  EXPECT_GE(hardware_threads(), 1u);
}

}  // namespace
}  // namespace vidur
