// Capacity planning with Vidur-Search (paper §6): given a model and a
// workload, sweep the deployment space and report the cheapest
// SLO-compliant configuration, its capacity, and the Pareto frontier —
// the library-API version of the paper's what-if analysis (§7.3).
//
// Usage: capacity_planning [model] [trace]
#include <iostream>

#include "common/table.h"
#include "search/search.h"

int main(int argc, char** argv) {
  using namespace vidur;

  const std::string model_name = argc > 1 ? argv[1] : "internlm-20b";
  const std::string trace_name = argc > 2 ? argv[2] : "chat1m";

  VidurSession session(model_by_name(model_name));

  SearchSpace space;
  space.max_total_gpus = 8;
  space.batch_sizes = {64, 128};
  space.sarathi_chunk_sizes = {512};

  VidurSearchOptions options;
  options.capacity.num_requests = 200;
  options.capacity.binary_search_iters = 4;
  options.slo = SloSpec{2.0, 0.2};  // TTFT p90 < 2s, TBT p99 < 200ms

  std::cout << "searching " << space.enumerate(session.model()).size()
            << " deployment configs for " << model_name << " on "
            << trace_name << "...\n\n";
  const SearchResult result =
      run_search(session, space, trace_by_name(trace_name), options);

  const auto best = result.best();
  if (!best) {
    std::cout << "no SLO-compliant configuration found\n";
    return 1;
  }
  std::cout << "best config: " << best->config.to_string() << "\n"
            << "  capacity:  " << fmt_double(best->capacity_qps, 2)
            << " QPS at $" << fmt_double(best->cost_per_hour, 2) << "/hr -> "
            << fmt_double(best->qps_per_dollar, 3) << " QPS/$\n"
            << "  TTFT p90:  " << fmt_double(best->ttft_p90, 3) << "s, "
            << "TBT p99: " << fmt_double(best->tbt_p99, 3) << "s\n\n";

  std::cout << "TTFT Pareto frontier (latency vs value):\n";
  ConsoleTable table({"TTFT p90 (s)", "QPS/$", "config"});
  for (const auto& e : result.pareto_frontier(/*use_ttft=*/true))
    table.add_row({fmt_double(e.ttft_p90, 3), fmt_double(e.qps_per_dollar, 3),
                   e.config.to_string()});
  std::cout << table.str();
  return 0;
}
