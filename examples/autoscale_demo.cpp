// Elastic cluster demo: replica lifecycles, autoscaling policies, and
// cost-aware capacity planning on the built-in flash-crowd scenario.
//
//   ./autoscale_demo [scenario-name]
//
// Sizes a static fleet for the scenario's peak, then rides the same trace
// with the reactive (queue-threshold) and predictive (RateProfile
// lookahead) autoscalers, printing the replica-count timeline, the
// lifecycle event log, per-tenant SLO attainment, and the GPU-hour bill
// for each deployment mode.
#include <iostream>
#include <string>

#include "common/table.h"
#include "scenario/registry.h"
#include "search/elastic_plan.h"

using namespace vidur;

namespace {

DeploymentConfig base_deployment() {
  DeploymentConfig config;
  config.sku_name = "a100";
  config.parallel = ParallelConfig{1, 1, 1};
  config.scheduler.kind = SchedulerKind::kSarathi;
  config.scheduler.max_batch_size = 128;
  config.scheduler.chunk_size = 512;
  config.global_scheduler = GlobalSchedulerKind::kLeastOutstanding;
  return config;
}

AutoscalerConfig reactive_policy() {
  AutoscalerConfig config;
  config.kind = AutoscalerKind::kReactive;
  config.min_replicas = 2;
  config.decision_interval = 2.0;
  config.provision_delay = 5.0;
  config.warmup_delay = 2.5;
  config.scale_down_cooldown = 30.0;
  config.target_load_per_replica = 10.0;
  config.scale_up_load = 16.0;
  config.scale_down_load = 3.0;
  return config;
}

// Render the active-replica step function as a fixed-width strip chart.
void print_timeline(const ClusterScalingReport& scaling, Seconds makespan) {
  constexpr int kColumns = 72;
  std::string strip;
  std::size_t cursor = 0;
  for (int col = 0; col < kColumns; ++col) {
    const Seconds t = makespan * col / kColumns;
    while (cursor + 1 < scaling.active_timeline.size() &&
           scaling.active_timeline[cursor + 1].time <= t)
      ++cursor;
    const int active = scaling.active_timeline[cursor].active;
    strip += active == 0 ? '.' : static_cast<char>('0' + active % 10);
  }
  std::cout << "  active replicas over time (" << fmt_double(makespan, 0)
            << "s):\n  [" << strip << "]\n";
}

void print_events(const ClusterScalingReport& scaling) {
  std::cout << "  lifecycle events (first 12 after t=0):\n";
  int shown = 0;
  for (const auto& e : scaling.events) {
    if (e.time <= 0.0) continue;
    std::cout << "    t=" << fmt_double(e.time, 1) << "s  replica "
              << e.replica << ": " << replica_state_name(e.from) << " -> "
              << replica_state_name(e.to) << "\n";
    if (++shown >= 12) break;
  }
  if (shown == 0) std::cout << "    (none: the fleet never moved)\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "flash-crowd-mixed";
  Scenario scenario = scenario_by_name(name);
  // Extend the trace well past the spike: elasticity pays off in the
  // baseline stretches that static peak provisioning idles through.
  scenario.num_requests = 3000;

  VidurSession session(model_by_name("llama2-7b"));
  session.onboard("a100");
  const DeploymentConfig base = base_deployment();

  std::cout << "=== elastic cluster demo: " << scenario.to_string() << "\n";
  std::cout << "    deployment: " << base.to_string() << "\n\n";

  // ---- plan: smallest static fleet meeting the SLO target, then the
  // same trace under the reactive autoscaler -------------------------
  ElasticPlanOptions options;
  options.slo_target = 0.97;
  options.max_replicas = 6;
  options.burst_slots = 2;
  const ElasticPlanResult plan = plan_elastic_capacity(
      session, base, scenario, reactive_policy(), options);
  std::cout << "capacity plan (SLO target " << fmt_percent(options.slo_target)
            << "):\n"
            << plan.to_string() << "\n";

  // ---- replay the autoscaled run to show the fleet in motion -------
  const Trace trace = generate_scenario_trace(scenario, options.trace_seed);
  DeploymentConfig elastic = base;
  elastic.parallel.num_replicas =
      plan.static_peak.fleet_size + options.burst_slots;
  elastic.autoscale = reactive_policy();
  const SimulationMetrics reactive_metrics =
      session.simulate(elastic, trace, scenario.tenant_infos());

  std::cout << "reactive autoscaler, fleet in motion:\n";
  print_timeline(reactive_metrics.scaling, reactive_metrics.makespan);
  print_events(reactive_metrics.scaling);
  std::cout << "\nper-tenant service under scaling:\n"
            << reactive_metrics.tenant_table() << "\n";

  // ---- predictive policy: provision before the (known) crowd lands --
  elastic.autoscale = derive_predictive_policy(reactive_policy(), scenario,
                                               plan.static_peak.fleet_size);
  const SimulationMetrics predictive_metrics =
      session.simulate(elastic, trace, scenario.tenant_infos());
  std::cout << "predictive autoscaler (RateProfile lookahead):\n";
  print_timeline(predictive_metrics.scaling, predictive_metrics.makespan);
  std::cout << "  " << predictive_metrics.scaling.to_string() << "\n"
            << "  aggregate SLO attainment: "
            << fmt_percent(predictive_metrics.aggregate_slo_attainment())
            << "\n\n";

  std::cout << "summary: static peak $" << fmt_double(plan.static_peak.cost_usd, 2)
            << " -> reactive $" << fmt_double(plan.autoscaled.cost_usd, 2)
            << " (" << fmt_double(plan.cost_savings_pct, 1)
            << "% GPU-hours saved) -> predictive $"
            << fmt_double(predictive_metrics.scaling.cost_usd, 2) << "\n";
  return 0;
}
