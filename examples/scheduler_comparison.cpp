// Compare the five batching policies on one deployment: the
// latency-throughput tradeoff of paper §2.2 (prefill- vs decode-
// prioritizing vs Sarathi's hybrid chunked batches), including the effect
// of Sarathi's chunk size.
//
// Usage: scheduler_comparison [model] [trace] [qps]
#include <iostream>

#include "core/session.h"
#include "common/table.h"
#include "workload/trace_generator.h"

int main(int argc, char** argv) {
  using namespace vidur;

  const std::string model_name = argc > 1 ? argv[1] : "llama2-7b";
  const std::string trace_name = argc > 2 ? argv[2] : "chat1m";
  const double qps = argc > 3 ? std::atof(argv[3]) : 2.0;

  VidurSession session(model_by_name(model_name));
  const Trace trace =
      generate_trace(trace_by_name(trace_name),
                     ArrivalSpec{ArrivalKind::kPoisson, qps, 0}, 300, 17);

  struct Variant {
    SchedulerKind kind;
    TokenCount chunk;
    std::string label;
  };
  const std::vector<Variant> variants = {
      {SchedulerKind::kFasterTransformer, 0, "faster_transformer"},
      {SchedulerKind::kOrca, 0, "orca+"},
      {SchedulerKind::kVllm, 0, "vllm"},
      {SchedulerKind::kLightLlm, 0, "lightllm"},
      {SchedulerKind::kSarathi, 512, "sarathi (chunk 512)"},
      {SchedulerKind::kSarathi, 2048, "sarathi (chunk 2048)"},
  };

  std::cout << model_name << " on " << trace_name << " @ " << qps
            << " qps, a100, 300 requests\n\n";
  ConsoleTable table({"scheduler", "TTFT p90 (s)", "TBT p99 (s)",
                      "norm e2e p50 (s/tok)", "MFU", "restarts"});
  for (const Variant& v : variants) {
    DeploymentConfig config;
    config.sku_name = "a100";
    config.parallel =
        ParallelConfig{model_name == "llama2-7b" ? 1 : 4, 1, 1};
    config.scheduler.kind = v.kind;
    config.scheduler.max_batch_size = 128;
    if (v.chunk > 0) config.scheduler.chunk_size = v.chunk;

    const SimulationMetrics m = session.simulate(config, trace);
    table.add_row({v.label, fmt_double(m.ttft.p90, 3),
                   fmt_double(m.tbt.p99, 4),
                   fmt_double(m.normalized_e2e_latency.p50, 4),
                   fmt_percent(m.mfu), std::to_string(m.num_restarts)});
  }
  std::cout << table.str();
  std::cout << "\nNote the paper's tradeoff: vLLM/Orca+ (prefill-\n"
               "prioritizing) pause decodes -> high TBT tails; Sarathi's\n"
               "chunked hybrid batches keep TBT low; FasterTransformer's\n"
               "static batches give low TBT but poor TTFT under load.\n";
  return 0;
}
