// Model onboarding for an architecture that is not in the registry
// (paper §4.1: the declarative model spec makes adding models cheap).
// Defines a hypothetical 13B GQA model, onboards it (profile + estimator),
// inspects the profile database, and simulates a deployment.
#include <iostream>

#include "core/session.h"
#include "common/table.h"
#include "workload/trace_generator.h"

int main() {
  using namespace vidur;

  // A custom 13B-class model: 40 layers, GQA with 8 KV heads.
  const ModelSpec custom{.name = "custom-13b-gqa",
                         .num_layers = 40,
                         .embed_dim = 5120,
                         .ffn_dim = 13824,
                         .num_q_heads = 40,
                         .num_kv_heads = 8,
                         .vocab_size = 32000,
                         .gated_mlp = true};
  custom.validate();
  std::cout << "custom model: " << custom.name << "\n  params: "
            << fmt_double(static_cast<double>(custom.num_params()) / 1e9, 2)
            << "B, KV bytes/token: " << custom.kv_bytes_per_token()
            << " (GQA: " << custom.num_kv_heads << " of "
            << custom.num_q_heads << " heads)\n\n";

  // Onboard on both SKUs; profiles are CSV round-trippable like Vidur's
  // published profiling data.
  SessionOptions options;
  options.tp_degrees = {1, 2};
  VidurSession session(custom, options);
  session.onboard("a100");
  const ProfileDb& profile = session.profile("a100");
  std::cout << "profiled " << profile.total_points() << " points across "
            << profile.keys().size() << " operator variants on a100\n";
  profile.write_file("custom_13b_a100_profile.csv");
  std::cout << "wrote custom_13b_a100_profile.csv (reloadable with "
               "ProfileDb::read_file)\n\n";

  // Simulate a TP2 deployment against a summarization-style workload.
  DeploymentConfig config;
  config.sku_name = "a100";
  config.parallel = ParallelConfig{2, 1, 1};
  config.scheduler.kind = SchedulerKind::kSarathi;
  config.scheduler.max_batch_size = 64;
  config.scheduler.chunk_size = 1024;

  const Trace trace =
      generate_trace(trace_by_name("arxiv4k"),
                     ArrivalSpec{ArrivalKind::kPoisson, 0.5, 0}, 150, 23);
  const SimulationMetrics m = session.simulate(config, trace);
  std::cout << "deployment " << config.to_string() << " on arxiv4k:\n"
            << m.to_string();
  return 0;
}
