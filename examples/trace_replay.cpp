// Trace replay: the workflow of a user bringing their own production trace.
// Generates a synthetic trace, saves it to CSV (the hand-off format),
// reloads it, and simulates the same deployment against the replayed trace —
// demonstrating that persisted traces reproduce results exactly.
//
// Usage: trace_replay [path]
//   path: where to write the CSV (default: ./replayed_trace.csv)
#include <iostream>

#include "core/session.h"
#include "workload/trace_generator.h"
#include "workload/trace_io.h"

int main(int argc, char** argv) {
  using namespace vidur;

  const std::string path = argc > 1 ? argv[1] : "replayed_trace.csv";

  // A stand-in for "your production trace": any CSV with request_id,
  // arrival_time, prefill_tokens, decode_tokens columns works.
  const Trace original =
      generate_trace(trace_by_name("arxiv4k"),
                     ArrivalSpec{ArrivalKind::kGamma, 0.8, /*cv=*/2.5}, 150,
                     /*seed=*/13);
  save_trace_csv(path, original);
  std::cout << "wrote " << original.size() << " requests to " << path << "\n";

  const Trace replayed = load_trace_csv(path);
  const TraceStats stats = compute_trace_stats(replayed);
  std::cout << "replayed trace: prefill mean " << stats.prefill_mean
            << " / median " << stats.prefill_median << ", decode mean "
            << stats.decode_mean << ", P:D median " << stats.pd_ratio_median
            << "\n\n";

  VidurSession session(model_by_name("llama2-7b"));
  DeploymentConfig config;
  config.sku_name = "a100";
  config.parallel = ParallelConfig{1, 1, 1};
  config.scheduler.kind = SchedulerKind::kSarathi;
  config.scheduler.max_batch_size = 128;
  config.scheduler.chunk_size = 512;

  const SimulationMetrics from_original = session.simulate(config, original);
  const SimulationMetrics from_replay = session.simulate(config, replayed);

  std::cout << "=== simulated from the in-memory trace ===\n"
            << from_original.to_string() << "\n";
  std::cout << "=== simulated from the CSV replay ===\n"
            << from_replay.to_string() << "\n";

  const bool identical =
      from_original.makespan == from_replay.makespan &&
      from_original.ttft.p90 == from_replay.ttft.p90;
  std::cout << (identical ? "replay reproduced the run exactly.\n"
                          : "WARNING: replay diverged from the original!\n");
  return identical ? 0 : 1;
}
