// Vidur-Bench workload exploration (paper §5): generate the three built-in
// traces, print their Table-1 statistics, and show how arrival burstiness
// (gamma renewal process vs Poisson) degrades tail latency at equal mean
// load — the motivation for the stateful/deferred global scheduler.
#include <iostream>

#include "core/session.h"
#include "common/table.h"
#include "workload/trace_generator.h"

int main() {
  using namespace vidur;

  // Part 1: trace statistics.
  std::cout << "=== built-in workloads (20k sampled requests) ===\n\n";
  ConsoleTable stats({"trace", "prefill mean/median/p90",
                      "decode mean/median/p90", "P:D median"});
  for (const std::string& name : builtin_trace_names()) {
    const Trace trace = generate_trace(
        trace_by_name(name), ArrivalSpec{ArrivalKind::kStatic, 0, 0}, 20000,
        1);
    const TraceStats s = compute_trace_stats(trace);
    stats.add_row({name,
                   fmt_double(s.prefill_mean, 0) + " / " +
                       fmt_double(s.prefill_median, 0) + " / " +
                       fmt_double(s.prefill_p90, 0),
                   fmt_double(s.decode_mean, 0) + " / " +
                       fmt_double(s.decode_median, 0) + " / " +
                       fmt_double(s.decode_p90, 0),
                   fmt_double(s.pd_ratio_median, 2)});
  }
  std::cout << stats.str() << "\n";

  // Part 2: burstiness vs tail latency.
  std::cout << "=== arrival burstiness vs tails (llama2-7b, chat1m, 1.5 qps,"
            << " vLLM + round-robin vs deferred routing) ===\n\n";
  VidurSession session(model_by_name("llama2-7b"));
  ConsoleTable table({"arrivals", "routing", "TTFT p90 (s)",
                      "sched delay p99 (s)", "TBT p99 (s)"});
  for (double cv : {1.0, 3.0, 6.0}) {
    const ArrivalSpec arrivals =
        cv == 1.0 ? ArrivalSpec{ArrivalKind::kPoisson, 1.5, 0}
                  : ArrivalSpec{ArrivalKind::kGamma, 1.5, cv};
    const Trace trace =
        generate_trace(trace_by_name("chat1m"), arrivals, 400, 31);
    for (GlobalSchedulerKind routing :
         {GlobalSchedulerKind::kRoundRobin, GlobalSchedulerKind::kDeferred}) {
      DeploymentConfig config;
      config.sku_name = "a100";
      config.parallel = ParallelConfig{1, 1, 2};
      config.scheduler.kind = SchedulerKind::kVllm;
      config.scheduler.max_batch_size = 64;
      config.global_scheduler = routing;
      const SimulationMetrics m = session.simulate(config, trace);
      table.add_row({cv == 1.0 ? "poisson" : "gamma cv=" + fmt_double(cv, 0),
                     global_scheduler_name(routing),
                     fmt_double(m.ttft.p90, 3),
                     fmt_double(m.scheduling_delay.p99, 3),
                     fmt_double(m.tbt.p99, 4)});
    }
  }
  std::cout << table.str();
  std::cout << "\nBursty arrivals inflate the tails; deferred (late-binding)"
               "\nrouting recovers part of them (paper §4.5).\n";
  return 0;
}
