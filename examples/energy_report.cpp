// Cluster energy accounting (paper §5.2 future work, implemented here):
// simulates one deployment at several load levels and reports total energy,
// joules per generated token and mean power draw, alongside the operator-
// level time attribution that identifies where the energy goes.
//
// Usage: energy_report [model] [sku]
//   model: default llama2-7b
//   sku:   a100 | h100 (default a100)
#include <iostream>

#include "core/session.h"
#include "workload/trace_generator.h"

int main(int argc, char** argv) {
  using namespace vidur;

  const std::string model_name = argc > 1 ? argv[1] : "llama2-7b";
  const std::string sku = argc > 2 ? argv[2] : "a100";

  SessionOptions options;
  options.collect_operator_metrics = true;
  VidurSession session(model_by_name(model_name), options);

  DeploymentConfig config;
  config.sku_name = sku;
  config.parallel = ParallelConfig{model_name == "llama2-7b" ? 1 : 4, 1, 1};
  config.scheduler.kind = SchedulerKind::kSarathi;
  config.scheduler.max_batch_size = 128;
  config.scheduler.chunk_size = 512;

  const SkuSpec spec = sku_by_name(sku);
  std::cout << "deployment: " << config.to_string() << "\n"
            << "power model: " << spec.idle_watts << " W idle, "
            << spec.peak_watts << " W peak per GPU\n\n";

  SimulationMetrics last;
  for (double qps : {0.5, 1.0, 2.0}) {
    const Trace trace = generate_trace(
        trace_by_name("chat1m"), ArrivalSpec{ArrivalKind::kPoisson, qps, 0},
        200, /*seed=*/7);
    const SimulationMetrics m = session.simulate(config, trace);
    std::cout << "@ " << qps << " qps:  " << m.total_energy_joules / 1e3
              << " kJ total,  " << m.energy_per_output_token << " J/token,  "
              << m.mean_cluster_power_watts << " W mean draw,  MFU "
              << m.mfu * 100 << "%\n";
    last = m;
  }

  std::cout << "\nHigher load amortizes idle draw over more tokens: J/token "
               "falls as MFU rises.\n\n";
  std::cout << "operator time attribution at the highest load (paper §5.2, "
               "operator-level metrics):\n"
            << last.operator_table();
  return 0;
}
