// Disaggregated prefill/decode serving (Splitwise / DistServe, paper §2.2):
// splits a replica pool into prefill and decode roles, simulates both the
// unified and the disaggregated deployment, and reports the interference
// metrics that motivate the split.
//
// Usage: disaggregated_serving [model] [qps] [prefill_replicas] [replicas]
//   model:             default llama2-7b
//   qps:               arrival rate (default 4.0)
//   prefill_replicas:  decode replicas are replicas - prefill (default 2)
//   replicas:          total replica count (default 4)
#include <cstdlib>
#include <iostream>

#include "core/session.h"
#include "workload/trace_generator.h"

int main(int argc, char** argv) {
  using namespace vidur;

  const std::string model_name = argc > 1 ? argv[1] : "llama2-7b";
  const double qps = argc > 2 ? std::atof(argv[2]) : 4.0;
  const int prefill_replicas = argc > 3 ? std::atoi(argv[3]) : 2;
  const int replicas = argc > 4 ? std::atoi(argv[4]) : 4;

  VidurSession session(model_by_name(model_name));
  const Trace trace =
      generate_trace(trace_by_name("chat1m"),
                     ArrivalSpec{ArrivalKind::kPoisson, qps, 0}, 300,
                     /*seed=*/7);

  DeploymentConfig unified;
  unified.sku_name = "a100";
  unified.parallel = ParallelConfig{1, 1, replicas};
  unified.scheduler.kind = SchedulerKind::kVllm;
  unified.scheduler.max_batch_size = 64;

  DeploymentConfig disagg = unified;
  disagg.disagg.num_prefill_replicas = prefill_replicas;

  std::cout << "=== unified: " << replicas << "x vLLM replicas ===\n"
            << session.simulate(unified, trace).to_string() << "\n";

  std::cout << "=== disaggregated: " << prefill_replicas << " prefill + "
            << replicas - prefill_replicas << " decode replicas ===\n"
            << "(KV transfer: " << disagg.disagg.transfer_bandwidth_gbps
            << " GB/s + " << disagg.disagg.transfer_latency * 1e3
            << " ms per hand-off)\n"
            << session.simulate(disagg, trace).to_string() << "\n";

  std::cout << "Decode replicas never pause generation to admit a prompt, "
               "so the TBT tail\n(p99) drops under the disaggregated "
               "deployment; the KV hand-off adds its\ntransfer time to each "
               "request's second token instead.\n";
  return 0;
}
