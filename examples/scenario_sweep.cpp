// Scenario sweep: play named multi-tenant scenarios from the registry (or a
// programmatically built one) through the declarative experiment API and
// compare global routing policies on per-tenant SLO attainment.
//
// Each scenario becomes one ExperimentSpec — the same specs run through the
// `vidur` CLI from JSON files (see specs/) with no recompile.
//
// Usage: scenario_sweep [scenario] [model] [routing]
//   scenario: a registered name (see below), or "all" (default)
//   model:    llama2-7b | internlm-20b | llama2-70b | qwen-72b (default 7b)
//   routing:  round_robin | least_outstanding | deferred | priority
//             (default round_robin)
#include <iostream>

#include "api/run.h"
#include "scenario/registry.h"

int main(int argc, char** argv) {
  using namespace vidur;

  const std::string which = argc > 1 ? argv[1] : "all";
  const std::string model_name = argc > 2 ? argv[2] : "llama2-7b";
  const GlobalSchedulerKind routing =
      global_scheduler_from_name(argc > 3 ? argv[3] : "round_robin");

  // Scenarios can also be built programmatically and registered; specs
  // (and the CLI) then reference them by name exactly like the built-ins.
  if (!ScenarioRegistry::instance().contains("custom-demo")) {
    Scenario custom;
    custom.name = "custom-demo";
    custom.description = "programmatic two-tenant demo scenario";
    custom.tenants = {TenantSpec{.name = "app-a",
                                 .trace = trace_by_name("chat1m"),
                                 .share = 0.5,
                                 .priority = 1,
                                 .slo = SloSpec{1.0, 0.2}},
                      TenantSpec{.name = "app-b",
                                 .trace = trace_by_name("bwb4k"),
                                 .share = 0.5,
                                 .priority = 0,
                                 .slo = SloSpec{10.0, 1.0}}};
    custom.arrival = ArrivalSpec{ArrivalKind::kPoisson, 1.0, 0};
    custom.profile = RateProfile::ramp(0.5, 1.5, 120.0);
    custom.num_requests = 200;
    ScenarioRegistry::instance().add(custom);
  }

  // One session, reused across every spec: onboarding runs once.
  VidurSession session(model_by_name(model_name));
  session.onboard("a100");

  std::vector<std::string> names;
  if (which == "all") {
    names = ScenarioRegistry::instance().names();
  } else {
    names.push_back(which);
  }

  for (const std::string& name : names) {
    ExperimentSpec spec;
    spec.with_name("scenario-sweep-" + name)
        .with_model(model_name)
        .with_sku("a100")
        .with_parallelism(model_name == "llama2-7b" ? 1 : 4, 1, 1)
        .with_scheduler(SchedulerKind::kSarathi, /*max_batch_size=*/128,
                        /*chunk_size=*/512)
        .with_routing(routing)
        .with_scenario(name)
        .with_seed(7);

    const Scenario& scenario = scenario_by_name(name);
    std::cout << "\n=== " << scenario.to_string() << " ===\n"
              << scenario.description << "\n(routing "
              << global_scheduler_name(routing) << ")\n\n";
    const ExperimentResult result = run_experiment(session, spec);
    std::cout << result.metrics.to_string();
  }
  return 0;
}
