// Quickstart: describe an experiment declaratively, run it through the one
// run_experiment() entry point, and print the simulation report (the flow
// of paper Fig. 2).
//
// The same spec serializes to JSON and runs through the CLI unchanged —
// `./vidur run specs/quickstart.json` reproduces this binary's metrics
// without a recompile.
//
// Usage: quickstart [model] [trace] [qps]
//   model: llama2-7b | internlm-20b | llama2-70b | qwen-72b (default 7b)
//   trace: chat1m | arxiv4k | bwb4k (default chat1m)
//   qps:   request arrival rate (default 1.5)
#include <cstdlib>
#include <iostream>

#include "api/run.h"

int main(int argc, char** argv) {
  using namespace vidur;

  const std::string model_name = argc > 1 ? argv[1] : "llama2-7b";
  const std::string trace_name = argc > 2 ? argv[2] : "chat1m";
  const double qps = argc > 3 ? std::atof(argv[3]) : 1.5;

  // 1. Describe the experiment: model, deployment, workload, seed.
  ExperimentSpec spec;
  spec.with_name("quickstart")
      .with_model(model_name)
      .with_sku("a100")
      .with_parallelism(model_name == "llama2-7b" ? 1 : 4, 1, 1)
      .with_scheduler(SchedulerKind::kSarathi, /*max_batch_size=*/128,
                      /*chunk_size=*/512)
      .with_trace(trace_name, qps, /*num_requests=*/200)
      .with_seed(7);

  std::cout << "spec (also runnable via `vidur run <file>`):\n"
            << spec.to_json_string() << "\n";

  // 2. Run it. Model onboarding — operator profiling and estimator
  //    training (paper Fig. 2, components 1-3) — happens lazily inside.
  const ExperimentResult result = run_experiment(spec);
  std::cout << result.to_string();
  return 0;
}
