// Quickstart: onboard a model, simulate one deployment on one workload, and
// print the simulation report (the flow of paper Fig. 2).
//
// Usage: quickstart [model] [trace] [qps]
//   model: llama2-7b | internlm-20b | llama2-70b | qwen-72b (default 7b)
//   trace: chat1m | arxiv4k | bwb4k (default chat1m)
//   qps:   request arrival rate (default 1.5)
#include <cstdlib>
#include <iostream>

#include "core/session.h"
#include "search/capacity.h"
#include "workload/trace_generator.h"

int main(int argc, char** argv) {
  using namespace vidur;

  const std::string model_name = argc > 1 ? argv[1] : "llama2-7b";
  const std::string trace_name = argc > 2 ? argv[2] : "chat1m";
  const double qps = argc > 3 ? std::atof(argv[3]) : 1.5;

  // 1. Model onboarding: profile operators and train the runtime estimator.
  VidurSession session(model_by_name(model_name));
  session.onboard("a100");
  std::cout << "onboarded " << model_name << " on a100: "
            << session.profile("a100").total_points()
            << " profiled points\n";

  // 2. Describe the deployment.
  DeploymentConfig config;
  config.sku_name = "a100";
  config.parallel = ParallelConfig{model_name == "llama2-7b" ? 1 : 4, 1, 1};
  config.scheduler.kind = SchedulerKind::kSarathi;
  config.scheduler.max_batch_size = 128;
  config.scheduler.chunk_size = 512;
  std::cout << "deployment: " << config.to_string() << " ($"
            << config.cost_per_hour() << "/hr)\n";

  // 3. Generate a workload and simulate.
  ArrivalSpec arrivals{ArrivalKind::kPoisson, qps, /*cv=*/2.0};
  const Trace trace =
      generate_trace(trace_by_name(trace_name), arrivals, 200, /*seed=*/7);
  const SimulationMetrics metrics = session.simulate(config, trace);

  std::cout << "\n=== simulation report (" << trace_name << " @ " << qps
            << " qps) ===\n"
            << metrics.to_string();
  return 0;
}
