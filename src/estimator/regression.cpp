#include "estimator/regression.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace vidur {

void Dataset::add(const std::vector<double>& features, double target) {
  if (y.empty()) {
    num_features = static_cast<int>(features.size());
  } else {
    VIDUR_CHECK_MSG(static_cast<int>(features.size()) == num_features,
                    "inconsistent feature width");
  }
  x.insert(x.end(), features.begin(), features.end());
  y.push_back(target);
}

// ---------------------------------------------------------------- tree ----

void DecisionTree::fit(const Dataset& data) {
  std::vector<std::size_t> rows(data.size());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  fit_subset(data, rows);
}

void DecisionTree::fit_subset(const Dataset& data,
                              const std::vector<std::size_t>& rows) {
  VIDUR_CHECK_MSG(!rows.empty(), "cannot fit a tree on an empty dataset");
  VIDUR_CHECK(data.num_features >= 1);
  num_features_ = data.num_features;
  nodes_.clear();
  std::vector<std::size_t> work = rows;
  build(data, work, 0, work.size(), 0);
}

std::int32_t DecisionTree::build(const Dataset& data,
                                 std::vector<std::size_t>& rows,
                                 std::size_t begin, std::size_t end,
                                 int depth) {
  const auto node_index = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();

  const std::size_t n = end - begin;
  double sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) sum += data.y[rows[i]];
  const double mean = sum / static_cast<double>(n);
  nodes_[node_index].value = mean;

  if (depth >= options_.max_depth ||
      n < 2 * static_cast<std::size_t>(options_.min_samples_leaf) || n < 2)
    return node_index;

  // Find the split (feature, threshold) with max SSE reduction.
  double parent_sse = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    const double d = data.y[rows[i]] - mean;
    parent_sse += d * d;
  }
  if (parent_sse <= 1e-30) return node_index;  // pure leaf

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_sse = parent_sse;

  std::vector<std::size_t> order(rows.begin() + static_cast<long>(begin),
                                 rows.begin() + static_cast<long>(end));
  for (int f = 0; f < num_features_; ++f) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return data.row(a)[f] < data.row(b)[f];
    });
    // Incremental left/right sums over the sorted order.
    double left_sum = 0.0, left_sq = 0.0;
    double right_sum = 0.0, right_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double v = data.y[order[i]];
      right_sum += v;
      right_sq += v * v;
    }
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const double v = data.y[order[i]];
      left_sum += v;
      left_sq += v * v;
      right_sum -= v;
      right_sq -= v * v;
      const double xv = data.row(order[i])[f];
      const double xnext = data.row(order[i + 1])[f];
      if (xv == xnext) continue;  // cannot split between equal values
      const auto nl = static_cast<double>(i + 1);
      const auto nr = static_cast<double>(n - i - 1);
      if (nl < options_.min_samples_leaf || nr < options_.min_samples_leaf)
        continue;
      const double sse_l = left_sq - left_sum * left_sum / nl;
      const double sse_r = right_sq - right_sum * right_sum / nr;
      const double sse = sse_l + sse_r;
      if (sse < best_sse - 1e-30) {
        best_sse = sse;
        best_feature = f;
        best_threshold = 0.5 * (xv + xnext);
      }
    }
  }

  if (best_feature < 0) return node_index;

  // Partition rows in place around the threshold.
  auto mid_it = std::partition(
      rows.begin() + static_cast<long>(begin),
      rows.begin() + static_cast<long>(end), [&](std::size_t r) {
        return data.row(r)[best_feature] <= best_threshold;
      });
  const auto mid = static_cast<std::size_t>(mid_it - rows.begin());
  if (mid == begin || mid == end) return node_index;  // degenerate

  nodes_[node_index].feature = best_feature;
  nodes_[node_index].threshold = best_threshold;
  const std::int32_t left = build(data, rows, begin, mid, depth + 1);
  nodes_[node_index].left = left;
  const std::int32_t right = build(data, rows, mid, end, depth + 1);
  nodes_[node_index].right = right;
  return node_index;
}

double DecisionTree::predict(const std::vector<double>& features) const {
  VIDUR_CHECK_MSG(!nodes_.empty(), "predict() before fit()");
  VIDUR_CHECK(static_cast<int>(features.size()) == num_features_);
  std::int32_t node = 0;
  while (nodes_[static_cast<std::size_t>(node)].feature >= 0) {
    const Node& nd = nodes_[static_cast<std::size_t>(node)];
    node = features[static_cast<std::size_t>(nd.feature)] <= nd.threshold
               ? nd.left
               : nd.right;
  }
  return nodes_[static_cast<std::size_t>(node)].value;
}

// -------------------------------------------------------------- forest ----

void RandomForest::fit(const Dataset& data) {
  VIDUR_CHECK_MSG(data.size() > 0, "cannot fit a forest on an empty dataset");
  VIDUR_CHECK(options_.num_trees >= 1);
  trees_.clear();
  trees_.reserve(static_cast<std::size_t>(options_.num_trees));
  Rng rng(options_.seed);
  const std::size_t n = data.size();
  std::vector<std::size_t> rows(n);
  for (int t = 0; t < options_.num_trees; ++t) {
    for (auto& r : rows)
      r = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    DecisionTree tree(options_.tree);
    tree.fit_subset(data, rows);
    trees_.push_back(std::move(tree));
  }
}

double RandomForest::predict(const std::vector<double>& features) const {
  VIDUR_CHECK_MSG(!trees_.empty(), "predict() before fit()");
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.predict(features);
  return sum / static_cast<double>(trees_.size());
}

// ---------------------------------------------------------------- ridge ----

std::vector<double> RidgePolyRegression::expand(const double* row) const {
  // Scaled features -> polynomial basis with cross terms up to `degree`.
  std::vector<double> scaled(static_cast<std::size_t>(num_features_));
  for (int f = 0; f < num_features_; ++f)
    scaled[static_cast<std::size_t>(f)] =
        row[f] / feature_scale_[static_cast<std::size_t>(f)];

  std::vector<double> out = {1.0};
  for (double v : scaled) out.push_back(v);
  if (options_.degree >= 2) {
    for (int i = 0; i < num_features_; ++i)
      for (int j = i; j < num_features_; ++j)
        out.push_back(scaled[static_cast<std::size_t>(i)] *
                      scaled[static_cast<std::size_t>(j)]);
  }
  if (options_.degree >= 3) {
    for (int i = 0; i < num_features_; ++i)
      for (int j = i; j < num_features_; ++j)
        for (int k = j; k < num_features_; ++k)
          out.push_back(scaled[static_cast<std::size_t>(i)] *
                        scaled[static_cast<std::size_t>(j)] *
                        scaled[static_cast<std::size_t>(k)]);
  }
  return out;
}

void RidgePolyRegression::fit(const Dataset& data) {
  VIDUR_CHECK_MSG(data.size() > 0, "cannot fit ridge on an empty dataset");
  VIDUR_CHECK(options_.degree >= 1 && options_.degree <= 3);
  num_features_ = data.num_features;

  feature_scale_.assign(static_cast<std::size_t>(num_features_), 1.0);
  for (std::size_t i = 0; i < data.size(); ++i)
    for (int f = 0; f < num_features_; ++f)
      feature_scale_[static_cast<std::size_t>(f)] = std::max(
          feature_scale_[static_cast<std::size_t>(f)], std::abs(data.row(i)[f]));

  const std::size_t p = expand(data.row(0)).size();
  // Normal equations: (X'X + lambda I) w = X'y, solved by Gauss elimination.
  std::vector<double> xtx(p * p, 0.0);
  std::vector<double> xty(p, 0.0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto phi = expand(data.row(i));
    for (std::size_t a = 0; a < p; ++a) {
      xty[a] += phi[a] * data.y[i];
      for (std::size_t b = 0; b < p; ++b) xtx[a * p + b] += phi[a] * phi[b];
    }
  }
  for (std::size_t a = 0; a < p; ++a) xtx[a * p + a] += options_.lambda;

  // Gaussian elimination with partial pivoting.
  std::vector<double> w = xty;
  for (std::size_t col = 0; col < p; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < p; ++r)
      if (std::abs(xtx[r * p + col]) > std::abs(xtx[pivot * p + col]))
        pivot = r;
    if (pivot != col) {
      for (std::size_t c = 0; c < p; ++c)
        std::swap(xtx[col * p + c], xtx[pivot * p + c]);
      std::swap(w[col], w[pivot]);
    }
    const double diag = xtx[col * p + col];
    VIDUR_CHECK_MSG(std::abs(diag) > 1e-30, "singular design matrix");
    for (std::size_t r = 0; r < p; ++r) {
      if (r == col) continue;
      const double factor = xtx[r * p + col] / diag;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < p; ++c)
        xtx[r * p + c] -= factor * xtx[col * p + c];
      w[r] -= factor * w[col];
    }
  }
  weights_.assign(p, 0.0);
  for (std::size_t a = 0; a < p; ++a) weights_[a] = w[a] / xtx[a * p + a];
}

double RidgePolyRegression::predict(const std::vector<double>& features) const {
  VIDUR_CHECK_MSG(!weights_.empty(), "predict() before fit()");
  VIDUR_CHECK(static_cast<int>(features.size()) == num_features_);
  const auto phi = expand(features.data());
  double out = 0.0;
  for (std::size_t a = 0; a < phi.size(); ++a) out += weights_[a] * phi[a];
  return out;
}

// ------------------------------------------------------------------ 1nn ----

void NearestNeighbor::fit(const Dataset& data) {
  VIDUR_CHECK_MSG(data.size() > 0, "cannot fit 1-NN on an empty dataset");
  data_ = data;
  feature_scale_.assign(static_cast<std::size_t>(data.num_features), 1.0);
  for (std::size_t i = 0; i < data.size(); ++i)
    for (int f = 0; f < data.num_features; ++f)
      feature_scale_[static_cast<std::size_t>(f)] = std::max(
          feature_scale_[static_cast<std::size_t>(f)], std::abs(data.row(i)[f]));
}

double NearestNeighbor::predict(const std::vector<double>& features) const {
  VIDUR_CHECK_MSG(data_.size() > 0, "predict() before fit()");
  VIDUR_CHECK(static_cast<int>(features.size()) == data_.num_features);
  double best = std::numeric_limits<double>::infinity();
  double value = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    double dist = 0.0;
    for (int f = 0; f < data_.num_features; ++f) {
      const double d = (features[static_cast<std::size_t>(f)] -
                        data_.row(i)[f]) /
                       feature_scale_[static_cast<std::size_t>(f)];
      dist += d * d;
    }
    if (dist < best) {
      best = dist;
      value = data_.y[i];
    }
  }
  return value;
}

// ------------------------------------------------------------------ mlp ----

void MlpRegression::fit(const Dataset& data) {
  VIDUR_CHECK_MSG(data.size() > 0, "cannot fit MLP on an empty dataset");
  VIDUR_CHECK(data.num_features > 0);
  const std::size_t n = data.size();
  const int nf = data.num_features;

  // Standardize features; regress log(y) standardized.
  feature_mean_.assign(static_cast<std::size_t>(nf), 0.0);
  feature_std_.assign(static_cast<std::size_t>(nf), 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (int f = 0; f < nf; ++f)
      feature_mean_[static_cast<std::size_t>(f)] += data.row(i)[f];
  for (double& m : feature_mean_) m /= static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i)
    for (int f = 0; f < nf; ++f) {
      const double d =
          data.row(i)[f] - feature_mean_[static_cast<std::size_t>(f)];
      feature_std_[static_cast<std::size_t>(f)] += d * d;
    }
  for (double& s : feature_std_)
    s = std::max(std::sqrt(s / static_cast<double>(n)), 1e-12);

  std::vector<double> log_y(n);
  target_mean_ = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    VIDUR_CHECK_MSG(data.y[i] > 0, "MLP regression requires positive targets");
    log_y[i] = std::log(data.y[i]);
    target_mean_ += log_y[i];
  }
  target_mean_ /= static_cast<double>(n);
  target_std_ = 0.0;
  for (const double v : log_y) target_std_ += (v - target_mean_) * (v - target_mean_);
  target_std_ = std::max(std::sqrt(target_std_ / static_cast<double>(n)), 1e-12);

  // He-initialized layers: nf -> hidden... -> 1.
  Rng rng(options_.seed);
  layers_.clear();
  int prev = nf;
  auto add_layer = [&](int out) {
    Layer layer;
    layer.in = prev;
    layer.out = out;
    layer.w.resize(static_cast<std::size_t>(out) * prev);
    layer.b.assign(static_cast<std::size_t>(out), 0.0);
    const double scale = std::sqrt(2.0 / prev);
    for (double& w : layer.w) w = scale * rng.normal();
    layers_.push_back(std::move(layer));
    prev = out;
  };
  for (const int h : options_.hidden) {
    VIDUR_CHECK(h > 0);
    add_layer(h);
  }
  add_layer(1);

  // Adam state.
  struct Moments {
    std::vector<double> mw, vw, mb, vb;
  };
  std::vector<Moments> moments(layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    moments[l].mw.assign(layers_[l].w.size(), 0.0);
    moments[l].vw.assign(layers_[l].w.size(), 0.0);
    moments[l].mb.assign(layers_[l].b.size(), 0.0);
    moments[l].vb.assign(layers_[l].b.size(), 0.0);
  }
  constexpr double kBeta1 = 0.9, kBeta2 = 0.999, kEps = 1e-8;

  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;

  // Forward activations / backward deltas reused across samples.
  std::vector<std::vector<double>> act(layers_.size() + 1);
  std::vector<std::vector<double>> delta(layers_.size());
  // Per-batch gradient accumulators.
  std::vector<Layer> grads = layers_;  // same shapes, values overwritten

  long step = 0;
  const int batch = std::max(1, options_.batch_size);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < n; start += batch) {
      const std::size_t stop = std::min(n, start + batch);
      for (Layer& g : grads) {
        std::fill(g.w.begin(), g.w.end(), 0.0);
        std::fill(g.b.begin(), g.b.end(), 0.0);
      }
      for (std::size_t bi = start; bi < stop; ++bi) {
        const std::size_t i = order[bi];
        // Forward.
        act[0].assign(static_cast<std::size_t>(nf), 0.0);
        for (int f = 0; f < nf; ++f)
          act[0][static_cast<std::size_t>(f)] =
              (data.row(i)[f] - feature_mean_[static_cast<std::size_t>(f)]) /
              feature_std_[static_cast<std::size_t>(f)];
        for (std::size_t l = 0; l < layers_.size(); ++l) {
          const Layer& layer = layers_[l];
          act[l + 1].assign(static_cast<std::size_t>(layer.out), 0.0);
          for (int o = 0; o < layer.out; ++o) {
            double z = layer.b[static_cast<std::size_t>(o)];
            const double* w = &layer.w[static_cast<std::size_t>(o) * layer.in];
            for (int in = 0; in < layer.in; ++in)
              z += w[in] * act[l][static_cast<std::size_t>(in)];
            // ReLU on hidden layers; identity on the output.
            act[l + 1][static_cast<std::size_t>(o)] =
                (l + 1 < layers_.size()) ? std::max(0.0, z) : z;
          }
        }
        // Backward (squared error on the standardized log target).
        const double target = (log_y[i] - target_mean_) / target_std_;
        delta.back().assign(1, act.back()[0] - target);
        for (std::size_t l = layers_.size(); l-- > 0;) {
          const Layer& layer = layers_[l];
          Layer& g = grads[l];
          if (l > 0) delta[l - 1].assign(static_cast<std::size_t>(layer.in), 0.0);
          for (int o = 0; o < layer.out; ++o) {
            const double d = delta[l][static_cast<std::size_t>(o)];
            if (d == 0.0) continue;
            g.b[static_cast<std::size_t>(o)] += d;
            double* gw = &g.w[static_cast<std::size_t>(o) * layer.in];
            const double* w = &layer.w[static_cast<std::size_t>(o) * layer.in];
            for (int in = 0; in < layer.in; ++in) {
              gw[in] += d * act[l][static_cast<std::size_t>(in)];
              if (l > 0 && act[l][static_cast<std::size_t>(in)] > 0.0)
                delta[l - 1][static_cast<std::size_t>(in)] += d * w[in];
            }
          }
        }
      }
      // Adam update with the mini-batch mean gradient.
      ++step;
      const double inv = 1.0 / static_cast<double>(stop - start);
      const double bc1 = 1.0 - std::pow(kBeta1, static_cast<double>(step));
      const double bc2 = 1.0 - std::pow(kBeta2, static_cast<double>(step));
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        Layer& layer = layers_[l];
        Moments& m = moments[l];
        auto update = [&](double& param, double grad, double& m1, double& m2) {
          grad = grad * inv + options_.weight_decay * param;
          m1 = kBeta1 * m1 + (1.0 - kBeta1) * grad;
          m2 = kBeta2 * m2 + (1.0 - kBeta2) * grad * grad;
          param -= options_.learning_rate * (m1 / bc1) /
                   (std::sqrt(m2 / bc2) + kEps);
        };
        for (std::size_t k = 0; k < layer.w.size(); ++k)
          update(layer.w[k], grads[l].w[k], m.mw[k], m.vw[k]);
        for (std::size_t k = 0; k < layer.b.size(); ++k)
          update(layer.b[k], grads[l].b[k], m.mb[k], m.vb[k]);
      }
    }
  }
}

std::vector<double> MlpRegression::standardized(
    const std::vector<double>& features) const {
  std::vector<double> z(features.size());
  for (std::size_t f = 0; f < features.size(); ++f)
    z[f] = (features[f] - feature_mean_[f]) / feature_std_[f];
  return z;
}

double MlpRegression::predict(const std::vector<double>& features) const {
  VIDUR_CHECK_MSG(!layers_.empty(), "predict() before fit()");
  VIDUR_CHECK(features.size() == feature_mean_.size());
  std::vector<double> cur = standardized(features);
  std::vector<double> next;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    next.assign(static_cast<std::size_t>(layer.out), 0.0);
    for (int o = 0; o < layer.out; ++o) {
      double z = layer.b[static_cast<std::size_t>(o)];
      const double* w = &layer.w[static_cast<std::size_t>(o) * layer.in];
      for (int in = 0; in < layer.in; ++in)
        z += w[in] * cur[static_cast<std::size_t>(in)];
      next[static_cast<std::size_t>(o)] =
          (l + 1 < layers_.size()) ? std::max(0.0, z) : z;
    }
    cur.swap(next);
  }
  return std::exp(cur[0] * target_std_ + target_mean_);
}

// -------------------------------------------------------------- factory ----

std::unique_ptr<RegressionModel> make_regression_model(EstimatorKind kind,
                                                       std::uint64_t seed) {
  switch (kind) {
    case EstimatorKind::kRandomForest: {
      RandomForest::Options o;
      o.seed = seed;
      return std::make_unique<RandomForest>(o);
    }
    case EstimatorKind::kRidgePoly:
      return std::make_unique<RidgePolyRegression>();
    case EstimatorKind::kNearestNeighbor:
      return std::make_unique<NearestNeighbor>();
    case EstimatorKind::kMlp: {
      MlpRegression::Options o;
      o.seed = seed;
      return std::make_unique<MlpRegression>(o);
    }
  }
  throw Error("unhandled EstimatorKind");
}

double mean_absolute_percentage_error(const RegressionModel& model,
                                      const Dataset& data) {
  VIDUR_CHECK(data.size() > 0);
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data.y[i] <= 0.0) continue;
    std::vector<double> features(data.row(i),
                                 data.row(i) + data.num_features);
    acc += std::abs(model.predict(features) - data.y[i]) / data.y[i];
    ++n;
  }
  VIDUR_CHECK(n > 0);
  return acc / static_cast<double>(n);
}

}  // namespace vidur
