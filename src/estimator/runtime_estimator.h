// Runtime estimator (paper §4.4): trains one regression model per profiled
// operator variant and serves predictions through an operation-wise lookup
// table (a memo cache over quantized input sizes), which is what the
// simulator queries on its hot path.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "estimator/regression.h"
#include "profiler/profile_db.h"

namespace vidur {

class RuntimeEstimator {
 public:
  struct Options {
    EstimatorKind kind = EstimatorKind::kRandomForest;
    std::uint64_t seed = 0x7e57ULL;
    /// Quantization of decode-attention KV totals for cache keys (tokens).
    long decode_kv_rounding = 64;
    /// Quantization of communication byte counts for cache keys.
    long comm_bytes_rounding = 4096;
  };

  /// Trains all per-operator models from the profile database.
  explicit RuntimeEstimator(const ProfileDb& db) : RuntimeEstimator(db, Options{}) {}
  RuntimeEstimator(const ProfileDb& db, Options options);

  /// Predicted runtime of `op` (sharded at `shard`: TP degree for model ops,
  /// world size for collectives) with input `in`. Thread-safe; memoized.
  double predict(OpType op, int shard, const OpInput& in) const;

  /// Prediction bypassing the cache (used by tests and the ablation bench).
  double predict_uncached(OpType op, int shard, const OpInput& in) const;

  /// Held-out accuracy of the per-op model (MAPE over the given points).
  double evaluate_mape(const ProfileKey& key,
                       const std::vector<ProfilePoint>& heldout) const;

  bool has_model(OpType op, int shard) const;
  std::size_t cache_size() const;
  std::size_t cache_hits() const { return cache_hits_; }
  std::size_t cache_misses() const { return cache_misses_; }

 private:
  struct KeyHash {
    std::size_t operator()(std::uint64_t k) const {
      // splitmix-style finalizer.
      k ^= k >> 33;
      k *= 0xff51afd7ed558ccdULL;
      k ^= k >> 33;
      return static_cast<std::size_t>(k);
    }
  };

  /// Quantize inputs so near-identical queries share a cache entry.
  OpInput quantize(OpType op, OpInput in) const;
  std::uint64_t cache_key(OpType op, int shard, const OpInput& in) const;

  Options options_;
  std::map<ProfileKey, std::unique_ptr<RegressionModel>> models_;
  mutable std::unordered_map<std::uint64_t, double, KeyHash> cache_;
  mutable std::mutex cache_mutex_;
  mutable std::size_t cache_hits_ = 0;
  mutable std::size_t cache_misses_ = 0;
};

}  // namespace vidur
