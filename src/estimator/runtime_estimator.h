// Runtime estimator (paper §4.4): trains one regression model per profiled
// operator variant and serves predictions through an operation-wise lookup
// table (a memo cache over quantized input sizes), which is what the
// simulator queries on its hot path.
//
// The lookup table is a fixed-capacity open-addressing flat table with
// atomic slots: the read path takes no lock (single-threaded simulation
// pays two atomic loads per hit; sweep threads sharing one estimator stop
// serializing on a mutex). Writers claim empty slots with a CAS and publish
// key-after-value, so readers never observe a half-written entry — at worst
// a concurrent reader misses an in-flight insert and recomputes the same
// deterministic value.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>

#include "estimator/regression.h"
#include "profiler/profile_db.h"

namespace vidur {

class RuntimeEstimator {
 public:
  struct Options {
    EstimatorKind kind = EstimatorKind::kRandomForest;
    std::uint64_t seed = 0x7e57ULL;
    /// Quantization of decode-attention KV totals for cache keys (tokens).
    long decode_kv_rounding = 64;
    /// Quantization of communication byte counts for cache keys.
    long comm_bytes_rounding = 4096;
    /// Slots in the open-addressing prediction cache (rounded up to a power
    /// of two). Inserts stop at 50% load; further misses recompute. The
    /// quantized key space of a simulation is a few thousand entries, so the
    /// default never saturates in practice.
    std::size_t cache_slots = 1 << 16;
  };

  /// Trains all per-operator models from the profile database.
  explicit RuntimeEstimator(const ProfileDb& db) : RuntimeEstimator(db, Options{}) {}
  RuntimeEstimator(const ProfileDb& db, Options options);

  const Options& options() const { return options_; }

  /// The decode-KV quantization predict() applies to kAttnDecode inputs.
  /// Public so dependants (the stage-timing memo) bucket with the exact
  /// same rounding instead of re-deriving it.
  long quantize_decode_kv(long kv_tokens) const;

  /// Predicted runtime of `op` (sharded at `shard`: TP degree for model ops,
  /// world size for collectives) with input `in`. Thread-safe; memoized;
  /// lock-free on both hit and miss paths.
  double predict(OpType op, int shard, const OpInput& in) const;

  /// Prediction bypassing the cache (used by tests and the ablation bench).
  double predict_uncached(OpType op, int shard, const OpInput& in) const;

  /// Held-out accuracy of the per-op model (MAPE over the given points).
  double evaluate_mape(const ProfileKey& key,
                       const std::vector<ProfilePoint>& heldout) const;

  bool has_model(OpType op, int shard) const;
  std::size_t cache_size() const {
    return cache_used_.load(std::memory_order_relaxed);
  }
  /// Calls into predict() — exactly one per call, hit or miss.
  std::size_t cache_lookups() const {
    return cache_lookups_.load(std::memory_order_relaxed);
  }
  std::size_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  /// Derived as lookups - hits, so cache_hits() + cache_misses() ==
  /// cache_lookups() holds exactly even while other threads are inside
  /// predict(). Hits are loaded first: a hit increment always follows its
  /// lookup increment, so the difference can never go negative for a given
  /// interleaving; the clamp guards the relaxed-ordering edge case.
  std::size_t cache_misses() const {
    const std::size_t hits = cache_hits_.load(std::memory_order_relaxed);
    const std::size_t lookups =
        cache_lookups_.load(std::memory_order_relaxed);
    return lookups > hits ? lookups - hits : 0;
  }

 private:
  /// One cache slot. `key` transitions kEmpty -> kBusy -> the real key;
  /// `value_bits` is the prediction's double, bit-cast, written before the
  /// key is published.
  struct Slot {
    std::atomic<std::uint64_t> key{kEmptyKey};
    std::atomic<std::uint64_t> value_bits{0};
  };

  /// Sentinels live outside the reachable key space: cache_key() packs the
  /// op id into the top bits, and no op id comes near 63.
  static constexpr std::uint64_t kEmptyKey = ~0ULL;
  static constexpr std::uint64_t kBusyKey = ~0ULL - 1;

  static std::size_t hash_key(std::uint64_t k) {
    // splitmix-style finalizer.
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdULL;
    k ^= k >> 33;
    return static_cast<std::size_t>(k);
  }

  /// Quantize inputs so near-identical queries share a cache entry.
  OpInput quantize(OpType op, OpInput in) const;
  std::uint64_t cache_key(OpType op, int shard, const OpInput& in) const;

  bool cache_lookup(std::uint64_t key, double* value) const;
  void cache_insert(std::uint64_t key, double value) const;

  Options options_;
  std::map<ProfileKey, std::unique_ptr<RegressionModel>> models_;
  std::unique_ptr<Slot[]> slots_;
  std::size_t slot_mask_ = 0;  ///< capacity - 1 (capacity is a power of two)
  mutable std::atomic<std::size_t> cache_used_{0};
  mutable std::atomic<std::size_t> cache_lookups_{0};
  mutable std::atomic<std::size_t> cache_hits_{0};
};

}  // namespace vidur
