#include "estimator/runtime_estimator.h"

#include <cmath>

#include "common/check.h"

namespace vidur {

namespace {

long round_to(long value, long granule) {
  if (granule <= 1 || value <= 0) return value;
  return ((value + granule / 2) / granule) * granule;
}

}  // namespace

RuntimeEstimator::RuntimeEstimator(const ProfileDb& db, Options options)
    : options_(options) {
  std::uint64_t seed = options_.seed;
  for (const ProfileKey& key : db.keys()) {
    Dataset data;
    for (const ProfilePoint& p : db.points(key)) data.add(p.features, p.runtime);
    auto model = make_regression_model(options_.kind, seed++);
    model->fit(data);
    models_[key] = std::move(model);
  }
  VIDUR_CHECK_MSG(!models_.empty(), "profile database is empty");
}

bool RuntimeEstimator::has_model(OpType op, int shard) const {
  return models_.count(ProfileKey{op, shard}) > 0;
}

OpInput RuntimeEstimator::quantize(OpType op, OpInput in) const {
  if (op == OpType::kAttnDecode) {
    in.kv_tokens = round_to(in.kv_tokens, options_.decode_kv_rounding);
  } else if (op_class(op) == OpClass::kCommunication) {
    in.bytes = round_to(in.bytes, options_.comm_bytes_rounding);
  }
  return in;
}

std::uint64_t RuntimeEstimator::cache_key(OpType op, int shard,
                                          const OpInput& in) const {
  // Layout: [op:6][shard:6][f0:28][f1:24]; inputs far exceeding the packed
  // range would alias, so widths are chosen to cover the simulator's domain
  // (f0 < 2^28 covers byte counts after 4K quantization).
  const auto f = in.features(op);
  const auto f0 = static_cast<std::uint64_t>(f[0] < 0 ? 0 : f[0]);
  const auto f1 =
      f.size() > 1 ? static_cast<std::uint64_t>(f[1] < 0 ? 0 : f[1]) : 0;
  std::uint64_t key = static_cast<std::uint64_t>(op) & 0x3f;
  key = (key << 6) | (static_cast<std::uint64_t>(shard) & 0x3f);
  key = (key << 28) | (f0 & 0xfffffff);
  key = (key << 24) | (f1 & 0xffffff);
  return key;
}

double RuntimeEstimator::predict(OpType op, int shard,
                                 const OpInput& in) const {
  const OpInput q = quantize(op, in);
  const std::uint64_t key = cache_key(op, shard, q);
  {
    std::lock_guard lock(cache_mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++cache_hits_;
      return it->second;
    }
    ++cache_misses_;
  }
  const double value = predict_uncached(op, shard, q);
  {
    std::lock_guard lock(cache_mutex_);
    cache_.emplace(key, value);
  }
  return value;
}

double RuntimeEstimator::predict_uncached(OpType op, int shard,
                                          const OpInput& in) const {
  auto it = models_.find(ProfileKey{op, shard});
  VIDUR_CHECK_MSG(it != models_.end(),
                  "no trained model for op=" << op_name(op)
                                             << " shard=" << shard
                                             << " — was it profiled?");
  const double value = it->second->predict(in.features(op));
  // Regression can undershoot near zero; runtimes are physical.
  return std::max(value, 1e-7);
}

double RuntimeEstimator::evaluate_mape(
    const ProfileKey& key, const std::vector<ProfilePoint>& heldout) const {
  auto it = models_.find(key);
  VIDUR_CHECK(it != models_.end());
  double acc = 0.0;
  std::size_t n = 0;
  for (const auto& p : heldout) {
    if (p.runtime <= 0.0) continue;
    acc += std::abs(it->second->predict(p.features) - p.runtime) / p.runtime;
    ++n;
  }
  VIDUR_CHECK(n > 0);
  return acc / static_cast<double>(n);
}

std::size_t RuntimeEstimator::cache_size() const {
  std::lock_guard lock(cache_mutex_);
  return cache_.size();
}

}  // namespace vidur
