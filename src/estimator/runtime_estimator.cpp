#include "estimator/runtime_estimator.h"

#include <bit>
#include <cmath>

#include "common/check.h"

namespace vidur {

namespace {

long round_to(long value, long granule) {
  if (granule <= 1 || value <= 0) return value;
  return ((value + granule / 2) / granule) * granule;
}

}  // namespace

RuntimeEstimator::RuntimeEstimator(const ProfileDb& db, Options options)
    : options_(options) {
  std::uint64_t seed = options_.seed;
  for (const ProfileKey& key : db.keys()) {
    Dataset data;
    for (const ProfilePoint& p : db.points(key)) data.add(p.features, p.runtime);
    auto model = make_regression_model(options_.kind, seed++);
    model->fit(data);
    models_[key] = std::move(model);
  }
  VIDUR_CHECK_MSG(!models_.empty(), "profile database is empty");

  const std::size_t capacity =
      std::bit_ceil(std::max<std::size_t>(options_.cache_slots, 64));
  slots_ = std::make_unique<Slot[]>(capacity);
  slot_mask_ = capacity - 1;
}

bool RuntimeEstimator::has_model(OpType op, int shard) const {
  return models_.count(ProfileKey{op, shard}) > 0;
}

long RuntimeEstimator::quantize_decode_kv(long kv_tokens) const {
  return round_to(kv_tokens, options_.decode_kv_rounding);
}

OpInput RuntimeEstimator::quantize(OpType op, OpInput in) const {
  if (op == OpType::kAttnDecode) {
    in.kv_tokens = quantize_decode_kv(in.kv_tokens);
  } else if (op_class(op) == OpClass::kCommunication) {
    in.bytes = round_to(in.bytes, options_.comm_bytes_rounding);
  }
  return in;
}

std::uint64_t RuntimeEstimator::cache_key(OpType op, int shard,
                                          const OpInput& in) const {
  // Layout: [op:6][shard:6][f0:28][f1:24]; inputs far exceeding the packed
  // range would alias, so widths are chosen to cover the simulator's domain
  // (f0 < 2^28 covers byte counts after 4K quantization). Op ids stay far
  // below 62, so packed keys can never collide with the slot sentinels.
  const auto [raw0, raw1] = in.key_features(op);
  const auto f0 = static_cast<std::uint64_t>(raw0 < 0 ? 0 : raw0);
  const auto f1 = static_cast<std::uint64_t>(raw1 < 0 ? 0 : raw1);
  std::uint64_t key = static_cast<std::uint64_t>(op) & 0x3f;
  key = (key << 6) | (static_cast<std::uint64_t>(shard) & 0x3f);
  key = (key << 28) | (f0 & 0xfffffff);
  key = (key << 24) | (f1 & 0xffffff);
  return key;
}

bool RuntimeEstimator::cache_lookup(std::uint64_t key, double* value) const {
  std::size_t idx = hash_key(key) & slot_mask_;
  for (std::size_t probes = 0; probes <= slot_mask_;
       ++probes, idx = (idx + 1) & slot_mask_) {
    const std::uint64_t k = slots_[idx].key.load(std::memory_order_acquire);
    if (k == key) {
      *value = std::bit_cast<double>(
          slots_[idx].value_bits.load(std::memory_order_acquire));
      return true;
    }
    if (k == kEmptyKey) return false;
    // kBusy (an insert mid-publication) or another key: keep probing. A
    // busy slot that turns out to be ours counts as a miss this time; the
    // recomputed value is identical, so the race is benign.
  }
  return false;
}

void RuntimeEstimator::cache_insert(std::uint64_t key, double value) const {
  // Load cap at 50%: probe chains stay short, and a saturated table
  // degrades to recomputing instead of probing forever.
  if (cache_used_.load(std::memory_order_relaxed) * 2 > slot_mask_) return;
  std::size_t idx = hash_key(key) & slot_mask_;
  for (std::size_t probes = 0; probes <= slot_mask_;
       ++probes, idx = (idx + 1) & slot_mask_) {
    std::uint64_t k = slots_[idx].key.load(std::memory_order_acquire);
    if (k == key) return;  // another thread published the same entry
    if (k != kEmptyKey) continue;
    std::uint64_t expected = kEmptyKey;
    if (slots_[idx].key.compare_exchange_strong(expected, kBusyKey,
                                                std::memory_order_acq_rel)) {
      // Value before key: a reader that sees the key also sees the value.
      slots_[idx].value_bits.store(std::bit_cast<std::uint64_t>(value),
                                   std::memory_order_release);
      slots_[idx].key.store(key, std::memory_order_release);
      cache_used_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (expected == key) return;  // lost the race to an identical insert
  }
}

double RuntimeEstimator::predict(OpType op, int shard,
                                 const OpInput& in) const {
  const OpInput q = quantize(op, in);
  const std::uint64_t key = cache_key(op, shard, q);
  // One lookup per call, counted unconditionally; misses are derived as
  // lookups - hits so hits + misses == lookups is an identity rather than
  // an invariant two racing counters could drift away from.
  cache_lookups_.fetch_add(1, std::memory_order_relaxed);
  double value;
  if (cache_lookup(key, &value)) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    return value;
  }
  value = predict_uncached(op, shard, q);
  cache_insert(key, value);
  return value;
}

double RuntimeEstimator::predict_uncached(OpType op, int shard,
                                          const OpInput& in) const {
  auto it = models_.find(ProfileKey{op, shard});
  VIDUR_CHECK_MSG(it != models_.end(),
                  "no trained model for op=" << op_name(op)
                                             << " shard=" << shard
                                             << " — was it profiled?");
  const double value = it->second->predict(in.features(op));
  // Regression can undershoot near zero; runtimes are physical.
  return std::max(value, 1e-7);
}

double RuntimeEstimator::evaluate_mape(
    const ProfileKey& key, const std::vector<ProfilePoint>& heldout) const {
  auto it = models_.find(key);
  VIDUR_CHECK(it != models_.end());
  double acc = 0.0;
  std::size_t n = 0;
  for (const auto& p : heldout) {
    if (p.runtime <= 0.0) continue;
    acc += std::abs(it->second->predict(p.features) - p.runtime) / p.runtime;
    ++n;
  }
  VIDUR_CHECK(n > 0);
  return acc / static_cast<double>(n);
}

}  // namespace vidur
