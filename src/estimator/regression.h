// Small regression models for kernel-runtime interpolation (paper §4.4).
//
// The paper finds random-forest regression is the sweet spot between data
// frugality and fidelity; we implement it from scratch (CART trees + bagging)
// along with the two baselines it is compared against conceptually:
// polynomial (ridge) regression, which misses tile/wave-quantization
// non-linearities, and nearest-neighbor lookup, which is data-hungry.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"

namespace vidur {

/// Training data: `n` rows of `num_features` columns, row-major.
struct Dataset {
  int num_features = 0;
  std::vector<double> x;  ///< size n * num_features
  std::vector<double> y;  ///< size n

  std::size_t size() const { return y.size(); }
  const double* row(std::size_t i) const { return &x[i * num_features]; }
  void add(const std::vector<double>& features, double target);
};

/// Interface for all regressors.
class RegressionModel {
 public:
  virtual ~RegressionModel() = default;

  /// Fit on the dataset. Throws vidur::Error when the data is unusable
  /// (empty, or feature-width mismatch).
  virtual void fit(const Dataset& data) = 0;

  /// Predict a single point (size must equal num_features of training data).
  virtual double predict(const std::vector<double>& features) const = 0;
};

/// CART regression tree: greedy variance-reduction splits.
class DecisionTree final : public RegressionModel {
 public:
  struct Options {
    int max_depth = 14;
    int min_samples_leaf = 1;
  };

  DecisionTree() : DecisionTree(Options{}) {}
  explicit DecisionTree(Options options) : options_(options) {}

  void fit(const Dataset& data) override;
  double predict(const std::vector<double>& features) const override;

  /// Fit on a bootstrap subset given by row indices (used by RandomForest).
  void fit_subset(const Dataset& data, const std::vector<std::size_t>& rows);

  std::size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    int feature = -1;       // -1 for leaves
    double threshold = 0.0;
    double value = 0.0;      // leaf prediction
    std::int32_t left = -1;  // child indices
    std::int32_t right = -1;
  };

  std::int32_t build(const Dataset& data, std::vector<std::size_t>& rows,
                     std::size_t begin, std::size_t end, int depth);

  Options options_;
  std::vector<Node> nodes_;
  int num_features_ = 0;
};

/// Bagged random forest of CART trees.
class RandomForest final : public RegressionModel {
 public:
  struct Options {
    int num_trees = 32;
    DecisionTree::Options tree;
    std::uint64_t seed = 0x5eedULL;
  };

  RandomForest() : RandomForest(Options{}) {}
  explicit RandomForest(Options options) : options_(options) {}

  void fit(const Dataset& data) override;
  double predict(const std::vector<double>& features) const override;

 private:
  Options options_;
  std::vector<DecisionTree> trees_;
};

/// Ridge regression on polynomial feature expansion (degree <= 3).
class RidgePolyRegression final : public RegressionModel {
 public:
  struct Options {
    int degree = 2;
    double lambda = 1e-6;
  };

  RidgePolyRegression() : RidgePolyRegression(Options{}) {}
  explicit RidgePolyRegression(Options options) : options_(options) {}

  void fit(const Dataset& data) override;
  double predict(const std::vector<double>& features) const override;

 private:
  std::vector<double> expand(const double* row) const;

  Options options_;
  int num_features_ = 0;
  std::vector<double> weights_;
  std::vector<double> feature_scale_;
};

/// 1-nearest-neighbor lookup in scale-normalized feature space.
class NearestNeighbor final : public RegressionModel {
 public:
  void fit(const Dataset& data) override;
  double predict(const std::vector<double>& features) const override;

 private:
  Dataset data_;
  std::vector<double> feature_scale_;
};

/// Small fully-connected MLP trained with Adam — the data-hungry baseline
/// prior training simulators use for opaque kernels (paper §4.4, citing
/// Habitat). Features are standardized; the target is regressed in log space
/// (kernel runtimes are positive and span decades), so predictions are
/// always positive.
class MlpRegression final : public RegressionModel {
 public:
  struct Options {
    std::vector<int> hidden = {32, 32};
    int epochs = 400;
    int batch_size = 32;
    double learning_rate = 1e-3;
    double weight_decay = 1e-5;
    std::uint64_t seed = 0x5eedULL;
  };

  MlpRegression() : MlpRegression(Options{}) {}
  explicit MlpRegression(Options options) : options_(std::move(options)) {}

  void fit(const Dataset& data) override;
  double predict(const std::vector<double>& features) const override;

 private:
  struct Layer {
    int in = 0, out = 0;
    std::vector<double> w;  ///< out x in, row-major
    std::vector<double> b;  ///< out
  };

  std::vector<double> standardized(const std::vector<double>& features) const;

  Options options_;
  std::vector<Layer> layers_;
  std::vector<double> feature_mean_, feature_std_;
  double target_mean_ = 0.0, target_std_ = 1.0;
};

enum class EstimatorKind { kRandomForest, kRidgePoly, kNearestNeighbor, kMlp };

/// Factory for the estimator ablation bench.
std::unique_ptr<RegressionModel> make_regression_model(
    EstimatorKind kind, std::uint64_t seed = 0x5eedULL);

/// Mean absolute percentage error of `model` on a dataset.
double mean_absolute_percentage_error(const RegressionModel& model,
                                      const Dataset& data);

}  // namespace vidur
