#include "api/run.h"

#include <algorithm>
#include <memory>
#include <set>
#include <thread>
#include <utility>

#include "cluster/pool.h"
#include "common/check.h"
#include "common/thread_pool.h"
#include "obs/analysis.h"
#include "obs/trace.h"
#include "scenario/registry.h"
#include "search/elastic_plan.h"
#include "search/search.h"

namespace vidur {

namespace {

/// Materialize the spec's workload: a scenario trace (with tenant infos)
/// or a synthetic trace from the named length distribution.
Trace build_trace(const ExperimentSpec& spec,
                  std::vector<TenantInfo>* tenants) {
  if (!spec.workload.synthetic()) {
    Scenario scenario = scenario_by_name(spec.workload.scenario);
    if (spec.workload.num_requests > 0)
      scenario.num_requests = spec.workload.num_requests;
    *tenants = scenario.tenant_infos();
    return generate_scenario_trace(scenario, spec.seed);
  }
  return generate_trace(trace_by_name(spec.workload.trace),
                        spec.workload.arrival, spec.workload.num_requests,
                        spec.seed);
}

/// Context the analysis engine cannot read off the record stream: SLO
/// targets (global + per-tenant) and the pool name of every replica slot.
/// Also embedded under "context" in exported trace documents so
/// `vidur analyze trace.json` reproduces the in-process report.
AnalysisOptions make_analysis_options(const ExperimentSpec& spec,
                                      const std::vector<TenantInfo>& tenants) {
  AnalysisOptions options;
  options.ttft_target = spec.slo.ttft_target;
  options.tbt_target = spec.slo.tbt_target;
  for (const TenantInfo& t : tenants) {
    TenantSloOverride ov;
    ov.tenant = static_cast<int>(t.id);
    ov.name = t.name;
    ov.ttft_target = t.slo.ttft_target;
    ov.tbt_target = t.slo.tbt_target;
    options.tenants.push_back(std::move(ov));
  }
  if (!spec.deployment.pools.empty()) {
    const std::vector<int> layout = pool_slot_layout(spec.deployment.pools);
    options.replica_pools.reserve(layout.size());
    for (const int pool : layout)
      options.replica_pools.push_back(
          spec.deployment.pools[static_cast<std::size_t>(pool)].name);
  }
  return options;
}

ExperimentResult dispatch(VidurSession& session, const ExperimentSpec& spec) {
  ExperimentResult result;
  result.spec = spec;
  // Observability attachments of the simulate/reference modes: the recorder
  // outlives the run (sim borrows it), then its records become the result's
  // Chrome trace document and/or the analytics report (obs.analyze implies
  // recording even without a trace export).
  std::unique_ptr<TraceRecorder> recorder;
  SimObs obs;
  std::vector<TenantInfo> tenants;
  if (spec.mode == ExperimentMode::kSimulate ||
      spec.mode == ExperimentMode::kReference) {
    if (spec.obs.trace || spec.obs.analyze) {
      recorder = std::make_unique<TraceRecorder>(
          static_cast<std::size_t>(spec.obs.trace_capacity));
      obs.trace = recorder.get();
    }
    obs.rolling_window_s = spec.obs.rolling_window_s;
  }
  // The fault injector's RNG streams default to a stream derived from the
  // experiment seed (splitmix64 finalizer, so faults never correlate with
  // trace generation). Resolved here, on a copy, so result.spec round-trips
  // the user's `seed: 0` losslessly.
  DeploymentConfig deployment = spec.deployment;
  if (deployment.faults.enabled() && deployment.faults.seed == 0) {
    std::uint64_t z = spec.seed + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    deployment.faults.seed = z ^ (z >> 31);
  }
  switch (spec.mode) {
    case ExperimentMode::kSimulate: {
      const Trace trace = build_trace(spec, &tenants);
      result.metrics = session.simulate(deployment, trace, tenants, obs);
      break;
    }
    case ExperimentMode::kReference: {
      const Trace trace = build_trace(spec, &tenants);
      result.metrics =
          session.simulate_reference(deployment, trace, spec.seed,
                                     tenants, obs);
      break;
    }
    case ExperimentMode::kCapacitySearch: {
      VidurSearchOptions options;
      options.slo = spec.slo;
      options.num_threads = spec.num_threads;
      options.capacity.trace_seed = spec.seed;
      if (spec.workload.num_requests > 0)
        options.capacity.num_requests = spec.workload.num_requests;
      result.search = run_search(session, spec.search,
                                 trace_by_name(spec.workload.trace), options);
      break;
    }
    case ExperimentMode::kElasticPlan: {
      Scenario scenario = scenario_by_name(spec.workload.scenario);
      if (spec.workload.num_requests > 0)
        scenario.num_requests = spec.workload.num_requests;
      ElasticPlanOptions options;
      options.slo_target = spec.elastic.slo_target;
      options.max_replicas = spec.elastic.max_replicas;
      options.burst_slots = spec.elastic.burst_slots;
      options.trace_seed = spec.seed;
      if (!spec.deployment.pools.empty()) {
        // Heterogeneous pools: each pool's slot count is its own ceiling
        // and the per-pool autoscale sections name the policies under
        // test; the planner builds the static-peak twin itself.
        result.elastic = plan_elastic_capacity_pools(
            session, spec.deployment, scenario, options);
        break;
      }
      // The deployment's autoscale section names the policy under test;
      // plan_elastic_capacity owns enabling/disabling it per run.
      DeploymentConfig base = spec.deployment;
      AutoscalerConfig policy = std::move(base.autoscale);
      base.autoscale = AutoscalerConfig{};
      result.elastic =
          plan_elastic_capacity(session, base, scenario, policy, options);
      break;
    }
  }
  if (recorder != nullptr) {
    const std::vector<TraceRecord> records = recorder->records();
    const AnalysisOptions options = make_analysis_options(spec, tenants);
    if (spec.obs.analyze)
      result.analysis = analysis_json(analyze_trace(records, options));
    if (spec.obs.trace) {
      result.trace = chrome_trace_json(records);
      result.trace.set("context", analysis_options_json(options));
    }
  }
  return result;
}

SessionOptions session_options(const ExperimentSpec& spec) {
  SessionOptions options;
  options.tp_degrees = spec.tp_degrees;
  return options;
}

void check_session(const VidurSession& session, const ExperimentSpec& spec) {
  VIDUR_CHECK_MSG(session.model().name == spec.model,
                  "run_experiment: the session's model '"
                      << session.model().name
                      << "' does not match the spec's model '" << spec.model
                      << "'");
  // validate() checked the spec's own tp_degrees; a caller-owned session
  // profiles its SessionOptions::tp_degrees instead, and a TP outside
  // them would die much later inside the estimator.
  const std::vector<int>& covered = session.options().tp_degrees;
  const auto check_tp = [&](int tp) {
    VIDUR_CHECK_MSG(std::count(covered.begin(), covered.end(), tp) > 0,
                    "run_experiment: tensor_parallel "
                        << tp << " is not covered by the session's "
                        "profiled tp_degrees; construct the VidurSession "
                        "with SessionOptions::tp_degrees including it");
  };
  check_tp(spec.deployment.parallel.tensor_parallel);
  for (const PoolSpec& pool : spec.deployment.pools)
    check_tp(pool.parallel.tensor_parallel);
  if (spec.mode == ExperimentMode::kCapacitySearch)
    for (const int tp : spec.search.tp_degrees) check_tp(tp);
  for (const int tp : spec.sweep.tensor_parallel) check_tp(tp);
}

}  // namespace

ExperimentResult run_experiment(VidurSession& session,
                                const ExperimentSpec& spec) {
  spec.validate();
  check_session(session, spec);
  VIDUR_CHECK_MSG(spec.sweep.empty(),
                  "run_experiment: spec '"
                      << spec.name
                      << "' carries sweep axes; use run_sweep for it");
  return dispatch(session, spec);
}

ExperimentResult run_experiment(const ExperimentSpec& spec) {
  spec.validate();
  VidurSession session(model_by_name(spec.model), session_options(spec));
  return run_experiment(session, spec);
}

std::vector<ExperimentResult> run_sweep(VidurSession& session,
                                        const ExperimentSpec& spec) {
  spec.validate();
  check_session(session, spec);
  const std::vector<ExperimentSpec> points = spec.expand_sweep();
  std::vector<ExperimentResult> results(points.size());

  const auto run_point = [&](std::size_t i) {
    try {
      results[i] = dispatch(session, points[i]);
    } catch (const Error& e) {
      // One infeasible point (model does not fit, degenerate config) must
      // not sink the rest of the sweep.
      results[i].spec = points[i];
      results[i].error = e.what();
    }
  };

  // capacity_search points already fan out across a pool internally; a
  // second pool on top would oversubscribe, so sweep those serially.
  if (points.size() == 1 || spec.mode == ExperimentMode::kCapacitySearch) {
    for (std::size_t i = 0; i < points.size(); ++i) run_point(i);
    return results;
  }

  // Onboard every swept SKU once, up front: onboarding holds the session
  // lock, so letting the workers race to it would serialize the pool's
  // first wave anyway.
  std::set<std::string> skus;
  for (const ExperimentSpec& p : points) skus.insert(p.deployment.sku_name);
  for (const std::string& sku : skus) session.onboard(sku);

  const std::size_t hardware = hardware_threads();
  const std::size_t threads = std::min<std::size_t>(
      points.size(),
      spec.num_threads > 0 ? static_cast<std::size_t>(spec.num_threads)
                           : hardware);
  ThreadPool pool(threads);
  parallel_for(pool, points.size(), run_point);
  return results;
}

std::vector<ExperimentResult> run_sweep(const ExperimentSpec& spec) {
  spec.validate();
  VidurSession session(model_by_name(spec.model), session_options(spec));
  return run_sweep(session, spec);
}

}  // namespace vidur
