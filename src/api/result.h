// Uniform result of run_experiment(): one value type covering every
// ExperimentMode, serializing to the same JSON field names the BENCH_*.json
// artifacts use so downstream tooling reads both interchangeably.
#pragma once

#include <string>
#include <vector>

#include "api/experiment.h"
#include "metrics/metrics.h"
#include "search/elastic_plan.h"
#include "search/search.h"

namespace vidur {

struct ExperimentResult {
  /// The concrete spec that produced this result (post sweep expansion).
  ExperimentSpec spec;
  /// simulate / reference modes.
  SimulationMetrics metrics;
  /// capacity_search mode.
  SearchResult search;
  /// elastic_plan mode.
  ElasticPlanResult elastic;
  /// Chrome trace_event document when the spec asked for tracing
  /// (obs.trace, simulate/reference modes); JSON null otherwise. Not part
  /// of to_json() — the CLI writes it to its own file (`--trace out.json`).
  JsonValue trace;
  /// Trace analytics report (obs.analyze, simulate/reference modes):
  /// latency waterfalls, SLO blame, replica audits, queueing decomposition
  /// (src/obs/analysis.h). Part of to_json() under "analysis".
  JsonValue analysis;
  /// Non-empty when this sweep point failed (e.g. the model does not fit
  /// the deployment); the payload sections are then default-constructed.
  /// run_experiment() throws instead — only run_sweep() records errors.
  std::string error;

  bool failed() const { return !error.empty(); }
  bool has_trace() const { return !trace.is_null(); }
  bool has_analysis() const { return !analysis.is_null(); }

  /// Human-readable report (the examples print this).
  std::string to_string() const;
  /// Mode-dependent payload using bench-compatible field names.
  JsonValue to_json() const;
};

/// Serialize one simulation's metrics with the field names the bench
/// harnesses emit (makespan_s, throughput_qps, ttft_p90_s, ...).
JsonValue metrics_to_json(const SimulationMetrics& metrics);

/// Wrap one result (or a sweep's results) in the same top-level shape
/// write_bench_json produces — {"experiment", "mode", "spec", "results"} —
/// and write it to `path`. Throws vidur::Error when the file cannot be
/// written.
void write_experiment_json(const ExperimentResult& result,
                           const std::string& path);
/// `base` is the pre-expansion spec (the one carrying the sweep axes).
void write_sweep_json(const ExperimentSpec& base,
                      const std::vector<ExperimentResult>& results,
                      const std::string& path);

}  // namespace vidur
