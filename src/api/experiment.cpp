#include "api/experiment.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "hardware/sku.h"
#include "model/model_spec.h"
#include "scenario/registry.h"

namespace vidur {

namespace {

const std::vector<std::pair<ExperimentMode, std::string>>& mode_names() {
  static const std::vector<std::pair<ExperimentMode, std::string>> table = {
      {ExperimentMode::kSimulate, "simulate"},
      {ExperimentMode::kReference, "reference"},
      {ExperimentMode::kCapacitySearch, "capacity_search"},
      {ExperimentMode::kElasticPlan, "elastic_plan"},
  };
  return table;
}

// ------------------------------------------------- did-you-mean helpers

std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      diag = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
    }
  }
  return row[b.size()];
}

std::string join(const std::vector<std::string>& names) {
  std::string out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += names[i];
  }
  return out;
}

/// "unknown <what> '<got>' (did you mean '<closest>'?); known <what>s: ...".
[[noreturn]] void fail_unknown_name(const std::string& what,
                                    const std::string& got,
                                    const std::vector<std::string>& known) {
  std::ostringstream os;
  os << "unknown " << what << " '" << got << "'";
  std::size_t best = std::string::npos;
  const std::string* suggestion = nullptr;
  for (const std::string& candidate : known) {
    const std::size_t d = edit_distance(got, candidate);
    if (d < best) {
      best = d;
      suggestion = &candidate;
    }
  }
  if (suggestion != nullptr &&
      best <= std::max<std::size_t>(2, got.size() / 3))
    os << " (did you mean '" << *suggestion << "'?)";
  os << "; known: " << join(known);
  throw Error(os.str());
}

void check_name(const std::string& what, const std::string& got,
                const std::vector<std::string>& known) {
  if (std::find(known.begin(), known.end(), got) == known.end())
    fail_unknown_name(what, got, known);
}

}  // namespace

const std::string& experiment_mode_name(ExperimentMode mode) {
  for (const auto& [m, n] : mode_names())
    if (m == mode) return n;
  throw Error("unhandled ExperimentMode");
}

ExperimentMode experiment_mode_from_name(const std::string& name) {
  for (const auto& [m, n] : mode_names())
    if (n == name) return m;
  fail_unknown_name("experiment mode", name, experiment_mode_names());
}

const std::vector<std::string>& experiment_mode_names() {
  static const std::vector<std::string> all = [] {
    std::vector<std::string> out;
    for (const auto& [m, n] : mode_names()) out.push_back(n);
    return out;
  }();
  return all;
}

// ---------------------------------------------------------------- sweep

bool SweepAxes::empty() const {
  // Axis-wise, not num_points() == 1: a single-element axis still pins
  // that coordinate and must be applied by expand_sweep().
  return sku.empty() && tensor_parallel.empty() &&
         pipeline_parallel.empty() && num_replicas.empty() &&
         scheduler.empty() && max_batch_size.empty() && chunk_size.empty() &&
         qps.empty();
}

std::size_t SweepAxes::num_points() const {
  const auto dim = [](std::size_t n) { return std::max<std::size_t>(1, n); };
  return dim(sku.size()) * dim(tensor_parallel.size()) *
         dim(pipeline_parallel.size()) * dim(num_replicas.size()) *
         dim(scheduler.size()) * dim(max_batch_size.size()) *
         dim(chunk_size.size()) * dim(qps.size());
}

// -------------------------------------------------------------- builders

ExperimentSpec& ExperimentSpec::with_name(std::string n) {
  name = std::move(n);
  return *this;
}

ExperimentSpec& ExperimentSpec::with_mode(ExperimentMode m) {
  mode = m;
  return *this;
}

ExperimentSpec& ExperimentSpec::with_model(std::string model_name) {
  model = std::move(model_name);
  return *this;
}

ExperimentSpec& ExperimentSpec::with_sku(std::string sku_name) {
  deployment.sku_name = std::move(sku_name);
  return *this;
}

ExperimentSpec& ExperimentSpec::with_parallelism(int tp, int pp,
                                                 int replicas) {
  deployment.parallel = ParallelConfig{tp, pp, replicas};
  return *this;
}

ExperimentSpec& ExperimentSpec::with_scheduler(SchedulerKind kind,
                                               int max_batch_size,
                                               TokenCount chunk_size) {
  deployment.scheduler.kind = kind;
  deployment.scheduler.max_batch_size = max_batch_size;
  deployment.scheduler.chunk_size = chunk_size;
  return *this;
}

ExperimentSpec& ExperimentSpec::with_routing(GlobalSchedulerKind kind) {
  deployment.global_scheduler = kind;
  return *this;
}

ExperimentSpec& ExperimentSpec::with_trace(std::string trace_name, double qps,
                                           int num_requests) {
  workload.scenario.clear();
  workload.trace = std::move(trace_name);
  workload.arrival = ArrivalSpec{ArrivalKind::kPoisson, qps, /*cv=*/2.0};
  workload.num_requests = num_requests;
  return *this;
}

ExperimentSpec& ExperimentSpec::with_scenario(std::string scenario_name,
                                              int num_requests) {
  workload.scenario = std::move(scenario_name);
  workload.num_requests = num_requests;
  return *this;
}

ExperimentSpec& ExperimentSpec::with_slo(SloSpec s) {
  slo = s;
  return *this;
}

ExperimentSpec& ExperimentSpec::with_seed(std::uint64_t s) {
  seed = s;
  return *this;
}

ExperimentSpec& ExperimentSpec::with_autoscale(AutoscalerConfig autoscale) {
  deployment.autoscale = std::move(autoscale);
  return *this;
}

ExperimentSpec& ExperimentSpec::with_pool(PoolSpec pool) {
  deployment.pools.push_back(std::move(pool));
  return *this;
}

ExperimentSpec& ExperimentSpec::with_prefix_cache(double capacity_fraction) {
  deployment.prefix_cache.enabled = true;
  deployment.prefix_cache.capacity_fraction = capacity_fraction;
  return *this;
}

ExperimentSpec& ExperimentSpec::with_faults(FaultConfig faults) {
  deployment.faults = std::move(faults);
  return *this;
}

// -------------------------------------------------------------- validate

void ExperimentSpec::validate() const {
  VIDUR_CHECK_MSG(!name.empty(), "experiment spec needs a non-empty name");
  check_name("model", model, builtin_model_names());
  check_name("SKU", deployment.sku_name, builtin_sku_names());

  deployment.parallel.validate();
  deployment.scheduler.validate();
  const auto check_tp_covered = [this](int tp, const char* what) {
    VIDUR_CHECK_MSG(
        std::count(tp_degrees.begin(), tp_degrees.end(), tp) > 0,
        what << " tensor_parallel " << tp
             << " is not covered by the session tp_degrees [" << [this] {
                  std::ostringstream os;
                  for (std::size_t i = 0; i < tp_degrees.size(); ++i)
                    os << (i > 0 ? ", " : "") << tp_degrees[i];
                  return os.str();
                }() << "]; add it to tp_degrees so onboarding profiles it");
  };
  if (deployment.pools.empty())
    check_tp_covered(deployment.parallel.tensor_parallel, "deployment");

  VIDUR_CHECK_MSG(
      !(deployment.disagg.enabled() && deployment.autoscale.enabled()),
      "disaggregated serving and autoscaling cannot be combined in the "
      "homogeneous form (use deployment.pools with prefill/decode pools, "
      "which scale independently); disable deployment.disagg or "
      "deployment.autoscale");
  if (deployment.autoscale.enabled()) deployment.autoscale.validate();

  // ---- prefix cache ----
  deployment.prefix_cache.validate();
  VIDUR_CHECK_MSG(
      deployment.global_scheduler != GlobalSchedulerKind::kCacheAware ||
          deployment.prefix_cache.enabled,
      "global_scheduler 'cache_aware' routes on prefix-cache residency; "
      "set deployment.prefix_cache.enabled = true (or pick another "
      "routing policy)");

  // ---- heterogeneous pools ----
  if (!deployment.pools.empty()) {
    VIDUR_CHECK_MSG(deployment.autoscale == AutoscalerConfig{},
                    "deployment.pools carries per-pool autoscale policies; "
                    "remove the top-level deployment.autoscale section");
    VIDUR_CHECK_MSG(!deployment.disagg.enabled(),
                    "deployment.pools defines disaggregation through pool "
                    "roles; remove deployment.disagg.num_prefill_replicas "
                    "(the transfer_* fields still apply)");
    VIDUR_CHECK_MSG(
        deployment.sku_name == DeploymentConfig{}.sku_name &&
            deployment.parallel == ParallelConfig{},
        "deployment.pools supersedes the homogeneous sku/tensor_parallel/"
        "pipeline_parallel/num_replicas fields; leave them at their "
        "defaults (each pool carries its own)");
    // validate_pools() owns the structural checks (names, costs, roles,
    // group consistency); this loop adds only the spec-layer extras: the
    // SKU did-you-mean and the session tp_degrees coverage.
    for (const PoolSpec& pool : deployment.pools) {
      check_name("SKU", pool.sku_name, builtin_sku_names());
      check_tp_covered(pool.parallel.tensor_parallel,
                       ("pool '" + pool.name + "'").c_str());
    }
    validate_pools(deployment.pools);
    bool any_capacity = false, all_capacity = true;
    for (const PoolSpec& pool : deployment.pools) {
      any_capacity |= pool.capacity_qps > 0;
      all_capacity &= pool.capacity_qps > 0;
    }
    VIDUR_CHECK_MSG(!any_capacity || all_capacity,
                    "deployment.pools sets capacity_qps on some pools but "
                    "not others; set it on every pool or on none (unset "
                    "capacities are derived from the estimator)");
  }

  // ---- fault injection ----
  deployment.faults.validate();
  if (deployment.faults.enabled()) {
    // Profiles must aim at pools that exist. "" (or "fleet") targets the
    // homogeneous fleet and is only meaningful without named pools.
    std::vector<std::string> pool_names;
    for (const PoolSpec& pool : deployment.pools)
      pool_names.push_back(pool.name);
    for (const FaultProfile& p : deployment.faults.profiles) {
      if (deployment.pools.empty()) {
        VIDUR_CHECK_MSG(p.pool.empty() || p.pool == "fleet",
                        "faults profile targets pool '"
                            << p.pool
                            << "' but the deployment has no named pools; "
                               "leave the profile's pool empty to target "
                               "the homogeneous fleet");
      } else {
        check_name("faults profile pool", p.pool, pool_names);
      }
    }
    // Kill-type faults remove capacity; without an autoscaler there is
    // nothing to provision replacements, so the what-if is degenerate.
    if (deployment.faults.any_kills()) {
      const bool elastic = deployment.pools.empty()
                               ? deployment.autoscale.enabled()
                               : any_pool_autoscaled(deployment.pools);
      VIDUR_CHECK_MSG(
          elastic,
          "faults include crashes or spot preemption, which permanently "
          "remove replicas; enable autoscaling (deployment.autoscale or a "
          "pool autoscale section) so the fleet can provision replacements "
          "(degrade-only profiles work on static fleets)");
    }
    switch (mode) {
      case ExperimentMode::kSimulate:
      case ExperimentMode::kReference:
        break;
      case ExperimentMode::kCapacitySearch:
      case ExperimentMode::kElasticPlan:
        throw Error(
            "deployment.faults applies to simulate/reference runs; "
            "capacity_search and elastic_plan evaluate fault-free "
            "deployments (remove the faults section)");
    }
  }

  // ---- execution ----
  VIDUR_CHECK_MSG(deployment.threads >= 1,
                  "deployment.execution.threads must be >= 1 (got "
                      << deployment.threads << ")");
  if (deployment.threads > 1) {
    VIDUR_CHECK_MSG(
        !deployment.disagg.enabled() &&
            !pools_disaggregated(deployment.pools),
        "deployment.execution.threads > 1 cannot shard disaggregated "
        "serving (prefill->decode KV hand-offs have zero lookahead); set "
        "threads = 1 or drop the disaggregation");
  }

  // ---- workload ----
  if (workload.synthetic()) {
    check_name("trace", workload.trace, builtin_trace_names());
    workload.arrival.validate();
    VIDUR_CHECK_MSG(workload.num_requests > 0,
                    "a synthetic workload needs workload.num_requests > 0");
  } else {
    check_name("scenario", workload.scenario,
               ScenarioRegistry::instance().names());
    VIDUR_CHECK_MSG(workload.num_requests >= 0,
                    "workload.num_requests must be >= 0 (0 keeps the "
                    "scenario's own default)");
    // Catch the silent-override trap: a scenario defines its own tenant
    // traces and arrival process, so a spec that also customizes the
    // synthetic fields almost certainly expected them to apply.
    const WorkloadSpec defaults;
    VIDUR_CHECK_MSG(
        workload.trace == defaults.trace &&
            workload.arrival == defaults.arrival,
        "workload.scenario '"
            << workload.scenario
            << "' carries its own traces and arrival process; remove "
               "workload.trace / workload.arrival from the spec");
  }
  VIDUR_CHECK_MSG(std::isfinite(slo.ttft_target) && slo.ttft_target >= 0 &&
                      std::isfinite(slo.tbt_target) && slo.tbt_target >= 0,
                  "SLO targets must be finite and >= 0");
  VIDUR_CHECK_MSG(num_threads >= 0, "num_threads must be >= 0");

  // ---- observability ----
  VIDUR_CHECK_MSG(obs.trace_capacity > 0,
                  "obs.trace_capacity must be > 0 (records; the ring buffer "
                  "keeps the most recent ones)");
  VIDUR_CHECK_MSG(
      std::isfinite(obs.rolling_window_s) && obs.rolling_window_s >= 0,
      "obs.rolling_window_s must be finite and >= 0 (0 disables)");

  // ---- mode constraints ----
  switch (mode) {
    case ExperimentMode::kSimulate:
    case ExperimentMode::kReference:
      break;
    case ExperimentMode::kCapacitySearch:
      VIDUR_CHECK_MSG(deployment.pools.empty(),
                      "capacity_search sweeps homogeneous deployments and "
                      "does not search over pool layouts; remove "
                      "deployment.pools (or use mode elastic_plan for a "
                      "static-vs-autoscaled pool comparison)");
      VIDUR_CHECK_MSG(workload.synthetic(),
                      "capacity_search mode sweeps arrival rates itself and "
                      "needs a synthetic workload: set workload.trace, not "
                      "workload.scenario '"
                          << workload.scenario << "'");
      // The search probes its own arrival rates (that is the quantity it
      // binary-searches); a customized arrival would be silently ignored.
      VIDUR_CHECK_MSG(workload.arrival == WorkloadSpec{}.arrival,
                      "capacity_search probes its own arrival rates; remove "
                      "workload.arrival from the spec");
      for (const std::string& sku : search.skus)
        check_name("SKU", sku, builtin_sku_names());
      for (const int tp : search.tp_degrees)
        VIDUR_CHECK_MSG(
            std::count(tp_degrees.begin(), tp_degrees.end(), tp) > 0,
            "search.tp_degrees includes "
                << tp << ", which the session tp_degrees do not cover; add "
                         "it to tp_degrees so onboarding profiles it");
      break;
    case ExperimentMode::kElasticPlan:
      VIDUR_CHECK_MSG(!workload.synthetic(),
                      "elastic_plan mode compares static and autoscaled "
                      "fleets on a named scenario; set workload.scenario");
      VIDUR_CHECK_MSG(deployment.pools.empty()
                          ? deployment.autoscale.enabled()
                          : any_pool_autoscaled(deployment.pools),
                      "elastic_plan mode needs an autoscaling policy to "
                      "evaluate: set deployment.autoscale (homogeneous) or "
                      "an autoscale section on at least one pool");
      VIDUR_CHECK_MSG(elastic.slo_target > 0 && elastic.slo_target <= 1,
                      "elastic.slo_target must be in (0, 1]");
      VIDUR_CHECK_MSG(elastic.max_replicas >= 1 && elastic.burst_slots >= 0,
                      "elastic.max_replicas must be >= 1 and "
                      "elastic.burst_slots >= 0");
      break;
  }

  // ---- sweep axes ----
  VIDUR_CHECK_MSG(deployment.pools.empty() ||
                      (sweep.sku.empty() && sweep.tensor_parallel.empty() &&
                       sweep.pipeline_parallel.empty() &&
                       sweep.num_replicas.empty()),
                  "sweep axes sku/tensor_parallel/pipeline_parallel/"
                  "num_replicas rewrite the homogeneous deployment, which "
                  "deployment.pools supersedes; drop those axes or the "
                  "pools");
  for (const std::string& sku : sweep.sku)
    check_name("SKU", sku, builtin_sku_names());
  for (const std::string& sched : sweep.scheduler)
    check_name("scheduler", sched, scheduler_names());
  for (const int tp : sweep.tensor_parallel)
    VIDUR_CHECK_MSG(std::count(tp_degrees.begin(), tp_degrees.end(), tp) > 0,
                    "sweep.tensor_parallel includes "
                        << tp << ", which the session tp_degrees do not "
                                 "cover; add it to tp_degrees");
  VIDUR_CHECK_MSG(sweep.qps.empty() || workload.synthetic(),
                  "sweep.qps applies to synthetic workloads; scenario '"
                      << workload.scenario
                      << "' carries its own arrival rate");
}

// ---------------------------------------------------------- expand_sweep

std::vector<ExperimentSpec> ExperimentSpec::expand_sweep() const {
  ExperimentSpec base = *this;
  base.sweep = SweepAxes{};
  if (sweep.empty()) return {std::move(base)};

  // Every non-empty axis contributes its values; empty axes contribute the
  // base spec's single value (encoded as one-element vectors below).
  const auto or_base = [](auto axis, auto base_value) {
    if (axis.empty()) axis.push_back(base_value);
    return axis;
  };
  const auto skus = or_base(sweep.sku, deployment.sku_name);
  const auto tps = or_base(sweep.tensor_parallel,
                           deployment.parallel.tensor_parallel);
  const auto pps = or_base(sweep.pipeline_parallel,
                           deployment.parallel.pipeline_parallel);
  const auto replicas = or_base(sweep.num_replicas,
                                deployment.parallel.num_replicas);
  const auto scheds = or_base(
      sweep.scheduler, scheduler_name(deployment.scheduler.kind));
  const auto batches = or_base(sweep.max_batch_size,
                               deployment.scheduler.max_batch_size);
  const auto chunks = or_base(sweep.chunk_size,
                              deployment.scheduler.chunk_size);
  const auto rates = or_base(sweep.qps, workload.arrival.qps);

  std::vector<ExperimentSpec> out;
  out.reserve(sweep.num_points());
  for (const std::string& sku : skus)
    for (const int tp : tps)
      for (const int pp : pps)
        for (const int n : replicas)
          for (const std::string& sched : scheds)
            for (const int bs : batches)
              for (const TokenCount chunk : chunks)
                for (const double qps : rates) {
                  ExperimentSpec point = base;
                  point.deployment.sku_name = sku;
                  point.deployment.parallel.tensor_parallel = tp;
                  point.deployment.parallel.pipeline_parallel = pp;
                  point.deployment.parallel.num_replicas = n;
                  point.deployment.scheduler.kind =
                      scheduler_from_name(sched);
                  point.deployment.scheduler.max_batch_size = bs;
                  point.deployment.scheduler.chunk_size = chunk;
                  point.workload.arrival.qps = qps;
                  // Suffix the name with the swept coordinates only.
                  std::ostringstream suffix;
                  const auto tag = [&suffix](bool swept, const char* key,
                                             const auto& value) {
                    if (!swept) return;
                    if (suffix.tellp() > 0) suffix << ",";
                    suffix << key << "=" << value;
                  };
                  tag(!sweep.sku.empty(), "sku", sku);
                  tag(!sweep.tensor_parallel.empty(), "tp", tp);
                  tag(!sweep.pipeline_parallel.empty(), "pp", pp);
                  tag(!sweep.num_replicas.empty(), "replicas", n);
                  tag(!sweep.scheduler.empty(), "sched", sched);
                  tag(!sweep.max_batch_size.empty(), "bs", bs);
                  tag(!sweep.chunk_size.empty(), "chunk", chunk);
                  tag(!sweep.qps.empty(), "qps", qps);
                  point.name = name + "[" + suffix.str() + "]";
                  out.push_back(std::move(point));
                }
  return out;
}

// ------------------------------------------------------------- to_json

namespace {

/// Emits `key` only when the value differs from the default — spec files
/// stay minimal and diffable while the round trip stays lossless (parsing
/// starts from the same defaults).
template <typename T>
void set_unless_default(JsonValue& obj, const char* key, const T& value,
                        const T& dflt, JsonValue encoded) {
  if (!(value == dflt)) obj.set(key, std::move(encoded));
}

template <typename T>
JsonValue number_array(const std::vector<T>& values) {
  JsonValue arr = JsonValue::array();
  for (const T& v : values) arr.push(JsonValue(v));
  return arr;
}

JsonValue string_array(const std::vector<std::string>& values) {
  JsonValue arr = JsonValue::array();
  for (const std::string& v : values) arr.push(v);
  return arr;
}

JsonValue profile_json(const RateProfile& p) {
  JsonValue j = JsonValue::object();
  j.set("kind", rate_profile_kind_name(p.kind()));
  switch (p.kind()) {
    case RateProfileKind::kConstant:
      break;
    case RateProfileKind::kDiurnal:
      j.set("period_s", p.raw_t0());
      j.set("low", p.raw_a());
      j.set("high", p.raw_b());
      break;
    case RateProfileKind::kRamp:
      j.set("start", p.raw_a());
      j.set("end", p.raw_b());
      j.set("duration_s", p.raw_t0());
      break;
    case RateProfileKind::kSpike:
      j.set("baseline", p.raw_a());
      j.set("spike", p.raw_b());
      j.set("start_s", p.raw_t0());
      j.set("duration_s", p.raw_t1());
      break;
    case RateProfileKind::kPiecewise: {
      JsonValue steps = JsonValue::array();
      for (const RateStep& s : p.steps()) {
        JsonValue step = JsonValue::array();
        step.push(s.start_time);
        step.push(s.factor);
        steps.push(std::move(step));
      }
      j.set("steps", std::move(steps));
      break;
    }
  }
  return j;
}

JsonValue arrival_json(const ArrivalSpec& a) {
  JsonValue j = JsonValue::object();
  j.set("kind", arrival_kind_name(a.kind));
  j.set("qps", a.qps);
  j.set("cv", a.cv);
  return j;
}

JsonValue slo_json(const SloSpec& s) {
  JsonValue j = JsonValue::object();
  j.set("ttft_target_s", s.ttft_target);
  j.set("tbt_target_s", s.tbt_target);
  return j;
}

JsonValue scheduler_json(const SchedulerConfig& s) {
  const SchedulerConfig d;
  JsonValue j = JsonValue::object();
  j.set("kind", scheduler_name(s.kind));
  set_unless_default(j, "max_batch_size", s.max_batch_size, d.max_batch_size,
                     s.max_batch_size);
  set_unless_default(j, "max_tokens_per_iteration",
                     s.max_tokens_per_iteration, d.max_tokens_per_iteration,
                     s.max_tokens_per_iteration);
  set_unless_default(j, "chunk_size", s.chunk_size, d.chunk_size,
                     s.chunk_size);
  set_unless_default(j, "watermark_fraction", s.watermark_fraction,
                     d.watermark_fraction, s.watermark_fraction);
  return j;
}

JsonValue disagg_json(const DisaggConfig& c) {
  const DisaggConfig d;
  JsonValue j = JsonValue::object();
  j.set("num_prefill_replicas", c.num_prefill_replicas);
  set_unless_default(j, "transfer_bandwidth_gbps", c.transfer_bandwidth_gbps,
                     d.transfer_bandwidth_gbps, c.transfer_bandwidth_gbps);
  set_unless_default(j, "transfer_latency_s", c.transfer_latency,
                     d.transfer_latency, c.transfer_latency);
  return j;
}

JsonValue autoscale_json(const AutoscalerConfig& c) {
  const AutoscalerConfig d;
  JsonValue j = JsonValue::object();
  j.set("kind", autoscaler_name(c.kind));
  set_unless_default(j, "signal", c.signal, d.signal,
                     scale_signal_name(c.signal));
  set_unless_default(j, "target_kv_utilization", c.target_kv_utilization,
                     d.target_kv_utilization, c.target_kv_utilization);
  set_unless_default(j, "scale_up_kv_utilization", c.scale_up_kv_utilization,
                     d.scale_up_kv_utilization, c.scale_up_kv_utilization);
  set_unless_default(j, "scale_down_kv_utilization",
                     c.scale_down_kv_utilization,
                     d.scale_down_kv_utilization,
                     c.scale_down_kv_utilization);
  set_unless_default(j, "min_replicas", c.min_replicas, d.min_replicas,
                     c.min_replicas);
  set_unless_default(j, "initial_replicas", c.initial_replicas,
                     d.initial_replicas, c.initial_replicas);
  set_unless_default(j, "provision_delay_s", c.provision_delay,
                     d.provision_delay, c.provision_delay);
  set_unless_default(j, "warmup_delay_s", c.warmup_delay, d.warmup_delay,
                     c.warmup_delay);
  set_unless_default(j, "decision_interval_s", c.decision_interval,
                     d.decision_interval, c.decision_interval);
  set_unless_default(j, "scale_up_cooldown_s", c.scale_up_cooldown,
                     d.scale_up_cooldown, c.scale_up_cooldown);
  set_unless_default(j, "scale_down_cooldown_s", c.scale_down_cooldown,
                     d.scale_down_cooldown, c.scale_down_cooldown);
  set_unless_default(j, "max_scale_step", c.max_scale_step, d.max_scale_step,
                     c.max_scale_step);
  set_unless_default(j, "target_load_per_replica", c.target_load_per_replica,
                     d.target_load_per_replica, c.target_load_per_replica);
  set_unless_default(j, "scale_up_load", c.scale_up_load, d.scale_up_load,
                     c.scale_up_load);
  set_unless_default(j, "scale_down_load", c.scale_down_load,
                     d.scale_down_load, c.scale_down_load);
  set_unless_default(j, "profile", c.profile, d.profile,
                     profile_json(c.profile));
  set_unless_default(j, "baseline_qps", c.baseline_qps, d.baseline_qps,
                     c.baseline_qps);
  set_unless_default(j, "replica_capacity_qps", c.replica_capacity_qps,
                     d.replica_capacity_qps, c.replica_capacity_qps);
  set_unless_default(j, "headroom", c.headroom, d.headroom, c.headroom);
  set_unless_default(j, "lookahead_s", c.lookahead, d.lookahead, c.lookahead);
  return j;
}

JsonValue prefix_cache_json(const PrefixCacheConfig& c) {
  const PrefixCacheConfig d;
  JsonValue j = JsonValue::object();
  j.set("enabled", c.enabled);
  set_unless_default(j, "capacity_fraction", c.capacity_fraction,
                     d.capacity_fraction, c.capacity_fraction);
  return j;
}

JsonValue fault_profile_json(const FaultProfile& p) {
  const FaultProfile d;
  JsonValue j = JsonValue::object();
  set_unless_default(j, "pool", p.pool, d.pool, p.pool);
  set_unless_default(j, "crash_mtbf_s", p.crash_mtbf_s, d.crash_mtbf_s,
                     p.crash_mtbf_s);
  if (!p.spot_windows.empty()) {
    JsonValue windows = JsonValue::array();
    for (const SpotWindow& w : p.spot_windows) {
      const SpotWindow wd;
      JsonValue wj = JsonValue::object();
      wj.set("start_s", w.start);
      wj.set("duration_s", w.duration);
      set_unless_default(wj, "replicas", w.replicas, wd.replicas, w.replicas);
      set_unless_default(wj, "notice_s", w.notice, wd.notice, w.notice);
      windows.push(std::move(wj));
    }
    j.set("spot_windows", std::move(windows));
  }
  set_unless_default(j, "degrade_mtbf_s", p.degrade_mtbf_s, d.degrade_mtbf_s,
                     p.degrade_mtbf_s);
  set_unless_default(j, "degrade_factor", p.degrade_factor, d.degrade_factor,
                     p.degrade_factor);
  set_unless_default(j, "degrade_duration_s", p.degrade_duration_s,
                     d.degrade_duration_s, p.degrade_duration_s);
  return j;
}

JsonValue faults_json(const FaultConfig& c) {
  const FaultConfig d;
  JsonValue j = JsonValue::object();
  set_unless_default(j, "seed", c.seed, d.seed,
                     static_cast<std::int64_t>(c.seed));
  JsonValue profiles = JsonValue::array();
  for (const FaultProfile& p : c.profiles)
    profiles.push(fault_profile_json(p));
  j.set("profiles", std::move(profiles));
  if (!(c.recovery == d.recovery)) {
    const RecoveryPolicy rd;
    JsonValue rj = JsonValue::object();
    set_unless_default(rj, "max_attempts", c.recovery.max_attempts,
                       rd.max_attempts, c.recovery.max_attempts);
    set_unless_default(rj, "backoff_base_s", c.recovery.backoff_base_s,
                       rd.backoff_base_s, c.recovery.backoff_base_s);
    set_unless_default(rj, "backoff_multiplier",
                       c.recovery.backoff_multiplier, rd.backoff_multiplier,
                       c.recovery.backoff_multiplier);
    set_unless_default(rj, "jitter", c.recovery.jitter, rd.jitter,
                       c.recovery.jitter);
    j.set("recovery", std::move(rj));
  }
  if (!(c.shed == d.shed)) {
    const ShedPolicy sd;
    JsonValue sj = JsonValue::object();
    sj.set("min_active_replicas", c.shed.min_active_replicas);
    set_unless_default(sj, "max_shed_priority", c.shed.max_shed_priority,
                       sd.max_shed_priority, c.shed.max_shed_priority);
    j.set("shed", std::move(sj));
  }
  return j;
}

JsonValue pool_json(const PoolSpec& p) {
  const PoolSpec d;
  JsonValue j = JsonValue::object();
  j.set("name", p.name);
  j.set("sku", p.sku_name);
  set_unless_default(j, "role", p.role, d.role, pool_role_name(p.role));
  set_unless_default(j, "tensor_parallel", p.parallel.tensor_parallel,
                     d.parallel.tensor_parallel, p.parallel.tensor_parallel);
  set_unless_default(j, "pipeline_parallel", p.parallel.pipeline_parallel,
                     d.parallel.pipeline_parallel,
                     p.parallel.pipeline_parallel);
  j.set("num_replicas", p.parallel.num_replicas);
  set_unless_default(j, "cost_per_gpu_hour", p.cost_per_gpu_hour,
                     d.cost_per_gpu_hour, p.cost_per_gpu_hour);
  set_unless_default(j, "capacity_qps", p.capacity_qps, d.capacity_qps,
                     p.capacity_qps);
  set_unless_default(j, "autoscale", p.autoscale, d.autoscale,
                     autoscale_json(p.autoscale));
  return j;
}

JsonValue deployment_json(const DeploymentConfig& c) {
  const DeploymentConfig d;
  JsonValue j = JsonValue::object();
  if (!c.pools.empty()) {
    // The pool list supersedes the homogeneous SKU/parallelism fields;
    // emitting both would invite divergence in hand-edited specs.
    JsonValue pools = JsonValue::array();
    for (const PoolSpec& p : c.pools) pools.push(pool_json(p));
    j.set("pools", std::move(pools));
    set_unless_default(j, "scheduler", c.scheduler, d.scheduler,
                       scheduler_json(c.scheduler));
    set_unless_default(j, "global_scheduler", c.global_scheduler,
                       d.global_scheduler,
                       global_scheduler_name(c.global_scheduler));
    set_unless_default(j, "async_pipeline_comm", c.async_pipeline_comm,
                       d.async_pipeline_comm, c.async_pipeline_comm);
    set_unless_default(j, "disagg", c.disagg, d.disagg,
                       disagg_json(c.disagg));
    set_unless_default(j, "prefix_cache", c.prefix_cache, d.prefix_cache,
                       prefix_cache_json(c.prefix_cache));
    set_unless_default(j, "faults", c.faults, d.faults,
                       faults_json(c.faults));
    if (c.threads != d.threads) {
      JsonValue e = JsonValue::object();
      e.set("threads", c.threads);
      j.set("execution", std::move(e));
    }
    return j;
  }
  j.set("sku", c.sku_name);
  j.set("tensor_parallel", c.parallel.tensor_parallel);
  j.set("pipeline_parallel", c.parallel.pipeline_parallel);
  j.set("num_replicas", c.parallel.num_replicas);
  set_unless_default(j, "scheduler", c.scheduler, d.scheduler,
                     scheduler_json(c.scheduler));
  set_unless_default(j, "global_scheduler", c.global_scheduler,
                     d.global_scheduler,
                     global_scheduler_name(c.global_scheduler));
  set_unless_default(j, "async_pipeline_comm", c.async_pipeline_comm,
                     d.async_pipeline_comm, c.async_pipeline_comm);
  set_unless_default(j, "disagg", c.disagg, d.disagg, disagg_json(c.disagg));
  set_unless_default(j, "autoscale", c.autoscale, d.autoscale,
                     autoscale_json(c.autoscale));
  set_unless_default(j, "prefix_cache", c.prefix_cache, d.prefix_cache,
                     prefix_cache_json(c.prefix_cache));
  set_unless_default(j, "faults", c.faults, d.faults, faults_json(c.faults));
  // Default-omitted like every other knob, so committed specs stay exact
  // serializer fixed points.
  if (c.threads != d.threads) {
    JsonValue e = JsonValue::object();
    e.set("threads", c.threads);
    j.set("execution", std::move(e));
  }
  return j;
}

JsonValue workload_json(const WorkloadSpec& w) {
  JsonValue j = JsonValue::object();
  if (!w.synthetic()) {
    j.set("scenario", w.scenario);
    if (w.num_requests != 0) j.set("num_requests", w.num_requests);
    return j;
  }
  j.set("trace", w.trace);
  j.set("arrival", arrival_json(w.arrival));
  j.set("num_requests", w.num_requests);
  return j;
}

JsonValue search_json(const SearchSpace& s) {
  const SearchSpace d;
  JsonValue j = JsonValue::object();
  set_unless_default(j, "skus", s.skus, d.skus, string_array(s.skus));
  set_unless_default(j, "tp_degrees", s.tp_degrees, d.tp_degrees,
                     number_array(s.tp_degrees));
  set_unless_default(j, "pp_degrees", s.pp_degrees, d.pp_degrees,
                     number_array(s.pp_degrees));
  set_unless_default(j, "max_total_gpus", s.max_total_gpus, d.max_total_gpus,
                     s.max_total_gpus);
  if (s.schedulers != d.schedulers) {
    JsonValue arr = JsonValue::array();
    for (const SchedulerKind k : s.schedulers) arr.push(scheduler_name(k));
    j.set("schedulers", std::move(arr));
  }
  set_unless_default(j, "batch_sizes", s.batch_sizes, d.batch_sizes,
                     number_array(s.batch_sizes));
  set_unless_default(j, "sarathi_chunk_sizes", s.sarathi_chunk_sizes,
                     d.sarathi_chunk_sizes,
                     number_array(s.sarathi_chunk_sizes));
  set_unless_default(j, "max_tokens_per_iteration",
                     s.max_tokens_per_iteration, d.max_tokens_per_iteration,
                     s.max_tokens_per_iteration);
  set_unless_default(j, "global_scheduler", s.global_scheduler,
                     d.global_scheduler,
                     global_scheduler_name(s.global_scheduler));
  return j;
}

JsonValue elastic_json(const ElasticPlanSpec& e) {
  JsonValue j = JsonValue::object();
  j.set("slo_target", e.slo_target);
  j.set("max_replicas", e.max_replicas);
  j.set("burst_slots", e.burst_slots);
  return j;
}

JsonValue obs_json(const ObsSpec& o) {
  const ObsSpec d;
  JsonValue j = JsonValue::object();
  set_unless_default(j, "trace", o.trace, d.trace, o.trace);
  set_unless_default(j, "trace_capacity", o.trace_capacity, d.trace_capacity,
                     o.trace_capacity);
  set_unless_default(j, "rolling_window_s", o.rolling_window_s,
                     d.rolling_window_s, o.rolling_window_s);
  set_unless_default(j, "analyze", o.analyze, d.analyze, o.analyze);
  return j;
}

JsonValue sweep_json(const SweepAxes& s) {
  const SweepAxes d;
  JsonValue j = JsonValue::object();
  set_unless_default(j, "sku", s.sku, d.sku, string_array(s.sku));
  set_unless_default(j, "tensor_parallel", s.tensor_parallel,
                     d.tensor_parallel, number_array(s.tensor_parallel));
  set_unless_default(j, "pipeline_parallel", s.pipeline_parallel,
                     d.pipeline_parallel, number_array(s.pipeline_parallel));
  set_unless_default(j, "num_replicas", s.num_replicas, d.num_replicas,
                     number_array(s.num_replicas));
  set_unless_default(j, "scheduler", s.scheduler, d.scheduler,
                     string_array(s.scheduler));
  set_unless_default(j, "max_batch_size", s.max_batch_size, d.max_batch_size,
                     number_array(s.max_batch_size));
  set_unless_default(j, "chunk_size", s.chunk_size, d.chunk_size,
                     number_array(s.chunk_size));
  set_unless_default(j, "qps", s.qps, d.qps, number_array(s.qps));
  return j;
}

}  // namespace

JsonValue ExperimentSpec::to_json() const {
  const ExperimentSpec d;
  JsonValue j = JsonValue::object();
  j.set("name", name);
  j.set("mode", experiment_mode_name(mode));
  j.set("model", model);
  j.set("deployment", deployment_json(deployment));
  j.set("workload", workload_json(workload));
  set_unless_default(j, "slo", slo, d.slo, slo_json(slo));
  set_unless_default(j, "seed", seed, d.seed,
                     static_cast<std::int64_t>(seed));
  set_unless_default(j, "tp_degrees", tp_degrees, d.tp_degrees,
                     number_array(tp_degrees));
  set_unless_default(j, "num_threads", num_threads, d.num_threads,
                     num_threads);
  set_unless_default(j, "search", search, d.search, search_json(search));
  set_unless_default(j, "elastic", elastic, d.elastic, elastic_json(elastic));
  set_unless_default(j, "obs", obs, d.obs, obs_json(obs));
  set_unless_default(j, "sweep", sweep, d.sweep, sweep_json(sweep));
  return j;
}

std::string ExperimentSpec::to_json_string() const { return to_json().dump(); }

// ------------------------------------------------------------ from_json

namespace {

/// Strict object reader: every member must match a known field; unknown
/// keys fail with a did-you-mean so a typo in a spec file is caught at
/// parse time instead of silently keeping the default.
class FieldReader {
 public:
  FieldReader(const JsonValue& obj, std::string context)
      : obj_(obj), context_(std::move(context)) {
    VIDUR_CHECK_MSG(obj.is_object(),
                    "spec section '" << context_ << "' must be a JSON object");
  }

  /// Register a handler for `key`; runs it when the member is present.
  template <typename Fn>
  FieldReader& field(const char* key, Fn&& fn) {
    known_.push_back(key);
    if (const JsonValue* v = obj_.find(key)) fn(*v);
    return *this;
  }

  /// Call after the last field(): rejects unconsumed keys.
  void finish() const {
    for (const auto& [key, value] : obj_.members()) {
      if (std::find(known_.begin(), known_.end(), key) == known_.end())
        fail_unknown_name("'" + context_ + "' field", key, known_);
    }
  }

 private:
  const JsonValue& obj_;
  std::string context_;
  std::vector<std::string> known_;
};

int to_int(const JsonValue& v, const char* what) {
  VIDUR_CHECK_MSG(v.is_int(), "spec field '" << what
                                             << "' must be an integer");
  const std::int64_t raw = v.as_int();
  VIDUR_CHECK_MSG(raw >= std::numeric_limits<int>::min() &&
                      raw <= std::numeric_limits<int>::max(),
                  "spec field '" << what << "' value " << raw
                                 << " is out of the 32-bit integer range");
  return static_cast<int>(raw);
}

double to_double(const JsonValue& v, const char* what) {
  VIDUR_CHECK_MSG(v.is_number(), "spec field '" << what
                                                << "' must be a number");
  return v.as_double();
}

bool to_bool(const JsonValue& v, const char* what) {
  VIDUR_CHECK_MSG(v.is_bool(), "spec field '" << what
                                              << "' must be a boolean");
  return v.as_bool();
}

std::string to_str(const JsonValue& v, const char* what) {
  VIDUR_CHECK_MSG(v.is_string(), "spec field '" << what
                                                << "' must be a string");
  return v.as_string();
}

std::vector<int> to_int_vec(const JsonValue& v, const char* what) {
  std::vector<int> out;
  for (const JsonValue& item : v.items()) out.push_back(to_int(item, what));
  return out;
}

std::vector<double> to_double_vec(const JsonValue& v, const char* what) {
  std::vector<double> out;
  for (const JsonValue& item : v.items())
    out.push_back(to_double(item, what));
  return out;
}

std::vector<std::string> to_str_vec(const JsonValue& v, const char* what) {
  std::vector<std::string> out;
  for (const JsonValue& item : v.items()) out.push_back(to_str(item, what));
  return out;
}

std::vector<TokenCount> to_token_vec(const JsonValue& v, const char* what) {
  std::vector<TokenCount> out;
  for (const JsonValue& item : v.items())
    out.push_back(to_int(item, what));
  return out;
}

RateProfile profile_from_json(const JsonValue& j) {
  VIDUR_CHECK_MSG(j.is_object(),
                  "spec section 'profile' must be a JSON object");
  // Two passes: the kind decides which parameter names are legal.
  std::string kind_name = "constant";
  if (const JsonValue* k = j.find("kind")) kind_name = to_str(*k, "kind");
  const RateProfileKind kind = rate_profile_kind_from_name(kind_name);
  switch (kind) {
    case RateProfileKind::kConstant: {
      FieldReader r(j, "profile");
      r.field("kind", [](const JsonValue&) {});
      r.finish();
      return RateProfile::constant();
    }
    case RateProfileKind::kDiurnal: {
      double period = 0, low = 0, high = 0;
      FieldReader r(j, "profile");
      r.field("kind", [](const JsonValue&) {})
          .field("period_s", [&](const JsonValue& v) {
            period = to_double(v, "period_s");
          })
          .field("low", [&](const JsonValue& v) { low = to_double(v, "low"); })
          .field("high",
                 [&](const JsonValue& v) { high = to_double(v, "high"); });
      r.finish();
      return RateProfile::diurnal(period, low, high);
    }
    case RateProfileKind::kRamp: {
      double start = 0, end = 0, duration = 0;
      FieldReader r(j, "profile");
      r.field("kind", [](const JsonValue&) {})
          .field("start",
                 [&](const JsonValue& v) { start = to_double(v, "start"); })
          .field("end", [&](const JsonValue& v) { end = to_double(v, "end"); })
          .field("duration_s", [&](const JsonValue& v) {
            duration = to_double(v, "duration_s");
          });
      r.finish();
      return RateProfile::ramp(start, end, duration);
    }
    case RateProfileKind::kSpike: {
      double baseline = 0, spike = 0, start = 0, duration = 0;
      FieldReader r(j, "profile");
      r.field("kind", [](const JsonValue&) {})
          .field("baseline",
                 [&](const JsonValue& v) {
                   baseline = to_double(v, "baseline");
                 })
          .field("spike",
                 [&](const JsonValue& v) { spike = to_double(v, "spike"); })
          .field("start_s",
                 [&](const JsonValue& v) { start = to_double(v, "start_s"); })
          .field("duration_s", [&](const JsonValue& v) {
            duration = to_double(v, "duration_s");
          });
      r.finish();
      return RateProfile::spike(baseline, spike, start, duration);
    }
    case RateProfileKind::kPiecewise: {
      std::vector<RateStep> steps;
      FieldReader r(j, "profile");
      r.field("kind", [](const JsonValue&) {})
          .field("steps", [&](const JsonValue& v) {
            for (const JsonValue& item : v.items()) {
              VIDUR_CHECK_MSG(item.is_array() && item.size() == 2,
                              "profile step must be a [start_s, factor] pair");
              steps.push_back(RateStep{to_double(item.items()[0], "step start"),
                                       to_double(item.items()[1],
                                                 "step factor")});
            }
          });
      r.finish();
      return RateProfile::piecewise(std::move(steps));
    }
  }
  throw Error("unhandled RateProfileKind");
}

ArrivalSpec arrival_from_json(const JsonValue& j) {
  ArrivalSpec a;
  FieldReader r(j, "workload.arrival");
  r.field("kind",
          [&](const JsonValue& v) {
            a.kind = arrival_kind_from_name(to_str(v, "kind"));
          })
      .field("qps", [&](const JsonValue& v) { a.qps = to_double(v, "qps"); })
      .field("cv", [&](const JsonValue& v) { a.cv = to_double(v, "cv"); });
  r.finish();
  return a;
}

SloSpec slo_from_json(const JsonValue& j) {
  SloSpec s;
  s.ttft_target = 0.0;
  s.tbt_target = 0.0;
  FieldReader r(j, "slo");
  r.field("ttft_target_s",
          [&](const JsonValue& v) {
            s.ttft_target = to_double(v, "ttft_target_s");
          })
      .field("tbt_target_s", [&](const JsonValue& v) {
        s.tbt_target = to_double(v, "tbt_target_s");
      });
  r.finish();
  return s;
}

SchedulerConfig scheduler_from_json(const JsonValue& j) {
  SchedulerConfig s;
  FieldReader r(j, "deployment.scheduler");
  r.field("kind",
          [&](const JsonValue& v) {
            s.kind = scheduler_from_name(to_str(v, "kind"));
          })
      .field("max_batch_size",
             [&](const JsonValue& v) {
               s.max_batch_size = to_int(v, "max_batch_size");
             })
      .field("max_tokens_per_iteration",
             [&](const JsonValue& v) {
               s.max_tokens_per_iteration =
                   to_int(v, "max_tokens_per_iteration");
             })
      .field("chunk_size",
             [&](const JsonValue& v) { s.chunk_size = to_int(v, "chunk_size"); })
      .field("watermark_fraction", [&](const JsonValue& v) {
        s.watermark_fraction = to_double(v, "watermark_fraction");
      });
  r.finish();
  return s;
}

DisaggConfig disagg_from_json(const JsonValue& j) {
  DisaggConfig c;
  FieldReader r(j, "deployment.disagg");
  r.field("num_prefill_replicas",
          [&](const JsonValue& v) {
            c.num_prefill_replicas = to_int(v, "num_prefill_replicas");
          })
      .field("transfer_bandwidth_gbps",
             [&](const JsonValue& v) {
               c.transfer_bandwidth_gbps =
                   to_double(v, "transfer_bandwidth_gbps");
             })
      .field("transfer_latency_s", [&](const JsonValue& v) {
        c.transfer_latency = to_double(v, "transfer_latency_s");
      });
  r.finish();
  return c;
}

AutoscalerConfig autoscale_from_json(const JsonValue& j,
                                     const std::string& context) {
  AutoscalerConfig c;
  FieldReader r(j, context);
  r.field("kind",
          [&](const JsonValue& v) {
            c.kind = autoscaler_from_name(to_str(v, "kind"));
          })
      .field("signal",
             [&](const JsonValue& v) {
               c.signal = scale_signal_from_name(to_str(v, "signal"));
             })
      .field("target_kv_utilization",
             [&](const JsonValue& v) {
               c.target_kv_utilization =
                   to_double(v, "target_kv_utilization");
             })
      .field("scale_up_kv_utilization",
             [&](const JsonValue& v) {
               c.scale_up_kv_utilization =
                   to_double(v, "scale_up_kv_utilization");
             })
      .field("scale_down_kv_utilization",
             [&](const JsonValue& v) {
               c.scale_down_kv_utilization =
                   to_double(v, "scale_down_kv_utilization");
             })
      .field("min_replicas",
             [&](const JsonValue& v) {
               c.min_replicas = to_int(v, "min_replicas");
             })
      .field("initial_replicas",
             [&](const JsonValue& v) {
               c.initial_replicas = to_int(v, "initial_replicas");
             })
      .field("provision_delay_s",
             [&](const JsonValue& v) {
               c.provision_delay = to_double(v, "provision_delay_s");
             })
      .field("warmup_delay_s",
             [&](const JsonValue& v) {
               c.warmup_delay = to_double(v, "warmup_delay_s");
             })
      .field("decision_interval_s",
             [&](const JsonValue& v) {
               c.decision_interval = to_double(v, "decision_interval_s");
             })
      .field("scale_up_cooldown_s",
             [&](const JsonValue& v) {
               c.scale_up_cooldown = to_double(v, "scale_up_cooldown_s");
             })
      .field("scale_down_cooldown_s",
             [&](const JsonValue& v) {
               c.scale_down_cooldown = to_double(v, "scale_down_cooldown_s");
             })
      .field("max_scale_step",
             [&](const JsonValue& v) {
               c.max_scale_step = to_int(v, "max_scale_step");
             })
      .field("target_load_per_replica",
             [&](const JsonValue& v) {
               c.target_load_per_replica =
                   to_double(v, "target_load_per_replica");
             })
      .field("scale_up_load",
             [&](const JsonValue& v) {
               c.scale_up_load = to_double(v, "scale_up_load");
             })
      .field("scale_down_load",
             [&](const JsonValue& v) {
               c.scale_down_load = to_double(v, "scale_down_load");
             })
      .field("profile",
             [&](const JsonValue& v) { c.profile = profile_from_json(v); })
      .field("baseline_qps",
             [&](const JsonValue& v) {
               c.baseline_qps = to_double(v, "baseline_qps");
             })
      .field("replica_capacity_qps",
             [&](const JsonValue& v) {
               c.replica_capacity_qps = to_double(v, "replica_capacity_qps");
             })
      .field("headroom",
             [&](const JsonValue& v) { c.headroom = to_double(v, "headroom"); })
      .field("lookahead_s", [&](const JsonValue& v) {
        c.lookahead = to_double(v, "lookahead_s");
      });
  r.finish();
  return c;
}

PrefixCacheConfig prefix_cache_from_json(const JsonValue& j) {
  PrefixCacheConfig c;
  FieldReader r(j, "deployment.prefix_cache");
  r.field("enabled",
          [&](const JsonValue& v) { c.enabled = to_bool(v, "enabled"); })
      .field("capacity_fraction", [&](const JsonValue& v) {
        c.capacity_fraction = to_double(v, "capacity_fraction");
      });
  r.finish();
  return c;
}

FaultProfile fault_profile_from_json(const JsonValue& j) {
  FaultProfile p;
  std::string context = "deployment.faults.profiles[]";
  if (const JsonValue* n = j.find("pool"); n != nullptr && n->is_string())
    context = "deployment.faults.profiles['" + n->as_string() + "']";
  FieldReader r(j, context);
  r.field("pool", [&](const JsonValue& v) { p.pool = to_str(v, "pool"); })
      .field("crash_mtbf_s",
             [&](const JsonValue& v) {
               p.crash_mtbf_s = to_double(v, "crash_mtbf_s");
             })
      .field("spot_windows",
             [&](const JsonValue& v) {
               VIDUR_CHECK_MSG(v.is_array(),
                               "spec field 'spot_windows' must be an array "
                               "of window objects");
               for (const JsonValue& item : v.items()) {
                 SpotWindow w;
                 FieldReader wr(item, context + ".spot_windows[]");
                 wr.field("start_s",
                          [&](const JsonValue& x) {
                            w.start = to_double(x, "start_s");
                          })
                     .field("duration_s",
                            [&](const JsonValue& x) {
                              w.duration = to_double(x, "duration_s");
                            })
                     .field("replicas",
                            [&](const JsonValue& x) {
                              w.replicas = to_int(x, "replicas");
                            })
                     .field("notice_s", [&](const JsonValue& x) {
                       w.notice = to_double(x, "notice_s");
                     });
                 wr.finish();
                 p.spot_windows.push_back(w);
               }
             })
      .field("degrade_mtbf_s",
             [&](const JsonValue& v) {
               p.degrade_mtbf_s = to_double(v, "degrade_mtbf_s");
             })
      .field("degrade_factor",
             [&](const JsonValue& v) {
               p.degrade_factor = to_double(v, "degrade_factor");
             })
      .field("degrade_duration_s", [&](const JsonValue& v) {
        p.degrade_duration_s = to_double(v, "degrade_duration_s");
      });
  r.finish();
  return p;
}

FaultConfig faults_from_json(const JsonValue& j) {
  FaultConfig c;
  FieldReader r(j, "deployment.faults");
  r.field("seed",
          [&](const JsonValue& v) {
            c.seed = static_cast<std::uint64_t>(v.as_int());
          })
      .field("profiles",
             [&](const JsonValue& v) {
               VIDUR_CHECK_MSG(v.is_array(),
                               "spec field 'deployment.faults.profiles' must "
                               "be an array of profile objects");
               for (const JsonValue& item : v.items())
                 c.profiles.push_back(fault_profile_from_json(item));
             })
      .field("recovery",
             [&](const JsonValue& v) {
               FieldReader rr(v, "deployment.faults.recovery");
               rr.field("max_attempts",
                        [&](const JsonValue& x) {
                          c.recovery.max_attempts = to_int(x, "max_attempts");
                        })
                   .field("backoff_base_s",
                          [&](const JsonValue& x) {
                            c.recovery.backoff_base_s =
                                to_double(x, "backoff_base_s");
                          })
                   .field("backoff_multiplier",
                          [&](const JsonValue& x) {
                            c.recovery.backoff_multiplier =
                                to_double(x, "backoff_multiplier");
                          })
                   .field("jitter", [&](const JsonValue& x) {
                     c.recovery.jitter = to_double(x, "jitter");
                   });
               rr.finish();
             })
      .field("shed", [&](const JsonValue& v) {
        FieldReader sr(v, "deployment.faults.shed");
        sr.field("min_active_replicas",
                 [&](const JsonValue& x) {
                   c.shed.min_active_replicas =
                       to_int(x, "min_active_replicas");
                 })
            .field("max_shed_priority", [&](const JsonValue& x) {
              c.shed.max_shed_priority = to_int(x, "max_shed_priority");
            });
        sr.finish();
      });
  r.finish();
  return c;
}

PoolSpec pool_from_json(const JsonValue& j) {
  PoolSpec p;
  // Read the name first so field errors can cite the pool.
  std::string context = "deployment.pools[]";
  if (const JsonValue* n = j.find("name"); n != nullptr && n->is_string())
    context = "deployment.pools['" + n->as_string() + "']";
  FieldReader r(j, context);
  r.field("name", [&](const JsonValue& v) { p.name = to_str(v, "name"); })
      .field("sku",
             [&](const JsonValue& v) { p.sku_name = to_str(v, "sku"); })
      .field("role",
             [&](const JsonValue& v) {
               const std::string role = to_str(v, "role");
               // check_name carries the did-you-mean for typo'd roles.
               check_name("pool role", role, pool_role_names());
               p.role = pool_role_from_name(role);
             })
      .field("tensor_parallel",
             [&](const JsonValue& v) {
               p.parallel.tensor_parallel = to_int(v, "tensor_parallel");
             })
      .field("pipeline_parallel",
             [&](const JsonValue& v) {
               p.parallel.pipeline_parallel = to_int(v, "pipeline_parallel");
             })
      .field("num_replicas",
             [&](const JsonValue& v) {
               p.parallel.num_replicas = to_int(v, "num_replicas");
             })
      .field("cost_per_gpu_hour",
             [&](const JsonValue& v) {
               p.cost_per_gpu_hour = to_double(v, "cost_per_gpu_hour");
             })
      .field("capacity_qps",
             [&](const JsonValue& v) {
               p.capacity_qps = to_double(v, "capacity_qps");
             })
      .field("autoscale", [&](const JsonValue& v) {
        p.autoscale = autoscale_from_json(v, context + ".autoscale");
      });
  r.finish();
  return p;
}

DeploymentConfig deployment_from_json(const JsonValue& j) {
  DeploymentConfig c;
  FieldReader r(j, "deployment");
  r.field("sku", [&](const JsonValue& v) { c.sku_name = to_str(v, "sku"); })
      .field("tensor_parallel",
             [&](const JsonValue& v) {
               c.parallel.tensor_parallel = to_int(v, "tensor_parallel");
             })
      .field("pipeline_parallel",
             [&](const JsonValue& v) {
               c.parallel.pipeline_parallel = to_int(v, "pipeline_parallel");
             })
      .field("num_replicas",
             [&](const JsonValue& v) {
               c.parallel.num_replicas = to_int(v, "num_replicas");
             })
      .field("scheduler",
             [&](const JsonValue& v) { c.scheduler = scheduler_from_json(v); })
      .field("global_scheduler",
             [&](const JsonValue& v) {
               c.global_scheduler =
                   global_scheduler_from_name(to_str(v, "global_scheduler"));
             })
      .field("async_pipeline_comm",
             [&](const JsonValue& v) {
               c.async_pipeline_comm = to_bool(v, "async_pipeline_comm");
             })
      .field("disagg",
             [&](const JsonValue& v) { c.disagg = disagg_from_json(v); })
      .field("autoscale",
             [&](const JsonValue& v) {
               c.autoscale = autoscale_from_json(v, "deployment.autoscale");
             })
      .field("pools",
             [&](const JsonValue& v) {
               VIDUR_CHECK_MSG(v.is_array(),
                               "spec field 'deployment.pools' must be an "
                               "array of pool objects");
               for (const JsonValue& item : v.items())
                 c.pools.push_back(pool_from_json(item));
             })
      .field("prefix_cache",
             [&](const JsonValue& v) {
               c.prefix_cache = prefix_cache_from_json(v);
             })
      .field("faults",
             [&](const JsonValue& v) { c.faults = faults_from_json(v); })
      .field("execution", [&](const JsonValue& v) {
        FieldReader e(v, "deployment.execution");
        e.field("threads",
                [&](const JsonValue& t) { c.threads = to_int(t, "threads"); });
        e.finish();
      });
  r.finish();
  return c;
}

WorkloadSpec workload_from_json(const JsonValue& j) {
  WorkloadSpec w;
  bool named = false;
  FieldReader r(j, "workload");
  r.field("scenario",
          [&](const JsonValue& v) {
            w.scenario = to_str(v, "scenario");
            named = true;
          })
      .field("trace",
             [&](const JsonValue& v) { w.trace = to_str(v, "trace"); })
      .field("arrival",
             [&](const JsonValue& v) { w.arrival = arrival_from_json(v); })
      .field("num_requests", [&](const JsonValue& v) {
        w.num_requests = to_int(v, "num_requests");
      });
  r.finish();
  // A named scenario leaves num_requests at "keep the scenario default"
  // unless the spec overrides it explicitly.
  if (named && j.find("num_requests") == nullptr) w.num_requests = 0;
  return w;
}

SearchSpace search_from_json(const JsonValue& j) {
  SearchSpace s;
  FieldReader r(j, "search");
  r.field("skus",
          [&](const JsonValue& v) { s.skus = to_str_vec(v, "skus"); })
      .field("tp_degrees",
             [&](const JsonValue& v) {
               s.tp_degrees = to_int_vec(v, "tp_degrees");
             })
      .field("pp_degrees",
             [&](const JsonValue& v) {
               s.pp_degrees = to_int_vec(v, "pp_degrees");
             })
      .field("max_total_gpus",
             [&](const JsonValue& v) {
               s.max_total_gpus = to_int(v, "max_total_gpus");
             })
      .field("schedulers",
             [&](const JsonValue& v) {
               s.schedulers.clear();
               for (const std::string& n : to_str_vec(v, "schedulers"))
                 s.schedulers.push_back(scheduler_from_name(n));
             })
      .field("batch_sizes",
             [&](const JsonValue& v) {
               s.batch_sizes = to_int_vec(v, "batch_sizes");
             })
      .field("sarathi_chunk_sizes",
             [&](const JsonValue& v) {
               s.sarathi_chunk_sizes = to_token_vec(v, "sarathi_chunk_sizes");
             })
      .field("max_tokens_per_iteration",
             [&](const JsonValue& v) {
               s.max_tokens_per_iteration =
                   to_int(v, "max_tokens_per_iteration");
             })
      .field("global_scheduler", [&](const JsonValue& v) {
        s.global_scheduler =
            global_scheduler_from_name(to_str(v, "global_scheduler"));
      });
  r.finish();
  return s;
}

ElasticPlanSpec elastic_from_json(const JsonValue& j) {
  ElasticPlanSpec e;
  FieldReader r(j, "elastic");
  r.field("slo_target",
          [&](const JsonValue& v) {
            e.slo_target = to_double(v, "slo_target");
          })
      .field("max_replicas",
             [&](const JsonValue& v) {
               e.max_replicas = to_int(v, "max_replicas");
             })
      .field("burst_slots", [&](const JsonValue& v) {
        e.burst_slots = to_int(v, "burst_slots");
      });
  r.finish();
  return e;
}

ObsSpec obs_from_json(const JsonValue& j) {
  ObsSpec o;
  FieldReader r(j, "obs");
  r.field("trace",
          [&](const JsonValue& v) { o.trace = to_bool(v, "trace"); })
      .field("trace_capacity",
             [&](const JsonValue& v) {
               o.trace_capacity = to_int(v, "trace_capacity");
             })
      .field("rolling_window_s",
             [&](const JsonValue& v) {
               o.rolling_window_s = to_double(v, "rolling_window_s");
             })
      .field("analyze", [&](const JsonValue& v) {
        o.analyze = to_bool(v, "analyze");
      });
  r.finish();
  return o;
}

SweepAxes sweep_from_json(const JsonValue& j) {
  SweepAxes s;
  FieldReader r(j, "sweep");
  r.field("sku", [&](const JsonValue& v) { s.sku = to_str_vec(v, "sku"); })
      .field("tensor_parallel",
             [&](const JsonValue& v) {
               s.tensor_parallel = to_int_vec(v, "tensor_parallel");
             })
      .field("pipeline_parallel",
             [&](const JsonValue& v) {
               s.pipeline_parallel = to_int_vec(v, "pipeline_parallel");
             })
      .field("num_replicas",
             [&](const JsonValue& v) {
               s.num_replicas = to_int_vec(v, "num_replicas");
             })
      .field("scheduler",
             [&](const JsonValue& v) {
               s.scheduler = to_str_vec(v, "scheduler");
             })
      .field("max_batch_size",
             [&](const JsonValue& v) {
               s.max_batch_size = to_int_vec(v, "max_batch_size");
             })
      .field("chunk_size",
             [&](const JsonValue& v) {
               s.chunk_size = to_token_vec(v, "chunk_size");
             })
      .field("qps",
             [&](const JsonValue& v) { s.qps = to_double_vec(v, "qps"); });
  r.finish();
  return s;
}

}  // namespace

ExperimentSpec ExperimentSpec::from_json(const JsonValue& json) {
  ExperimentSpec spec;
  FieldReader r(json, "experiment");
  r.field("name",
          [&](const JsonValue& v) { spec.name = to_str(v, "name"); })
      .field("mode",
             [&](const JsonValue& v) {
               spec.mode = experiment_mode_from_name(to_str(v, "mode"));
             })
      .field("model",
             [&](const JsonValue& v) { spec.model = to_str(v, "model"); })
      .field("deployment",
             [&](const JsonValue& v) {
               spec.deployment = deployment_from_json(v);
             })
      .field("workload",
             [&](const JsonValue& v) {
               spec.workload = workload_from_json(v);
             })
      .field("slo", [&](const JsonValue& v) { spec.slo = slo_from_json(v); })
      .field("seed",
             [&](const JsonValue& v) {
               spec.seed = static_cast<std::uint64_t>(v.as_int());
             })
      .field("tp_degrees",
             [&](const JsonValue& v) {
               spec.tp_degrees = to_int_vec(v, "tp_degrees");
             })
      .field("num_threads",
             [&](const JsonValue& v) {
               spec.num_threads = to_int(v, "num_threads");
             })
      .field("search",
             [&](const JsonValue& v) { spec.search = search_from_json(v); })
      .field("elastic",
             [&](const JsonValue& v) { spec.elastic = elastic_from_json(v); })
      .field("obs", [&](const JsonValue& v) { spec.obs = obs_from_json(v); })
      .field("sweep",
             [&](const JsonValue& v) { spec.sweep = sweep_from_json(v); });
  r.finish();
  return spec;
}

ExperimentSpec ExperimentSpec::from_json_string(const std::string& text) {
  return from_json(JsonValue::parse(text));
}

}  // namespace vidur
