#include "api/compare.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace vidur {

namespace {

/// Scalar leaves render as their JSON text; containers only appear in
/// structural rows, where a size summary beats dumping the subtree.
std::string leaf_text(const JsonValue& v) {
  if (v.is_object())
    return "<object, " + std::to_string(v.size()) + " keys>";
  if (v.is_array())
    return "<array, " + std::to_string(v.size()) + " items>";
  std::string text = v.dump();
  while (!text.empty() && (text.back() == '\n' || text.back() == ' '))
    text.pop_back();
  return text;
}

std::string fmt_number(double x) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", x);
  return buf;
}

std::string join_path(const std::string& base, const std::string& key) {
  return base.empty() ? key : base + "." + key;
}

std::string index_path(const std::string& base, std::size_t i) {
  return base + "[" + std::to_string(i) + "]";
}

struct Walker {
  double tolerance;
  std::vector<CompareEntry>& out;

  /// A subtree present on one side only: recurse to the leaves so every
  /// missing value is an explicit row (a whole missing section — e.g. an
  /// "analysis" block — must not collapse into one opaque summary line).
  /// Empty containers report themselves, or they would vanish silently.
  void only(const std::string& path, const JsonValue& v,
            CompareEntry::Kind kind) {
    if (v.is_object() && v.size() > 0) {
      for (const auto& [key, child] : v.members())
        only(join_path(path, key), child, kind);
      return;
    }
    if (v.is_array() && v.size() > 0) {
      for (std::size_t i = 0; i < v.items().size(); ++i)
        only(index_path(path, i), v.items()[i], kind);
      return;
    }
    CompareEntry e;
    e.path = path;
    e.kind = kind;
    (kind == CompareEntry::Kind::kOnlyInA ? e.a_text : e.b_text) =
        leaf_text(v);
    out.push_back(std::move(e));
  }

  void walk(const std::string& path, const JsonValue& a, const JsonValue& b) {
    // Numbers compare across int/double representations (5 == 5.0);
    // every other cross-kind pairing is a type change, not a value diff.
    if (a.is_number() && b.is_number()) {
      const double va = a.as_double();
      const double vb = b.as_double();
      if (va == vb) return;
      CompareEntry e;
      e.path = path;
      e.kind = CompareEntry::Kind::kNumeric;
      e.a = va;
      e.b = vb;
      const double scale = std::max(std::fabs(va), std::fabs(vb));
      e.rel_delta = scale > 0 ? std::fabs(vb - va) / scale : 0.0;
      out.push_back(std::move(e));
      return;
    }
    if (a.is_object() && b.is_object()) {
      for (const auto& [key, va] : a.members()) {
        const JsonValue* vb = b.find(key);
        if (vb == nullptr)
          only(join_path(path, key), va, CompareEntry::Kind::kOnlyInA);
        else
          walk(join_path(path, key), va, *vb);
      }
      for (const auto& [key, vb] : b.members()) {
        if (a.find(key) == nullptr)
          only(join_path(path, key), vb, CompareEntry::Kind::kOnlyInB);
      }
      return;
    }
    if (a.is_array() && b.is_array()) {
      const auto& ia = a.items();
      const auto& ib = b.items();
      const std::size_t shared = std::min(ia.size(), ib.size());
      for (std::size_t i = 0; i < shared; ++i)
        walk(index_path(path, i), ia[i], ib[i]);
      for (std::size_t i = shared; i < ia.size(); ++i)
        only(index_path(path, i), ia[i], CompareEntry::Kind::kOnlyInA);
      for (std::size_t i = shared; i < ib.size(); ++i)
        only(index_path(path, i), ib[i], CompareEntry::Kind::kOnlyInB);
      return;
    }
    if (a == b) return;
    CompareEntry e;
    e.path = path;
    const bool same_kind = (a.is_bool() && b.is_bool()) ||
                           (a.is_string() && b.is_string()) ||
                           (a.is_null() && b.is_null());
    e.kind = same_kind ? CompareEntry::Kind::kValue
                       : CompareEntry::Kind::kTypeChanged;
    e.a_text = leaf_text(a);
    e.b_text = leaf_text(b);
    out.push_back(std::move(e));
  }
};

bool entry_exceeds(const CompareEntry& e, double tolerance) {
  if (e.kind == CompareEntry::Kind::kNumeric) return e.rel_delta > tolerance;
  return true;  // structural and non-numeric diffs always count
}

}  // namespace

std::size_t CompareReport::num_numeric() const {
  return static_cast<std::size_t>(
      std::count_if(entries.begin(), entries.end(), [](const CompareEntry& e) {
        return e.kind == CompareEntry::Kind::kNumeric;
      }));
}

std::size_t CompareReport::num_exceeding() const {
  return static_cast<std::size_t>(
      std::count_if(entries.begin(), entries.end(), [&](const CompareEntry& e) {
        return entry_exceeds(e, tolerance);
      }));
}

std::string CompareReport::to_string() const {
  std::ostringstream os;
  if (entries.empty()) {
    os << "documents match (tolerance "
       << fmt_number(tolerance * 100) << "%)\n";
    return os.str();
  }
  os << entries.size() << " difference" << (entries.size() == 1 ? "" : "s")
     << ", " << num_exceeding() << " beyond tolerance "
     << fmt_number(tolerance * 100) << "%:\n";
  for (const CompareEntry& e : entries) {
    os << (entry_exceeds(e, tolerance) ? "  ! " : "    ");
    os << e.path << ": ";
    switch (e.kind) {
      case CompareEntry::Kind::kNumeric: {
        const double pct = e.rel_delta * 100 * (e.b >= e.a ? 1 : -1);
        os << fmt_number(e.a) << " -> " << fmt_number(e.b) << " ("
           << (pct >= 0 ? "+" : "") << fmt_number(pct) << "%)";
        break;
      }
      case CompareEntry::Kind::kValue:
        os << e.a_text << " -> " << e.b_text;
        break;
      case CompareEntry::Kind::kTypeChanged:
        os << "type changed: " << e.a_text << " -> " << e.b_text;
        break;
      case CompareEntry::Kind::kOnlyInA:
        os << "only in first: " << e.a_text;
        break;
      case CompareEntry::Kind::kOnlyInB:
        os << "only in second: " << e.b_text;
        break;
    }
    os << "\n";
  }
  return os.str();
}

CompareReport compare_json(const JsonValue& a, const JsonValue& b,
                           double tolerance) {
  CompareReport report;
  report.tolerance = tolerance;
  Walker walker{tolerance, report.entries};
  walker.walk("", a, b);
  return report;
}

CompareReport compare_json_files(const std::string& path_a,
                                 const std::string& path_b,
                                 double tolerance) {
  const auto load = [](const std::string& path) {
    std::ifstream in(path);
    VIDUR_CHECK_MSG(in.good(), "compare: cannot open '" << path << "'");
    std::ostringstream os;
    os << in.rdbuf();
    return JsonValue::parse(os.str());
  };
  return compare_json(load(path_a), load(path_b), tolerance);
}

}  // namespace vidur
