#include "api/result.h"

#include <fstream>
#include <sstream>

#include "common/check.h"

namespace vidur {

namespace {

JsonValue summary_json(const Summary& s) {
  JsonValue j = JsonValue::object();
  j.set("p50", s.p50);
  j.set("p90", s.p90);
  j.set("p95", s.p95);
  j.set("p99", s.p99);
  j.set("mean", s.mean);
  j.set("max", s.max);
  return j;
}

JsonValue pool_report_json(const PoolScalingReport& p) {
  JsonValue j = JsonValue::object();
  j.set("pool", p.name);
  j.set("sku", p.sku);
  j.set("role", p.role);
  j.set("autoscaled", p.autoscaled);
  j.set("slots", p.slots);
  j.set("gpus_per_replica", p.gpus_per_replica);
  j.set("cost_per_gpu_hour", p.cost_per_gpu_hour);
  j.set("peak_active", p.peak_active);
  j.set("mean_active_replicas", p.mean_active_replicas);
  j.set("num_scale_ups", p.num_scale_up_events);
  j.set("num_scale_downs", p.num_scale_down_events);
  j.set("gpu_hours", p.gpu_hours);
  j.set("cost_usd", p.cost_usd);
  // Exact per-pool attribution from the pool's own batch records (zero when
  // the run carried no batch-level accounting for this pool).
  if (p.mfu > 0 || p.mbu > 0 || p.busy_fraction > 0 || p.energy_joules > 0) {
    j.set("mfu", p.mfu);
    j.set("mbu", p.mbu);
    j.set("busy_fraction", p.busy_fraction);
    j.set("energy_joules", p.energy_joules);
  }
  return j;
}

JsonValue pool_reports_json(const std::vector<PoolScalingReport>& pools) {
  JsonValue arr = JsonValue::array();
  for (const PoolScalingReport& p : pools) arr.push(pool_report_json(p));
  return arr;
}

JsonValue scaling_json(const ClusterScalingReport& r) {
  JsonValue j = JsonValue::object();
  j.set("autoscaled", r.enabled);
  j.set("fleet_slots", r.fleet_size);
  j.set("peak_active", r.peak_active);
  j.set("mean_active_replicas", r.mean_active_replicas);
  j.set("num_scale_ups", r.num_scale_up_events);
  j.set("num_scale_downs", r.num_scale_down_events);
  j.set("gpu_hours", r.gpu_hours);
  j.set("cost_usd", r.cost_usd);
  if (!r.pools.empty()) j.set("pools", pool_reports_json(r.pools));
  return j;
}

JsonValue elastic_point_json(const ElasticPlanPoint& p) {
  JsonValue j = JsonValue::object();
  j.set("fleet_slots", p.fleet_size);
  j.set("mean_active_replicas", p.mean_active_replicas);
  j.set("gpu_hours", p.gpu_hours);
  j.set("cost_usd", p.cost_usd);
  j.set("slo_attainment", p.slo_attainment);
  j.set("makespan_s", p.makespan);
  j.set("num_scale_ups", p.num_scale_ups);
  j.set("num_scale_downs", p.num_scale_downs);
  if (!p.pools.empty()) j.set("pools", pool_reports_json(p.pools));
  return j;
}

JsonValue registry_json(const RegistrySnapshot& s) {
  JsonValue j = JsonValue::object();
  if (!s.counters.empty()) {
    JsonValue counters = JsonValue::object();
    for (const auto& e : s.counters)
      counters.set(e.name, static_cast<std::int64_t>(e.value));
    j.set("counters", std::move(counters));
  }
  if (!s.gauges.empty()) {
    JsonValue gauges = JsonValue::object();
    for (const auto& e : s.gauges) gauges.set(e.name, e.value);
    j.set("gauges", std::move(gauges));
  }
  if (!s.histograms.empty()) {
    JsonValue hists = JsonValue::object();
    for (const auto& e : s.histograms) {
      JsonValue h = JsonValue::object();
      h.set("count", static_cast<std::int64_t>(e.count));
      h.set("sum", e.sum);
      h.set("mean", e.mean);
      h.set("p50", e.p50);
      h.set("p90", e.p90);
      h.set("p99", e.p99);
      h.set("max", e.max);
      hists.set(e.name, std::move(h));
    }
    j.set("histograms", std::move(hists));
  }
  return j;
}

JsonValue rolling_json(const std::vector<RollingTrack>& tracks) {
  JsonValue arr = JsonValue::array();
  for (const RollingTrack& t : tracks) {
    JsonValue row = JsonValue::object();
    row.set("track", t.name);
    JsonValue windows = JsonValue::array();
    for (const WindowSample& w : t.windows) {
      JsonValue wj = JsonValue::object();
      wj.set("start_s", w.start);
      wj.set("end_s", w.end);
      wj.set("arrivals", w.arrivals);
      wj.set("completions", w.completions);
      wj.set("mean_ttft_s", w.mean_ttft());
      wj.set("max_ttft_s", w.ttft_max);
      wj.set("mean_tbt_s", w.mean_tbt());
      wj.set("max_tbt_s", w.tbt_max);
      wj.set("slo_attainment", w.slo_attainment());
      wj.set("mean_queue_depth", w.mean_queue_depth());
      windows.push(std::move(wj));
    }
    row.set("windows", std::move(windows));
    arr.push(std::move(row));
  }
  return arr;
}

JsonValue evaluation_json(const ConfigEvaluation& e) {
  JsonValue j = JsonValue::object();
  j.set("config", e.config.to_string());
  j.set("feasible", e.feasible);
  j.set("capacity_qps", e.capacity_qps);
  j.set("cost_per_hour", e.cost_per_hour);
  j.set("qps_per_dollar", e.qps_per_dollar);
  j.set("ttft_p90_s", e.ttft_p90);
  j.set("tbt_p99_s", e.tbt_p99);
  j.set("meets_slo", e.meets_slo);
  j.set("num_probes", e.num_probes);
  return j;
}

}  // namespace

JsonValue metrics_to_json(const SimulationMetrics& m) {
  JsonValue j = JsonValue::object();
  j.set("num_requests", m.num_requests);
  j.set("num_completed", m.num_completed);
  j.set("makespan_s", m.makespan);
  j.set("throughput_qps", m.throughput_qps);
  j.set("output_tokens_per_sec", m.output_tokens_per_sec);
  j.set("scheduling_delay_s", summary_json(m.scheduling_delay));
  j.set("ttft_s", summary_json(m.ttft));
  j.set("tbt_s", summary_json(m.tbt));
  j.set("normalized_e2e_latency_s", summary_json(m.normalized_e2e_latency));
  j.set("normalized_execution_latency_s",
        summary_json(m.normalized_execution_latency));
  j.set("mfu", m.mfu);
  j.set("mbu", m.mbu);
  j.set("mean_batch_size", m.mean_batch_size);
  j.set("mean_kv_utilization", m.mean_kv_utilization);
  j.set("busy_fraction", m.busy_fraction);
  j.set("num_restarts", m.num_restarts);
  if (m.total_energy_joules > 0) {
    j.set("total_energy_joules", m.total_energy_joules);
    j.set("energy_per_output_token", m.energy_per_output_token);
    j.set("mean_cluster_power_watts", m.mean_cluster_power_watts);
  }
  const double attainment = m.aggregate_slo_attainment();
  if (attainment >= 0) j.set("slo_attainment", attainment);
  j.set("fleet", scaling_json(m.scaling));
  if (!m.tenant_metrics.empty()) {
    JsonValue tenants = JsonValue::array();
    for (const auto& t : m.tenant_metrics) {
      JsonValue row = JsonValue::object();
      row.set("tenant", t.info.name);
      row.set("priority", t.info.priority);
      row.set("num_requests", t.num_requests);
      row.set("num_completed", t.num_completed);
      row.set("ttft_p90_s", t.ttft.p90);
      row.set("tbt_p99_s", t.tbt.p99);
      row.set("throughput_qps", t.throughput_qps);
      row.set("output_tokens_per_sec", t.output_tokens_per_sec);
      row.set("slo_attainment", t.slo_attainment);
      tenants.push(std::move(row));
    }
    j.set("tenants", std::move(tenants));
  }
  if (m.estimator_cache_hits + m.estimator_cache_misses > 0) {
    JsonValue est = JsonValue::object();
    est.set("cache_hits", m.estimator_cache_hits);
    est.set("cache_misses", m.estimator_cache_misses);
    est.set("cache_hit_rate",
            static_cast<double>(m.estimator_cache_hits) /
                static_cast<double>(m.estimator_cache_hits +
                                    m.estimator_cache_misses));
    j.set("estimator", std::move(est));
  }
  if (m.prefix_cache.enabled) {
    const auto slice_json = [](const PrefixCacheMetrics::Slice& s) {
      JsonValue row = JsonValue::object();
      row.set("name", s.name);
      row.set("lookups", s.lookups);
      row.set("hits", s.hits);
      row.set("misses", s.misses);
      row.set("hit_rate", s.hit_rate());
      row.set("prefill_tokens_saved", s.tokens_saved);
      return row;
    };
    JsonValue pc = JsonValue::object();
    pc.set("lookups", m.prefix_cache.lookups);
    pc.set("hits", m.prefix_cache.hits);
    pc.set("misses", m.prefix_cache.misses);
    pc.set("hit_rate", m.prefix_cache.hit_rate());
    pc.set("inserted_blocks", m.prefix_cache.inserted_blocks);
    pc.set("evicted_blocks", m.prefix_cache.evicted_blocks);
    pc.set("prefill_tokens_saved", m.prefix_cache.tokens_saved);
    pc.set("kv_bytes_saved", m.prefix_cache.bytes_saved);
    pc.set("resident_sessions", m.prefix_cache.resident_sessions);
    if (!m.prefix_cache.by_tenant.empty()) {
      JsonValue arr = JsonValue::array();
      for (const auto& s : m.prefix_cache.by_tenant)
        arr.push(slice_json(s));
      pc.set("by_tenant", std::move(arr));
    }
    if (!m.prefix_cache.by_pool.empty()) {
      JsonValue arr = JsonValue::array();
      for (const auto& s : m.prefix_cache.by_pool) arr.push(slice_json(s));
      pc.set("by_pool", std::move(arr));
    }
    j.set("prefix_cache", std::move(pc));
  }
  if (m.resilience.enabled) {
    const ResilienceMetrics& r = m.resilience;
    JsonValue res = JsonValue::object();
    res.set("crashes", r.num_crashes);
    res.set("spot_reclaims", r.num_spot_reclaims);
    res.set("degrade_events", r.num_degrade_events);
    res.set("retries", r.num_retries);
    res.set("handoffs", r.num_handoffs);
    res.set("shed", r.num_shed);
    res.set("lost", r.num_lost);
    res.set("repairs", r.num_repairs);
    res.set("mttr_s", r.mttr_s);
    res.set("prefill_tokens_reprefilled", r.tokens_reprefilled);
    res.set("decode_tokens_discarded", r.decode_tokens_discarded);
    if (r.slo_attainment_clean >= 0)
      res.set("slo_attainment_clean", r.slo_attainment_clean);
    if (r.slo_attainment_impacted >= 0)
      res.set("slo_attainment_impacted", r.slo_attainment_impacted);
    j.set("resilience", std::move(res));
  }
  if (!m.registry.empty()) j.set("registry", registry_json(m.registry));
  if (!m.rolling.empty()) j.set("rolling", rolling_json(m.rolling));
  return j;
}

JsonValue ExperimentResult::to_json() const {
  if (failed()) {
    JsonValue j = JsonValue::object();
    j.set("error", error);
    return j;
  }
  switch (spec.mode) {
    case ExperimentMode::kSimulate:
    case ExperimentMode::kReference: {
      JsonValue j = metrics_to_json(metrics);
      if (has_analysis()) j.set("analysis", analysis);
      return j;
    }
    case ExperimentMode::kCapacitySearch: {
      JsonValue j = JsonValue::object();
      j.set("num_configs", search.evaluations.size());
      std::size_t feasible = 0, meets = 0;
      for (const auto& e : search.evaluations) {
        feasible += e.feasible ? 1 : 0;
        meets += e.meets_slo ? 1 : 0;
      }
      j.set("num_feasible", feasible);
      j.set("num_meeting_slo", meets);
      if (const auto best = search.best())
        j.set("best", evaluation_json(*best));
      if (const auto best = search.best_unconstrained())
        j.set("best_unconstrained", evaluation_json(*best));
      JsonValue evals = JsonValue::array();
      for (const auto& e : search.evaluations)
        evals.push(evaluation_json(e));
      j.set("evaluations", std::move(evals));
      return j;
    }
    case ExperimentMode::kElasticPlan: {
      JsonValue j = JsonValue::object();
      j.set("slo_target", spec.elastic.slo_target);
      j.set("static_feasible", elastic.static_feasible);
      j.set("static_peak", elastic_point_json(elastic.static_peak));
      j.set("autoscaled", elastic_point_json(elastic.autoscaled));
      j.set("cost_savings_pct", elastic.cost_savings_pct);
      j.set("num_simulations", elastic.num_simulations);
      return j;
    }
  }
  throw Error("unhandled ExperimentMode");
}

std::string ExperimentResult::to_string() const {
  std::ostringstream os;
  os << "=== " << spec.name << " (" << experiment_mode_name(spec.mode)
     << ", " << spec.model << ") ===\n";
  if (failed()) {
    os << "FAILED: " << error << "\n";
    return os.str();
  }
  switch (spec.mode) {
    case ExperimentMode::kSimulate:
    case ExperimentMode::kReference:
      os << "deployment: " << spec.deployment.to_string() << " ($"
         << spec.deployment.cost_per_hour() << "/hr)\n"
         << metrics.to_string();
      if (has_analysis()) {
        os << "analysis: " << analysis.at("requests").at("completed").as_int()
           << " request waterfalls, "
           << analysis.at("slo").at("violations").size()
           << " SLO violations, conservation "
           << (analysis.at("conservation").at("ok").as_bool() ? "OK"
                                                              : "VIOLATED")
           << "\n";
      }
      break;
    case ExperimentMode::kCapacitySearch: {
      os << "evaluated " << search.evaluations.size() << " configurations\n";
      if (const auto best = search.best()) {
        os << "best (SLO-compliant): " << best->config.to_string() << " — "
           << best->capacity_qps << " qps, $" << best->cost_per_hour
           << "/hr, " << best->qps_per_dollar << " qps/$\n";
      } else {
        os << "no configuration met the SLO\n";
      }
      break;
    }
    case ExperimentMode::kElasticPlan:
      os << elastic.to_string();
      break;
  }
  return os.str();
}

namespace {

JsonValue wrap(const std::string& name, const std::string& mode,
               JsonValue spec, JsonValue results) {
  JsonValue wrapped = JsonValue::object();
  wrapped.set("experiment", name);
  wrapped.set("mode", mode);
  wrapped.set("spec", std::move(spec));
  wrapped.set("results", std::move(results));
  return wrapped;
}

void write_file(const std::string& path, const JsonValue& doc) {
  std::ofstream out(path);
  VIDUR_CHECK_MSG(out.good(), "cannot write " << path);
  out << doc.dump();
  out.close();
  VIDUR_CHECK_MSG(out.good(), "failed writing " << path);
}

}  // namespace

void write_experiment_json(const ExperimentResult& result,
                           const std::string& path) {
  write_file(path, wrap(result.spec.name,
                        experiment_mode_name(result.spec.mode),
                        result.spec.to_json(), result.to_json()));
}

void write_sweep_json(const ExperimentSpec& base,
                      const std::vector<ExperimentResult>& results,
                      const std::string& path) {
  JsonValue points = JsonValue::array();
  for (const ExperimentResult& r : results) {
    JsonValue point = JsonValue::object();
    point.set("name", r.spec.name);
    point.set("deployment", r.spec.deployment.to_string());
    if (!r.spec.workload.synthetic())
      point.set("scenario", r.spec.workload.scenario);
    else
      point.set("qps", r.spec.workload.arrival.qps);
    point.set("results", r.to_json());
    points.push(std::move(point));
  }
  write_file(path, wrap(base.name, experiment_mode_name(base.mode),
                        base.to_json(), std::move(points)));
}

}  // namespace vidur
