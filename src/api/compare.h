// Result-file comparison (`vidur compare a.json b.json`): walk two
// experiment/bench JSON documents leaf by leaf and report every difference
// with its relative delta, highlighting the ones beyond a tolerance. Built
// for eyeballing regressions between two runs of the same spec — a renamed
// or missing key is reported as structural (recursing into a missing
// subtree so every absent leaf is its own row), numeric drift as a delta
// row. Structural rows always exceed tolerance, so a document that lost a
// whole section (e.g. "analysis") fails the comparison explicitly.
#pragma once

#include <string>
#include <vector>

#include "common/json.h"

namespace vidur {

/// One differing leaf between the two documents.
struct CompareEntry {
  enum class Kind {
    kNumeric,      ///< both numbers, values differ
    kValue,        ///< non-numeric leaves (bool/string/null) differ
    kTypeChanged,  ///< leaf kinds differ (e.g. number vs string)
    kOnlyInA,
    kOnlyInB,
  };

  std::string path;  ///< dotted path, array elements as [i]
  Kind kind = Kind::kNumeric;
  double a = 0.0;            ///< numeric leaves only
  double b = 0.0;
  double rel_delta = 0.0;    ///< |b - a| / max(|a|, |b|); 0 when both 0
  std::string a_text;        ///< rendered leaf (non-numeric / structural)
  std::string b_text;

  bool operator==(const CompareEntry&) const = default;
};

struct CompareReport {
  std::vector<CompareEntry> entries;  ///< document order (a's order first)
  double tolerance = 0.0;             ///< the threshold used by exceeds()

  std::size_t num_numeric() const;
  /// Differences beyond tolerance: every structural/value mismatch, and
  /// numeric leaves whose relative delta exceeds `tolerance`.
  std::size_t num_exceeding() const;
  bool within_tolerance() const { return num_exceeding() == 0; }

  /// Rendered table: one row per difference, exceeding rows marked with
  /// "!". Empty-report form says the documents match.
  std::string to_string() const;
};

/// Compare two parsed documents. `tolerance` is the relative-delta
/// threshold recorded in the report (rows beyond it are highlighted and
/// fail within_tolerance()). Equal leaves produce no entry.
CompareReport compare_json(const JsonValue& a, const JsonValue& b,
                           double tolerance = 0.02);

/// File form: parses both paths (throws vidur::Error on unreadable or
/// malformed input).
CompareReport compare_json_files(const std::string& path_a,
                                 const std::string& path_b,
                                 double tolerance = 0.02);

}  // namespace vidur
