// The single entry point of the declarative experiment API: validate an
// ExperimentSpec, onboard the model, and dispatch to the matching engine —
// VidurSession::simulate / simulate_reference, Vidur-Search's run_search,
// or plan_elastic_capacity — returning a uniform ExperimentResult.
#pragma once

#include <vector>

#include "api/result.h"
#include "core/session.h"

namespace vidur {

/// Run one experiment end to end (spec.sweep must be empty; use run_sweep
/// for swept specs). Creates a session for spec.model, onboarding lazily.
/// Throws vidur::Error on an invalid spec or an infeasible deployment.
ExperimentResult run_experiment(const ExperimentSpec& spec);

/// Same, reusing a caller-owned session (and its onboarding work) whose
/// model must match spec.model.
ExperimentResult run_experiment(VidurSession& session,
                                const ExperimentSpec& spec);

/// Expand the sweep axes and run every point, thread-pooled like
/// Vidur-Search (spec.num_threads workers; 0 = hardware concurrency). A
/// point that fails — e.g. the model does not fit its deployment — records
/// its error in the result instead of aborting the sweep. Results follow
/// expansion order.
std::vector<ExperimentResult> run_sweep(const ExperimentSpec& spec);
std::vector<ExperimentResult> run_sweep(VidurSession& session,
                                        const ExperimentSpec& spec);

}  // namespace vidur
