// Declarative experiment API: one serializable value type that describes a
// complete Vidur experiment — model, deployment, workload, SLOs, seeds,
// mode, and optional sweep axes — so every scenario the library can play is
// reachable from a JSON file (the `vidur` CLI) or three lines of builder
// calls, with no bespoke harness program to write and recompile.
//
//   ExperimentSpec spec;
//   spec.with_model("llama2-70b")
//       .with_parallelism(4, 1, 2)
//       .with_trace("chat1m", /*qps=*/3.0, /*num_requests=*/500);
//   ExperimentResult result = run_experiment(spec);     // src/api/run.h
//
// A spec round-trips losslessly through JSON (parse(serialize(s)) == s) and
// validate() turns every common misconfiguration into an actionable error
// (unknown names get a did-you-mean, incompatible features name both sides).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "core/deployment.h"
#include "metrics/metrics.h"
#include "search/config_space.h"
#include "workload/trace_generator.h"

namespace vidur {

/// What run_experiment() does with the spec.
enum class ExperimentMode {
  kSimulate,        ///< VidurSession::simulate (runtime-estimator backend)
  kReference,       ///< simulate_reference (ground-truth replay, paper "Real")
  kCapacitySearch,  ///< Vidur-Search over `search` space (run_search)
  kElasticPlan,     ///< static peak vs autoscaled (plan_elastic_capacity)
};

/// Stable name, e.g. "simulate", "capacity_search". Inverse:
/// experiment_mode_from_name.
const std::string& experiment_mode_name(ExperimentMode mode);
ExperimentMode experiment_mode_from_name(const std::string& name);
/// Every mode name, in declaration order (for listings/validation).
const std::vector<std::string>& experiment_mode_names();

/// The workload an experiment plays: either a named scenario from the
/// ScenarioRegistry (multi-tenant, time-varying), or a synthetic workload
/// composed from a built-in trace's length distribution and an arrival
/// process.
struct WorkloadSpec {
  /// Registered scenario name; empty selects the synthetic form.
  std::string scenario;
  /// Built-in trace name (synthetic form only).
  std::string trace = "chat1m";
  ArrivalSpec arrival{ArrivalKind::kPoisson, 1.5, 2.0};
  /// Request count; 0 keeps a named scenario's own default.
  int num_requests = 200;

  bool synthetic() const { return scenario.empty(); }

  bool operator==(const WorkloadSpec&) const = default;
};

/// Options of the elastic_plan mode (mirrors ElasticPlanOptions; the trace
/// seed comes from ExperimentSpec::seed).
struct ElasticPlanSpec {
  double slo_target = 0.95;
  int max_replicas = 8;
  int burst_slots = 2;

  bool operator==(const ElasticPlanSpec&) const = default;
};

/// Observability attachments of a run (simulate/reference modes): request
/// lifecycle tracing and rolling windowed metrics. All defaults off; the
/// registry snapshot in the result is always collected regardless.
struct ObsSpec {
  /// Record lifecycle/batch/cluster trace events (the CLI's `--trace out.
  /// json` flips this on and exports Chrome trace_event JSON).
  bool trace = false;
  /// Trace ring-buffer capacity in records (oldest overwritten beyond it).
  int trace_capacity = 1 << 18;
  /// Rolling windowed metrics (per-tenant/per-pool TTFT/TBT/SLO/queue
  /// depth): window length in simulated seconds; 0 disables.
  double rolling_window_s = 0.0;
  /// Run the trace analytics engine (src/obs/analysis.h) after the
  /// simulation and attach its report to the result under "analysis".
  /// Implies trace recording for the duration of the run.
  bool analyze = false;

  bool operator==(const ObsSpec&) const = default;
};

/// Optional sweep axes: every non-empty axis replaces the base spec's value
/// and the cartesian product of all axes becomes one experiment per point
/// (run_sweep). Empty axes keep the base value.
struct SweepAxes {
  std::vector<std::string> sku;           ///< deployment.sku_name
  std::vector<int> tensor_parallel;
  std::vector<int> pipeline_parallel;
  std::vector<int> num_replicas;
  std::vector<std::string> scheduler;     ///< SchedulerKind names
  std::vector<int> max_batch_size;
  std::vector<TokenCount> chunk_size;
  std::vector<double> qps;                ///< workload.arrival.qps

  bool empty() const;
  /// Product of the non-empty axis sizes (1 when no axis is set).
  std::size_t num_points() const;

  bool operator==(const SweepAxes&) const = default;
};

struct ExperimentSpec {
  std::string name = "experiment";
  ExperimentMode mode = ExperimentMode::kSimulate;
  std::string model = "llama2-7b";
  DeploymentConfig deployment;
  WorkloadSpec workload;
  /// Latency targets: the SLO filter in capacity_search; informational
  /// elsewhere (named scenarios carry their own per-tenant SLOs).
  SloSpec slo{2.0, 0.2};
  /// Trace-generation (and reference-replay) seed.
  std::uint64_t seed = 42;
  /// TP degrees profiled during onboarding; must cover every simulated TP.
  std::vector<int> tp_degrees = {1, 2, 4};
  /// Worker threads for capacity_search and run_sweep (0 = hardware).
  int num_threads = 0;
  /// capacity_search mode: the deployment space to search.
  SearchSpace search;
  /// elastic_plan mode options.
  ElasticPlanSpec elastic;
  /// Observability: tracing and rolling windows (simulate/reference modes).
  ObsSpec obs;
  /// Optional sweep axes (run_sweep expands them; see SweepAxes).
  SweepAxes sweep;

  // ---- builder-style construction (each returns *this) ----
  ExperimentSpec& with_name(std::string n);
  ExperimentSpec& with_mode(ExperimentMode m);
  ExperimentSpec& with_model(std::string model_name);
  ExperimentSpec& with_sku(std::string sku_name);
  ExperimentSpec& with_parallelism(int tp, int pp, int replicas);
  ExperimentSpec& with_scheduler(SchedulerKind kind, int max_batch_size = 128,
                                 TokenCount chunk_size = 512);
  ExperimentSpec& with_routing(GlobalSchedulerKind kind);
  /// Synthetic Poisson workload on a built-in trace.
  ExperimentSpec& with_trace(std::string trace_name, double qps,
                             int num_requests);
  /// Named scenario workload (num_requests 0 keeps the scenario default).
  ExperimentSpec& with_scenario(std::string scenario_name,
                                int num_requests = 0);
  ExperimentSpec& with_slo(SloSpec s);
  ExperimentSpec& with_seed(std::uint64_t s);
  ExperimentSpec& with_autoscale(AutoscalerConfig autoscale);
  /// Append a named pool (heterogeneous / disaggregated deployments; see
  /// DeploymentConfig::pools).
  ExperimentSpec& with_pool(PoolSpec pool);
  /// Enable the per-replica prefix cache (deployment.prefix_cache), sized
  /// to `capacity_fraction` of each replica's KV blocks.
  ExperimentSpec& with_prefix_cache(double capacity_fraction = 0.5);
  /// Install the fault-injection block (deployment.faults): per-pool
  /// crash/spot/straggler profiles plus recovery and shed policies.
  ExperimentSpec& with_faults(FaultConfig faults);

  /// Throws vidur::Error with an actionable message on any inconsistency:
  /// unknown model/SKU/trace/scenario/scheduler names (with a did-you-mean
  /// suggestion), a TP degree not covered by `tp_degrees`, disaggregation
  /// combined with autoscaling, or mode/workload mismatches.
  void validate() const;

  /// Expand the sweep axes into one concrete spec per point (the base spec
  /// alone when no axis is set). Children carry a descriptive name suffix
  /// and empty sweep axes.
  std::vector<ExperimentSpec> expand_sweep() const;

  /// Lossless serialization: from_json(to_json()) == *this. Sections that
  /// equal their defaults are omitted from the output; unknown or
  /// ill-typed fields are rejected with a did-you-mean on parse.
  JsonValue to_json() const;
  static ExperimentSpec from_json(const JsonValue& json);
  std::string to_json_string() const;
  static ExperimentSpec from_json_string(const std::string& text);

  bool operator==(const ExperimentSpec&) const = default;
};

}  // namespace vidur
