// Declarative LLM model specification (paper §4.1: "common declarative model
// specification format"). A spec captures the architectural parameters that
// determine per-operator tensor shapes; everything downstream (profiling
// grids, runtime prediction, memory planning, MFU accounting) derives from it.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace vidur {

/// Transformer decoder architecture description.
struct ModelSpec {
  std::string name;

  int num_layers = 0;       ///< transformer blocks
  int embed_dim = 0;        ///< model (hidden) dimension
  int ffn_dim = 0;          ///< MLP intermediate dimension
  int num_q_heads = 0;      ///< attention query heads
  int num_kv_heads = 0;     ///< key/value heads (== q heads for MHA, fewer for GQA)
  int vocab_size = 0;
  bool gated_mlp = true;    ///< LLaMA-style gate+up+down vs GPT-style up+down

  int head_dim() const { return embed_dim / num_q_heads; }
  bool uses_gqa() const { return num_kv_heads < num_q_heads; }

  /// Total parameter count (embeddings + blocks + lm head).
  ByteCount num_params() const;

  /// Weight bytes at fp16.
  ByteCount weight_bytes() const { return num_params() * kBytesPerElement; }

  /// KV-cache bytes per token across all layers (both K and V, fp16).
  ByteCount kv_bytes_per_token() const;

  /// Model FLOPs for processing `num_tokens` new tokens whose attention spans
  /// `context_tokens` total context (prefill quadratic term included). Used
  /// for MFU accounting, matching the usual 2*params + attention convention.
  FlopCount flops(TokenCount num_tokens, TokenCount context_tokens) const;
  /// flops() decomposed as flops(t, c) = flops_per_token() * t
  ///   + flops_per_token_context() * (t * c), so batch-level accounting can
  /// sum aggregate products instead of walking items (see batch_flops).
  double flops_per_token() const;
  double flops_per_token_context() const;

  /// Throws vidur::Error unless every field is consistent (positive dims,
  /// heads divide embed_dim, kv heads divide q heads).
  void validate() const;
};

/// Built-in model registry (the four models evaluated in the paper).
/// Recognized names: "llama2-7b", "internlm-20b", "llama2-70b", "qwen-72b".
/// Throws vidur::Error for unknown names.
ModelSpec model_by_name(const std::string& name);

/// All built-in model names, in paper order (7B, 20B, 70B, 72B).
const std::vector<std::string>& builtin_model_names();

}  // namespace vidur
