#include "model/model_spec.h"

#include <vector>

#include "common/check.h"

namespace vidur {

ByteCount ModelSpec::num_params() const {
  const auto d = static_cast<ByteCount>(embed_dim);
  const auto f = static_cast<ByteCount>(ffn_dim);
  const auto v = static_cast<ByteCount>(vocab_size);
  const auto kv_dim = static_cast<ByteCount>(num_kv_heads) * head_dim();

  // Attention: Q and output projections are d x d; K and V are d x kv_dim.
  const ByteCount attn = d * d * 2 + d * kv_dim * 2;
  // MLP: gated (gate+up+down) or plain (up+down).
  const ByteCount mlp = gated_mlp ? 3 * d * f : 2 * d * f;
  // Norms: two per block.
  const ByteCount norms = 2 * d;
  const ByteCount per_block = attn + mlp + norms;

  // Token embeddings + final norm + LM head.
  return per_block * num_layers + v * d + d + v * d;
}

ByteCount ModelSpec::kv_bytes_per_token() const {
  // K and V, per layer: num_kv_heads * head_dim elements each.
  return static_cast<ByteCount>(2) * num_layers * num_kv_heads * head_dim() *
         kBytesPerElement;
}

double ModelSpec::flops_per_token() const {
  const double d = embed_dim;
  const double f = ffn_dim;
  const double kv_dim = static_cast<double>(num_kv_heads) * head_dim();

  // Per-layer matmul FLOPs per token (2 * M * K * N with M = tokens).
  const double qo = 2.0 * d * d * 2.0;
  const double kv = 2.0 * d * kv_dim * 2.0;
  const double mlp = (gated_mlp ? 3.0 : 2.0) * 2.0 * d * f;
  const double lm_head = 2.0 * d * static_cast<double>(vocab_size);
  return (qo + kv + mlp) * num_layers + lm_head;
}

double ModelSpec::flops_per_token_context() const {
  // Attention score + value FLOPs: each new token attends over the context.
  return 4.0 * static_cast<double>(embed_dim) * num_layers;
}

FlopCount ModelSpec::flops(TokenCount num_tokens,
                           TokenCount context_tokens) const {
  const double t = static_cast<double>(num_tokens);
  return flops_per_token() * t +
         flops_per_token_context() * t *
             static_cast<double>(context_tokens);
}

void ModelSpec::validate() const {
  VIDUR_CHECK_MSG(num_layers > 0, "model " << name);
  VIDUR_CHECK_MSG(embed_dim > 0, "model " << name);
  VIDUR_CHECK_MSG(ffn_dim > 0, "model " << name);
  VIDUR_CHECK_MSG(num_q_heads > 0, "model " << name);
  VIDUR_CHECK_MSG(num_kv_heads > 0, "model " << name);
  VIDUR_CHECK_MSG(vocab_size > 0, "model " << name);
  VIDUR_CHECK_MSG(embed_dim % num_q_heads == 0,
                  "embed_dim must be divisible by num_q_heads in " << name);
  VIDUR_CHECK_MSG(num_q_heads % num_kv_heads == 0,
                  "num_q_heads must be divisible by num_kv_heads in " << name);
}

namespace {

ModelSpec make_llama2_7b() {
  return ModelSpec{.name = "llama2-7b",
                   .num_layers = 32,
                   .embed_dim = 4096,
                   .ffn_dim = 11008,
                   .num_q_heads = 32,
                   .num_kv_heads = 32,
                   .vocab_size = 32000,
                   .gated_mlp = true};
}

ModelSpec make_internlm_20b() {
  return ModelSpec{.name = "internlm-20b",
                   .num_layers = 60,
                   .embed_dim = 5120,
                   .ffn_dim = 13824,
                   .num_q_heads = 40,
                   .num_kv_heads = 40,
                   .vocab_size = 103168,
                   .gated_mlp = true};
}

ModelSpec make_llama2_70b() {
  // Group-query attention: 8 KV heads (the paper highlights the 8x KV-load
  // difference vs Qwen-72B's MHA).
  return ModelSpec{.name = "llama2-70b",
                   .num_layers = 80,
                   .embed_dim = 8192,
                   .ffn_dim = 28672,
                   .num_q_heads = 64,
                   .num_kv_heads = 8,
                   .vocab_size = 32000,
                   .gated_mlp = true};
}

ModelSpec make_qwen_72b() {
  return ModelSpec{.name = "qwen-72b",
                   .num_layers = 80,
                   .embed_dim = 8192,
                   .ffn_dim = 24576,
                   .num_q_heads = 64,
                   .num_kv_heads = 64,
                   .vocab_size = 151851,
                   .gated_mlp = true};
}

}  // namespace

ModelSpec model_by_name(const std::string& name) {
  ModelSpec spec;
  if (name == "llama2-7b") {
    spec = make_llama2_7b();
  } else if (name == "internlm-20b") {
    spec = make_internlm_20b();
  } else if (name == "llama2-70b") {
    spec = make_llama2_70b();
  } else if (name == "qwen-72b") {
    spec = make_qwen_72b();
  } else {
    throw Error("unknown model: " + name);
  }
  spec.validate();
  return spec;
}

const std::vector<std::string>& builtin_model_names() {
  static const std::vector<std::string> names = {
      "llama2-7b", "internlm-20b", "llama2-70b", "qwen-72b"};
  return names;
}

}  // namespace vidur
