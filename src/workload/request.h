// Inference request: the unit of work flowing through the serving system.
#pragma once

#include <vector>

#include "common/types.h"

namespace vidur {

struct Request {
  RequestId id = -1;
  Seconds arrival_time = 0.0;
  TokenCount prefill_tokens = 0;  ///< prompt length
  TokenCount decode_tokens = 0;   ///< output length (including first token)
  /// Multi-tenant scenarios tag each request with its originating tenant;
  /// single-tenant traces leave both fields at their defaults.
  TenantId tenant = 0;
  int priority = 0;  ///< higher is more important (priority-aware routing)

  /// Multi-turn conversation this request belongs to (-1: single-shot).
  /// Turn j+1's prompt extends turn j's full context append-only, so a
  /// prefix cache can reuse the conversation's resident KV across turns.
  std::int64_t session = -1;
  int turn = 0;  ///< 0-based turn index within the session
  /// Leading tokens shared verbatim with other requests of the same
  /// prefix_group (e.g. a tenant's system prompt). 0: nothing shared.
  TokenCount shared_prefix_tokens = 0;
  std::int64_t prefix_group = -1;  ///< identity of the shared prefix

  TokenCount total_tokens() const { return prefill_tokens + decode_tokens; }
};

using Trace = std::vector<Request>;

}  // namespace vidur
