// Inference request: the unit of work flowing through the serving system.
#pragma once

#include <vector>

#include "common/types.h"

namespace vidur {

struct Request {
  RequestId id = -1;
  Seconds arrival_time = 0.0;
  TokenCount prefill_tokens = 0;  ///< prompt length
  TokenCount decode_tokens = 0;   ///< output length (including first token)
  /// Multi-tenant scenarios tag each request with its originating tenant;
  /// single-tenant traces leave both fields at their defaults.
  TenantId tenant = 0;
  int priority = 0;  ///< higher is more important (priority-aware routing)

  TokenCount total_tokens() const { return prefill_tokens + decode_tokens; }
};

using Trace = std::vector<Request>;

}  // namespace vidur
