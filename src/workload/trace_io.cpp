#include "workload/trace_io.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <unordered_set>

#include "common/check.h"
#include "common/csv.h"

namespace vidur {

namespace {

// Round-trippable double formatting (std::to_string keeps only 6 digits).
std::string fmt_exact(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", v);
  return buffer;
}

long parse_long(const std::string& text, const char* what) {
  long value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size())
    throw Error(std::string("trace CSV: bad ") + what + " value '" + text +
                "'");
  return value;
}

double parse_double(const std::string& text, const char* what) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    if (consumed != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw Error(std::string("trace CSV: bad ") + what + " value '" + text +
                "'");
  }
}

CsvWriter trace_writer(const Trace& trace) {
  CsvWriter writer({"request_id", "arrival_time", "prefill_tokens",
                    "decode_tokens", "tenant", "priority"});
  for (const Request& r : trace) {
    writer.add_row({std::to_string(r.id), fmt_exact(r.arrival_time),
                    std::to_string(r.prefill_tokens),
                    std::to_string(r.decode_tokens), std::to_string(r.tenant),
                    std::to_string(r.priority)});
  }
  return writer;
}

Trace trace_from_doc(const CsvDocument& doc) {
  const std::size_t id_col = doc.column("request_id");
  const std::size_t arrival_col = doc.column("arrival_time");
  const std::size_t prefill_col = doc.column("prefill_tokens");
  const std::size_t decode_col = doc.column("decode_tokens");
  // Multi-tenant tags arrived after the 4-column format; traces written
  // before then load with every request at the defaults.
  const std::size_t tenant_col = doc.try_column("tenant");
  const std::size_t priority_col = doc.try_column("priority");

  Trace trace;
  trace.reserve(doc.rows.size());
  std::unordered_set<RequestId> seen;
  seen.reserve(doc.rows.size());
  for (const auto& row : doc.rows) {
    Request r;
    r.id = parse_long(row[id_col], "request_id");
    r.arrival_time = parse_double(row[arrival_col], "arrival_time");
    r.prefill_tokens = parse_long(row[prefill_col], "prefill_tokens");
    r.decode_tokens = parse_long(row[decode_col], "decode_tokens");
    if (tenant_col != CsvDocument::npos)
      r.tenant = static_cast<TenantId>(parse_long(row[tenant_col], "tenant"));
    if (priority_col != CsvDocument::npos)
      r.priority = static_cast<int>(parse_long(row[priority_col], "priority"));
    if (r.tenant < 0)
      throw Error("trace CSV: negative tenant for request " +
                  std::to_string(r.id));
    if (r.arrival_time < 0)
      throw Error("trace CSV: negative arrival_time for request " +
                  std::to_string(r.id));
    if (r.prefill_tokens <= 0 || r.decode_tokens <= 0)
      throw Error("trace CSV: non-positive token count for request " +
                  std::to_string(r.id));
    if (!seen.insert(r.id).second)
      throw Error("trace CSV: duplicate request_id " + std::to_string(r.id));
    trace.push_back(r);
  }
  std::stable_sort(trace.begin(), trace.end(),
                   [](const Request& a, const Request& b) {
                     return a.arrival_time < b.arrival_time;
                   });
  return trace;
}

}  // namespace

std::string trace_to_csv(const Trace& trace) {
  return trace_writer(trace).str();
}

Trace trace_from_csv(const std::string& text) {
  return trace_from_doc(parse_csv(text));
}

void save_trace_csv(const std::string& path, const Trace& trace) {
  trace_writer(trace).write_file(path);
}

Trace load_trace_csv(const std::string& path) {
  return trace_from_doc(read_csv_file(path));
}

}  // namespace vidur
