// Trace persistence: save generated traces and replay externally captured
// ones. This is the analogue of Vidur replaying request traces derived from
// real datasets (LMSys-Chat-1M etc., paper §5.1) — a downstream user points
// the simulator at a CSV of their production requests instead of a synthetic
// generator.
//
// Schema (header required, column order free):
//   request_id, arrival_time, prefill_tokens, decode_tokens
#pragma once

#include <string>

#include "workload/request.h"

namespace vidur {

/// Render a trace as CSV text.
std::string trace_to_csv(const Trace& trace);

/// Parse a trace from CSV text. Validates the schema and every row
/// (non-negative arrival, positive token counts, unique ids) and returns the
/// requests sorted by arrival time. Throws vidur::Error on malformed input.
Trace trace_from_csv(const std::string& text);

/// File variants of the above. Throw vidur::Error on I/O failure.
void save_trace_csv(const std::string& path, const Trace& trace);
Trace load_trace_csv(const std::string& path);

}  // namespace vidur
