#include "workload/trace_generator.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/stats.h"

namespace vidur {

namespace {

// Underlying (pre-4K-filter) lognormal parameters are derived from the
// published full-dataset statistics in Table 1 via
//   mu = ln(median),  sigma = sqrt(2 ln(mean / median)).
// The 4K rows then emerge from the same max-total-token filter the paper
// applies; bench_table1_workloads verifies the resulting statistics.

TraceSpec make_chat1m() {
  return TraceSpec{.name = "chat1m",
                   // full LMSys-Chat-1M: prefill 786/417, decode 215/141
                   .prefill_log_mu = 6.033,
                   .prefill_log_sigma = 1.126,
                   .decode_log_mu = 4.949,
                   .decode_log_sigma = 0.918,
                   .min_prefill_tokens = 4,
                   .min_decode_tokens = 2,
                   .max_total_tokens = 4096};
}

TraceSpec make_arxiv4k() {
  return TraceSpec{.name = "arxiv4k",
                   // full Arxiv-Summarization: prefill 9882/7827,
                   // decode median 228 / p90 475. The decode sigma is fit
                   // from median+p90 (not mean/median): the dataset's mean
                   // is dominated by outliers a lognormal cannot carry.
                   .prefill_log_mu = 8.965,
                   .prefill_log_sigma = 0.683,
                   .decode_log_mu = 5.429,
                   .decode_log_sigma = 0.573,
                   // Longer papers have longer abstracts; the 4K filter then
                   // pulls the decode median down as published (228 -> 167).
                   .length_correlation = 0.35,
                   .min_prefill_tokens = 64,
                   .min_decode_tokens = 8,
                   .max_total_tokens = 4096};
}

TraceSpec make_bwb4k() {
  // BWB-4K cannot arise from filtering the full BWB distribution (its
  // medians already exceed 4K total), so it is fit directly to the 4K row:
  // prefill 1067/1037, decode 1612/1601.
  return TraceSpec{.name = "bwb4k",
                   .prefill_log_mu = 6.944,
                   .prefill_log_sigma = 0.239,
                   .decode_log_mu = 7.378,
                   .decode_log_sigma = 0.200,
                   // Translations track their source length closely (the
                   // published P:D ratio std-dev is only 0.37).
                   .length_correlation = 0.8,
                   .min_prefill_tokens = 16,
                   .min_decode_tokens = 16,
                   .max_total_tokens = 4096};
}

}  // namespace

TraceSpec trace_by_name(const std::string& name) {
  if (name == "chat1m") return make_chat1m();
  if (name == "arxiv4k") return make_arxiv4k();
  if (name == "bwb4k") return make_bwb4k();
  throw Error("unknown trace: " + name);
}

const std::vector<std::string>& builtin_trace_names() {
  static const std::vector<std::string> names = {"chat1m", "arxiv4k",
                                                 "bwb4k"};
  return names;
}

void TraceSpec::validate() const {
  VIDUR_CHECK_MSG(std::isfinite(prefill_log_mu) &&
                      std::isfinite(decode_log_mu),
                  "trace '" << name << "': non-finite lognormal mu");
  VIDUR_CHECK_MSG(std::isfinite(prefill_log_sigma) && prefill_log_sigma >= 0,
                  "trace '" << name << "': invalid prefill sigma");
  VIDUR_CHECK_MSG(std::isfinite(decode_log_sigma) && decode_log_sigma >= 0,
                  "trace '" << name << "': invalid decode sigma");
  VIDUR_CHECK_MSG(length_correlation >= -1.0 && length_correlation <= 1.0,
                  "trace '" << name << "': invalid length correlation");
  VIDUR_CHECK_MSG(min_prefill_tokens >= 1 && min_decode_tokens >= 1,
                  "trace '" << name << "': minimum lengths must be >= 1");
  VIDUR_CHECK_MSG(
      min_prefill_tokens + min_decode_tokens <= max_total_tokens,
      "trace '" << name << "': minimum lengths ("
                << min_prefill_tokens << " + " << min_decode_tokens
                << ") exceed the total-token cap " << max_total_tokens);
}

namespace {

const std::vector<std::pair<ArrivalKind, std::string>>& arrival_names() {
  static const std::vector<std::pair<ArrivalKind, std::string>> table = {
      {ArrivalKind::kStatic, "static"},
      {ArrivalKind::kPoisson, "poisson"},
      {ArrivalKind::kGamma, "gamma"},
  };
  return table;
}

}  // namespace

const std::string& arrival_kind_name(ArrivalKind kind) {
  for (const auto& [k, n] : arrival_names())
    if (k == kind) return n;
  throw Error("unhandled ArrivalKind");
}

ArrivalKind arrival_kind_from_name(const std::string& name) {
  for (const auto& [k, n] : arrival_names())
    if (n == name) return k;
  throw Error("unknown arrival kind: " + name);
}

void ArrivalSpec::validate() const {
  if (kind == ArrivalKind::kStatic) return;
  VIDUR_CHECK_MSG(std::isfinite(qps) && qps > 0,
                  "arrival qps must be finite and > 0, got " << qps);
  if (kind == ArrivalKind::kGamma)
    VIDUR_CHECK_MSG(std::isfinite(cv) && cv > 0,
                    "arrival cv must be finite and > 0, got " << cv);
}

Request sample_request(const TraceSpec& spec, Rng& rng) {
  constexpr int kMaxAttempts = 100000;
  // Callers validate() the spec once before their sampling loops; only the
  // correlation is re-checked here because it feeds sqrt() below.
  const double rho = spec.length_correlation;
  VIDUR_CHECK_MSG(rho >= -1.0 && rho <= 1.0, "invalid length correlation");
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    // Correlated bivariate lognormal via a shared Gaussian factor.
    const double zp = rng.normal();
    const double zd = rho * zp + std::sqrt(1.0 - rho * rho) * rng.normal();
    const auto prefill = static_cast<TokenCount>(std::llround(
        std::exp(spec.prefill_log_mu + spec.prefill_log_sigma * zp)));
    const auto decode = static_cast<TokenCount>(std::llround(
        std::exp(spec.decode_log_mu + spec.decode_log_sigma * zd)));
    Request r;
    r.prefill_tokens = std::max(prefill, spec.min_prefill_tokens);
    r.decode_tokens = std::max(decode, spec.min_decode_tokens);
    if (r.total_tokens() <= spec.max_total_tokens) return r;
  }
  throw Error("trace '" + spec.name +
              "': could not sample a request within the token cap — "
              "distribution parameters are inconsistent with the cap");
}

Trace generate_trace(const TraceSpec& trace, const ArrivalSpec& arrival,
                     int num_requests, std::uint64_t seed) {
  VIDUR_CHECK(num_requests >= 0);
  trace.validate();
  arrival.validate();

  Rng rng(seed);
  Trace out;
  out.reserve(static_cast<std::size_t>(num_requests));
  Seconds clock = 0.0;
  for (int i = 0; i < num_requests; ++i) {
    Request r = sample_request(trace, rng);
    r.id = i;
    switch (arrival.kind) {
      case ArrivalKind::kStatic:
        r.arrival_time = 0.0;
        break;
      case ArrivalKind::kPoisson:
        clock += rng.exponential(arrival.qps);
        r.arrival_time = clock;
        break;
      case ArrivalKind::kGamma: {
        const double shape = 1.0 / (arrival.cv * arrival.cv);
        const double scale = arrival.cv * arrival.cv / arrival.qps;
        clock += rng.gamma(shape, scale);
        r.arrival_time = clock;
        break;
      }
    }
    out.push_back(r);
  }
  return out;
}

TraceStats compute_trace_stats(const Trace& trace) {
  VIDUR_CHECK_MSG(!trace.empty(), "cannot compute stats of an empty trace");
  SampleSeries prefill, decode, ratio;
  for (const Request& r : trace) {
    prefill.add(static_cast<double>(r.prefill_tokens));
    decode.add(static_cast<double>(r.decode_tokens));
    ratio.add(static_cast<double>(r.prefill_tokens) /
              static_cast<double>(r.decode_tokens));
  }
  TraceStats s;
  s.prefill_mean = prefill.mean();
  s.prefill_median = prefill.median();
  s.prefill_p90 = prefill.quantile(0.90);
  s.decode_mean = decode.mean();
  s.decode_median = decode.median();
  s.decode_p90 = decode.quantile(0.90);
  s.pd_ratio_median = ratio.median();
  s.pd_ratio_stddev = ratio.stddev();
  return s;
}

TraceStats published_trace_stats(const std::string& name) {
  // Table 1, 4K-capped rows.
  if (name == "chat1m")
    return TraceStats{686, 417, 1678, 197, 139, 484, 2.3, 228};
  if (name == "arxiv4k")
    return TraceStats{2588, 2730, 3702, 291, 167, 372, 15.7, 16};
  if (name == "bwb4k")
    return TraceStats{1067, 1037, 1453, 1612, 1601, 2149, 0.65, 0.37};
  throw Error("no published stats for trace: " + name);
}

}  // namespace vidur
