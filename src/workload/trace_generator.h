// Workload trace generation (Vidur-Bench, paper §5.1 and Table 1).
//
// The paper derives request-length characteristics from three public
// datasets, truncated to 4096 total tokens: LMSys-Chat-1M, Arxiv
// Summarization, and Bilingual-Web-Book. We do not have the datasets, so we
// synthesize requests from lognormal length distributions whose parameters
// are fit to the published Table 1 statistics, applying the same
// max-4K-total-token filter the paper applies. The bench for Table 1
// verifies the generated statistics against the published numbers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "workload/request.h"

namespace vidur {

/// Length-distribution parameters for one workload.
struct TraceSpec {
  std::string name;
  // Lognormal parameters of the *underlying* (pre-filter) distributions.
  double prefill_log_mu = 0.0;
  double prefill_log_sigma = 0.0;
  double decode_log_mu = 0.0;
  double decode_log_sigma = 0.0;
  /// Correlation between log-prefill and log-decode length (e.g. longer
  /// documents have longer summaries/translations).
  double length_correlation = 0.0;
  TokenCount min_prefill_tokens = 4;
  TokenCount min_decode_tokens = 2;
  /// Requests whose total exceeds this are rejected and re-sampled
  /// (the paper's "with max 4k total tokens" construction).
  TokenCount max_total_tokens = 4096;

  /// Throws vidur::Error on degenerate parameters: non-finite or negative
  /// sigmas, correlation outside [-1, 1], non-positive minimum lengths, or
  /// minimums that cannot fit under the total-token cap.
  void validate() const;
};

/// Built-in workloads: "chat1m", "arxiv4k", "bwb4k".
/// Throws vidur::Error for unknown names.
TraceSpec trace_by_name(const std::string& name);

/// All built-in trace names, in paper order.
const std::vector<std::string>& builtin_trace_names();

/// Request arrival pattern.
enum class ArrivalKind {
  kStatic,   ///< all requests arrive at t=0 (offline workload, Fig. 3)
  kPoisson,  ///< Poisson process at a fixed QPS (online workload, Fig. 4)
  kGamma,    ///< gamma-renewal process: bursty arrivals with CV > 1
};

/// Stable name, e.g. "poisson". Inverse: arrival_kind_from_name.
const std::string& arrival_kind_name(ArrivalKind kind);
ArrivalKind arrival_kind_from_name(const std::string& name);

struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::kStatic;
  double qps = 1.0;  ///< mean arrival rate for kPoisson / kGamma
  double cv = 2.0;   ///< coefficient of variation for kGamma

  /// Throws vidur::Error on a non-finite or non-positive rate (kPoisson /
  /// kGamma) or coefficient of variation (kGamma).
  void validate() const;

  bool operator==(const ArrivalSpec&) const = default;
};

/// Sample lengths for one request (arrival time left at 0).
Request sample_request(const TraceSpec& spec, Rng& rng);

/// Generate `num_requests` with lengths from `trace` and arrival times from
/// `arrival`. Request ids are 0..n-1 in arrival order.
Trace generate_trace(const TraceSpec& trace, const ArrivalSpec& arrival,
                     int num_requests, std::uint64_t seed);

/// Summary statistics of a trace (the Table 1 columns).
struct TraceStats {
  double prefill_mean = 0.0;
  double prefill_median = 0.0;
  double prefill_p90 = 0.0;
  double decode_mean = 0.0;
  double decode_median = 0.0;
  double decode_p90 = 0.0;
  double pd_ratio_median = 0.0;
  double pd_ratio_stddev = 0.0;
};

TraceStats compute_trace_stats(const Trace& trace);

/// The published Table 1 row for a built-in workload (for bench comparison).
TraceStats published_trace_stats(const std::string& name);

}  // namespace vidur
