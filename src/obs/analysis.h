// Trace analytics engine (observability subsystem).
//
// Consumes the raw TraceRecord stream of a run — in memory right after the
// simulation, or re-loaded from an exported trace document's "vidur"
// sidecar — and produces an AnalysisReport:
//
//   * per-request latency waterfall: the end-to-end latency of every
//     completed request decomposed exactly into scheduling delay, queue
//     wait, prefill compute, preemption stall, KV-migration stall and
//     decode time. The decomposition is a chronological walk that assigns
//     every inter-event segment to exactly one phase, so the phases sum to
//     the end-to-end latency up to floating-point addition error (the
//     conservation invariant, checked against kConservationTolerance);
//   * SLO-violation blame: for every TTFT/TBT-violating request, the
//     dominant phase (largest contributor) and the marginal phase (the
//     smallest phase whose removal would have met the target), aggregated
//     into ranked bottleneck tables per tenant, pool and replica;
//   * replica timeline audit: per-replica busy/idle accounting from the
//     batch records, with the longest idle gaps classified by cause
//     (warming, draining, admission-limited, no routable work);
//   * queueing decomposition: arrival-to-first-schedule wait percentiles
//     split by cause (parked centrally, priority inversion, pool role
//     mismatch, replica saturation).
//
// The engine is deterministic: the same record stream and options produce a
// bit-identical report (and JSON rendering) on every run.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/stats.h"
#include "common/types.h"
#include "obs/trace.h"

namespace vidur {

/// Phases of the per-request latency waterfall. Every instant of a
/// completed request's lifetime [arrival, completion] belongs to exactly
/// one phase.
enum class LatencyPhase : int {
  kSchedulingDelay = 0,  ///< arrival until the request entered a replica
                         ///< waiting queue (routing / parked centrally)
  kQueueWait,            ///< in a replica waiting queue (before the first
                         ///< batch, or after a migration landed)
  kPrefillCompute,       ///< executing prefill (incl. re-prefill progress
                         ///< after a preemption restart)
  kPreemptionStall,      ///< preempted-and-restarted, waiting to resume
  kKvMigration,          ///< KV-cache hand-off between pools in flight
  kDecode,               ///< decode iterations
};
inline constexpr int kNumLatencyPhases = 6;
const char* latency_phase_name(LatencyPhase phase);

/// Seconds per phase; indexed by LatencyPhase.
using PhaseBreakdown = std::array<double, kNumLatencyPhases>;

/// |sum(phases) - e2e| must stay below this for every request (the
/// waterfall is a partition of the lifetime, so any residue is FP noise).
inline constexpr double kConservationTolerance = 1e-9;

/// Exact latency decomposition of one completed request.
struct RequestWaterfall {
  RequestId id = -1;
  int tenant = -1;             ///< -1: untagged
  ReplicaId first_replica = -1;  ///< where first scheduled
  ReplicaId last_replica = -1;   ///< where completed
  Seconds arrival = 0.0;
  Seconds completed = 0.0;
  Seconds e2e = 0.0;
  Seconds ttft = -1.0;  ///< first prefill completion - arrival
  TokenCount prefill_tokens = 0;
  TokenCount decode_tokens = 0;
  /// Prefill tokens served from the replica's prefix cache (0 when the
  /// request missed, or when prefix caching was off).
  TokenCount cached_tokens = 0;
  int num_restarts = 0;
  /// Fault recovery (schema v4): replica failures this request survived by
  /// a backoff retry, and by an immediate queued-work handoff.
  int num_retries = 0;
  int num_handoffs = 0;
  bool migrated = false;
  PhaseBreakdown phase{};       ///< sums to e2e (conservation invariant)
  PhaseBreakdown ttft_phase{};  ///< segments before the first prefill
                                ///< completion; sums to ttft
  PhaseBreakdown decode_phase{};  ///< segments after it; sums to e2e - ttft
  double conservation_error = 0.0;  ///< |sum(phase) - e2e|
};

/// Which SLO a violation record is about.
enum class SloMetric : int { kTtft = 0, kTbt };
const char* slo_metric_name(SloMetric metric);

/// One request exceeding one SLO target.
struct SloViolation {
  SloMetric metric = SloMetric::kTtft;
  RequestId id = -1;
  int tenant = -1;
  ReplicaId replica = -1;  ///< first replica for TTFT, last for TBT
  double observed = 0.0;   ///< the violating value (TTFT s or mean TBT s)
  double target = 0.0;
  double excess = 0.0;     ///< observed - target
  LatencyPhase dominant = LatencyPhase::kSchedulingDelay;
  /// Smallest phase whose complete removal would have met the target;
  /// meaningful only when has_marginal.
  LatencyPhase marginal = LatencyPhase::kSchedulingDelay;
  bool has_marginal = false;
  /// The violating request survived a replica failure (retried or handed
  /// off) — its excess is blamed on the fault, not the steady state.
  bool fault_impacted = false;
};

/// Violations aggregated over one grouping key (a tenant, pool or replica),
/// ranked by total excess seconds.
struct BlameBucket {
  std::string key;
  int violations = 0;
  double excess_seconds = 0.0;  ///< summed (observed - target)
  PhaseBreakdown blame{};       ///< excess attributed to the dominant phase
  LatencyPhase top_phase = LatencyPhase::kSchedulingDelay;
};

/// Why a replica sat idle during a gap between batches.
enum class IdleGapCause : int {
  kNoRoutableWork = 0,  ///< nothing waiting anywhere for this replica
  kAdmissionLimited,    ///< work was waiting here but the scheduler did
                        ///< not (or could not) admit it into a batch
  kWarming,             ///< replica was provisioning or warming up
  kDraining,            ///< replica was draining toward decommission
};
const char* idle_gap_cause_name(IdleGapCause cause);

struct IdleGap {
  Seconds start = 0.0;
  Seconds end = 0.0;
  IdleGapCause cause = IdleGapCause::kNoRoutableWork;
  Seconds duration() const { return end - start; }
};

/// Busy/idle audit of one replica's timeline over the trace span.
struct ReplicaAudit {
  ReplicaId replica = -1;
  std::string pool;       ///< from AnalysisOptions; empty when unknown
  Seconds span = 0.0;     ///< audited wall-span (whole trace window)
  Seconds busy = 0.0;     ///< union of batch execution intervals
  Seconds idle = 0.0;     ///< span - busy - off
  Seconds off = 0.0;      ///< decommissioned / provisioning time
  Seconds warming = 0.0;  ///< idle time spent warming
  Seconds draining = 0.0; ///< idle time spent draining
  int num_batches = 0;
  int num_gaps = 0;                ///< all idle gaps, not just retained
  std::vector<IdleGap> top_gaps;   ///< longest first, at most top_k
};

/// Why a request waited between arrival and its first batch.
enum class QueueWaitCause : int {
  kReplicaSaturation = 0,  ///< its replica was busy executing other work
  kPriorityInversion,      ///< a later-arriving request was first-scheduled
                           ///< on the same replica during the wait
  kPoolMismatch,           ///< an idle replica existed in a different pool
                           ///< while this request's pool was saturated
  kParkedCentral,          ///< routed nowhere at first (parked centrally)
};
const char* queue_wait_cause_name(QueueWaitCause cause);

struct QueueCauseStats {
  QueueWaitCause cause = QueueWaitCause::kReplicaSaturation;
  Summary wait;  ///< arrival-to-first-schedule seconds
};

/// Prefix-cache consultation totals over one grouping key (a tenant or a
/// pool), or the whole run. Built from kCacheLookup records;
/// hits + misses == lookups by construction.
struct CacheUsage {
  std::string key;                  ///< tenant/pool name; empty for totals
  std::int64_t lookups = 0;
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t cached_tokens = 0;   ///< prefill tokens served from cache
  std::int64_t prefill_tokens = 0;  ///< prompt tokens across lookups
  double hit_rate() const {
    return lookups > 0 ? static_cast<double>(hits) /
                             static_cast<double>(lookups)
                       : 0.0;
  }
};

/// Fault-injection activity visible in the record stream (schema v4), and
/// the share of SLO damage attributable to it. Requests that retried or
/// handed off after a replica failure are "impacted"; their violations and
/// excess seconds are broken out so steady-state bottlenecks are not
/// conflated with fault recovery cost.
struct FaultStats {
  int crashes = 0;          ///< kReplicaFault kills, detail 0
  int spot_kills = 0;       ///< kReplicaFault kills, detail 2
  int spot_notices = 0;     ///< reclaim notices, detail 1
  int degrade_windows = 0;  ///< degrade starts, detail 3
  int retries = 0;          ///< kRequestRetry scheduled (detail 0)
  int handoffs = 0;         ///< kRequestRetry handoffs (detail 2)
  int lost = 0;             ///< retries exhausted (detail 1)
  int shed = 0;             ///< kRequestShed admissions refused
  int impacted_completed = 0;    ///< completed requests that retried/handed
                                 ///< off at least once
  int impacted_violations = 0;   ///< SLO violations among those requests
  double impacted_excess_seconds = 0.0;  ///< their summed SLO excess
  bool any() const {
    return crashes + spot_kills + spot_notices + degrade_windows + retries +
               handoffs + lost + shed >
           0;
  }
};

/// Per-tenant SLO override (falls back to the global targets when absent).
struct TenantSloOverride {
  int tenant = -1;
  std::string name;             ///< display name; "tenant-N" when empty
  Seconds ttft_target = -1.0;   ///< <= 0: inherit global
  Seconds tbt_target = -1.0;
};

/// Context the record stream itself cannot carry: SLO targets, the
/// pool-name-per-replica-slot mapping, display names. Embedded under
/// "context" in exported trace documents so `vidur analyze trace.json`
/// reproduces the in-process report exactly.
struct AnalysisOptions {
  Seconds ttft_target = -1.0;  ///< <= 0: TTFT SLO disabled
  Seconds tbt_target = -1.0;   ///< <= 0: TBT SLO disabled
  std::vector<TenantSloOverride> tenants;
  std::vector<std::string> replica_pools;  ///< pool name by replica slot
  int top_k = 5;  ///< rows retained in ranked tables / gap lists
};

JsonValue analysis_options_json(const AnalysisOptions& options);
AnalysisOptions analysis_options_from_json(const JsonValue& doc);

/// The full analytics report. waterfalls / violations are complete (every
/// analyzed request); only gap lists and rendered tables honor top_k.
struct AnalysisReport {
  std::size_t num_records = 0;
  int num_completed = 0;   ///< requests with both arrival and completion
  int num_incomplete = 0;  ///< arrived but never completed (still running
                           ///< at sim end, or completion not traced)
  int num_truncated = 0;   ///< lifecycle visible but arrival lost to the
                           ///< ring buffer — excluded from the waterfall
  double max_conservation_error = 0.0;
  bool conservation_ok = true;  ///< every request within tolerance

  std::vector<RequestWaterfall> waterfalls;  ///< ascending request id
  PhaseBreakdown phase_totals{};             ///< summed over waterfalls
  std::array<Summary, kNumLatencyPhases> phase_summary{};
  Summary e2e;
  Summary ttft;

  std::vector<SloViolation> violations;  ///< TTFT first, then TBT, by id
  std::vector<BlameBucket> blame_by_tenant;   ///< ranked by excess
  std::vector<BlameBucket> blame_by_pool;
  std::vector<BlameBucket> blame_by_replica;

  std::vector<ReplicaAudit> replicas;  ///< ascending replica id

  std::vector<QueueCauseStats> queue_causes;  ///< enum order, empty
                                              ///< causes omitted

  CacheUsage cache;  ///< run-wide prefix-cache totals (lookups == 0 when
                     ///< caching was off or the trace predates schema v3)
  std::vector<CacheUsage> cache_by_tenant;  ///< ascending key
  std::vector<CacheUsage> cache_by_pool;    ///< ascending key

  FaultStats faults;  ///< all-zero when the run injected no faults (or the
                      ///< trace predates schema v4)

  AnalysisOptions options;  ///< the options the report was built with
};

/// Run the analytics engine over a record stream (any order-preserving
/// export of a TraceRecorder; must be time-ordered, which emission order
/// guarantees). Deterministic: identical inputs give identical reports.
AnalysisReport analyze_trace(const std::vector<TraceRecord>& records,
                             const AnalysisOptions& options = {});

/// Structured rendering (the "analysis" section of result JSON and the
/// output of `vidur analyze --json`).
JsonValue analysis_json(const AnalysisReport& report);

/// Inverse of analysis_json: reload a report from its JSON rendering
/// (`vidur analyze` on a result document that already embeds "analysis").
/// analysis_json(analysis_report_from_json(j)) == j for any j produced by
/// analysis_json. Throws vidur::Error on malformed documents or a schema
/// mismatch.
AnalysisReport analysis_report_from_json(const JsonValue& doc);

/// Human-readable ranked report (the default `vidur analyze` output).
std::string analysis_to_string(const AnalysisReport& report);

}  // namespace vidur
