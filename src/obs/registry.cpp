#include "obs/registry.h"

#include <algorithm>
#include <cmath>

namespace vidur {

namespace {

/// Lower bound of bucket i: kMinSeconds * 2^(i / kBucketsPerOctave).
double bucket_lower(int i) {
  return LatencyHistogram::kMinSeconds *
         std::exp2(static_cast<double>(i) /
                   LatencyHistogram::kBucketsPerOctave);
}

int bucket_of(Seconds seconds) {
  if (seconds <= LatencyHistogram::kMinSeconds) return 0;
  const int i = static_cast<int>(
      std::floor(std::log2(seconds / LatencyHistogram::kMinSeconds) *
                 LatencyHistogram::kBucketsPerOctave));
  return std::clamp(i, 0, LatencyHistogram::kNumBuckets - 1);
}

}  // namespace

void LatencyHistogram::record(Seconds seconds) {
  if (seconds < 0.0 || !std::isfinite(seconds)) return;
  ++buckets_[bucket_of(seconds)];
  ++count_;
  sum_ += seconds;
  max_ = std::max(max_, seconds);
}

double LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += buckets_[i];
    if (static_cast<double>(seen) < target) continue;
    // Interpolate within the bucket; clamp the upper edge to the observed
    // maximum so q=1 returns max_seen(), not a bucket boundary above it.
    const double lo = i == 0 ? 0.0 : bucket_lower(i);
    const double hi = std::min(bucket_lower(i + 1), std::max(max_, lo));
    const double frac =
        (target - before) / static_cast<double>(buckets_[i]);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return max_;
}

std::uint64_t RegistrySnapshot::counter(const std::string& name) const {
  for (const CounterEntry& c : counters)
    if (c.name == name) return c.value;
  return 0;
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  RegistrySnapshot s;
  for (const auto& [name, c] : counters_)
    s.counters.push_back({name, c.value});
  for (const auto& [name, g] : gauges_) s.gauges.push_back({name, g.value});
  for (const auto& [name, h] : histograms_) {
    RegistrySnapshot::HistogramEntry e;
    e.name = name;
    e.count = h.count();
    e.sum = h.sum();
    e.mean = h.mean();
    e.p50 = h.quantile(0.50);
    e.p90 = h.quantile(0.90);
    e.p99 = h.quantile(0.99);
    e.max = h.max_seen();
    s.histograms.push_back(std::move(e));
  }
  return s;
}

}  // namespace vidur
