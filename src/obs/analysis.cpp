#include "obs/analysis.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <map>
#include <sstream>
#include <unordered_map>

#include "cluster/replica_state.h"
#include "common/check.h"

namespace vidur {

namespace {

using Phase = LatencyPhase;

constexpr const char* kPhaseNames[kNumLatencyPhases] = {
    "scheduling_delay", "queue_wait",   "prefill_compute",
    "preemption_stall", "kv_migration", "decode",
};

constexpr const char* kIdleGapCauseNames[] = {
    "no_routable_work", "admission_limited", "warming", "draining"};

constexpr const char* kQueueWaitCauseNames[] = {
    "replica_saturation", "priority_inversion", "pool_mismatch",
    "parked_central"};

struct Interval {
  Seconds start = 0.0;
  Seconds end = 0.0;
};

/// Sort by start and merge overlapping/abutting intervals in place.
void merge_intervals(std::vector<Interval>& v) {
  std::sort(v.begin(), v.end(), [](const Interval& a, const Interval& b) {
    return a.start < b.start || (a.start == b.start && a.end < b.end);
  });
  std::size_t out = 0;
  for (const Interval& iv : v) {
    if (out > 0 && iv.start <= v[out - 1].end) {
      v[out - 1].end = std::max(v[out - 1].end, iv.end);
    } else {
      v[out++] = iv;
    }
  }
  v.resize(out);
}

/// A +1/-1 step of a replica's waiting-request count.
struct WaitStep {
  Seconds time = 0.0;
  int count_after = 0;  ///< running count, filled after collection
  int delta = 0;
};

/// One request's raw lifecycle, gathered in a single pass over the stream.
struct ReqTrack {
  bool has_arrival = false;
  Seconds arrival = 0.0;
  int tenant = -1;
  TokenCount prefill_tokens = 0;
  TokenCount decode_tokens = 0;
  bool parked = false;       ///< first route left it centrally parked
  bool seen_lifecycle = false;
  TokenCount cached_tokens = 0;  ///< prefix tokens served from cache
  int retries = 0;   ///< fault-recovery retries (kRequestRetry detail 0)
  int handoffs = 0;  ///< queued-work handoffs (kRequestRetry detail 2)
  bool shed = false;
  bool lost = false;
  std::vector<const TraceRecord*> events;  ///< post-arrival, stream order
};

/// Queue-wait observation of one first-scheduled request (completed or
/// not), input to the queueing decomposition.
struct QueueObs {
  RequestId id = -1;
  Seconds arrival = 0.0;
  Seconds queue_entry = 0.0;   ///< clamped into [arrival, first_sched]
  Seconds first_sched = 0.0;
  ReplicaId replica = -1;
  bool parked = false;
};

const TenantSloOverride* find_tenant(const AnalysisOptions& opts,
                                     int tenant) {
  for (const TenantSloOverride& t : opts.tenants)
    if (t.tenant == tenant) return &t;
  return nullptr;
}

std::string tenant_key(const AnalysisOptions& opts, int tenant) {
  if (const TenantSloOverride* t = find_tenant(opts, tenant);
      t != nullptr && !t->name.empty())
    return t->name;
  if (tenant < 0) return "untagged";
  return "tenant-" + std::to_string(tenant);
}

std::string pool_key(const AnalysisOptions& opts, ReplicaId replica) {
  const auto idx = static_cast<std::size_t>(replica);
  if (replica >= 0 && idx < opts.replica_pools.size() &&
      !opts.replica_pools[idx].empty())
    return opts.replica_pools[idx];
  return "(unassigned)";
}

Phase arg_max_phase(const PhaseBreakdown& p) {
  int best = 0;
  for (int i = 1; i < kNumLatencyPhases; ++i)
    if (p[static_cast<std::size_t>(i)] > p[static_cast<std::size_t>(best)])
      best = i;
  return static_cast<Phase>(best);
}

/// Smallest positive phase whose removal meets `target` for a violating
/// span: `meets(remaining)` decides. Returns false when no single phase
/// suffices.
bool find_marginal(const PhaseBreakdown& p, double span,
                   const std::function<bool(double)>& meets,
                   Phase* marginal) {
  bool found = false;
  double best = 0.0;
  for (int i = 0; i < kNumLatencyPhases; ++i) {
    const double v = p[static_cast<std::size_t>(i)];
    if (v <= 0.0) continue;
    if (!meets(span - v)) continue;
    if (!found || v < best) {
      found = true;
      best = v;
      *marginal = static_cast<Phase>(i);
    }
  }
  return found;
}

JsonValue summary_json(const Summary& s) {
  JsonValue j = JsonValue::object();
  j.set("count", s.count);
  j.set("mean", s.mean);
  j.set("stddev", s.stddev);
  j.set("min", s.min);
  j.set("p50", s.p50);
  j.set("p90", s.p90);
  j.set("p95", s.p95);
  j.set("p99", s.p99);
  j.set("max", s.max);
  return j;
}

JsonValue phases_json(const PhaseBreakdown& p) {
  JsonValue j = JsonValue::object();
  for (int i = 0; i < kNumLatencyPhases; ++i)
    j.set(kPhaseNames[i], p[static_cast<std::size_t>(i)]);
  return j;
}

std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

Phase phase_from_name(const std::string& name) {
  for (int i = 0; i < kNumLatencyPhases; ++i)
    if (name == kPhaseNames[i]) return static_cast<Phase>(i);
  throw Error("analysis: unknown latency phase '" + name + "'");
}

IdleGapCause idle_gap_cause_from_name(const std::string& name) {
  for (int i = 0; i < 4; ++i)
    if (name == kIdleGapCauseNames[i]) return static_cast<IdleGapCause>(i);
  throw Error("analysis: unknown idle-gap cause '" + name + "'");
}

QueueWaitCause queue_wait_cause_from_name(const std::string& name) {
  for (int i = 0; i < 4; ++i)
    if (name == kQueueWaitCauseNames[i])
      return static_cast<QueueWaitCause>(i);
  throw Error("analysis: unknown queue-wait cause '" + name + "'");
}

Summary summary_from_json(const JsonValue& j) {
  Summary s;
  s.count = static_cast<std::size_t>(j.at("count").as_int());
  s.mean = j.at("mean").as_double();
  s.stddev = j.at("stddev").as_double();
  s.min = j.at("min").as_double();
  s.p50 = j.at("p50").as_double();
  s.p90 = j.at("p90").as_double();
  s.p95 = j.at("p95").as_double();
  s.p99 = j.at("p99").as_double();
  s.max = j.at("max").as_double();
  return s;
}

PhaseBreakdown phases_from_json(const JsonValue& j) {
  PhaseBreakdown p{};
  for (int i = 0; i < kNumLatencyPhases; ++i)
    if (const JsonValue* v = j.find(kPhaseNames[i]))
      p[static_cast<std::size_t>(i)] = v->as_double();
  return p;
}

}  // namespace

const char* latency_phase_name(LatencyPhase phase) {
  const int i = static_cast<int>(phase);
  VIDUR_CHECK(i >= 0 && i < kNumLatencyPhases);
  return kPhaseNames[i];
}

const char* slo_metric_name(SloMetric metric) {
  return metric == SloMetric::kTtft ? "ttft" : "tbt";
}

const char* idle_gap_cause_name(IdleGapCause cause) {
  const int i = static_cast<int>(cause);
  VIDUR_CHECK(i >= 0 && i < 4);
  return kIdleGapCauseNames[i];
}

const char* queue_wait_cause_name(QueueWaitCause cause) {
  const int i = static_cast<int>(cause);
  VIDUR_CHECK(i >= 0 && i < 4);
  return kQueueWaitCauseNames[i];
}

AnalysisReport analyze_trace(const std::vector<TraceRecord>& records,
                             const AnalysisOptions& options) {
  AnalysisReport report;
  report.options = options;
  report.num_records = records.size();
  if (records.empty()) return report;

  const Seconds span_begin = records.front().time;
  const Seconds span_end = records.back().time;

  // ---- pass 1: per-request tracks, batch intervals, replica timelines,
  // waiting-count steps ------------------------------------------------

  std::unordered_map<RequestId, ReqTrack> tracks;
  std::unordered_map<std::int64_t, std::pair<ReplicaId, Seconds>>
      open_batches;  // batch seq -> (replica, start)
  std::map<ReplicaId, std::vector<Interval>> busy;
  std::map<ReplicaId, int> batch_counts;
  std::map<ReplicaId, std::vector<std::pair<Seconds, ReplicaState>>>
      transitions;
  std::map<ReplicaId, std::vector<WaitStep>> wait_steps;
  std::vector<const TraceRecord*> cache_lookups;  ///< stream order

  // Location of each request, for the waiting-count step functions.
  enum class Loc { kNone, kCentral, kWaiting, kRunning, kMigrating };
  struct ReqLoc {
    Loc loc = Loc::kNone;
    ReplicaId replica = -1;
  };
  std::unordered_map<RequestId, ReqLoc> locs;
  const auto step = [&wait_steps](ReplicaId r, Seconds t, int delta) {
    if (r >= 0) wait_steps[r].push_back(WaitStep{t, 0, delta});
  };

  for (const TraceRecord& r : records) {
    switch (r.kind) {
      case TraceEventKind::kArrival: {
        ReqTrack& t = tracks[r.id];
        t.has_arrival = true;
        t.arrival = r.time;
        t.tenant = static_cast<int>(r.detail) - 1;
        t.prefill_tokens = r.a;
        t.decode_tokens = r.b;
        break;
      }
      case TraceEventKind::kRouted: {
        ReqTrack& t = tracks[r.id];
        t.seen_lifecycle = true;
        if (r.replica < 0 && t.events.empty()) t.parked = true;
        t.events.push_back(&r);
        ReqLoc& l = locs[r.id];
        if (l.loc == Loc::kWaiting) step(l.replica, r.time, -1);
        if (r.replica >= 0) {
          l = ReqLoc{Loc::kWaiting, r.replica};
          step(r.replica, r.time, +1);
        } else {
          l = ReqLoc{Loc::kCentral, -1};
        }
        break;
      }
      case TraceEventKind::kScheduled: {
        ReqTrack& t = tracks[r.id];
        t.seen_lifecycle = true;
        t.events.push_back(&r);
        ReqLoc& l = locs[r.id];
        if (l.loc == Loc::kWaiting) step(l.replica, r.time, -1);
        l = ReqLoc{Loc::kRunning, r.replica};
        break;
      }
      case TraceEventKind::kPreempted: {
        ReqTrack& t = tracks[r.id];
        t.seen_lifecycle = true;
        t.events.push_back(&r);
        locs[r.id] = ReqLoc{Loc::kWaiting, r.replica};
        step(r.replica, r.time, +1);
        break;
      }
      case TraceEventKind::kPrefillDone: {
        ReqTrack& t = tracks[r.id];
        t.seen_lifecycle = true;
        t.events.push_back(&r);
        break;
      }
      case TraceEventKind::kMigrateStart: {
        ReqTrack& t = tracks[r.id];
        t.seen_lifecycle = true;
        t.events.push_back(&r);
        ReqLoc& l = locs[r.id];
        if (l.loc == Loc::kWaiting) step(l.replica, r.time, -1);
        l = ReqLoc{Loc::kMigrating, -1};
        break;
      }
      case TraceEventKind::kMigrateEnd: {
        ReqTrack& t = tracks[r.id];
        t.seen_lifecycle = true;
        t.events.push_back(&r);
        locs[r.id] = ReqLoc{Loc::kWaiting, r.replica};
        step(r.replica, r.time, +1);
        break;
      }
      case TraceEventKind::kCompleted: {
        ReqTrack& t = tracks[r.id];
        t.seen_lifecycle = true;
        t.events.push_back(&r);
        ReqLoc& l = locs[r.id];
        if (l.loc == Loc::kWaiting) step(l.replica, r.time, -1);
        l = ReqLoc{Loc::kNone, -1};
        break;
      }
      case TraceEventKind::kBatchStart:
        open_batches[r.id] = {r.replica, r.time};
        break;
      case TraceEventKind::kBatchEnd: {
        const auto it = open_batches.find(r.id);
        if (it != open_batches.end()) {
          busy[it->second.first].push_back(
              Interval{it->second.second, r.time});
          batch_counts[it->second.first] += 1;
          open_batches.erase(it);
        }
        break;
      }
      case TraceEventKind::kReplicaTransition:
        transitions[r.replica].push_back(
            {r.time, static_cast<ReplicaState>(r.detail)});
        break;
      case TraceEventKind::kScaleDecision:
        break;
      case TraceEventKind::kCacheLookup:
        // Cache consultations sit outside the lifecycle walk (they are
        // instantaneous and never own a latency segment), so they must not
        // enter `events` — the conservation invariant is untouched.
        tracks[r.id].cached_tokens += r.a;
        cache_lookups.push_back(&r);
        break;
      case TraceEventKind::kReplicaFault:
        switch (r.detail) {
          case 0: report.faults.crashes += 1; break;
          case 1: report.faults.spot_notices += 1; break;
          case 2: report.faults.spot_kills += 1; break;
          case 3: report.faults.degrade_windows += 1; break;
          default: break;  // detail 4 (degrade end) carries no new fact
        }
        break;
      case TraceEventKind::kRequestRetry: {
        ReqTrack& t = tracks[r.id];
        t.seen_lifecycle = true;
        // The failure evicts the request from its replica: it owns a
        // latency segment (the restart stall), so it joins the walk.
        t.events.push_back(&r);
        if (r.detail == 0) {
          t.retries += 1;
          report.faults.retries += 1;
        } else if (r.detail == 2) {
          t.handoffs += 1;
          report.faults.handoffs += 1;
        } else {
          t.lost = true;
          report.faults.lost += 1;
        }
        ReqLoc& l = locs[r.id];
        if (l.loc == Loc::kWaiting) step(l.replica, r.time, -1);
        l = ReqLoc{Loc::kNone, -1};
        break;
      }
      case TraceEventKind::kRequestShed: {
        ReqTrack& t = tracks[r.id];
        t.seen_lifecycle = true;
        t.shed = true;
        report.faults.shed += 1;
        ReqLoc& l = locs[r.id];
        if (l.loc == Loc::kWaiting) step(l.replica, r.time, -1);
        l = ReqLoc{Loc::kNone, -1};
        break;
      }
    }
  }

  // Running waiting counts (clamped at zero: a -1 whose +1 was lost to the
  // ring buffer must not wedge the count negative).
  for (auto& [replica, steps] : wait_steps) {
    int count = 0;
    for (WaitStep& s : steps) {
      count = std::max(0, count + s.delta);
      s.count_after = count;
    }
  }

  // ---- pass 2: per-request waterfall walk -----------------------------

  std::vector<RequestId> ids;
  ids.reserve(tracks.size());
  for (const auto& [id, t] : tracks) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  std::vector<QueueObs> queue_obs;
  std::array<SampleSeries, kNumLatencyPhases> phase_series;
  SampleSeries e2e_series;
  SampleSeries ttft_series;

  for (const RequestId id : ids) {
    const ReqTrack& t = tracks[id];
    if (!t.has_arrival) {
      // Lifecycle events whose arrival the ring buffer dropped: the walk
      // has no origin, so the request cannot be attributed.
      if (t.seen_lifecycle) report.num_truncated += 1;
      continue;
    }

    RequestWaterfall wf;
    wf.id = id;
    wf.tenant = t.tenant;
    wf.arrival = t.arrival;
    wf.prefill_tokens = t.prefill_tokens;
    wf.decode_tokens = t.decode_tokens;
    wf.cached_tokens = t.cached_tokens;
    wf.num_retries = t.retries;
    wf.num_handoffs = t.handoffs;

    Seconds cursor = t.arrival;
    Phase state = Phase::kSchedulingDelay;
    bool ttft_seen = false;
    bool prefill_pending = true;
    bool completed = false;
    bool has_sched = false;
    QueueObs qo;

    const auto attribute = [&](Seconds upto, Phase phase) {
      const double d = std::max(0.0, upto - cursor);
      wf.phase[static_cast<std::size_t>(phase)] += d;
      (ttft_seen ? wf.decode_phase
                 : wf.ttft_phase)[static_cast<std::size_t>(phase)] += d;
      cursor = std::max(cursor, upto);
    };

    for (const TraceRecord* rp : t.events) {
      const TraceRecord& r = *rp;
      switch (r.kind) {
        case TraceEventKind::kRouted:
          break;  // routing is instantaneous; parked time stays in
                  // scheduling delay until the first schedule
        case TraceEventKind::kScheduled:
          if (r.detail == 0 && !has_sched) {
            has_sched = true;
            wf.first_replica = r.replica;
            if (state == Phase::kSchedulingDelay) {
              // Split at the queue-entry timestamp the record carries;
              // unknown (-1) means the whole span counts as queue wait.
              Seconds q = r.a >= 0 ? static_cast<double>(r.a) * 1e-9
                                   : cursor;
              q = std::clamp(q, cursor, r.time);
              attribute(q, Phase::kSchedulingDelay);
              qo = QueueObs{id, t.arrival, q, r.time, r.replica, t.parked};
              attribute(r.time, Phase::kQueueWait);
            } else {
              // Preempted before its first batch: the stall owns the span.
              attribute(r.time, state);
              qo = QueueObs{id,        t.arrival, cursor,
                            r.time,    r.replica, t.parked};
            }
            state = Phase::kPrefillCompute;
          } else {
            // Resume from a waiting queue (preemption restart or migration
            // landing): close the stall / queue-wait interval.
            attribute(r.time, state);
            state = prefill_pending ? Phase::kPrefillCompute
                                    : Phase::kDecode;
          }
          break;
        case TraceEventKind::kPreempted:
          attribute(r.time, state);
          state = Phase::kPreemptionStall;
          prefill_pending = true;  // vLLM restart recomputes from scratch
          break;
        case TraceEventKind::kPrefillDone:
          attribute(r.time, state);
          prefill_pending = false;
          if (!ttft_seen) {
            wf.ttft = r.time - t.arrival;
            ttft_seen = true;
          }
          state = Phase::kDecode;
          break;
        case TraceEventKind::kMigrateStart:
          attribute(r.time, state);
          state = Phase::kKvMigration;
          wf.migrated = true;
          break;
        case TraceEventKind::kMigrateEnd:
          attribute(r.time, Phase::kKvMigration);
          state = Phase::kQueueWait;  // waiting at the decode replica
          break;
        case TraceEventKind::kRequestRetry:
          // The replica failure ends whatever the request was doing; the
          // span until it is next scheduled (backoff, re-route, re-queue)
          // is a restart stall. A true retry recomputes prefill from
          // scratch; a handoff keeps whatever progress travels with it.
          attribute(r.time, state);
          state = Phase::kPreemptionStall;
          if (r.detail == 0) prefill_pending = true;
          break;
        case TraceEventKind::kCompleted:
          attribute(r.time, state);
          wf.completed = r.time;
          wf.e2e = r.time - t.arrival;
          wf.last_replica = r.replica;
          wf.num_restarts = static_cast<int>(r.a);
          completed = true;
          break;
        default:
          break;
      }
      if (completed) break;
    }

    if (has_sched) queue_obs.push_back(qo);
    if (!completed) {
      report.num_incomplete += 1;
      continue;
    }

    double sum = 0.0;
    for (const double v : wf.phase) sum += v;
    wf.conservation_error = std::abs(sum - wf.e2e);
    report.max_conservation_error =
        std::max(report.max_conservation_error, wf.conservation_error);

    for (int i = 0; i < kNumLatencyPhases; ++i) {
      const double v = wf.phase[static_cast<std::size_t>(i)];
      report.phase_totals[static_cast<std::size_t>(i)] += v;
      phase_series[static_cast<std::size_t>(i)].add(v);
    }
    e2e_series.add(wf.e2e);
    if (wf.ttft >= 0) ttft_series.add(wf.ttft);
    report.num_completed += 1;
    if (wf.num_retries > 0 || wf.num_handoffs > 0)
      report.faults.impacted_completed += 1;
    report.waterfalls.push_back(std::move(wf));
  }

  report.conservation_ok =
      report.max_conservation_error <= kConservationTolerance;
  for (int i = 0; i < kNumLatencyPhases; ++i)
    report.phase_summary[static_cast<std::size_t>(i)] =
        Summary::of(phase_series[static_cast<std::size_t>(i)]);
  report.e2e = Summary::of(e2e_series);
  report.ttft = Summary::of(ttft_series);

  // ---- replica timeline audit -----------------------------------------

  // Replicas = everything that ran a batch, transitioned, or was scheduled
  // onto (so idle-but-known replicas are audited too).
  std::map<ReplicaId, bool> replica_set;
  for (const auto& [rep, v] : busy) replica_set[rep] = true;
  for (const auto& [rep, v] : transitions) replica_set[rep] = true;
  for (const auto& [rep, v] : wait_steps) replica_set[rep] = true;

  for (auto& [rep, ivs] : busy) merge_intervals(ivs);

  // State intervals per replica over [span_begin, span_end].
  const auto state_intervals = [&](ReplicaId rep) {
    std::vector<std::pair<Interval, ReplicaState>> out;
    const auto it = transitions.find(rep);
    if (it == transitions.end() || it->second.empty()) {
      out.push_back({{span_begin, span_end}, ReplicaState::kActive});
      return out;
    }
    const auto& tl = it->second;
    // Initial state: a first transition into draining / decommissioned
    // implies the replica started active; a scale-up path (provisioning /
    // warming / active) implies it started decommissioned.
    const ReplicaState first_to = tl.front().second;
    ReplicaState cur = (first_to == ReplicaState::kDraining ||
                        first_to == ReplicaState::kDecommissioned)
                           ? ReplicaState::kActive
                           : ReplicaState::kDecommissioned;
    Seconds cursor = span_begin;
    for (const auto& [time, to] : tl) {
      const Seconds t = std::clamp(time, span_begin, span_end);
      if (t > cursor) out.push_back({{cursor, t}, cur});
      cursor = std::max(cursor, t);
      cur = to;
    }
    if (span_end > cursor) out.push_back({{cursor, span_end}, cur});
    return out;
  };

  // Was any request waiting on `rep` at any point inside (g0, g1)?
  const auto any_waiting = [&](ReplicaId rep, Seconds g0, Seconds g1) {
    const auto it = wait_steps.find(rep);
    if (it == wait_steps.end()) return false;
    const auto& steps = it->second;
    // Count as of g0: the last step at time <= g0.
    auto after = std::upper_bound(
        steps.begin(), steps.end(), g0,
        [](Seconds t, const WaitStep& s) { return t < s.time; });
    if (after != steps.begin() && std::prev(after)->count_after > 0)
      return true;
    for (auto s = after; s != steps.end() && s->time < g1; ++s)
      if (s->count_after > 0) return true;
    return false;
  };

  // Idle-while-active intervals per replica, reused by the pool-mismatch
  // queue-cause classifier below.
  std::map<ReplicaId, std::vector<Interval>> idle_active;

  for (const auto& entry : replica_set) {
    const ReplicaId rep = entry.first;
    ReplicaAudit audit;
    audit.replica = rep;
    audit.pool = pool_key(options, rep);
    if (audit.pool == "(unassigned)") audit.pool.clear();
    audit.span = span_end - span_begin;
    const auto bit = busy.find(rep);
    static const std::vector<Interval> kNoBusy;
    const std::vector<Interval>& b =
        bit == busy.end() ? kNoBusy : bit->second;
    for (const Interval& iv : b) audit.busy += iv.end - iv.start;
    audit.num_batches =
        batch_counts.count(rep) ? batch_counts.at(rep) : 0;

    // Idle = complement of busy, split at replica-state boundaries and
    // classified per piece.
    std::vector<Interval> gaps;
    Seconds cursor = span_begin;
    for (const Interval& iv : b) {
      if (iv.start > cursor) gaps.push_back({cursor, iv.start});
      cursor = std::max(cursor, iv.end);
    }
    if (span_end > cursor) gaps.push_back({cursor, span_end});

    const auto states = state_intervals(rep);
    std::vector<IdleGap> classified;
    for (const Interval& g : gaps) {
      for (const auto& [siv, sstate] : states) {
        const Seconds s0 = std::max(g.start, siv.start);
        const Seconds s1 = std::min(g.end, siv.end);
        if (s1 <= s0) continue;
        switch (sstate) {
          case ReplicaState::kDecommissioned:
          case ReplicaState::kProvisioning:
            audit.off += s1 - s0;
            break;
          case ReplicaState::kWarming:
            audit.warming += s1 - s0;
            audit.idle += s1 - s0;
            classified.push_back({s0, s1, IdleGapCause::kWarming});
            break;
          case ReplicaState::kDraining:
            audit.draining += s1 - s0;
            audit.idle += s1 - s0;
            classified.push_back({s0, s1, IdleGapCause::kDraining});
            break;
          case ReplicaState::kActive: {
            audit.idle += s1 - s0;
            const IdleGapCause cause = any_waiting(rep, s0, s1)
                                           ? IdleGapCause::kAdmissionLimited
                                           : IdleGapCause::kNoRoutableWork;
            classified.push_back({s0, s1, cause});
            if (cause == IdleGapCause::kNoRoutableWork)
              idle_active[rep].push_back({s0, s1});
            break;
          }
        }
      }
    }
    audit.num_gaps = static_cast<int>(classified.size());
    std::stable_sort(classified.begin(), classified.end(),
                     [](const IdleGap& a, const IdleGap& b) {
                       return a.duration() > b.duration();
                     });
    const auto keep = std::min<std::size_t>(
        classified.size(),
        static_cast<std::size_t>(std::max(0, options.top_k)));
    classified.resize(keep);
    audit.top_gaps = std::move(classified);
    report.replicas.push_back(std::move(audit));
  }

  // ---- queueing decomposition -----------------------------------------

  // First-schedule events per replica, sorted by time, for the priority-
  // inversion check.
  std::map<ReplicaId, std::vector<std::pair<Seconds, Seconds>>>
      sched_by_replica;  // (first_sched, arrival)
  for (const QueueObs& q : queue_obs)
    sched_by_replica[q.replica].push_back({q.first_sched, q.arrival});
  for (auto& [rep, v] : sched_by_replica) std::sort(v.begin(), v.end());

  const auto later_arrival_scheduled = [&](const QueueObs& q) {
    const auto it = sched_by_replica.find(q.replica);
    if (it == sched_by_replica.end()) return false;
    const auto& v = it->second;
    auto lo = std::upper_bound(
        v.begin(), v.end(),
        std::make_pair(q.queue_entry,
                       std::numeric_limits<double>::infinity()));
    for (auto p = lo; p != v.end() && p->first < q.first_sched; ++p)
      if (p->second > q.arrival) return true;
    return false;
  };

  const auto other_pool_was_idle = [&](const QueueObs& q) {
    if (options.replica_pools.empty()) return false;
    const std::string mine = pool_key(options, q.replica);
    for (const auto& [rep, ivs] : idle_active) {
      if (rep == q.replica || pool_key(options, rep) == mine) continue;
      for (const Interval& iv : ivs) {
        if (iv.start >= q.first_sched) break;
        if (iv.end > q.queue_entry) return true;
      }
    }
    return false;
  };

  std::array<SampleSeries, 4> cause_series;
  for (const QueueObs& q : queue_obs) {
    QueueWaitCause cause = QueueWaitCause::kReplicaSaturation;
    if (q.parked) {
      cause = QueueWaitCause::kParkedCentral;
    } else if (later_arrival_scheduled(q)) {
      cause = QueueWaitCause::kPriorityInversion;
    } else if (other_pool_was_idle(q)) {
      cause = QueueWaitCause::kPoolMismatch;
    }
    cause_series[static_cast<std::size_t>(cause)].add(q.first_sched -
                                                      q.arrival);
  }
  for (int c = 0; c < 4; ++c) {
    if (cause_series[static_cast<std::size_t>(c)].empty()) continue;
    QueueCauseStats stats;
    stats.cause = static_cast<QueueWaitCause>(c);
    stats.wait = Summary::of(cause_series[static_cast<std::size_t>(c)]);
    report.queue_causes.push_back(stats);
  }

  // ---- SLO violations and blame ---------------------------------------

  std::map<std::string, BlameBucket> by_tenant, by_pool, by_replica;
  const auto blame = [](std::map<std::string, BlameBucket>& m,
                        const std::string& key, const SloViolation& v) {
    BlameBucket& b = m[key];
    b.key = key;
    b.violations += 1;
    b.excess_seconds += v.excess;
    b.blame[static_cast<std::size_t>(v.dominant)] += v.excess;
  };

  std::vector<SloViolation> ttft_violations, tbt_violations;
  for (const RequestWaterfall& wf : report.waterfalls) {
    const TenantSloOverride* ov = find_tenant(options, wf.tenant);
    const Seconds ttft_target =
        ov != nullptr && ov->ttft_target > 0 ? ov->ttft_target
                                             : options.ttft_target;
    const Seconds tbt_target =
        ov != nullptr && ov->tbt_target > 0 ? ov->tbt_target
                                            : options.tbt_target;

    const bool impacted = wf.num_retries > 0 || wf.num_handoffs > 0;
    if (ttft_target > 0 && wf.ttft > ttft_target) {
      SloViolation v;
      v.metric = SloMetric::kTtft;
      v.id = wf.id;
      v.tenant = wf.tenant;
      v.replica = wf.first_replica;
      v.observed = wf.ttft;
      v.target = ttft_target;
      v.excess = wf.ttft - ttft_target;
      v.fault_impacted = impacted;
      v.dominant = arg_max_phase(wf.ttft_phase);
      v.has_marginal = find_marginal(
          wf.ttft_phase, wf.ttft,
          [&](double remaining) { return remaining <= ttft_target; },
          &v.marginal);
      ttft_violations.push_back(v);
    }
    if (tbt_target > 0 && wf.decode_tokens > 1 && wf.ttft >= 0) {
      const double gaps = static_cast<double>(wf.decode_tokens - 1);
      const double decode_span = wf.e2e - wf.ttft;
      const double mean_tbt = decode_span / gaps;
      if (mean_tbt > tbt_target) {
        SloViolation v;
        v.metric = SloMetric::kTbt;
        v.id = wf.id;
        v.tenant = wf.tenant;
        v.replica = wf.last_replica;
        v.observed = mean_tbt;
        v.target = tbt_target;
        v.excess = mean_tbt - tbt_target;
        v.fault_impacted = impacted;
        v.dominant = arg_max_phase(wf.decode_phase);
        v.has_marginal = find_marginal(
            wf.decode_phase, decode_span,
            [&](double remaining) {
              return remaining / gaps <= tbt_target;
            },
            &v.marginal);
        tbt_violations.push_back(v);
      }
    }
  }
  for (const SloViolation& v : ttft_violations) {
    blame(by_tenant, tenant_key(options, v.tenant), v);
    blame(by_pool, pool_key(options, v.replica), v);
    blame(by_replica, "replica-" + std::to_string(v.replica), v);
    if (v.fault_impacted) {
      report.faults.impacted_violations += 1;
      report.faults.impacted_excess_seconds += v.excess;
    }
    report.violations.push_back(v);
  }
  for (const SloViolation& v : tbt_violations) {
    blame(by_tenant, tenant_key(options, v.tenant), v);
    blame(by_pool, pool_key(options, v.replica), v);
    blame(by_replica, "replica-" + std::to_string(v.replica), v);
    if (v.fault_impacted) {
      report.faults.impacted_violations += 1;
      report.faults.impacted_excess_seconds += v.excess;
    }
    report.violations.push_back(v);
  }

  const auto rank = [](std::map<std::string, BlameBucket> m) {
    std::vector<BlameBucket> out;
    out.reserve(m.size());
    for (auto& [key, b] : m) {
      b.top_phase = arg_max_phase(b.blame);
      out.push_back(std::move(b));
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const BlameBucket& a, const BlameBucket& b) {
                       return a.excess_seconds > b.excess_seconds;
                     });
    return out;
  };
  report.blame_by_tenant = rank(std::move(by_tenant));
  report.blame_by_pool = rank(std::move(by_pool));
  report.blame_by_replica = rank(std::move(by_replica));

  // ---- prefix-cache usage ---------------------------------------------

  if (!cache_lookups.empty()) {
    std::map<std::string, CacheUsage> cache_by_tenant, cache_by_pool;
    const auto count = [](CacheUsage& u, const TraceRecord& r) {
      u.lookups += 1;
      (r.detail != 0 ? u.hits : u.misses) += 1;
      u.cached_tokens += r.a;
      u.prefill_tokens += r.b;
    };
    for (const TraceRecord* rp : cache_lookups) {
      const TraceRecord& r = *rp;
      count(report.cache, r);
      const auto it = tracks.find(r.id);
      const int tenant =
          it != tracks.end() && it->second.has_arrival ? it->second.tenant
                                                       : -1;
      count(cache_by_tenant[tenant_key(options, tenant)], r);
      count(cache_by_pool[pool_key(options, r.replica)], r);
    }
    const auto flatten = [](std::map<std::string, CacheUsage> m) {
      std::vector<CacheUsage> out;
      out.reserve(m.size());
      for (auto& [key, u] : m) {
        u.key = key;
        out.push_back(std::move(u));
      }
      return out;
    };
    report.cache_by_tenant = flatten(std::move(cache_by_tenant));
    report.cache_by_pool = flatten(std::move(cache_by_pool));
  }

  return report;
}

JsonValue analysis_options_json(const AnalysisOptions& o) {
  JsonValue j = JsonValue::object();
  j.set("ttft_target", o.ttft_target);
  j.set("tbt_target", o.tbt_target);
  j.set("top_k", o.top_k);
  if (!o.tenants.empty()) {
    JsonValue arr = JsonValue::array();
    for (const TenantSloOverride& t : o.tenants) {
      JsonValue tj = JsonValue::object();
      tj.set("tenant", t.tenant);
      tj.set("name", t.name);
      tj.set("ttft_target", t.ttft_target);
      tj.set("tbt_target", t.tbt_target);
      arr.push(std::move(tj));
    }
    j.set("tenants", std::move(arr));
  }
  if (!o.replica_pools.empty()) {
    JsonValue arr = JsonValue::array();
    for (const std::string& p : o.replica_pools) arr.push(p);
    j.set("replica_pools", std::move(arr));
  }
  return j;
}

AnalysisOptions analysis_options_from_json(const JsonValue& doc) {
  VIDUR_CHECK_MSG(doc.is_object(),
                  "analysis options: expected a JSON object");
  AnalysisOptions o;
  if (const JsonValue* v = doc.find("ttft_target"))
    o.ttft_target = v->as_double();
  if (const JsonValue* v = doc.find("tbt_target"))
    o.tbt_target = v->as_double();
  if (const JsonValue* v = doc.find("top_k"))
    o.top_k = static_cast<int>(v->as_int());
  if (const JsonValue* v = doc.find("tenants")) {
    for (const JsonValue& tj : v->items()) {
      TenantSloOverride t;
      t.tenant = static_cast<int>(tj.at("tenant").as_int());
      t.name = tj.at("name").as_string();
      t.ttft_target = tj.at("ttft_target").as_double();
      t.tbt_target = tj.at("tbt_target").as_double();
      o.tenants.push_back(std::move(t));
    }
  }
  if (const JsonValue* v = doc.find("replica_pools")) {
    for (const JsonValue& p : v->items())
      o.replica_pools.push_back(p.as_string());
  }
  return o;
}

JsonValue analysis_json(const AnalysisReport& r) {
  JsonValue j = JsonValue::object();
  j.set("schema", kTraceSchemaVersion);

  JsonValue req = JsonValue::object();
  req.set("records", r.num_records);
  req.set("completed", r.num_completed);
  req.set("incomplete", r.num_incomplete);
  req.set("truncated", r.num_truncated);
  j.set("requests", std::move(req));

  JsonValue cons = JsonValue::object();
  cons.set("max_error", r.max_conservation_error);
  cons.set("tolerance", kConservationTolerance);
  cons.set("ok", r.conservation_ok);
  j.set("conservation", std::move(cons));

  JsonValue phases = JsonValue::object();
  for (int i = 0; i < kNumLatencyPhases; ++i) {
    JsonValue pj = summary_json(r.phase_summary[static_cast<std::size_t>(i)]);
    pj.set("total", r.phase_totals[static_cast<std::size_t>(i)]);
    phases.set(kPhaseNames[i], std::move(pj));
  }
  j.set("phases", std::move(phases));

  JsonValue lat = JsonValue::object();
  lat.set("e2e", summary_json(r.e2e));
  lat.set("ttft", summary_json(r.ttft));
  j.set("latency", std::move(lat));

  JsonValue wfs = JsonValue::array();
  for (const RequestWaterfall& wf : r.waterfalls) {
    JsonValue w = JsonValue::object();
    w.set("id", wf.id);
    if (wf.tenant >= 0) w.set("tenant", wf.tenant);
    w.set("replica", wf.last_replica);
    if (wf.first_replica != wf.last_replica)
      w.set("first_replica", wf.first_replica);
    w.set("arrival", wf.arrival);
    w.set("e2e", wf.e2e);
    w.set("ttft", wf.ttft);
    w.set("prefill_tokens", wf.prefill_tokens);
    w.set("decode_tokens", wf.decode_tokens);
    if (wf.cached_tokens > 0) w.set("cached_tokens", wf.cached_tokens);
    if (wf.num_restarts > 0) w.set("restarts", wf.num_restarts);
    if (wf.num_retries > 0) w.set("retries", wf.num_retries);
    if (wf.num_handoffs > 0) w.set("handoffs", wf.num_handoffs);
    if (wf.migrated) w.set("migrated", true);
    w.set("phases", phases_json(wf.phase));
    w.set("ttft_phases", phases_json(wf.ttft_phase));
    w.set("conservation_error", wf.conservation_error);
    wfs.push(std::move(w));
  }
  j.set("waterfalls", std::move(wfs));

  JsonValue slo = JsonValue::object();
  slo.set("ttft_target", r.options.ttft_target);
  slo.set("tbt_target", r.options.tbt_target);
  JsonValue viols = JsonValue::array();
  for (const SloViolation& v : r.violations) {
    JsonValue vj = JsonValue::object();
    vj.set("metric", slo_metric_name(v.metric));
    vj.set("id", v.id);
    if (v.tenant >= 0) vj.set("tenant", v.tenant);
    vj.set("replica", v.replica);
    vj.set("observed", v.observed);
    vj.set("target", v.target);
    vj.set("excess", v.excess);
    vj.set("dominant_phase", latency_phase_name(v.dominant));
    if (v.has_marginal)
      vj.set("marginal_phase", latency_phase_name(v.marginal));
    if (v.fault_impacted) vj.set("fault_impacted", true);
    viols.push(std::move(vj));
  }
  slo.set("violations", std::move(viols));
  const auto blame_json = [](const std::vector<BlameBucket>& buckets) {
    JsonValue arr = JsonValue::array();
    for (const BlameBucket& b : buckets) {
      JsonValue bj = JsonValue::object();
      bj.set("key", b.key);
      bj.set("violations", b.violations);
      bj.set("excess_seconds", b.excess_seconds);
      bj.set("top_phase", latency_phase_name(b.top_phase));
      bj.set("blame", [&] {
        JsonValue p = JsonValue::object();
        for (int i = 0; i < kNumLatencyPhases; ++i)
          if (b.blame[static_cast<std::size_t>(i)] > 0)
            p.set(kPhaseNames[i], b.blame[static_cast<std::size_t>(i)]);
        return p;
      }());
      arr.push(std::move(bj));
    }
    return arr;
  };
  JsonValue blame = JsonValue::object();
  blame.set("by_tenant", blame_json(r.blame_by_tenant));
  blame.set("by_pool", blame_json(r.blame_by_pool));
  blame.set("by_replica", blame_json(r.blame_by_replica));
  slo.set("blame", std::move(blame));
  j.set("slo", std::move(slo));

  JsonValue reps = JsonValue::array();
  for (const ReplicaAudit& a : r.replicas) {
    JsonValue aj = JsonValue::object();
    aj.set("replica", a.replica);
    if (!a.pool.empty()) aj.set("pool", a.pool);
    aj.set("span", a.span);
    aj.set("busy", a.busy);
    aj.set("idle", a.idle);
    aj.set("off", a.off);
    if (a.warming > 0) aj.set("warming", a.warming);
    if (a.draining > 0) aj.set("draining", a.draining);
    aj.set("batches", a.num_batches);
    aj.set("gaps", a.num_gaps);
    JsonValue gaps = JsonValue::array();
    for (const IdleGap& g : a.top_gaps) {
      JsonValue gj = JsonValue::object();
      gj.set("start", g.start);
      gj.set("end", g.end);
      gj.set("duration", g.duration());
      gj.set("cause", idle_gap_cause_name(g.cause));
      gaps.push(std::move(gj));
    }
    aj.set("top_gaps", std::move(gaps));
    reps.push(std::move(aj));
  }
  j.set("replicas", std::move(reps));

  JsonValue queueing = JsonValue::array();
  for (const QueueCauseStats& q : r.queue_causes) {
    JsonValue qj = JsonValue::object();
    qj.set("cause", queue_wait_cause_name(q.cause));
    qj.set("wait", summary_json(q.wait));
    queueing.push(std::move(qj));
  }
  j.set("queueing", std::move(queueing));

  // Emitted only when the stream carried cache lookups, so reports of
  // cache-off runs stay byte-identical to pre-v3 renderings.
  if (r.cache.lookups > 0) {
    const auto usage_json = [](const CacheUsage& u) {
      JsonValue c = JsonValue::object();
      if (!u.key.empty()) c.set("key", u.key);
      c.set("lookups", u.lookups);
      c.set("hits", u.hits);
      c.set("misses", u.misses);
      c.set("hit_rate", u.hit_rate());
      c.set("cached_tokens", u.cached_tokens);
      c.set("prefill_tokens", u.prefill_tokens);
      return c;
    };
    JsonValue cache = usage_json(r.cache);
    const auto slices_json = [&](const std::vector<CacheUsage>& v) {
      JsonValue arr = JsonValue::array();
      for (const CacheUsage& u : v) arr.push(usage_json(u));
      return arr;
    };
    if (!r.cache_by_tenant.empty())
      cache.set("by_tenant", slices_json(r.cache_by_tenant));
    if (!r.cache_by_pool.empty())
      cache.set("by_pool", slices_json(r.cache_by_pool));
    j.set("cache", std::move(cache));
  }

  // Emitted only when the stream carried fault records, so reports of
  // fault-free runs stay byte-identical to pre-v4 renderings.
  if (r.faults.any()) {
    JsonValue fj = JsonValue::object();
    fj.set("crashes", r.faults.crashes);
    fj.set("spot_kills", r.faults.spot_kills);
    fj.set("spot_notices", r.faults.spot_notices);
    fj.set("degrade_windows", r.faults.degrade_windows);
    fj.set("retries", r.faults.retries);
    fj.set("handoffs", r.faults.handoffs);
    fj.set("lost", r.faults.lost);
    fj.set("shed", r.faults.shed);
    fj.set("impacted_completed", r.faults.impacted_completed);
    fj.set("impacted_violations", r.faults.impacted_violations);
    fj.set("impacted_excess_seconds", r.faults.impacted_excess_seconds);
    j.set("faults", std::move(fj));
  }

  j.set("context", analysis_options_json(r.options));
  return j;
}

AnalysisReport analysis_report_from_json(const JsonValue& doc) {
  VIDUR_CHECK_MSG(doc.is_object(),
                  "analysis report: expected a JSON object");
  const JsonValue& schema = doc.at("schema");
  VIDUR_CHECK_MSG(schema.is_int() && schema.as_int() == kTraceSchemaVersion,
                  "analysis report: schema "
                      << (schema.is_int() ? std::to_string(schema.as_int())
                                          : schema.dump())
                      << " does not match this build's trace schema "
                      << kTraceSchemaVersion);
  AnalysisReport r;
  if (const JsonValue* ctx = doc.find("context"))
    r.options = analysis_options_from_json(*ctx);

  const JsonValue& req = doc.at("requests");
  r.num_records = static_cast<std::size_t>(req.at("records").as_int());
  r.num_completed = static_cast<int>(req.at("completed").as_int());
  r.num_incomplete = static_cast<int>(req.at("incomplete").as_int());
  r.num_truncated = static_cast<int>(req.at("truncated").as_int());

  const JsonValue& cons = doc.at("conservation");
  r.max_conservation_error = cons.at("max_error").as_double();
  r.conservation_ok = cons.at("ok").as_bool();

  const JsonValue& phases = doc.at("phases");
  for (int i = 0; i < kNumLatencyPhases; ++i) {
    const JsonValue& pj = phases.at(kPhaseNames[i]);
    r.phase_summary[static_cast<std::size_t>(i)] = summary_from_json(pj);
    r.phase_totals[static_cast<std::size_t>(i)] =
        pj.at("total").as_double();
  }
  const JsonValue& lat = doc.at("latency");
  r.e2e = summary_from_json(lat.at("e2e"));
  r.ttft = summary_from_json(lat.at("ttft"));

  for (const JsonValue& w : doc.at("waterfalls").items()) {
    RequestWaterfall wf;
    wf.id = w.at("id").as_int();
    if (const JsonValue* v = w.find("tenant"))
      wf.tenant = static_cast<int>(v->as_int());
    wf.last_replica = static_cast<ReplicaId>(w.at("replica").as_int());
    wf.first_replica = wf.last_replica;
    if (const JsonValue* v = w.find("first_replica"))
      wf.first_replica = static_cast<ReplicaId>(v->as_int());
    wf.arrival = w.at("arrival").as_double();
    wf.e2e = w.at("e2e").as_double();
    wf.completed = wf.arrival + wf.e2e;
    wf.ttft = w.at("ttft").as_double();
    wf.prefill_tokens = w.at("prefill_tokens").as_int();
    wf.decode_tokens = w.at("decode_tokens").as_int();
    if (const JsonValue* v = w.find("cached_tokens"))
      wf.cached_tokens = v->as_int();
    if (const JsonValue* v = w.find("restarts"))
      wf.num_restarts = static_cast<int>(v->as_int());
    if (const JsonValue* v = w.find("retries"))
      wf.num_retries = static_cast<int>(v->as_int());
    if (const JsonValue* v = w.find("handoffs"))
      wf.num_handoffs = static_cast<int>(v->as_int());
    if (const JsonValue* v = w.find("migrated"))
      wf.migrated = v->as_bool();
    wf.phase = phases_from_json(w.at("phases"));
    wf.ttft_phase = phases_from_json(w.at("ttft_phases"));
    // decode_phase is not serialized (it is the complement); reconstruct.
    for (int i = 0; i < kNumLatencyPhases; ++i)
      wf.decode_phase[static_cast<std::size_t>(i)] =
          std::max(0.0, wf.phase[static_cast<std::size_t>(i)] -
                            wf.ttft_phase[static_cast<std::size_t>(i)]);
    wf.conservation_error = w.at("conservation_error").as_double();
    r.waterfalls.push_back(std::move(wf));
  }

  const JsonValue& slo = doc.at("slo");
  for (const JsonValue& vj : slo.at("violations").items()) {
    SloViolation v;
    const std::string metric = vj.at("metric").as_string();
    VIDUR_CHECK_MSG(metric == "ttft" || metric == "tbt",
                    "analysis report: unknown slo metric '" << metric
                                                            << "'");
    v.metric = metric == "ttft" ? SloMetric::kTtft : SloMetric::kTbt;
    v.id = vj.at("id").as_int();
    if (const JsonValue* t = vj.find("tenant"))
      v.tenant = static_cast<int>(t->as_int());
    v.replica = static_cast<ReplicaId>(vj.at("replica").as_int());
    v.observed = vj.at("observed").as_double();
    v.target = vj.at("target").as_double();
    v.excess = vj.at("excess").as_double();
    v.dominant = phase_from_name(vj.at("dominant_phase").as_string());
    if (const JsonValue* m = vj.find("marginal_phase")) {
      v.marginal = phase_from_name(m->as_string());
      v.has_marginal = true;
    }
    if (const JsonValue* f = vj.find("fault_impacted"))
      v.fault_impacted = f->as_bool();
    r.violations.push_back(v);
  }
  const JsonValue& blame = slo.at("blame");
  const auto blame_from = [](const JsonValue& arr) {
    std::vector<BlameBucket> out;
    for (const JsonValue& bj : arr.items()) {
      BlameBucket b;
      b.key = bj.at("key").as_string();
      b.violations = static_cast<int>(bj.at("violations").as_int());
      b.excess_seconds = bj.at("excess_seconds").as_double();
      b.top_phase = phase_from_name(bj.at("top_phase").as_string());
      b.blame = phases_from_json(bj.at("blame"));
      out.push_back(std::move(b));
    }
    return out;
  };
  r.blame_by_tenant = blame_from(blame.at("by_tenant"));
  r.blame_by_pool = blame_from(blame.at("by_pool"));
  r.blame_by_replica = blame_from(blame.at("by_replica"));

  for (const JsonValue& aj : doc.at("replicas").items()) {
    ReplicaAudit a;
    a.replica = static_cast<ReplicaId>(aj.at("replica").as_int());
    if (const JsonValue* p = aj.find("pool")) a.pool = p->as_string();
    a.span = aj.at("span").as_double();
    a.busy = aj.at("busy").as_double();
    a.idle = aj.at("idle").as_double();
    a.off = aj.at("off").as_double();
    if (const JsonValue* v = aj.find("warming"))
      a.warming = v->as_double();
    if (const JsonValue* v = aj.find("draining"))
      a.draining = v->as_double();
    a.num_batches = static_cast<int>(aj.at("batches").as_int());
    a.num_gaps = static_cast<int>(aj.at("gaps").as_int());
    for (const JsonValue& gj : aj.at("top_gaps").items()) {
      IdleGap g;
      g.start = gj.at("start").as_double();
      g.end = gj.at("end").as_double();
      g.cause = idle_gap_cause_from_name(gj.at("cause").as_string());
      a.top_gaps.push_back(g);
    }
    r.replicas.push_back(std::move(a));
  }

  for (const JsonValue& qj : doc.at("queueing").items()) {
    QueueCauseStats q;
    q.cause = queue_wait_cause_from_name(qj.at("cause").as_string());
    q.wait = summary_from_json(qj.at("wait"));
    r.queue_causes.push_back(q);
  }

  if (const JsonValue* cj = doc.find("cache")) {
    const auto usage_from = [](const JsonValue& c) {
      CacheUsage u;
      if (const JsonValue* k = c.find("key")) u.key = k->as_string();
      u.lookups = c.at("lookups").as_int();
      u.hits = c.at("hits").as_int();
      u.misses = c.at("misses").as_int();
      u.cached_tokens = c.at("cached_tokens").as_int();
      u.prefill_tokens = c.at("prefill_tokens").as_int();
      return u;
    };
    r.cache = usage_from(*cj);
    if (const JsonValue* v = cj->find("by_tenant"))
      for (const JsonValue& u : v->items())
        r.cache_by_tenant.push_back(usage_from(u));
    if (const JsonValue* v = cj->find("by_pool"))
      for (const JsonValue& u : v->items())
        r.cache_by_pool.push_back(usage_from(u));
  }

  if (const JsonValue* fj = doc.find("faults")) {
    r.faults.crashes = static_cast<int>(fj->at("crashes").as_int());
    r.faults.spot_kills = static_cast<int>(fj->at("spot_kills").as_int());
    r.faults.spot_notices =
        static_cast<int>(fj->at("spot_notices").as_int());
    r.faults.degrade_windows =
        static_cast<int>(fj->at("degrade_windows").as_int());
    r.faults.retries = static_cast<int>(fj->at("retries").as_int());
    r.faults.handoffs = static_cast<int>(fj->at("handoffs").as_int());
    r.faults.lost = static_cast<int>(fj->at("lost").as_int());
    r.faults.shed = static_cast<int>(fj->at("shed").as_int());
    r.faults.impacted_completed =
        static_cast<int>(fj->at("impacted_completed").as_int());
    r.faults.impacted_violations =
        static_cast<int>(fj->at("impacted_violations").as_int());
    r.faults.impacted_excess_seconds =
        fj->at("impacted_excess_seconds").as_double();
  }

  return r;
}

std::string analysis_to_string(const AnalysisReport& r) {
  std::ostringstream out;
  char buf[256];

  out << "trace analysis: " << r.num_completed << " completed, "
      << r.num_incomplete << " incomplete, " << r.num_truncated
      << " truncated (" << r.num_records << " records)\n";
  std::snprintf(buf, sizeof(buf),
                "conservation: max |sum(phases) - e2e| = %.3g s "
                "(tolerance %.0e) -- %s\n",
                r.max_conservation_error, kConservationTolerance,
                r.conservation_ok ? "OK" : "VIOLATED");
  out << buf;
  if (r.num_completed == 0) return out.str();

  double total = 0.0;
  for (const double v : r.phase_totals) total += v;

  out << "\nlatency waterfall (seconds)\n";
  std::snprintf(buf, sizeof(buf), "  %-18s %10s %7s %10s %10s %10s %10s\n",
                "phase", "total", "share", "mean", "p50", "p99", "max");
  out << buf;
  for (int i = 0; i < kNumLatencyPhases; ++i) {
    const Summary& s = r.phase_summary[static_cast<std::size_t>(i)];
    const double t = r.phase_totals[static_cast<std::size_t>(i)];
    std::snprintf(buf, sizeof(buf),
                  "  %-18s %10.4f %6.1f%% %10.5f %10.5f %10.5f %10.5f\n",
                  kPhaseNames[i], t, total > 0 ? 100.0 * t / total : 0.0,
                  s.mean, s.p50, s.p99, s.max);
    out << buf;
  }
  std::snprintf(buf, sizeof(buf),
                "  %-18s %10.4f %7s %10.5f %10.5f %10.5f %10.5f\n", "e2e",
                total, "", r.e2e.mean, r.e2e.p50, r.e2e.p99, r.e2e.max);
  out << buf;

  // Slowest requests by e2e.
  std::vector<const RequestWaterfall*> slowest;
  slowest.reserve(r.waterfalls.size());
  for (const RequestWaterfall& wf : r.waterfalls) slowest.push_back(&wf);
  std::stable_sort(slowest.begin(), slowest.end(),
                   [](const RequestWaterfall* a, const RequestWaterfall* b) {
                     return a->e2e > b->e2e;
                   });
  const auto top_k = static_cast<std::size_t>(std::max(0, r.options.top_k));
  if (slowest.size() > top_k) slowest.resize(top_k);
  out << "\nslowest requests (top " << slowest.size() << " of "
      << r.num_completed << " by e2e)\n";
  std::snprintf(buf, sizeof(buf),
                "  %-8s %9s %9s %8s %8s %8s %8s %8s %8s  %s\n", "id", "e2e",
                "ttft", "sched", "queue", "prefill", "stall", "migrate",
                "decode", "notes");
  out << buf;
  for (const RequestWaterfall* wf : slowest) {
    std::string notes;
    if (wf->num_restarts > 0)
      notes += std::to_string(wf->num_restarts) + " restart" +
               (wf->num_restarts > 1 ? "s" : "");
    if (wf->num_retries > 0)
      notes += (notes.empty() ? "" : ", ") +
               std::to_string(wf->num_retries) + " retr" +
               (wf->num_retries > 1 ? "ies" : "y");
    if (wf->num_handoffs > 0)
      notes += (notes.empty() ? "" : ", ") +
               std::to_string(wf->num_handoffs) + " handoff" +
               (wf->num_handoffs > 1 ? "s" : "");
    if (wf->migrated) notes += notes.empty() ? "migrated" : ", migrated";
    if (wf->cached_tokens > 0)
      notes += (notes.empty() ? "" : ", ") + std::string("cached ") +
               std::to_string(static_cast<long long>(wf->cached_tokens)) +
               " tok";
    std::snprintf(
        buf, sizeof(buf),
        "  %-8lld %9.4f %9.4f %8.4f %8.4f %8.4f %8.4f %8.4f %8.4f  %s\n",
        static_cast<long long>(wf->id), wf->e2e, wf->ttft, wf->phase[0],
        wf->phase[1], wf->phase[2], wf->phase[3], wf->phase[4],
        wf->phase[5], notes.c_str());
    out << buf;
  }

  // SLO section.
  const bool slo_enabled =
      r.options.ttft_target > 0 || r.options.tbt_target > 0 ||
      !r.options.tenants.empty();
  out << "\n";
  if (!slo_enabled) {
    out << "slo: no targets configured -- blame analysis skipped\n";
  } else {
    int num_ttft = 0, num_tbt = 0;
    for (const SloViolation& v : r.violations)
      (v.metric == SloMetric::kTtft ? num_ttft : num_tbt) += 1;
    out << "slo violations: ttft " << num_ttft << "/" << r.num_completed;
    if (r.options.ttft_target > 0)
      out << " (target " << fmt("%.4g", r.options.ttft_target) << " s)";
    out << ", tbt " << num_tbt << "/" << r.num_completed;
    if (r.options.tbt_target > 0)
      out << " (target " << fmt("%.4g", r.options.tbt_target) << " s)";
    out << "\n";
    const auto blame_table = [&](const char* title,
                                 const std::vector<BlameBucket>& buckets) {
      if (buckets.empty()) return;
      out << "  blame by " << title << "\n";
      std::snprintf(buf, sizeof(buf), "    %-3s %-20s %6s %10s  %s\n", "#",
                    "key", "viol", "excess(s)", "top phase");
      out << buf;
      const auto n = std::min<std::size_t>(buckets.size(), top_k);
      for (std::size_t i = 0; i < n; ++i) {
        const BlameBucket& b = buckets[i];
        std::snprintf(buf, sizeof(buf), "    %-3zu %-20s %6d %10.4f  %s\n",
                      i + 1, b.key.c_str(), b.violations, b.excess_seconds,
                      latency_phase_name(b.top_phase));
        out << buf;
      }
    };
    blame_table("tenant", r.blame_by_tenant);
    blame_table("pool", r.blame_by_pool);
    blame_table("replica", r.blame_by_replica);
  }

  // Fault impact.
  if (r.faults.any()) {
    out << "\nfault impact\n";
    std::snprintf(buf, sizeof(buf),
                  "  injected: %d crashes, %d spot kills (%d notices), "
                  "%d degrade windows\n",
                  r.faults.crashes, r.faults.spot_kills,
                  r.faults.spot_notices, r.faults.degrade_windows);
    out << buf;
    std::snprintf(buf, sizeof(buf),
                  "  recovery: %d retries, %d handoffs, %d lost, %d shed\n",
                  r.faults.retries, r.faults.handoffs, r.faults.lost,
                  r.faults.shed);
    out << buf;
    std::snprintf(buf, sizeof(buf),
                  "  impacted: %d completed despite faults, %d slo "
                  "violations (%.4f s excess)\n",
                  r.faults.impacted_completed, r.faults.impacted_violations,
                  r.faults.impacted_excess_seconds);
    out << buf;
  }

  // Replica audit.
  if (!r.replicas.empty()) {
    out << "\nreplica timeline audit (span "
        << fmt("%.2f", r.replicas.front().span) << " s)\n";
    std::snprintf(buf, sizeof(buf),
                  "  %-8s %-12s %7s %7s %7s %8s %6s %12s\n", "replica",
                  "pool", "busy%", "idle%", "off%", "batches", "gaps",
                  "longest-gap");
    out << buf;
    for (const ReplicaAudit& a : r.replicas) {
      const double span = a.span > 0 ? a.span : 1.0;
      const double longest =
          a.top_gaps.empty() ? 0.0 : a.top_gaps.front().duration();
      std::snprintf(buf, sizeof(buf),
                    "  %-8d %-12s %6.1f%% %6.1f%% %6.1f%% %8d %6d %10.2f s\n",
                    a.replica, a.pool.empty() ? "-" : a.pool.c_str(),
                    100.0 * a.busy / span, 100.0 * a.idle / span,
                    100.0 * a.off / span, a.num_batches, a.num_gaps,
                    longest);
      out << buf;
      for (const IdleGap& g : a.top_gaps) {
        std::snprintf(buf, sizeof(buf),
                      "      gap %10.3f .. %10.3f s (%8.3f s, %s)\n",
                      g.start, g.end, g.duration(),
                      idle_gap_cause_name(g.cause));
        out << buf;
      }
    }
  }

  // Prefix-cache usage.
  if (r.cache.lookups > 0) {
    std::snprintf(buf, sizeof(buf),
                  "\nprefix cache: %lld lookups, %lld hits (%.1f%%), "
                  "%lld / %lld prefill tokens served from cache\n",
                  static_cast<long long>(r.cache.lookups),
                  static_cast<long long>(r.cache.hits),
                  100.0 * r.cache.hit_rate(),
                  static_cast<long long>(r.cache.cached_tokens),
                  static_cast<long long>(r.cache.prefill_tokens));
    out << buf;
    const auto cache_table = [&](const char* title,
                                 const std::vector<CacheUsage>& v) {
      if (v.empty()) return;
      out << "  by " << title << "\n";
      std::snprintf(buf, sizeof(buf), "    %-20s %8s %8s %7s %14s\n", "key",
                    "lookups", "hits", "rate", "cached-tokens");
      out << buf;
      for (const CacheUsage& u : v) {
        std::snprintf(buf, sizeof(buf),
                      "    %-20s %8lld %8lld %6.1f%% %14lld\n",
                      u.key.c_str(), static_cast<long long>(u.lookups),
                      static_cast<long long>(u.hits), 100.0 * u.hit_rate(),
                      static_cast<long long>(u.cached_tokens));
        out << buf;
      }
    };
    cache_table("tenant", r.cache_by_tenant);
    cache_table("pool", r.cache_by_pool);
  }

  // Queueing decomposition.
  if (!r.queue_causes.empty()) {
    out << "\nqueueing decomposition (arrival -> first schedule, "
           "seconds)\n";
    std::snprintf(buf, sizeof(buf),
                  "  %-20s %7s %9s %9s %9s %9s %9s\n", "cause", "count",
                  "mean", "p50", "p90", "p99", "max");
    out << buf;
    for (const QueueCauseStats& q : r.queue_causes) {
      std::snprintf(buf, sizeof(buf),
                    "  %-20s %7zu %9.5f %9.5f %9.5f %9.5f %9.5f\n",
                    queue_wait_cause_name(q.cause), q.wait.count,
                    q.wait.mean, q.wait.p50, q.wait.p90, q.wait.p99,
                    q.wait.max);
      out << buf;
    }
  }

  return out.str();
}

}  // namespace vidur
