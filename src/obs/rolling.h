// Rolling windowed metrics (observability subsystem): per-track TTFT / TBT
// / SLO-attainment / queue-depth aggregates over fixed, consecutive time
// windows, computed online as the simulation runs.
//
// Tracks are opaque indices the simulator maps to "cluster", one per
// tenant, and one per pool. Queue depth is a step function integrated
// exactly (time-weighted mean per window); latency metrics accumulate at
// request completion. This is the substrate a future live-daemon mode
// streams from — nothing here retains per-request state.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace vidur {

/// Aggregates of one [start, end) window of one track.
struct WindowSample {
  Seconds start = 0.0;
  Seconds end = 0.0;
  std::int64_t arrivals = 0;
  std::int64_t completions = 0;
  /// SLO accounting over completions of SLO-carrying tenants only.
  std::int64_t slo_met = 0;
  std::int64_t slo_eligible = 0;
  double ttft_sum = 0.0;
  double ttft_max = 0.0;
  /// Worst per-request inter-token gap, summed / maxed over completions.
  double tbt_sum = 0.0;
  double tbt_max = 0.0;
  std::int64_t tbt_count = 0;
  /// Integral of the queue-depth step function over the window.
  double queue_depth_time = 0.0;

  double mean_ttft() const {
    return completions > 0 ? ttft_sum / static_cast<double>(completions)
                           : 0.0;
  }
  double mean_tbt() const {
    return tbt_count > 0 ? tbt_sum / static_cast<double>(tbt_count) : 0.0;
  }
  /// -1 when no SLO-carrying request completed in the window.
  double slo_attainment() const {
    return slo_eligible > 0
               ? static_cast<double>(slo_met) /
                     static_cast<double>(slo_eligible)
               : -1.0;
  }
  double mean_queue_depth() const {
    return end > start ? queue_depth_time / (end - start) : 0.0;
  }

  bool operator==(const WindowSample&) const = default;
};

/// One track's complete window series, in time order.
struct RollingTrack {
  std::string name;
  std::vector<WindowSample> windows;

  bool operator==(const RollingTrack&) const = default;
};

/// Online collector: fixed window length, fixed track set. All event times
/// must be non-decreasing per track (simulation time is monotone).
class RollingCollector {
 public:
  RollingCollector(Seconds window, std::vector<std::string> track_names);

  int num_tracks() const { return static_cast<int>(tracks_.size()); }

  void on_arrival(int track, Seconds t);
  /// A request completed: `slo_state` is -1 (no SLO), 0 (missed) or 1
  /// (met); `worst_tbt` < 0 means the request emitted < 2 tokens.
  void on_completion(int track, Seconds t, Seconds ttft, Seconds worst_tbt,
                     int slo_state);
  /// The track's queue depth changed by `delta` at time t.
  void on_queue_delta(int track, Seconds t, int delta);

  /// Close every open window at `end_time` and return the series.
  std::vector<RollingTrack> finalize(Seconds end_time);

 private:
  struct Track {
    std::string name;
    WindowSample current;
    std::vector<WindowSample> done;
    int depth = 0;
    Seconds depth_since = 0.0;
  };

  /// Flush windows the track has moved past; integrates depth up to t.
  void advance(Track& track, Seconds t);

  Seconds window_;
  std::vector<Track> tracks_;
};

}  // namespace vidur
