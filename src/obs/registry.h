// MetricsRegistry: named counters, gauges and fixed-bucket latency
// histograms threaded through the simulator, schedulers and cluster
// manager (observability subsystem).
//
// Handles are resolved by name once (map-backed, node-stable addresses) and
// incremented through plain pointers on the hot path — no string hashing
// per event. A RegistrySnapshot is a plain value embedded in
// SimulationMetrics, so every ExperimentResult carries the registry's final
// state without holding a reference to the registry itself.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace vidur {

struct Counter {
  std::uint64_t value = 0;

  void inc(std::uint64_t by = 1) { value += by; }
};

struct Gauge {
  double value = 0.0;

  void set(double v) { value = v; }
};

/// HDR-style latency histogram: 96 logarithmic buckets, 4 per octave,
/// spanning 1µs to ~16.7s (larger values land in the top bucket). Fixed
/// footprint, O(1) record, quantiles via within-bucket linear interpolation
/// (bounded relative error ~19%, the inter-bucket ratio 2^(1/4)).
class LatencyHistogram {
 public:
  static constexpr int kBucketsPerOctave = 4;
  static constexpr int kNumBuckets = 96;
  static constexpr double kMinSeconds = 1e-6;

  void record(Seconds seconds);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  double max_seen() const { return max_; }
  /// Value at quantile q in [0, 1] (0 when empty).
  double quantile(double q) const;

 private:
  std::uint64_t buckets_[kNumBuckets] = {};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

/// Final registry state as plain sorted vectors (by name).
struct RegistrySnapshot {
  struct CounterEntry {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeEntry {
    std::string name;
    double value = 0.0;
  };
  struct HistogramEntry {
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    double mean = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
  };

  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<HistogramEntry> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  /// Counter value by name; 0 when absent (tests, summary lines).
  std::uint64_t counter(const std::string& name) const;
};

class MetricsRegistry {
 public:
  /// Named handle, created on first use. The returned pointer stays valid
  /// for the registry's lifetime (node-based storage).
  Counter* counter(const std::string& name) { return &counters_[name]; }
  Gauge* gauge(const std::string& name) { return &gauges_[name]; }
  LatencyHistogram* histogram(const std::string& name) {
    return &histograms_[name];
  }

  RegistrySnapshot snapshot() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, LatencyHistogram> histograms_;
};

}  // namespace vidur
