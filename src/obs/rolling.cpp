#include "obs/rolling.h"

#include <algorithm>

#include "common/check.h"

namespace vidur {

RollingCollector::RollingCollector(Seconds window,
                                   std::vector<std::string> track_names)
    : window_(window) {
  VIDUR_CHECK_MSG(window > 0.0, "rolling window must be positive");
  tracks_.reserve(track_names.size());
  for (std::string& name : track_names) {
    Track t;
    t.name = std::move(name);
    t.current.start = 0.0;
    t.current.end = window_;
    tracks_.push_back(std::move(t));
  }
}

void RollingCollector::advance(Track& track, Seconds t) {
  while (t >= track.current.end) {
    // Integrate the depth step function to the window boundary, emit the
    // window, and open the next one.
    track.current.queue_depth_time +=
        static_cast<double>(track.depth) *
        (track.current.end - track.depth_since);
    track.depth_since = track.current.end;
    WindowSample next;
    next.start = track.current.end;
    next.end = track.current.end + window_;
    track.done.push_back(track.current);
    track.current = next;
  }
}

void RollingCollector::on_arrival(int track, Seconds t) {
  Track& tr = tracks_[static_cast<std::size_t>(track)];
  advance(tr, t);
  ++tr.current.arrivals;
}

void RollingCollector::on_completion(int track, Seconds t, Seconds ttft,
                                     Seconds worst_tbt, int slo_state) {
  Track& tr = tracks_[static_cast<std::size_t>(track)];
  advance(tr, t);
  WindowSample& w = tr.current;
  ++w.completions;
  w.ttft_sum += ttft;
  w.ttft_max = std::max(w.ttft_max, ttft);
  if (worst_tbt >= 0.0) {
    w.tbt_sum += worst_tbt;
    w.tbt_max = std::max(w.tbt_max, worst_tbt);
    ++w.tbt_count;
  }
  if (slo_state >= 0) {
    ++w.slo_eligible;
    w.slo_met += slo_state;
  }
}

void RollingCollector::on_queue_delta(int track, Seconds t, int delta) {
  Track& tr = tracks_[static_cast<std::size_t>(track)];
  advance(tr, t);
  tr.current.queue_depth_time +=
      static_cast<double>(tr.depth) * (t - tr.depth_since);
  tr.depth += delta;
  tr.depth_since = t;
}

std::vector<RollingTrack> RollingCollector::finalize(Seconds end_time) {
  std::vector<RollingTrack> out;
  out.reserve(tracks_.size());
  for (Track& tr : tracks_) {
    advance(tr, end_time);
    // Close the open window at the run's end: a partial window is emitted
    // with its true extent so mean_queue_depth stays exact.
    tr.current.queue_depth_time +=
        static_cast<double>(tr.depth) * (end_time - tr.depth_since);
    tr.depth_since = end_time;
    if (end_time > tr.current.start) {
      WindowSample last = tr.current;
      last.end = end_time;
      tr.done.push_back(last);
    }
    RollingTrack rt;
    rt.name = tr.name;
    rt.windows = tr.done;
    out.push_back(std::move(rt));
  }
  return out;
}

}  // namespace vidur
