#include "obs/trace.h"

#include <algorithm>
#include <map>

#include "cluster/replica_state.h"
#include "common/check.h"

namespace vidur {

const char* trace_event_kind_name(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kArrival: return "arrival";
    case TraceEventKind::kRouted: return "routed";
    case TraceEventKind::kScheduled: return "scheduled";
    case TraceEventKind::kPreempted: return "preempted";
    case TraceEventKind::kPrefillDone: return "prefill-done";
    case TraceEventKind::kMigrateStart: return "migrate-start";
    case TraceEventKind::kMigrateEnd: return "migrate-end";
    case TraceEventKind::kCompleted: return "completed";
    case TraceEventKind::kBatchStart: return "batch-start";
    case TraceEventKind::kBatchEnd: return "batch-end";
    case TraceEventKind::kReplicaTransition: return "replica-transition";
    case TraceEventKind::kScaleDecision: return "scale-decision";
    case TraceEventKind::kCacheLookup: return "cache-lookup";
    case TraceEventKind::kReplicaFault: return "replica-fault";
    case TraceEventKind::kRequestRetry: return "request-retry";
    case TraceEventKind::kRequestShed: return "request-shed";
  }
  return "unknown";
}

TraceRecorder::TraceRecorder(std::size_t capacity)
    : buffer_(capacity), unbounded_(capacity == kUnbounded) {}

std::vector<TraceRecord> TraceRecorder::records() const {
  if (unbounded_) return buffer_;
  std::vector<TraceRecord> out;
  const std::size_t retained =
      total_ < buffer_.size() ? static_cast<std::size_t>(total_)
                              : buffer_.size();
  out.reserve(retained);
  // Oldest retained record: head_ when wrapped, 0 otherwise.
  const std::size_t start = total_ < buffer_.size() ? 0 : head_;
  for (std::size_t i = 0; i < retained; ++i)
    out.push_back(buffer_[(start + i) % buffer_.size()]);
  return out;
}

const std::vector<TraceRecord>& TraceRecorder::staged() const {
  VIDUR_CHECK_MSG(unbounded_, "staged() requires an unbounded recorder");
  return buffer_;
}

void TraceRecorder::clear() {
  if (unbounded_) buffer_.clear();
  head_ = 0;
  total_ = 0;
}

// ------------------------------------------------------- chrome exporter

namespace {

// Process ids of the three tracks; Perfetto groups threads under them.
constexpr int kRequestsPid = 1;
constexpr int kReplicasPid = 2;
constexpr int kClusterPid = 3;

double micros(Seconds t) { return t * 1e6; }

JsonValue complete_event(const char* name, int pid, std::int64_t tid,
                         Seconds start, Seconds end) {
  JsonValue e = JsonValue::object();
  e.set("name", name);
  e.set("ph", "X");
  e.set("pid", pid);
  e.set("tid", tid);
  e.set("ts", micros(start));
  e.set("dur", micros(end - start));
  return e;
}

JsonValue instant_event(const std::string& name, int pid, std::int64_t tid,
                        Seconds time) {
  JsonValue e = JsonValue::object();
  e.set("name", name);
  e.set("ph", "i");
  e.set("s", "t");  // thread-scoped instant
  e.set("pid", pid);
  e.set("tid", tid);
  e.set("ts", micros(time));
  return e;
}

JsonValue process_name_event(int pid, const char* name) {
  JsonValue e = JsonValue::object();
  e.set("name", "process_name");
  e.set("ph", "M");
  e.set("pid", pid);
  JsonValue args = JsonValue::object();
  args.set("name", name);
  e.set("args", std::move(args));
  return e;
}

/// Lifecycle milestones of one request, distilled from its records. First
/// occurrences win (restarts re-stamp nothing) except migration end and
/// completion, where the last hand-off / final completion is the truth.
struct RequestMilestones {
  Seconds arrival = -1.0;
  Seconds scheduled = -1.0;
  Seconds prefill_done = -1.0;
  Seconds migrate_start = -1.0;
  Seconds migrate_end = -1.0;
  Seconds completed = -1.0;
  std::int64_t prefill_tokens = 0;
  std::int64_t decode_tokens = 0;
  std::int64_t restarts = 0;
};

}  // namespace

JsonValue chrome_trace_json(const std::vector<TraceRecord>& records) {
  JsonValue events = JsonValue::array();
  events.push(process_name_event(kRequestsPid, "requests"));
  events.push(process_name_event(kReplicasPid, "replicas"));
  events.push(process_name_event(kClusterPid, "cluster"));

  std::map<std::int64_t, RequestMilestones> requests;
  std::map<std::int64_t, TraceRecord> open_batches;  // batch seq -> start
  // Per-replica lanes for batch slices: with pipeline parallelism several
  // batches overlap on one replica, and overlapping complete events on one
  // Chrome thread render (and validate) as corrupt nesting. Each batch
  // lands on the first lane that is free at its start time.
  std::map<std::int32_t, std::vector<Seconds>> lanes;  // replica -> lane ends
  constexpr std::int64_t kLanesPerReplica = 64;

  for (const TraceRecord& r : records) {
    switch (r.kind) {
      case TraceEventKind::kArrival: {
        RequestMilestones& m = requests[r.id];
        if (m.arrival < 0) m.arrival = r.time;
        m.prefill_tokens = r.a;
        m.decode_tokens = r.b;
        break;
      }
      case TraceEventKind::kRouted: {
        JsonValue e = instant_event(
            r.replica < 0 ? "routed: parked"
                          : "routed: replica " + std::to_string(r.replica),
            kRequestsPid, r.id, r.time);
        events.push(std::move(e));
        break;
      }
      case TraceEventKind::kScheduled: {
        RequestMilestones& m = requests[r.id];
        if (m.scheduled < 0) m.scheduled = r.time;
        break;
      }
      case TraceEventKind::kPreempted:
        events.push(instant_event("preempted", kRequestsPid, r.id, r.time));
        break;
      case TraceEventKind::kPrefillDone: {
        RequestMilestones& m = requests[r.id];
        if (m.prefill_done < 0) m.prefill_done = r.time;
        break;
      }
      case TraceEventKind::kMigrateStart: {
        RequestMilestones& m = requests[r.id];
        if (m.migrate_start < 0) m.migrate_start = r.time;
        break;
      }
      case TraceEventKind::kMigrateEnd:
        requests[r.id].migrate_end = r.time;
        break;
      case TraceEventKind::kCompleted: {
        RequestMilestones& m = requests[r.id];
        m.completed = r.time;
        m.restarts = r.a;
        break;
      }
      case TraceEventKind::kBatchStart:
        open_batches[r.id] = r;
        break;
      case TraceEventKind::kBatchEnd: {
        const auto it = open_batches.find(r.id);
        if (it == open_batches.end()) break;  // start fell off the ring
        const TraceRecord& start = it->second;
        std::vector<Seconds>& replica_lanes = lanes[r.replica];
        std::size_t lane = 0;
        while (lane < replica_lanes.size() &&
               replica_lanes[lane] > start.time)
          ++lane;
        if (lane == replica_lanes.size()) replica_lanes.push_back(0.0);
        replica_lanes[lane] = r.time;
        JsonValue e = complete_event(
            "batch", kReplicasPid,
            static_cast<std::int64_t>(r.replica) * kLanesPerReplica +
                static_cast<std::int64_t>(lane),
            start.time, r.time);
        JsonValue args = JsonValue::object();
        args.set("batch_size", start.a);
        args.set("q_tokens", start.b);
        e.set("args", std::move(args));
        events.push(std::move(e));
        open_batches.erase(it);
        break;
      }
      case TraceEventKind::kReplicaTransition: {
        events.push(instant_event(
            replica_state_name(static_cast<ReplicaState>(r.detail)),
            kClusterPid, r.replica, r.time));
        JsonValue c = JsonValue::object();
        c.set("name", "active_replicas");
        c.set("ph", "C");
        c.set("pid", kClusterPid);
        c.set("ts", micros(r.time));
        JsonValue args = JsonValue::object();
        args.set("active", r.a);
        c.set("args", std::move(args));
        events.push(std::move(c));
        break;
      }
      case TraceEventKind::kScaleDecision: {
        JsonValue e =
            instant_event("scale-decision", kClusterPid, -1, r.time);
        JsonValue args = JsonValue::object();
        args.set("role", static_cast<std::int64_t>(r.detail));
        args.set("desired", r.a);
        args.set("active", r.b);
        e.set("args", std::move(args));
        events.push(std::move(e));
        break;
      }
      case TraceEventKind::kCacheLookup: {
        JsonValue e = instant_event(
            r.detail != 0 ? "cache-hit" : "cache-miss", kRequestsPid, r.id,
            r.time);
        JsonValue args = JsonValue::object();
        args.set("cached_tokens", r.a);
        args.set("prefill_tokens", r.b);
        e.set("args", std::move(args));
        events.push(std::move(e));
        break;
      }
      case TraceEventKind::kReplicaFault: {
        static constexpr const char* kFaultNames[] = {
            "fault: crash", "fault: spot notice", "fault: spot kill",
            "fault: degrade start", "fault: degrade end"};
        const char* name =
            r.detail < 5 ? kFaultNames[r.detail] : "fault: unknown";
        JsonValue e = instant_event(name, kClusterPid, r.replica, r.time);
        JsonValue args = JsonValue::object();
        args.set(r.detail >= 3 ? "factor_permille" : "requests_torn_down",
                 r.a);
        e.set("args", std::move(args));
        events.push(std::move(e));
        break;
      }
      case TraceEventKind::kRequestRetry: {
        const char* name = r.detail == 1   ? "retry: exhausted"
                           : r.detail == 2 ? "retry: handoff"
                                           : "retry: scheduled";
        JsonValue e = instant_event(name, kRequestsPid, r.id, r.time);
        JsonValue args = JsonValue::object();
        args.set("attempt", r.a);
        if (r.detail == 0) args.set("backoff_ns", r.b);
        args.set("failed_replica", static_cast<std::int64_t>(r.replica));
        e.set("args", std::move(args));
        events.push(std::move(e));
        break;
      }
      case TraceEventKind::kRequestShed: {
        JsonValue e = instant_event("shed", kRequestsPid, r.id, r.time);
        JsonValue args = JsonValue::object();
        args.set("priority", r.a);
        args.set("active_replicas", r.b);
        e.set("args", std::move(args));
        events.push(std::move(e));
        break;
      }
    }
  }

  // Sequential phase spans per request, clamped monotone so truncated
  // streams (ring overwrites) still produce a well-nested track.
  for (const auto& [id, m] : requests) {
    Seconds cursor = m.arrival >= 0 ? m.arrival : 0.0;
    const auto span = [&](const char* name, Seconds start, Seconds end,
                          bool extra_args = false) {
      if (start < 0 || end < 0) return;
      start = std::max(start, cursor);
      end = std::max(end, start);
      cursor = end;
      JsonValue e = complete_event(name, kRequestsPid, id, start, end);
      if (extra_args) {
        JsonValue args = JsonValue::object();
        args.set("prefill_tokens", m.prefill_tokens);
        args.set("decode_tokens", m.decode_tokens);
        args.set("restarts", m.restarts);
        e.set("args", std::move(args));
      }
      events.push(std::move(e));
    };
    span("queued", m.arrival, m.scheduled);
    span("prefill", m.scheduled, m.prefill_done);
    if (m.migrate_start >= 0 && m.migrate_end >= 0)
      span("kv-transfer", m.migrate_start, m.migrate_end);
    span("decode",
         std::max(m.prefill_done, m.migrate_end) >= 0
             ? std::max(m.prefill_done, m.migrate_end)
             : m.scheduled,
         m.completed, /*extra_args=*/true);
  }

  JsonValue doc = JsonValue::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ms");
  doc.set("vidur", trace_records_json(records));
  return doc;
}

// -------------------------------------------------------- record sidecar

JsonValue trace_records_json(const std::vector<TraceRecord>& records) {
  JsonValue rows = JsonValue::array();
  for (const TraceRecord& r : records) {
    JsonValue row = JsonValue::array();
    row.push(static_cast<std::int64_t>(r.kind));
    row.push(static_cast<std::int64_t>(r.detail));
    row.push(static_cast<std::int64_t>(r.replica));
    row.push(r.id);
    row.push(r.a);
    row.push(r.b);
    row.push(r.time);
    rows.push(std::move(row));
  }
  JsonValue doc = JsonValue::object();
  doc.set("schema", static_cast<std::int64_t>(kTraceSchemaVersion));
  doc.set("records", std::move(rows));
  return doc;
}

std::vector<TraceRecord> trace_records_from_json(const JsonValue& doc) {
  VIDUR_CHECK_MSG(doc.is_object(),
                  "trace record sidecar must be a JSON object");
  const JsonValue* schema = doc.find("schema");
  VIDUR_CHECK_MSG(schema != nullptr && schema->is_number(),
                  "trace record sidecar has no numeric 'schema' version");
  VIDUR_CHECK_MSG(
      schema->as_int() == kTraceSchemaVersion,
      "trace record sidecar has schema version "
          << schema->as_int() << "; this build reads version "
          << kTraceSchemaVersion << " — re-export the trace with it");
  const JsonValue* rows = doc.find("records");
  VIDUR_CHECK_MSG(rows != nullptr && rows->is_array(),
                  "trace record sidecar has no 'records' array");
  std::vector<TraceRecord> out;
  out.reserve(rows->items().size());
  std::size_t i = 0;
  for (const JsonValue& row : rows->items()) {
    ++i;
    VIDUR_CHECK_MSG(row.is_array() && row.items().size() == 7,
                    "trace record " << i << " is not a 7-element array");
    const auto& f = row.items();
    for (const JsonValue& v : f)
      VIDUR_CHECK_MSG(v.is_number(),
                      "trace record " << i << " has a non-numeric field");
    const std::int64_t kind = f[0].as_int();
    VIDUR_CHECK_MSG(
        kind >= 0 && kind <= static_cast<std::int64_t>(
                                 TraceEventKind::kRequestShed),
        "trace record " << i << " has unknown kind " << kind);
    TraceRecord r;
    r.kind = static_cast<TraceEventKind>(kind);
    r.detail = static_cast<std::uint8_t>(f[1].as_int());
    r.replica = static_cast<std::int32_t>(f[2].as_int());
    r.id = f[3].as_int();
    r.a = f[4].as_int();
    r.b = f[5].as_int();
    r.time = f[6].as_double();
    out.push_back(r);
  }
  return out;
}

// ------------------------------------------------------------- validator

namespace {

double num_member(const JsonValue& e, const char* key, const char* what) {
  const JsonValue* v = e.find(key);
  VIDUR_CHECK_MSG(v != nullptr && v->is_number(),
                  "trace event missing numeric '" << key << "' (" << what
                                                  << ")");
  return v->as_double();
}

}  // namespace

TraceValidation validate_chrome_trace(const JsonValue& doc) {
  VIDUR_CHECK_MSG(doc.is_object(), "trace document must be a JSON object");
  const JsonValue* events = doc.find("traceEvents");
  VIDUR_CHECK_MSG(events != nullptr && events->is_array(),
                  "trace document must carry a 'traceEvents' array");

  TraceValidation v;
  if (const JsonValue* sidecar = doc.find("vidur"); sidecar != nullptr)
    v.num_raw_records = trace_records_from_json(*sidecar).size();
  struct Span {
    double ts = 0.0;
    double dur = 0.0;
  };
  std::map<std::pair<std::int64_t, std::int64_t>, std::vector<Span>> tracks;

  std::size_t i = 0;
  for (const JsonValue& e : events->items()) {
    ++i;
    VIDUR_CHECK_MSG(e.is_object(), "trace event " << i << " is not an object");
    const JsonValue* ph = e.find("ph");
    VIDUR_CHECK_MSG(ph != nullptr && ph->is_string(),
                    "trace event " << i << " has no 'ph' phase");
    ++v.num_events;
    const std::string phase = ph->as_string();
    if (phase == "i" || phase == "I") {
      ++v.num_instants;
    } else if (phase == "C") {
      ++v.num_counter_samples;
    } else if (phase == "X") {
      ++v.num_complete_spans;
      Span s;
      s.ts = num_member(e, "ts", "complete event");
      s.dur = num_member(e, "dur", "complete event");
      VIDUR_CHECK_MSG(s.ts >= 0.0,
                      "trace event " << i << " has negative ts " << s.ts);
      VIDUR_CHECK_MSG(s.dur >= 0.0,
                      "trace event " << i << " has negative dur " << s.dur);
      const JsonValue* pid = e.find("pid");
      const JsonValue* tid = e.find("tid");
      tracks[{pid != nullptr ? pid->as_int() : 0,
              tid != nullptr ? tid->as_int() : 0}]
          .push_back(s);
    }
  }

  // Nesting check per (pid, tid) track: sorted by start (longer span first
  // on ties, so a parent precedes the child it encloses), a span must either
  // start at/after the enclosing span's end (sibling) or end within it
  // (child). Partial overlap is corrupt.
  constexpr double kEps = 1e-6;  // microsecond-scale float tolerance
  for (auto& [key, spans] : tracks) {
    std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
      if (a.ts != b.ts) return a.ts < b.ts;
      return a.dur > b.dur;
    });
    std::vector<double> stack;  // enclosing span end times
    for (const Span& s : spans) {
      while (!stack.empty() && s.ts >= stack.back() - kEps) stack.pop_back();
      VIDUR_CHECK_MSG(
          stack.empty() || s.ts + s.dur <= stack.back() + kEps,
          "trace track (pid " << key.first << ", tid " << key.second
                              << ") has partially overlapping spans at ts "
                              << s.ts);
      stack.push_back(s.ts + s.dur);
    }
  }
  return v;
}

}  // namespace vidur
