// Request-lifecycle and cluster-event tracing (observability subsystem).
//
// The simulator, replica schedulers and cluster manager emit typed POD
// TraceRecords into a preallocated ring buffer. Tracing is a nullable
// pointer on every hot path: when no recorder is attached the cost is one
// branch, no allocation, no formatting. The recorded stream is converted to
// Chrome/Perfetto `trace_event` JSON after the run (chrome_trace_json), so
// `vidur run --trace out.json` produces a file chrome://tracing and
// https://ui.perfetto.dev open directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/types.h"

namespace vidur {

/// Version of the record payload layout below. Bumped whenever a kind's
/// field meaning changes or new records appear in the stream; exported
/// trace documents embed it and `vidur trace-check` / the analysis engine
/// refuse documents written under a different schema.
///
/// v2: kScheduled carries the queue-entry timestamp (a, nanoseconds) and a
/// resume marker (detail=1 after a preemption restart or migration landing,
/// re-emitted per resume);
/// kPrefillDone carries the completing batch size (a) and re-emits on
/// re-completion after a preemption restart (detail=1); kCompleted carries
/// the final batch size (b); kArrival carries the tenant id (detail,
/// tenant + 1, 0 = untagged).
///
/// v3: adds kCacheLookup — one record per prefix-cache consultation
/// (id=request, replica=where, a=matched prefix tokens, b=prompt tokens,
/// detail=1 hit / 0 miss).
///
/// v4: adds the fault-injection records. kReplicaFault (replica=victim,
/// detail distinguishes crash / spot notice / spot kill / degrade edges,
/// a=requests torn down on kills or the slowdown factor in permille on
/// degrade edges); kRequestRetry (id=request, replica=the failed replica,
/// a=attempt number, b=backoff delay in integer nanoseconds, detail=0
/// retry scheduled / 1 attempts exhausted / 2 immediate handoff);
/// kRequestShed (id=request dropped by the admission floor, a=tenant
/// priority, b=active replicas at the decision).
inline constexpr int kTraceSchemaVersion = 4;

/// What one trace record describes. Request-lifecycle kinds carry the
/// request id; batch kinds carry a per-run monotonic batch sequence number;
/// cluster kinds describe replica transitions and autoscaler decisions.
enum class TraceEventKind : std::uint8_t {
  kArrival = 0,    ///< id=request, a=prefill_tokens, b=decode_tokens,
                   ///< detail=tenant+1 (0: untagged)
  kRouted,         ///< id=request, replica=target (-1: parked centrally)
  kScheduled,      ///< id=request entered a batch, replica=where.
                   ///< detail=0: first schedule, a=queue-entry time in
                   ///< integer nanoseconds (-1: unknown). detail=1: resumed
                   ///< from a waiting queue after a preemption restart or a
                   ///< KV migration landing, a=-1.
  kPreempted,      ///< id=request preempted-and-restarted, replica=where
  kPrefillDone,    ///< id=request completed prefill, replica=where,
                   ///< a=batch size of the completing batch. detail=0 on
                   ///< first completion (the TTFT edge), 1 when a restarted
                   ///< request re-completes its prefill.
  kMigrateStart,   ///< id=request KV hand-off started, replica=source,
                   ///< a=KV tokens in flight
  kMigrateEnd,     ///< id=request landed, replica=destination
  kCompleted,      ///< id=request, replica=where, a=restarts,
                   ///< b=batch size of the final batch
  kBatchStart,     ///< id=batch seq, replica, a=batch_size, b=q_tokens
  kBatchEnd,       ///< id=batch seq, replica, a=batch_size
  kReplicaTransition,  ///< replica lifecycle edge: detail=to-state,
                       ///< a=cluster-wide active count after
  kScaleDecision,  ///< autoscaler group decision: detail=role,
                   ///< a=desired replicas, b=active replicas
  kCacheLookup,    ///< id=request consulted the replica's prefix cache:
                   ///< a=matched prefix tokens served from cache,
                   ///< b=prompt tokens, detail=1 hit / 0 miss
  kReplicaFault,   ///< replica=victim. detail=0 crash, 1 spot reclaim
                   ///< notice (drain begins), 2 spot hard kill, 3 degrade
                   ///< start, 4 degrade end. a=requests torn down
                   ///< (detail 0/2) or slowdown factor in permille
                   ///< (detail 3/4).
  kRequestRetry,   ///< id=request displaced by a replica failure,
                   ///< replica=the failed replica. detail=0: retry
                   ///< scheduled, a=attempt number, b=backoff delay in
                   ///< integer nanoseconds. detail=1: attempts exhausted,
                   ///< request lost, a=attempts used. detail=2: immediate
                   ///< handoff (no work lost), a=handoff count.
  kRequestShed,    ///< id=request shed by the graceful-degradation floor:
                   ///< a=tenant priority, b=active replicas at decision
};

const char* trace_event_kind_name(TraceEventKind kind);

/// One trace record: a fixed-size POD so emitting is a couple of stores.
/// Field meaning depends on `kind` (see TraceEventKind); unused fields keep
/// their defaults, which is what makes records bit-comparable across runs
/// (the determinism tests rely on operator==).
struct TraceRecord {
  TraceEventKind kind = TraceEventKind::kArrival;
  std::uint8_t detail = 0;  ///< kind-specific small payload (state, role)
  std::int32_t replica = -1;
  std::int64_t id = -1;  ///< request id or batch sequence number
  std::int64_t a = 0;
  std::int64_t b = 0;
  Seconds time = 0.0;

  bool operator==(const TraceRecord&) const = default;
};

/// Fixed-capacity ring buffer of TraceRecords. When the buffer wraps, the
/// oldest records are overwritten (num_dropped() reports how many); the
/// exporter then renders the retained tail, which is the recent history —
/// the part a user debugging a long run actually wants.
///
/// Capacity kUnbounded (0) selects an append-only growing buffer instead:
/// every record is retained and nothing is ever dropped. The sharded
/// simulator uses this mode for its per-shard staging recorders, whose
/// contents are merged into the run's real (ring) recorder at every window
/// boundary and must arrive complete for the merge order to be exact.
class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 18;
  static constexpr std::size_t kUnbounded = 0;

  explicit TraceRecorder(std::size_t capacity = kDefaultCapacity);

  void emit(const TraceRecord& record) {
    if (unbounded_) {
      buffer_.push_back(record);
      ++total_;
      return;
    }
    buffer_[head_] = record;
    if (++head_ == buffer_.size()) head_ = 0;
    ++total_;
  }

  bool unbounded() const { return unbounded_; }
  /// Ring capacity; for an unbounded recorder, the records retained so far.
  std::size_t capacity() const { return buffer_.size(); }
  /// Records emitted over the recorder's lifetime (including overwritten).
  std::uint64_t num_emitted() const { return total_; }
  /// Emitted records no longer retained (ring-buffer overwrites; always 0
  /// for an unbounded recorder).
  std::uint64_t num_dropped() const {
    return total_ > buffer_.size() ? total_ - buffer_.size() : 0;
  }

  /// Retained records in emission order (oldest first).
  std::vector<TraceRecord> records() const;

  /// Zero-copy view of an unbounded recorder's records (emission order).
  const std::vector<TraceRecord>& staged() const;

  void clear();

 private:
  std::vector<TraceRecord> buffer_;
  std::size_t head_ = 0;
  std::uint64_t total_ = 0;
  bool unbounded_ = false;
};

/// Null-safe emission used by the instrumented subsystems: a disabled
/// recorder (nullptr) costs exactly this branch on the hot path.
inline void trace_emit(TraceRecorder* trace, TraceEventKind kind, Seconds time,
                       std::int32_t replica, std::int64_t id,
                       std::int64_t a = 0, std::int64_t b = 0,
                       std::uint8_t detail = 0) {
  if (trace == nullptr) return;
  TraceRecord r;
  r.kind = kind;
  r.detail = detail;
  r.replica = replica;
  r.id = id;
  r.a = a;
  r.b = b;
  r.time = time;
  trace->emit(r);
}

/// Render records as a Chrome `trace_event` document ({"traceEvents": [...],
/// "displayTimeUnit": "ms"}). Three processes: requests (one thread per
/// request, phase spans queued/prefill/kv-transfer/decode), replicas (one
/// thread per replica, one complete-event slice per executed batch), and
/// cluster (lifecycle instants, scale decisions and an active-replica
/// counter track). Timestamps are microseconds of simulated time.
///
/// The document additionally embeds the raw records under "vidur"
/// (trace_records_json), so an exported trace file round-trips exactly into
/// `vidur analyze` — the Chrome spans are a rendering, the sidecar is the
/// data.
JsonValue chrome_trace_json(const std::vector<TraceRecord>& records);

/// Lossless record sidecar: {"schema": kTraceSchemaVersion, "records":
/// [[kind, detail, replica, id, a, b, time], ...]}. Doubles are written
/// shortest-round-trip, so records_from == records bit for bit.
JsonValue trace_records_json(const std::vector<TraceRecord>& records);

/// Inverse of trace_records_json. Throws vidur::Error when the document is
/// malformed or was written under a different kTraceSchemaVersion.
std::vector<TraceRecord> trace_records_from_json(const JsonValue& doc);

/// Shape summary returned by validate_chrome_trace.
struct TraceValidation {
  std::size_t num_events = 0;
  std::size_t num_complete_spans = 0;  ///< "X" events
  std::size_t num_instants = 0;        ///< "i" events
  std::size_t num_counter_samples = 0; ///< "C" events
  /// Records in the embedded "vidur" sidecar (0 when the document carries
  /// none — e.g. a hand-built Chrome document).
  std::size_t num_raw_records = 0;
};

/// Validate a Chrome trace document: traceEvents is an array, every event
/// carries a phase, complete events have non-negative ts/dur, and the spans
/// of each (pid, tid) track nest properly (no partial overlap). When the
/// document embeds a "vidur" record sidecar, its schema version must equal
/// kTraceSchemaVersion. Throws vidur::Error with the offending event on any
/// violation; returns counts for reporting. Used by the tests and
/// `vidur trace-check`.
TraceValidation validate_chrome_trace(const JsonValue& doc);

}  // namespace vidur
