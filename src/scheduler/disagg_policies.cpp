#include "scheduler/disagg_policies.h"

#include <algorithm>

#include "common/check.h"

namespace vidur {

// ----------------------------------------------------------- prefill role

void DisaggPrefillScheduler::fill_batch(BatchSpec& batch, Seconds now) {
  TokenCount budget = config_.chunk_size;

  // Continue partially-prefilled requests first (FIFO progress).
  for (RequestState* r : running_) {
    if (budget <= 0 ||
        static_cast<int>(batch.items.size()) >= config_.max_batch_size)
      break;
    if (r->in_flight || r->prefill_complete()) continue;
    const TokenCount chunk =
        std::min<TokenCount>(budget, r->remaining_prefill());
    if (!ensure_prefill_memory(r, r->kv_context + chunk)) continue;
    add_prefill_item(batch, r, chunk, now);
    budget -= chunk;
  }

  // Admit new prompts with their first chunk. Prefill replicas only ever
  // hold prompt KV, which is released at hand-off, so a watermark adds
  // nothing here.
  while (budget > 0 &&
         static_cast<int>(running_.size()) < config_.max_batch_size &&
         static_cast<int>(batch.items.size()) < config_.max_batch_size) {
    RequestState* r = peek_waiting();
    if (r == nullptr) break;
    const TokenCount chunk =
        std::min<TokenCount>(budget, r->remaining_prefill());
    // Absolute KV target: a cache-hit request already holds kv_context
    // resident tokens and only allocates its first cold chunk.
    if (admit_front(r->kv_context + chunk, /*respect_watermark=*/false) ==
        nullptr)
      break;
    add_prefill_item(batch, r, chunk, now);
    budget -= chunk;
  }
}

// ------------------------------------------------------------ decode role

long DisaggDecodeScheduler::peak_blocks_of_running() const {
  long peak = 0;
  for (const RequestState* r : running_)
    peak += block_manager_.blocks_for_tokens(r->request.total_tokens());
  return peak;
}

void DisaggDecodeScheduler::fill_batch(BatchSpec& batch, Seconds now) {
  // Admit migrated requests: allocate their already-transferred prompt KV
  // plus the next token, only while the pool can hold every admitted
  // request at its maximum length (no preemption ever).
  while (static_cast<int>(running_.size()) < config_.max_batch_size) {
    RequestState* r = peek_waiting();
    if (r == nullptr) break;
    VIDUR_CHECK_MSG(r->prefill_complete(),
                    "request " << r->request.id
                               << " reached a decode replica before its "
                                  "prefill completed");
    const long peak_after =
        peak_blocks_of_running() +
        block_manager_.blocks_for_tokens(r->request.total_tokens());
    if (peak_after > block_manager_.total_blocks()) break;
    if (admit_front(r->kv_context + 1, /*respect_watermark=*/false) == nullptr)
      break;
  }

  // Batch every runnable decode; admission guarantees memory.
  for (RequestState* r : running_) {
    if (static_cast<int>(batch.items.size()) >= config_.max_batch_size) break;
    if (r->in_flight || r->finished()) continue;
    VIDUR_CHECK_MSG(ensure_decode_memory(r, /*allow_preemption=*/false),
                    "disaggregated decode ran out of KV blocks despite "
                    "conservative admission");
    add_decode_item(batch, r, now);
  }
}

}  // namespace vidur
