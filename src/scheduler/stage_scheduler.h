// Replica-stage scheduler (paper §4.5, third tier): serializes micro-batches
// through one pipeline stage. Synchronous pipeline parallelism: a stage runs
// one micro-batch at a time; arrivals queue FIFO.
#pragma once

#include <cstdint>
#include <deque>

#include "common/check.h"
#include "common/types.h"

namespace vidur {

class StageScheduler {
 public:
  using BatchHandle = std::int64_t;

  /// Offer a micro-batch to the stage. Returns true when the stage was idle
  /// and the batch starts immediately; otherwise it is queued.
  bool submit(BatchHandle batch) {
    if (busy_) {
      queue_.push_back(batch);
      return false;
    }
    busy_ = true;
    current_ = batch;
    return true;
  }

  /// The running micro-batch finished. Returns the next queued batch to
  /// start (and keeps the stage busy), or -1 when the stage goes idle.
  BatchHandle complete() {
    VIDUR_CHECK_MSG(busy_, "StageScheduler::complete() on an idle stage");
    if (queue_.empty()) {
      busy_ = false;
      current_ = -1;
      return -1;
    }
    current_ = queue_.front();
    queue_.pop_front();
    return current_;
  }

  bool busy() const { return busy_; }
  BatchHandle current() const { return current_; }
  std::size_t queued() const { return queue_.size(); }

 private:
  bool busy_ = false;
  BatchHandle current_ = -1;
  std::deque<BatchHandle> queue_;
};

}  // namespace vidur
