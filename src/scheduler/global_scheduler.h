// Global scheduler (paper §4.5, first tier): routes arriving requests to
// replicas. Supports classic load balancing (round-robin, least outstanding
// requests) and a stateful policy that defers binding: requests sit in a
// central queue until some replica actually has room, which helps under
// bursty arrivals where early binding hurts.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"
#include "scheduler/request_state.h"

namespace vidur {

enum class GlobalSchedulerKind {
  kRoundRobin,
  kLeastOutstanding,
  kDeferred,  ///< stateful: central queue, replicas pull when they have room
  /// Deferred binding with priority ordering: replicas pull the
  /// highest-priority parked request first (FIFO within a priority level),
  /// so high-priority tenants jump the queue under overload.
  kPriority,
  /// Prefix-cache affinity: route to the replica whose prefix cache holds
  /// the longest resident prefix of the request (session KV, shared system
  /// prompts). Ties — including the no-hit case — fall back to least
  /// outstanding with deterministic lowest-id tie-breaks, so same-seed
  /// replay stays bit-identical.
  kCacheAware,
};

const std::string& global_scheduler_name(GlobalSchedulerKind kind);
GlobalSchedulerKind global_scheduler_from_name(const std::string& name);

class GlobalScheduler {
 public:
  GlobalScheduler(GlobalSchedulerKind kind, int num_replicas);

  /// Route an arriving request. Returns the target replica, or -1 when the
  /// policy defers the decision (request parked in the central queue).
  /// `outstanding` holds each replica's current outstanding request count.
  /// `routable` optionally masks replicas out of consideration (elastic
  /// clusters: only kActive replicas take new work); empty means every
  /// replica is routable. Binding policies skip non-routable replicas with
  /// deterministic tie-breaking (lowest replica id wins) and throw
  /// vidur::Error when no replica is routable.
  ReplicaId route(RequestState* request, const std::vector<int>& outstanding,
                  const std::vector<bool>& routable = {});

  /// Deferred policy: hand over up to `max_requests` parked requests to a
  /// replica that signalled spare capacity. Empty for binding policies.
  std::vector<RequestState*> pull(ReplicaId replica, int max_requests);

  bool has_parked_requests() const { return !central_queue_.empty(); }
  std::size_t num_parked() const { return central_queue_.size(); }
  GlobalSchedulerKind kind() const { return kind_; }

  /// Cache-aware routing probe: resident prefix length (tokens) of
  /// `request` on a replica. Read-only — the probe must not touch cache
  /// stats or LRU state. Unset (or kind != kCacheAware) routes purely on
  /// load.
  void set_cache_probe(
      std::function<TokenCount(const Request&, ReplicaId)> probe) {
    cache_probe_ = std::move(probe);
  }

 private:
  GlobalSchedulerKind kind_;
  int num_replicas_;
  int next_replica_ = 0;  // round-robin cursor
  std::deque<RequestState*> central_queue_;
  std::function<TokenCount(const Request&, ReplicaId)> cache_probe_;
};

}  // namespace vidur
