// The five batching policies shipped with Vidur (paper §4.5 / §5).
//
// Classification per Agrawal et al. 2024 (discussed in paper §2.2):
//   * decode-prioritizing:  FasterTransformer (request-level batching)
//   * prefill-prioritizing: Orca+, vLLM, LightLLM
//   * hybrid (chunked):     Sarathi-Serve
#pragma once

#include "scheduler/replica_scheduler.h"

namespace vidur {

/// Request-level (static) batching: a group of requests is admitted
/// together, prefilled in one iteration, then decoded in lockstep until
/// every member finishes; only then is the next group admitted. KV memory
/// for the whole sequence is reserved up front.
class FasterTransformerScheduler final : public ReplicaScheduler {
 public:
  using ReplicaScheduler::ReplicaScheduler;

 protected:
  void fill_batch(BatchSpec& batch, Seconds now) override;
};

/// Orca+ (Orca on paged attention): iteration-level continuous batching.
/// New requests join with their *whole* prompt as one chunk; running decodes
/// are batched alongside. Prefill-prioritizing: admission happens before
/// decodes are collected.
class OrcaScheduler final : public ReplicaScheduler {
 public:
  using ReplicaScheduler::ReplicaScheduler;

 protected:
  void fill_batch(BatchSpec& batch, Seconds now) override;
};

/// vLLM: throughput-oriented. Eagerly schedules prefill-only batches while
/// any request waits (pausing ongoing decodes); otherwise runs a decode
/// batch. Preempts (restarts) the latest-arrived request on KV exhaustion.
class VllmScheduler final : public ReplicaScheduler {
 public:
  using ReplicaScheduler::ReplicaScheduler;

 protected:
  void fill_batch(BatchSpec& batch, Seconds now) override;
};

/// Sarathi-Serve: hybrid batches under a fixed per-iteration token budget
/// (`chunk_size`). Decodes are never paused; leftover budget is filled with
/// (partial) prefill chunks.
class SarathiScheduler final : public ReplicaScheduler {
 public:
  using ReplicaScheduler::ReplicaScheduler;

 protected:
  void fill_batch(BatchSpec& batch, Seconds now) override;
};

/// LightLLM-style: continuous batching with token-granular, conservative
/// admission — a request is admitted only if the KV pool can hold every
/// running request at its *maximum* future length, so decodes never preempt.
class LightLlmScheduler final : public ReplicaScheduler {
 public:
  using ReplicaScheduler::ReplicaScheduler;

 protected:
  void fill_batch(BatchSpec& batch, Seconds now) override;

 private:
  long peak_blocks_of_running() const;
};

}  // namespace vidur
