#include "scheduler/memory.h"

#include <algorithm>

#include "common/check.h"
#include "operators/op_shapes.h"

namespace vidur {

MemoryPlan plan_memory(const ModelSpec& model, const NodeSpec& node,
                       const ParallelConfig& parallel,
                       double memory_utilization, ByteCount workspace_bytes) {
  model.validate();
  parallel.validate();
  VIDUR_CHECK(memory_utilization > 0 && memory_utilization <= 1.0);

  const OpShapes shapes(model, parallel.tensor_parallel);
  const ByteCount usable = static_cast<ByteCount>(
      static_cast<double>(node.sku.memory_bytes) * memory_utilization);

  MemoryPlan plan;
  plan.weight_bytes_per_gpu =
      model.weight_bytes() / parallel.gpus_per_replica();

  // The KV pool is limited by the most loaded pipeline stage.
  long min_blocks = -1;
  for (StageId stage = 0; stage < parallel.pipeline_parallel; ++stage) {
    const int layers = parallel.layers_per_stage(model, stage);
    const ByteCount kv_per_token =
        static_cast<ByteCount>(2) * layers * shapes.kv_heads_per_gpu() *
        model.head_dim() * kBytesPerElement;
    const ByteCount available =
        usable - plan.weight_bytes_per_gpu - workspace_bytes;
    VIDUR_CHECK_MSG(
        available > 0, "model " << model.name << " does not fit on "
                                << node.sku.name << " with tp="
                                << parallel.tensor_parallel
                                << " pp=" << parallel.pipeline_parallel);
    const long blocks = available / (plan.block_size * kv_per_token);
    if (min_blocks < 0 || blocks < min_blocks) {
      min_blocks = blocks;
      plan.kv_bytes_per_token_per_gpu = kv_per_token;
    }
  }
  plan.num_kv_blocks = min_blocks;
  VIDUR_CHECK_MSG(plan.num_kv_blocks > 0,
                  "no KV-cache memory left for " << model.name << " on "
                                                 << node.sku.name);
  return plan;
}

BlockManager::BlockManager(long total_blocks, TokenCount block_size)
    : total_blocks_(total_blocks), block_size_(block_size) {
  VIDUR_CHECK(total_blocks >= 0);
  VIDUR_CHECK(block_size > 0);
}

long BlockManager::blocks_for_tokens(TokenCount tokens) const {
  VIDUR_CHECK(tokens >= 0);
  return (tokens + block_size_ - 1) / block_size_;
}

bool BlockManager::grow_to(RequestId request, TokenCount total_tokens) {
  const long target = blocks_for_tokens(total_tokens);
  const long current = allocated_to(request);
  if (target <= current) return true;
  const long extra = target - current;
  if (!can_allocate(extra)) return false;
  allocations_[request] = target;
  used_blocks_ += extra;
  return true;
}

void BlockManager::release(RequestId request) {
  auto it = allocations_.find(request);
  if (it == allocations_.end()) return;
  used_blocks_ -= it->second;
  allocations_.erase(it);
}

long BlockManager::allocated_to(RequestId request) const {
  auto it = allocations_.find(request);
  return it == allocations_.end() ? 0 : it->second;
}

void BlockManager::transfer_to_cache(RequestId request, long blocks) {
  auto it = allocations_.find(request);
  VIDUR_CHECK_MSG(it != allocations_.end() && it->second >= blocks,
                  "transfer_to_cache of " << blocks
                                          << " blocks exceeds the request's "
                                             "allocation");
  it->second -= blocks;
  if (it->second == 0) allocations_.erase(it);
  cached_blocks_ += blocks;
}

void BlockManager::release_cached(long blocks) {
  VIDUR_CHECK_MSG(blocks <= cached_blocks_,
                  "release_cached beyond the cached pool");
  cached_blocks_ -= blocks;
  used_blocks_ -= blocks;
}

}  // namespace vidur
