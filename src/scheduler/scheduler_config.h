// Batching-policy selection and tuning knobs (the paper's scheduler portion
// of the deployment configuration space, §6).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace vidur {

enum class SchedulerKind {
  kFasterTransformer,  ///< request-level (static) batching, decode-prioritizing
  kOrca,               ///< Orca+ : iteration-level, whole-prompt prefills
  kVllm,               ///< eager prefills that pause decodes, preempt on OOM
  kSarathi,            ///< hybrid chunked-prefill batches, fixed token budget
  kLightLlm,           ///< token-level memory, conservative no-preempt admission
};

/// Stable name, e.g. "vllm", "sarathi". Inverse: scheduler_from_name.
const std::string& scheduler_name(SchedulerKind kind);
SchedulerKind scheduler_from_name(const std::string& name);
/// Every scheduler name, in declaration order (for listings/validation).
const std::vector<std::string>& scheduler_names();

struct SchedulerConfig {
  SchedulerKind kind = SchedulerKind::kVllm;
  /// Max sequences per iteration (the paper's "BS" knob: 32..512).
  int max_batch_size = 128;
  /// Max tokens per iteration for vLLM / Orca+ (paper: 4096).
  TokenCount max_tokens_per_iteration = 4096;
  /// Sarathi-Serve chunk size (paper: 512 / 1024 / 2048).
  TokenCount chunk_size = 512;
  /// vLLM watermark: fraction of blocks kept free when admitting prefills.
  double watermark_fraction = 0.01;

  void validate() const;
  std::string to_string() const;

  bool operator==(const SchedulerConfig&) const = default;
};

}  // namespace vidur
