#include "scheduler/policies.h"

#include "common/check.h"

namespace vidur {

// ------------------------------------------------------- FasterTransformer

void FasterTransformerScheduler::fill_batch(BatchSpec& batch, Seconds now) {
  if (running_.empty()) {
    // Admit the next group, reserving KV for the whole sequence up front
    // (FasterTransformer allocates max-length buffers statically).
    while (static_cast<int>(batch.items.size()) < config_.max_batch_size) {
      RequestState* r = peek_waiting();
      if (r == nullptr) break;
      if (admit_front(r->request.total_tokens(),
                      /*respect_watermark=*/false) == nullptr)
        break;
      add_prefill_item(batch, r, r->remaining_prefill(), now);
    }
    return;
  }
  // Group in progress: lockstep decode of every unfinished member.
  for (RequestState* r : running_) {
    if (r->in_flight || r->finished() || !r->prefill_complete()) continue;
    add_decode_item(batch, r, now);
  }
}

// ------------------------------------------------------------------ Orca+

void OrcaScheduler::fill_batch(BatchSpec& batch, Seconds now) {
  TokenCount tokens = 0;
  int slots = config_.max_batch_size - static_cast<int>(running_.size());

  // Prefill-prioritizing: admit new requests (whole prompt as one chunk).
  while (slots > 0) {
    RequestState* r = peek_waiting();
    if (r == nullptr) break;
    if (tokens + r->remaining_prefill() > config_.max_tokens_per_iteration)
      break;
    if (admit_front(r->request.prefill_tokens, /*respect_watermark=*/false) ==
        nullptr)
      break;
    tokens += r->remaining_prefill();
    add_prefill_item(batch, r, r->remaining_prefill(), now);
    --slots;
  }

  // Join all runnable decodes.
  for (std::size_t i = 0; i < running_.size(); ++i) {
    // ensure_decode_memory() may preempt and shrink running_; re-check.
    if (i >= running_.size()) break;
    RequestState* r = running_[i];
    if (static_cast<int>(batch.items.size()) >= config_.max_batch_size) break;
    if (r->in_flight || r->finished() || !r->prefill_complete()) continue;
    if (tokens + 1 > config_.max_tokens_per_iteration) break;
    if (!ensure_decode_memory(r, /*allow_preemption=*/true)) continue;
    tokens += 1;
    add_decode_item(batch, r, now);
  }
}

// ------------------------------------------------------------------- vLLM

void VllmScheduler::fill_batch(BatchSpec& batch, Seconds now) {
  // Eager prefill: while requests wait and memory (above the watermark)
  // allows, run a prefill-only batch, pausing decodes. The batch-size knob
  // caps *concurrent* sequences (vLLM's max_num_seqs).
  TokenCount tokens = 0;
  while (static_cast<int>(running_.size()) < config_.max_batch_size) {
    RequestState* r = peek_waiting();
    if (r == nullptr) break;
    if (tokens + r->remaining_prefill() > config_.max_tokens_per_iteration)
      break;
    if (admit_front(r->request.prefill_tokens, /*respect_watermark=*/true) ==
        nullptr)
      break;
    tokens += r->remaining_prefill();
    add_prefill_item(batch, r, r->remaining_prefill(), now);
  }
  if (!batch.items.empty()) return;  // prefill batch formed; decodes paused

  // Decode batch over every runnable request, preempting on OOM.
  for (std::size_t i = 0; i < running_.size(); ++i) {
    // ensure_decode_memory() may preempt and shrink running_; re-check.
    if (i >= running_.size()) break;
    RequestState* r = running_[i];
    if (static_cast<int>(batch.items.size()) >= config_.max_batch_size) break;
    if (r->in_flight || r->finished() || !r->prefill_complete()) continue;
    if (!ensure_decode_memory(r, /*allow_preemption=*/true)) continue;
    add_decode_item(batch, r, now);
  }
}

// ---------------------------------------------------------------- Sarathi

void SarathiScheduler::fill_batch(BatchSpec& batch, Seconds now) {
  TokenCount budget = config_.chunk_size;

  // Decodes first — they are never paused.
  for (std::size_t i = 0; i < running_.size(); ++i) {
    if (i >= running_.size()) break;  // preemption may shrink running_
    RequestState* r = running_[i];
    if (budget <= 0 ||
        static_cast<int>(batch.items.size()) >= config_.max_batch_size)
      break;
    if (r->in_flight || r->finished() || !r->prefill_complete()) continue;
    if (!ensure_decode_memory(r, /*allow_preemption=*/true)) continue;
    add_decode_item(batch, r, now);
    budget -= 1;
  }

  // Continue partially-prefilled requests.
  for (RequestState* r : running_) {
    if (budget <= 0 ||
        static_cast<int>(batch.items.size()) >= config_.max_batch_size)
      break;
    if (r->in_flight || r->prefill_complete()) continue;
    const TokenCount chunk = std::min<TokenCount>(budget, r->remaining_prefill());
    if (!ensure_prefill_memory(r, r->kv_context + chunk)) continue;
    add_prefill_item(batch, r, chunk, now);
    budget -= chunk;
  }

  // Admit new requests with their first chunk. The batch-size knob caps
  // concurrent sequences (max_num_seqs), not just per-iteration items.
  while (budget > 0 &&
         static_cast<int>(running_.size()) < config_.max_batch_size &&
         static_cast<int>(batch.items.size()) < config_.max_batch_size) {
    RequestState* r = peek_waiting();
    if (r == nullptr) break;
    const TokenCount chunk = std::min<TokenCount>(budget, r->remaining_prefill());
    // Absolute KV target: a cache-hit request already holds kv_context
    // resident tokens and only allocates its first cold chunk.
    if (admit_front(r->kv_context + chunk, /*respect_watermark=*/true) ==
        nullptr)
      break;
    add_prefill_item(batch, r, chunk, now);
    budget -= chunk;
  }
}

// --------------------------------------------------------------- LightLLM

long LightLlmScheduler::peak_blocks_of_running() const {
  long peak = 0;
  for (const RequestState* r : running_)
    peak += block_manager_.blocks_for_tokens(r->request.total_tokens());
  return peak;
}

void LightLlmScheduler::fill_batch(BatchSpec& batch, Seconds now) {
  TokenCount tokens = 0;

  // Conservative admission: after admitting, the pool must be able to hold
  // every running request grown to its maximum length.
  while (static_cast<int>(running_.size()) < config_.max_batch_size) {
    RequestState* r = peek_waiting();
    if (r == nullptr) break;
    if (tokens + r->remaining_prefill() > config_.max_tokens_per_iteration)
      break;
    const long peak_after =
        peak_blocks_of_running() +
        block_manager_.blocks_for_tokens(r->request.total_tokens());
    if (peak_after > block_manager_.total_blocks()) break;
    if (admit_front(r->request.prefill_tokens, /*respect_watermark=*/false) ==
        nullptr)
      break;
    tokens += r->remaining_prefill();
    add_prefill_item(batch, r, r->remaining_prefill(), now);
  }

  // All runnable decodes; admission guarantees memory, so never preempt.
  for (RequestState* r : running_) {
    if (static_cast<int>(batch.items.size()) >= config_.max_batch_size) break;
    if (r->in_flight || r->finished() || !r->prefill_complete()) continue;
    VIDUR_CHECK_MSG(ensure_decode_memory(r, /*allow_preemption=*/false),
                    "LightLLM invariant violated: decode ran out of KV "
                    "blocks despite conservative admission");
    add_decode_item(batch, r, now);
  }
}

// ---------------------------------------------------------------- factory

std::unique_ptr<ReplicaScheduler> make_replica_scheduler(
    const SchedulerConfig& config, const MemoryPlan& plan) {
  switch (config.kind) {
    case SchedulerKind::kFasterTransformer:
      return std::make_unique<FasterTransformerScheduler>(config, plan);
    case SchedulerKind::kOrca:
      return std::make_unique<OrcaScheduler>(config, plan);
    case SchedulerKind::kVllm:
      return std::make_unique<VllmScheduler>(config, plan);
    case SchedulerKind::kSarathi:
      return std::make_unique<SarathiScheduler>(config, plan);
    case SchedulerKind::kLightLlm:
      return std::make_unique<LightLlmScheduler>(config, plan);
  }
  throw Error("unhandled SchedulerKind");
}

}  // namespace vidur
