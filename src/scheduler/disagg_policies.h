// Replica schedulers for disaggregated prefill/decode serving
// (Splitwise, Patel et al. 2023; DistServe, Zhong et al. 2024 — discussed in
// paper §2.2). Prefill replicas run only prompt processing; completed
// prompts hand their KV cache to a decode replica over the cluster
// interconnect, where a dedicated decode scheduler batches token generation.
//
// The simulator core performs the hand-off (see SimulationConfig::disagg);
// these policies define what each role executes per iteration.
#pragma once

#include "scheduler/replica_scheduler.h"

namespace vidur {

/// Prefill-role replica: Sarathi-style chunked prompt processing under the
/// `chunk_size` token budget (set chunk_size >= the longest prompt for
/// whole-prompt Orca-style prefills). Never schedules decodes; the simulator
/// extracts each request as soon as its prompt completes.
class DisaggPrefillScheduler final : public ReplicaScheduler {
 public:
  using ReplicaScheduler::ReplicaScheduler;

 protected:
  void fill_batch(BatchSpec& batch, Seconds now) override;
};

/// Decode-role replica: admits migrated requests (prompt KV already
/// resident) with conservative peak-memory admission — every admitted
/// request can grow to its maximum length, so decodes never preempt and a
/// transferred KV cache is never thrown away.
class DisaggDecodeScheduler final : public ReplicaScheduler {
 public:
  using ReplicaScheduler::ReplicaScheduler;

 protected:
  void fill_batch(BatchSpec& batch, Seconds now) override;

 private:
  long peak_blocks_of_running() const;
};

}  // namespace vidur
