#include "scheduler/scheduler_config.h"

#include <sstream>
#include <vector>

#include "common/check.h"

namespace vidur {

namespace {

const std::vector<std::pair<SchedulerKind, std::string>>& names() {
  static const std::vector<std::pair<SchedulerKind, std::string>> table = {
      {SchedulerKind::kFasterTransformer, "faster_transformer"},
      {SchedulerKind::kOrca, "orca+"},
      {SchedulerKind::kVllm, "vllm"},
      {SchedulerKind::kSarathi, "sarathi"},
      {SchedulerKind::kLightLlm, "lightllm"},
  };
  return table;
}

}  // namespace

const std::string& scheduler_name(SchedulerKind kind) {
  for (const auto& [k, n] : names())
    if (k == kind) return n;
  throw Error("unhandled SchedulerKind");
}

SchedulerKind scheduler_from_name(const std::string& name) {
  for (const auto& [k, n] : names())
    if (n == name) return k;
  throw Error("unknown scheduler: " + name);
}

const std::vector<std::string>& scheduler_names() {
  static const std::vector<std::string> all = [] {
    std::vector<std::string> out;
    for (const auto& [k, n] : names()) out.push_back(n);
    return out;
  }();
  return all;
}

void SchedulerConfig::validate() const {
  VIDUR_CHECK(max_batch_size >= 1);
  VIDUR_CHECK(max_tokens_per_iteration >= 1);
  VIDUR_CHECK(chunk_size >= 1);
  VIDUR_CHECK(watermark_fraction >= 0 && watermark_fraction < 1.0);
}

std::string SchedulerConfig::to_string() const {
  std::ostringstream os;
  os << scheduler_name(kind) << "(bs=" << max_batch_size;
  if (kind == SchedulerKind::kSarathi) os << ", chunk=" << chunk_size;
  os << ")";
  return os.str();
}

}  // namespace vidur
