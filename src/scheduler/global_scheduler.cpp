#include "scheduler/global_scheduler.h"

#include <utility>

#include "common/check.h"

namespace vidur {

namespace {

const std::vector<std::pair<GlobalSchedulerKind, std::string>>& names() {
  static const std::vector<std::pair<GlobalSchedulerKind, std::string>>
      table = {
          {GlobalSchedulerKind::kRoundRobin, "round_robin"},
          {GlobalSchedulerKind::kLeastOutstanding, "least_outstanding"},
          {GlobalSchedulerKind::kDeferred, "deferred"},
          {GlobalSchedulerKind::kPriority, "priority"},
          {GlobalSchedulerKind::kCacheAware, "cache_aware"},
      };
  return table;
}

}  // namespace

const std::string& global_scheduler_name(GlobalSchedulerKind kind) {
  for (const auto& [k, n] : names())
    if (k == kind) return n;
  throw Error("unhandled GlobalSchedulerKind");
}

GlobalSchedulerKind global_scheduler_from_name(const std::string& name) {
  for (const auto& [k, n] : names())
    if (n == name) return k;
  throw Error("unknown global scheduler: " + name);
}

GlobalScheduler::GlobalScheduler(GlobalSchedulerKind kind, int num_replicas)
    : kind_(kind), num_replicas_(num_replicas) {
  VIDUR_CHECK(num_replicas >= 1);
}

ReplicaId GlobalScheduler::route(RequestState* request,
                                 const std::vector<int>& outstanding,
                                 const std::vector<bool>& routable) {
  VIDUR_CHECK(request != nullptr);
  VIDUR_CHECK(static_cast<int>(outstanding.size()) == num_replicas_);
  VIDUR_CHECK(routable.empty() ||
              static_cast<int>(routable.size()) == num_replicas_);
  const auto ok = [&](int r) {
    return routable.empty() || routable[static_cast<std::size_t>(r)];
  };
  switch (kind_) {
    case GlobalSchedulerKind::kRoundRobin: {
      for (int step = 0; step < num_replicas_; ++step) {
        const ReplicaId r = next_replica_;
        next_replica_ = (next_replica_ + 1) % num_replicas_;
        if (ok(r)) return r;
      }
      throw Error("global scheduler: no routable replica");
    }
    case GlobalSchedulerKind::kLeastOutstanding: {
      // Deterministic: strictly-lower outstanding wins, so the lowest
      // routable replica id takes every tie.
      ReplicaId best = -1;
      for (int r = 0; r < num_replicas_; ++r) {
        if (!ok(r)) continue;
        if (best < 0 || outstanding[static_cast<std::size_t>(r)] <
                            outstanding[static_cast<std::size_t>(best)])
          best = r;
      }
      if (best < 0) throw Error("global scheduler: no routable replica");
      return best;
    }
    case GlobalSchedulerKind::kCacheAware: {
      // Longest resident prefix wins; ties break to fewer outstanding,
      // then to the lowest replica id (strictly-better wins throughout,
      // so the scan order fixes every tie deterministically).
      ReplicaId best = -1;
      TokenCount best_match = 0;
      for (int r = 0; r < num_replicas_; ++r) {
        if (!ok(r)) continue;
        const TokenCount match =
            cache_probe_ ? cache_probe_(request->request, r) : 0;
        if (best < 0 || match > best_match ||
            (match == best_match &&
             outstanding[static_cast<std::size_t>(r)] <
                 outstanding[static_cast<std::size_t>(best)])) {
          best = r;
          best_match = match;
        }
      }
      if (best < 0) throw Error("global scheduler: no routable replica");
      return best;
    }
    case GlobalSchedulerKind::kDeferred:
      central_queue_.push_back(request);
      return -1;
    case GlobalSchedulerKind::kPriority: {
      // Keep the central queue ordered by priority (descending), FIFO
      // within a level: insert after every parked request of equal or
      // higher priority. Pulls — which happen far more often than
      // arrivals under overload — then just pop the front.
      auto it = central_queue_.end();
      while (it != central_queue_.begin() &&
             (*std::prev(it))->request.priority < request->request.priority)
        --it;
      central_queue_.insert(it, request);
      return -1;
    }
  }
  throw Error("unhandled GlobalSchedulerKind");
}

std::vector<RequestState*> GlobalScheduler::pull(ReplicaId replica,
                                                 int max_requests) {
  (void)replica;
  std::vector<RequestState*> out;
  if (kind_ != GlobalSchedulerKind::kDeferred &&
      kind_ != GlobalSchedulerKind::kPriority)
    return out;
  while (!central_queue_.empty() &&
         static_cast<int>(out.size()) < max_requests) {
    out.push_back(central_queue_.front());
    central_queue_.pop_front();
  }
  return out;
}

}  // namespace vidur
