#include "scheduler/replica_scheduler.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "kvcache/prefix_cache.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace vidur {

ReplicaScheduler::ReplicaScheduler(SchedulerConfig config, MemoryPlan plan)
    : config_(config),
      plan_(plan),
      block_manager_(plan.num_kv_blocks, plan.block_size) {
  config.validate();
}

void ReplicaScheduler::enqueue(RequestState* request) {
  VIDUR_CHECK(request != nullptr);
  // A request that could never fit would deadlock the replica; surface the
  // misconfiguration instead (the capacity search treats it as infeasible).
  const long needed =
      block_manager_.blocks_for_tokens(request->request.total_tokens());
  VIDUR_CHECK_MSG(needed <= block_manager_.total_blocks(),
                  "request " << request->request.id << " ("
                             << request->request.total_tokens()
                             << " tokens) exceeds the replica KV pool of "
                             << plan_.max_kv_tokens() << " tokens");
  waiting_.push_back(request);
  by_id_[request->request.id] = request;
}

BatchSpec ReplicaScheduler::schedule(Seconds now) {
  obs_now_ = now;
  attach_prefix_cache();
  BatchSpec batch;
  fill_batch(batch, now);
  return batch;
}

void ReplicaScheduler::schedule_into(BatchSpec& out, Seconds now) {
  obs_now_ = now;
  attach_prefix_cache();
  out.items.clear();
  fill_batch(out, now);
}

void ReplicaScheduler::attach_prefix_cache() {
  if (cache_ == nullptr) return;
  for (RequestState* r : waiting_) {
    if (r->in_flight) continue;
    attach_one(r);
  }
}

void ReplicaScheduler::attach_one(RequestState* r) {
  if (cache_ == nullptr || r->prefix_checked) return;
  r->prefix_checked = true;
  // Requests arriving with prior progress (disaggregated hand-off of a
  // completed prefill) keep it; the cache only serves cold prefills.
  if (r->prefill_done > 0 || r->kv_context > 0) return;
  const TokenCount matched = cache_->attach(r->request);
  trace_emit(trace_, TraceEventKind::kCacheLookup, obs_now_, obs_self_,
             r->request.id, matched, r->request.prefill_tokens,
             matched > 0 ? 1 : 0);
  if (matched <= 0) return;
  // The matched prefix is resident in the cache pool: it is prefilled
  // KV context the request never allocates or computes itself.
  r->prefill_done = matched;
  r->kv_context = matched;
  r->kv_cached = matched;
  r->kv_capacity = matched;
}

void ReplicaScheduler::set_obs(ReplicaId self, TraceRecorder* trace,
                               Counter* preemptions, Counter* admissions) {
  obs_self_ = self;
  trace_ = trace;
  ctr_preemptions_ = preemptions;
  ctr_admissions_ = admissions;
}

std::vector<RequestState*> ReplicaScheduler::on_batch_end(
    const BatchSpec& batch, Seconds now) {
  obs_now_ = now;
  std::vector<RequestState*> finished;
  for (const BatchItem& item : batch.items) {
    RequestState* r = item.state;
    VIDUR_CHECK_MSG(r != nullptr,
                    "batch completed with no owner for request "
                        << item.request);
    r->in_flight = false;
    // A preempted-and-restarted request may see its old batch complete after
    // the restart; that stale completion carries no progress.
    if (!r->admitted) continue;

    if (item.is_prefill) {
      r->prefill_done += item.q_tokens;
      r->kv_context += item.q_tokens;
      if (item.completes_prefill) {
        VIDUR_CHECK(r->prefill_complete());
        // Every prefill completion is traced (detail=1 marks a restarted
        // request re-completing) so the analysis engine sees re-prefill
        // work; the TTFT timestamp stays first-completion-only.
        trace_emit(trace_, TraceEventKind::kPrefillDone, now, obs_self_,
                   r->request.id,
                   static_cast<std::int64_t>(batch.items.size()), 0,
                   r->record.prefill_completed_time < 0 ? 0 : 1);
        if (r->record.prefill_completed_time < 0)
          r->record.prefill_completed_time = now;
        r->decode_done = 1;  // prefill emits the first output token
        r->record.token_times.push_back(now);
      }
    } else {
      r->decode_done += 1;
      r->kv_context += 1;
      r->record.token_times.push_back(now);
    }

    if (r->finished()) {
      r->record.completed_time = now;
      trace_emit(trace_, TraceEventKind::kCompleted, now, obs_self_,
                 r->request.id, r->record.num_restarts,
                 static_cast<std::int64_t>(batch.items.size()));
      if (cache_ != nullptr) {
        // Donate the shareable prefix KV before dropping pins (so the
        // matched parent chain cannot be evicted mid-donation), then free
        // whatever the cache did not take.
        cache_->retain(r->request, r->kv_context, r->kv_cached,
                       block_manager_);
        cache_->unpin(r->request.id);
      }
      block_manager_.release(r->request.id);
      r->kv_capacity = 0;
      r->kv_cached = 0;
      r->admitted = false;
      running_.erase(std::find(running_.begin(), running_.end(), r));
      by_id_.erase(r->request.id);
      finished.push_back(r);
    }
  }
  return finished;
}

void ReplicaScheduler::extract(RequestState* request) {
  VIDUR_CHECK(request != nullptr);
  VIDUR_CHECK_MSG(request->admitted && !request->in_flight,
                  "extract() requires an admitted request that is not "
                  "currently executing");
  if (cache_ != nullptr) {
    // The prefill replica keeps the conversation's prefix KV resident for
    // future turns; the extracted request re-allocates everything on its
    // decode replica (kv_cached resets — that cache is a different pool).
    cache_->retain(request->request, request->kv_context, request->kv_cached,
                   block_manager_);
    cache_->unpin(request->request.id);
  }
  block_manager_.release(request->request.id);
  request->kv_capacity = 0;
  request->kv_cached = 0;
  request->prefix_checked = false;
  request->admitted = false;
  running_.erase(std::find(running_.begin(), running_.end(), request));
  by_id_.erase(request->request.id);
}

std::vector<RequestState*> ReplicaScheduler::fail_all() {
  std::vector<RequestState*> out;
  out.reserve(running_.size() + waiting_.size());
  // Running first (admission order), then the queue front to back: the
  // deterministic casualty order every same-seed replay reproduces.
  for (RequestState* r : running_) out.push_back(r);
  for (RequestState* r : waiting_) out.push_back(r);
  for (RequestState* r : out) {
    if (cache_ != nullptr) cache_->unpin(r->request.id);
    block_manager_.release(r->request.id);
    by_id_.erase(r->request.id);
    // Progress flags (admitted, prefill_done, ...) are intentionally left
    // as they were: the simulator classifies each casualty — queued handoff
    // vs. lost work — before resetting it for recovery.
  }
  running_.clear();
  waiting_.clear();
  return out;
}

void ReplicaScheduler::release_cached() {
  if (cache_ == nullptr) return;
  // fail_all()/drain left nothing pinned, so every resident block is a
  // reclaimable leaf eventually: evict until the pool reads empty.
  while (cache_->reclaim(1, block_manager_) > 0) {
  }
}

std::vector<RequestState*> ReplicaScheduler::take_waiting() {
  std::vector<RequestState*> out;
  std::deque<RequestState*> keep;
  for (RequestState* r : waiting_) {
    if (r->in_flight) {
      keep.push_back(r);
      continue;
    }
    by_id_.erase(r->request.id);
    // Cache-served progress does not travel: the matched blocks live in
    // THIS replica's pool. Prefilled hand-offs (decode re-homing) keep
    // their context — that KV migrates with them.
    if (!r->prefill_complete()) {
      if (cache_ != nullptr) cache_->unpin(r->request.id);
      r->prefill_done = 0;
      r->kv_context = 0;
      r->kv_cached = 0;
      r->kv_capacity = 0;
      r->prefix_checked = false;
    }
    out.push_back(r);
  }
  waiting_.swap(keep);
  return out;
}

RequestState* ReplicaScheduler::admit_front(TokenCount tokens,
                                            bool respect_watermark) {
  RequestState* r = peek_waiting();
  if (r == nullptr) return nullptr;
  // `tokens` is an absolute KV target; the request only allocates the cold
  // suffix beyond its cache-resident prefix.
  const TokenCount cold = std::max<TokenCount>(0, tokens - r->kv_cached);
  const long needed = block_manager_.blocks_for_tokens(cold) -
                      block_manager_.allocated_to(r->request.id);
  if (!make_room(needed, respect_watermark)) return nullptr;
  VIDUR_CHECK(block_manager_.grow_to(r->request.id, cold));
  sync_kv_capacity(r, tokens);
  waiting_.pop_front();
  running_.push_back(r);
  r->admitted = true;
  if (ctr_admissions_ != nullptr) ctr_admissions_->inc();
  return r;
}

void ReplicaScheduler::sync_kv_capacity(RequestState* r, TokenCount tokens) {
  const TokenCount cold = std::max<TokenCount>(0, tokens - r->kv_cached);
  const TokenCount capacity =
      r->kv_cached + block_manager_.blocks_for_tokens(cold) * plan_.block_size;
  if (capacity > r->kv_capacity) r->kv_capacity = capacity;
}

bool ReplicaScheduler::watermark_ok(long blocks_needed) const {
  const auto watermark = static_cast<long>(
      config_.watermark_fraction *
      static_cast<double>(block_manager_.total_blocks()));
  return block_manager_.free_blocks() - blocks_needed >= watermark;
}

bool ReplicaScheduler::make_room(long blocks, bool respect_watermark) {
  while (true) {
    if (block_manager_.can_allocate(blocks) &&
        (!respect_watermark || watermark_ok(blocks)))
      return true;
    // Active work beats retained prefixes: evict LRU cached blocks until
    // the allocation fits or the cache runs dry.
    if (cache_ == nullptr || cache_->reclaim(1, block_manager_) == 0)
      return false;
  }
}

bool ReplicaScheduler::ensure_decode_memory(RequestState* r,
                                            bool allow_preemption) {
  const TokenCount target = r->kv_context + 1;
  // Fast path: still inside the allocated blocks — no allocator touch.
  // Steady-state decodes only cross a block boundary every block_size
  // iterations.
  if (target <= r->kv_capacity) return true;
  const TokenCount cold = target - r->kv_cached;
  const long needed = block_manager_.blocks_for_tokens(cold) -
                      block_manager_.allocated_to(r->request.id);
  if (make_room(needed, false) &&
      block_manager_.grow_to(r->request.id, cold)) {
    sync_kv_capacity(r, target);
    return true;
  }
  if (!allow_preemption) return false;
  while (RequestState* victim = preempt_one()) {
    // The victim released its blocks; it may have been `r` itself, in which
    // case `r` no longer runs this iteration.
    if (victim == r) return false;
    if (block_manager_.grow_to(r->request.id, target - r->kv_cached)) {
      sync_kv_capacity(r, target);
      return true;
    }
  }
  return false;
}

bool ReplicaScheduler::ensure_prefill_memory(RequestState* r,
                                             TokenCount target_tokens) {
  if (target_tokens <= r->kv_capacity) return true;
  const TokenCount cold =
      std::max<TokenCount>(0, target_tokens - r->kv_cached);
  const long needed = block_manager_.blocks_for_tokens(cold) -
                      block_manager_.allocated_to(r->request.id);
  if (!make_room(needed, false)) return false;
  if (!block_manager_.grow_to(r->request.id, cold)) return false;
  sync_kv_capacity(r, target_tokens);
  return true;
}

void ReplicaScheduler::add_prefill_item(BatchSpec& batch, RequestState* r,
                                        TokenCount chunk, Seconds now) {
  VIDUR_CHECK(chunk > 0 && chunk <= r->remaining_prefill());
  BatchItem item;
  item.request = r->request.id;
  item.q_tokens = chunk;
  item.kv_context = r->kv_context;
  item.is_prefill = true;
  item.completes_prefill = chunk == r->remaining_prefill();
  item.state = r;
  batch.items.push_back(item);
  r->in_flight = true;
  mark_scheduled(r, now);
}

void ReplicaScheduler::add_decode_item(BatchSpec& batch, RequestState* r,
                                       Seconds now) {
  VIDUR_CHECK(r->prefill_complete() && !r->finished());
  BatchItem item;
  item.request = r->request.id;
  item.q_tokens = 1;
  item.kv_context = r->kv_context;
  item.is_prefill = false;
  item.state = r;
  batch.items.push_back(item);
  r->in_flight = true;
  mark_scheduled(r, now);
}

void ReplicaScheduler::mark_scheduled(RequestState* r, Seconds now) {
  if (r->record.first_scheduled_time < 0) {
    r->record.first_scheduled_time = now;
    // The first schedule carries the queue-entry timestamp (integer
    // nanoseconds) so queue wait is measured, not inferred from arrival.
    const std::int64_t queued_ns =
        r->queue_entry_time >= 0
            ? std::llround(r->queue_entry_time * 1e9)
            : -1;
    trace_emit(trace_, TraceEventKind::kScheduled, now, obs_self_,
               r->request.id, queued_ns);
  } else if (r->resched_pending) {
    // Resume after a preemption restart: closes the stall interval for the
    // analysis engine (detail=1 distinguishes it from the TTFT edge).
    trace_emit(trace_, TraceEventKind::kScheduled, now, obs_self_,
               r->request.id, -1, 0, 1);
  }
  r->resched_pending = false;
}

RequestState* ReplicaScheduler::preempt_one() {
  // Lowest priority = latest arrival (highest id) among running requests
  // that are not currently executing.
  RequestState* victim = nullptr;
  for (RequestState* r : running_) {
    if (r->in_flight) continue;
    if (victim == nullptr || r->request.id > victim->request.id) victim = r;
  }
  if (victim == nullptr) return nullptr;
  trace_emit(trace_, TraceEventKind::kPreempted, obs_now_, obs_self_,
             victim->request.id);
  if (ctr_preemptions_ != nullptr) ctr_preemptions_->inc();
  block_manager_.release(victim->request.id);
  if (cache_ != nullptr) cache_->unpin(victim->request.id);
  victim->restart();
  running_.erase(std::find(running_.begin(), running_.end(), victim));
  // Recomputed from scratch, at the head of the queue (vLLM semantics).
  waiting_.push_front(victim);
  // If the victim's prefix blocks are still resident (its own donation or a
  // session sibling's), re-attach them now — the admission pass that
  // triggered this preemption already ran attach_prefix_cache, and without
  // this the restart would re-charge the full prefill.
  attach_one(victim);
  return victim;
}

}  // namespace vidur
