// Mutable per-request serving state, owned by the simulator and manipulated
// by the scheduler stack.
#pragma once

#include "common/types.h"
#include "metrics/metrics.h"
#include "workload/request.h"

namespace vidur {

struct RequestState {
  Request request;
  ReplicaId replica = -1;

  TokenCount prefill_done = 0;  ///< prompt tokens processed so far
  TokenCount decode_done = 0;   ///< output tokens produced so far
  TokenCount kv_context = 0;    ///< tokens currently resident in KV cache
  /// Tokens the current block allocation can hold (scheduler-maintained
  /// mirror of the BlockManager's per-request allocation): decode-memory
  /// checks only consult the allocator when a block boundary is crossed.
  TokenCount kv_capacity = 0;
  /// Leading tokens served from the replica's prefix cache: they count in
  /// kv_context/prefill_done but their blocks live in the cache pool (the
  /// request's own allocation covers only the cold suffix) and their
  /// prefill compute is skipped.
  TokenCount kv_cached = 0;
  /// The prefix cache was consulted for this enqueue (one lookup per
  /// (re-)admission; reset by restart and re-routing).
  bool prefix_checked = false;
  bool in_flight = false;       ///< member of a batch currently executing
  bool admitted = false;        ///< holds KV-cache memory on its replica
  /// A preemption restarted this request; the next batch membership emits a
  /// resume trace record (kScheduled, detail=1) closing the stall interval.
  bool resched_pending = false;
  /// When the request last entered a replica waiting queue (simulator-
  /// stamped at enqueue); rides on the first kScheduled trace record so
  /// queue wait is measured, not inferred. -1 before any enqueue.
  Seconds queue_entry_time = -1.0;

  RequestRecord record;  ///< metric timestamps (filled by the scheduler)

  bool prefill_complete() const {
    return prefill_done >= request.prefill_tokens;
  }
  bool finished() const {
    return prefill_complete() && decode_done >= request.decode_tokens;
  }
  TokenCount remaining_prefill() const {
    return request.prefill_tokens - prefill_done;
  }

  /// Reset to the unprocessed state (vLLM preempt-and-restart).
  void restart() {
    prefill_done = 0;
    decode_done = 0;
    kv_context = 0;
    kv_capacity = 0;
    kv_cached = 0;
    prefix_checked = false;  // the next schedule may re-attach to the cache
    admitted = false;
    resched_pending = true;
    ++record.num_restarts;
  }
};

}  // namespace vidur
