// Replica scheduler (paper §4.5, second tier): owns batching and memory
// management for one model replica. Concrete policies (FasterTransformer,
// Orca+, vLLM, Sarathi-Serve, LightLLM) override the batch-formation hook;
// admission, preemption and accounting helpers live here, which is what
// keeps each policy small (the paper notes every policy fits in ~150 lines).
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "execution/batch_spec.h"
#include "scheduler/memory.h"
#include "scheduler/request_state.h"
#include "scheduler/scheduler_config.h"

namespace vidur {

class TraceRecorder;
class PrefixCache;
struct Counter;

class ReplicaScheduler {
 public:
  ReplicaScheduler(SchedulerConfig config, MemoryPlan plan);
  virtual ~ReplicaScheduler() = default;

  ReplicaScheduler(const ReplicaScheduler&) = delete;
  ReplicaScheduler& operator=(const ReplicaScheduler&) = delete;

  /// A new (or re-routed) request enters this replica's waiting queue.
  /// Throws vidur::Error if the request can never fit in the KV pool.
  void enqueue(RequestState* request);

  /// Form the next iteration's batch: performs admission/allocation, marks
  /// chosen requests in-flight and stamps first-schedule times. An empty
  /// batch means no runnable work right now.
  BatchSpec schedule(Seconds now);

  /// schedule() into caller-owned storage: clears `out` and fills it,
  /// reusing its item capacity (the simulator recycles in-flight slots so
  /// steady state forms batches without allocating).
  void schedule_into(BatchSpec& out, Seconds now);

  /// A batch finished its final pipeline stage: advance request states,
  /// release memory of finished requests. Returns the finished requests.
  std::vector<RequestState*> on_batch_end(const BatchSpec& batch,
                                          Seconds now);

  /// Remove an unfinished, admitted request from this replica, releasing its
  /// KV blocks (disaggregated serving: the simulator extracts a request once
  /// its prefill completes, then hands it to a decode replica).
  void extract(RequestState* request);

  /// Remove and return every queued-but-unstarted request (the waiting
  /// queue), leaving admitted/running work untouched. Elastic clusters
  /// re-route these through the GlobalScheduler when the replica starts
  /// draining, so the drain only has to finish work that actually began
  /// here. Requests whose stale preempted batch is still executing are
  /// kept (they must stay findable for the batch-end bookkeeping).
  std::vector<RequestState*> take_waiting();

  /// Replica failure (src/fault/): remove and return EVERY request bound to
  /// this replica — waiting and running alike, in deterministic order
  /// (running by admission, then waiting front to back). All KV blocks are
  /// released and cache pins dropped; per-request progress flags are left
  /// untouched so the simulator can classify each casualty (admitted work
  /// lost vs. queued handoff) before restarting it. The scheduler is empty
  /// afterwards.
  std::vector<RequestState*> fail_all();

  /// Tear down the replica's prefix-cache pool (decommission/failure): every
  /// resident cached block is evicted and returned to the BlockManager, so
  /// cluster-wide cached_blocks accounting cannot leak across scale-downs.
  void release_cached();

  /// Request currently enqueued or running here, or nullptr.
  RequestState* find(RequestId id) const {
    const auto it = by_id_.find(id);
    return it == by_id_.end() ? nullptr : it->second;
  }

  int num_waiting() const { return static_cast<int>(waiting_.size()); }
  int num_running() const { return static_cast<int>(running_.size()); }
  /// Requests routed here and not yet completed (for LOR routing).
  int outstanding() const { return num_waiting() + num_running(); }
  bool has_work() const { return outstanding() > 0; }

  const BlockManager& blocks() const { return block_manager_; }
  const SchedulerConfig& config() const { return config_; }

  /// Attach observability (simulator-owned, src/obs/): `self` identifies
  /// this replica in trace records; the counters are shared across the
  /// fleet. All pointers are borrowed; a null trace disables the
  /// scheduler-level trace events, null counters disable counting.
  void set_obs(ReplicaId self, TraceRecorder* trace, Counter* preemptions,
               Counter* admissions);

  /// Redirect just the trace sink, keeping the identity and counters from
  /// set_obs. The sharded simulator points each replica's scheduler at a
  /// per-shard staging recorder for the duration of a window round and back
  /// at the run recorder afterwards.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  /// Attach this replica's prefix cache (simulator-owned, borrowed; null
  /// disables KV reuse). Every schedule() consults it for newly queued
  /// requests, charges only the cold prefill suffix on hits, retains
  /// completed requests' shareable KV, and reclaims cached blocks on
  /// demand before failing an allocation.
  void set_prefix_cache(PrefixCache* cache) { cache_ = cache; }

 protected:
  /// Policy hook: append items to `batch` (and perform allocations).
  virtual void fill_batch(BatchSpec& batch, Seconds now) = 0;

  // ---- helpers shared by the policies ----

  /// Next waiting request, or nullptr.
  RequestState* peek_waiting() const {
    return waiting_.empty() ? nullptr : waiting_.front();
  }

  /// Admit the front waiting request with KV space for `tokens` total
  /// entries (an absolute KV target; cached prefix tokens are already
  /// resident and not re-allocated), honoring an optional watermark.
  /// Returns nullptr when blocked.
  RequestState* admit_front(TokenCount tokens, bool respect_watermark);

  /// Grow `r`'s KV allocation for its next decode token, preempting
  /// lower-priority requests if `allow_preemption`. Returns success.
  bool ensure_decode_memory(RequestState* r, bool allow_preemption);

  /// Grow `r`'s KV allocation to cover a prefill chunk ending at
  /// `target_tokens` cached entries. No preemption.
  bool ensure_prefill_memory(RequestState* r, TokenCount target_tokens);

  /// Refresh r->kv_capacity after the allocator granted `tokens` worth of
  /// blocks (the fast-path bound ensure_decode_memory checks first).
  void sync_kv_capacity(RequestState* r, TokenCount tokens);

  /// Append a prefill-chunk item for `r` (marks in-flight, stamps times).
  void add_prefill_item(BatchSpec& batch, RequestState* r, TokenCount chunk,
                        Seconds now);
  /// Append a decode item for `r`.
  void add_decode_item(BatchSpec& batch, RequestState* r, Seconds now);

  /// Stamp first-schedule time and emit the kScheduled trace record (first
  /// schedule with queue-entry payload, or a detail=1 resume record after a
  /// preemption restart).
  void mark_scheduled(RequestState* r, Seconds now);

  /// vLLM-style preempt-and-restart of the lowest-priority (latest-arrival)
  /// running request that is not in flight. Returns the victim or nullptr.
  RequestState* preempt_one();

  bool watermark_ok(long blocks_needed) const;

  /// True once `blocks` can be allocated (within the optional watermark),
  /// evicting LRU prefix-cache blocks on demand to get there.
  bool make_room(long blocks, bool respect_watermark);

  /// Consult the prefix cache for queued requests that have not been
  /// checked this admission: on a hit the matched prefix is marked as done
  /// prefill resident in the cache pool, so only the cold suffix is
  /// computed and allocated. Emits one kCacheLookup record per lookup.
  void attach_prefix_cache();

  /// Single-request form of attach_prefix_cache, used on the preemption
  /// restart path: a victim whose prefix blocks are still resident re-enters
  /// the queue with the cached prefix already attached instead of
  /// re-charging its full prefill.
  void attach_one(RequestState* r);

  SchedulerConfig config_;
  MemoryPlan plan_;
  BlockManager block_manager_;
  PrefixCache* cache_ = nullptr;  ///< borrowed; null = prefix caching off
  std::deque<RequestState*> waiting_;
  std::vector<RequestState*> running_;  ///< admitted, unfinished
  std::unordered_map<RequestId, RequestState*> by_id_;

  // ---- observability (all optional; see set_obs) ----
  ReplicaId obs_self_ = -1;
  TraceRecorder* trace_ = nullptr;
  Counter* ctr_preemptions_ = nullptr;
  Counter* ctr_admissions_ = nullptr;
  /// preempt_one() has no clock argument; this mirrors the last `now` seen
  /// by schedule()/on_batch_end() so preemption records carry batch time.
  Seconds obs_now_ = 0.0;
};

/// Factory: constructs the policy named by `config.kind`.
std::unique_ptr<ReplicaScheduler> make_replica_scheduler(
    const SchedulerConfig& config, const MemoryPlan& plan);

}  // namespace vidur
