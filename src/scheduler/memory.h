// KV-cache memory planning and block-level management (paper §4.5: the
// replica scheduler's "memory planner" and "memory manager").
#pragma once

#include <unordered_map>

#include "common/types.h"
#include "hardware/parallel_config.h"
#include "hardware/sku.h"
#include "model/model_spec.h"

namespace vidur {

/// Static memory budget of one replica under a parallelism config.
struct MemoryPlan {
  ByteCount weight_bytes_per_gpu = 0;
  /// KV bytes one token occupies on the most loaded GPU of the replica.
  ByteCount kv_bytes_per_token_per_gpu = 0;
  /// Paged KV blocks available to the replica (bottleneck stage).
  long num_kv_blocks = 0;
  TokenCount block_size = kKvBlockSize;

  TokenCount max_kv_tokens() const { return num_kv_blocks * block_size; }
};

/// Computes the replica memory plan. Throws vidur::Error when the model does
/// not fit (weights + workspace exceed device memory).
MemoryPlan plan_memory(const ModelSpec& model, const NodeSpec& node,
                       const ParallelConfig& parallel,
                       double memory_utilization = 0.9,
                       ByteCount workspace_bytes = 2LL * 1024 * 1024 * 1024);

/// Paged KV-cache block allocator for one replica (vLLM-style).
class BlockManager {
 public:
  BlockManager(long total_blocks, TokenCount block_size);

  long total_blocks() const { return total_blocks_; }
  long free_blocks() const { return total_blocks_ - used_blocks_; }
  long used_blocks() const { return used_blocks_; }
  double utilization() const {
    if (total_blocks_ == 0) return 0.0;
    return static_cast<double>(used_blocks_) /
           static_cast<double>(total_blocks_);
  }

  /// Blocks needed to hold `tokens` KV entries.
  long blocks_for_tokens(TokenCount tokens) const;

  bool can_allocate(long blocks) const { return blocks <= free_blocks(); }

  /// Grow `request`'s allocation to cover `total_tokens` KV entries.
  /// Returns false (and changes nothing) if the blocks are unavailable.
  bool grow_to(RequestId request, TokenCount total_tokens);

  /// Release all blocks held by `request` (no-op if it holds none).
  void release(RequestId request);

  long allocated_to(RequestId request) const;

  /// Blocks held by the prefix cache rather than any live request. They
  /// count as used (the KV-pressure signal sees retained prefixes) until
  /// the cache evicts them via release_cached.
  long cached_blocks() const { return cached_blocks_; }

  /// Move `blocks` of `request`'s allocation into the cached pool (the
  /// request completed but its prefix KV stays resident). used_blocks is
  /// unchanged; the request's allocation shrinks.
  void transfer_to_cache(RequestId request, long blocks);

  /// Free `blocks` from the cached pool (prefix-cache eviction).
  void release_cached(long blocks);

 private:
  long total_blocks_;
  TokenCount block_size_;
  long used_blocks_ = 0;
  long cached_blocks_ = 0;
  std::unordered_map<RequestId, long> allocations_;
};

}  // namespace vidur
