// Ground-truth GPU kernel cost models.
//
// This module is the substitute for the physical A100/H100 devices the paper
// profiles with CUPTI. Each model is a roofline (max of compute time and
// memory time) augmented with the non-idealities that make real kernel
// runtimes hard to fit with simple regression:
//
//   * tile quantization  — GEMM output is computed in fixed-size tiles, so
//     runtime is a staircase in M and N;
//   * wave quantization  — tiles are scheduled in waves across the SMs, so
//     runtime jumps when the tile count crosses a multiple of the SM count;
//   * kernel launch overhead — a fixed per-kernel cost that dominates tiny
//     kernels (decode iterations of small models).
//
// Everything downstream (profiler, estimator, reference executor) treats
// these functions as an opaque device: the estimator never sees the closed
// form, only noisy samples — exactly the information a real profiling run
// provides.
#pragma once

#include <vector>

#include "hardware/sku.h"

namespace vidur::gpu {

/// Fraction of peak tensor-core throughput a well-tuned GEMM reaches.
inline constexpr double kGemmComputeEfficiency = 0.82;
/// Fraction of peak HBM bandwidth streaming kernels reach.
inline constexpr double kMemoryEfficiency = 0.78;
/// Fraction of peak compute reached by FlashAttention-style prefill kernels.
inline constexpr double kAttnPrefillEfficiency = 0.55;
/// Fraction of peak HBM bandwidth reached by paged decode-attention kernels.
inline constexpr double kAttnDecodeEfficiency = 0.65;
/// Fixed kernel launch overhead, seconds.
inline constexpr double kKernelLaunchOverhead = 4.0e-6;

/// Number of streaming multiprocessors (wave quantization granularity).
int sm_count(const SkuSpec& sku);

/// Runtime of C[m,n] = A[m,k] x B[k,n] at fp16.
double gemm_time(const SkuSpec& sku, long m, long k, long n);

/// Runtime of a pointwise/reduction kernel that moves `bytes` through HBM.
double elementwise_time(const SkuSpec& sku, long bytes);

/// FlashAttention-style prefill: `q_tokens` query tokens attending over
/// `kv_tokens` context, on the given per-GPU head slice. Quadratic when
/// q == kv (self-attention over the whole prompt).
double attention_prefill_time(const SkuSpec& sku, long q_tokens,
                              long kv_tokens, int num_q_heads, int head_dim);

/// One (q_tokens, kv_tokens) segment of a variable-length prefill batch.
struct PrefillSegment {
  long q_tokens = 0;
  long kv_tokens = 0;
};

/// Fused variable-length prefill attention over several requests' segments
/// in one kernel (the varlen mode of FlashAttention): occupancy is set by
/// the combined query length, and one launch overhead is paid.
double attention_prefill_varlen_time(const SkuSpec& sku,
                                     const std::vector<PrefillSegment>& segs,
                                     int num_q_heads, int head_dim);

/// Paged decode attention: dominated by reading `kv_tokens` total KV-cache
/// entries (summed over the batch) for the per-GPU head slice (paper §4.3:
/// runtime is determined by total KV-cache data volume).
double attention_decode_time(const SkuSpec& sku, long kv_tokens,
                             int batch_size, int num_kv_heads, int head_dim);

/// Ring all-reduce of `bytes` across `world` GPUs on a node with pairwise
/// NVLink: collectives that span more than one NVLink pair fall back to a
/// slower effective bandwidth.
double allreduce_time(const NodeSpec& node, long bytes, int world);

/// Ring all-gather of `bytes` (total gathered size) across `world` GPUs.
double allgather_time(const NodeSpec& node, long bytes, int world);

/// Point-to-point activation transfer between adjacent pipeline stages.
double send_recv_time(const NodeSpec& node, long bytes);

}  // namespace vidur::gpu
