#include "gpu/kernel_models.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/types.h"

namespace vidur::gpu {

namespace {

/// Collective launch latency per hop, seconds (NCCL-like).
constexpr double kCollectiveLatency = 6.0e-6;
/// Pipeline send/recv latency, seconds.
constexpr double kSendRecvLatency = 8.0e-6;

long ceil_div(long a, long b) { return (a + b - 1) / b; }

}  // namespace

int sm_count(const SkuSpec& sku) {
  if (sku.name == "h100") return 132;
  return 108;  // A100 and default
}

double gemm_time(const SkuSpec& sku, long m, long k, long n) {
  VIDUR_CHECK(m > 0 && k > 0 && n > 0);

  // The library picks the fastest kernel variant per shape (cuBLAS-style
  // heuristics), so the modeled compute cost is the min over tile configs.
  // Tile and wave quantization still leave a sawtooth in m and n — the
  // non-linearity the paper's random-forest estimator exists to capture —
  // but tile-config adaptivity keeps the cliffs realistic (tens of percent,
  // not 2x).
  const long sms = sm_count(sku);
  const long tile_n = 128;
  double compute = 0.0;
  for (long tile_m : {16L, 32L, 64L, 128L}) {
    const long tiles = ceil_div(m, tile_m) * ceil_div(n, tile_n);
    // Wave quantization: tiles execute in waves of `sms` tiles; a partial
    // final wave costs as much as a full one.
    const long waves = ceil_div(tiles, sms);
    // Every SM runs one tile_m x tile_n x k MAC block per wave; smaller
    // tiles achieve a lower fraction of peak.
    const double tile_eff =
        kGemmComputeEfficiency *
        (0.55 + 0.45 * static_cast<double>(tile_m) / 128.0);
    const double flops_per_wave =
        2.0 * static_cast<double>(tile_m) * tile_n * k * sms;
    const double candidate =
        waves * flops_per_wave / (sku.peak_flops() * tile_eff);
    if (compute == 0.0 || candidate < compute) compute = candidate;
  }

  // Memory cost: stream A, B and C once.
  const double bytes =
      static_cast<double>(kBytesPerElement) * (m * k + k * n + m * n);
  const double memory = bytes / (sku.hbm_bytes_per_sec() * kMemoryEfficiency);

  return std::max(compute, memory) + kKernelLaunchOverhead;
}

double elementwise_time(const SkuSpec& sku, long bytes) {
  VIDUR_CHECK(bytes >= 0);
  return static_cast<double>(bytes) /
             (sku.hbm_bytes_per_sec() * kMemoryEfficiency) +
         kKernelLaunchOverhead;
}

double attention_prefill_time(const SkuSpec& sku, long q_tokens,
                              long kv_tokens, int num_q_heads, int head_dim) {
  return attention_prefill_varlen_time(sku, {{q_tokens, kv_tokens}},
                                       num_q_heads, head_dim);
}

double attention_prefill_varlen_time(const SkuSpec& sku,
                                     const std::vector<PrefillSegment>& segs,
                                     int num_q_heads, int head_dim) {
  VIDUR_CHECK(!segs.empty());
  VIDUR_CHECK(num_q_heads > 0 && head_dim > 0);

  double flops = 0.0, bytes = 0.0;
  long total_q = 0;
  for (const PrefillSegment& seg : segs) {
    VIDUR_CHECK(seg.q_tokens > 0 && seg.kv_tokens >= seg.q_tokens);
    // QK^T and PV: 2 matmuls of q x kv x head_dim per head.
    flops += 4.0 * static_cast<double>(seg.q_tokens) * seg.kv_tokens *
             head_dim * num_q_heads;
    // Stream Q, K, V, O through HBM (no score materialization).
    bytes += static_cast<double>(kBytesPerElement) * head_dim *
             (2.0 * seg.q_tokens + 2.0 * seg.kv_tokens) * num_q_heads;
    total_q += seg.q_tokens;
  }
  // Short combined queries underutilize the kernel (fewer tiles in flight).
  const double occupancy =
      std::min(1.0, static_cast<double>(total_q * num_q_heads) /
                        (128.0 * sm_count(sku)));
  const double eff = kAttnPrefillEfficiency * (0.35 + 0.65 * occupancy);
  const double compute = flops / (sku.peak_flops() * eff);
  const double memory = bytes / (sku.hbm_bytes_per_sec() * kMemoryEfficiency);

  return std::max(compute, memory) + kKernelLaunchOverhead;
}

double attention_decode_time(const SkuSpec& sku, long kv_tokens,
                             int batch_size, int num_kv_heads, int head_dim) {
  VIDUR_CHECK(kv_tokens >= 0 && batch_size > 0);
  VIDUR_CHECK(num_kv_heads > 0 && head_dim > 0);
  if (kv_tokens == 0) return kKernelLaunchOverhead;

  // Dominated by fetching K and V for every cached token of every request.
  const double kv_bytes = 2.0 * static_cast<double>(kv_tokens) * num_kv_heads *
                          head_dim * kBytesPerElement;
  // Small batches cannot saturate HBM (fewer parallel fetch streams).
  const double parallelism = std::min(
      1.0, static_cast<double>(batch_size * num_kv_heads) / (2.0 * sm_count(sku)));
  const double eff = kAttnDecodeEfficiency * (0.45 + 0.55 * parallelism);
  const double memory = kv_bytes / (sku.hbm_bytes_per_sec() * eff);

  return memory + kKernelLaunchOverhead;
}

namespace {

/// Effective per-link bandwidth for a collective spanning `world` GPUs.
double collective_bandwidth(const NodeSpec& node, int world) {
  const double nvlink = node.sku.nvlink_bandwidth_gbps * 1e9;
  if (world <= node.nvlink_pair_size) return nvlink;
  // Spanning NVLink pairs: part of the ring crosses the slower fabric.
  const double pcie = node.sku.pcie_bandwidth_gbps * 1e9;
  // Harmonic blend: ring throughput is set by the slowest hops, softened
  // because NCCL overlaps transfers across channels.
  return 1.0 / (0.65 / nvlink + 0.35 / pcie);
}

}  // namespace

double allreduce_time(const NodeSpec& node, long bytes, int world) {
  VIDUR_CHECK(bytes >= 0 && world >= 1);
  if (world == 1 || bytes == 0) return 0.0;
  const double bw = collective_bandwidth(node, world);
  const double n = world;
  const double transfer = 2.0 * (n - 1.0) / n * static_cast<double>(bytes) / bw;
  return transfer + kCollectiveLatency * (n - 1.0);
}

double allgather_time(const NodeSpec& node, long bytes, int world) {
  VIDUR_CHECK(bytes >= 0 && world >= 1);
  if (world == 1 || bytes == 0) return 0.0;
  const double bw = collective_bandwidth(node, world);
  const double n = world;
  const double transfer = (n - 1.0) / n * static_cast<double>(bytes) / bw;
  return transfer + kCollectiveLatency * (n - 1.0);
}

double send_recv_time(const NodeSpec& node, long bytes) {
  VIDUR_CHECK(bytes >= 0);
  if (bytes == 0) return 0.0;
  const double bw = node.sku.nvlink_bandwidth_gbps * 1e9;
  return static_cast<double>(bytes) / bw + kSendRecvLatency;
}

}  // namespace vidur::gpu
