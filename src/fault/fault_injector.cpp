#include "fault/fault_injector.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "obs/trace.h"

namespace vidur {

FaultInjector::FaultInjector(const FaultConfig& config, EventQueue* events,
                             Hooks hooks)
    : config_(config), events_(events), hooks_(std::move(hooks)) {
  VIDUR_CHECK(events_ != nullptr);
  VIDUR_CHECK(hooks_.active_replicas && hooks_.kill && hooks_.drain &&
              hooks_.set_slow_factor && hooks_.work_remaining);
  // One RNG lineage per profile, forked in profile order off the config
  // seed: a profile's draws never depend on another profile's activity.
  Rng root(config_.seed);
  for (const FaultProfile& p : config_.profiles) {
    Stream s;
    s.profile = &p;
    s.crash_rng = root.fork();
    s.degrade_rng = root.fork();
    s.victim_rng = root.fork();
    streams_.push_back(std::move(s));
  }
}

void FaultInjector::start() {
  // streams_ holds pointers into config_.profiles; both live here, so the
  // references stay stable.
  for (Stream& s : streams_) {
    for (const SpotWindow& w : s.profile->spot_windows)
      events_->schedule(w.start,
                        [this, &s, &w] { open_spot_window(*s.profile, w); });
    if (s.profile->crashes()) schedule_next_crash(s);
    if (s.profile->degrades()) schedule_next_degrade(s);
  }
}

void FaultInjector::schedule_next_crash(Stream& s) {
  const Seconds gap =
      s.crash_rng.exponential(1.0 / s.profile->crash_mtbf_s);
  events_->schedule(events_->now() + gap, [this, &s] { fire_crash(s); });
}

void FaultInjector::schedule_next_degrade(Stream& s) {
  const Seconds gap =
      s.degrade_rng.exponential(1.0 / s.profile->degrade_mtbf_s);
  events_->schedule(events_->now() + gap, [this, &s] { fire_degrade(s); });
}

void FaultInjector::fire_crash(Stream& s) {
  const std::vector<ReplicaId> active =
      hooks_.active_replicas(s.profile->pool);
  // Never the last active replica: a skipped failure is "the fault landed
  // on capacity we don't model" — the renewal stream keeps going.
  if (active.size() > 1) {
    const ReplicaId victim = active[static_cast<std::size_t>(
        s.victim_rng.uniform_int(0, static_cast<std::int64_t>(active.size()) -
                                        1))];
    ++log_.crashes;
    hooks_.kill(victim, /*hold_until=*/-1.0, /*spot=*/false);
  }
  if (hooks_.work_remaining()) schedule_next_crash(s);
}

void FaultInjector::fire_degrade(Stream& s) {
  const std::vector<ReplicaId> active =
      hooks_.active_replicas(s.profile->pool);
  if (!active.empty()) {
    const ReplicaId victim = active[static_cast<std::size_t>(
        s.victim_rng.uniform_int(0, static_cast<std::int64_t>(active.size()) -
                                        1))];
    ++log_.degrade_events;
    const auto permille =
        static_cast<std::int64_t>(s.profile->degrade_factor * 1000.0);
    trace_emit(trace_, TraceEventKind::kReplicaFault, events_->now(), victim,
               -1, permille, 0, 3);
    hooks_.set_slow_factor(victim, s.profile->degrade_factor);
    // Restore unconditionally: if the victim died (or its slot was
    // re-provisioned) meanwhile, the kill path already reset the factor
    // and this re-asserts healthy — never leaves a slot slow forever.
    events_->schedule(events_->now() + s.profile->degrade_duration_s,
                      [this, victim] {
                        trace_emit(trace_, TraceEventKind::kReplicaFault,
                                   events_->now(), victim, -1, 1000, 0, 4);
                        hooks_.set_slow_factor(victim, 1.0);
                      });
  }
  if (hooks_.work_remaining()) schedule_next_degrade(s);
}

void FaultInjector::open_spot_window(const FaultProfile& profile,
                                     const SpotWindow& w) {
  std::vector<ReplicaId> active = hooks_.active_replicas(profile.pool);
  // Reclaim the highest-id active replicas (mirroring scale-down order, so
  // survivors stay packed at the low ids), never the pool's last one.
  const int take = std::min<int>(
      w.replicas, static_cast<int>(active.size()) - 1);
  if (take <= 0) return;
  std::sort(active.begin(), active.end());
  const Seconds now = events_->now();
  const Seconds hold_until = w.start + w.duration;
  for (int i = 0; i < take; ++i) {
    const ReplicaId victim = active[active.size() - 1 - static_cast<std::size_t>(i)];
    ++log_.spot_reclaims;
    if (w.notice > 0.0) {
      // Notice period: the victim drains; whatever is still running when
      // the notice expires dies with the hard kill.
      trace_emit(trace_, TraceEventKind::kReplicaFault, now, victim, -1, 0,
                 0, 1);
      hooks_.drain(victim);
      events_->schedule(now + w.notice, [this, victim, hold_until] {
        hooks_.kill(victim, hold_until, /*spot=*/true);
      });
    } else {
      hooks_.kill(victim, hold_until, /*spot=*/true);
    }
  }
}

}  // namespace vidur
