// Fault-injection configuration (src/fault/): the deployment-level knobs
// describing how a simulated fleet loses capacity.
//
// Three fault sources, each per pool:
//   - crashes: exponential MTBF replica failures (abrupt; all KV on the
//     victim is lost and its in-flight work restarts elsewhere),
//   - spot-preemption windows: scheduled capacity reclaims with a drain
//     notice — the victim stops taking work at the notice and is hard-killed
//     when the notice expires; the reclaimed slot cannot be re-provisioned
//     until the window ends,
//   - degraded/straggler mode: a replica's execution-time predictions are
//     scaled by a factor for a duration (the replica stays up, just slow).
//
// Failed requests enter the RecoveryPolicy (exponential backoff + jitter,
// bounded attempts, re-routed through the GlobalScheduler), and an optional
// ShedPolicy drops the lowest-priority tenants while surviving capacity sits
// below a floor. Kept dependency-free so the core deployment config can
// embed it without pulling in the injector.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace vidur {

/// One scheduled spot-capacity reclaim against a pool.
struct SpotWindow {
  /// When the reclaim notice lands.
  Seconds start = 0.0;
  /// How long the reclaimed slots stay unavailable after `start`; the
  /// autoscaler cannot re-provision them before `start + duration`.
  Seconds duration = 0.0;
  /// Replicas reclaimed (the pool's highest-id active slots; the injector
  /// never takes a pool's last active replica).
  int replicas = 1;
  /// Grace period between the notice (the victim starts draining) and the
  /// hard kill. 0 = immediate kill.
  Seconds notice = 0.0;

  bool operator==(const SpotWindow&) const = default;
};

/// Fault sources aimed at one pool ("" or "fleet" = the homogeneous fleet).
struct FaultProfile {
  std::string pool;
  /// Mean time between crash failures across the pool's active replicas;
  /// 0 disables crashes. Inter-failure gaps are exponential (seeded).
  Seconds crash_mtbf_s = 0.0;
  /// Scheduled spot-preemption windows.
  std::vector<SpotWindow> spot_windows;
  /// Mean time between degraded-mode (straggler) events; 0 disables.
  Seconds degrade_mtbf_s = 0.0;
  /// Execution-time multiplier while degraded (> 1 = slower).
  double degrade_factor = 1.0;
  /// How long one degraded episode lasts.
  Seconds degrade_duration_s = 0.0;

  bool crashes() const { return crash_mtbf_s > 0.0; }
  bool degrades() const { return degrade_mtbf_s > 0.0; }
  /// Any fault source that removes capacity (crash or spot reclaim)?
  bool kills() const { return crashes() || !spot_windows.empty(); }
  bool any() const { return kills() || degrades(); }

  bool operator==(const FaultProfile&) const = default;
};

/// What a failed request does next: retry with exponential backoff and
/// jitter, re-routed through the GlobalScheduler, for at most max_attempts
/// tries; a request that exhausts its attempts is lost (terminal).
/// Queued-but-unstarted requests on a dead replica lost nothing and are
/// handed off immediately instead of backing off.
struct RecoveryPolicy {
  int max_attempts = 3;
  Seconds backoff_base_s = 0.5;
  double backoff_multiplier = 2.0;
  /// Uniform jitter fraction on top of the deterministic backoff: the delay
  /// is base * multiplier^attempt * (1 + jitter * u), u ~ U[0, 1).
  double jitter = 0.1;

  bool operator==(const RecoveryPolicy&) const = default;
};

/// Graceful degradation: while the cluster's active replica count sits
/// below `min_active_replicas`, arriving (and retrying) requests of tenants
/// with priority <= `max_shed_priority` are shed instead of queued.
/// min_active_replicas = 0 disables shedding.
struct ShedPolicy {
  int min_active_replicas = 0;
  int max_shed_priority = 0;

  bool enabled() const { return min_active_replicas > 0; }

  bool operator==(const ShedPolicy&) const = default;
};

struct FaultConfig {
  /// Seed of the injector's RNG streams (crash/degrade sampling, retry
  /// jitter). 0 = derive from the experiment seed, so same-seed runs
  /// replay bit-identically by default.
  std::uint64_t seed = 0;
  std::vector<FaultProfile> profiles;
  RecoveryPolicy recovery;
  ShedPolicy shed;

  bool enabled() const {
    for (const FaultProfile& p : profiles)
      if (p.any()) return true;
    return false;
  }
  /// Any profile that removes capacity (needs an elastic deployment to
  /// provision replacements)?
  bool any_kills() const {
    for (const FaultProfile& p : profiles)
      if (p.kills()) return true;
    return false;
  }

  /// Throws vidur::Error on nonsensical parameters (non-positive MTBFs,
  /// degenerate windows, a degrade factor <= 0, backoff misconfig, ...).
  void validate() const;

  bool operator==(const FaultConfig&) const = default;
};

}  // namespace vidur
