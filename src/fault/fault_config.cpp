#include "fault/fault_config.h"

#include "common/check.h"

namespace vidur {

void FaultConfig::validate() const {
  for (const FaultProfile& p : profiles) {
    VIDUR_CHECK_MSG(p.crash_mtbf_s >= 0.0,
                    "faults: crash_mtbf_s must be >= 0, got "
                        << p.crash_mtbf_s << " (pool '" << p.pool << "')");
    VIDUR_CHECK_MSG(p.degrade_mtbf_s >= 0.0,
                    "faults: degrade_mtbf_s must be >= 0, got "
                        << p.degrade_mtbf_s << " (pool '" << p.pool << "')");
    if (p.degrades()) {
      VIDUR_CHECK_MSG(p.degrade_factor > 1.0,
                      "faults: degrade_factor must be > 1 when degrade "
                      "events are enabled, got "
                          << p.degrade_factor << " (pool '" << p.pool
                          << "')");
      VIDUR_CHECK_MSG(p.degrade_duration_s > 0.0,
                      "faults: degrade_duration_s must be > 0 when degrade "
                      "events are enabled, got "
                          << p.degrade_duration_s << " (pool '" << p.pool
                          << "')");
    }
    for (const SpotWindow& w : p.spot_windows) {
      VIDUR_CHECK_MSG(w.start >= 0.0, "faults: spot window start must be "
                                      ">= 0, got "
                                          << w.start << " (pool '" << p.pool
                                          << "')");
      VIDUR_CHECK_MSG(w.duration > 0.0,
                      "faults: spot window duration must be > 0, got "
                          << w.duration << " (pool '" << p.pool << "')");
      VIDUR_CHECK_MSG(w.replicas > 0,
                      "faults: spot window replicas must be > 0, got "
                          << w.replicas << " (pool '" << p.pool << "')");
      VIDUR_CHECK_MSG(w.notice >= 0.0 && w.notice <= w.duration,
                      "faults: spot window notice must be in [0, duration], "
                      "got "
                          << w.notice << " with duration " << w.duration
                          << " (pool '" << p.pool << "')");
    }
  }
  VIDUR_CHECK_MSG(recovery.max_attempts >= 1,
                  "faults: recovery.max_attempts must be >= 1, got "
                      << recovery.max_attempts);
  VIDUR_CHECK_MSG(recovery.backoff_base_s > 0.0,
                  "faults: recovery.backoff_base_s must be > 0, got "
                      << recovery.backoff_base_s);
  VIDUR_CHECK_MSG(recovery.backoff_multiplier >= 1.0,
                  "faults: recovery.backoff_multiplier must be >= 1, got "
                      << recovery.backoff_multiplier);
  VIDUR_CHECK_MSG(recovery.jitter >= 0.0 && recovery.jitter < 1.0,
                  "faults: recovery.jitter must be in [0, 1), got "
                      << recovery.jitter);
  VIDUR_CHECK_MSG(shed.min_active_replicas >= 0,
                  "faults: shed.min_active_replicas must be >= 0, got "
                      << shed.min_active_replicas);
  VIDUR_CHECK_MSG(shed.max_shed_priority >= 0,
                  "faults: shed.max_shed_priority must be >= 0, got "
                      << shed.max_shed_priority);
}

}  // namespace vidur
