// FaultInjector: deterministic fault scheduling over the simulation's
// EventQueue (the tentpole of src/fault/).
//
// Each FaultProfile aims three independent event streams at one pool's
// replica slots:
//   - crashes: a renewal process with exponential inter-failure gaps
//     (mean crash_mtbf_s), each firing killing one uniformly-chosen active
//     replica of the pool,
//   - spot windows: scheduled up front; at each window's start the injector
//     drains the pool's highest-id active replicas (the reclaim notice) and
//     hard-kills whichever are still up when the notice expires, holding
//     the reclaimed slots until the window closes,
//   - degraded mode: a renewal process like crashes, but the victim stays
//     up with its execution-time predictions scaled by degrade_factor for
//     degrade_duration_s.
//
// Two invariants keep chaos runs well-posed: the injector never removes a
// pool's last active replica (the fleet stays routable; disaggregated
// decode pools keep a migration target), and every random draw comes from
// Rng streams forked per profile off FaultConfig::seed — same seed, same
// faults, bit for bit.
//
// The injector only *selects and times* faults; the mechanics (tearing
// down scheduler/KV state, the ClusterManager lifecycle, recovery routing)
// stay in the simulator behind the Hooks.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "fault/fault_config.h"
#include "sim/event_queue.h"

namespace vidur {

class TraceRecorder;

class FaultInjector {
 public:
  /// Callbacks into the simulator. All are required.
  struct Hooks {
    /// Active replica ids of the profile's target pool, ascending ("" =
    /// the whole fleet). The injector picks victims from this list only.
    std::function<std::vector<ReplicaId>(const std::string& pool)>
        active_replicas;
    /// Abruptly remove `replica` (crash or expired spot notice): tear down
    /// its work, fail it through the cluster lifecycle, start recovery.
    /// `hold_until` >= 0 keeps the slot unprovisionable until then; must
    /// tolerate a replica that already left the active/draining states
    /// (a drained spot victim finishing before its notice expires).
    std::function<void(ReplicaId, Seconds hold_until, bool spot)> kill;
    /// Spot reclaim notice: stop routing to `replica`, let it drain.
    std::function<void(ReplicaId)> drain;
    /// Scale `replica`'s execution-time predictions (1.0 = healthy).
    std::function<void(ReplicaId, double factor)> set_slow_factor;
    /// Renewal streams stop rescheduling once this turns false, so the
    /// event queue can drain at end of run.
    std::function<bool()> work_remaining;
  };

  /// Fault events injected, by source (the resilience section reads these).
  struct Log {
    std::int64_t crashes = 0;
    std::int64_t spot_reclaims = 0;
    std::int64_t degrade_events = 0;
  };

  /// `config` must be validated; seed 0 is accepted (a degenerate but
  /// deterministic stream). Borrowed pointers must outlive the injector.
  FaultInjector(const FaultConfig& config, EventQueue* events, Hooks hooks);

  /// Schedule every spot window and the first crash/degrade samples.
  /// Call once, after ClusterManager::start().
  void start();

  /// Trace kReplicaFault notice/degrade records (borrowed; may be null).
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  const Log& log() const { return log_; }

 private:
  /// Per-profile renewal streams with forked, stream-stable RNGs.
  struct Stream {
    const FaultProfile* profile = nullptr;
    Rng crash_rng;
    Rng degrade_rng;
    Rng victim_rng;
  };

  void schedule_next_crash(Stream& s);
  void schedule_next_degrade(Stream& s);
  void fire_crash(Stream& s);
  void fire_degrade(Stream& s);
  void open_spot_window(const FaultProfile& profile, const SpotWindow& w);

  FaultConfig config_;
  EventQueue* events_;
  Hooks hooks_;
  TraceRecorder* trace_ = nullptr;
  std::vector<Stream> streams_;
  Log log_;
};

}  // namespace vidur
