// Autoscaling policies for the elastic cluster subsystem.
//
// A policy maps a ClusterSample (load and fleet composition at one decision
// tick) to a desired active-replica count; the ClusterManager turns the
// difference into provisioning / draining transitions. Two families ship:
//
//   - kReactive: classic threshold scaling on outstanding requests per
//     replica, with a hysteresis band (scale up above `scale_up_load`,
//     down below `scale_down_load`, hold in between) so load noise inside
//     the band never flaps the fleet.
//   - kPredictive: looks ahead on the scenario's RateProfile by the
//     cold-start delay and sizes the fleet for the worst arrival rate in
//     that window, so capacity is already warm when a (known) surge lands.
#pragma once

#include <memory>
#include <string>

#include "common/types.h"
#include "scenario/rate_profile.h"

namespace vidur {

enum class AutoscalerKind {
  kNone,        ///< fixed fleet (autoscaling disabled)
  kReactive,    ///< queue-depth thresholds with hysteresis + cooldown
  kPredictive,  ///< RateProfile lookahead over the cold-start horizon
};

const std::string& autoscaler_name(AutoscalerKind kind);
AutoscalerKind autoscaler_from_name(const std::string& name);

/// What load quantity a reactive policy sizes the fleet on.
///
///   kOutstanding — waiting + running requests per replica (the classic
///     queue-depth signal; the default, and the right one for pools that
///     receive arrivals: unified fleets and disaggregated prefill pools).
///   kKvPressure — mean KV-cache block utilization across the pool's
///     active replicas. Decode pools scale on this: their load is resident
///     sequences holding KV memory, not a request queue — a decode replica
///     with 40 slow-decoding residents and an empty queue is still full.
enum class ScaleSignal {
  kOutstanding,
  kKvPressure,
};

const std::string& scale_signal_name(ScaleSignal signal);
ScaleSignal scale_signal_from_name(const std::string& name);

struct AutoscalerConfig {
  AutoscalerKind kind = AutoscalerKind::kNone;
  /// Load signal of the reactive policy (predictive ignores it and must
  /// leave it at kOutstanding).
  ScaleSignal signal = ScaleSignal::kOutstanding;

  /// Active-replica floor; draining never goes below it.
  int min_replicas = 1;
  /// Replicas active at t=0 (0 means min_replicas). Initial replicas start
  /// warm — the cold-start delay applies only to scale-ups during the run.
  int initial_replicas = 0;

  // ---- cold start ----
  /// Instance acquisition time (provisioning -> warming).
  Seconds provision_delay = 30.0;
  /// Weight-loading / cache-priming time (warming -> active).
  Seconds warmup_delay = 15.0;

  // ---- decision cadence ----
  /// The policy is evaluated every `decision_interval` seconds while any
  /// request is unfinished.
  Seconds decision_interval = 5.0;
  /// Minimum gap between consecutive scale-ups.
  Seconds scale_up_cooldown = 0.0;
  /// Minimum gap between a scaling action (either direction) and a
  /// subsequent scale-down: freshly added capacity gets time to absorb the
  /// backlog before the fleet shrinks again.
  Seconds scale_down_cooldown = 60.0;
  /// Cap on replicas added or removed per decision (0 = unlimited).
  int max_scale_step = 0;

  // ---- reactive thresholds (outstanding requests per replica) ----
  /// Sizing target: desired = ceil(outstanding / target_load_per_replica).
  double target_load_per_replica = 12.0;
  /// Scale up when load per (active + in-flight) replica exceeds this.
  double scale_up_load = 20.0;
  /// Scale down when load per replica falls below this. The gap between
  /// the two thresholds is the hysteresis band.
  double scale_down_load = 4.0;

  // ---- kKvPressure thresholds (mean KV utilization, 0..1) ----
  /// Sizing target: desired = ceil(active * mean_util / target).
  double target_kv_utilization = 0.6;
  /// Scale up when mean KV utilization across active replicas exceeds this.
  double scale_up_kv_utilization = 0.8;
  /// Scale down below this; the gap to scale_up is the hysteresis band.
  double scale_down_kv_utilization = 0.3;

  // ---- predictive inputs ----
  /// Scenario arrival-rate shape the policy reads the future from.
  RateProfile profile;
  /// Baseline arrival rate the profile multiplies (the scenario's qps).
  double baseline_qps = 0.0;
  /// Sustainable per-replica throughput (measure with capacity search).
  double replica_capacity_qps = 0.0;
  /// Extra margin on the predicted requirement (0.15 = 15% headroom).
  double headroom = 0.15;
  /// Lookahead horizon; 0 means provision_delay + warmup_delay.
  Seconds lookahead = 0.0;

  bool enabled() const { return kind != AutoscalerKind::kNone; }

  /// Throws vidur::Error on nonsensical parameters (thresholds out of
  /// order, non-positive cadence, missing predictive inputs, ...).
  void validate() const;

  bool operator==(const AutoscalerConfig&) const = default;
};

/// Fleet composition and load at one decision tick.
struct ClusterSample {
  Seconds now = 0.0;
  int active = 0;     ///< routable replicas
  int pending = 0;    ///< provisioning + warming (capacity in flight)
  int draining = 0;
  int min_replicas = 1;
  int max_replicas = 1;  ///< fleet size (slot count)
  /// Waiting + running requests across the whole cluster, including the
  /// global scheduler's parked central queue and draining replicas' work.
  int outstanding = 0;
  /// Summed KV-cache utilization (0..1 each) of the active replicas; the
  /// kKvPressure signal divides by `active` for the mean. Zero when the
  /// sampler does not track KV occupancy.
  double kv_pressure = 0.0;
};

class AutoscalerPolicy {
 public:
  virtual ~AutoscalerPolicy() = default;

  /// Desired number of active replicas. The manager clamps the answer to
  /// [min_replicas, max_replicas] and applies cooldowns, so policies only
  /// encode *sizing*, not rate limiting.
  virtual int desired_replicas(const ClusterSample& sample) = 0;

  virtual const std::string& name() const = 0;
};

/// Constructs the policy named by `config.kind`; nullptr for kNone.
/// Throws vidur::Error when the config fails validation.
std::unique_ptr<AutoscalerPolicy> make_autoscaler_policy(
    const AutoscalerConfig& config);

}  // namespace vidur
