// ClusterManager: owns the dynamic replica fleet of an elastic simulation.
//
// Sits between the scenario engine (whose time-varying traffic motivates
// elasticity) and the simulator core (which owns the replica schedulers):
// the manager tracks each replica slot's lifecycle state, periodically asks
// its AutoscalerPolicy for a desired fleet size, and turns the difference
// into provisioning / draining transitions scheduled on the simulation's
// event queue. Cold starts are explicit (provisioning + warming delays);
// scale-downs drain — the replica finishes every request already routed to
// it before the slot is released.
#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "cluster/autoscaler.h"
#include "cluster/replica_state.h"
#include "sim/event_queue.h"

namespace vidur {

class ClusterManager {
 public:
  /// Callbacks into the simulator. All must be set.
  struct Hooks {
    /// Outstanding work bound to a replica (waiting + running requests).
    std::function<int(ReplicaId)> replica_load;
    /// Requests parked in the global scheduler's central queue.
    std::function<int()> parked_requests;
    /// Any request not yet completed? Decision ticks stop rescheduling
    /// once this turns false, so the event queue can drain.
    std::function<bool()> work_remaining;
    /// A replica finished warming and became routable (pull parked work).
    std::function<void(ReplicaId)> on_activated;
    /// A replica entered draining. The simulator re-routes the replica's
    /// queued-but-unstarted requests through the GlobalScheduler here, so
    /// the drain only has to finish work that actually started.
    std::function<void(ReplicaId)> on_draining;
  };

  /// `fleet_size` is the number of replica slots the simulator built (the
  /// scale-up ceiling). Throws vidur::Error on invalid configuration.
  ClusterManager(AutoscalerConfig config, int fleet_size, EventQueue* events,
                 Hooks hooks);
  /// Unregisters the tick handler; a tick still pending in the queue then
  /// fails fast instead of invoking a destroyed manager.
  ~ClusterManager();

  /// Activate the initial replicas (warm at t=0, no cold-start delay) and
  /// schedule the first decision tick. Call once, before the run starts.
  void start();

  ReplicaState state(ReplicaId replica) const {
    return states_[static_cast<std::size_t>(replica)];
  }
  bool is_routable(ReplicaId replica) const {
    return state(replica) == ReplicaState::kActive;
  }
  /// Per-slot routability, in the shape GlobalScheduler::route expects.
  /// Maintained incrementally — cheap to read on every arrival.
  const std::vector<bool>& routable_mask() const { return routable_; }

  int fleet_size() const { return fleet_size_; }
  int num_active() const { return count(ReplicaState::kActive); }
  /// Capacity in flight: provisioning + warming replicas.
  int num_pending() const {
    return count(ReplicaState::kProvisioning) + count(ReplicaState::kWarming);
  }
  int num_draining() const { return count(ReplicaState::kDraining); }

  /// Simulator notification: `replica` has no outstanding work and no batch
  /// in flight. Completes a pending drain; a no-op in any other state.
  void notify_idle(ReplicaId replica);

  /// Capacity/cost accounting up to `end_time` (replicas still up accrue
  /// until then).
  ClusterScalingReport report(Seconds end_time, int gpus_per_replica,
                              double cost_per_gpu_hour) const;

 private:
  void evaluate();  ///< one decision tick
  void scale_up(int count, Seconds now);
  void scale_down(int count, Seconds now);
  void transition(ReplicaId replica, ReplicaState to, Seconds now);
  int count(ReplicaState s) const;

  AutoscalerConfig config_;
  int fleet_size_;
  EventQueue* events_;
  Hooks hooks_;
  std::unique_ptr<AutoscalerPolicy> policy_;

  std::vector<ReplicaState> states_;
  std::vector<bool> routable_;  ///< states_[r] == kActive, kept in sync
  /// Provisioning start of the current paid up-interval; -1 when down.
  std::vector<Seconds> up_since_;
  /// Closed paid up-intervals [provisioning start, decommission). Kept as
  /// intervals (not a running sum) so report(end_time) can clamp activity
  /// past the accounting horizon (e.g. the trailing decision tick).
  std::vector<std::pair<Seconds, Seconds>> paid_intervals_;
  Seconds last_scale_up_ = -kInfiniteTime;
  Seconds last_scale_down_ = -kInfiniteTime;

  std::vector<ScalingEvent> log_;
  std::vector<ReplicaCountSample> timeline_;
  int peak_active_ = 0;
  int num_ups_ = 0;
  int num_downs_ = 0;
};

}  // namespace vidur
