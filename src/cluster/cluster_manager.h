// ClusterManager: owns the dynamic replica fleet of an elastic simulation.
//
// Sits between the scenario engine (whose time-varying traffic motivates
// elasticity) and the simulator core (which owns the replica schedulers):
// the manager tracks each replica slot's lifecycle state, periodically asks
// the autoscaling policies for desired fleet sizes, and turns the
// difference into provisioning / draining transitions scheduled on the
// simulation's event queue. Cold starts are explicit (provisioning +
// warming delays); scale-downs drain — the replica finishes every request
// already routed to it before the slot is released.
//
// The fleet is a list of named pools (cluster/pool.h), each a contiguous
// range of replica slots with its own SKU, cost rate and policy. Pools
// sharing a role form a scaling group: the group makes one sizing decision
// per tick on its own signal (queue depth for arrival-serving roles, KV
// pressure for decode pools), and cost-aware placement then picks *which*
// pool grows or shrinks — scale-out lands on the pool with the lowest
// $/SLO-point (replica rental rate over per-replica capacity), scale-down
// drains the most expensive capacity first. The classic homogeneous fleet
// is the single-pool special case.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/autoscaler.h"
#include "cluster/pool.h"
#include "cluster/replica_state.h"
#include "sim/event_queue.h"

namespace vidur {

class TraceRecorder;
class MetricsRegistry;
struct Counter;

class ClusterManager {
 public:
  /// Callbacks into the simulator. All but replica_kv_utilization must be
  /// set; that one is required only when a pool scales on kKvPressure.
  struct Hooks {
    /// Outstanding work bound to a replica (waiting + running requests).
    std::function<int(ReplicaId)> replica_load;
    /// Requests parked in the global scheduler's central queue.
    std::function<int()> parked_requests;
    /// Any request not yet completed? Decision ticks stop rescheduling
    /// once this turns false, so the event queue can drain.
    std::function<bool()> work_remaining;
    /// A replica finished warming and became routable (pull parked work).
    std::function<void(ReplicaId)> on_activated;
    /// A replica entered draining. The simulator re-routes the replica's
    /// queued-but-unstarted requests through the GlobalScheduler here, so
    /// the drain only has to finish work that actually started.
    std::function<void(ReplicaId)> on_draining;
    /// KV-cache block utilization (0..1) of a replica — the decode-pool
    /// scaling signal.
    std::function<double(ReplicaId)> replica_kv_utilization;
    /// Optional: a replica's slot was released (drain completed or the
    /// replica was failed). The simulator tears down per-replica state the
    /// lifecycle does not own — the prefix-cache pool in particular.
    std::function<void(ReplicaId)> on_decommissioned;
  };

  /// One pool as the manager runs it: a PoolSpec boiled down to scaling
  /// mechanics plus the reporting identity. `capacity_qps` only matters
  /// relative to the other pools (the $/SLO-point ranking); <= 0 ranks the
  /// pool as unit capacity.
  struct ManagedPool {
    std::string name = "fleet";
    std::string sku;
    PoolRole role = PoolRole::kUnified;
    int slots = 0;
    AutoscalerConfig autoscale;  ///< kNone = static pool, pinned at `slots`
    int gpus_per_replica = 1;
    double cost_per_gpu_hour = 0.0;
    double capacity_qps = 0.0;

    /// Active-replica floor (mirrors PoolSpec::floor_replicas).
    int floor_replicas() const {
      return autoscale.enabled() ? autoscale.min_replicas : slots;
    }
    /// Replicas warm at t=0 (mirrors PoolSpec::initial_active).
    int initial_active() const {
      if (!autoscale.enabled()) return slots;
      return autoscale.initial_replicas == 0 ? autoscale.min_replicas
                                             : autoscale.initial_replicas;
    }
  };

  /// Heterogeneous fleet: slots are laid out pool by pool, in order. At
  /// least one pool must autoscale. Throws vidur::Error on invalid
  /// configuration (group inconsistency, floors above ceilings, a
  /// KV-pressure pool without the KV hook, ...).
  ClusterManager(std::vector<ManagedPool> pools, EventQueue* events,
                 Hooks hooks);
  /// Homogeneous fleet: one pool named "fleet" holding `fleet_size` slots.
  /// GPU count and cost rate are supplied at report() time.
  ClusterManager(AutoscalerConfig config, int fleet_size, EventQueue* events,
                 Hooks hooks);
  /// Unregisters the tick handler; a tick still pending in the queue then
  /// fails fast instead of invoking a destroyed manager.
  ~ClusterManager();

  /// Activate the initial replicas (warm at t=0, no cold-start delay) and
  /// schedule the first decision tick. Call once, before the run starts.
  void start();

  ReplicaState state(ReplicaId replica) const {
    return states_[static_cast<std::size_t>(replica)];
  }
  bool is_routable(ReplicaId replica) const {
    return state(replica) == ReplicaState::kActive;
  }
  /// Per-slot routability, in the shape GlobalScheduler::route expects.
  /// Maintained incrementally — cheap to read on every arrival.
  const std::vector<bool>& routable_mask() const { return routable_; }

  int fleet_size() const { return fleet_size_; }
  int num_active() const { return count(ReplicaState::kActive); }
  /// Capacity in flight: provisioning + warming replicas.
  int num_pending() const {
    return count(ReplicaState::kProvisioning) + count(ReplicaState::kWarming);
  }
  int num_draining() const { return count(ReplicaState::kDraining); }

  int num_pools() const { return static_cast<int>(pools_.size()); }
  /// Pool index owning `replica` (slots are laid out pool by pool).
  int pool_of(ReplicaId replica) const {
    return pool_of_[static_cast<std::size_t>(replica)];
  }
  PoolRole role_of(ReplicaId replica) const {
    return pools_[static_cast<std::size_t>(pool_of(replica))].info.role;
  }

  /// Simulator notification: `replica` has no outstanding work and no batch
  /// in flight. Completes a pending drain; a no-op in any other state.
  void notify_idle(ReplicaId replica);
  /// Same, at an explicit timestamp. The sharded simulator defers idle
  /// notifications discovered inside a window round and replays them at the
  /// merge barrier, when the central clock has not yet advanced to the
  /// shard-local time the drain actually completed.
  void notify_idle(ReplicaId replica, Seconds now);

  /// Fault-injection entry points (src/fault/). Both act on the lifecycle
  /// only — the simulator tears down scheduler/KV state around them.
  ///
  /// Abruptly remove an active or draining replica: the slot goes straight
  /// to kDecommissioned (no drain), its paid interval closes at the current
  /// event time, and — when `hold_until` >= 0 — the slot cannot be
  /// re-provisioned before that time (spot reclaims hold capacity for the
  /// window's remainder; crashes pass -1 and free the slot immediately).
  void fail_replica(ReplicaId replica, Seconds hold_until = -1.0);
  /// Begin draining an active replica outside any scaling decision (spot
  /// reclaim notice). No-op unless the replica is kActive.
  void drain_replica(ReplicaId replica);

  /// Attach observability (src/obs/): the trace records every replica
  /// lifecycle transition and autoscaler decision; the registry carries
  /// tick/scale counters. Borrowed pointers; call before start() so the
  /// initial activations are captured too.
  void set_obs(TraceRecorder* trace, MetricsRegistry* registry);

  /// Capacity/cost accounting up to `end_time` (replicas still up accrue
  /// until then), per pool and in total.
  ClusterScalingReport report(Seconds end_time) const;
  /// Homogeneous-fleet form: bills every pool at the given GPU count and
  /// rate (the single-pool constructor does not know them up front).
  ClusterScalingReport report(Seconds end_time, int gpus_per_replica,
                              double cost_per_gpu_hour) const;

 private:
  struct Pool {
    ManagedPool info;
    int begin = 0;  ///< slot range [begin, end)
    int end = 0;
    int num_ups = 0;
    int num_downs = 0;
    int peak_active = 0;
    /// Pool-local active-count step function.
    std::vector<ReplicaCountSample> timeline;
    /// Closed paid up-intervals of this pool's slots.
    std::vector<std::pair<Seconds, Seconds>> paid;
  };

  /// Pools of one role scale together: one sizing decision per tick, then
  /// cost-aware placement across the group's elastic pools.
  struct Group {
    PoolRole role = PoolRole::kUnified;
    std::vector<int> pools;    ///< every pool of the role (static included)
    std::vector<int> elastic;  ///< autoscale-enabled pools (the candidates)
    AutoscalerConfig config;   ///< group policy (validated consistent)
    std::unique_ptr<AutoscalerPolicy> policy;
    Seconds next_due = 0.0;
    Seconds last_scale_up = -kInfiniteTime;
    Seconds last_scale_down = -kInfiniteTime;
  };

  void evaluate();  ///< one decision tick: run every due group
  void evaluate_group(Group& group, Seconds now);
  void scale_up_group(Group& group, int count, Seconds now);
  void scale_down_group(Group& group, int count, Seconds now);
  /// $/SLO-point of one pool: replica rental rate over per-replica
  /// capacity. Lower is the better place to grow.
  double cost_per_slo_point(const Pool& pool) const;
  void transition(ReplicaId replica, ReplicaState to, Seconds now);
  int count(ReplicaState s) const;
  int count_in(const Pool& pool, ReplicaState s) const;
  /// Decommissioned slots of `pool` whose re-provision hold has expired —
  /// the slots scale_up_group may actually take at `now`.
  int available_slots(const Pool& pool, Seconds now) const;
  ClusterScalingReport report_impl(Seconds end_time, int gpus_override,
                                   double cost_override) const;

  int fleet_size_ = 0;
  EventQueue* events_;
  Hooks hooks_;
  std::vector<Pool> pools_;
  std::vector<Group> groups_;

  std::vector<ReplicaState> states_;
  std::vector<bool> routable_;   ///< states_[r] == kActive, kept in sync
  std::vector<int> pool_of_;     ///< slot -> owning pool index
  /// Provisioning start of the current paid up-interval; -1 when down.
  std::vector<Seconds> up_since_;
  /// Earliest time a decommissioned slot may be re-provisioned (spot
  /// reclaim holds); -infinity when unheld.
  std::vector<Seconds> hold_until_;

  std::vector<ScalingEvent> log_;
  std::vector<ReplicaCountSample> timeline_;  ///< fleet-wide active counts
  int peak_active_ = 0;

  // ---- observability (all optional; see set_obs) ----
  TraceRecorder* trace_ = nullptr;
  Counter* ctr_ticks_ = nullptr;
  Counter* ctr_scale_ups_ = nullptr;
  Counter* ctr_scale_downs_ = nullptr;
};

}  // namespace vidur
