// Heterogeneous replica pools: the unit of elastic capacity planning.
//
// A deployment is a list of named pools, each with its own GPU SKU,
// parallelism, serving role and autoscaling policy. The ClusterManager
// drives one lifecycle timeline per pool; pools sharing a role form a
// scaling group whose cost-aware scale-out picks the pool with the lowest
// $/SLO-point (replica rental rate divided by per-replica capacity), and
// disaggregated deployments scale their prefill and decode pools on
// independent signals (pending prefill queue depth vs decode KV pressure).
#pragma once

#include <string>
#include <vector>

#include "cluster/autoscaler.h"
#include "cluster/replica_state.h"
#include "hardware/parallel_config.h"

namespace vidur {

/// What traffic a pool's replicas serve.
///
///   kUnified — every replica runs prefill and decode (classic serving).
///   kPrefill — replicas run prompt processing only; completed prompts ship
///              their KV cache to a decode pool (Splitwise/DistServe).
///   kDecode  — replicas receive prefilled requests via KV hand-off.
///
/// A deployment is either all-unified or prefill+decode; mixing unified
/// pools with disaggregated roles is rejected by validate_pools().
enum class PoolRole {
  kUnified,
  kPrefill,
  kDecode,
};

const std::string& pool_role_name(PoolRole role);
PoolRole pool_role_from_name(const std::string& name);
/// Every role name, in declaration order (for listings / did-you-mean).
const std::vector<std::string>& pool_role_names();

/// One named pool of identical replica slots.
struct PoolSpec {
  std::string name;
  std::string sku_name = "a100";
  PoolRole role = PoolRole::kUnified;
  /// TP/PP of every replica in the pool; num_replicas is the pool's slot
  /// count (its scale-out ceiling).
  ParallelConfig parallel;
  /// Rental rate override, USD per GPU-hour; 0 uses the SKU's list price.
  double cost_per_gpu_hour = 0.0;
  /// Per-pool elastic policy; kNone pins the pool at its slot count
  /// (a static pool — it still serves and bills, but never scales).
  AutoscalerConfig autoscale;
  /// Sustainable per-replica throughput (requests/s) used to rank pools by
  /// $/SLO-point during cost-aware scale-out. 0 = derive automatically:
  /// VidurSession prices a canonical batch through the RuntimeEstimator's
  /// per-SKU predictions. Set all pools or none — mixed sources skew the
  /// ranking.
  double capacity_qps = 0.0;

  int slots() const { return parallel.num_replicas; }
  int gpus_per_replica() const { return parallel.gpus_per_replica(); }
  /// Rental rate actually billed: the override, or the SKU list price.
  double effective_cost_per_gpu_hour() const;
  /// USD per replica-hour (all of one replica's GPUs).
  double replica_cost_per_hour() const;

  /// Active-replica floor of this pool: the autoscaler's min_replicas for
  /// elastic pools, the full slot count for static ones.
  int floor_replicas() const;
  /// Replicas active at t=0.
  int initial_active() const;

  /// Per-pool consistency (name, SKU, parallelism, cost, policy bounds).
  /// Throws vidur::Error with the pool's name in the message.
  void validate() const;

  bool operator==(const PoolSpec&) const = default;
};

/// The slice of an AutoscalerConfig a scaling group decides with: the
/// config with the genuinely per-pool fields (min_replicas,
/// initial_replicas, and the cold-start delays, which scale_up applies per
/// pool) normalized away. Pools of one role that autoscale must agree on
/// this view — the group makes ONE sizing decision per tick, so a
/// threshold or cooldown that differed between same-role pools would be
/// silently ignored.
AutoscalerConfig group_policy_view(AutoscalerConfig config);

/// Cross-pool validation of a full deployment: unique non-empty names,
/// known SKUs, a coherent role mix (decode requires prefill and vice versa,
/// unified never mixes with either), at least one arrival-serving pool, and
/// scaling-group consistency — pools of the same role that autoscale must
/// agree on the whole group_policy_view (kind, signal, cadence, thresholds,
/// cooldowns, step caps, predictive inputs), because the group makes one
/// sizing decision per tick and only the *placement* is per-pool. Throws
/// vidur::Error with an actionable message.
void validate_pools(const std::vector<PoolSpec>& pools);

/// True when the pools describe a disaggregated (prefill/decode) fleet.
bool pools_disaggregated(const std::vector<PoolSpec>& pools);
/// Sum of every pool's slot count.
int total_pool_slots(const std::vector<PoolSpec>& pools);
/// The canonical slot layout — slots laid out pool by pool, in order —
/// as a slot -> pool-index map. Every consumer of a pool deployment's
/// replica-slot space (simulator, session backend factories, manager)
/// derives the mapping from here so the layout cannot silently diverge.
std::vector<int> pool_slot_layout(const std::vector<PoolSpec>& pools);
/// True when at least one pool carries an enabled autoscaling policy.
bool any_pool_autoscaled(const std::vector<PoolSpec>& pools);

/// Scaling report of an all-static pool deployment: every pool pinned at
/// its slot count for the whole run, broken out per pool.
ClusterScalingReport static_pools_report(const std::vector<PoolSpec>& pools,
                                         Seconds makespan);

}  // namespace vidur
