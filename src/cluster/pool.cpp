#include "cluster/pool.h"

#include <set>
#include <utility>

#include "common/check.h"
#include "hardware/sku.h"

namespace vidur {

namespace {

const std::vector<std::pair<PoolRole, std::string>>& role_names() {
  static const std::vector<std::pair<PoolRole, std::string>> table = {
      {PoolRole::kUnified, "unified"},
      {PoolRole::kPrefill, "prefill"},
      {PoolRole::kDecode, "decode"},
  };
  return table;
}

}  // namespace

const std::string& pool_role_name(PoolRole role) {
  for (const auto& [r, n] : role_names())
    if (r == role) return n;
  throw Error("unhandled PoolRole");
}

PoolRole pool_role_from_name(const std::string& name) {
  for (const auto& [r, n] : role_names())
    if (n == name) return r;
  throw Error("unknown pool role: " + name);
}

const std::vector<std::string>& pool_role_names() {
  static const std::vector<std::string> all = [] {
    std::vector<std::string> out;
    for (const auto& [r, n] : role_names()) out.push_back(n);
    return out;
  }();
  return all;
}

double PoolSpec::effective_cost_per_gpu_hour() const {
  return cost_per_gpu_hour > 0 ? cost_per_gpu_hour
                               : sku_by_name(sku_name).cost_per_hour;
}

double PoolSpec::replica_cost_per_hour() const {
  return effective_cost_per_gpu_hour() * gpus_per_replica();
}

int PoolSpec::floor_replicas() const {
  return autoscale.enabled() ? autoscale.min_replicas : slots();
}

int PoolSpec::initial_active() const {
  if (!autoscale.enabled()) return slots();
  return autoscale.initial_replicas == 0 ? autoscale.min_replicas
                                         : autoscale.initial_replicas;
}

void PoolSpec::validate() const {
  VIDUR_CHECK_MSG(!name.empty(), "pool needs a non-empty name");
  sku_by_name(sku_name);  // throws for unknown SKUs
  parallel.validate();
  VIDUR_CHECK_MSG(cost_per_gpu_hour >= 0,
                  "pool '" << name << "' has a negative cost_per_gpu_hour ("
                           << cost_per_gpu_hour
                           << "); use 0 for the SKU list price");
  VIDUR_CHECK_MSG(capacity_qps >= 0,
                  "pool '" << name << "' has a negative capacity_qps");
  autoscale.validate();
  if (autoscale.enabled()) {
    VIDUR_CHECK_MSG(autoscale.min_replicas <= slots(),
                    "pool '" << name << "': autoscale.min_replicas ("
                             << autoscale.min_replicas
                             << ") exceeds the pool's " << slots()
                             << " slots");
    VIDUR_CHECK_MSG(initial_active() <= slots(),
                    "pool '" << name << "': autoscale.initial_replicas ("
                             << autoscale.initial_replicas
                             << ") exceeds the pool's " << slots()
                             << " slots");
  }
}

void validate_pools(const std::vector<PoolSpec>& pools) {
  VIDUR_CHECK_MSG(!pools.empty(), "a pool deployment needs at least one pool");
  std::set<std::string> seen;
  int num_unified = 0, num_prefill = 0, num_decode = 0;
  for (const PoolSpec& pool : pools) {
    pool.validate();
    VIDUR_CHECK_MSG(seen.insert(pool.name).second,
                    "duplicate pool name '" << pool.name
                                            << "'; pool names must be unique");
    switch (pool.role) {
      case PoolRole::kUnified: ++num_unified; break;
      case PoolRole::kPrefill: ++num_prefill; break;
      case PoolRole::kDecode: ++num_decode; break;
    }
  }
  VIDUR_CHECK_MSG(num_unified == 0 || (num_prefill == 0 && num_decode == 0),
                  "pools mix the unified role with prefill/decode roles; a "
                  "deployment is either all-unified or disaggregated "
                  "(prefill + decode pools only)");
  VIDUR_CHECK_MSG(num_decode == 0 || num_prefill > 0,
                  "a decode pool needs a prefill pool to receive prefilled "
                  "requests from; add a pool with role 'prefill' or make "
                  "the decode pool 'unified'");
  VIDUR_CHECK_MSG(num_prefill == 0 || num_decode > 0,
                  "a prefill pool needs a decode pool to hand prefilled "
                  "requests to; add a pool with role 'decode' or make the "
                  "prefill pool 'unified'");

  // Scaling-group consistency: pools of one role that autoscale share one
  // sizing decision per tick (only placement is per-pool), so their
  // policies must agree on everything the decision reads — a threshold or
  // cooldown set on only one pool would otherwise be silently ignored.
  for (const PoolSpec& a : pools) {
    if (!a.autoscale.enabled()) continue;
    for (const PoolSpec& b : pools) {
      if (&a == &b || b.role != a.role || !b.autoscale.enabled()) continue;
      VIDUR_CHECK_MSG(
          group_policy_view(a.autoscale) == group_policy_view(b.autoscale),
          "pools '" << a.name << "' and '" << b.name << "' share the "
                    << pool_role_name(a.role)
                    << " scaling group but disagree on their autoscale "
                       "policy; pools of one role make a single sizing "
                       "decision per tick, so everything except "
                       "min_replicas, initial_replicas and the cold-start "
                       "delays must match");
    }
  }
}

AutoscalerConfig group_policy_view(AutoscalerConfig config) {
  config.min_replicas = 1;
  config.initial_replicas = 0;
  config.provision_delay = 0.0;
  config.warmup_delay = 0.0;
  return config;
}

bool pools_disaggregated(const std::vector<PoolSpec>& pools) {
  for (const PoolSpec& pool : pools)
    if (pool.role != PoolRole::kUnified) return true;
  return false;
}

int total_pool_slots(const std::vector<PoolSpec>& pools) {
  int total = 0;
  for (const PoolSpec& pool : pools) total += pool.slots();
  return total;
}

std::vector<int> pool_slot_layout(const std::vector<PoolSpec>& pools) {
  std::vector<int> layout;
  for (std::size_t p = 0; p < pools.size(); ++p)
    for (int i = 0; i < pools[p].slots(); ++i)
      layout.push_back(static_cast<int>(p));
  return layout;
}

bool any_pool_autoscaled(const std::vector<PoolSpec>& pools) {
  for (const PoolSpec& pool : pools)
    if (pool.autoscale.enabled()) return true;
  return false;
}

ClusterScalingReport static_pools_report(const std::vector<PoolSpec>& pools,
                                         Seconds makespan) {
  VIDUR_CHECK(!pools.empty() && makespan >= 0);
  ClusterScalingReport report;
  report.fleet_size = total_pool_slots(pools);
  report.min_replicas = report.fleet_size;
  report.initial_replicas = report.fleet_size;
  report.peak_active = report.fleet_size;
  report.mean_active_replicas = report.fleet_size;
  report.active_timeline = {ReplicaCountSample{0.0, report.fleet_size}};
  int first_slot = 0;
  for (const PoolSpec& pool : pools) {
    PoolScalingReport p;
    p.name = pool.name;
    p.sku = pool.sku_name;
    p.role = pool_role_name(pool.role);
    p.first_slot = first_slot;
    p.slots = pool.slots();
    p.min_replicas = pool.slots();
    p.initial_replicas = pool.slots();
    p.gpus_per_replica = pool.gpus_per_replica();
    p.cost_per_gpu_hour = pool.effective_cost_per_gpu_hour();
    p.peak_active = pool.slots();
    p.mean_active_replicas = pool.slots();
    p.replica_hours = pool.slots() * makespan / 3600.0;
    p.gpu_hours = p.replica_hours * p.gpus_per_replica;
    p.cost_usd = p.gpu_hours * p.cost_per_gpu_hour;
    p.active_timeline = {ReplicaCountSample{0.0, pool.slots()}};
    report.replica_hours += p.replica_hours;
    report.gpu_hours += p.gpu_hours;
    report.cost_usd += p.cost_usd;
    first_slot += pool.slots();
    report.pools.push_back(std::move(p));
  }
  return report;
}

}  // namespace vidur
