#include "cluster/autoscaler.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/check.h"

namespace vidur {

namespace {

const std::vector<std::pair<AutoscalerKind, std::string>>& kind_names() {
  static const std::vector<std::pair<AutoscalerKind, std::string>> table = {
      {AutoscalerKind::kNone, "none"},
      {AutoscalerKind::kReactive, "reactive"},
      {AutoscalerKind::kPredictive, "predictive"},
  };
  return table;
}

const std::vector<std::pair<ScaleSignal, std::string>>& signal_names() {
  static const std::vector<std::pair<ScaleSignal, std::string>> table = {
      {ScaleSignal::kOutstanding, "outstanding"},
      {ScaleSignal::kKvPressure, "kv_pressure"},
  };
  return table;
}

int clamp_replicas(int n, const ClusterSample& s) {
  return std::clamp(n, s.min_replicas, s.max_replicas);
}

// Threshold scaling with a hysteresis band, on one of two load signals:
// outstanding requests per replica (arrival-serving pools), or mean KV
// utilization across active replicas (decode pools, whose load is resident
// sequences rather than a queue). Capacity already in flight
// (provisioning/warming) counts toward the queue-depth denominator, so
// repeated ticks during a cold start do not over-provision; the band
// between the two thresholds absorbs load noise without fleet changes.
class ReactiveAutoscaler : public AutoscalerPolicy {
 public:
  explicit ReactiveAutoscaler(AutoscalerConfig config)
      : config_(std::move(config)) {}

  int desired_replicas(const ClusterSample& s) override {
    if (config_.signal == ScaleSignal::kKvPressure) return desired_by_kv(s);
    const int effective = s.active + s.pending;
    const double load =
        static_cast<double>(s.outstanding) / std::max(1, effective);
    const int sized = clamp_replicas(
        static_cast<int>(std::ceil(static_cast<double>(s.outstanding) /
                                   config_.target_load_per_replica)),
        s);
    if (load > config_.scale_up_load && sized > effective) return sized;
    if (load < config_.scale_down_load && sized < effective) return sized;
    return effective;  // inside the hysteresis band: hold
  }

  const std::string& name() const override {
    return autoscaler_name(AutoscalerKind::kReactive);
  }

 private:
  int desired_by_kv(const ClusterSample& s) {
    // KV occupancy lives only on active replicas, so the mean ignores
    // pending capacity; sizing then spreads the same total occupancy over
    // the target utilization. Pending capacity still suppresses repeat
    // scale-ups through the `sized > effective` guard.
    const double mean_util = s.kv_pressure / std::max(1, s.active);
    const int effective = s.active + s.pending;
    const int sized = clamp_replicas(
        static_cast<int>(std::ceil(s.kv_pressure /
                                   config_.target_kv_utilization)),
        s);
    if (mean_util > config_.scale_up_kv_utilization && sized > effective)
      return sized;
    if (mean_util < config_.scale_down_kv_utilization && sized < effective)
      return sized;
    return effective;
  }

  AutoscalerConfig config_;
};

// Sizes the fleet for the worst arrival rate visible within the cold-start
// horizon: capacity ordered now is active exactly when the profile says the
// load arrives. Falls back to reactive-style behavior only through its
// headroom margin — an unmodeled burst still lands on the safety factor.
class PredictiveAutoscaler : public AutoscalerPolicy {
 public:
  explicit PredictiveAutoscaler(AutoscalerConfig config)
      : config_(std::move(config)) {}

  int desired_replicas(const ClusterSample& s) override {
    const Seconds lead = config_.lookahead > 0
                             ? config_.lookahead
                             : config_.provision_delay + config_.warmup_delay;
    // Worst factor over [now, now + lead], sampled densely enough to catch
    // step profiles (spike/piecewise) whose edges fall inside the window.
    double peak = 0.0;
    constexpr int kSamples = 8;
    for (int i = 0; i <= kSamples; ++i) {
      const Seconds t = s.now + lead * i / kSamples;
      peak = std::max(peak, config_.profile.factor_at(t));
    }
    const double qps = config_.baseline_qps * peak * (1.0 + config_.headroom);
    return clamp_replicas(
        static_cast<int>(std::ceil(qps / config_.replica_capacity_qps)), s);
  }

  const std::string& name() const override {
    return autoscaler_name(AutoscalerKind::kPredictive);
  }

 private:
  AutoscalerConfig config_;
};

}  // namespace

const std::string& autoscaler_name(AutoscalerKind kind) {
  for (const auto& [k, n] : kind_names())
    if (k == kind) return n;
  throw Error("unhandled AutoscalerKind");
}

AutoscalerKind autoscaler_from_name(const std::string& name) {
  for (const auto& [k, n] : kind_names())
    if (n == name) return k;
  throw Error("unknown autoscaler: " + name);
}

const std::string& scale_signal_name(ScaleSignal signal) {
  for (const auto& [s, n] : signal_names())
    if (s == signal) return n;
  throw Error("unhandled ScaleSignal");
}

ScaleSignal scale_signal_from_name(const std::string& name) {
  for (const auto& [s, n] : signal_names())
    if (n == name) return s;
  throw Error("unknown scale signal: " + name);
}

void AutoscalerConfig::validate() const {
  if (!enabled()) return;
  VIDUR_CHECK_MSG(min_replicas >= 1, "autoscaler: min_replicas must be >= 1");
  VIDUR_CHECK_MSG(initial_replicas == 0 || initial_replicas >= min_replicas,
                  "autoscaler: initial_replicas below min_replicas");
  VIDUR_CHECK(provision_delay >= 0 && warmup_delay >= 0);
  VIDUR_CHECK_MSG(decision_interval > 0,
                  "autoscaler: decision_interval must be positive");
  VIDUR_CHECK(scale_up_cooldown >= 0 && scale_down_cooldown >= 0);
  VIDUR_CHECK(max_scale_step >= 0);
  if (kind == AutoscalerKind::kReactive &&
      signal == ScaleSignal::kOutstanding) {
    VIDUR_CHECK_MSG(target_load_per_replica > 0 && scale_up_load > 0,
                    "autoscaler: loads must be positive");
    VIDUR_CHECK_MSG(scale_down_load >= 0 && scale_down_load < scale_up_load,
                    "autoscaler: scale_down_load must sit below "
                    "scale_up_load (hysteresis band)");
    VIDUR_CHECK_MSG(target_load_per_replica >= scale_down_load &&
                        target_load_per_replica <= scale_up_load,
                    "autoscaler: target load must lie inside the "
                    "hysteresis band, or sizing re-triggers itself");
  }
  if (kind == AutoscalerKind::kReactive &&
      signal == ScaleSignal::kKvPressure) {
    VIDUR_CHECK_MSG(target_kv_utilization > 0 && target_kv_utilization <= 1 &&
                        scale_up_kv_utilization > 0 &&
                        scale_up_kv_utilization <= 1,
                    "autoscaler: KV utilization thresholds must lie in "
                    "(0, 1]");
    VIDUR_CHECK_MSG(scale_down_kv_utilization >= 0 &&
                        scale_down_kv_utilization < scale_up_kv_utilization,
                    "autoscaler: scale_down_kv_utilization must sit below "
                    "scale_up_kv_utilization (hysteresis band)");
    VIDUR_CHECK_MSG(target_kv_utilization >= scale_down_kv_utilization &&
                        target_kv_utilization <= scale_up_kv_utilization,
                    "autoscaler: target KV utilization must lie inside the "
                    "hysteresis band, or sizing re-triggers itself");
  }
  if (kind == AutoscalerKind::kPredictive) {
    VIDUR_CHECK_MSG(signal == ScaleSignal::kOutstanding,
                    "autoscaler: the predictive policy forecasts arrival "
                    "rates and ignores the load signal; leave signal at "
                    "'outstanding'");
    profile.validate();
    VIDUR_CHECK_MSG(baseline_qps > 0 && replica_capacity_qps > 0,
                    "autoscaler: predictive policy needs baseline_qps and "
                    "replica_capacity_qps");
    VIDUR_CHECK(headroom >= 0 && lookahead >= 0);
  }
}

std::unique_ptr<AutoscalerPolicy> make_autoscaler_policy(
    const AutoscalerConfig& config) {
  config.validate();
  switch (config.kind) {
    case AutoscalerKind::kNone:
      return nullptr;
    case AutoscalerKind::kReactive:
      return std::make_unique<ReactiveAutoscaler>(config);
    case AutoscalerKind::kPredictive:
      return std::make_unique<PredictiveAutoscaler>(config);
  }
  throw Error("unhandled AutoscalerKind");
}

}  // namespace vidur
