#include "cluster/cluster_manager.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace vidur {

namespace {

std::vector<ClusterManager::ManagedPool> single_pool(AutoscalerConfig config,
                                                     int fleet_size) {
  ClusterManager::ManagedPool pool;
  pool.name = "fleet";
  pool.slots = fleet_size;
  pool.autoscale = std::move(config);
  return {std::move(pool)};
}

}  // namespace

ClusterManager::ClusterManager(std::vector<ManagedPool> pools,
                               EventQueue* events, Hooks hooks)
    : events_(events), hooks_(std::move(hooks)) {
  VIDUR_CHECK(events_ != nullptr);
  VIDUR_CHECK(hooks_.replica_load && hooks_.parked_requests &&
              hooks_.work_remaining && hooks_.on_activated &&
              hooks_.on_draining);
  VIDUR_CHECK_MSG(!pools.empty(), "ClusterManager needs at least one pool");

  bool any_elastic = false;
  bool any_kv_signal = false;
  int begin = 0;
  for (ManagedPool& spec : pools) {
    VIDUR_CHECK_MSG(spec.slots >= 1,
                    "pool '" << spec.name << "' needs at least one slot");
    if (spec.autoscale.enabled()) {
      spec.autoscale.validate();
      VIDUR_CHECK_MSG(spec.autoscale.min_replicas <= spec.slots,
                      "pool '" << spec.name
                               << "': min_replicas exceeds the pool's "
                               << spec.slots << " slots");
      VIDUR_CHECK_MSG(spec.initial_active() <= spec.slots,
                      "pool '" << spec.name
                               << "': initial_replicas exceeds the pool's "
                               << spec.slots << " slots");
      any_elastic = true;
      any_kv_signal |= spec.autoscale.signal == ScaleSignal::kKvPressure;
    }
    Pool pool;
    pool.info = std::move(spec);
    pool.begin = begin;
    pool.end = begin + pool.info.slots;
    begin = pool.end;
    pools_.push_back(std::move(pool));
  }
  fleet_size_ = begin;
  VIDUR_CHECK_MSG(any_elastic,
                  "ClusterManager requires an autoscaling policy on at "
                  "least one pool");
  if (any_kv_signal)
    VIDUR_CHECK_MSG(hooks_.replica_kv_utilization != nullptr,
                    "a pool scales on kv_pressure but the "
                    "replica_kv_utilization hook is not set");

  states_.assign(static_cast<std::size_t>(fleet_size_),
                 ReplicaState::kDecommissioned);
  routable_.assign(static_cast<std::size_t>(fleet_size_), false);
  up_since_.assign(static_cast<std::size_t>(fleet_size_), -1.0);
  hold_until_.assign(static_cast<std::size_t>(fleet_size_), -kInfiniteTime);
  pool_of_.resize(static_cast<std::size_t>(fleet_size_));
  for (std::size_t i = 0; i < pools_.size(); ++i)
    for (ReplicaId r = pools_[i].begin; r < pools_[i].end; ++r)
      pool_of_[static_cast<std::size_t>(r)] = static_cast<int>(i);

  // One scaling group per role that has at least one elastic pool. Static
  // pools of the role still contribute capacity to the group's sample.
  for (const PoolRole role :
       {PoolRole::kUnified, PoolRole::kPrefill, PoolRole::kDecode}) {
    Group group;
    group.role = role;
    for (std::size_t i = 0; i < pools_.size(); ++i) {
      if (pools_[i].info.role != role) continue;
      group.pools.push_back(static_cast<int>(i));
      if (pools_[i].info.autoscale.enabled())
        group.elastic.push_back(static_cast<int>(i));
    }
    if (group.elastic.empty()) continue;
    group.config = pools_[static_cast<std::size_t>(group.elastic[0])]
                       .info.autoscale;
    for (const int pi : group.elastic) {
      const AutoscalerConfig& c =
          pools_[static_cast<std::size_t>(pi)].info.autoscale;
      // Full agreement on the decision view: anything less would silently
      // ignore the other pools' thresholds/cooldowns/predictive inputs.
      VIDUR_CHECK_MSG(
          group_policy_view(c) == group_policy_view(group.config),
          "pools of the " << pool_role_name(role)
                          << " scaling group disagree on their autoscale "
                             "policy (only min_replicas, initial_replicas "
                             "and the cold-start delays may differ)");
    }
    // A predictive lookahead of 0 means "my cold-start horizon". The
    // group's horizon is the slowest elastic pool's cold start — capacity
    // ordered anywhere in the group must be warm when the forecast load
    // lands.
    if (group.config.kind == AutoscalerKind::kPredictive &&
        group.config.lookahead == 0.0) {
      for (const int pi : group.elastic) {
        const AutoscalerConfig& c =
            pools_[static_cast<std::size_t>(pi)].info.autoscale;
        group.config.lookahead = std::max(
            group.config.lookahead, c.provision_delay + c.warmup_delay);
      }
    }
    group.policy = make_autoscaler_policy(group.config);
    groups_.push_back(std::move(group));
  }

  // Decision ticks ride the typed event path: one registered handler
  // instead of a fresh std::function per tick.
  events_->set_tick_handler([this] { evaluate(); });
}

ClusterManager::ClusterManager(AutoscalerConfig config, int fleet_size,
                               EventQueue* events, Hooks hooks)
    : ClusterManager(single_pool(std::move(config), fleet_size), events,
                     std::move(hooks)) {}

ClusterManager::~ClusterManager() { events_->set_tick_handler(nullptr); }

void ClusterManager::start() {
  // Initial replicas are warm at t=0: the deployment existed before the
  // simulated window opened, so no cold start applies. Static pools run at
  // their full slot count for the whole simulation.
  for (Pool& pool : pools_) {
    const int initial = pool.info.initial_active();
    for (ReplicaId r = pool.begin; r < pool.begin + initial; ++r) {
      up_since_[static_cast<std::size_t>(r)] = 0.0;
      transition(r, ReplicaState::kActive, 0.0);
    }
  }
  Seconds next = kInfiniteTime;
  for (Group& group : groups_) {
    group.next_due = group.config.decision_interval;
    next = std::min(next, group.next_due);
  }
  events_->schedule_tick(next);
}

int ClusterManager::count(ReplicaState s) const {
  return static_cast<int>(std::count(states_.begin(), states_.end(), s));
}

int ClusterManager::count_in(const Pool& pool, ReplicaState s) const {
  int n = 0;
  for (ReplicaId r = pool.begin; r < pool.end; ++r)
    if (state(r) == s) ++n;
  return n;
}

int ClusterManager::available_slots(const Pool& pool, Seconds now) const {
  int n = 0;
  for (ReplicaId r = pool.begin; r < pool.end; ++r)
    if (state(r) == ReplicaState::kDecommissioned &&
        hold_until_[static_cast<std::size_t>(r)] <= now)
      ++n;
  return n;
}

double ClusterManager::cost_per_slo_point(const Pool& pool) const {
  const double rate =
      pool.info.cost_per_gpu_hour * pool.info.gpus_per_replica;
  // <= 0 means "capacity unknown": rank as unit capacity, so the rate
  // alone decides (and equal rates fall back to pool order).
  return rate / (pool.info.capacity_qps > 0 ? pool.info.capacity_qps : 1.0);
}

void ClusterManager::set_obs(TraceRecorder* trace,
                             MetricsRegistry* registry) {
  trace_ = trace;
  if (registry != nullptr) {
    ctr_ticks_ = registry->counter("cluster.ticks");
    ctr_scale_ups_ = registry->counter("cluster.scale_ups");
    ctr_scale_downs_ = registry->counter("cluster.scale_downs");
  }
}

void ClusterManager::evaluate() {
  const Seconds now = events_->now();
  if (ctr_ticks_ != nullptr) ctr_ticks_->inc();
  for (Group& group : groups_) {
    if (group.next_due > now) continue;
    evaluate_group(group, now);
    group.next_due = now + group.config.decision_interval;
  }
  if (hooks_.work_remaining()) {
    Seconds next = kInfiniteTime;
    for (const Group& group : groups_) next = std::min(next, group.next_due);
    events_->schedule_tick(next);
  }
}

void ClusterManager::evaluate_group(Group& group, Seconds now) {
  ClusterSample sample;
  sample.now = now;
  sample.min_replicas = 0;
  sample.max_replicas = 0;
  for (const int pi : group.pools) {
    const Pool& pool = pools_[static_cast<std::size_t>(pi)];
    sample.active += count_in(pool, ReplicaState::kActive);
    sample.pending += count_in(pool, ReplicaState::kProvisioning) +
                      count_in(pool, ReplicaState::kWarming);
    sample.draining += count_in(pool, ReplicaState::kDraining);
    sample.min_replicas += pool.info.floor_replicas();
    sample.max_replicas += pool.info.slots;
    for (ReplicaId r = pool.begin; r < pool.end; ++r) {
      const ReplicaState s = state(r);
      if (s == ReplicaState::kActive || s == ReplicaState::kDraining)
        sample.outstanding += hooks_.replica_load(r);
      if (s == ReplicaState::kActive &&
          group.config.signal == ScaleSignal::kKvPressure)
        sample.kv_pressure += hooks_.replica_kv_utilization(r);
    }
  }
  // The central queue holds pre-prefill arrivals: they are load on the
  // arrival-serving group (unified or prefill), never on decode pools.
  if (group.role != PoolRole::kDecode)
    sample.outstanding += hooks_.parked_requests();

  const int desired = std::clamp(group.policy->desired_replicas(sample),
                                 sample.min_replicas, sample.max_replicas);
  trace_emit(trace_, TraceEventKind::kScaleDecision, now, -1, -1, desired,
             sample.active, static_cast<std::uint8_t>(group.role));
  const int effective = sample.active + sample.pending;
  if (desired > effective) {
    if (now - group.last_scale_up >= group.config.scale_up_cooldown)
      scale_up_group(group, desired - effective, now);
  } else if (desired < sample.active && sample.pending == 0) {
    // Scale-downs wait for in-flight cold starts to land (draining active
    // replicas while ordered capacity is still warming would overshoot
    // below desired and then pay for the surplus), and wait out recent
    // scale-ups: capacity just added gets a chance to absorb the backlog
    // before the fleet shrinks again.
    if (now - std::max(group.last_scale_up, group.last_scale_down) >=
        group.config.scale_down_cooldown)
      scale_down_group(group, sample.active - desired, now);
  }
}

void ClusterManager::scale_up_group(Group& group, int n, Seconds now) {
  if (group.config.max_scale_step > 0)
    n = std::min(n, group.config.max_scale_step);
  while (n > 0) {
    // Cost-aware placement: grow the pool whose capacity is cheapest per
    // SLO-point. Strict < keeps ties on the earliest pool — deterministic.
    int best = -1;
    double best_cost = 0.0;
    for (const int pi : group.elastic) {
      const Pool& pool = pools_[static_cast<std::size_t>(pi)];
      // A spot-reclaimed slot is decommissioned but held for the window's
      // remainder; only unheld slots count as headroom.
      if (available_slots(pool, now) == 0) continue;
      const double cost = cost_per_slo_point(pool);
      if (best < 0 || cost < best_cost) {
        best = pi;
        best_cost = cost;
      }
    }
    if (best < 0) return;  // every elastic pool is at its ceiling
    Pool& pool = pools_[static_cast<std::size_t>(best)];
    for (ReplicaId r = pool.begin; r < pool.end; ++r) {
      if (state(r) != ReplicaState::kDecommissioned ||
          hold_until_[static_cast<std::size_t>(r)] > now)
        continue;
      --n;
      ++pool.num_ups;
      if (ctr_scale_ups_ != nullptr) ctr_scale_ups_->inc();
      group.last_scale_up = now;
      up_since_[static_cast<std::size_t>(r)] = now;
      transition(r, ReplicaState::kProvisioning, now);
      // The provisioning -> warming -> active chain is never interrupted:
      // only active replicas are ever drained, so these callbacks cannot
      // observe a stale slot. Cold-start delays are the pool's own.
      const Seconds warmup = pool.info.autoscale.warmup_delay;
      events_->schedule(
          now + pool.info.autoscale.provision_delay, [this, r, warmup] {
            transition(r, ReplicaState::kWarming, events_->now());
            events_->schedule(events_->now() + warmup, [this, r] {
              transition(r, ReplicaState::kActive, events_->now());
              hooks_.on_activated(r);
            });
          });
      break;
    }
  }
}

void ClusterManager::scale_down_group(Group& group, int n, Seconds now) {
  if (group.config.max_scale_step > 0)
    n = std::min(n, group.config.max_scale_step);
  while (n > 0) {
    // The most expensive capacity per SLO-point drains first; >= keeps
    // ties on the latest pool, so within one pool the highest-id active
    // slot drains — the surviving fleet stays packed at the low ids,
    // matching the deterministic lowest-id-wins tie-breaking of
    // least-outstanding routing.
    int best = -1;
    double best_cost = -1.0;
    for (const int pi : group.elastic) {
      const Pool& pool = pools_[static_cast<std::size_t>(pi)];
      if (count_in(pool, ReplicaState::kActive) <= pool.info.floor_replicas())
        continue;
      const double cost = cost_per_slo_point(pool);
      if (cost >= best_cost) {
        best = pi;
        best_cost = cost;
      }
    }
    if (best < 0) return;  // every elastic pool sits at its floor
    Pool& pool = pools_[static_cast<std::size_t>(best)];
    for (ReplicaId r = pool.end - 1; r >= pool.begin; --r) {
      if (state(r) != ReplicaState::kActive) continue;
      --n;
      ++pool.num_downs;
      if (ctr_scale_downs_ != nullptr) ctr_scale_downs_->inc();
      group.last_scale_down = now;
      transition(r, ReplicaState::kDraining, now);
      // Queued-but-unstarted requests leave through the global scheduler
      // instead of waiting out the drain on a shrinking replica.
      hooks_.on_draining(r);
      // A replica with nothing left in flight decommissions immediately;
      // the simulator reports the idle transition for busy ones.
      if (hooks_.replica_load(r) == 0) notify_idle(r);
      break;
    }
  }
}

void ClusterManager::notify_idle(ReplicaId replica) {
  notify_idle(replica, events_->now());
}

void ClusterManager::notify_idle(ReplicaId replica, Seconds now) {
  if (state(replica) != ReplicaState::kDraining) return;
  auto& since = up_since_[static_cast<std::size_t>(replica)];
  pools_[static_cast<std::size_t>(pool_of(replica))].paid.emplace_back(since,
                                                                       now);
  since = -1.0;
  transition(replica, ReplicaState::kDecommissioned, now);
  if (hooks_.on_decommissioned) hooks_.on_decommissioned(replica);
}

void ClusterManager::fail_replica(ReplicaId replica, Seconds hold_until) {
  const ReplicaState s = state(replica);
  VIDUR_CHECK_MSG(
      s == ReplicaState::kActive || s == ReplicaState::kDraining,
      "fail_replica(" << replica << "): replica is " << replica_state_name(s)
                      << ", not active or draining");
  const Seconds now = events_->now();
  auto& since = up_since_[static_cast<std::size_t>(replica)];
  // A failed replica was still paid for until the failure instant.
  pools_[static_cast<std::size_t>(pool_of(replica))].paid.emplace_back(since,
                                                                       now);
  since = -1.0;
  hold_until_[static_cast<std::size_t>(replica)] = hold_until;
  transition(replica, ReplicaState::kDecommissioned, now);
  if (hooks_.on_decommissioned) hooks_.on_decommissioned(replica);
}

void ClusterManager::drain_replica(ReplicaId replica) {
  if (state(replica) != ReplicaState::kActive) return;
  transition(replica, ReplicaState::kDraining, events_->now());
  hooks_.on_draining(replica);
  if (hooks_.replica_load(replica) == 0) notify_idle(replica);
}

void ClusterManager::transition(ReplicaId replica, ReplicaState to,
                                Seconds now) {
  auto& slot = states_[static_cast<std::size_t>(replica)];
  log_.push_back(ScalingEvent{now, replica, slot, to});
  slot = to;
  routable_[static_cast<std::size_t>(replica)] = to == ReplicaState::kActive;
  const int active = num_active();
  trace_emit(trace_, TraceEventKind::kReplicaTransition, now, replica, -1,
             active, 0, static_cast<std::uint8_t>(to));
  peak_active_ = std::max(peak_active_, active);
  if (!timeline_.empty() && timeline_.back().time == now)
    timeline_.back().active = active;
  else
    timeline_.push_back(ReplicaCountSample{now, active});

  Pool& pool = pools_[static_cast<std::size_t>(pool_of(replica))];
  const int pool_active = count_in(pool, ReplicaState::kActive);
  pool.peak_active = std::max(pool.peak_active, pool_active);
  if (!pool.timeline.empty() && pool.timeline.back().time == now)
    pool.timeline.back().active = pool_active;
  else
    pool.timeline.push_back(ReplicaCountSample{now, pool_active});
}

ClusterScalingReport ClusterManager::report(Seconds end_time) const {
  return report_impl(end_time, 0, -1.0);
}

ClusterScalingReport ClusterManager::report(Seconds end_time,
                                            int gpus_per_replica,
                                            double cost_per_gpu_hour) const {
  return report_impl(end_time, gpus_per_replica, cost_per_gpu_hour);
}

namespace {

/// Time-weighted mean of an active-count step function over [0, end].
double timeline_mean(const std::vector<ReplicaCountSample>& timeline,
                     Seconds end_time) {
  double integral = 0.0;
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    const Seconds begin = timeline[i].time;
    const Seconds end =
        i + 1 < timeline.size() ? timeline[i + 1].time : end_time;
    integral +=
        timeline[i].active * std::max(0.0, std::min(end, end_time) - begin);
  }
  return end_time > 0 ? integral / end_time : 0.0;
}

}  // namespace

ClusterScalingReport ClusterManager::report_impl(
    Seconds end_time, int gpus_override, double cost_override) const {
  ClusterScalingReport report;
  report.enabled = true;
  report.fleet_size = fleet_size_;
  report.peak_active = peak_active_;
  report.events = log_;
  report.active_timeline = timeline_;
  report.mean_active_replicas = timeline_mean(timeline_, end_time);

  for (const Pool& pool : pools_) {
    PoolScalingReport p;
    p.name = pool.info.name;
    p.sku = pool.info.sku;
    p.role = pool_role_name(pool.info.role);
    p.first_slot = pool.begin;
    p.slots = pool.info.slots;
    p.autoscaled = pool.info.autoscale.enabled();
    p.min_replicas = pool.info.floor_replicas();
    p.initial_replicas = pool.info.initial_active();
    p.gpus_per_replica =
        gpus_override > 0 ? gpus_override : pool.info.gpus_per_replica;
    p.cost_per_gpu_hour =
        cost_override >= 0 ? cost_override : pool.info.cost_per_gpu_hour;
    p.peak_active = pool.peak_active;
    p.num_scale_up_events = pool.num_ups;
    p.num_scale_down_events = pool.num_downs;
    p.active_timeline = pool.timeline;
    p.mean_active_replicas = timeline_mean(pool.timeline, end_time);

    // Everything past end_time is clamped off: the trailing decision tick
    // (and any drain it triggers) must not bill the elastic fleet beyond
    // the accounting horizon the simulator settled on.
    double paid = 0.0;
    for (const auto& [begin, end] : pool.paid)
      paid += std::max(0.0, std::min(end, end_time) - begin);
    for (ReplicaId r = pool.begin; r < pool.end; ++r) {
      const Seconds since = up_since_[static_cast<std::size_t>(r)];
      if (since >= 0.0) paid += std::max(0.0, end_time - since);
    }
    p.replica_hours = paid / 3600.0;
    p.gpu_hours = p.replica_hours * p.gpus_per_replica;
    p.cost_usd = p.gpu_hours * p.cost_per_gpu_hour;

    report.min_replicas += p.min_replicas;
    report.initial_replicas += p.initial_replicas;
    report.num_scale_up_events += p.num_scale_up_events;
    report.num_scale_down_events += p.num_scale_down_events;
    report.replica_hours += p.replica_hours;
    report.gpu_hours += p.gpu_hours;
    report.cost_usd += p.cost_usd;
    report.pools.push_back(std::move(p));
  }
  return report;
}

}  // namespace vidur
