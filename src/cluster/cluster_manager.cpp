#include "cluster/cluster_manager.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace vidur {

ClusterManager::ClusterManager(AutoscalerConfig config, int fleet_size,
                               EventQueue* events, Hooks hooks)
    : config_(std::move(config)),
      fleet_size_(fleet_size),
      events_(events),
      hooks_(std::move(hooks)),
      policy_(make_autoscaler_policy(config_)),
      states_(static_cast<std::size_t>(fleet_size),
              ReplicaState::kDecommissioned),
      routable_(static_cast<std::size_t>(fleet_size), false),
      up_since_(static_cast<std::size_t>(fleet_size), -1.0) {
  VIDUR_CHECK_MSG(config_.enabled(),
                  "ClusterManager requires an autoscaling policy");
  VIDUR_CHECK(events_ != nullptr);
  VIDUR_CHECK(hooks_.replica_load && hooks_.parked_requests &&
              hooks_.work_remaining && hooks_.on_activated &&
              hooks_.on_draining);
  VIDUR_CHECK_MSG(config_.min_replicas <= fleet_size_,
                  "autoscaler: min_replicas exceeds the fleet size");
  const int initial = config_.initial_replicas == 0 ? config_.min_replicas
                                                    : config_.initial_replicas;
  VIDUR_CHECK_MSG(initial <= fleet_size_,
                  "autoscaler: initial_replicas exceeds the fleet size");
  // Decision ticks ride the typed event path: one registered handler
  // instead of a fresh std::function per tick.
  events_->set_tick_handler([this] { evaluate(); });
}

ClusterManager::~ClusterManager() { events_->set_tick_handler(nullptr); }

void ClusterManager::start() {
  const int initial = config_.initial_replicas == 0 ? config_.min_replicas
                                                    : config_.initial_replicas;
  // Initial replicas are warm at t=0: the deployment existed before the
  // simulated window opened, so no cold start applies.
  for (ReplicaId r = 0; r < initial; ++r) {
    up_since_[static_cast<std::size_t>(r)] = 0.0;
    transition(r, ReplicaState::kActive, 0.0);
  }
  events_->schedule_tick(config_.decision_interval);
}

int ClusterManager::count(ReplicaState s) const {
  return static_cast<int>(std::count(states_.begin(), states_.end(), s));
}

void ClusterManager::evaluate() {
  const Seconds now = events_->now();
  ClusterSample sample;
  sample.now = now;
  sample.active = num_active();
  sample.pending = num_pending();
  sample.draining = num_draining();
  sample.min_replicas = config_.min_replicas;
  sample.max_replicas = fleet_size_;
  sample.outstanding = hooks_.parked_requests();
  for (ReplicaId r = 0; r < fleet_size_; ++r) {
    const ReplicaState s = state(r);
    if (s == ReplicaState::kActive || s == ReplicaState::kDraining)
      sample.outstanding += hooks_.replica_load(r);
  }

  const int desired = std::clamp(policy_->desired_replicas(sample),
                                 config_.min_replicas, fleet_size_);
  const int effective = sample.active + sample.pending;
  if (desired > effective) {
    if (now - last_scale_up_ >= config_.scale_up_cooldown)
      scale_up(desired - effective, now);
  } else if (desired < sample.active && sample.pending == 0) {
    // Scale-downs wait for in-flight cold starts to land (draining active
    // replicas while ordered capacity is still warming would overshoot
    // below desired and then pay for the surplus), and wait out recent
    // scale-ups: capacity just added gets a chance to absorb the backlog
    // before the fleet shrinks again.
    if (now - std::max(last_scale_up_, last_scale_down_) >=
        config_.scale_down_cooldown)
      scale_down(sample.active - desired, now);
  }

  if (hooks_.work_remaining())
    events_->schedule_tick(now + config_.decision_interval);
}

void ClusterManager::scale_up(int n, Seconds now) {
  if (config_.max_scale_step > 0) n = std::min(n, config_.max_scale_step);
  for (ReplicaId r = 0; r < fleet_size_ && n > 0; ++r) {
    if (state(r) != ReplicaState::kDecommissioned) continue;
    --n;
    ++num_ups_;
    last_scale_up_ = now;
    up_since_[static_cast<std::size_t>(r)] = now;
    transition(r, ReplicaState::kProvisioning, now);
    // The provisioning -> warming -> active chain is never interrupted:
    // only active replicas are ever drained, so these callbacks cannot
    // observe a stale slot.
    events_->schedule(now + config_.provision_delay, [this, r] {
      transition(r, ReplicaState::kWarming, events_->now());
      events_->schedule(events_->now() + config_.warmup_delay, [this, r] {
        transition(r, ReplicaState::kActive, events_->now());
        hooks_.on_activated(r);
      });
    });
  }
}

void ClusterManager::scale_down(int n, Seconds now) {
  if (config_.max_scale_step > 0) n = std::min(n, config_.max_scale_step);
  // Drain the highest-id active replicas: the surviving fleet stays packed
  // at the low ids, matching the deterministic lowest-id-wins tie-breaking
  // of least-outstanding routing.
  for (ReplicaId r = fleet_size_ - 1; r >= 0 && n > 0; --r) {
    if (state(r) != ReplicaState::kActive) continue;
    if (num_active() <= config_.min_replicas) return;
    --n;
    ++num_downs_;
    last_scale_down_ = now;
    transition(r, ReplicaState::kDraining, now);
    // Queued-but-unstarted requests leave through the global scheduler
    // instead of waiting out the drain on a shrinking replica.
    hooks_.on_draining(r);
    // A replica with nothing left in flight decommissions immediately; the
    // simulator reports the idle transition for busy ones.
    if (hooks_.replica_load(r) == 0) notify_idle(r);
  }
}

void ClusterManager::notify_idle(ReplicaId replica) {
  if (state(replica) != ReplicaState::kDraining) return;
  const Seconds now = events_->now();
  auto& since = up_since_[static_cast<std::size_t>(replica)];
  paid_intervals_.emplace_back(since, now);
  since = -1.0;
  transition(replica, ReplicaState::kDecommissioned, now);
}

void ClusterManager::transition(ReplicaId replica, ReplicaState to,
                                Seconds now) {
  auto& slot = states_[static_cast<std::size_t>(replica)];
  log_.push_back(ScalingEvent{now, replica, slot, to});
  slot = to;
  routable_[static_cast<std::size_t>(replica)] = to == ReplicaState::kActive;
  const int active = num_active();
  peak_active_ = std::max(peak_active_, active);
  if (!timeline_.empty() && timeline_.back().time == now)
    timeline_.back().active = active;
  else
    timeline_.push_back(ReplicaCountSample{now, active});
}

ClusterScalingReport ClusterManager::report(Seconds end_time,
                                            int gpus_per_replica,
                                            double cost_per_gpu_hour) const {
  ClusterScalingReport report;
  report.enabled = true;
  report.fleet_size = fleet_size_;
  report.min_replicas = config_.min_replicas;
  report.initial_replicas = config_.initial_replicas == 0
                                ? config_.min_replicas
                                : config_.initial_replicas;
  report.peak_active = peak_active_;
  report.num_scale_up_events = num_ups_;
  report.num_scale_down_events = num_downs_;
  report.events = log_;
  report.active_timeline = timeline_;

  // Everything past end_time is clamped off: the trailing decision tick
  // (and any drain it triggers) must not bill the elastic fleet beyond the
  // accounting horizon the simulator settled on.
  double paid = 0.0;
  for (const auto& [begin, end] : paid_intervals_)
    paid += std::max(0.0, std::min(end, end_time) - begin);
  for (const Seconds since : up_since_)
    if (since >= 0.0) paid += std::max(0.0, end_time - since);
  report.replica_hours = paid / 3600.0;
  report.gpu_hours = report.replica_hours * gpus_per_replica;
  report.cost_usd = report.gpu_hours * cost_per_gpu_hour;

  // Time-weighted mean of the active-count step function over [0, end].
  double integral = 0.0;
  for (std::size_t i = 0; i < timeline_.size(); ++i) {
    const Seconds begin = timeline_[i].time;
    const Seconds end =
        i + 1 < timeline_.size() ? timeline_[i + 1].time : end_time;
    integral += timeline_[i].active *
                std::max(0.0, std::min(end, end_time) - begin);
  }
  report.mean_active_replicas = end_time > 0 ? integral / end_time : 0.0;
  return report;
}

}  // namespace vidur
