#include "cluster/replica_state.h"

#include <sstream>

#include "common/check.h"

namespace vidur {

const std::string& replica_state_name(ReplicaState state) {
  static const std::vector<std::string> names = {
      "decommissioned", "provisioning", "warming", "active", "draining"};
  const auto index = static_cast<std::size_t>(state);
  VIDUR_CHECK_MSG(index < names.size(), "unhandled ReplicaState");
  return names[index];
}

std::string ClusterScalingReport::to_string() const {
  std::ostringstream os;
  os << (enabled ? "elastic" : "static") << " fleet: " << fleet_size
     << " slots, mean active " << mean_active_replicas << ", peak "
     << peak_active << ", +" << num_scale_up_events << "/-"
     << num_scale_down_events << " scale events, " << gpu_hours
     << " GPU-hours ($" << cost_usd << ")";
  if (pools.size() > 1) {
    for (const PoolScalingReport& p : pools) {
      os << "\n  pool " << p.name << " (" << p.sku << ", " << p.role
         << (p.autoscaled ? ", elastic" : ", static") << "): " << p.slots
         << " slots, mean active " << p.mean_active_replicas << ", peak "
         << p.peak_active << ", " << p.gpu_hours << " GPU-hours ($"
         << p.cost_usd << ")";
    }
  }
  return os.str();
}

ClusterScalingReport static_fleet_report(int num_replicas, Seconds makespan,
                                         int gpus_per_replica,
                                         double cost_per_gpu_hour) {
  VIDUR_CHECK(num_replicas >= 1 && gpus_per_replica >= 1 && makespan >= 0);
  ClusterScalingReport report;
  report.fleet_size = num_replicas;
  report.min_replicas = num_replicas;
  report.initial_replicas = num_replicas;
  report.peak_active = num_replicas;
  report.mean_active_replicas = num_replicas;
  report.replica_hours = num_replicas * makespan / 3600.0;
  report.gpu_hours = report.replica_hours * gpus_per_replica;
  report.cost_usd = report.gpu_hours * cost_per_gpu_hour;
  report.active_timeline = {ReplicaCountSample{0.0, num_replicas}};
  return report;
}

}  // namespace vidur
