// Replica lifecycle states and the scaling report of an elastic cluster.
//
// This header is deliberately dependency-light (common/types.h only): the
// metrics layer embeds ClusterScalingReport in SimulationMetrics without
// pulling in the full cluster subsystem.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace vidur {

/// Lifecycle of one replica slot in an elastic fleet.
///
///   decommissioned -> provisioning -> warming -> active -> draining
///         ^                                                   |
///         +---------------------------------------------------+
///
/// Provisioning models instance acquisition (the cold-start delay proper);
/// warming models weight loading / cache priming. A draining replica takes
/// no new requests but finishes everything already routed to it, then
/// returns to decommissioned, where the slot may be re-provisioned later.
enum class ReplicaState {
  kDecommissioned,
  kProvisioning,
  kWarming,
  kActive,
  kDraining,
};

const std::string& replica_state_name(ReplicaState state);

/// One lifecycle transition of one replica.
struct ScalingEvent {
  Seconds time = 0.0;
  ReplicaId replica = 0;
  ReplicaState from = ReplicaState::kDecommissioned;
  ReplicaState to = ReplicaState::kDecommissioned;
};

/// A step sample of the active-replica count (taken at every transition).
struct ReplicaCountSample {
  Seconds time = 0.0;
  int active = 0;
};

/// Per-pool slice of a heterogeneous fleet's scaling report. Role and SKU
/// are carried as strings to keep this header dependency-light (the pool
/// subsystem proper lives in cluster/pool.h).
struct PoolScalingReport {
  std::string name;
  std::string sku;
  std::string role;        ///< "unified" / "prefill" / "decode"
  int first_slot = 0;      ///< pool occupies [first_slot, first_slot+slots)
  int slots = 0;
  int min_replicas = 0;
  int initial_replicas = 0;
  int gpus_per_replica = 1;
  double cost_per_gpu_hour = 0.0;
  bool autoscaled = false;  ///< false: static pool, pinned at `slots`

  int peak_active = 0;
  double mean_active_replicas = 0.0;
  int num_scale_up_events = 0;
  int num_scale_down_events = 0;

  double replica_hours = 0.0;
  double gpu_hours = 0.0;
  double cost_usd = 0.0;

  /// Exact per-pool utilization/energy attribution, filled by the metrics
  /// collector from the pool's actual batch execution records against the
  /// pool's own SKU rates (not the fleet's slot-weighted averages). MFU/MBU
  /// are normalized by the pool's *paid* GPU-time (provisioning through
  /// decommission) — utilization of the capacity the pool actually billed,
  /// which is the honest denominator for autoscaled pools. Zero when the
  /// run carried no batch-level resource accounting.
  double mfu = 0.0;
  double mbu = 0.0;
  double busy_fraction = 0.0;   ///< busy replica-time / paid replica-time
  double energy_joules = 0.0;   ///< busy + idle energy billed to the pool

  std::vector<ReplicaCountSample> active_timeline;  ///< pool-local counts
};

/// Capacity/cost accounting of one simulation's replica fleet. Filled for
/// every run: static fleets get a flat report (enabled == false), elastic
/// runs carry the full event log and timeline. A replica accrues paid GPU
/// time from provisioning start until decommission — cold starts and drains
/// are billed like any cloud instance.
struct ClusterScalingReport {
  bool enabled = false;  ///< an autoscaler was managing the fleet
  int fleet_size = 0;    ///< replica slots (the scale-up ceiling)
  int min_replicas = 0;
  int initial_replicas = 0;

  int peak_active = 0;
  double mean_active_replicas = 0.0;  ///< time-weighted over the run
  int num_scale_up_events = 0;    ///< replicas provisioned after t=0
  int num_scale_down_events = 0;  ///< replicas put into draining

  double replica_hours = 0.0;  ///< summed per-replica paid up-time
  double gpu_hours = 0.0;      ///< replica_hours x gpus_per_replica
  double cost_usd = 0.0;       ///< gpu_hours x SKU $/GPU-hour

  std::vector<ScalingEvent> events;              ///< chronological
  std::vector<ReplicaCountSample> active_timeline;  ///< step function

  /// Per-pool breakout, in slot order. Filled by the ClusterManager (every
  /// elastic run, including homogeneous single-pool ones) and by
  /// static_pools_report; plain homogeneous static fleets
  /// (static_fleet_report) leave it empty.
  std::vector<PoolScalingReport> pools;

  std::string to_string() const;
};

/// The report of a fixed fleet: `num_replicas` active for the whole run.
ClusterScalingReport static_fleet_report(int num_replicas, Seconds makespan,
                                         int gpus_per_replica,
                                         double cost_per_gpu_hour);

}  // namespace vidur
