// Deployment-level prefix-cache knob. Kept dependency-free so the core
// deployment config can embed it without pulling in the cache itself.
#pragma once

#include "common/check.h"

namespace vidur {

/// Per-replica prefix cache over the paged KV pool. When enabled, each
/// replica retains the KV of completed requests whose prefixes are
/// shareable (common system prompts, multi-turn conversations) and serves
/// later prefills from the resident blocks, charging only the cold suffix.
struct PrefixCacheConfig {
  bool enabled = false;
  /// Fraction of the replica's KV blocks the retained (unpinned) prefix
  /// pool may occupy. Active requests always win: the scheduler reclaims
  /// cached blocks on demand before failing an allocation.
  double capacity_fraction = 0.5;

  bool operator==(const PrefixCacheConfig&) const = default;

  void validate() const {
    VIDUR_CHECK_MSG(capacity_fraction > 0 && capacity_fraction <= 1.0,
                    "prefix_cache.capacity_fraction must be in (0, 1], got "
                        << capacity_fraction);
  }
};

}  // namespace vidur
