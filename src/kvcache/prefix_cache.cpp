#include "kvcache/prefix_cache.h"

#include <algorithm>

#include "common/check.h"

namespace vidur {

namespace {

constexpr std::uint64_t kChainSeed = 0x56494455525f4b56ULL;  // "VIDUR_KV"
constexpr std::uint64_t kSharedPrefixTag = 0x51;
constexpr std::uint64_t kSessionTag = 0x52;

/// splitmix64-style combiner; never returns 0 so callers can use 0 as the
/// "not shareable" sentinel.
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x | 1;
}

std::uint64_t mix3(std::uint64_t tag, std::uint64_t id, std::uint64_t depth) {
  return mix(mix(tag, id), depth);
}

}  // namespace

PrefixCache::PrefixCache(long capacity_blocks, TokenCount block_size)
    : capacity_blocks_(capacity_blocks), block_size_(block_size) {
  VIDUR_CHECK(capacity_blocks >= 0);
  VIDUR_CHECK(block_size > 0);
}

std::uint64_t PrefixCache::block_content(const Request& request,
                                         int depth) const {
  // The block is shareable only if every token in it has a stable identity:
  // tokens inside the tenant's shared prefix are identified by the prefix
  // group, and tokens of a multi-turn conversation by the session (turn
  // j+1's prompt extends turn j's full context append-only).
  const TokenCount block_end =
      (static_cast<TokenCount>(depth) + 1) * block_size_;
  if (request.shared_prefix_tokens > 0 &&
      block_end <= request.shared_prefix_tokens)
    return mix3(kSharedPrefixTag,
                static_cast<std::uint64_t>(request.prefix_group),
                static_cast<std::uint64_t>(depth));
  if (request.session >= 0)
    return mix3(kSessionTag, static_cast<std::uint64_t>(request.session),
                static_cast<std::uint64_t>(depth));
  return 0;
}

long PrefixCache::match_blocks(const Request& request,
                               std::uint64_t* last_chain) const {
  // At least one prompt token must stay cold: the batch that "computes"
  // the request needs a non-empty prefill to emit the first token from.
  const long max_blocks = request.prefill_tokens <= 0
                              ? 0
                              : (request.prefill_tokens - 1) / block_size_;
  std::uint64_t chain = kChainSeed;
  long matched = 0;
  for (long d = 0; d < max_blocks; ++d) {
    const std::uint64_t content =
        block_content(request, static_cast<int>(d));
    if (content == 0) break;
    chain = mix(chain, content);
    if (blocks_.find(chain) == blocks_.end()) break;
    ++matched;
    if (last_chain != nullptr) *last_chain = chain;
  }
  return matched;
}

TokenCount PrefixCache::probe(const Request& request) const {
  return match_blocks(request, nullptr) * block_size_;
}

TokenCount PrefixCache::attach(const Request& request) {
  const long max_blocks = request.prefill_tokens <= 0
                              ? 0
                              : (request.prefill_tokens - 1) / block_size_;
  std::uint64_t chain = kChainSeed;
  std::vector<std::uint64_t> matched;
  for (long d = 0; d < max_blocks; ++d) {
    const std::uint64_t content =
        block_content(request, static_cast<int>(d));
    if (content == 0) break;
    chain = mix(chain, content);
    if (blocks_.find(chain) == blocks_.end()) break;
    matched.push_back(chain);
  }

  const TokenCount tokens = static_cast<TokenCount>(matched.size()) *
                            block_size_;
  PrefixCacheStats& tenant = tenant_stats_[request.tenant];
  ++stats_.lookups;
  ++tenant.lookups;
  if (matched.empty()) {
    ++stats_.misses;
    ++tenant.misses;
    return 0;
  }
  ++stats_.hits;
  ++tenant.hits;
  stats_.tokens_saved += tokens;
  tenant.tokens_saved += tokens;

  for (const std::uint64_t c : matched) {
    Block& block = blocks_.at(c);
    if (block.refs == 0 && block.children == 0)
      evictable_.erase(block.lru_seq);
    ++block.refs;
  }
  pins_[request.id] = std::move(matched);
  return tokens;
}

void PrefixCache::unpin(RequestId request) {
  auto it = pins_.find(request);
  if (it == pins_.end()) return;
  for (const std::uint64_t c : it->second) {
    auto bit = blocks_.find(c);
    if (bit == blocks_.end()) continue;  // pinned blocks are never evicted
    Block& block = bit->second;
    --block.refs;
    if (block.refs == 0 && block.children == 0) make_evictable(block);
  }
  pins_.erase(it);
}

long PrefixCache::retain(const Request& request, TokenCount kv_end,
                         TokenCount kv_cached, BlockManager& bm) {
  if (capacity_blocks_ <= 0) return 0;
  const TokenCount shareable_end =
      request.session >= 0
          ? kv_end
          : std::min<TokenCount>(request.shared_prefix_tokens, kv_end);
  const long first = kv_cached / block_size_;  // cached prefix: block-aligned
  const long last = shareable_end / block_size_;  // whole blocks only
  if (last <= first) return 0;

  // Rebuild the chain hash up to the donation start.
  std::uint64_t parent_chain = kChainSeed;
  for (long d = 0; d < first; ++d) {
    const std::uint64_t content =
        block_content(request, static_cast<int>(d));
    if (content == 0) return 0;  // cached prefix must be shareable
    parent_chain = mix(parent_chain, content);
  }

  const std::uint64_t call_start_seq = next_seq_;
  long inserted = 0;
  for (long d = first; d < last; ++d) {
    const std::uint64_t content =
        block_content(request, static_cast<int>(d));
    if (content == 0) break;
    const std::uint64_t child = mix(parent_chain, content);
    auto it = blocks_.find(child);
    if (it != blocks_.end()) {
      // Already resident (another request of the same group/session beat
      // us to it); the caller still owns — and will release — its copy.
      parent_chain = child;
      continue;
    }
    // Make room, but never by evicting a block this call just inserted.
    bool room = true;
    while (resident_blocks() >= capacity_blocks_) {
      if (evictable_.empty() ||
          evictable_.begin()->first >= call_start_seq) {
        room = false;
        break;
      }
      evict_block(evictable_.begin()->second);
      bm.release_cached(1);
    }
    if (!room) break;

    Block block;
    block.chain = child;
    block.parent = parent_chain;
    block.depth = static_cast<int>(d);
    block.session = request.session;
    if (d > 0) {
      auto pit = blocks_.find(parent_chain);
      if (pit != blocks_.end()) {
        Block& parent = pit->second;
        if (parent.refs == 0 && parent.children == 0)
          evictable_.erase(parent.lru_seq);
        ++parent.children;
      }
    }
    make_evictable(blocks_.emplace(child, block).first->second);
    note_session_delta(request.session, +1);
    ++stats_.inserted_blocks;
    ++inserted;
    parent_chain = child;
  }
  if (inserted > 0) bm.transfer_to_cache(request.id, inserted);
  return inserted;
}

long PrefixCache::reclaim(long want, BlockManager& bm) {
  long evicted = 0;
  while (evicted < want && !evictable_.empty()) {
    evict_block(evictable_.begin()->second);
    bm.release_cached(1);
    ++evicted;
  }
  return evicted;
}

void PrefixCache::make_evictable(Block& block) {
  block.lru_seq = next_seq_++;
  evictable_[block.lru_seq] = block.chain;
}

void PrefixCache::evict_block(std::uint64_t chain) {
  auto it = blocks_.find(chain);
  VIDUR_CHECK_MSG(it != blocks_.end(), "evicting a non-resident block");
  const Block block = it->second;
  VIDUR_CHECK_MSG(block.refs == 0 && block.children == 0,
                  "evicting a pinned or interior block");
  evictable_.erase(block.lru_seq);
  blocks_.erase(it);
  if (block.depth > 0) {
    auto pit = blocks_.find(block.parent);
    if (pit != blocks_.end()) {
      Block& parent = pit->second;
      --parent.children;
      if (parent.refs == 0 && parent.children == 0) make_evictable(parent);
    }
  }
  note_session_delta(block.session, -1);
  ++stats_.evicted_blocks;
}

void PrefixCache::note_session_delta(std::int64_t session, long delta) {
  if (session < 0) return;
  auto it = session_blocks_.find(session);
  if (it == session_blocks_.end()) {
    if (delta > 0) session_blocks_[session] = delta;
    return;
  }
  it->second += delta;
  if (it->second <= 0) session_blocks_.erase(it);
}

}  // namespace vidur
