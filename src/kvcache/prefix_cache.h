// Per-replica prefix cache: block-granular KV reuse over the BlockManager.
//
// Completed requests donate their shareable KV blocks (shared system
// prompts, multi-turn conversation context) into a per-replica pool keyed
// by token-hash chains. A later request whose prefix hashes to a resident
// chain skips the matched tokens' prefill compute entirely; the scheduler
// charges only the cold suffix. Retained blocks live inside the replica's
// BlockManager accounting (the KV-pressure signal sees them), are pinned
// while any request reads them, and are evicted LRU-leaf-first when the
// pool exceeds its capacity or an active request needs the memory back.
//
// Determinism: eviction order is a strict LRU sequence number (no clocks,
// no pointers), so same-seed replays are bit-identical.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "kvcache/prefix_cache_config.h"
#include "scheduler/memory.h"
#include "workload/request.h"

namespace vidur {

/// Exact cache accounting. hits + misses == lookups always; tokens_saved
/// is the sum of matched prefix tokens across all hits.
struct PrefixCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserted_blocks = 0;
  std::uint64_t evicted_blocks = 0;
  TokenCount tokens_saved = 0;
};

class PrefixCache {
 public:
  /// `capacity_blocks` caps the retained (unpinned + pinned) pool size;
  /// `block_size` must match the replica's BlockManager.
  PrefixCache(long capacity_blocks, TokenCount block_size);

  /// Longest resident prefix of `request`, in tokens. Read-only: no stats,
  /// no pins, no LRU touch — safe for routing probes.
  TokenCount probe(const Request& request) const;

  /// Like probe, but records the lookup (hit/miss, tokens saved, tenant
  /// slice) and pins every matched block until unpin(request.id). The
  /// scheduler performs at most one attach per (re-)admission. Returns the
  /// matched token count.
  TokenCount attach(const Request& request);

  /// Drop `request`'s pins. Blocks whose last pin leaves become LRU
  /// eviction candidates (leaves only; interior chain blocks stay until
  /// their children go). No-op for unknown ids.
  void unpin(RequestId request);

  /// Donate `request`'s shareable KV blocks in [kv_cached, kv_end) to the
  /// cache. Whole blocks only; already-resident blocks are skipped. Evicts
  /// LRU leaves when over capacity, but never blocks donated by this call.
  /// Ownership of the inserted blocks moves from the request's allocation
  /// to the cache pool inside `bm` (used_blocks is unchanged). Returns the
  /// number of blocks inserted.
  long retain(const Request& request, TokenCount kv_end, TokenCount kv_cached,
              BlockManager& bm);

  /// Evict up to `want` LRU leaf blocks, freeing their memory in `bm`.
  /// Returns the number actually evicted (may be less when everything
  /// left is pinned or interior).
  long reclaim(long want, BlockManager& bm);

  long capacity_blocks() const { return capacity_blocks_; }
  long resident_blocks() const { return static_cast<long>(blocks_.size()); }
  long evictable_blocks() const { return static_cast<long>(evictable_.size()); }
  /// Sessions with at least one resident block on this replica.
  long resident_sessions() const {
    return static_cast<long>(session_blocks_.size());
  }

  const PrefixCacheStats& stats() const { return stats_; }
  /// Per-tenant slices, keyed by tenant id (ordered for determinism).
  const std::map<TenantId, PrefixCacheStats>& tenant_stats() const {
    return tenant_stats_;
  }

 private:
  struct Block {
    std::uint64_t chain = 0;   ///< hash of the full prefix through this block
    std::uint64_t parent = 0;  ///< chain of the previous block (depth > 0)
    int depth = 0;             ///< block index within the prefix
    std::int64_t session = -1;
    int refs = 0;      ///< active requests reading this block
    int children = 0;  ///< resident blocks whose parent is this block
    std::uint64_t lru_seq = 0;  ///< meaningful only while evictable
  };

  /// Content identity of `request`'s block `depth`, or 0 if that block is
  /// not shareable (past the shared prefix of a sessionless request).
  std::uint64_t block_content(const Request& request, int depth) const;
  /// Walks the chain; returns matched block count and the final chain hash.
  long match_blocks(const Request& request, std::uint64_t* last_chain) const;
  void make_evictable(Block& block);
  /// Evicts the block `chain` (must be a leaf in evictable_).
  void evict_block(std::uint64_t chain);
  void note_session_delta(std::int64_t session, long delta);

  long capacity_blocks_;
  TokenCount block_size_;
  std::uint64_t next_seq_ = 1;
  std::unordered_map<std::uint64_t, Block> blocks_;
  /// LRU order over unpinned leaves: lru_seq -> chain. std::map keeps the
  /// eviction order deterministic and O(log n) per touch.
  std::map<std::uint64_t, std::uint64_t> evictable_;
  std::unordered_map<RequestId, std::vector<std::uint64_t>> pins_;
  std::map<std::int64_t, long> session_blocks_;
  PrefixCacheStats stats_;
  std::map<TenantId, PrefixCacheStats> tenant_stats_;
};

}  // namespace vidur
