#include "core/deployment.h"

#include <sstream>

namespace vidur {

std::string DeploymentConfig::to_string() const {
  std::ostringstream os;
  os << sku_name << " tp" << parallel.tensor_parallel << " pp"
     << parallel.pipeline_parallel << " x" << parallel.num_replicas << " "
     << scheduler.to_string();
  if (async_pipeline_comm) os << " async-pp";
  if (disagg.enabled())
    os << " disagg(" << disagg.num_prefill_replicas << "P+"
       << parallel.num_replicas - disagg.num_prefill_replicas << "D)";
  if (autoscale.enabled())
    os << " autoscale(" << autoscaler_name(autoscale.kind) << ", "
       << autoscale.min_replicas << ".." << parallel.num_replicas << ")";
  return os.str();
}

}  // namespace vidur
