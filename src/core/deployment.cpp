#include "core/deployment.h"

#include <sstream>

namespace vidur {

std::string DeploymentConfig::to_string() const {
  std::ostringstream os;
  if (!pools.empty()) {
    os << "pools[";
    for (std::size_t i = 0; i < pools.size(); ++i) {
      const PoolSpec& p = pools[i];
      if (i > 0) os << ", ";
      os << p.name << ":" << p.sku_name << " tp"
         << p.parallel.tensor_parallel << " pp"
         << p.parallel.pipeline_parallel << " x" << p.slots() << " "
         << pool_role_name(p.role);
      if (p.autoscale.enabled())
        os << " autoscale(" << autoscaler_name(p.autoscale.kind) << "/"
           << scale_signal_name(p.autoscale.signal) << ", "
           << p.autoscale.min_replicas << ".." << p.slots() << ")";
    }
    os << "] " << scheduler.to_string();
    return os.str();
  }
  os << sku_name << " tp" << parallel.tensor_parallel << " pp"
     << parallel.pipeline_parallel << " x" << parallel.num_replicas << " "
     << scheduler.to_string();
  if (async_pipeline_comm) os << " async-pp";
  if (disagg.enabled())
    os << " disagg(" << disagg.num_prefill_replicas << "P+"
       << parallel.num_replicas - disagg.num_prefill_replicas << "D)";
  if (autoscale.enabled())
    os << " autoscale(" << autoscaler_name(autoscale.kind) << ", "
       << autoscale.min_replicas << ".." << parallel.num_replicas << ")";
  return os.str();
}

}  // namespace vidur
