// A deployment configuration: the point in the paper's configuration space
// that Vidur-Search optimizes over (SKU x parallelism x scheduler x knobs).
#pragma once

#include <string>

#include "cluster/autoscaler.h"
#include "hardware/parallel_config.h"
#include "hardware/sku.h"
#include "scheduler/global_scheduler.h"
#include "scheduler/scheduler_config.h"
#include "sim/disagg_config.h"

namespace vidur {

struct DeploymentConfig {
  std::string sku_name = "a100";
  ParallelConfig parallel;
  SchedulerConfig scheduler;
  GlobalSchedulerKind global_scheduler = GlobalSchedulerKind::kRoundRobin;
  /// Overlap pipeline activation sends with the next micro-batch's compute
  /// (paper §4.5 future work; no effect when PP = 1).
  bool async_pipeline_comm = false;
  /// Prefill/decode disaggregation (Splitwise / DistServe, paper §2.2).
  DisaggConfig disagg;
  /// Elastic fleet (src/cluster/): when enabled, parallel.num_replicas is
  /// the slot ceiling and the autoscaler drives the active replica count.
  AutoscalerConfig autoscale;

  int total_gpus() const { return parallel.total_gpus(); }

  /// Rental cost of all GPUs, USD per hour.
  double cost_per_hour() const {
    return sku_by_name(sku_name).cost_per_hour * total_gpus();
  }

  /// Human-readable one-liner, e.g.
  /// "h100 tp2 pp2 x4 sarathi(bs=256, chunk=512)".
  std::string to_string() const;

  bool operator==(const DeploymentConfig&) const = default;
};

}  // namespace vidur
