// A deployment configuration: the point in the paper's configuration space
// that Vidur-Search optimizes over (SKU x parallelism x scheduler x knobs).
#pragma once

#include <string>
#include <vector>

#include "cluster/autoscaler.h"
#include "cluster/pool.h"
#include "fault/fault_config.h"
#include "hardware/parallel_config.h"
#include "hardware/sku.h"
#include "kvcache/prefix_cache_config.h"
#include "scheduler/global_scheduler.h"
#include "scheduler/scheduler_config.h"
#include "sim/disagg_config.h"

namespace vidur {

struct DeploymentConfig {
  std::string sku_name = "a100";
  ParallelConfig parallel;
  SchedulerConfig scheduler;
  GlobalSchedulerKind global_scheduler = GlobalSchedulerKind::kRoundRobin;
  /// Overlap pipeline activation sends with the next micro-batch's compute
  /// (paper §4.5 future work; no effect when PP = 1).
  bool async_pipeline_comm = false;
  /// Prefill/decode disaggregation (Splitwise / DistServe, paper §2.2).
  DisaggConfig disagg;
  /// Elastic fleet (src/cluster/): when enabled, parallel.num_replicas is
  /// the slot ceiling and the autoscaler drives the active replica count.
  AutoscalerConfig autoscale;
  /// Heterogeneous pool deployment: named pools, each with its own SKU,
  /// parallelism, role (unified / prefill / decode) and per-pool
  /// autoscaling policy. When non-empty, `sku_name`, `parallel`,
  /// `disagg.num_prefill_replicas` and `autoscale` above are superseded
  /// and must stay at their disabled defaults; `scheduler` and
  /// `global_scheduler` still apply fleet-wide.
  std::vector<PoolSpec> pools;
  /// Per-replica prefix cache (src/kvcache/): KV reuse across multi-turn
  /// sessions and shared system prompts. Pair with
  /// `global_scheduler = cache_aware` for affinity routing.
  PrefixCacheConfig prefix_cache;
  /// Fault injection (src/fault/): per-pool crash / spot-preemption /
  /// straggler profiles plus the retry and shed policies the fleet answers
  /// them with. Disabled by default (no profiles = immortal replicas).
  FaultConfig faults;
  /// Worker threads of the sharded simulation core (spec: `execution.
  /// threads`). Results are bit-identical at every value; > 1 parallelizes
  /// the replica timelines between scheduler/cluster/fault synchronization
  /// points. Must stay 1 for disaggregated deployments and operator-metric
  /// collection (validated).
  int threads = 1;

  int total_gpus() const {
    if (pools.empty()) return parallel.total_gpus();
    int total = 0;
    for (const PoolSpec& pool : pools)
      total += pool.slots() * pool.gpus_per_replica();
    return total;
  }

  /// Rental cost of all GPUs (every pool at its slot ceiling), USD/hour.
  double cost_per_hour() const {
    if (pools.empty())
      return sku_by_name(sku_name).cost_per_hour * total_gpus();
    double total = 0.0;
    for (const PoolSpec& pool : pools)
      total += pool.replica_cost_per_hour() * pool.slots();
    return total;
  }

  /// Human-readable one-liner, e.g.
  /// "h100 tp2 pp2 x4 sarathi(bs=256, chunk=512)".
  std::string to_string() const;

  bool operator==(const DeploymentConfig&) const = default;
};

}  // namespace vidur
